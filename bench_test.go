package anykey_test

// One testing.B benchmark per table/figure of the paper's evaluation
// section. Each runs the corresponding harness experiment in its quick
// configuration (a 32 MiB device with capped op counts); `cmd/anykeybench`
// runs the same experiments at full scale. The reported metric is wall time
// to regenerate the table/figure; the tables themselves are validated for
// non-emptiness so a silently broken experiment fails the benchmark.

import (
	"testing"

	"anykey/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := harness.RunExperiment(id, harness.ExpOptions{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s: empty report", id)
		}
		for _, t := range rep.Tables {
			if len(t.Rows) == 0 {
				b.Fatalf("%s: empty table %q", id, t.Name)
			}
		}
	}
}

func BenchmarkFig2(b *testing.B)             { benchExperiment(b, "fig2") }
func BenchmarkTable1(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig10(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)            { benchExperiment(b, "fig12") }
func BenchmarkTable3(b *testing.B)           { benchExperiment(b, "table3") }
func BenchmarkFig13(b *testing.B)            { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)            { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)            { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)            { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)            { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)            { benchExperiment(b, "fig19") }
func BenchmarkScale(b *testing.B)            { benchExperiment(b, "scale") }
func BenchmarkMulti(b *testing.B)            { benchExperiment(b, "multi") }
func BenchmarkAblationMinus(b *testing.B)    { benchExperiment(b, "ablation-minus") }
func BenchmarkAblationGroup(b *testing.B)    { benchExperiment(b, "ablation-group") }
func BenchmarkAblationHashlist(b *testing.B) { benchExperiment(b, "ablation-hashlist") }
func BenchmarkFullscale(b *testing.B)        { benchExperiment(b, "fullscale") }
