package anykey

import (
	"fmt"
	"io"
	"sync/atomic"

	"anykey/internal/cluster"
	"anykey/internal/cluster/fleet"
	"anykey/internal/device"
	"anykey/internal/trace"
	"anykey/internal/txn"
)

// Cluster-facing re-exports.
type (
	// RouterPolicy selects how a cluster maps keys to shards.
	RouterPolicy = cluster.Policy
	// BatchResult reports one Multi* batch: per-operation completions,
	// shards and errors in input order, plus the merged batch span.
	BatchResult = cluster.BatchResult
	// ClusterStats is the merged statistics view of a cluster with its
	// per-shard breakdown.
	ClusterStats = cluster.Stats
	// ShardStats is one shard's row of a cluster stats rollup.
	ShardStats = cluster.ShardStats
)

// Routing policies for ClusterOptions.Router.
const (
	// RouteConsistent places shards on a consistent-hash ring (default).
	RouteConsistent = cluster.RouteConsistent
	// RouteModulo routes a key to hash(key) mod shards.
	RouteModulo = cluster.RouteModulo
)

// ClusterOptions configures a sharded multi-device cluster. The zero value
// is a valid 4-shard AnyKey+ cluster at queue depth 64 with consistent-hash
// routing.
type ClusterOptions struct {
	// Shards is the number of member devices (default 4).
	Shards int

	// QueueDepth is each shard's submission queue depth (default 64, the
	// paper's evaluation depth).
	QueueDepth int

	// Router selects the key→shard mapping (default RouteConsistent).
	Router RouterPolicy

	// VirtualNodes is the ring points per shard under RouteConsistent
	// (default 64).
	VirtualNodes int

	// Workers bounds how many shard sub-batches run concurrently inside one
	// Multi* call (default 1 = serial). Shards are independent virtual-time
	// simulations, so results are bit-identical at any setting; Workers
	// trades goroutines for wall-clock time only.
	Workers int

	// Device configures every member device. Each shard's internal
	// randomness is decorrelated by offsetting Device.Seed with the shard
	// index; all other fields apply uniformly. Fault injection
	// (Device.Faults) is not supported on clusters. Device.Trace enables
	// one tracer per shard, merged by WriteChromeTrace and Blame.
	Device Options

	// Txn tunes the transaction layer behind BeginTxn/Txn/Incr/Append/
	// CompareAndSwap and the Atomic* batch calls: the OCC retry budget and
	// virtual backoff, and the hot-key split-phase thresholds. The zero
	// value enables transactions with the documented defaults.
	Txn TxnOptions

	// Replication, when Factor ≥ 1, turns the cluster into an elastic
	// replicated fleet: every key lives on Factor distinct shards from the
	// ring's successor walk, writes acknowledge at WriteQuorum alive
	// replicas, reads are read-one with fallback (or read-repair), and the
	// fleet-only methods — AddShard, RemoveShard, KillShard, RebuildShard —
	// become available. Requires RouteConsistent (the walk is a ring
	// property). The zero value keeps the single-copy sharded cluster with
	// its bit-exact legacy behavior.
	Replication ReplicationOptions
}

// DefaultClusterOptions returns the fully normalized default cluster
// configuration (what the zero ClusterOptions resolves to).
func DefaultClusterOptions() ClusterOptions {
	var o ClusterOptions
	if err := o.Validate(); err != nil {
		panic(err) // unreachable: the zero ClusterOptions is documented valid
	}
	return o
}

// Validate checks every field and normalizes zero values to their defaults
// in place, sharing Options.Validate for the per-shard device
// configuration. Out-of-range values are reported wrapped in
// ErrInvalidOptions; unsupported combinations in ErrUnsupported.
func (o *ClusterOptions) Validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("%w: Shards %d is negative", ErrInvalidOptions, o.Shards)
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth %d is negative", ErrInvalidOptions, o.QueueDepth)
	}
	if o.VirtualNodes < 0 {
		return fmt.Errorf("%w: VirtualNodes %d is negative", ErrInvalidOptions, o.VirtualNodes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers %d is negative", ErrInvalidOptions, o.Workers)
	}
	switch o.Router {
	case RouteConsistent, RouteModulo:
	default:
		return fmt.Errorf("%w: unknown router policy %v", ErrInvalidOptions, o.Router)
	}
	if o.Device.Faults != nil {
		// A power cut tears down one device mid-operation via a panic the
		// facade catches; with per-batch worker goroutines that unwinding
		// cannot be delivered coherently, so fleet-level fault injection
		// stays a single-device tool for now.
		return fmt.Errorf("%w: fault injection on a cluster (open the shard as a single Device instead)", ErrUnsupported)
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.VirtualNodes == 0 {
		o.VirtualNodes = 64
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Replication.Factor < 0 {
		return fmt.Errorf("%w: Replication.Factor %d is negative", ErrInvalidOptions, o.Replication.Factor)
	}
	if o.Replication.WriteQuorum < 0 {
		return fmt.Errorf("%w: Replication.WriteQuorum %d is negative", ErrInvalidOptions, o.Replication.WriteQuorum)
	}
	if o.Replication.Factor > 0 {
		if o.Router != RouteConsistent {
			return fmt.Errorf("%w: replication requires RouteConsistent (replica sets are ring successor walks)", ErrUnsupported)
		}
		if o.Replication.Factor > o.Shards {
			return fmt.Errorf("%w: Replication.Factor %d exceeds Shards %d", ErrInvalidOptions, o.Replication.Factor, o.Shards)
		}
		if o.Replication.WriteQuorum > o.Replication.Factor {
			return fmt.Errorf("%w: Replication.WriteQuorum %d exceeds Factor %d", ErrInvalidOptions, o.Replication.WriteQuorum, o.Replication.Factor)
		}
		if o.Replication.WriteQuorum == 0 {
			o.Replication.WriteQuorum = o.Replication.Factor
		}
		switch o.Replication.ReadMode {
		case ReadOne, ReadRepair:
		default:
			return fmt.Errorf("%w: unknown read mode %v", ErrInvalidOptions, o.Replication.ReadMode)
		}
	} else if o.Replication.WriteQuorum > 0 {
		return fmt.Errorf("%w: Replication.WriteQuorum %d without Factor", ErrInvalidOptions, o.Replication.WriteQuorum)
	}
	if err := o.Txn.Validate(); err != nil {
		return fmt.Errorf("%w: Txn: %v", ErrInvalidOptions, err)
	}
	return o.Device.Validate()
}

// Cluster is an open sharded fleet of simulated KV-SSDs behind one
// keyspace: a hash router over N independent devices, each driven by its
// own queue-depth-N submission engine in its own virtual clock domain. The
// batch calls (MultiPut/MultiGet/MultiDelete) are the primary interface —
// they split the batch by shard, submit to every involved shard's engine,
// and complete at the maximum of the per-shard virtual completion times.
//
// Cross-shard time is merged, never propagated, so every result is
// deterministic and independent of ClusterOptions.Workers.
//
// Concurrency: per-key operations (Put/Get/Delete and the open-loop *At
// forms), per-shard ScanShardAt, Stats, Metadata, Now/ShardNow and Close
// are safe for concurrent use — each shard carries its own lock, so callers
// driving disjoint shards (one goroutine per shard, as the network server
// does) never contend. The Multi* batch calls share routing scratch and
// must not run concurrently with each other.
type Cluster struct {
	c      *cluster.Cluster // single-copy backend (Replication.Factor == 0)
	f      *fleet.Fleet     // replicated fleet backend (Factor ≥ 1)
	co     *txn.Coordinator // transaction layer over whichever backend is live
	opts   ClusterOptions
	closed atomic.Bool
}

// OpenCluster builds a cluster of opts.Shards identical devices (modulo the
// per-shard seed offset).
func OpenCluster(opts ClusterOptions) (*Cluster, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	devs := make([]device.KVSSD, 0, opts.Shards)
	var tracers []*trace.Tracer
	for s := 0; s < opts.Shards; s++ {
		shardOpts := opts.Device
		shardOpts.Seed = opts.Device.Seed + int64(s)
		impl, err := openImpl(&shardOpts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if opts.Device.Trace != nil {
			tr := trace.New(trace.Config{
				Events: opts.Device.Trace.EventBuffer,
				Ops:    opts.Device.Trace.OpBuffer,
			})
			attachTracerTo(impl, tr)
			tracers = append(tracers, tr)
		}
		devs = append(devs, impl)
	}
	if opts.Replication.Factor > 0 {
		f, err := fleet.New(devs, fleet.Config{
			QueueDepth:   opts.QueueDepth,
			VirtualNodes: opts.VirtualNodes,
			Repl:         opts.Replication,
			NewDevice:    memberFactory(opts),
			Tracers:      tracers,
		})
		if err != nil {
			return nil, err
		}
		cl := &Cluster{f: f, opts: opts}
		cl.co = txn.New(fleetTxnBackend{f: f}, opts.Txn)
		return cl, nil
	}
	c, err := cluster.New(devs, cluster.Config{
		QueueDepth:   opts.QueueDepth,
		Policy:       opts.Router,
		VirtualNodes: opts.VirtualNodes,
		Workers:      opts.Workers,
		Tracers:      tracers,
	})
	if err != nil {
		return nil, err
	}
	cl := &Cluster{c: c, opts: opts}
	cl.co = txn.New(clusterTxnBackend{c: c}, opts.Txn)
	return cl, nil
}

// memberFactory builds fleet replacement/expansion devices: the same
// configuration as the initial shards, seeded off the member ID exactly as
// OpenCluster seeds shard s — so a rebuilt member gets deterministic fresh
// hardware.
func memberFactory(opts ClusterOptions) fleet.DeviceFactory {
	return func(memberID int) (device.KVSSD, *trace.Tracer, error) {
		shardOpts := opts.Device
		shardOpts.Seed = opts.Device.Seed + int64(memberID)
		impl, err := openImpl(&shardOpts)
		if err != nil {
			return nil, nil, err
		}
		var tr *trace.Tracer
		if opts.Device.Trace != nil {
			tr = trace.New(trace.Config{
				Events: opts.Device.Trace.EventBuffer,
				Ops:    opts.Device.Trace.OpBuffer,
			})
			attachTracerTo(impl, tr)
		}
		return impl, tr, nil
	}
}

// gate rejects operations on a closed cluster.
func (c *Cluster) gate() error {
	if c.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Shards returns the number of member devices (on a fleet: every member
// ever created, including dead and retired ones — member IDs are stable).
func (c *Cluster) Shards() int {
	if c.f != nil {
		return len(c.f.Members())
	}
	return c.c.Shards()
}

// Router returns the routing policy in force.
func (c *Cluster) Router() RouterPolicy {
	if c.f != nil {
		return RouteConsistent
	}
	return c.c.Policy()
}

// ShardFor returns the shard a key routes to (on a fleet: the key's primary
// — the first member of its replica walk).
func (c *Cluster) ShardFor(key []byte) int {
	if c.f != nil {
		return c.f.PrimaryFor(key)
	}
	return c.c.ShardFor(key)
}

// Now returns the merged cluster clock: the maximum over shard clocks.
func (c *Cluster) Now() Time {
	if c.f != nil {
		return c.f.Now()
	}
	return c.c.Now()
}

// ShardNow returns shard s's virtual clock. A wall-clock bridge reads it
// once per shard to anchor the mapping from real arrival times onto that
// shard's clock domain.
func (c *Cluster) ShardNow(s int) Time {
	if c.f != nil {
		return c.f.MemberNow(s)
	}
	return c.c.ShardNow(s)
}

// MultiPut stores keys[i] → values[i] for every i, split by shard and
// completed at the merged batch time. Per-operation errors are in
// BatchResult.Errs; the returned error reports only call misuse.
func (c *Cluster) MultiPut(keys, values [][]byte) (*BatchResult, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	if c.f != nil {
		if len(keys) != len(values) {
			return nil, fmt.Errorf("%w: %d keys, %d values", ErrInvalidOptions, len(keys), len(values))
		}
		return c.fleetBatch(keys, func(i int) fleet.OpResult {
			return c.f.Put(keys[i], values[i])
		}), nil
	}
	return c.c.MultiPut(keys, values)
}

// MultiGet reads every key. Absent keys report ErrNotFound in
// BatchResult.Errs; returned values are copies owned by the caller.
func (c *Cluster) MultiGet(keys [][]byte) (*BatchResult, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	if c.f != nil {
		return c.fleetBatch(keys, func(i int) fleet.OpResult {
			return c.f.Get(keys[i])
		}), nil
	}
	return c.c.MultiGet(keys)
}

// MultiDelete removes every key (deleting an absent key succeeds).
func (c *Cluster) MultiDelete(keys [][]byte) (*BatchResult, error) {
	if err := c.gate(); err != nil {
		return nil, err
	}
	if c.f != nil {
		return c.fleetBatch(keys, func(i int) fleet.OpResult {
			return c.f.Delete(keys[i])
		}), nil
	}
	return c.c.MultiDelete(keys)
}

// fleetBatch runs a replicated batch one key at a time (replica fan-out
// happens inside each op) and reassembles the cluster batch shape: the
// representative completion, the primary shard, and the op verdict per
// input, with the batch span merged over every replica attempt.
func (c *Cluster) fleetBatch(keys [][]byte, op func(i int) fleet.OpResult) *BatchResult {
	out := &BatchResult{
		Completions: make([]Completion, len(keys)),
		Shards:      make([]int, len(keys)),
		Errs:        make([]error, len(keys)),
		Start:       c.f.Now(),
	}
	for i := range keys {
		res := op(i)
		out.Completions[i] = fleetCompletion(res)
		if len(res.Owners) > 0 {
			out.Shards[i] = res.Owners[0]
		}
		out.Errs[i] = res.Err
		for _, ra := range res.Replicas {
			if ra.Comp.Done > out.Done {
				out.Done = ra.Comp.Done
			}
		}
	}
	return out
}

// fleetCompletion picks one representative host completion out of a
// replicated result: a read's serving replica, a write's quorum-defining
// replica (the one whose Done is the acknowledgment instant), or — on
// failure — the latest attempt, so callers still see the op's span.
func fleetCompletion(res fleet.OpResult) Completion {
	if res.Served >= 0 {
		for _, ra := range res.Replicas {
			if ra.Member == res.Served {
				comp := ra.Comp
				comp.Value = res.Value
				return comp
			}
		}
	}
	if res.Acked {
		for _, ra := range res.Replicas {
			if ra.Err == nil && ra.Comp.Done == res.AckDone {
				return ra.Comp
			}
		}
	}
	var best Completion
	for _, ra := range res.Replicas {
		if ra.Comp.Done >= best.Done {
			best = ra.Comp
		}
	}
	return best
}

// Put stores one pair on its shard and returns the simulated latency.
func (c *Cluster) Put(key, value []byte) (Duration, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if c.f != nil {
		res := c.f.Put(key, value)
		return fleetCompletion(res).Latency(), res.Err
	}
	comp, err := c.c.Put(key, value)
	return comp.Latency(), err
}

// Get reads one key from its shard. The value is owned by the shard device
// and valid until its next operation; use MultiGet for caller-owned copies.
func (c *Cluster) Get(key []byte) ([]byte, Duration, error) {
	if err := c.gate(); err != nil {
		return nil, 0, err
	}
	if c.f != nil {
		res := c.f.Get(key)
		comp := fleetCompletion(res)
		return comp.Value, comp.Latency(), res.Err
	}
	comp, err := c.c.Get(key)
	return comp.Value, comp.Latency(), err
}

// Delete removes one key on its shard and returns the simulated latency.
func (c *Cluster) Delete(key []byte) (Duration, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if c.f != nil {
		res := c.f.Delete(key)
		return fleetCompletion(res).Latency(), res.Err
	}
	comp, err := c.c.Delete(key)
	return comp.Latency(), err
}

// PutAt is the open-loop Put: the request arrives at the routed shard at
// the given instant of that shard's clock domain, queueing behind whatever
// is already in flight there. The full completion and the shard index are
// returned — open-loop clients need arrival/issue/done to implement
// timeouts and retries.
func (c *Cluster) PutAt(arrival Time, key, value []byte) (Completion, int, error) {
	if err := c.gate(); err != nil {
		return Completion{}, 0, err
	}
	if c.f != nil {
		res := c.f.PutAt(constArrival(arrival), key, value)
		return fleetResult(res)
	}
	return c.c.PutAt(arrival, key, value)
}

// constArrival maps one client arrival instant onto every replica's clock
// domain: the same numeric instant in each — domains are independent, so
// "the request reaches all replicas at t" is exactly the fan-out a
// replicating front end performs.
func constArrival(at Time) fleet.ArrivalFunc {
	return func(int) Time { return at }
}

// fleetResult adapts a replicated result to the (completion, shard, error)
// single-copy signature: the representative completion and the primary.
func fleetResult(res fleet.OpResult) (Completion, int, error) {
	primary := 0
	if len(res.Owners) > 0 {
		primary = res.Owners[0]
	}
	return fleetCompletion(res), primary, res.Err
}

// GetAt is the open-loop Get. The value is owned by the shard device and
// valid until its next operation.
func (c *Cluster) GetAt(arrival Time, key []byte) (Completion, int, error) {
	if err := c.gate(); err != nil {
		return Completion{}, 0, err
	}
	if c.f != nil {
		return fleetResult(c.f.GetAt(constArrival(arrival), key))
	}
	return c.c.GetAt(arrival, key)
}

// DeleteAt is the open-loop Delete.
func (c *Cluster) DeleteAt(arrival Time, key []byte) (Completion, int, error) {
	if err := c.gate(); err != nil {
		return Completion{}, 0, err
	}
	if c.f != nil {
		return fleetResult(c.f.DeleteAt(constArrival(arrival), key))
	}
	return c.c.DeleteAt(arrival, key)
}

// ScanShardAt is the open-loop range query against one shard: up to n pairs
// with key ≥ start, drawn only from the keys routed to that shard. A
// cluster-wide scan fans one ScanShardAt out per shard and merges the
// sorted sub-results. The returned pairs are device-owned until the shard's
// next operation.
func (c *Cluster) ScanShardAt(shard int, arrival Time, start []byte, n int) (Completion, error) {
	if err := c.gate(); err != nil {
		return Completion{}, err
	}
	if shard < 0 || shard >= c.Shards() {
		return Completion{}, fmt.Errorf("%w: shard %d of %d", ErrInvalidOptions, shard, c.Shards())
	}
	if c.f != nil {
		return c.f.ScanAt(shard, arrival, start, n)
	}
	return c.c.ScanAt(shard, arrival, start, n)
}

// Sync flushes every shard (a fleet-wide FLUSH) and returns the merged
// completion time. An open split phase merges first, so hot-key deltas the
// transaction layer is still batching become durable too.
func (c *Cluster) Sync() (Time, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if err := c.co.Flush(); err != nil {
		return 0, fmt.Errorf("anykey: split-phase flush: %w", err)
	}
	if c.f != nil {
		return c.f.Sync()
	}
	return c.c.Sync()
}

// Barrier drains every shard's in-flight requests and returns the merged
// cluster time.
func (c *Cluster) Barrier() (Time, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if c.f != nil {
		return c.f.Barrier(), nil
	}
	return c.c.Barrier(), nil
}

// ResetBreakdowns clears every shard engine's queue-wait/service histograms,
// marking the start of a measurement phase (see Stats).
func (c *Cluster) ResetBreakdowns() {
	if c.closed.Load() {
		return
	}
	if c.f != nil {
		c.f.ResetBreakdowns()
		return
	}
	c.c.ResetBreakdowns()
}

// Stats merges every shard's live statistics into one rollup with a
// per-shard breakdown. The returned value is a point-in-time snapshot taken
// under each shard's lock, so Stats is safe to call concurrently with
// in-flight operations — a metrics scraper never observes a shard
// mid-operation.
func (c *Cluster) Stats() ClusterStats {
	if c.f != nil {
		return c.f.CollectStats().Stats
	}
	return c.c.CollectStats()
}

// Metadata merges the shards' metadata reports, summing same-named
// structures.
func (c *Cluster) Metadata() []MetaStructure {
	if c.f != nil {
		return c.f.Metadata()
	}
	return c.c.Metadata()
}

// Blame merges every shard tracer's blame report into one cluster-wide
// attribution. Nil when the cluster was opened without Device.Trace.
func (c *Cluster) Blame(opts BlameOptions) *BlameReport {
	if c.f != nil {
		return c.f.Blame(opts)
	}
	return c.c.Blame(opts)
}

// Tracers returns the per-shard tracers, or nil when the cluster was
// opened without Device.Trace. Open-loop clients use them to annotate shard
// op records with timeout/retry attribution.
func (c *Cluster) Tracers() []*Tracer {
	if c.f != nil {
		return c.f.Tracers()
	}
	return c.c.Tracers()
}

// WriteChromeTrace writes the merged fleet trace as Chrome trace_event
// JSON: shard i's rows appear as processes named "shardN …" at a disjoint
// pid range, on a common virtual-time axis. It fails when the cluster was
// opened without Device.Trace.
func (c *Cluster) WriteChromeTrace(w io.Writer) error {
	trs := c.Tracers()
	if trs == nil {
		return fmt.Errorf("%w: cluster opened without Device.Trace", ErrUnsupported)
	}
	return trace.WriteChromeTraceCluster(w, trs)
}

// Footprint sums the flash payload-store memory accounting across shards:
// what a raw store would retain versus what the configured stores do.
func (c *Cluster) Footprint() StoreFootprint {
	return c.Stats().Store
}

// CacheStats sums the shards' host-cache counters; ok is false when the
// cluster was opened without Device.Cache.
func (c *Cluster) CacheStats() (CacheStats, bool) {
	st := c.Stats().Cache
	if st == nil {
		return CacheStats{}, false
	}
	return *st, true
}

// Close marks the cluster closed; further operations return ErrClosed. It
// also eagerly frees every shard's page-payload memory (each shard under its
// own lock), so harnesses that open fleets in sequence keep only the live
// one's pages in the heap. It is idempotent and never fails (the simulation
// holds no other external resources).
func (c *Cluster) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		if c.f != nil {
			c.f.ReleaseMemory()
		} else {
			c.c.ReleaseMemory()
		}
	}
	return nil
}
