#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and report the aggregate wall time.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1 iteration per benchmark
#   scripts/bench.sh -count 3        # extra go test args pass through
#   scripts/bench.sh mem             # quick fullscale run, gate peak heap
#                                    # against BENCH_fullscale.json budget
#   scripts/bench.sh fullscale       # full-length fullscale run (slow) with
#                                    # -bench-mem reporting, no gate
#   BENCH='Fig12|Fig14' scripts/bench.sh   # subset via regex
#   PROFILE=1 scripts/bench.sh       # also write cpu.pprof / mem.pprof
#
# The benchmarks replay the paper's full experiment reports, and the golden
# checksum tests pin those reports byte-for-byte — so any optimization this
# script measures is behavior-preserving by construction (run `go test .`
# to check). BENCH_baseline.json records the before/after numbers of the
# recorded optimization pass; BENCH_fullscale.json records the fullscale
# memory footprint and the heap budgets the `mem` mode enforces.
set -euo pipefail
cd "$(dirname "$0")/.."

# json_int FILE KEY — pull an integer field out of a flat JSON file without
# depending on jq (the CI runners and the dev container both lack it).
json_int() {
  awk -v key="\"$2\"" '$0 ~ key { gsub(/[^0-9]/, "", $2); print $2; exit }' FS=': ' "$1"
}

case "${1:-}" in
mem)
  # Quick-mode fullscale with the memory sampler; fail if peak heap exceeds
  # the committed budget. This is the CI heap-regression gate.
  BUDGET="$(json_int BENCH_fullscale.json quick_peak_heap_budget_bytes)"
  if [[ -z "$BUDGET" ]]; then
    echo "bench.sh mem: no quick_peak_heap_budget_bytes in BENCH_fullscale.json" >&2
    exit 1
  fi
  OUT="$(go run ./cmd/anykeybench -exp fullscale -quick -bench-mem -quiet | tee /dev/stderr)"
  PEAK="$(echo "$OUT" | awk -F'[= ]' '/^mem: peak-heap-bytes=/ { print $3 }')"
  if [[ -z "$PEAK" ]]; then
    echo "bench.sh mem: no 'mem: peak-heap-bytes=' line in output" >&2
    exit 1
  fi
  echo "peak heap: $PEAK bytes (budget: $BUDGET)"
  if (( PEAK > BUDGET )); then
    echo "bench.sh mem: FAIL — peak heap $PEAK exceeds budget $BUDGET" >&2
    exit 1
  fi
  echo "bench.sh mem: OK"
  exit 0
  ;;
fullscale)
  # Full-length fullscale experiment (64 GB-class sweep; minutes of wall
  # time). Reports memory at exit; compare by hand against
  # BENCH_fullscale.json.
  exec go run ./cmd/anykeybench -exp fullscale -bench-mem
  ;;
esac

BENCH="${BENCH:-.}"
ARGS=(-run '^$' -bench "$BENCH" -benchtime 1x -timeout 1800s)
if [[ "${PROFILE:-0}" != 0 ]]; then
  ARGS+=(-cpuprofile cpu.pprof -memprofile mem.pprof)
fi

OUT="$(go test "${ARGS[@]}" "$@" . | tee /dev/stderr)"

# Aggregate: sum of ns/op over every benchmark that ran.
echo "$OUT" | awk '
  /^Benchmark/ { total += $3; n++ }
  END { printf "\naggregate: %d benchmarks, %.2f s total\n", n, total / 1e9 }
'
if [[ "${PROFILE:-0}" != 0 ]]; then
  echo "profiles: cpu.pprof mem.pprof (inspect with: go tool pprof -top cpu.pprof)"
fi
