#!/usr/bin/env bash
# bench.sh — run the root benchmark suite and report the aggregate wall time.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1 iteration per benchmark
#   scripts/bench.sh -count 3        # extra go test args pass through
#   BENCH='Fig12|Fig14' scripts/bench.sh   # subset via regex
#   PROFILE=1 scripts/bench.sh       # also write cpu.pprof / mem.pprof
#
# The benchmarks replay the paper's full experiment reports, and the golden
# checksum tests pin those reports byte-for-byte — so any optimization this
# script measures is behavior-preserving by construction (run `go test .`
# to check). BENCH_baseline.json records the before/after numbers of the
# recorded optimization pass.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
ARGS=(-run '^$' -bench "$BENCH" -benchtime 1x -timeout 1800s)
if [[ "${PROFILE:-0}" != 0 ]]; then
  ARGS+=(-cpuprofile cpu.pprof -memprofile mem.pprof)
fi

OUT="$(go test "${ARGS[@]}" "$@" . | tee /dev/stderr)"

# Aggregate: sum of ns/op over every benchmark that ran.
echo "$OUT" | awk '
  /^Benchmark/ { total += $3; n++ }
  END { printf "\naggregate: %d benchmarks, %.2f s total\n", n, total / 1e9 }
'
if [[ "${PROFILE:-0}" != 0 ]]; then
  echo "profiles: cpu.pprof mem.pprof (inspect with: go tool pprof -top cpu.pprof)"
fi
