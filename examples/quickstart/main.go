// Quickstart: open a simulated AnyKey+ device, store and read a few pairs,
// delete one, run a range query, and inspect what the device did — all in
// simulated time, so the printed latencies are the flash-timing model's, not
// the host's.
package main

import (
	"errors"
	"fmt"
	"log"

	"anykey"
)

func main() {
	dev, err := anykey.Open(anykey.Options{
		Design:     anykey.DesignAnyKeyPlus,
		CapacityMB: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()
	fmt.Printf("opened a %v KV-SSD (64 MiB simulated flash)\n\n", dev.Design())

	// Store a handful of user profiles.
	users := map[string]string{
		"user:alice": `{"city":"Seoul","karma":812}`,
		"user:bob":   `{"city":"Busan","karma":9}`,
		"user:carol": `{"city":"Ansan","karma":377}`,
		"user:dave":  `{"city":"Jeju","karma":45}`,
	}
	for k, v := range users {
		lat, err := dev.Put([]byte(k), []byte(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PUT %-12s -> %v\n", k, lat)
	}

	// Read one back.
	val, lat, err := dev.Get([]byte("user:carol"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET user:carol = %s (%v)\n", val, lat)

	// Delete, then observe the not-found error.
	if _, err := dev.Delete([]byte("user:bob")); err != nil {
		log.Fatal(err)
	}
	if _, _, err := dev.Get([]byte("user:bob")); errors.Is(err, anykey.ErrNotFound) {
		fmt.Println("GET user:bob after delete: not found (as expected)")
	}

	// Range query: everything from "user:c" onward.
	pairs, lat, err := dev.Scan([]byte("user:c"), 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSCAN from user:c (%v):\n", lat)
	for _, p := range pairs {
		fmt.Printf("  %s = %s\n", p.Key, p.Value)
	}

	// What did the device do?
	st := dev.Stats()
	flash := dev.Flash()
	fmt.Printf("\ndevice clock: %v | live keys: %d | flash: %d reads / %d writes\n",
		dev.Now(), st.LiveKeys, flash.TotalReads(), flash.TotalWrites())
	fmt.Println("\nmetadata (always DRAM-resident on AnyKey):")
	for _, m := range dev.Metadata() {
		fmt.Printf("  %-14s %6d bytes\n", m.Name, m.Bytes)
	}
}
