// Blockchain models the paper's Crypto1 workload — BlockStream's store for
// a Bitcoin block explorer, where keys (76 B: scripthash-style identifiers)
// are *longer* than the values they map to (50 B: compact UTXO records).
// Keys larger than values are the paper's worst case for PinK, whose
// metadata effectively duplicates every key in flash.
//
// The example indexes synthetic UTXOs on all three main designs, then
// compares how much flash each design spends beyond the user data, and how
// many pairs fit before the device reports full — the storage-utilization
// comparison of Fig. 14.
package main

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"

	"anykey"
)

const (
	keySize   = 76
	valueSize = 50
)

// utxoKey derives a deterministic scripthash-like key.
func utxoKey(i uint64) []byte {
	h := sha256.Sum256([]byte(fmt.Sprintf("txo-%d", i)))
	k := fmt.Sprintf("utxo:%x:%06d", h, i%1000000) // 5+64+1+6 = 76 bytes
	return []byte(k[:keySize])
}

func utxoValue(i uint64) []byte {
	v := fmt.Sprintf(`{"sat":%d,"h":%d}`, i*546%100000000, 800000+i%1000)
	for len(v) < valueSize {
		v += " "
	}
	return []byte(v[:valueSize])
}

func main() {
	fmt.Printf("indexing UTXOs (%d B keys / %d B values, v/k = %.2f) until each device fills\n\n",
		keySize, valueSize, float64(valueSize)/keySize)

	for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKey, anykey.DesignAnyKeyPlus} {
		dev, err := anykey.Open(anykey.Options{
			Design:     design,
			CapacityMB: 32,
			DRAMBytes:  32 << 20 / 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		var pairs uint64
		for {
			_, err := dev.Put(utxoKey(pairs), utxoValue(pairs))
			if errors.Is(err, anykey.ErrDeviceFull) {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			pairs++
		}
		userBytes := pairs * (keySize + valueSize)
		util := float64(userBytes) / float64(32<<20)

		// Verify a sample of old keys still reads correctly on the full device.
		for i := uint64(0); i < pairs; i += pairs / 7 {
			v, _, err := dev.Get(utxoKey(i))
			if err != nil || string(v) != string(utxoValue(i)) {
				log.Fatalf("%v: UTXO %d corrupt after fill: %v", design, i, err)
			}
		}

		var metaDRAM, metaFlash int64
		for _, m := range dev.Metadata() {
			if m.InDRAM {
				metaDRAM += m.Bytes
			} else {
				metaFlash += m.Bytes
			}
		}
		fmt.Printf("%-8s stored %7d UTXOs = %5.1f%% of raw capacity | metadata: %4d KB DRAM, %5d KB flash\n",
			design, pairs, util*100, metaDRAM>>10, metaFlash>>10)
		dev.Close()
	}

	fmt.Println("\nPinK burns flash on a second copy of every 76-byte key (meta segments),")
	fmt.Println("so fewer UTXOs fit; AnyKey keeps one key per group in DRAM instead (Fig. 14).")
}
