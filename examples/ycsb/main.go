// YCSB runs the six standard YCSB core workload mixes (A–F) against a
// simulated PinK device and a simulated AnyKey+ device and prints throughput
// and read/scan latency percentiles for each — the cross-mix comparison a
// storage team would run before adopting a KV-SSD.
//
// YCSB's default profile (20-byte keys, 1,000-byte values) is one of the
// paper's high-v/k workloads, so the two designs land close together here;
// swap the spec for a Table 2 low-v/k profile (e.g. ZippyDB) to watch the
// gap open.
package main

import (
	"fmt"
	"log"
	"slices"

	"anykey"

	"anykey/internal/workload"
)

const (
	capacityMB = 64
	population = 30000
	operations = 60000
)

func pct(lats []anykey.Duration, p float64) anykey.Duration {
	if len(lats) == 0 {
		return 0
	}
	slices.Sort(lats)
	return lats[int(p*float64(len(lats)-1))]
}

func main() {
	spec, _ := workload.ByName("YCSB")
	fmt.Printf("YCSB core mixes on %d MiB devices (%d keys, %d ops per mix)\n\n",
		capacityMB, population, operations)
	fmt.Printf("%-3s  %-8s %-10s %-12s %-12s %-12s\n", "mix", "system", "ops/s(sim)", "p50", "p95", "p99")

	for _, mix := range workload.YCSBMixes {
		cfg, _ := workload.YCSBConfig(mix.Name, population)
		for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKeyPlus} {
			dev, err := anykey.Open(anykey.Options{Design: design, CapacityMB: capacityMB,
				DRAMBytes: capacityMB << 20 / 100})
			if err != nil {
				log.Fatal(err)
			}
			gen, err := workload.NewGenerator(spec, cfg)
			if err != nil {
				log.Fatal(err)
			}
			// Load phase.
			for i := uint64(0); i < population; i++ {
				id := gen.LoadID(i)
				if _, err := dev.Put(gen.Key(id), gen.Value(id, 0)); err != nil {
					log.Fatal(err)
				}
			}
			// Run phase.
			start := dev.Now()
			var lats []anykey.Duration
			for op := 0; op < operations; op++ {
				o := gen.Next()
				switch o.Kind {
				case workload.OpPut:
					if _, err := dev.Put(o.Key, o.Value); err != nil {
						log.Fatal(err)
					}
				case workload.OpGet:
					_, lat, err := dev.Get(o.Key)
					if err != nil {
						log.Fatal(err)
					}
					lats = append(lats, lat)
				case workload.OpScan:
					_, lat, err := dev.Scan(o.Key, o.ScanLen)
					if err != nil {
						log.Fatal(err)
					}
					lats = append(lats, lat)
				}
			}
			elapsed := dev.Now().Sub(start)
			fmt.Printf("%-3s  %-8v %-10.0f %-12v %-12v %-12v\n",
				mix.Name, design, float64(operations)/elapsed.Seconds(),
				pct(lats, 0.50), pct(lats, 0.95), pct(lats, 0.99))
			dev.Close()
		}
	}
}
