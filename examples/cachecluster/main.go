// Cachecluster models the paper's Cache15 workload — the 15 % of Twitter's
// 153 cache clusters whose keys are as large as their values (38 B / 38 B,
// v/k = 1.0, the extreme low-v/k case). It runs the same Zipfian
// read-heavy mix on PinK and on AnyKey+ and prints the read-latency tail
// that Fig. 10d contrasts, plus the per-read flash-access counts behind it
// (Fig. 11b).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"slices"

	"anykey"
)

const (
	population = 120000
	operations = 120000
	keySize    = 38
	valueSize  = 38
)

func cacheKey(id int) []byte {
	return []byte(fmt.Sprintf("cache:%08d:%0*d", id, keySize-15, id%997))
}

func cacheValue(id, ver int) []byte {
	v := fmt.Sprintf("v%d:%d:", ver, id)
	for len(v) < valueSize {
		v += "x"
	}
	return []byte(v[:valueSize])
}

func percentile(sorted []anykey.Duration, p float64) anykey.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	rng := rand.New(rand.NewSource(7))
	for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKeyPlus} {
		dev, err := anykey.Open(anykey.Options{
			Design:     design,
			CapacityMB: 64,
			DRAMBytes:  64 << 20 / 40,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Load the cache population.
		for id := 0; id < population; id++ {
			if _, err := dev.Put(cacheKey(id), cacheValue(id, 0)); err != nil {
				log.Fatal(err)
			}
		}

		// Zipf-ish skewed access: 90% reads, 10% overwrites.
		zipf := rand.NewZipf(rng, 1.2, 8, population-1)
		lats := make([]anykey.Duration, 0, operations)
		for op := 0; op < operations; op++ {
			id := int(zipf.Uint64())
			if rng.Float64() < 0.1 {
				if _, err := dev.Put(cacheKey(id), cacheValue(id, op)); err != nil {
					log.Fatal(err)
				}
				continue
			}
			_, lat, err := dev.Get(cacheKey(id))
			if err != nil {
				log.Fatal(err)
			}
			lats = append(lats, lat)
		}
		slices.Sort(lats)

		st := dev.Stats()
		fmt.Printf("%-8s reads: p50=%-12v p95=%-12v p99=%-12v | flash accesses/read mean=%.2f\n",
			design, percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 0.99),
			st.ReadAccesses.Mean())
		fmt.Printf("%-8s metadata:", design)
		for _, m := range dev.Metadata() {
			place := "DRAM"
			if !m.InDRAM {
				place = "FLASH"
			}
			fmt.Printf("  %s=%dKB(%s)", m.Name, m.Bytes>>10, place)
		}
		fmt.Println()
		dev.Close()
	}
	fmt.Println("\nWith 38-byte keys the per-pair metadata is as large as the data itself:")
	fmt.Println("PinK's meta segments spill to flash and every cache miss pays extra flash")
	fmt.Println("reads, while AnyKey's per-group metadata stays in DRAM (the paper's Fig. 10/11).")
}
