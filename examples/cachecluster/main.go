// Cachecluster models the paper's Cache15 workload — the 15 % of Twitter's
// 153 cache clusters whose keys are as large as their values (38 B / 38 B,
// v/k = 1.0, the extreme low-v/k case) — sharded across a 4-node KV-SSD
// cluster behind anykey.Cluster's batched submission API. It runs the same
// Zipfian read-heavy mix on a PinK fleet and on an AnyKey+ fleet and prints
// the read-latency tail that Fig. 10d contrasts, the per-read flash-access
// counts behind it (Fig. 11b), and how evenly the consistent-hash router
// spread the skewed traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"slices"

	"anykey"
)

const (
	shards     = 4
	batchSize  = 256
	population = 120000
	operations = 120000
	keySize    = 38
	valueSize  = 38
)

func cacheKey(id int) []byte {
	return []byte(fmt.Sprintf("cache:%08d:%0*d", id, keySize-15, id%997))
}

func cacheValue(id, ver int) []byte {
	v := fmt.Sprintf("v%d:%d:", ver, id)
	for len(v) < valueSize {
		v += "x"
	}
	return []byte(v[:valueSize])
}

func percentile(sorted []anykey.Duration, p float64) anykey.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runFleet drives the Cache15 mix on one design's 4-shard fleet. The
// cluster's Close error is the return value when nothing else failed first,
// so a shard teardown problem still reaches the exit code.
func runFleet(design anykey.Design) (err error) {
	c, openErr := anykey.OpenCluster(anykey.ClusterOptions{
		Shards: shards,
		Device: anykey.Options{
			Design:          design,
			CapacityMB:      16,
			Channels:        4,
			ChipsPerChannel: 4,
			DRAMBytes:       16 << 20 / 40,
		},
	})
	if openErr != nil {
		return openErr
	}
	defer func() {
		if cerr := c.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("closing %v fleet: %w", design, cerr)
		}
	}()

	// Load the cache population in MultiPut batches: each batch is split by
	// shard, runs on every involved node, and completes at the merged time.
	keys := make([][]byte, 0, batchSize)
	vals := make([][]byte, 0, batchSize)
	for id := 0; id < population; {
		keys, vals = keys[:0], vals[:0]
		for len(keys) < batchSize && id < population {
			keys = append(keys, cacheKey(id))
			vals = append(vals, cacheValue(id, 0))
			id++
		}
		br, err := c.MultiPut(keys, vals)
		if err != nil {
			return err
		}
		if err := br.FirstErr(); err != nil {
			return err
		}
	}

	// Zipf-ish skewed access in batched waves: 90% reads, 10% overwrites.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 8, population-1)
	lats := make([]anykey.Duration, 0, operations)
	for done := 0; done < operations; {
		keys, vals = keys[:0], vals[:0]
		getKeys := make([][]byte, 0, batchSize)
		for done < operations && len(keys)+len(getKeys) < batchSize {
			id := int(zipf.Uint64())
			if rng.Float64() < 0.1 {
				keys = append(keys, cacheKey(id))
				vals = append(vals, cacheValue(id, done))
			} else {
				getKeys = append(getKeys, cacheKey(id))
			}
			done++
		}
		if len(keys) > 0 {
			br, err := c.MultiPut(keys, vals)
			if err != nil {
				return err
			}
			if err := br.FirstErr(); err != nil {
				return err
			}
		}
		if len(getKeys) > 0 {
			br, err := c.MultiGet(getKeys)
			if err != nil {
				return err
			}
			for i, comp := range br.Completions {
				if br.Errs[i] != nil {
					return fmt.Errorf("get %q: %w", getKeys[i], br.Errs[i])
				}
				lats = append(lats, comp.Latency())
			}
		}
	}
	slices.Sort(lats)

	st := c.Stats()
	fmt.Printf("%-8s reads: p50=%-12v p95=%-12v p99=%-12v | flash accesses/read mean=%.2f\n",
		design, percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 0.99),
		st.ReadAccesses.Mean())
	var hottest, total int64
	for _, ss := range st.PerShard {
		total += ss.Ops
		if ss.Ops > hottest {
			hottest = ss.Ops
		}
	}
	fmt.Printf("%-8s fleet: %d live keys over %d shards, hottest shard carried %.1f%% of requests\n",
		design, st.LiveKeys, st.Shards, 100*float64(hottest)/float64(total))
	fmt.Printf("%-8s metadata:", design)
	for _, m := range c.Metadata() {
		place := "DRAM"
		if !m.InDRAM {
			place = "FLASH"
		}
		fmt.Printf("  %s=%dKB(%s)", m.Name, m.Bytes>>10, place)
	}
	fmt.Println()
	return nil
}

func main() {
	for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKeyPlus} {
		if err := runFleet(design); err != nil {
			log.SetFlags(0)
			log.Printf("cachecluster: %v", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nWith 38-byte keys the per-pair metadata is as large as the data itself:")
	fmt.Println("PinK's meta segments spill to flash and every cache miss pays extra flash")
	fmt.Println("reads, while AnyKey's per-group metadata stays in DRAM (the paper's Fig. 10/11).")
}
