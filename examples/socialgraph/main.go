// Socialgraph models the paper's UDB workload (Facebook's social-graph
// storage layer: 27-byte keys, 127-byte values — a low-v/k workload): an
// edge store mapping "graph:<user>:<seq>" keys to small association
// records, with range scans reading a user's adjacency list.
//
// It loads and churns a synthetic graph on three devices and compares
// point-read tails with adjacency-scan latencies — the trade the paper's
// §6.6/Fig. 18 analyse. PinK and AnyKey+ keep values away from the
// key-ordered structures (write-optimised; scans gather scattered pages),
// while AnyKey− inlines values into the key-ordered data segment groups, so
// a whole adjacency list comes out of one or two neighbouring flash pages —
// the co-location effect behind Fig. 18's long-scan wins.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anykey"
)

const (
	numUsers     = 150
	edgesPerUser = 96
	valueSize    = 127
)

func edgeKey(user, seq int) []byte {
	// 27-byte keys like the paper's UDB profile.
	return []byte(fmt.Sprintf("graph:%08d:%010d", user, seq))
}

func edgeValue(user, seq int) []byte {
	v := fmt.Sprintf(`{"to":%d,"w":%d,"t":172}`, seq*7919%100000, user%97)
	for len(v) < valueSize {
		v += "."
	}
	return []byte(v[:valueSize])
}

func main() {
	rng := rand.New(rand.NewSource(11))
	for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKeyPlus, anykey.DesignAnyKeyMinus} {
		dev, err := anykey.Open(anykey.Options{
			Design:     design,
			CapacityMB: 64,
			// Scan-centric deployment: a small value log keeps values folded
			// into the key-ordered data segment groups (see EXPERIMENTS.md
			// fig18).
			LogFraction: 0.08,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Load the graph: every user's edges are key-adjacent.
		for u := 0; u < numUsers; u++ {
			for e := 0; e < edgesPerUser; e++ {
				if _, err := dev.Put(edgeKey(u, e), edgeValue(u, e)); err != nil {
					log.Fatal(err)
				}
			}
		}
		// Live churn: edges update continuously, so physical placement
		// diverges from load order (as on any aged store).
		for i := 0; i < numUsers*edgesPerUser*3; i++ {
			u, e := rng.Intn(numUsers), rng.Intn(edgesPerUser)
			if _, err := dev.Put(edgeKey(u, e), edgeValue(u, e+i)); err != nil {
				log.Fatal(err)
			}
		}

		// Point reads: fetch one edge per user, track the worst latency.
		var worst, sum anykey.Duration
		for u := 0; u < numUsers; u++ {
			_, lat, err := dev.Get(edgeKey(u, rng.Intn(edgesPerUser)))
			if err != nil {
				log.Fatal(err)
			}
			sum += lat
			if lat > worst {
				worst = lat
			}
		}

		// Adjacency scans: read each 10th user's full edge list.
		var scanSum anykey.Duration
		scans := 0
		for u := 0; u < numUsers; u += 10 {
			pairs, lat, err := dev.Scan(edgeKey(u, 0), edgesPerUser)
			if err != nil {
				log.Fatal(err)
			}
			if len(pairs) != edgesPerUser {
				log.Fatalf("scan returned %d edges, want %d", len(pairs), edgesPerUser)
			}
			scanSum += lat
			scans++
		}

		flash := dev.Flash()
		fmt.Printf("%-8s point reads: mean %v, worst %v | %d-edge scans: mean %v | flash reads %d\n",
			design, sum/anykey.Duration(numUsers), worst,
			edgesPerUser, scanSum/anykey.Duration(scans), flash.TotalReads())
		dev.Close()
	}
	fmt.Println("\nAnyKey- (inline values) keeps each adjacency list co-located inside one data")
	fmt.Println("segment group, so full-list scans touch the fewest flash pages; the value-log")
	fmt.Println("variants trade that for cheaper writes (see EXPERIMENTS.md, fig18/fig19).")
}
