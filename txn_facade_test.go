package anykey

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestTxnSentinelRoundTrips drives every transaction error path through the
// public API and checks the sentinels with errors.Is, both directions.
func TestTxnSentinelRoundTrips(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// CAS mismatch → ErrTxnConflict, and only that sentinel.
	if _, err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	_, err = c.CompareAndSwap([]byte("k"), []byte("wrong"), []byte("v2"))
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("CAS mismatch: want ErrTxnConflict, got %v", err)
	}
	if errors.Is(err, ErrTxnAborted) {
		t.Fatalf("CAS mismatch must not match ErrTxnAborted: %v", err)
	}

	// Retry exhaustion → error matches BOTH ErrTxnAborted and ErrTxnConflict.
	// The body conflicts deliberately: between its read and its commit, a
	// nested transaction rewrites the read key (bumping its OCC version), so
	// validation fails on every attempt.
	_, err = c.Txn(func(tx *Tx) error {
		if _, err := tx.Get([]byte("k")); err != nil {
			return err
		}
		if _, err := c.Txn(func(tx2 *Tx) error {
			tx2.Put([]byte("k"), []byte("dirty"))
			return nil
		}); err != nil {
			return err
		}
		tx.Put([]byte("k"), []byte("mine"))
		return nil
	})
	if !errors.Is(err, ErrTxnAborted) || !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("exhausted retries: want ErrTxnAborted and ErrTxnConflict, got %v", err)
	}

	// Body errors propagate unwrapped and unretried.
	sentinel := errors.New("body says no")
	if _, err := c.Txn(func(tx *Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("body error: want %v, got %v", sentinel, err)
	}
}

func TestAtomicUnsupportedGate(t *testing.T) {
	opts := smallClusterOpts()
	opts.Replication = ReplicationOptions{Factor: 2, WriteQuorum: 1}
	c, err := OpenCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.AtomicMultiPut([][]byte{[]byte("a"), []byte("b")}, [][]byte{[]byte("1"), []byte("2")})
	if !errors.Is(err, ErrAtomicUnsupported) {
		t.Fatalf("R=2 W=1 ReadOne: want ErrAtomicUnsupported, got %v", err)
	}

	// OCC transactions take the same 2PC path for multi-key commits, so the
	// gate must reject them too — up front, not at commit.
	if _, err := c.BeginTxn(); !errors.Is(err, ErrAtomicUnsupported) {
		t.Fatalf("BeginTxn under R=2 W=1: want ErrAtomicUnsupported, got %v", err)
	}
	ran := false
	_, err = c.Txn(func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, ErrAtomicUnsupported) {
		t.Fatalf("Txn under R=2 W=1: want ErrAtomicUnsupported, got %v", err)
	}
	if ran {
		t.Fatal("Txn body ran despite the gate")
	}

	// Full write quorum makes the commit record decisive: allowed.
	opts2 := smallClusterOpts()
	opts2.Replication = ReplicationOptions{Factor: 2, WriteQuorum: 2}
	c2, err := OpenCluster(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.AtomicMultiPut([][]byte{[]byte("a"), []byte("b")}, [][]byte{[]byte("1"), []byte("2")})
	if err != nil {
		t.Fatalf("R=2 W=2: atomic batch failed: %v", err)
	}
	if !res.Atomic || res.TxnID == 0 {
		t.Fatalf("batch not marked atomic: %+v", res)
	}
	if v, _, err := c2.Get([]byte("b")); err != nil || string(v) != "2" {
		t.Fatalf("Get b after atomic put: %q, %v", v, err)
	}
}

// TestRawWriteInvalidatesReads: a raw (non-transactional) write routed
// through RawWrite bumps the OCC versions, so an open transaction that read
// the key before the write conflicts instead of committing a stale
// derivation over it.
func TestRawWriteInvalidatesReads(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Put([]byte("k"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	tx, err := c.BeginTxn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := c.RawWrite([][]byte{[]byte("k")}, func() error {
		_, err := c.Put([]byte("k"), []byte("raw"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx.Put([]byte("k"), []byte("stale"))
	if err := tx.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("commit after raw write = %v; want ErrTxnConflict", err)
	}
	if v, _, err := c.Get([]byte("k")); err != nil || string(v) != "raw" {
		t.Fatalf("k = %q, %v; want raw", v, err)
	}
}

// TestTxnInDoubtSentinel pins the contract that an in-doubt commit is not an
// abort: code switching on ErrTxnAborted to mean "nothing survived" must not
// match an undecided batch.
func TestTxnInDoubtSentinel(t *testing.T) {
	if errors.Is(ErrTxnInDoubt, ErrTxnAborted) {
		t.Fatal("ErrTxnInDoubt must not match ErrTxnAborted")
	}
	if errors.Is(ErrTxnAborted, ErrTxnInDoubt) {
		t.Fatal("ErrTxnAborted must not match ErrTxnInDoubt")
	}
}

func TestTxnOptionsValidation(t *testing.T) {
	opts := smallClusterOpts()
	opts.Txn.MaxRetries = -1
	if _, err := OpenCluster(opts); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("negative MaxRetries: want ErrInvalidOptions, got %v", err)
	}
}

func TestClusterIncrAppendCAS(t *testing.T) {
	c, err := OpenCluster(smallClusterOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for want := int64(1); want <= 3; want++ {
		got, lat, err := c.Incr([]byte("ctr"), 1)
		if err != nil || got != want {
			t.Fatalf("Incr #%d: got %d, %v", want, got, err)
		}
		if lat < 0 {
			t.Fatalf("negative latency %v", lat)
		}
	}
	if _, err := c.Append([]byte("log"), []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append([]byte("log"), []byte("cd")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := c.Get([]byte("log")); err != nil || string(v) != "abcd" {
		t.Fatalf("log = %q, %v", v, err)
	}
	if _, err := c.CompareAndSwap([]byte("cas"), nil, []byte("init")); err != nil {
		t.Fatalf("CAS expect-absent: %v", err)
	}
	if _, err := c.CompareAndSwap([]byte("cas"), []byte("init"), []byte("next")); err != nil {
		t.Fatalf("CAS swap: %v", err)
	}
	if v, _, err := c.Get([]byte("cas")); err != nil || string(v) != "next" {
		t.Fatalf("cas = %q, %v", v, err)
	}
	st := c.TxnStats()
	if st.Commits == 0 {
		t.Fatalf("no commits recorded: %+v", st)
	}
}

// TestAtomicBatchDeterministicAcrossWorkers commits the same atomic batches
// on a serial and a Workers-parallel cluster and requires identical clocks
// and transaction stats — the 2PC path must preserve the cluster's
// bit-exactness contract.
func TestAtomicBatchDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (Time, TxnStats, []byte) {
		opts := smallClusterOpts()
		opts.Workers = workers
		c, err := OpenCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for round := 0; round < 8; round++ {
			keys := make([][]byte, 6)
			vals := make([][]byte, 6)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("k%02d-%d", round, i))
				vals[i] = bytes.Repeat([]byte{byte('a' + round)}, 40)
			}
			if _, err := c.AtomicMultiPut(keys, vals); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if _, _, err := c.Incr([]byte("hot"), 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		v, _, err := c.Get([]byte("hot"))
		if err != nil {
			t.Fatal(err)
		}
		return c.Now(), c.TxnStats(), append([]byte(nil), v...)
	}

	now1, st1, v1 := run(1)
	now4, st4, v4 := run(4)
	if now1 != now4 {
		t.Fatalf("clock diverged: serial %d, workers=4 %d", now1, now4)
	}
	if st1 != st4 {
		t.Fatalf("stats diverged:\nserial %+v\nworkers %+v", st1, st4)
	}
	if !bytes.Equal(v1, v4) {
		t.Fatalf("counter diverged: %q vs %q", v1, v4)
	}
}

// TestAtomicBatchSurvivesKillShard commits atomic batches against a
// replicated fleet, kills a member, recovers, and checks the atomicity
// oracle: every batch is either fully visible or fully absent.
func TestAtomicBatchSurvivesKillShard(t *testing.T) {
	opts := smallClusterOpts()
	opts.Replication = ReplicationOptions{Factor: 2, WriteQuorum: 2}
	c, err := OpenCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := func(round int) ([][]byte, [][]byte) {
		keys := make([][]byte, 4)
		vals := make([][]byte, 4)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("b%02d-%d", round, i))
			vals[i] = []byte(fmt.Sprintf("v%02d-%d", round, i))
		}
		return keys, vals
	}

	committed := 0
	for round := 0; round < 6; round++ {
		if round == 3 {
			if err := c.KillShard(1, KillPowerCut); err != nil {
				t.Fatal(err)
			}
		}
		keys, vals := batch(round)
		if _, err := c.AtomicMultiPut(keys, vals); err != nil {
			// With a dead member some batches may miss quorum — allowed, as
			// long as the oracle below holds.
			continue
		}
		committed++
	}
	if committed == 0 {
		t.Fatal("no batch committed")
	}
	if _, _, err := c.RecoverTxns(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		keys, vals := batch(round)
		visible := 0
		for i, k := range keys {
			v, _, err := c.Get(k)
			if err == nil && bytes.Equal(v, vals[i]) {
				visible++
			}
		}
		if visible != 0 && visible != len(keys) {
			t.Fatalf("round %d: batch partially visible (%d/%d keys)", round, visible, len(keys))
		}
	}
}
