package main

import (
	"strings"
	"testing"

	"anykey"
)

// Drive the REPL with a script and check its transcript.
func TestREPLScript(t *testing.T) {
	dev, err := anykey.Open(anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	script := strings.Join([]string{
		"help",
		"put alpha one",
		"get alpha",
		"get missing",
		"put beta two",
		"scan a 5",
		"del alpha",
		"get alpha",
		"fill 100 64",
		"stats",
		"meta",
		"storm 150000 3",
		"storm bad-args",
		"bogus-cmd",
		"put tooFewArgs",
		"quit",
	}, "\n")
	var out strings.Builder
	repl(dev, strings.NewReader(script), &out)
	got := out.String()
	for _, want := range []string{
		`"one"`,            // get alpha
		"not found",        // get missing / deleted alpha
		`"beta" = "two"`,   // scan output
		"live keys:",       // stats
		"level lists",      // meta
		`unknown command`,  // bogus
		"usage: put",       // arg validation
		"device clock now", // fill
		"gets offered at",  // storm
		"usage: storm",     // storm arg validation
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}
}
