// Command anykeycli is an interactive shell over a simulated KV-SSD: open a
// device with any of the paper's designs and issue put/get/delete/scan
// while watching simulated latencies and device internals.
//
// Usage:
//
//	anykeycli -design anykey+ -capacity 64
//	anykeycli -design anykey -fault-read-err 0.01 -cut-at-op 5000
//	anykeycli -design anykey+ -crashsweep -trials 8
//	anykeycli -shards 4 -router consistent     # sharded cluster shell
//	anykeycli net -addr 127.0.0.1:6380         # RESP client for anykeyserver (see net.go)
//
// Commands:
//
//	put <key> <value>      store a pair
//	get <key>              read the newest value
//	del <key>              delete a key
//	scan <start> <n>       range query
//	fill <n> <valuesize>   bulk-load n synthetic pairs
//	sync                   flush the write buffer (durability point)
//	cycle                  power-cycle: drop volatile state, recover from flash
//	stats                  flash counters, compaction/GC, injected faults
//	meta                   metadata structures and placement
//	trace on|off           start/stop event tracing
//	trace save <file>      export the trace as Chrome trace_event JSON
//	trace csv <file>       export the trace as CSV
//	trace blame [pct]      tail-latency blame report (default P99)
//	storm <ops/s> <ms> [timeout-ms]
//	                       open-loop burst: Poisson GET arrivals at the given
//	                       rate for the given span, reporting deadline misses
//	quit
//
// -crashsweep runs the power-cut crash-consistency sweep from
// internal/fault/crashtest against the chosen design and prints one line
// per trial, instead of starting the shell.
//
// With -shards N the shell drives a sharded N-device cluster through the
// batched MultiPut/MultiGet API instead of one device. Add -replication R
// (and optionally -wquorum W) to replicate every key to R ring members and
// unlock the elastic-fleet commands. Cluster commands:
//
//	put/get/del <key> ...  single-key ops (each line shows the shard)
//	mput <k>=<v> ...       one batch across the fleet
//	mget <k> ...           one batched read
//	incr <k> [delta]       transactional counter add (OCC retry; hot keys split)
//	append <k> <suffix>    transactional append
//	cas <k> <old|-> <new>  compare-and-swap ('-' expects the key absent)
//	txn <k>=<v>|del:<k> .. one atomic cross-shard commit (2PC)
//	shard <key>            which shard a key routes to
//	stats                  merged rollup plus the per-shard breakdown
//	addshard               grow the ring by one member (starts a migration)
//	rmshard <id>           retire a member, streaming its keys to new owners
//	rebalance [n]          step the in-flight migration by n keys (default: drain it)
//	rebalance-status       migration progress plus the replication counters
//	kill <id> [powercut|grownbad]
//	                       kill a member device mid-traffic (replicas keep serving)
//	rebuild <id>           replace a dead member, refilling from surviving replicas
//	meta | sync | quit     as in the single-device shell
package main

import (
	"bufio"
	"errors"
	"flag"
	gofmt "fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"anykey"
	"anykey/internal/fault"
	"anykey/internal/fault/crashtest"
	"anykey/internal/workload"
)

var designs = map[string]anykey.Design{
	"pink":    anykey.DesignPinK,
	"anykey":  anykey.DesignAnyKey,
	"anykey+": anykey.DesignAnyKeyPlus,
	"anykey-": anykey.DesignAnyKeyMinus,
}

func main() {
	// `anykeycli net …` is a self-contained RESP client (see net.go); it
	// has its own flag set, so dispatch before flag.Parse touches os.Args.
	if len(os.Args) > 1 && os.Args[1] == "net" {
		os.Exit(runNet(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
	}

	var (
		design   = flag.String("design", "anykey+", "pink | anykey | anykey+ | anykey-")
		capacity = flag.Int("capacity", 64, "device capacity in MiB")

		faultSeed   = flag.Int64("fault-seed", 1, "fault-injection seed")
		readErrRate = flag.Float64("fault-read-err", 0, "per-read transient error probability [0,1)")
		progFail    = flag.Float64("fault-program-fail", 0, "per-program failure probability [0,1)")
		eraseFail   = flag.Float64("fault-erase-fail", 0, "per-erase failure probability [0,1)")
		cutAtOp     = flag.Int64("cut-at-op", 0, "cut power before this flash op (1-based; recover with 'cycle')")

		crashsweep = flag.Bool("crashsweep", false, "run the power-cut crash-consistency sweep and exit")
		trials     = flag.Int("trials", 4, "crashsweep: number of cut positions")
		sweepOps   = flag.Int("sweep-ops", 1200, "crashsweep: workload operations per trial")
		sweepSeed  = flag.Int64("sweep-seed", 7, "crashsweep: workload seed")

		shards      = flag.Int("shards", 0, "open a sharded cluster of this many devices instead of one device (0 = single device)")
		router      = flag.String("router", "consistent", "cluster routing policy: consistent | modulo")
		replication = flag.Int("replication", 0, "cluster runs: replicate each key to this many ring members (0 = no replication)")
		wquorum     = flag.Int("wquorum", 0, "cluster runs: alive-replica successes required to ack a write (default -replication, write-all)")
	)
	flag.Parse()

	d, ok := designs[strings.ToLower(*design)]
	if !ok {
		gofmt.Fprintf(os.Stderr, "anykeycli: unknown design %q\n", *design)
		os.Exit(2)
	}
	plan := anykey.FaultPlan{
		Seed:            *faultSeed,
		ReadErrorRate:   *readErrRate,
		ProgramFailRate: *progFail,
		EraseFailRate:   *eraseFail,
		CutAtOp:         *cutAtOp,
	}
	opts := anykey.Options{Design: d, CapacityMB: *capacity}
	if plan.Enabled() {
		opts.Faults = &plan
	}

	if *crashsweep {
		if err := runCrashSweep(opts, *trials, *sweepOps, *sweepSeed, os.Stdout); err != nil {
			gofmt.Fprintln(os.Stderr, "anykeycli:", err)
			os.Exit(1)
		}
		return
	}

	if *replication > 0 && *shards <= 0 {
		gofmt.Fprintln(os.Stderr, "anykeycli: -replication needs a -shards cluster")
		os.Exit(2)
	}

	if *shards > 0 {
		pol, ok := map[string]anykey.RouterPolicy{
			"consistent": anykey.RouteConsistent,
			"modulo":     anykey.RouteModulo,
		}[strings.ToLower(*router)]
		if !ok {
			gofmt.Fprintf(os.Stderr, "anykeycli: unknown router %q (consistent | modulo)\n", *router)
			os.Exit(2)
		}
		opts.Faults = nil // fault injection is a single-device tool
		c, err := anykey.OpenCluster(anykey.ClusterOptions{
			Shards: *shards, Router: pol, Device: opts,
			Replication: anykey.ReplicationOptions{Factor: *replication, WriteQuorum: *wquorum},
		})
		if err != nil {
			gofmt.Fprintln(os.Stderr, "anykeycli:", err)
			os.Exit(1)
		}
		defer c.Close()
		gofmt.Printf("opened %d-shard %s cluster (%s router, %d MiB/shard); type 'help' for commands\n",
			*shards, d, *router, *capacity)
		if r := c.Replication(); r.Factor > 0 {
			gofmt.Printf("replicating: R=%d W=%d %s; fleet commands available (addshard/rmshard/kill/rebuild)\n",
				r.Factor, r.WriteQuorum, r.ReadMode)
		}
		clusterRepl(c, os.Stdin, os.Stdout)
		return
	}

	dev, err := anykey.Open(opts)
	if err != nil {
		gofmt.Fprintln(os.Stderr, "anykeycli:", err)
		os.Exit(1)
	}
	defer dev.Close()
	gofmt.Printf("opened %s device, %d MiB; type 'help' for commands\n", d, *capacity)
	repl(dev, os.Stdin, os.Stdout)
}

// clusterRepl runs the command loop over a sharded cluster; split from main
// so tests can drive it with a scripted reader.
func clusterRepl(c *anykey.Cluster, in io.Reader, out io.Writer) {
	fmt := &printer{w: out}
	var mig *anykey.Migration // in-flight topology change, stepped by 'rebalance'
	sc := bufio.NewScanner(in)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | mput <k>=<v>... | mget <k>... | shard <k> | stats | meta | sync | quit")
			fmt.Println("txn: incr <k> [delta] | append <k> <suffix> | cas <k> <old|-> <new> | txn <k>=<v>|del:<k> ...")
			fmt.Println("fleet: addshard | rmshard <id> | rebalance [n] | rebalance-status | kill <id> [powercut|grownbad] | rebuild <id>")
		case "addshard":
			m, err := c.AddShard()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			mig = m
			st := c.Migrating()
			fmt.Printf("migration started: member %d joining, %d source shards to stream ('rebalance' to drain; traffic keeps flowing, reads double-read until commit)\n",
				st.Subject, st.SourcesTotal)
		case "rmshard":
			if len(fields) != 2 {
				fmt.Println("usage: rmshard <id>")
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("usage: rmshard <id>")
				continue
			}
			m, err := c.RemoveShard(id)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			mig = m
			st := c.Migrating()
			fmt.Printf("migration started: member %d retiring, streaming its keys to the surviving ring ('rebalance' to drain)\n", st.Subject)
		case "rebalance":
			if mig == nil {
				fmt.Println("no migration in flight (start one with 'addshard' or 'rmshard <id>')")
				continue
			}
			n := 0 // Step treats 0 as the default chunk; no arg means drain
			var err error
			done := false
			if len(fields) > 1 {
				if n, err = strconv.Atoi(fields[1]); err != nil || n <= 0 {
					fmt.Println("usage: rebalance [keys-per-step]")
					continue
				}
				done, err = mig.Step(n)
			} else {
				err, done = mig.Run(), true
			}
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fs, _ := c.FleetStats()
			if done {
				mig = nil
				fmt.Printf("migration committed: epoch %d, %d keys (%d bytes) moved, %d stale copies deleted\n",
					fs.Repl.Epoch, fs.Repl.MigratedKeys, fs.Repl.MigratedBytes, fs.Repl.CleanupDeletes)
			} else {
				drained, total := mig.Progress()
				fmt.Printf("stepped: %d/%d source shards drained, %d keys moved so far\n",
					drained, total, fs.Repl.MigratedKeys)
			}
		case "rebalance-status":
			fs, err := c.FleetStats()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			st := c.Migrating()
			if st.Active {
				fmt.Printf("migration active: %s member %d, %d/%d source shards drained\n",
					st.Kind, st.Subject, st.SourcesDone, st.SourcesTotal)
			} else {
				fmt.Printf("no migration in flight (epoch %d, ring of %d)\n", st.Epoch, fs.Repl.RingMembers)
			}
			fmt.Printf("replication: R=%d W=%d %s; %d quorum failures, %d read fallbacks, %d read repairs\n",
				fs.Repl.Factor, fs.Repl.WriteQuorum, fs.Repl.ReadMode,
				fs.Repl.QuorumFailures, fs.Repl.ReadFallbacks, fs.Repl.ReadRepairs)
			fmt.Printf("moved: %d keys (%d bytes) in %d ops, %d cleanup deletes; rebuilds: %d (%d keys)\n",
				fs.Repl.MigratedKeys, fs.Repl.MigratedBytes, fs.Repl.MigrationOps,
				fs.Repl.CleanupDeletes, fs.Repl.Rebuilds, fs.Repl.RebuiltKeys)
			for _, m := range fs.Members {
				line := gofmt.Sprintf("  member %d: %s", m.Shard, m.State)
				if m.Cause != "" {
					line += " (" + m.Cause + ")"
				}
				fmt.Printf("%s, %d ops, %d live keys\n", line, m.Ops, m.LiveKeys)
			}
		case "kill":
			if len(fields) < 2 || len(fields) > 3 {
				fmt.Println("usage: kill <id> [powercut|grownbad]")
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("usage: kill <id> [powercut|grownbad]")
				continue
			}
			cause := anykey.KillPowerCut
			if len(fields) == 3 {
				switch fields[2] {
				case "powercut":
					cause = anykey.KillPowerCut
				case "grownbad":
					cause = anykey.KillGrownBad
				default:
					fmt.Printf("unknown kill cause %q (powercut | grownbad)\n", fields[2])
					continue
				}
			}
			if err := c.KillShard(id, cause); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("member %d killed (%v): its data is gone; surviving replicas serve, 'rebuild %d' to replace the hardware\n",
				id, cause, id)
		case "rebuild":
			if len(fields) != 2 {
				fmt.Println("usage: rebuild <id>")
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("usage: rebuild <id>")
				continue
			}
			rb, err := c.RebuildShard(id)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := rb.Run(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			_, _, keys := rb.Progress()
			state, _, _ := c.ShardState(id)
			fmt.Printf("member %d rebuilt: %d keys refilled from surviving replicas, state %s, clock %v\n",
				id, keys, state, c.ShardNow(id))
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			lat, err := c.Put([]byte(fields[1]), []byte(fields[2]))
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			report(fmt, lat, err)
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, lat, err := c.Get([]byte(fields[1]))
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			if err == nil {
				fmt.Printf("%q  ", v)
			}
			report(fmt, lat, err)
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			lat, err := c.Delete([]byte(fields[1]))
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			report(fmt, lat, err)
		case "incr":
			if len(fields) != 2 && len(fields) != 3 {
				fmt.Println("usage: incr <key> [delta]")
				continue
			}
			delta := int64(1)
			if len(fields) == 3 {
				d, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					fmt.Println("usage: incr <key> [delta]")
					continue
				}
				delta = d
			}
			v, lat, err := c.Incr([]byte(fields[1]), delta)
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("%d  (%v)\n", v, lat)
		case "append":
			if len(fields) != 3 {
				fmt.Println("usage: append <key> <suffix>")
				continue
			}
			lat, err := c.Append([]byte(fields[1]), []byte(fields[2]))
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			report(fmt, lat, err)
		case "cas":
			if len(fields) != 4 {
				fmt.Println("usage: cas <key> <old|-> <new>   ('-' expects the key absent)")
				continue
			}
			old := []byte(fields[2])
			if fields[2] == "-" {
				old = nil
			}
			lat, err := c.CompareAndSwap([]byte(fields[1]), old, []byte(fields[3]))
			fmt.Printf("[shard %d] ", c.ShardFor([]byte(fields[1])))
			if errors.Is(err, anykey.ErrTxnConflict) && !errors.Is(err, anykey.ErrTxnAborted) {
				fmt.Printf("conflict: %v\n", err)
				continue
			}
			report(fmt, lat, err)
		case "txn":
			if len(fields) < 2 {
				fmt.Println("usage: txn <key>=<value> | del:<key> ...   (one atomic cross-shard commit)")
				continue
			}
			var ops []anykey.TxnOp
			bad := false
			for _, f := range fields[1:] {
				if k, ok := strings.CutPrefix(f, "del:"); ok && k != "" {
					ops = append(ops, anykey.TxnOp{Key: []byte(k), Delete: true})
					continue
				}
				k, v, ok := strings.Cut(f, "=")
				if !ok || k == "" {
					fmt.Printf("malformed op %q (want key=value or del:key)\n", f)
					bad = true
					break
				}
				ops = append(ops, anykey.TxnOp{Key: []byte(k), Value: []byte(v)})
			}
			if bad {
				continue
			}
			br, err := c.AtomicExec(ops)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("committed txn %d: %d ops over shards %v (%v span)\n",
				br.TxnID, len(ops), br.Shards, br.Latency())
		case "mput":
			if len(fields) < 2 {
				fmt.Println("usage: mput <key>=<value> ...")
				continue
			}
			var keys, vals [][]byte
			bad := false
			for _, kv := range fields[1:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					fmt.Printf("malformed pair %q (want key=value)\n", kv)
					bad = true
					break
				}
				keys = append(keys, []byte(k))
				vals = append(vals, []byte(v))
			}
			if bad {
				continue
			}
			br, err := c.MultiPut(keys, vals)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := br.FirstErr(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ok: %d pairs over shards %v (%v batch span)\n", len(keys), br.Shards, br.Latency())
		case "mget":
			if len(fields) < 2 {
				fmt.Println("usage: mget <key> ...")
				continue
			}
			var keys [][]byte
			for _, k := range fields[1:] {
				keys = append(keys, []byte(k))
			}
			br, err := c.MultiGet(keys)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for i, comp := range br.Completions {
				if br.Errs[i] != nil {
					fmt.Printf("  [shard %d] %q: %v\n", br.Shards[i], keys[i], br.Errs[i])
					continue
				}
				fmt.Printf("  [shard %d] %q = %q\n", br.Shards[i], keys[i], comp.Value)
			}
			fmt.Printf("batch span %v\n", br.Latency())
		case "shard":
			if len(fields) != 2 {
				fmt.Println("usage: shard <key>")
				continue
			}
			fmt.Printf("%q -> shard %d of %d\n", fields[1], c.ShardFor([]byte(fields[1])), c.Shards())
		case "stats":
			st := c.Stats()
			fmt.Printf("cluster: %d ops, %d live keys (%d bytes), clock %v\n",
				st.Ops, st.LiveKeys, st.LiveBytes, st.Now)
			fmt.Printf("flash: %d reads, %d writes, %d erases\n",
				st.Flash.TotalReads(), st.Flash.TotalWrites(), st.Flash.Erases)
			fmt.Printf("compactions: %d tree, %d log, %d chained; GC: %d runs, %d relocations\n",
				st.TreeCompactions, st.LogCompactions, st.ChainedCompactions, st.GCRuns, st.GCRelocations)
			if ts := c.TxnStats(); ts.Commits+ts.Aborts > 0 {
				fmt.Printf("txn: %d commits, %d aborts (%d conflicts, %d retries), %d atomic batches, %d split merges over %d hot keys\n",
					ts.Commits, ts.Aborts, ts.Conflicts, ts.Retries, ts.AtomicBatches, ts.SplitMerges, ts.HotKeys)
			}
			for _, ss := range st.PerShard {
				fmt.Printf("  shard %d: %d ops, %d live keys, clock %v\n", ss.Shard, ss.Ops, ss.LiveKeys, ss.Now)
			}
			if fs, err := c.FleetStats(); err == nil {
				fmt.Printf("replication: R=%d W=%d, epoch %d, %d quorum failures, %d read fallbacks, %d dead members ('rebalance-status' for detail)\n",
					fs.Repl.Factor, fs.Repl.WriteQuorum, fs.Repl.Epoch,
					fs.Repl.QuorumFailures, fs.Repl.ReadFallbacks, fs.Repl.DeadMembers)
			}
		case "meta":
			for _, m := range c.Metadata() {
				place := "DRAM"
				if !m.InDRAM {
					place = "flash"
				}
				fmt.Printf("  %-24s %10d B  %s\n", m.Name, m.Bytes, place)
			}
		case "sync":
			now, err := c.Sync()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ok (fleet flushed, clock %v)\n", now)
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

// runCrashSweep replays a seeded workload, cutting power at evenly spaced
// flash-op boundaries, and verifies the durability contract after each
// recovery (see internal/fault/crashtest).
func runCrashSweep(opts anykey.Options, trials, ops int, seed int64, out io.Writer) error {
	cfg := crashtest.Config{Opts: opts, Ops: ops, Seed: seed, Trials: trials}
	if opts.Faults != nil {
		cfg.Rates = fault.Plan{
			Seed:            opts.Faults.Seed,
			ReadErrorRate:   opts.Faults.ReadErrorRate,
			ProgramFailRate: opts.Faults.ProgramFailRate,
			EraseFailRate:   opts.Faults.EraseFailRate,
		}
		cfg.Opts.Faults = nil // the sweep owns the per-trial plans
	}
	res, err := crashtest.Run(cfg)
	if err != nil {
		return err
	}
	gofmt.Fprintf(out, "crash sweep: %s, %d ops, %d flash ops in pilot, %d trials\n",
		opts.Design, ops, res.PilotFlashOps, len(res.Trials))
	for _, tr := range res.Trials {
		gofmt.Fprintf(out, "  cut@%-6d fired=%-5v ops-applied=%-5d torn=%d lost-log=%d stale-epochs=%d injected=%d\n",
			tr.CutAtOp, tr.CutFired, tr.OpsApplied,
			tr.Recovery.TornPagesSkipped, tr.Recovery.LostLogValues,
			tr.Recovery.StaleEpochsDiscarded, tr.Faults.Total())
	}
	gofmt.Fprintln(out, "all trials verified: synced data survived, no corrupt resurrection")
	return nil
}

// repl runs the command loop; split from main so tests can drive it with a
// scripted reader.
func repl(dev *anykey.Device, in io.Reader, out io.Writer) {
	fmt := &printer{w: out}
	sc := bufio.NewScanner(in)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | scan <start> <n> | fill <n> <valsize> | sync | cycle | stats | meta | trace on|off|save <f>|csv <f>|blame [pct] | storm <ops/s> <ms> [timeout-ms] | quit")
		case "put":
			if len(fields) != 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			lat, err := dev.Put([]byte(fields[1]), []byte(fields[2]))
			report(fmt, lat, err)
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, lat, err := dev.Get([]byte(fields[1]))
			if err == nil {
				fmt.Printf("%q  ", v)
			}
			report(fmt, lat, err)
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			lat, err := dev.Delete([]byte(fields[1]))
			report(fmt, lat, err)
		case "scan":
			if len(fields) != 3 {
				fmt.Println("usage: scan <start> <n>")
				continue
			}
			n, _ := strconv.Atoi(fields[2])
			pairs, lat, err := dev.Scan([]byte(fields[1]), n)
			for _, p := range pairs {
				fmt.Printf("  %q = %q\n", p.Key, p.Value)
			}
			report(fmt, lat, err)
		case "fill":
			if len(fields) != 3 {
				fmt.Println("usage: fill <n> <valuesize>")
				continue
			}
			n, _ := strconv.Atoi(fields[1])
			vs, _ := strconv.Atoi(fields[2])
			val := strings.Repeat("v", vs)
			var failed error
			for i := 0; i < n; i++ {
				if _, err := dev.Put([]byte(gofmt.Sprintf("fill-%09d", i)), []byte(val)); err != nil {
					failed = err
					break
				}
			}
			if failed != nil {
				fmt.Println("stopped:", failed)
			}
			fmt.Printf("device clock now %v\n", dev.Now())
		case "sync":
			lat, err := dev.Sync()
			report(fmt, lat, err)
		case "cycle":
			if err := dev.PowerCycle(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("recovered: %+v\n", dev.Stats().Recovery)
		case "stats":
			st := dev.Stats()
			c := dev.Flash()
			fmt.Printf("live keys: %d (%d bytes)\n", st.LiveKeys, st.LiveBytes)
			fmt.Printf("flash: %d reads, %d writes, %d erases\n", c.TotalReads(), c.TotalWrites(), c.Erases)
			fmt.Printf("compactions: %d tree, %d log, %d chained; GC: %d runs, %d relocations\n",
				st.TreeCompactions, st.LogCompactions, st.ChainedCompactions, st.GCRuns, st.GCRelocations)
			fmt.Printf("DRAM: %d / %d bytes\n", st.DRAMUsed(), st.DRAMCapacity())
			if st.Faults != nil {
				fmt.Printf("injected faults: %+v\n", st.Faults())
			}
		case "meta":
			for _, m := range dev.Metadata() {
				place := "DRAM"
				if !m.InDRAM {
					place = "flash"
				}
				fmt.Printf("  %-24s %10d B  %s\n", m.Name, m.Bytes, place)
			}
		case "trace":
			traceCmd(dev, fmt, fields[1:])
		case "storm":
			stormCmd(dev, fmt, fields[1:])
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

// traceCmd handles the REPL's trace subcommands.
func traceCmd(dev *anykey.Device, fmt *printer, args []string) {
	if len(args) == 0 {
		fmt.Println("usage: trace on|off|save <file>|csv <file>|blame [pct]")
		return
	}
	switch args[0] {
	case "on":
		tr := dev.StartTrace(anykey.TraceOptions{})
		fmt.Printf("tracing on (%d events retained so far)\n", tr.EventCount())
	case "off":
		tr := dev.StopTrace()
		if tr == nil {
			fmt.Println("tracing was not on")
			return
		}
		fmt.Printf("tracing off; %d events discarded (save or blame before 'trace off' to use them)\n", tr.EventCount())
	case "save", "csv":
		if len(args) != 2 {
			fmt.Printf("usage: trace %s <file>\n", args[0])
			return
		}
		tr := dev.Trace()
		if tr == nil {
			fmt.Println("tracing is off (run 'trace on' first)")
			return
		}
		f, err := os.Create(args[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if args[0] == "csv" {
			err = tr.WriteCSV(f)
		} else {
			err = tr.WriteChromeTrace(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("wrote %s (%d events, %d ops)\n", args[1], tr.EventCount(), len(tr.Ops()))
	case "blame":
		tr := dev.Trace()
		if tr == nil {
			fmt.Println("tracing is off (run 'trace on' first)")
			return
		}
		pct := 99.0
		if len(args) > 1 {
			p, err := strconv.ParseFloat(args[1], 64)
			if err != nil || p <= 0 || p > 100 {
				fmt.Println("usage: trace blame [percentile in (0,100]]")
				return
			}
			pct = p
		}
		fmt.Print(tr.Blame(anykey.BlameOptions{Percentile: pct}).String())
	default:
		fmt.Printf("unknown trace subcommand %q\n", args[0])
	}
}

// stormCmd fires an open-loop GET burst at the device: deterministic
// exponential arrivals at the given offered rate for the given virtual-time
// span, submitted through a fresh QD-64 engine's *At path so requests queue
// when the device falls behind. Keys cycle through a small population the
// command writes first; the report counts client-deadline misses and the
// worst end-to-end latency — a hand-held version of the harness's storm
// experiment.
func stormCmd(dev *anykey.Device, fmt *printer, args []string) {
	if len(args) < 2 || len(args) > 3 {
		fmt.Println("usage: storm <ops/s> <millis> [timeout-ms]")
		return
	}
	rate, err1 := strconv.ParseFloat(args[0], 64)
	ms, err2 := strconv.ParseFloat(args[1], 64)
	timeoutMS := 10.0
	var err3 error
	if len(args) == 3 {
		timeoutMS, err3 = strconv.ParseFloat(args[2], 64)
	}
	if err1 != nil || err2 != nil || err3 != nil || rate <= 0 || ms <= 0 || timeoutMS <= 0 {
		fmt.Println("usage: storm <ops/s> <millis> [timeout-ms]")
		return
	}
	const population = 256
	for i := 0; i < population; i++ {
		if _, err := dev.Put([]byte(gofmt.Sprintf("storm-%03d", i)), []byte("storm-value")); err != nil {
			fmt.Println("error pre-filling storm keys:", err)
			return
		}
	}
	eng, err := dev.NewEngine(64)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	arr, err := workload.NewArrivals(workload.ArrivalSpec{
		Shape: workload.ArrivalConstant, Rate: rate,
	}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var (
		epoch           = eng.Now()
		horizon         = anykey.Duration(ms * 1e6)
		timeout         = anykey.Duration(timeoutMS * 1e6)
		offered, missed int
		worst           anykey.Duration
	)
	for {
		rel := anykey.Duration(arr.Next())
		if rel > horizon {
			break
		}
		comp, err := eng.GetAt(epoch.Add(rel), []byte(gofmt.Sprintf("storm-%03d", offered%population)))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		offered++
		if lat := comp.Latency(); lat > worst {
			worst = lat
		}
		if comp.Latency() > timeout {
			missed++
		}
	}
	fmt.Printf("storm: %d gets offered at %.0f ops/s over %v; %d missed the %v deadline, worst latency %v\n",
		offered, rate, horizon, missed, timeout, worst)
	fmt.Printf("device clock now %v\n", dev.Now())
}

// printer writes REPL output to the configured writer with fmt semantics.
type printer struct{ w io.Writer }

func (p *printer) Print(a ...any)                 { gofmt.Fprint(p.w, a...) }
func (p *printer) Println(a ...any)               { gofmt.Fprintln(p.w, a...) }
func (p *printer) Printf(format string, a ...any) { gofmt.Fprintf(p.w, format, a...) }

func report(fmt *printer, lat anykey.Duration, err error) {
	switch {
	case err == nil:
		fmt.Printf("ok (%v simulated)\n", lat)
	case errors.Is(err, anykey.ErrNotFound):
		fmt.Printf("not found (%v simulated)\n", lat)
	default:
		fmt.Println("error:", err)
	}
}
