// net.go implements `anykeycli net`: a minimal RESP client for poking a
// running anykeyserver by hand and for driving it from CI.
//
// Usage:
//
//	anykeycli net [flags]                  interactive REPL
//	anykeycli net [flags] SET key value    one-shot command, prints the reply
//	anykeycli net [flags] -bench           concurrent mixed workload
//
// The bench mode opens -conns connections, each issuing -ops mixed
// SET/GET/MGET commands -pipeline deep, verifies every read against a
// per-connection model, and reports ok/busy/timeout tallies. It exits
// nonzero on transport errors or verification failures, which makes it the
// CI smoke driver for the server.
package main

import (
	"bufio"
	"flag"
	gofmt "fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"anykey/internal/server"
)

func runNet(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("anykeycli net", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:6380", "anykeyserver address")
		timeout  = fs.Duration("timeout", 5*time.Second, "dial and per-command deadline")
		bench    = fs.Bool("bench", false, "run the concurrent mixed workload instead of a REPL")
		conns    = fs.Int("conns", 16, "bench: concurrent connections")
		ops      = fs.Int("ops", 200, "bench: commands per connection")
		pipeline = fs.Int("pipeline", 1, "bench: commands in flight per connection")
		valSize  = fs.Int("value-size", 100, "bench: value payload bytes")
		seed     = fs.Int64("seed", 1, "bench: workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *bench {
		return runNetBench(*addr, *timeout, *conns, *ops, *pipeline, *valSize, *seed, stdout, stderr)
	}
	if fs.NArg() > 0 {
		return runNetOnce(*addr, *timeout, fs.Args(), stdout, stderr)
	}
	return runNetRepl(*addr, *timeout, stdin, stdout, stderr)
}

func runNetOnce(addr string, timeout time.Duration, args []string, stdout, stderr io.Writer) int {
	c, err := server.Dial(addr, timeout)
	if err != nil {
		gofmt.Fprintln(stderr, "anykeycli net:", err)
		return 1
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	rp, err := c.Do(args...)
	if err != nil {
		gofmt.Fprintln(stderr, "anykeycli net:", err)
		return 1
	}
	gofmt.Fprintln(stdout, rp.Text())
	if rp.Kind == '-' {
		return 1
	}
	return 0
}

func runNetRepl(addr string, timeout time.Duration, stdin io.Reader, stdout, stderr io.Writer) int {
	c, err := server.Dial(addr, timeout)
	if err != nil {
		gofmt.Fprintln(stderr, "anykeycli net:", err)
		return 1
	}
	defer c.Close()
	gofmt.Fprintf(stdout, "connected to %s; RESP commands, 'quit' to exit\n", addr)
	sc := bufio.NewScanner(stdin)
	for {
		gofmt.Fprint(stdout, "net> ")
		if !sc.Scan() {
			return 0
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.EqualFold(fields[0], "quit") || strings.EqualFold(fields[0], "exit") {
			return 0
		}
		c.SetDeadline(time.Now().Add(timeout))
		rp, err := c.Do(fields...)
		if err != nil {
			gofmt.Fprintln(stderr, "anykeycli net:", err)
			return 1
		}
		gofmt.Fprintln(stdout, rp.Text())
	}
}

// benchTally aggregates per-connection outcomes.
type benchTally struct {
	ok, busy, timeout, errs, badReads int64
}

func (t *benchTally) add(o benchTally) {
	t.ok += o.ok
	t.busy += o.busy
	t.timeout += o.timeout
	t.errs += o.errs
	t.badReads += o.badReads
}

func runNetBench(addr string, timeout time.Duration, conns, ops, pipeline, valSize int,
	seed int64, stdout, stderr io.Writer) int {
	if conns < 1 || ops < 1 || pipeline < 1 {
		gofmt.Fprintln(stderr, "anykeycli net: -conns, -ops and -pipeline must be positive")
		return 2
	}
	var (
		mu    sync.Mutex
		total benchTally
		wg    sync.WaitGroup
	)
	start := time.Now()
	failed := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tally, err := benchConn(addr, timeout, g, ops, pipeline, valSize, seed)
			mu.Lock()
			total.add(tally)
			mu.Unlock()
			if err != nil {
				failed <- gofmt.Errorf("conn %d: %w", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(failed)
	wall := time.Since(start)

	gofmt.Fprintf(stdout, "net bench: %d conns x %d ops, pipeline %d against %s\n",
		conns, ops, pipeline, addr)
	gofmt.Fprintf(stdout, "  ok %d  busy %d  timeout %d  errors %d  bad-reads %d\n",
		total.ok, total.busy, total.timeout, total.errs, total.badReads)
	gofmt.Fprintf(stdout, "  wall %v (%.0f ops/s)\n",
		wall.Round(time.Millisecond), float64(total.ok)/wall.Seconds())

	code := 0
	for err := range failed {
		gofmt.Fprintln(stderr, "anykeycli net:", err)
		code = 1
	}
	if total.badReads > 0 {
		gofmt.Fprintln(stderr, "anykeycli net: read verification failed")
		code = 1
	}
	if total.ok == 0 {
		gofmt.Fprintln(stderr, "anykeycli net: no command succeeded")
		code = 1
	}
	return code
}

// benchConn drives one connection: a pipelined stream of mixed commands
// verified against a local model of this connection's keyspace.
func benchConn(addr string, timeout time.Duration, id, ops, pipeline, valSize int,
	seed int64) (benchTally, error) {
	var tally benchTally
	c, err := server.Dial(addr, timeout)
	if err != nil {
		return tally, err
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(seed + int64(id)))
	model := map[string]string{}
	value := strings.Repeat("v", valSize)

	type expect struct {
		op   string
		keys []string
	}
	var window []expect

	flushWindow := func() error {
		c.SetDeadline(time.Now().Add(timeout))
		if err := c.Flush(); err != nil {
			return err
		}
		for _, ex := range window {
			rp, err := c.Receive()
			if err != nil {
				return err
			}
			switch {
			case rp.Kind == '-' && strings.HasPrefix(rp.Str, "BUSY"):
				tally.busy++
				continue
			case rp.Kind == '-' && strings.HasPrefix(rp.Str, "TIMEOUT"):
				tally.timeout++
				continue
			case rp.Kind == '-':
				tally.errs++
				continue
			}
			tally.ok++
			switch ex.op {
			case "SET":
				model[ex.keys[0]] = value
			case "GET":
				// Only present keys are asserted: a SET that answered
				// -TIMEOUT was still applied, so an "absent" key may
				// legitimately read back.
				want, present := model[ex.keys[0]]
				if present && string(rp.Bulk) != want {
					tally.badReads++
				}
			case "MGET":
				if rp.Kind != '*' || len(rp.Array) != len(ex.keys) {
					tally.badReads++
					continue
				}
				for i, k := range ex.keys {
					want, present := model[k]
					el := rp.Array[i]
					if present && !el.Null && string(el.Bulk) != want {
						tally.badReads++
					}
				}
			}
		}
		window = window[:0]
		return nil
	}

	key := func() string { return gofmt.Sprintf("bench:%02d:%04d", id, rng.Intn(200)) }
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // 50% SET
			k := key()
			if err := c.Send("SET", k, value); err != nil {
				return tally, err
			}
			window = append(window, expect{op: "SET", keys: []string{k}})
		case 5, 6, 7: // 30% GET
			k := key()
			if err := c.Send("GET", k); err != nil {
				return tally, err
			}
			window = append(window, expect{op: "GET", keys: []string{k}})
		default: // 20% MGET of three keys
			ks := []string{key(), key(), key()}
			if err := c.Send("MGET", ks[0], ks[1], ks[2]); err != nil {
				return tally, err
			}
			window = append(window, expect{op: "MGET", keys: ks})
		}
		if len(window) >= pipeline {
			if err := flushWindow(); err != nil {
				return tally, err
			}
		}
	}
	if err := flushWindow(); err != nil {
		return tally, err
	}
	return tally, nil
}
