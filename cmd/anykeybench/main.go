// Command anykeybench regenerates the tables and figures of the AnyKey
// paper's evaluation section (ASPLOS 2025) on the simulated device stack.
//
// Usage:
//
//	anykeybench -list
//	anykeybench -exp fig12              # one experiment
//	anykeybench -exp all                # everything, in paper order
//	anykeybench -exp fig10 -capacity 128 -quick=false
//	anykeybench -exp all -parallel 8    # fan cells across 8 workers
//
// Experiment cells (one simulated device each) are independent, so by
// default they are fanned across one worker per CPU; -parallel 1 restores
// the serial path. Reports are identical either way.
//
// Each experiment prints the rows/series of the corresponding paper table
// or figure; EXPERIMENTS.md records the measured-vs-paper comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"anykey"
	"anykey/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		capacity = flag.Int("capacity", 0, "device capacity in MiB (default 64; paper ratios preserved)")
		quick    = flag.Bool("quick", false, "shrink runs for a fast pass")
		seed     = flag.Int64("seed", 1, "simulation seed")
		maxOps   = flag.Int64("maxops", 0, "cap measured ops per run (0 = the paper's full 2× capacity)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "fan experiment cells across this many workers (1 = serial); reports are identical either way")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		outDir   = flag.String("out", "", "also save each report as .txt and per-table .csv under this directory")

		faultSeed   = flag.Int64("fault-seed", 0, "fault-injection seed (defaults to -seed when any fault rate is set)")
		readErrRate = flag.Float64("fault-read-err", 0, "per-read transient error probability [0,1)")
		progFail    = flag.Float64("fault-program-fail", 0, "per-program failure probability [0,1); failed blocks retire as grown-bad")
		eraseFail   = flag.Float64("fault-erase-fail", 0, "per-erase failure probability [0,1); failed blocks retire as grown-bad")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "anykeybench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	opt := harness.ExpOptions{CapacityMB: *capacity, Quick: *quick, Seed: *seed, MaxOps: *maxOps, Parallel: *parallel}
	if *readErrRate > 0 || *progFail > 0 || *eraseFail > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		opt.Faults = &anykey.FaultPlan{
			Seed:            fs,
			ReadErrorRate:   *readErrRate,
			ProgramFailRate: *progFail,
			EraseFailRate:   *eraseFail,
		}
		if err := opt.Faults.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "anykeybench: %v\n", err)
			os.Exit(2)
		}
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := harness.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anykeybench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if *outDir != "" {
			if err := rep.WriteFiles(*outDir); err != nil {
				fmt.Fprintf(os.Stderr, "anykeybench: saving %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
