// Command anykeybench regenerates the tables and figures of the AnyKey
// paper's evaluation section (ASPLOS 2025) on the simulated device stack.
//
// Usage:
//
//	anykeybench -list
//	anykeybench -exp fig12              # one experiment
//	anykeybench -exp all                # everything, in paper order
//	anykeybench -exp fig10 -capacity 128 -quick=false
//	anykeybench -exp all -parallel 8    # fan cells across 8 workers
//	anykeybench -workload ZippyDB -trace-out trace.json   # traced single run
//	anykeybench -workload ZippyDB -shards 4               # sharded cluster run
//	anykeybench -exp cluster                              # shards × QD × skew sweep
//	anykeybench -exp fig12 -cpuprofile cpu.pprof -memprofile mem.pprof
//	anykeybench -exp fullscale -bench-mem     # print the run's peak heap
//	anykeybench -txn-mode split -txn-theta 0.99 -txn-writes 0.5   # one txn cell
//
// Experiment cells (one simulated device each) are independent, so by
// default they are fanned across one worker per CPU; -parallel 1 restores
// the serial path. Reports are identical either way.
//
// With -workload, anykeybench runs one traced measurement of that workload
// instead of an experiment: it prints the run summary and the tail-latency
// blame report (every above -blame-percentile op's time attributed to the
// background work it queued behind), and -trace-out saves the event trace —
// Chrome trace_event JSON loadable in Perfetto / chrome://tracing, or CSV
// when the path ends in .csv. With -exp, -trace attaches a tracer to every
// cell (the reports are identical either way; tracing only observes).
//
// Adding -shards N to a -workload run drives the same mix through a sharded
// N-device cluster via the batched MultiPut/MultiGet API (-router picks the
// key→shard policy); the blame report merges every shard's attribution and
// -trace-out exports the fleet trace with shard ids as track tags.
//
// Each experiment prints the rows/series of the corresponding paper table
// or figure; EXPERIMENTS.md records the measured-vs-paper comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"anykey"
	"anykey/internal/harness"
	"anykey/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		capacity = flag.Int("capacity", 0, "device capacity in MiB (default 64; paper ratios preserved)")
		quick    = flag.Bool("quick", false, "shrink runs for a fast pass")
		seed     = flag.Int64("seed", 1, "simulation seed")
		maxOps   = flag.Int64("maxops", 0, "cap measured ops per run (0 = the paper's full 2× capacity)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "fan experiment cells across this many workers (1 = serial); reports are identical either way")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		outDir   = flag.String("out", "", "also save each report as .txt and per-table .csv under this directory")

		txnMode    = flag.String("txn-mode", "", "run one transaction cell instead of an experiment: occ | split | atomic | besteffort")
		txnTheta   = flag.Float64("txn-theta", 0, "txn cell: Zipfian skew over the counter population (default 0.99)")
		txnWrites  = flag.Float64("txn-writes", 0, "txn cell: per-op increment probability (default 0.2)")
		txnClients = flag.Int("txn-clients", 0, "txn cell: concurrent transactions per wave (default 8)")
		txnWaves   = flag.Int("txn-waves", 0, "txn cell: waves to run (default 400)")
		txnOps     = flag.Int("txn-ops", 0, "txn cell: operations per transaction (default 2)")
		txnBatch   = flag.Int("txn-batch", 0, "txn cell: atomic/besteffort batch size (default 16)")

		faultSeed   = flag.Int64("fault-seed", 0, "fault-injection seed (defaults to -seed when any fault rate is set)")
		readErrRate = flag.Float64("fault-read-err", 0, "per-read transient error probability [0,1)")
		progFail    = flag.Float64("fault-program-fail", 0, "per-program failure probability [0,1); failed blocks retire as grown-bad")
		eraseFail   = flag.Float64("fault-erase-fail", 0, "per-erase failure probability [0,1); failed blocks retire as grown-bad")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		benchMem   = flag.Bool("bench-mem", false, "sample runtime.ReadMemStats through the run and print the peak heap at the end")

		doTrace  = flag.Bool("trace", false, "attach an event tracer to every experiment cell (reports are unchanged; tracing only observes)")
		traceOut = flag.String("trace-out", "", "single-run mode: save the event trace here (Chrome trace_event JSON; CSV when the path ends in .csv)")
		blamePct = flag.Float64("blame", 99, "single-run mode: blame-report percentile cut")
		wl       = flag.String("workload", "", "run one traced measurement of this Table 2 workload instead of an experiment")
		design   = flag.String("design", "anykey+", "single-run mode: pink | anykey | anykey+ | anykey-")

		shards      = flag.Int("shards", 0, "single-run mode: drive the workload through a sharded cluster of this many devices (0 = one device)")
		router      = flag.String("router", "consistent", "cluster routing policy: consistent | modulo")
		replication = flag.Int("replication", 0, "cluster runs: replicate each key to this many ring members (0 = no replication)")
		wquorum     = flag.Int("wquorum", 0, "cluster runs: alive replicas a write needs before acking (default = -replication)")

		// Open-loop traffic group: an arrival process turns a -workload run
		// into an open-loop overload measurement (see DESIGN.md §11). The
		// client knobs default to the harness values when left zero.
		arrivalShape  = flag.String("arrival-shape", "", "open loop: arrival shape, constant | bursty | diurnal (empty = closed loop)")
		arrivalRate   = flag.Float64("arrival-rate", 0, "open loop: mean offered load, ops per second of virtual time")
		arrivalBurst  = flag.Float64("arrival-burst", 0, "open loop: peak-to-mean rate ratio in (1,2] (bursty/diurnal)")
		arrivalPeriod = flag.Duration("arrival-period", 0, "open loop: burst/diurnal cycle length, virtual time (bursty/diurnal)")
		timeout       = flag.Duration("timeout", 0, "open loop: client deadline per attempt (default 10ms)")
		retryMax      = flag.Int("retry-max", 0, "open loop: retry budget per op after timeouts (default 3)")
		retryBackoff  = flag.Duration("retry-backoff", 0, "open loop: backoff before the first retry, doubling each retry (default 500µs)")
		retryCap      = flag.Duration("retry-cap", 0, "open loop: exponential backoff cap (default 4ms)")
		slo           = flag.Duration("slo", 0, "open loop: end-to-end latency SLO scoring goodput (default 2ms)")
		horizon       = flag.Duration("horizon", 0, "open loop: offered-load window, virtual time (default 100ms)")
	)
	flag.Parse()

	open := openOpts{
		timeout: anykey.Duration((*timeout).Nanoseconds()),
		retry: harness.RetryPolicy{
			MaxRetries: *retryMax,
			Backoff:    anykey.Duration((*retryBackoff).Nanoseconds()),
			MaxBackoff: anykey.Duration((*retryCap).Nanoseconds()),
		},
		slo:     anykey.Duration((*slo).Nanoseconds()),
		horizon: anykey.Duration((*horizon).Nanoseconds()),
	}
	if *arrivalShape != "" {
		shape, ok := workload.ArrivalShapeByName(*arrivalShape)
		if !ok || shape == workload.ArrivalClosed {
			fmt.Fprintf(os.Stderr, "anykeybench: -arrival-shape %q (want constant | bursty | diurnal)\n", *arrivalShape)
			os.Exit(2)
		}
		open.arrival = workload.ArrivalSpec{
			Shape:  shape,
			Rate:   *arrivalRate,
			Burst:  *arrivalBurst,
			Period: anykey.Duration((*arrivalPeriod).Nanoseconds()),
		}
		if err := open.arrival.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "anykeybench:", err)
			os.Exit(2)
		}
		if *wl == "" {
			fmt.Fprintln(os.Stderr, "anykeybench: the -arrival-*/-timeout/-retry-*/-slo group applies to -workload runs")
			os.Exit(2)
		}
	} else if *arrivalRate != 0 || *arrivalBurst != 0 || *arrivalPeriod != 0 {
		fmt.Fprintln(os.Stderr, "anykeybench: -arrival-rate/-burst/-period need -arrival-shape (closed loop otherwise)")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anykeybench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "anykeybench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anykeybench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "anykeybench:", err)
			}
		}()
	}

	if *benchMem {
		s := startMemSampler()
		defer s.print()
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Paper)
		}
		return
	}
	if *replication > 0 && *shards == 0 {
		fmt.Fprintln(os.Stderr, "anykeybench: -replication needs a -shards cluster run")
		os.Exit(2)
	}
	if *txnMode != "" {
		cfg := harness.TxnRunConfig{
			Mode:       *txnMode,
			Theta:      *txnTheta,
			WriteRatio: *txnWrites,
			Seed:       *seed,
			Clients:    *txnClients,
			TxOps:      *txnOps,
			Waves:      *txnWaves,
			BatchOps:   *txnBatch,
		}
		cfg.Cluster.Shards = *shards
		cfg.Cluster.Replication = anykey.ReplicationOptions{Factor: *replication, WriteQuorum: *wquorum}
		if pol, ok := routers[strings.ToLower(*router)]; ok {
			cfg.Cluster.Router = pol
		} else {
			fmt.Fprintf(os.Stderr, "anykeybench: unknown router %q (consistent | modulo)\n", *router)
			os.Exit(2)
		}
		if err := runTxnCell(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "anykeybench:", err)
			os.Exit(1)
		}
		return
	} else if *txnTheta != 0 || *txnWrites != 0 || *txnClients != 0 || *txnWaves != 0 || *txnOps != 0 || *txnBatch != 0 {
		fmt.Fprintln(os.Stderr, "anykeybench: the -txn-* group needs -txn-mode (occ | split | atomic | besteffort)")
		os.Exit(2)
	}
	if *wl != "" {
		var err error
		if *shards > 0 {
			repl := anykey.ReplicationOptions{Factor: *replication, WriteQuorum: *wquorum}
			err = runCluster(*wl, *design, *shards, *router, repl, *quick, *seed, *maxOps, *blamePct, *traceOut, open)
		} else {
			err = runTraced(*wl, *design, *capacity, *quick, *seed, *maxOps, *blamePct, *traceOut, open)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "anykeybench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "anykeybench: -exp required (or -list, -workload)")
		flag.Usage()
		os.Exit(2)
	}

	opt := harness.ExpOptions{CapacityMB: *capacity, Quick: *quick, Seed: *seed, MaxOps: *maxOps, Parallel: *parallel}
	if *doTrace {
		opt.Trace = &anykey.TraceOptions{}
	}
	if *readErrRate > 0 || *progFail > 0 || *eraseFail > 0 {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		opt.Faults = &anykey.FaultPlan{
			Seed:            fs,
			ReadErrorRate:   *readErrRate,
			ProgramFailRate: *progFail,
			EraseFailRate:   *eraseFail,
		}
		if err := opt.Faults.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "anykeybench: %v\n", err)
			os.Exit(2)
		}
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := harness.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anykeybench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		if *outDir != "" {
			if err := rep.WriteFiles(*outDir); err != nil {
				fmt.Fprintf(os.Stderr, "anykeybench: saving %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// memSampler tracks the peak live heap for -bench-mem: a goroutine samples
// runtime.ReadMemStats on a short period, bounding how far the heap can grow
// between observations. Virtual-time runs are CPU-bound for seconds to
// minutes, so a 20 ms period catches the high-water mark closely.
type memSampler struct {
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	peak uint64 // max HeapAlloc observed
	sys  uint64 // max runtime Sys observed
}

func startMemSampler() *memSampler {
	s := &memSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	if ms.Sys > s.sys {
		s.sys = ms.Sys
	}
	s.mu.Unlock()
}

// print stops the sampler and emits the machine-greppable peak line
// (scripts/bench.sh mem gates on peak-heap-bytes).
func (s *memSampler) print() {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	peak, sys := s.peak, s.sys
	s.mu.Unlock()
	fmt.Printf("mem: peak-heap-bytes=%d (%.1f MB) runtime-sys-bytes=%d (%.1f MB)\n",
		peak, float64(peak)/(1<<20), sys, float64(sys)/(1<<20))
}

// openOpts carries the parsed open-loop flag group into the single-run
// paths. The zero value means closed loop with all client knobs defaulted.
type openOpts struct {
	arrival workload.ArrivalSpec
	timeout anykey.Duration
	retry   harness.RetryPolicy
	slo     anykey.Duration
	horizon anykey.Duration
}

// apply copies the flag group onto a run's shared config.
func (o openOpts) apply(b *harness.BaseConfig) {
	b.Workload.Arrival = o.arrival
	b.Timeout = o.timeout
	b.Retry = o.retry
	b.SLO = o.slo
	b.Horizon = o.horizon
}

// openHeader prints the effective open-loop configuration (after harness
// defaults) so saved run output is self-describing provenance.
func openHeader(b *harness.BaseConfig) {
	if !b.Workload.Arrival.Open() {
		return
	}
	fmt.Printf("open-loop: arrival %s | timeout %v | retry %dx backoff %v..%v | slo %v | horizon %v\n",
		b.Workload.Arrival, b.Timeout, b.Retry.MaxRetries, b.Retry.Backoff,
		b.Retry.MaxBackoff, b.SLO, b.Horizon)
}

// openSummary prints the open-loop scorecard of a finished run.
func openSummary(st *harness.OpenStats) {
	if st == nil {
		return
	}
	fmt.Printf("open-loop result: offered %d, attempts %d, completed %d, goodput %.0f ops/s, timeouts %d, retries %d, dropped %d, recover %v\n",
		st.Offered, st.Attempts, st.Completed, st.Goodput,
		st.Timeouts, st.Retries, st.Dropped, st.RecoverTime)
}

var designs = map[string]anykey.Design{
	"pink":    anykey.DesignPinK,
	"anykey":  anykey.DesignAnyKey,
	"anykey+": anykey.DesignAnyKeyPlus,
	"anykey-": anykey.DesignAnyKeyMinus,
}

var routers = map[string]anykey.RouterPolicy{
	"consistent": anykey.RouteConsistent,
	"modulo":     anykey.RouteModulo,
}

// runCluster runs one traced cluster measurement: the workload batched over
// a sharded fleet, with the merged blame report and fleet trace export. A
// nonzero replication factor opens the cluster as a replicated fleet — the
// batched facade drives R copies of every key and the summary reports the
// replication counters.
func runCluster(wl, design string, shards int, router string, repl anykey.ReplicationOptions, quick bool, seed, maxOps int64, blamePct float64, traceOut string, open openOpts) error {
	d, ok := designs[strings.ToLower(design)]
	if !ok {
		return fmt.Errorf("unknown design %q", design)
	}
	pol, ok := routers[strings.ToLower(router)]
	if !ok {
		return fmt.Errorf("unknown router %q (consistent | modulo)", router)
	}
	spec, ok := workload.ByName(wl)
	if !ok {
		return fmt.Errorf("unknown workload %q (see internal/workload Table 2)", wl)
	}
	if maxOps == 0 && quick {
		maxOps = 25000
	}
	cfg := harness.ClusterRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:      shards,
			Router:      pol,
			Replication: repl,
			Device: anykey.Options{
				Design:          d,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
				DRAMBytes:       16 << 20 / 100,
				Seed:            seed,
			},
		},
		BaseConfig: harness.BaseConfig{Workload: spec, Seed: seed, MaxOps: maxOps},
		Trace:      &anykey.TraceOptions{},
	}
	open.apply(&cfg.BaseConfig)
	// Population normalises the defaults, so the header shows the
	// effective configuration the run will use.
	if _, err := cfg.Population(); err != nil {
		return err
	}
	openHeader(&cfg.BaseConfig)
	start := time.Now()
	res, err := harness.RunCluster(cfg)
	if err != nil {
		return err
	}
	openSummary(res.Open)
	fmt.Printf("%s on %s (%s router): %d ops, %.0f IOPS, read p50=%v p99=%v, batch p99=%v\n",
		res.System, res.Workload, res.Router, res.Ops, res.IOPS,
		res.ReadLat.Percentile(50), res.ReadLat.Percentile(99), res.BatchLat.Percentile(99))
	fmt.Printf("shard balance: %v (hottest %.1f%%)\n", res.ShardOps, 100*res.HottestShare)
	if res.ReplStats.Factor > 0 {
		fmt.Printf("replication: R=%d W=%d, quorum failures %d, read fallbacks %d\n",
			res.ReplStats.Factor, res.ReplStats.WriteQuorum,
			res.ReplStats.QuorumFailures, res.ReplStats.ReadFallbacks)
	}
	fmt.Print(res.Cluster.Blame(anykey.BlameOptions{Percentile: blamePct}))
	if traceOut != "" {
		if strings.HasSuffix(traceOut, ".csv") {
			return fmt.Errorf("cluster traces export as Chrome trace_event JSON only")
		}
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		err = res.Cluster.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving trace: %w", err)
		}
		fmt.Printf("fleet trace saved to %s (shard ids on the track labels)\n", traceOut)
	}
	fmt.Printf("(completed in %v wall time)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runTxnCell runs one transaction measurement cell (-txn-mode) and prints
// its scorecard: outcome tallies, goodput, and the coordinator's own
// counters (conflict retries, 2PC prepares, split-phase merges).
func runTxnCell(cfg harness.TxnRunConfig) error {
	start := time.Now()
	res, err := harness.RunTxn(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s txn cell (%s): theta=%.2f writes=%.2f\n",
		res.System, res.Mode, res.Theta, res.WriteRatio)
	fmt.Printf("txns: %d offered, %d committed, %d aborted (%d conflicts, %d retries)\n",
		res.Txns, res.Committed, res.Aborted, res.Conflicts, res.Retries)
	fmt.Printf("goodput: %.0f txn/s (%.0f ops/s) over %.3f simulated seconds\n",
		res.GoodTxnPerSec, res.OpsPerSec, res.SimSeconds)
	fmt.Printf("layer: %d prepares, %d atomic batches, %d split merges (%d ops absorbed), %d hot keys\n",
		res.Layer.Prepares, res.Layer.AtomicBatches, res.Layer.SplitMerges,
		res.Layer.SplitOps, res.Layer.HotKeys)
	if res.Batches > 0 {
		fmt.Printf("batch span: p50=%v p99=%v over %d batches\n",
			res.BatchLat.Percentile(50), res.BatchLat.Percentile(99), res.Batches)
	}
	fmt.Printf("oracle: %d checks passed\n", res.Verified)
	fmt.Printf("(completed in %v wall time)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runTraced runs one traced measurement of a Table 2 workload, prints the
// blame report, and optionally saves the event trace.
func runTraced(wl, design string, capacity int, quick bool, seed, maxOps int64, blamePct float64, traceOut string, open openOpts) error {
	d, ok := designs[strings.ToLower(design)]
	if !ok {
		return fmt.Errorf("unknown design %q", design)
	}
	spec, ok := workload.ByName(wl)
	if !ok {
		return fmt.Errorf("unknown workload %q (see internal/workload Table 2)", wl)
	}
	if capacity == 0 {
		capacity = 64
		if quick {
			capacity = 32
		}
	}
	if maxOps == 0 && quick {
		maxOps = 25000
	}
	cfg := harness.RunConfig{
		Device: anykey.Options{
			Design:     d,
			CapacityMB: capacity,
			DRAMBytes:  int64(capacity) << 20 / 100,
			Seed:       seed,
			Trace:      &anykey.TraceOptions{},
		},
		BaseConfig: harness.BaseConfig{Workload: spec, Seed: seed, MaxOps: maxOps},
	}
	open.apply(&cfg.BaseConfig)
	cfg.Population() // normalise defaults so the header is the effective config
	openHeader(&cfg.BaseConfig)
	start := time.Now()
	res, err := harness.Run(cfg)
	if err != nil {
		return err
	}
	openSummary(res.Open)
	fmt.Printf("%s on %s: %d ops, %.0f IOPS, read p50=%v p99=%v max=%v\n",
		res.System, res.Workload, res.Ops, res.IOPS,
		res.ReadLat.Percentile(50), res.ReadLat.Percentile(99), res.ReadLat.Max())
	rep := res.Trace.Blame(anykey.BlameOptions{Percentile: blamePct})
	fmt.Print(rep)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if strings.HasSuffix(traceOut, ".csv") {
			err = res.Trace.WriteCSV(f)
		} else {
			err = res.Trace.WriteChromeTrace(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving trace: %w", err)
		}
		fmt.Printf("trace saved to %s (%d events", traceOut, res.Trace.EventCount())
		if n := res.Trace.DroppedEvents(); n > 0 {
			fmt.Printf(", %d dropped", n)
		}
		fmt.Println(")")
	}
	fmt.Printf("(completed in %v wall time)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
