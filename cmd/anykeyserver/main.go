// Command anykeyserver fronts a simulated AnyKey cluster with a real TCP
// server speaking a RESP2 subset (PING, ECHO, GET, SET, DEL, MGET, MSET,
// SCAN, INFO, FLEET), so any Redis client can drive the simulation
// interactively. A wall-clock bridge maps request arrival times onto each
// shard's virtual clock domain, and an HTTP endpoint exposes live
// Prometheus metrics — per-shard throughput, queue depth, GC/compaction
// activity and blame-derived tail-latency attribution — plus /healthz and
// /debug/pprof.
//
// With -replication R every key lives on R ring members and the FLEET
// command is available: FLEET STATUS, FLEET KILL <id> [powercut|grownbad],
// FLEET REBUILD <id>, FLEET RMSHARD <id>. Killing a member mid-traffic
// leaves reads served by surviving replicas and writes acknowledged while
// the quorum holds; REBUILD refills replacement hardware from replica
// scans and RMSHARD streams a member's keys away before it retires.
//
// Usage:
//
//	anykeyserver -addr :6380 -metrics-addr :9121 -shards 4 -replication 2
//	redis-cli -p 6380 SET user:1 alice
//	redis-cli -p 6380 FLEET KILL 1
//	curl -s localhost:9121/metrics | grep anykey_fleet
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// commands drain, the cluster syncs and closes. The process exits nonzero
// when shutdown fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anykey"
	"anykey/internal/server"
)

var designs = map[string]anykey.Design{
	"pink":    anykey.DesignPinK,
	"anykey":  anykey.DesignAnyKey,
	"anykey+": anykey.DesignAnyKeyPlus,
	"anykey-": anykey.DesignAnyKeyMinus,
}

// cacheOpts maps the -cache-mb flag onto a per-shard cache config.
func cacheOpts(mb int) *anykey.CacheOptions {
	if mb <= 0 {
		return nil
	}
	return &anykey.CacheOptions{CapacityBytes: int64(mb) << 20}
}

func main() {
	var (
		addr        = flag.String("addr", ":6380", "RESP listen address")
		metricsAddr = flag.String("metrics-addr", ":9121", "HTTP listen address for /metrics, /healthz, /debug/pprof (empty disables)")

		shards      = flag.Int("shards", 4, "member devices in the cluster")
		design      = flag.String("design", "anykey+", "device design: pink | anykey | anykey+ | anykey-")
		capacity    = flag.Int("capacity", 64, "capacity per shard in MiB")
		cacheMB     = flag.Int("cache-mb", 0, "host-side DRAM read cache per shard in MiB (0 disables; stats in INFO and /metrics)")
		qd          = flag.Int("qd", 64, "submission queue depth per shard")
		router      = flag.String("router", "consistent", "routing policy: consistent | modulo")
		replication = flag.Int("replication", 0, "replicate each key to this many ring members (0 = no replication; enables FLEET commands)")
		wquorum     = flag.Int("wquorum", 0, "alive-replica successes required to ack a write (default -replication, write-all)")

		inflight   = flag.Int("inflight", 128, "per-shard bridge queue bound (-BUSY beyond it)")
		timeout    = flag.Duration("timeout", 0, "virtual latency budget per op (-TIMEOUT beyond it; 0 = none)")
		timeScale  = flag.Float64("time-scale", 1.0, "virtual seconds per wall-clock second")
		blameEvery = flag.Int("blame-every", 256, "refresh tail-blame gauges every N ops per shard")

		drainWait = flag.Duration("drain", 10*time.Second, "shutdown: max wait for connections to drain")
	)
	flag.Parse()

	d, ok := designs[strings.ToLower(*design)]
	if !ok {
		fmt.Fprintf(os.Stderr, "anykeyserver: unknown design %q\n", *design)
		os.Exit(2)
	}
	pol, ok := map[string]anykey.RouterPolicy{
		"consistent": anykey.RouteConsistent,
		"modulo":     anykey.RouteModulo,
	}[strings.ToLower(*router)]
	if !ok {
		fmt.Fprintf(os.Stderr, "anykeyserver: unknown router %q (consistent | modulo)\n", *router)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		Cluster: anykey.ClusterOptions{
			Shards:      *shards,
			QueueDepth:  *qd,
			Router:      pol,
			Replication: anykey.ReplicationOptions{Factor: *replication, WriteQuorum: *wquorum},
			Device:      anykey.Options{Design: d, CapacityMB: *capacity, Cache: cacheOpts(*cacheMB)},
		},
		Inflight:   *inflight,
		Timeout:    *timeout,
		TimeScale:  *timeScale,
		BlameEvery: *blameEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "anykeyserver:", err)
		os.Exit(1)
	}

	fmt.Printf("anykeyserver: %d-shard %s cluster on %s", *shards, *design, srv.Addr())
	if *replication > 0 {
		fmt.Printf(" (R=%d)", *replication)
	}
	if ma := srv.MetricsAddr(); ma != nil {
		fmt.Printf(", metrics on %s", ma)
	}
	fmt.Println()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case sig := <-sigs:
		fmt.Printf("anykeyserver: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "anykeyserver: shutdown:", err)
			os.Exit(1)
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(os.Stderr, "anykeyserver:", err)
			os.Exit(1)
		}
	case err := <-serveErr:
		// The accept loop died without a shutdown — a real failure.
		fmt.Fprintln(os.Stderr, "anykeyserver:", err)
		os.Exit(1)
	}
}
