package anykey

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// goldenState runs a fixed seeded workload against a fresh device and folds
// the complete observable end state into one checksum: every surviving
// key/value pair (by full keyspace scan), the virtual clock, the flash-op
// counters, and — when a fault plan is active — the injected-fault counters.
// Identical checksums mean identical simulations, byte for byte and tick for
// tick.
func goldenState(t *testing.T, opts Options) uint64 {
	t.Helper()
	dev, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	rng := rand.New(rand.NewSource(271828))
	const keys = 300
	for op := 0; op < 2500; op++ {
		i := rng.Intn(keys)
		k := []byte(fmt.Sprintf("g-%05d", i))
		switch r := rng.Intn(100); {
		case r < 8:
			if _, err := dev.Delete(k); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
		case r < 20:
			if _, _, err := dev.Get(k); err != nil && err != ErrNotFound {
				t.Fatalf("op %d get: %v", op, err)
			}
		case r < 23:
			if _, err := dev.Sync(); err != nil {
				t.Fatalf("op %d sync: %v", op, err)
			}
		default:
			v := make([]byte, 24+rng.Intn(200))
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			v = append(v, []byte(fmt.Sprintf("#%d", op))...)
			if _, err := dev.Put(k, v); err != nil {
				t.Fatalf("op %d put: %v", op, err)
			}
		}
	}
	if _, err := dev.Sync(); err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	pairs, _, err := dev.Scan([]byte("g-00000"), keys+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		h.Write(p.Key)
		h.Write([]byte{0})
		h.Write(p.Value)
		h.Write([]byte{0xff})
	}
	flash := dev.Flash()
	fmt.Fprintf(h, "|pairs=%d|now=%d|r=%d|w=%d|e=%d",
		len(pairs), dev.Now(), flash.TotalReads(), flash.TotalWrites(), flash.Erases)
	if f := dev.Stats().Faults; f != nil {
		fmt.Fprintf(h, "|faults=%+v", f())
	}
	return h.Sum64()
}

// TestGoldenEndStateDeterminism runs the identical workload twice per design
// — PinK included — and requires bit-identical end states. A third pass
// layers a fault plan (read errors, grown-bad blocks) on the AnyKey designs:
// injection must be exactly as reproducible as the fault-free simulation.
func TestGoldenEndStateDeterminism(t *testing.T) {
	base := Options{CapacityMB: 32, Channels: 2, ChipsPerChannel: 2, Seed: 17}
	for _, d := range []Design{DesignPinK, DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String(), func(t *testing.T) {
			opts := base
			opts.Design = d
			a, b := goldenState(t, opts), goldenState(t, opts)
			if a != b {
				t.Fatalf("two runs diverged: %#x vs %#x", a, b)
			}
		})
	}
	for _, d := range []Design{DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String()+"/faults", func(t *testing.T) {
			opts := base
			opts.Design = d
			opts.Faults = &FaultPlan{Seed: 5, ReadErrorRate: 0.02, ProgramFailRate: 0.001, EraseFailRate: 0.001}
			a, b := goldenState(t, opts), goldenState(t, opts)
			if a != b {
				t.Fatalf("two faulted runs diverged: %#x vs %#x", a, b)
			}
		})
	}
}

// TestGoldenMemoryModeEquivalence is the flyweight store's contract test:
// forcing MemoryFlyweight must produce the exact end state of MemoryRaw —
// same surviving pairs, same clock, same flash-op counts — on every design.
// The golden workload's values are arbitrary bytes the payload registry
// cannot regenerate, so this pins the conservative path (unresolvable
// records stay in the skeleton verbatim); the fault plan additionally covers
// torn pages and grown-bad retirement under the compact representation.
func TestGoldenMemoryModeEquivalence(t *testing.T) {
	base := Options{CapacityMB: 32, Channels: 2, ChipsPerChannel: 2, Seed: 17}
	modes := func(t *testing.T, opts Options) {
		t.Helper()
		raw, fly := opts, opts
		raw.Memory = MemoryRaw
		fly.Memory = MemoryFlyweight
		if a, b := goldenState(t, raw), goldenState(t, fly); a != b {
			t.Fatalf("flyweight end state diverged from raw: %#x vs %#x", b, a)
		}
	}
	for _, d := range []Design{DesignPinK, DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String(), func(t *testing.T) {
			opts := base
			opts.Design = d
			modes(t, opts)
		})
	}
	for _, d := range []Design{DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String()+"/faults", func(t *testing.T) {
			opts := base
			opts.Design = d
			opts.Faults = &FaultPlan{Seed: 5, ReadErrorRate: 0.02, ProgramFailRate: 0.001, EraseFailRate: 0.001}
			modes(t, opts)
		})
	}
}

// TestGoldenCacheWriteThroughEquivalence pins that a write-through host
// cache changes host-observed latencies but not the device's durable state:
// the surviving pairs scanned after Sync are identical with and without it.
func TestGoldenCacheWriteThroughEquivalence(t *testing.T) {
	run := func(t *testing.T, opts Options) []Pair {
		t.Helper()
		dev, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		rng := rand.New(rand.NewSource(314159))
		for op := 0; op < 1500; op++ {
			i := rng.Intn(200)
			k := []byte(fmt.Sprintf("c-%05d", i))
			switch r := rng.Intn(100); {
			case r < 10:
				if _, err := dev.Delete(k); err != nil {
					t.Fatal(err)
				}
			case r < 40:
				if _, _, err := dev.Get(k); err != nil && err != ErrNotFound {
					t.Fatal(err)
				}
			default:
				v := make([]byte, 32+rng.Intn(96))
				for j := range v {
					v[j] = byte('A' + (i+j)%26)
				}
				if _, err := dev.Put(k, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := dev.Sync(); err != nil {
			t.Fatal(err)
		}
		pairs, _, err := dev.Scan([]byte("c-00000"), 201)
		if err != nil {
			t.Fatal(err)
		}
		// Detach the pairs from device-owned buffers before Close.
		out := make([]Pair, len(pairs))
		for i, p := range pairs {
			out[i] = Pair{Key: append([]byte(nil), p.Key...), Value: append([]byte(nil), p.Value...)}
		}
		if opts.Cache != nil {
			if st, ok := dev.CacheStats(); !ok || st.Hits == 0 {
				t.Fatalf("cache saw no hits over 1500 ops: %+v", st)
			}
		}
		return out
	}
	base := Options{CapacityMB: 32, Channels: 2, ChipsPerChannel: 2, Seed: 17}
	bare := run(t, base)
	cached := base
	cached.Cache = &CacheOptions{CapacityBytes: 1 << 20}
	withCache := run(t, cached)
	if len(bare) != len(withCache) {
		t.Fatalf("pair counts diverge: %d without cache, %d with", len(bare), len(withCache))
	}
	for i := range bare {
		if string(bare[i].Key) != string(withCache[i].Key) || string(bare[i].Value) != string(withCache[i].Value) {
			t.Fatalf("pair %d diverges with cache: %q vs %q", i, bare[i].Key, withCache[i].Key)
		}
	}
}
