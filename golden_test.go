package anykey

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// goldenState runs a fixed seeded workload against a fresh device and folds
// the complete observable end state into one checksum: every surviving
// key/value pair (by full keyspace scan), the virtual clock, the flash-op
// counters, and — when a fault plan is active — the injected-fault counters.
// Identical checksums mean identical simulations, byte for byte and tick for
// tick.
func goldenState(t *testing.T, opts Options) uint64 {
	t.Helper()
	dev, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()

	rng := rand.New(rand.NewSource(271828))
	const keys = 300
	for op := 0; op < 2500; op++ {
		i := rng.Intn(keys)
		k := []byte(fmt.Sprintf("g-%05d", i))
		switch r := rng.Intn(100); {
		case r < 8:
			if _, err := dev.Delete(k); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
		case r < 20:
			if _, _, err := dev.Get(k); err != nil && err != ErrNotFound {
				t.Fatalf("op %d get: %v", op, err)
			}
		case r < 23:
			if _, err := dev.Sync(); err != nil {
				t.Fatalf("op %d sync: %v", op, err)
			}
		default:
			v := make([]byte, 24+rng.Intn(200))
			for j := range v {
				v[j] = byte('a' + (i+j)%26)
			}
			v = append(v, []byte(fmt.Sprintf("#%d", op))...)
			if _, err := dev.Put(k, v); err != nil {
				t.Fatalf("op %d put: %v", op, err)
			}
		}
	}
	if _, err := dev.Sync(); err != nil {
		t.Fatal(err)
	}

	h := fnv.New64a()
	pairs, _, err := dev.Scan([]byte("g-00000"), keys+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		h.Write(p.Key)
		h.Write([]byte{0})
		h.Write(p.Value)
		h.Write([]byte{0xff})
	}
	flash := dev.Flash()
	fmt.Fprintf(h, "|pairs=%d|now=%d|r=%d|w=%d|e=%d",
		len(pairs), dev.Now(), flash.TotalReads(), flash.TotalWrites(), flash.Erases)
	if f := dev.Stats().Faults; f != nil {
		fmt.Fprintf(h, "|faults=%+v", f())
	}
	return h.Sum64()
}

// TestGoldenEndStateDeterminism runs the identical workload twice per design
// — PinK included — and requires bit-identical end states. A third pass
// layers a fault plan (read errors, grown-bad blocks) on the AnyKey designs:
// injection must be exactly as reproducible as the fault-free simulation.
func TestGoldenEndStateDeterminism(t *testing.T) {
	base := Options{CapacityMB: 32, Channels: 2, ChipsPerChannel: 2, Seed: 17}
	for _, d := range []Design{DesignPinK, DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String(), func(t *testing.T) {
			opts := base
			opts.Design = d
			a, b := goldenState(t, opts), goldenState(t, opts)
			if a != b {
				t.Fatalf("two runs diverged: %#x vs %#x", a, b)
			}
		})
	}
	for _, d := range []Design{DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(d.String()+"/faults", func(t *testing.T) {
			opts := base
			opts.Design = d
			opts.Faults = &FaultPlan{Seed: 5, ReadErrorRate: 0.02, ProgramFailRate: 0.001, EraseFailRate: 0.001}
			a, b := goldenState(t, opts), goldenState(t, opts)
			if a != b {
				t.Fatalf("two faulted runs diverged: %#x vs %#x", a, b)
			}
		})
	}
}
