package anykey

import (
	"bytes"
	"fmt"
	"testing"

	"anykey/internal/cluster"
	"anykey/internal/core"
	"anykey/internal/device"
	"anykey/internal/fault"
	"anykey/internal/txn"
)

// The atomic-batch crash matrix: power-cut one shard's flash array at evenly
// spaced flash-op boundaries inside an AtomicMultiPut — mid-prepare, around
// the commit record, mid-apply — rebuild both shards from their arrays (a
// machine-wide power loss), run recovery, and hold the atomicity oracle: the
// batch is fully visible or fully absent, never partial.
//
// OpenCluster deliberately rejects Device.Faults, so the harness below builds
// the two-shard cluster by hand on the facade's own internals and attaches
// the injector to shard 0's array directly.

// txnCrashShards builds the per-shard device options exactly as OpenCluster
// does (seed offset by shard index).
func txnCrashShardOpts(opts ClusterOptions, s int) Options {
	o := opts.Device
	o.Seed = opts.Device.Seed + int64(s)
	return o
}

// openTxnCrashCluster builds a serial 2-shard cluster; plan, when non-nil, is
// installed on shard 0's flash array.
func openTxnCrashCluster(t *testing.T, opts ClusterOptions, plan *fault.Plan) (*Cluster, []*core.Device) {
	t.Helper()
	devs := make([]device.KVSSD, 0, opts.Shards)
	cores := make([]*core.Device, 0, opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		shardOpts := txnCrashShardOpts(opts, s)
		impl, err := openImpl(&shardOpts)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		cd, ok := impl.(*core.Device)
		if !ok {
			t.Fatalf("shard %d: want *core.Device, got %T", s, impl)
		}
		cores = append(cores, cd)
		devs = append(devs, impl)
	}
	if plan != nil {
		cores[0].Array().SetInjector(fault.New(*plan))
	}
	c, err := cluster.New(devs, cluster.Config{
		QueueDepth:   opts.QueueDepth,
		Policy:       opts.Router,
		VirtualNodes: opts.VirtualNodes,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := &Cluster{c: c, opts: opts}
	cl.co = txn.New(clusterTxnBackend{c: c}, opts.Txn)
	return cl, cores
}

// reopenTxnCrashCluster remounts both shards from their surviving flash
// arrays (volatile state gone, as after a power cut) and rebuilds the
// cluster and its transaction layer on top.
func reopenTxnCrashCluster(t *testing.T, opts ClusterOptions, cores []*core.Device) *Cluster {
	t.Helper()
	devs := make([]device.KVSSD, 0, len(cores))
	for s, cd := range cores {
		shardOpts := txnCrashShardOpts(opts, s)
		geo, err := shardOpts.geometry()
		if err != nil {
			t.Fatal(err)
		}
		reopened, err := core.Reopen(core.Config{
			Geometry:      geo,
			DRAMBytes:     shardOpts.DRAMBytes,
			MemtableBytes: shardOpts.MemtableBytes,
			GrowthFactor:  shardOpts.GrowthFactor,
			GroupPages:    shardOpts.GroupPages,
			LogFraction:   shardOpts.LogFraction,
			Plus:          shardOpts.Design == DesignAnyKeyPlus,
			NoValueLog:    shardOpts.Design == DesignAnyKeyMinus,
			NoHashLists:   shardOpts.NoHashLists,
			Seed:          shardOpts.Seed,
		}, cd.Array())
		if err != nil {
			t.Fatalf("shard %d reopen: %v", s, err)
		}
		devs = append(devs, reopened)
	}
	c, err := cluster.New(devs, cluster.Config{
		QueueDepth:   opts.QueueDepth,
		Policy:       opts.Router,
		VirtualNodes: opts.VirtualNodes,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := &Cluster{c: c, opts: opts}
	cl.co = txn.New(clusterTxnBackend{c: c}, opts.Txn)
	return cl
}

func txnCrashBatch() (keys, vals [][]byte) {
	for i := 0; i < 6; i++ {
		keys = append(keys, []byte(fmt.Sprintf("txc-batch-%02d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('A' + i)}, 64))
	}
	return keys, vals
}

// txnCrashSetup writes and syncs the durable baseline every trial replays.
func txnCrashSetup(t *testing.T, cl *Cluster) {
	t.Helper()
	for i := 0; i < 16; i++ {
		if _, err := cl.Put([]byte(fmt.Sprintf("txc-base-%02d", i)), bytes.Repeat([]byte{'b'}, 48)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
}

func shard0FlashOps(cores []*core.Device) int64 {
	fc := cores[0].Stats().Flash()
	return fc.TotalReads() + fc.TotalWrites() + fc.Erases
}

func TestAtomicBatchCrashMatrix(t *testing.T) {
	opts := smallClusterOpts()
	opts.Shards = 2
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	keys, vals := txnCrashBatch()

	// Pilot: fault-free, to learn which shard-0 flash ops belong to the
	// atomic batch. The cut sweep targets exactly that window.
	pilot, pilotCores := openTxnCrashCluster(t, opts, nil)
	txnCrashSetup(t, pilot)
	opsBefore := shard0FlashOps(pilotCores)
	if _, err := pilot.AtomicMultiPut(keys, vals); err != nil {
		t.Fatalf("pilot atomic batch: %v", err)
	}
	opsAfter := shard0FlashOps(pilotCores)
	window := opsAfter - opsBefore
	if window < 2 {
		t.Fatalf("atomic batch ran only %d flash ops on shard 0 — batch does not span the shard", window)
	}
	// The batch must genuinely cross shards or 2PC never engages.
	shards := map[int]bool{}
	for _, k := range keys {
		shards[pilot.ShardFor(k)] = true
	}
	if len(shards) < 2 {
		t.Fatalf("batch keys all route to one shard: %v", shards)
	}

	const trials = 8
	stride := window / (trials + 1)
	if stride == 0 {
		stride = 1
	}
	var cuts, committed, rolledForward, rolledBack int
	for tr := 1; tr <= trials; tr++ {
		cutAt := opsBefore + stride*int64(tr)
		if cutAt > opsAfter {
			break
		}
		plan := fault.Plan{Seed: int64(tr), CutAtOp: cutAt}
		cl, cores := openTxnCrashCluster(t, opts, &plan)
		txnCrashSetup(t, cl)

		cut := false
		var batchErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := fault.AsPowerCut(r); !ok {
						panic(r)
					}
					cut = true
				}
			}()
			_, batchErr = cl.AtomicMultiPut(keys, vals)
		}()
		if cut {
			cuts++
		} else if batchErr == nil {
			committed++
		} else {
			t.Fatalf("cut@%d: batch failed without a power cut: %v", cutAt, batchErr)
		}

		// Machine-wide power loss: remount both shards from flash, recover.
		re := reopenTxnCrashCluster(t, opts, cores)
		fwd, back, err := re.RecoverTxns()
		if err != nil {
			t.Fatalf("cut@%d: recovery: %v", cutAt, err)
		}
		rolledForward += fwd
		rolledBack += back

		// Atomicity oracle: the batch is all-or-nothing after recovery.
		visible := 0
		for i, k := range keys {
			v, _, err := re.Get(k)
			if err == nil && bytes.Equal(v, vals[i]) {
				visible++
			}
		}
		if visible != 0 && visible != len(keys) {
			t.Fatalf("cut@%d: batch partially visible after recovery (%d/%d keys)", cutAt, visible, len(keys))
		}
		if !cut && batchErr == nil && visible != len(keys) {
			t.Fatalf("cut@%d: batch acknowledged before the cut but only %d/%d keys survive", cutAt, visible, len(keys))
		}

		// The synced baseline must survive any cut.
		for i := 0; i < 16; i++ {
			k := []byte(fmt.Sprintf("txc-base-%02d", i))
			if v, _, err := re.Get(k); err != nil || len(v) != 48 {
				t.Fatalf("cut@%d: baseline key %s lost after recovery: %q, %v", cutAt, k, v, err)
			}
		}

		// The recovered cluster still commits atomically.
		if _, err := re.AtomicMultiPut([][]byte{[]byte("txc-post-a"), []byte("txc-post-b")},
			[][]byte{[]byte("pa"), []byte("pb")}); err != nil {
			t.Fatalf("cut@%d: post-recovery atomic batch: %v", cutAt, err)
		}
		if v, _, err := re.Get([]byte("txc-post-b")); err != nil || string(v) != "pb" {
			t.Fatalf("cut@%d: post-recovery read: %q, %v", cutAt, v, err)
		}
		re.Close()
		if !cut {
			// A cut unwinds mid-operation with shard locks held (the facade
			// rejects Device.Faults on clusters for exactly this reason), so
			// a cut cluster cannot be Closed — it is simply abandoned; the
			// rebuilt cluster above owns the flash arrays.
			cl.Close()
		}
	}
	if cuts == 0 {
		t.Fatalf("no trial's power cut fired (committed=%d) — the sweep missed the batch window", committed)
	}
	t.Logf("crash matrix: %d cuts, %d clean commits, recovery rolled %d forward / %d back",
		cuts, committed, rolledForward, rolledBack)
}
