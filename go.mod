module anykey

go 1.22
