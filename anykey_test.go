package anykey

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestOpenAllDesigns(t *testing.T) {
	for _, design := range []Design{DesignPinK, DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus} {
		t.Run(design.String(), func(t *testing.T) {
			dev, err := Open(Options{Design: design, CapacityMB: 64})
			if err != nil {
				t.Fatal(err)
			}
			if dev.Design() != design {
				t.Fatalf("Design() = %v", dev.Design())
			}
			lat, err := dev.Put([]byte("alpha"), []byte("one"))
			if err != nil || lat <= 0 {
				t.Fatalf("Put: lat=%v err=%v", lat, err)
			}
			v, lat, err := dev.Get([]byte("alpha"))
			if err != nil || string(v) != "one" || lat <= 0 {
				t.Fatalf("Get = %q, %v, %v", v, lat, err)
			}
			if _, _, err := dev.Get([]byte("beta")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: %v", err)
			}
			if _, err := dev.Delete([]byte("alpha")); err != nil {
				t.Fatal(err)
			}
			if _, _, err := dev.Get([]byte("alpha")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key: %v", err)
			}
		})
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	dev, err := Open(Options{CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	prev := dev.Now()
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if _, err := dev.Put(k, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
		if dev.Now().Before(prev) {
			t.Fatal("clock went backwards")
		}
		prev = dev.Now()
	}
	if prev <= 0 {
		t.Fatal("clock never advanced")
	}
}

func TestScanThroughFacade(t *testing.T) {
	dev, err := Open(Options{Design: DesignAnyKeyPlus, CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		if _, err := dev.Put(k, []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pairs, _, err := dev.Scan([]byte("user:0100"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 || string(pairs[0].Key) != "user:0100" || string(pairs[4].Key) != "user:0104" {
		t.Fatalf("Scan = %v", pairs)
	}
}

func TestStatsAndMetadataExposed(t *testing.T) {
	dev, err := Open(Options{Design: DesignAnyKey, CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, err := dev.Put(k, bytes.Repeat([]byte{1}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	flash := dev.Flash()
	if flash.TotalWrites() == 0 {
		t.Fatal("no flash writes recorded")
	}
	ms := dev.Metadata()
	if len(ms) == 0 {
		t.Fatal("no metadata report")
	}
	st := dev.Stats()
	if st.LiveKeys != 4000 {
		t.Fatalf("LiveKeys = %d", st.LiveKeys)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{CapacityMB: 8, Channels: 8, ChipsPerChannel: 8}); err == nil {
		t.Fatal("impossible geometry accepted")
	}
	if _, err := Open(Options{Design: Design(99)}); err == nil {
		t.Fatal("unknown design accepted")
	}
	bad := []Options{
		{CapacityMB: -1},
		{DRAMBytes: -4096},
		{PageSize: -8192},
		{GroupPages: -8},
		{GroupPages: 1 << 20}, // cannot fit any erase block
		{LogFraction: -0.2},
		{LogFraction: 1.0},
		{LogFraction: 7},
		{MemtableBytes: -1},
		{GrowthFactor: -4},
		{Channels: -8},
		{ChipsPerChannel: -8},
	}
	for _, o := range bad {
		_, err := Open(o)
		if err == nil {
			t.Fatalf("Open(%+v) accepted invalid options", o)
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("Open(%+v) error %v is not ErrInvalidOptions", o, err)
		}
	}
	// Zero values mean "default" and must stay valid.
	if _, err := Open(Options{}); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	dev, err := Open(Options{CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := dev.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if _, err := dev.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
	if _, _, err := dev.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if _, err := dev.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: %v", err)
	}
	if _, _, err := dev.Scan([]byte("k"), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close: %v", err)
	}
	if _, err := dev.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := dev.PowerCycle(); !errors.Is(err, ErrClosed) {
		t.Fatalf("PowerCycle after Close: %v", err)
	}
	if _, err := dev.NewEngine(8); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewEngine after Close: %v", err)
	}
}

func TestNewEngineThroughFacade(t *testing.T) {
	dev, err := Open(Options{CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if _, err := dev.NewEngine(0); err == nil {
		t.Fatal("queue depth 0 accepted")
	}
	eng, err := dev.NewEngine(64)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Depth() != 64 {
		t.Fatalf("Depth = %d", eng.Depth())
	}
	for i := 0; i < 2000; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("eng-%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c, err := eng.Get([]byte("eng-00042"))
	if err != nil || string(c.Value) != "v" {
		t.Fatalf("engine Get = %q, %v", c.Value, err)
	}
	if c.Done.Before(c.Issued) || c.Issued.Before(c.Arrival) {
		t.Fatalf("completion out of order: %+v", c)
	}
	queue, service := eng.Breakdown()
	if service.Count() != eng.Ops() {
		t.Fatalf("service histogram has %d samples for %d ops", service.Count(), eng.Ops())
	}
	if queue.Max() != 0 {
		t.Fatalf("closed-loop queue wait %v", queue.Max())
	}
}

func TestDesignString(t *testing.T) {
	if DesignAnyKeyPlus.String() != "AnyKey+" || DesignPinK.String() != "PinK" {
		t.Fatal("design names wrong")
	}
}

// All four designs must be observationally equivalent key-value stores:
// the same operation sequence produces identical results everywhere.
func TestDesignsAgree(t *testing.T) {
	designs := []Design{DesignPinK, DesignAnyKey, DesignAnyKeyPlus, DesignAnyKeyMinus}
	devs := make([]*Device, len(designs))
	for i, d := range designs {
		dev, err := Open(Options{Design: d, CapacityMB: 64})
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	rng := rand.New(rand.NewSource(99))
	key := func(i int) []byte { return []byte(fmt.Sprintf("agree-%05d", i)) }
	for op := 0; op < 6000; op++ {
		i := rng.Intn(700)
		switch r := rng.Float64(); {
		case r < 0.5:
			v := []byte(fmt.Sprintf("val-%d-%d-%s", i, op, bytes.Repeat([]byte{'x'}, rng.Intn(150))))
			for _, dev := range devs {
				if _, err := dev.Put(key(i), v); err != nil {
					t.Fatalf("op %d: %v: %v", op, dev.Design(), err)
				}
			}
		case r < 0.6:
			for _, dev := range devs {
				if _, err := dev.Delete(key(i)); err != nil {
					t.Fatal(err)
				}
			}
		case r < 0.9:
			var ref []byte
			var refErr error
			for j, dev := range devs {
				v, _, err := dev.Get(key(i))
				if j == 0 {
					ref, refErr = v, err
					continue
				}
				if (err == nil) != (refErr == nil) || !bytes.Equal(v, ref) {
					t.Fatalf("op %d: %v disagrees with %v on Get(%s): %q/%v vs %q/%v",
						op, dev.Design(), devs[0].Design(), key(i), v, err, ref, refErr)
				}
			}
		default:
			n := 1 + rng.Intn(20)
			var ref []Pair
			for j, dev := range devs {
				ps, _, err := dev.Scan(key(i), n)
				if err != nil {
					t.Fatal(err)
				}
				if j == 0 {
					ref = make([]Pair, len(ps))
					for k, p := range ps {
						ref[k] = Pair{Key: append([]byte(nil), p.Key...), Value: append([]byte(nil), p.Value...)}
					}
					continue
				}
				if len(ps) != len(ref) {
					t.Fatalf("op %d: %v scan returned %d pairs, %v returned %d",
						op, dev.Design(), len(ps), devs[0].Design(), len(ref))
				}
				for k := range ps {
					if !bytes.Equal(ps[k].Key, ref[k].Key) || !bytes.Equal(ps[k].Value, ref[k].Value) {
						t.Fatalf("op %d: scan pair %d disagrees between %v and %v",
							op, k, dev.Design(), devs[0].Design())
					}
				}
			}
		}
	}
}

func TestSyncAndPowerCycle(t *testing.T) {
	dev, err := Open(Options{Design: DesignAnyKeyPlus, CapacityMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("pc-%05d", i))
		if _, err := dev.Put(k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i += 17 {
		k := []byte(fmt.Sprintf("pc-%05d", i))
		v, _, err := dev.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("after power cycle: Get(%s) = %q, %v", k, v, err)
		}
	}
	// The recovered device keeps working.
	if _, err := dev.Put([]byte("pc-after"), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := dev.Get([]byte("pc-after")); err != nil || string(v) != "alive" {
		t.Fatalf("post-recovery write: %q, %v", v, err)
	}
	// PinK power-cycling is not modelled.
	pk, _ := Open(Options{Design: DesignPinK, CapacityMB: 64})
	if err := pk.PowerCycle(); err == nil {
		t.Fatal("PinK power cycle should be rejected")
	}
}
