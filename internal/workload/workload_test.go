package workload

import (
	"bytes"
	"testing"
)

func TestTable2Complete(t *testing.T) {
	if len(Table2) != 14 {
		t.Fatalf("Table2 has %d workloads, want 14", len(Table2))
	}
	highVK := map[string]bool{"KVSSD": true, "YCSB": true, "W-PinK": true, "Xbox": true}
	for _, s := range Table2 {
		if s.KeySize <= 0 || s.ValueSize <= 0 {
			t.Errorf("%s: bad sizes %d/%d", s.Name, s.KeySize, s.ValueSize)
		}
		if got, want := !s.LowVK(), highVK[s.Name]; got != want {
			t.Errorf("%s: LowVK classification wrong (v/k = %.2f)", s.Name, s.VK())
		}
	}
	if s, ok := ByName("Crypto1"); !ok || s.KeySize != 76 || s.ValueSize != 50 {
		t.Fatalf("ByName(Crypto1) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found phantom workload")
	}
}

func TestSpecHelpers(t *testing.T) {
	s := Custom("t", 40, 160)
	if s.VK() != 4.0 || s.PairSize() != 200 {
		t.Fatalf("VK=%v PairSize=%v", s.VK(), s.PairSize())
	}
}

func mustGen(t *testing.T, spec Spec, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	spec, _ := ByName("ETC")
	if _, err := NewGenerator(spec, Config{Population: 0, Theta: 0.99}); err == nil {
		t.Fatal("zero population accepted")
	}
	if _, err := NewGenerator(Custom("tiny", 4, 10), DefaultConfig(10)); err == nil {
		t.Fatal("tiny key accepted")
	}
	bad := DefaultConfig(10)
	bad.WriteRatio = 0.9
	bad.ScanRatio = 0.5
	if _, err := NewGenerator(spec, bad); err == nil {
		t.Fatal("op mix over 1.0 accepted")
	}
}

func TestKeyPropertiesAndOrder(t *testing.T) {
	g := mustGen(t, Table2[4], DefaultConfig(1000)) // ETC: 41-byte keys
	prev := g.Key(0)
	if len(prev) != 41 {
		t.Fatalf("key size %d, want 41", len(prev))
	}
	for id := uint64(1); id < 200; id++ {
		k := g.Key(id)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("keys not ordered by id at %d", id)
		}
		prev = k
	}
	if !bytes.Equal(g.Key(7), g.Key(7)) {
		t.Fatal("Key not deterministic")
	}
}

func TestValueDeterministicPerVersion(t *testing.T) {
	g := mustGen(t, Table2[4], DefaultConfig(10))
	v0 := g.Value(3, 0)
	if len(v0) != 358 {
		t.Fatalf("value size %d", len(v0))
	}
	if !bytes.Equal(v0, g.Value(3, 0)) {
		t.Fatal("Value not deterministic")
	}
	if bytes.Equal(v0, g.Value(3, 1)) {
		t.Fatal("versions produce identical values")
	}
	if bytes.Equal(v0, g.Value(4, 0)) {
		t.Fatal("different ids produce identical values")
	}
}

func TestLoadIDIsBijection(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 4096, 5000} {
		g := mustGen(t, Table2[4], DefaultConfig(n))
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			id := g.LoadID(i)
			if id >= n {
				t.Fatalf("n=%d: LoadID(%d)=%d out of range", n, i, id)
			}
			if seen[id] {
				t.Fatalf("n=%d: LoadID repeats id %d", n, id)
			}
			seen[id] = true
		}
	}
}

func TestLoadIDShuffles(t *testing.T) {
	g := mustGen(t, Table2[4], DefaultConfig(10000))
	inPlace := 0
	for i := uint64(0); i < 10000; i++ {
		if g.LoadID(i) == i {
			inPlace++
		}
	}
	if inPlace > 100 {
		t.Fatalf("%d/10000 ids load in order; not shuffled", inPlace)
	}
}

func TestOpMixAndVersionTracking(t *testing.T) {
	cfg := DefaultConfig(5000)
	cfg.WriteRatio = 0.2
	g := mustGen(t, Table2[4], cfg)
	var gets, puts int
	for i := 0; i < 20000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpPut:
			puts++
			if !bytes.Equal(op.Value, g.ExpectedValue(op.ID)) {
				t.Fatal("Put value does not match subsequent ExpectedValue")
			}
			if len(op.Key) != 41 {
				t.Fatal("op key size wrong")
			}
		case OpGet:
			gets++
		default:
			t.Fatal("unexpected scan op")
		}
	}
	frac := float64(puts) / float64(gets+puts)
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("write fraction %.3f, want ≈0.2", frac)
	}
}

func TestScanOps(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.WriteRatio = 0
	cfg.ScanRatio = 1
	cfg.ScanLen = 100
	g := mustGen(t, Table2[5], cfg) // UDB
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != OpScan || op.ScanLen != 100 {
			t.Fatalf("op = %+v", op)
		}
		if op.ID+uint64(op.ScanLen) > 1000 {
			t.Fatalf("scan overruns population: id=%d", op.ID)
		}
		if op.Bytes() != int64(27*100) {
			t.Fatalf("scan Bytes = %d", op.Bytes())
		}
	}
}

func TestOpBytes(t *testing.T) {
	g := mustGen(t, Table2[4], DefaultConfig(10))
	get := Op{Kind: OpGet, Key: g.Key(1)}
	put := Op{Kind: OpPut, Key: g.Key(1), Value: g.Value(1, 0)}
	if get.Bytes() != 41 || put.Bytes() != 41+358 {
		t.Fatalf("Bytes: get=%d put=%d", get.Bytes(), put.Bytes())
	}
}

func TestYCSBMixes(t *testing.T) {
	if len(YCSBMixes) != 6 {
		t.Fatalf("YCSB mixes: %d", len(YCSBMixes))
	}
	for _, m := range YCSBMixes {
		cfg, ok := YCSBConfig(m.Name, 1000)
		if !ok {
			t.Fatalf("mix %s missing", m.Name)
		}
		if cfg.WriteRatio != m.WriteRatio || cfg.ScanRatio != m.ScanRatio {
			t.Fatalf("mix %s config mismatch", m.Name)
		}
		spec, _ := ByName("YCSB")
		if _, err := NewGenerator(spec, cfg); err != nil {
			t.Fatalf("mix %s: %v", m.Name, err)
		}
	}
	if _, ok := YCSBConfig("Z", 10); ok {
		t.Fatal("unknown mix accepted")
	}
}
