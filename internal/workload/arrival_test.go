package workload

import (
	"hash/fnv"
	"math"
	"testing"

	"anykey/internal/sim"
)

// arrivalChecksum folds the first n arrival instants of a stream into one
// FNV-64a hash — the determinism fingerprint the golden gate pins.
func arrivalChecksum(t *testing.T, spec ArrivalSpec, seed int64, n int) uint64 {
	t.Helper()
	arr, err := NewArrivals(spec, seed)
	if err != nil {
		t.Fatalf("NewArrivals(%v, %d): %v", spec, seed, err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < n; i++ {
		at := arr.Next()
		for b := 0; b < 8; b++ {
			buf[b] = byte(uint64(at) >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

var arrivalShapes = []ArrivalSpec{
	{Shape: ArrivalConstant, Rate: 200e3},
	{Shape: ArrivalBursty, Rate: 200e3, Burst: 1.8, Period: 10 * sim.Millisecond},
	{Shape: ArrivalBursty, Rate: 200e3, Burst: 2.0, Period: 10 * sim.Millisecond},
	{Shape: ArrivalDiurnal, Rate: 200e3, Burst: 2.0, Period: 10 * sim.Millisecond},
}

// TestArrivalDeterminism checks the contract the parallel harness relies
// on: the stream is a pure function of (spec, seed), and distinct seeds
// decorrelate it.
func TestArrivalDeterminism(t *testing.T) {
	for _, spec := range arrivalShapes {
		a := arrivalChecksum(t, spec, 42, 5000)
		b := arrivalChecksum(t, spec, 42, 5000)
		if a != b {
			t.Errorf("%v: same seed produced different streams: %#x vs %#x", spec, a, b)
		}
		if c := arrivalChecksum(t, spec, 43, 5000); c == a {
			t.Errorf("%v: seeds 42 and 43 produced identical streams (%#x)", spec, a)
		}
	}
}

// TestArrivalGoldenChecksums pins the exact streams. A failure means the
// arrival PRNG or shape math changed — every committed open-loop report
// (reports/storm.txt) changes with it, so rebaseline both deliberately.
func TestArrivalGoldenChecksums(t *testing.T) {
	golden := []uint64{
		0x95c97c95f5d35a3a, // constant
		0x97e20b0c9cd362a8, // bursty 1.8
		0xe7c8fec7bd2814dd, // bursty 2.0 (silent off-phase)
		0x4c694b259085125e, // diurnal
	}
	for i, spec := range arrivalShapes {
		if got := arrivalChecksum(t, spec, 1, 2000); got != golden[i] {
			t.Errorf("%v seed 1: checksum %#x, want %#x", spec, got, golden[i])
		}
	}
}

// TestArrivalMeanRate checks every shape delivers its configured mean: over
// many periods the arrival count converges on Rate ops/s regardless of how
// the shape modulates the instantaneous rate.
func TestArrivalMeanRate(t *testing.T) {
	const horizon = 500 * sim.Millisecond
	for _, spec := range arrivalShapes {
		arr, err := NewArrivals(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for arr.Next() <= sim.Time(horizon) {
			n++
		}
		want := spec.Rate * horizon.Seconds()
		if math.Abs(float64(n)-want) > 0.05*want {
			t.Errorf("%v: %d arrivals in %v, want ~%.0f (±5%%)", spec, n, horizon, want)
		}
	}
}

// TestArrivalMonotone checks instants strictly increase — the open loop's
// event ordering depends on it.
func TestArrivalMonotone(t *testing.T) {
	for _, spec := range arrivalShapes {
		arr, err := NewArrivals(spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		prev := sim.Time(-1)
		for i := 0; i < 10000; i++ {
			at := arr.Next()
			if at <= prev {
				t.Fatalf("%v: arrival %d at %v not after %v", spec, i, at, prev)
			}
			prev = at
		}
	}
}

func TestArrivalSpecValidate(t *testing.T) {
	valid := append([]ArrivalSpec{{}}, arrivalShapes...)
	for _, spec := range valid {
		if err := spec.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", spec, err)
		}
	}
	invalid := []ArrivalSpec{
		{Rate: 100},                        // closed loop with a rate
		{Shape: ArrivalConstant},           // no rate
		{Shape: ArrivalConstant, Rate: -5}, // negative rate
		{Shape: ArrivalConstant, Rate: math.Inf(1)},
		{Shape: ArrivalConstant, Rate: 100, Burst: 1.5},                          // constant takes no burst
		{Shape: ArrivalBursty, Rate: 100, Burst: 1.5},                            // no period
		{Shape: ArrivalBursty, Rate: 100, Burst: 1.0, Period: sim.Millisecond},   // burst at lower bound
		{Shape: ArrivalBursty, Rate: 100, Burst: 2.5, Period: sim.Millisecond},   // burst too high
		{Shape: ArrivalDiurnal, Rate: 100, Burst: 1.5, Period: -sim.Millisecond}, // negative period
		{Shape: ArrivalShape(9), Rate: 100, Burst: 1.5, Period: sim.Millisecond}, // unknown shape
	}
	for _, spec := range invalid {
		if err := spec.Validate(); err == nil {
			t.Errorf("%+v: expected a validation error", spec)
		}
	}
	if _, err := NewArrivals(ArrivalSpec{}, 1); err == nil {
		t.Error("NewArrivals accepted a closed-loop spec")
	}
}

func TestArrivalShapeByName(t *testing.T) {
	for _, name := range []string{"closed", "constant", "bursty", "diurnal"} {
		s, ok := ArrivalShapeByName(name)
		if !ok || s.String() != name {
			t.Errorf("ArrivalShapeByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := ArrivalShapeByName("sawtooth"); ok {
		t.Error("ArrivalShapeByName accepted an unknown name")
	}
}
