package workload

import (
	"fmt"
	"math"
	"math/rand"

	"anykey/internal/sim"
)

// Open-loop arrival process: instead of the closed-loop "QD-N clients, next
// request on completion" model, requests arrive on their own virtual-time
// clock at a configured offered load, whether or not the device keeps up.
// That is the regime where overload, goodput collapse and metastable
// failure become visible — a closed loop throttles itself by construction.
//
// The generator is deterministic for a (spec, seed) pair: it owns its own
// PRNG (separate from the op-mix stream, so enabling an arrival process
// never perturbs the key/op sequence) and draws exponential interarrival
// gaps at the shape's instantaneous rate. Rate shapes are piecewise
// constant, and a draw that would cross a phase boundary is re-drawn at the
// boundary — statistically exact for exponential gaps (memorylessness) and
// what keeps the stream deterministic regardless of how far the caller
// reads ahead.

// ArrivalShape selects the rate shape of an open-loop arrival process. The
// zero value means closed loop: no arrival process at all.
type ArrivalShape uint8

// Arrival shapes. Constant offers a flat Poisson stream at Rate. Bursty is
// an on/off square wave: the first half of each Period runs at Burst×Rate,
// the second at (2−Burst)×Rate, preserving the mean. Diurnal is a smooth
// sine between the same extremes over one Period.
const (
	ArrivalClosed ArrivalShape = iota
	ArrivalConstant
	ArrivalBursty
	ArrivalDiurnal
)

var arrivalShapeNames = [...]string{"closed", "constant", "bursty", "diurnal"}

// String returns the shape's lowercase name.
func (s ArrivalShape) String() string {
	if int(s) < len(arrivalShapeNames) {
		return arrivalShapeNames[s]
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// ArrivalShapeByName parses a shape name as spelled by String.
func ArrivalShapeByName(name string) (ArrivalShape, bool) {
	for i, n := range arrivalShapeNames {
		if n == name {
			return ArrivalShape(i), true
		}
	}
	return ArrivalClosed, false
}

// ArrivalSpec configures an open-loop arrival process. The zero value means
// closed loop. All fields are scalars so specs stay comparable — the
// harness memoises runs on their full config.
type ArrivalSpec struct {
	Shape ArrivalShape
	// Rate is the mean offered load in operations per second of virtual
	// time, across all shapes.
	Rate float64
	// Burst is the peak-to-mean rate ratio in (1, 2] for bursty and
	// diurnal shapes; the trough rate is (2−Burst)×Rate so the mean is
	// preserved. Must be zero for constant.
	Burst float64
	// Period is the full on+off cycle (bursty) or sine wavelength
	// (diurnal). Must be zero for constant.
	Period sim.Duration
}

// Open reports whether the spec describes an open-loop arrival process.
func (a ArrivalSpec) Open() bool { return a.Shape != ArrivalClosed }

// Validate checks the spec's internal consistency. The zero value is valid
// (closed loop); any open shape needs a positive rate, and the modulated
// shapes need a burst factor and period.
func (a ArrivalSpec) Validate() error {
	switch a.Shape {
	case ArrivalClosed:
		if a.Rate != 0 || a.Burst != 0 || a.Period != 0 {
			return fmt.Errorf("workload: closed-loop arrival spec must leave rate/burst/period zero")
		}
		return nil
	case ArrivalConstant:
		if a.Burst != 0 || a.Period != 0 {
			return fmt.Errorf("workload: constant arrival shape takes no burst/period")
		}
	case ArrivalBursty, ArrivalDiurnal:
		if a.Burst <= 1 || a.Burst > 2 {
			return fmt.Errorf("workload: %s arrival burst %v outside (1, 2]", a.Shape, a.Burst)
		}
		if a.Period <= 0 {
			return fmt.Errorf("workload: %s arrival needs a positive period", a.Shape)
		}
	default:
		return fmt.Errorf("workload: unknown arrival shape %d", int(a.Shape))
	}
	if a.Rate <= 0 || math.IsInf(a.Rate, 0) || math.IsNaN(a.Rate) {
		return fmt.Errorf("workload: arrival rate %v must be a positive finite ops/s", a.Rate)
	}
	return nil
}

// String renders the spec for run headers, e.g. "bursty 200000 ops/s
// burst=1.8 period=10.000ms".
func (a ArrivalSpec) String() string {
	switch a.Shape {
	case ArrivalClosed:
		return "closed"
	case ArrivalConstant:
		return fmt.Sprintf("constant %g ops/s", a.Rate)
	default:
		return fmt.Sprintf("%s %g ops/s burst=%g period=%v", a.Shape, a.Rate, a.Burst, a.Period)
	}
}

// diurnalSlices approximates the sine shape as this many piecewise-constant
// rate slices per period (the rate is sampled at each slice midpoint).
const diurnalSlices = 64

// Arrivals generates the virtual-time arrival stream of an ArrivalSpec.
type Arrivals struct {
	spec ArrivalSpec
	rng  *rand.Rand
	now  sim.Time
}

// NewArrivals builds the arrival stream for an open-loop spec; the seed is
// the stream's own (the op mix uses a separate PRNG).
func NewArrivals(spec ArrivalSpec, seed int64) (*Arrivals, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Open() {
		return nil, fmt.Errorf("workload: closed-loop spec has no arrival stream")
	}
	return &Arrivals{spec: spec, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next arrival timestamp; timestamps are strictly
// increasing from virtual time zero.
func (a *Arrivals) Next() sim.Time {
	for {
		rate := a.rateAt(a.now)
		end := a.phaseEnd(a.now)
		if rate <= 0 {
			// Silent phase (burst=2 turns the off half fully off): skip to
			// the next phase without consuming randomness.
			a.now = end
			continue
		}
		gap := sim.Duration(a.rng.ExpFloat64() / rate * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		next := a.now.Add(gap)
		if end > 0 && next.After(end) {
			// Crossed into the next rate phase: re-draw there. Exponential
			// gaps are memoryless, so restarting at the boundary keeps the
			// process exact.
			a.now = end
			continue
		}
		a.now = next
		return a.now
	}
}

// rateAt returns the instantaneous offered rate (ops/s) at t.
func (a *Arrivals) rateAt(t sim.Time) float64 {
	switch a.spec.Shape {
	case ArrivalConstant:
		return a.spec.Rate
	case ArrivalBursty:
		if a.inOnPhase(t) {
			return a.spec.Burst * a.spec.Rate
		}
		return (2 - a.spec.Burst) * a.spec.Rate
	case ArrivalDiurnal:
		slice := int64(t) / a.sliceLen()
		mid := float64(slice) + 0.5
		phase := 2 * math.Pi * mid / diurnalSlices
		return a.spec.Rate * (1 + (a.spec.Burst-1)*math.Sin(phase))
	}
	return 0
}

// phaseEnd returns the end of the piecewise-constant rate phase containing
// t, or 0 when the rate never changes.
func (a *Arrivals) phaseEnd(t sim.Time) sim.Time {
	switch a.spec.Shape {
	case ArrivalBursty:
		half := int64(a.spec.Period) / 2
		return sim.Time((int64(t)/half + 1) * half)
	case ArrivalDiurnal:
		sl := a.sliceLen()
		return sim.Time((int64(t)/sl + 1) * sl)
	}
	return 0
}

func (a *Arrivals) inOnPhase(t sim.Time) bool {
	return int64(t)%int64(a.spec.Period) < int64(a.spec.Period)/2
}

func (a *Arrivals) sliceLen() int64 {
	sl := int64(a.spec.Period) / diurnalSlices
	if sl < 1 {
		sl = 1
	}
	return sl
}
