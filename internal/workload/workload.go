// Package workload implements the paper's evaluation workloads: the 14
// real-life key/value size profiles of Table 2 and the request generator
// that drives them (§5.1 — KV generator with configurable key/value sizes,
// a 20 % write ratio, scrambled-Zipfian key popularity, queue depth handled
// by the harness, plus the scan-centric variant of §6.6 / Fig. 18).
package workload

import (
	"fmt"
	"math/rand"

	"anykey/internal/payload"
	"anykey/internal/zipfian"
)

// Spec describes one workload profile from Table 2. Sizes are bytes.
// Arrival is the optional open-loop arrival process (arrival.go); its zero
// value keeps the spec closed-loop, so every Table 2 profile is unchanged.
type Spec struct {
	Name        string
	Description string
	KeySize     int
	ValueSize   int
	Arrival     ArrivalSpec
}

// WithArrival returns a copy of the spec driven by the given open-loop
// arrival process.
func (s Spec) WithArrival(a ArrivalSpec) Spec {
	s.Arrival = a
	return s
}

// VK returns the value-to-key ratio that classifies the workload.
func (s Spec) VK() float64 { return float64(s.ValueSize) / float64(s.KeySize) }

// LowVK reports whether the paper treats this as a low-v/k workload (the
// paper's split: KVSSD, YCSB, W-PinK and Xbox are high-v/k, the rest low).
func (s Spec) LowVK() bool { return s.VK() < 10 }

// PairSize returns the logical bytes of one KV pair.
func (s Spec) PairSize() int { return s.KeySize + s.ValueSize }

// Table2 is the paper's workload suite in its printed order.
var Table2 = []Spec{
	{Name: "KVSSD", Description: "The workload used in Samsung's KV-SSD", KeySize: 16, ValueSize: 4096},
	{Name: "YCSB", Description: "Default key and value sizes of YCSB", KeySize: 20, ValueSize: 1000},
	{Name: "W-PinK", Description: "The workload used in PinK", KeySize: 32, ValueSize: 1024},
	{Name: "Xbox", Description: "Xbox LIVE Primetime online game", KeySize: 94, ValueSize: 1200},
	{Name: "ETC", Description: "General-purpose KV store of Facebook", KeySize: 41, ValueSize: 358},
	{Name: "UDB", Description: "Facebook storage layer for social graph", KeySize: 27, ValueSize: 127},
	{Name: "Cache", Description: "Twitter's cache cluster", KeySize: 42, ValueSize: 188},
	{Name: "VAR", Description: "Server-side browser info. of Facebook", KeySize: 35, ValueSize: 115},
	{Name: "Crypto2", Description: "Trezor's KV store for Bitcoin wallet", KeySize: 37, ValueSize: 110},
	{Name: "Dedup", Description: "DB of Microsoft's storage dedup. engine", KeySize: 20, ValueSize: 44},
	{Name: "Cache15", Description: "15% of the 153 cache clusters at Twitter", KeySize: 38, ValueSize: 38},
	{Name: "ZippyDB", Description: "Object metadata of Facebook store", KeySize: 48, ValueSize: 43},
	{Name: "Crypto1", Description: "BlockStream's store for Bitcoin explorer", KeySize: 76, ValueSize: 50},
	{Name: "RTDATA", Description: "IBM's real-time data analytics workloads", KeySize: 24, ValueSize: 10},
}

// ByName looks a Table 2 workload up by its (case-sensitive) name.
func ByName(name string) (Spec, bool) {
	for _, s := range Table2 {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Custom builds an ad-hoc spec, used by the Fig. 2 value-size sweep.
func Custom(name string, keySize, valueSize int) Spec {
	return Spec{Name: name, Description: "custom", KeySize: keySize, ValueSize: valueSize}
}

// OpKind distinguishes generated requests.
type OpKind int

// Request kinds produced by the generator.
const (
	OpGet OpKind = iota
	OpPut
	OpScan
)

// Op is one generated request. For OpScan, ScanLen is the number of
// consecutive keys to retrieve starting at Key.
type Op struct {
	Kind    OpKind
	ID      uint64
	Key     []byte
	Value   []byte // set for OpPut
	ScanLen int    // set for OpScan
}

// Bytes returns the logical request size used to meter execution length
// (the paper runs until issued requests total 2× the SSD capacity).
func (o Op) Bytes() int64 {
	switch o.Kind {
	case OpPut:
		return int64(len(o.Key) + len(o.Value))
	case OpScan:
		return int64(len(o.Key)) * int64(o.ScanLen)
	default:
		return int64(len(o.Key))
	}
}

// Config parameterises a Generator.
type Config struct {
	Population uint64  // number of distinct keys
	Theta      float64 // Zipfian skew (paper default 0.99)
	WriteRatio float64 // fraction of operations that are writes (paper: 0.2)
	ScanRatio  float64 // fraction of operations that are scans (Fig. 18 only)
	ScanLen    int     // keys per scan
	Seed       int64
}

// DefaultConfig returns the paper's default request mix for population n.
func DefaultConfig(n uint64) Config {
	return Config{Population: n, Theta: 0.99, WriteRatio: 0.2, Seed: 1}
}

// Generator produces the request stream for one workload. It tracks the
// latest written version of every key so the harness can verify reads.
type Generator struct {
	spec     Spec
	cfg      Config
	rng      *rand.Rand
	zipf     *zipfian.Generator
	loadBits uint64 // even bit-width of the warm-up Feistel domain

	versions []uint32 // latest version per id; 0 = only the loaded version

	// Direct-mapped materialisation caches. Key and Value are pure
	// functions of (spec, id[, version]), so a cache hit returns bytes
	// identical to a fresh materialisation; Zipfian skew makes hot ids
	// recur constantly. A conflicting id (or version) allocates a fresh
	// buffer instead of rewriting the slot in place, so slices handed out
	// earlier are never mutated — callers may retain them freely.
	keyIDs  []uint64
	keyBufs [][]byte
	valIDs  []uint64
	valVers []uint32
	valBufs [][]byte
}

// Cache geometry: slot counts must be powers of two. Sized for the skewed
// head of a Zipfian(0.99) draw; values get fewer slots since a value buffer
// can be KiB-scale.
const (
	keyCacheSlots = 1 << 14
	valCacheSlots = 1 << 13
)

// NewGenerator builds a generator; population and sizes must be positive.
func NewGenerator(spec Spec, cfg Config) (*Generator, error) {
	if cfg.Population == 0 {
		return nil, fmt.Errorf("workload: zero population")
	}
	if spec.KeySize < 9 {
		return nil, fmt.Errorf("workload %s: key size %d below 9-byte minimum", spec.Name, spec.KeySize)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 || cfg.ScanRatio < 0 || cfg.WriteRatio+cfg.ScanRatio > 1 {
		return nil, fmt.Errorf("workload: bad op mix w=%v s=%v", cfg.WriteRatio, cfg.ScanRatio)
	}
	if err := spec.Arrival.Validate(); err != nil {
		return nil, err
	}
	z, err := zipfian.New(cfg.Population, cfg.Theta)
	if err != nil {
		return nil, err
	}
	bits := uint64(2)
	for uint64(1)<<bits < cfg.Population {
		bits += 2
	}
	return &Generator{
		spec:     spec,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		zipf:     z,
		loadBits: bits,
		versions: make([]uint32, cfg.Population),
		keyIDs:   make([]uint64, keyCacheSlots),
		keyBufs:  make([][]byte, keyCacheSlots),
		valIDs:   make([]uint64, valCacheSlots),
		valVers:  make([]uint32, valCacheSlots),
		valBufs:  make([][]byte, valCacheSlots),
	}, nil
}

// Spec returns the workload profile being generated.
func (g *Generator) Spec() Spec { return g.spec }

// Population returns the number of distinct keys.
func (g *Generator) Population() uint64 { return g.cfg.Population }

// Key materialises the id's key: an 8-byte big-endian id prefix (preserving
// id order, so scans over consecutive ids are scans over consecutive keys)
// followed by deterministic filler, exactly KeySize bytes.
func (g *Generator) Key(id uint64) []byte {
	slot := id & (keyCacheSlots - 1)
	if b := g.keyBufs[slot]; b != nil && g.keyIDs[slot] == id {
		return b
	}
	k := Key(g.spec, id)
	g.keyIDs[slot], g.keyBufs[slot] = id, k
	return k
}

// Value materialises the value for (id, version): deterministic bytes with
// the id and version embedded so reads are verifiable.
func (g *Generator) Value(id uint64, version uint32) []byte {
	slot := id & (valCacheSlots - 1)
	if b := g.valBufs[slot]; b != nil && g.valIDs[slot] == id && g.valVers[slot] == version {
		// Re-register on cache hits: the write that follows may land on
		// flash long after the first generation Noted these bytes.
		payload.Note(b, id*0x9E3779B97F4A7C15+uint64(version))
		return b
	}
	v := Value(g.spec, id, version)
	g.valIDs[slot], g.valVers[slot], g.valBufs[slot] = id, version, v
	return v
}

// Key materialises a key for spec without a Generator (used by fill-to-full
// runs over an unbounded id space).
func Key(spec Spec, id uint64) []byte { return AppendKey(nil, spec, id) }

// AppendKey materialises the id's key into dst's storage, reusing its
// capacity when it suffices, and returns the key. The bytes are identical to
// Key(spec, id); callers that hand the result to a copying sink (every
// device Put copies) can reuse one buffer across a fill loop.
func AppendKey(dst []byte, spec Spec, id uint64) []byte {
	if cap(dst) < spec.KeySize {
		dst = make([]byte, spec.KeySize)
	}
	k := dst[:spec.KeySize]
	for i := 0; i < 8; i++ {
		k[i] = byte(id >> (56 - 8*i))
	}
	fillDeterministic(k[8:], id^0xA5A5A5A5)
	return k
}

// Value materialises a value for spec without a Generator.
func Value(spec Spec, id uint64, version uint32) []byte {
	return AppendValue(nil, spec, id, version)
}

// AppendValue is to Value what AppendKey is to Key. Every value is a pure
// function of (id, version), which the payload registry exploits: Note tells
// the flyweight page store how to regenerate these bytes instead of
// retaining them (a no-op unless a flyweight-mode device is open).
func AppendValue(dst []byte, spec Spec, id uint64, version uint32) []byte {
	if cap(dst) < spec.ValueSize {
		dst = make([]byte, spec.ValueSize)
	}
	v := dst[:spec.ValueSize]
	seed := id*0x9E3779B97F4A7C15 + uint64(version)
	fillDeterministic(v, seed)
	payload.Note(v, seed)
	return v
}

// fillDeterministic delegates to the payload package, which owns the
// (golden-checksum-pinned) byte recurrence shared with the flyweight store.
func fillDeterministic(dst []byte, seed uint64) { payload.Fill(dst, seed) }

// ExpectedValue returns the value a correct device must return for id now.
func (g *Generator) ExpectedValue(id uint64) []byte {
	return g.Value(id, g.versions[id])
}

// LoadID returns the id loaded at warm-up position i. LoadID is a bijection
// on [0, Population): warm-up inserts key LoadID(i) for i = 0..Population-1,
// inserting every key exactly once in shuffled order so the LSM tree reaches
// a realistic overlapping-levels state instead of one perfectly sorted run.
func (g *Generator) LoadID(i uint64) uint64 {
	x := g.feistel(i)
	// Cycle-walk: feistel permutes [0, 2^bits) with 2^bits < 4·Population,
	// so the expected walk length is below 4 steps.
	for x >= g.cfg.Population {
		x = g.feistel(x)
	}
	return x
}

// feistel is a 4-round balanced Feistel permutation over [0, 2^loadBits).
func (g *Generator) feistel(x uint64) uint64 {
	half := g.loadBits / 2
	mask := uint64(1)<<half - 1
	l, r := (x>>half)&mask, x&mask
	for round := uint64(0); round < 4; round++ {
		l, r = r, l^(mixRound(r, round, uint64(g.cfg.Seed))&mask)
	}
	return l<<half | r
}

func mixRound(r, round, seed uint64) uint64 {
	return zipfian.Scramble(r*0x100000001b3 + round*0x9E3779B9 + seed)
}

// Next draws the next request after warm-up: a Get, Put or Scan on a
// Zipfian-popular key.
func (g *Generator) Next() Op {
	id := g.zipf.NextScrambled(g.rng)
	r := g.rng.Float64()
	switch {
	case r < g.cfg.WriteRatio:
		g.versions[id]++
		return Op{Kind: OpPut, ID: id, Key: g.Key(id), Value: g.Value(id, g.versions[id])}
	case r < g.cfg.WriteRatio+g.cfg.ScanRatio:
		ln := g.cfg.ScanLen
		if ln <= 0 {
			ln = 1
		}
		if id+uint64(ln) > g.cfg.Population {
			id = g.cfg.Population - uint64(ln)
		}
		return Op{Kind: OpScan, ID: id, Key: g.Key(id), ScanLen: ln}
	default:
		return Op{Kind: OpGet, ID: id, Key: g.Key(id)}
	}
}

// YCSBMix identifies one of the standard YCSB core workload mixes, mapped
// onto this generator's operations. Inserts and read-modify-writes are
// modelled as updates (the device-side work is identical: a Put).
type YCSBMix struct {
	Name        string
	Description string
	WriteRatio  float64
	ScanRatio   float64
	ScanLen     int
}

// YCSBMixes are the YCSB core workloads A–F.
var YCSBMixes = []YCSBMix{
	{"A", "update heavy: 50% reads, 50% updates", 0.5, 0, 0},
	{"B", "read mostly: 95% reads, 5% updates", 0.05, 0, 0},
	{"C", "read only", 0, 0, 0},
	{"D", "read latest: 95% reads, 5% inserts (as updates)", 0.05, 0, 0},
	{"E", "short ranges: 95% scans, 5% inserts (as updates)", 0.05, 0.95, 50},
	{"F", "read-modify-write: 50% reads, 50% RMW (as updates)", 0.5, 0, 0},
}

// YCSBConfig builds a generator Config for the named mix over n keys.
func YCSBConfig(mix string, n uint64) (Config, bool) {
	for _, m := range YCSBMixes {
		if m.Name == mix {
			cfg := Config{
				Population: n,
				Theta:      0.99,
				WriteRatio: m.WriteRatio,
				ScanRatio:  m.ScanRatio,
				ScanLen:    m.ScanLen,
				Seed:       1,
			}
			return cfg, true
		}
	}
	return Config{}, false
}
