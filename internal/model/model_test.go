package model

import "testing"

// paperDevice is Table 1's device: 64 GB SSD, 64 MB DRAM, 8 KiB pages,
// 32-page groups.
func paperDevice() DeviceSpec {
	return DeviceSpec{
		CapacityBytes: 64 << 30,
		DRAMBytes:     64 << 20,
		PageSize:      8192,
		GroupPages:    32,
	}
}

// Table 1's rows: v/k = 4.0 (160/40), 2.0 (120/60), 1.0 (80/80). The paper
// reports PinK sums of 372/531/703 MB versus AnyKey pinned at the 64 MB
// DRAM. Our formulas differ in constants (we count a 10-byte location
// per record where PinK's exact layout differs), so we assert the *shape*:
// PinK far exceeds DRAM and grows as v/k falls; AnyKey always fits.
func TestTable1Shape(t *testing.T) {
	d := paperDevice()
	rows := []WorkloadSpec{
		{KeySize: 40, ValueSize: 160},
		{KeySize: 60, ValueSize: 120},
		{KeySize: 80, ValueSize: 80},
	}
	var prevPinK int64
	for i, w := range rows {
		p := PinK(d, w)
		a := AnyKey(d, w)
		if p.Sum() <= d.DRAMBytes {
			t.Errorf("row %d: PinK metadata %d fits DRAM %d; paper shows gross overflow", i, p.Sum(), d.DRAMBytes)
		}
		if p.Sum() < 4*d.DRAMBytes {
			t.Errorf("row %d: PinK metadata %dMB not ≫ 64MB DRAM", i, p.Sum()>>20)
		}
		if p.Sum() <= prevPinK {
			t.Errorf("row %d: PinK metadata did not grow as v/k fell", i)
		}
		prevPinK = p.Sum()
		if a.Sum() > d.DRAMBytes {
			t.Errorf("row %d: AnyKey metadata %d exceeds DRAM %d", i, a.Sum(), d.DRAMBytes)
		}
		if a.LevelLists <= 0 || a.HashLists <= 0 {
			t.Errorf("row %d: AnyKey breakdown degenerate: %+v", i, a)
		}
	}
}

// Table 1's headline: at v/k = 1.0 PinK's metadata dwarfs the DRAM (the
// paper's 703 MB vs 64 MB becomes an even larger factor at our exact
// full-device pair count; see EXPERIMENTS.md on the discrepancy in the
// summary text's absolute numbers), while AnyKey is pinned at the budget.
func TestTable1Magnitudes(t *testing.T) {
	d := paperDevice()
	p := PinK(d, WorkloadSpec{KeySize: 80, ValueSize: 80})
	if p.Sum() < 10*d.DRAMBytes {
		t.Fatalf("PinK @ 80/80 = %d MB; expected ≥ 10× the 64 MB DRAM", p.Sum()>>20)
	}
	a := AnyKey(d, WorkloadSpec{KeySize: 80, ValueSize: 80})
	if a.Sum() > d.DRAMBytes {
		t.Fatalf("AnyKey @ 80/80 = %d exceeds DRAM", a.Sum())
	}
	if a.Sum() != d.DRAMBytes && a.HashLists != a.HashListsWanted {
		// Either hash lists are clipped exactly to DRAM, or demand was lower.
		t.Fatalf("AnyKey sizes inconsistent: %+v", a)
	}
}

// §6.8: at 4 TB with Crypto1 (76/50), PinK's metadata swells to the tens of
// GB (paper: 25.2 GB) while AnyKey stays in the single-GB class (3.65 GB)
// and fits a 4 GB DRAM.
func TestScalability4TB(t *testing.T) {
	d := DeviceSpec{CapacityBytes: 4 << 40, DRAMBytes: 4 << 30, PageSize: 8192, GroupPages: 32}
	w := WorkloadSpec{KeySize: 76, ValueSize: 50}
	p := PinK(d, w)
	a := AnyKey(d, w)
	if p.Sum()>>30 < 10 {
		t.Fatalf("PinK @ 4TB Crypto1 = %d GB; paper class is ~25 GB", p.Sum()>>30)
	}
	if a.Sum() > d.DRAMBytes {
		t.Fatalf("AnyKey @ 4TB = %d bytes exceeds 4 GB DRAM", a.Sum())
	}
	// The paper's §6.8 quotes ≈3.65 GB for AnyKey at 4 TB; our level lists
	// land in the same single-digit-GB class.
	if gb := a.LevelLists >> 30; gb < 1 || gb > 8 {
		t.Fatalf("AnyKey level lists %d GB out of the paper's single-GB class", gb)
	}
}

func TestPairsArithmetic(t *testing.T) {
	d := DeviceSpec{CapacityBytes: 1000, DRAMBytes: 10, PageSize: 100, GroupPages: 2}
	if got := d.Pairs(WorkloadSpec{KeySize: 4, ValueSize: 6}); got != 100 {
		t.Fatalf("Pairs = %d", got)
	}
}
