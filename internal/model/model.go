// Package model computes the analytic metadata-size estimates the paper
// reports in Table 1 (64 GB SSD, 64 MB DRAM, varying low value-to-key
// ratios) and §6.8 (design scalability at 4 TB). The formulas mirror the
// structures the simulator actually builds — per-record meta segments and
// per-segment level lists for PinK; per-group level-list entries and
// best-effort hash lists for AnyKey — so the analytic and simulated numbers
// are two views of the same cost model.
package model

// DeviceSpec describes the device the estimate is for.
type DeviceSpec struct {
	CapacityBytes int64
	DRAMBytes     int64
	PageSize      int
	GroupPages    int
}

// WorkloadSpec is the key/value size profile.
type WorkloadSpec struct {
	KeySize   int
	ValueSize int
}

// Pairs returns how many KV pairs fill the device.
func (d DeviceSpec) Pairs(w WorkloadSpec) int64 {
	return d.CapacityBytes / int64(w.KeySize+w.ValueSize)
}

// PinKSizes is the Table 1 breakdown for PinK.
type PinKSizes struct {
	LevelLists   int64
	MetaSegments int64
}

// Sum returns the total PinK metadata footprint.
func (s PinKSizes) Sum() int64 { return s.LevelLists + s.MetaSegments }

// PinK estimates PinK's metadata sizes when the device is full of pairs.
//
// Each pair needs a meta segment record: key + location (8 B) + offset-table
// slot (2 B). Meta segments are page-sized; each needs a level-list entry of
// key + locator (16 B).
func PinK(d DeviceSpec, w WorkloadSpec) PinKSizes {
	pairs := d.Pairs(w)
	recordBytes := int64(w.KeySize + 10)
	metaBytes := pairs * recordBytes
	segments := (metaBytes + int64(d.PageSize) - 1) / int64(d.PageSize)
	// Level lists: one entry per meta segment.
	levelLists := segments * int64(w.KeySize+16)
	// Meta segments occupy whole pages.
	return PinKSizes{LevelLists: levelLists, MetaSegments: segments * int64(d.PageSize)}
}

// AnyKeySizes is the Table 1 breakdown for AnyKey.
type AnyKeySizes struct {
	LevelLists int64
	HashLists  int64 // clipped to the DRAM remainder, as the design does
	// HashListsWanted is the unclipped demand (4 B per pair).
	HashListsWanted int64
}

// Sum returns the DRAM-resident AnyKey metadata footprint.
func (s AnyKeySizes) Sum() int64 { return s.LevelLists + s.HashLists }

// AnyKey estimates AnyKey's metadata sizes when the device is full of pairs.
//
// One level-list entry per data segment group: smallest key + PPA (8 B) +
// 2 B hash prefix per page + 16 B bookkeeping. Hash lists want 4 B per pair
// and take whatever DRAM remains (§4.2) — by construction the total never
// exceeds the DRAM budget.
func AnyKey(d DeviceSpec, w WorkloadSpec) AnyKeySizes {
	pairs := d.Pairs(w)
	groupBytes := int64(d.GroupPages * d.PageSize)
	groups := (d.CapacityBytes + groupBytes - 1) / groupBytes
	entry := int64(w.KeySize) + 8 + int64(2*d.GroupPages) + 16
	levelLists := groups * entry
	wanted := pairs * 4
	remaining := d.DRAMBytes - levelLists
	if remaining < 0 {
		remaining = 0
	}
	clipped := wanted
	if clipped > remaining {
		clipped = remaining
	}
	return AnyKeySizes{LevelLists: levelLists, HashLists: clipped, HashListsWanted: wanted}
}
