package stats

// FaultCounters tallies injected NAND faults by flash-op cause. The arrays
// are indexed by nand.Cause (User, Flush, Compaction, GC, Meta, Log); they
// are sized generously so this package needs no nand dependency.
//
// For a fixed fault-plan seed and workload the counters are bit-for-bit
// reproducible across runs — the determinism tests compare them directly.
type FaultCounters struct {
	// ReadErrors counts transient read-error events; ReadRetries the extra
	// cell reads charged recovering from them (MaxReadRetries per event).
	ReadErrors  [8]int64
	ReadRetries [8]int64

	// ProgramFails and EraseFails count operations that failed permanently,
	// each retiring its block as grown-bad.
	ProgramFails [8]int64
	EraseFails   [8]int64

	// PowerCuts counts power-cut events fired (0 or 1: a plan's cut is
	// one-shot so recovery traffic cannot re-trigger it).
	PowerCuts int64
}

// Total returns the total number of fault events injected.
func (c FaultCounters) Total() int64 {
	t := c.PowerCuts
	for i := range c.ReadErrors {
		t += c.ReadErrors[i] + c.ProgramFails[i] + c.EraseFails[i]
	}
	return t
}

// Sub returns c - o, counter-wise (for per-phase deltas).
func (c FaultCounters) Sub(o FaultCounters) FaultCounters {
	var d FaultCounters
	for i := range c.ReadErrors {
		d.ReadErrors[i] = c.ReadErrors[i] - o.ReadErrors[i]
		d.ReadRetries[i] = c.ReadRetries[i] - o.ReadRetries[i]
		d.ProgramFails[i] = c.ProgramFails[i] - o.ProgramFails[i]
		d.EraseFails[i] = c.EraseFails[i] - o.EraseFails[i]
	}
	d.PowerCuts = c.PowerCuts - o.PowerCuts
	return d
}

// RecoveryInfo describes what the most recent Reopen had to rebuild or
// repair. A factory-fresh device reports the zero value.
type RecoveryInfo struct {
	// Recovered is true when the device was mounted via Reopen rather than
	// formatted fresh.
	Recovered bool

	// WearReset is true when Reopen discarded the per-block erase counters
	// (they live in controller DRAM, not flash, so every power cycle zeroes
	// them). GC victim scoring restarts from uniform wear afterwards.
	WearReset bool

	// TornPagesSkipped counts pages that failed their CRC at the *end* of a
	// block's written run — the signature of a program torn by a power cut —
	// and were discarded during recovery.
	TornPagesSkipped int64

	// LostLogValues counts value-log pointers whose fragment chain could not
	// be resolved after the crash (the value was acknowledged but never made
	// durable). The affected keys revert to their last durable version.
	LostLogValues int64

	// StaleEpochsDiscarded counts level rebuild epochs that were found
	// incomplete (torn multi-group writes) or superseded by a newer adjacent
	// epoch, and therefore ignored.
	StaleEpochsDiscarded int64
}
