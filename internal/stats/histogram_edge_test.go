package stats

import (
	"testing"

	"anykey/internal/sim"
)

// TestHistogramEmpty pins the zero-value contract: every query on an empty
// histogram returns zero rather than panicking or reporting garbage.
func TestHistogramEmptyQueries(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("Count = %d, want 0", h.Count())
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("Mean/Min/Max = %v/%v/%v, want all 0", h.Mean(), h.Min(), h.Max())
	}
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Fatalf("Percentile(%v) = %v, want 0", p, got)
		}
	}
	for i, q := range h.Quantiles(50, 99, 100) {
		if q != 0 {
			t.Fatalf("Quantiles()[%d] = %v, want 0", i, q)
		}
	}
	if h.CDF(10) != nil {
		t.Fatalf("CDF of empty histogram should be nil")
	}
	if h.Summary() != "n=0" {
		t.Fatalf("Summary = %q, want n=0", h.Summary())
	}
}

// TestHistogramSingleSample: with one observation every percentile is that
// observation, exactly (the min/max clamps must defeat bucket rounding).
func TestHistogramSingleSample(t *testing.T) {
	const v = sim.Duration(123_457) // not a bucket boundary
	var h Histogram
	h.Record(v)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Min() != v || h.Max() != v || h.Mean() != v {
		t.Fatalf("Min/Max/Mean = %v/%v/%v, want %v", h.Min(), h.Max(), h.Mean(), v)
	}
	for _, p := range []float64{0.1, 1, 50, 99, 99.99, 100} {
		if got := h.Percentile(p); got != v {
			t.Fatalf("Percentile(%v) = %v, want %v", p, got, v)
		}
	}
}

// TestHistogramMergeDisjoint merges two histograms whose ranges do not
// overlap and checks counts, extremes, and the percentile split point.
func TestHistogramMergeDisjoint(t *testing.T) {
	var lo, hi Histogram
	for i := 0; i < 100; i++ {
		lo.Record(sim.Duration(1_000 + i)) // 1.000–1.099 µs
		hi.Record(sim.Duration(1_000_000 + i*1000))
	}
	var m Histogram
	m.Merge(&lo)
	m.Merge(&hi)
	if m.Count() != 200 {
		t.Fatalf("Count = %d, want 200", m.Count())
	}
	if m.Min() != lo.Min() || m.Max() != hi.Max() {
		t.Fatalf("Min/Max = %v/%v, want %v/%v", m.Min(), m.Max(), lo.Min(), hi.Max())
	}
	// sum(lo)=104_950, sum(hi)=104_950_000; mean truncates the division.
	if want := sim.Duration((104_950 + 104_950_000) / 200); m.Mean() != want {
		t.Fatalf("Mean = %v, want %v", m.Mean(), want)
	}
	// The lower half is entirely lo, the upper half entirely hi.
	if got := m.Percentile(50); got > lo.Max() {
		t.Fatalf("p50 = %v, want ≤ %v (inside lo's range)", got, lo.Max())
	}
	if got := m.Percentile(75); got < 1_000_000 {
		t.Fatalf("p75 = %v, want ≥ 1ms (inside hi's range)", got)
	}
	// Merging an empty histogram is a no-op.
	before := m.Summary()
	m.Merge(&Histogram{})
	if m.Summary() != before {
		t.Fatalf("merge of empty histogram changed summary: %q -> %q", before, m.Summary())
	}
}

// TestQuantilesMatchesPercentile: the single-pass walk must agree with
// per-call Percentile bit-for-bit, including out-of-order and duplicate
// percentile arguments — the report tables rely on this equivalence.
func TestQuantilesMatchesPercentile(t *testing.T) {
	var h Histogram
	// A skewed sample with a long tail, plus exact-boundary values.
	for i := 0; i < 5000; i++ {
		h.Record(sim.Duration(100 + i%97))
	}
	for i := 0; i < 50; i++ {
		h.Record(sim.Duration(1_000_000 * (i + 1)))
	}
	ps := []float64{99.9, 10, 50, 50, 100, 0.01, 95, 99, 99.99, 75}
	qs := h.Quantiles(ps...)
	if len(qs) != len(ps) {
		t.Fatalf("Quantiles returned %d values for %d percentiles", len(qs), len(ps))
	}
	for i, p := range ps {
		if want := h.Percentile(p); qs[i] != want {
			t.Fatalf("Quantiles[%d] (p=%v) = %v, want Percentile = %v", i, p, qs[i], want)
		}
	}
	if got := h.Quantiles(); len(got) != 0 {
		t.Fatalf("Quantiles() with no args = %v, want empty", got)
	}
}
