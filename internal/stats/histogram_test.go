package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anykey/internal/sim"
)

func TestBucketLowInvertsBucketOf(t *testing.T) {
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 56500, 3e6, 1 << 40} {
		b := bucketOf(v)
		lo := bucketLow(b)
		if lo > v {
			t.Fatalf("bucketLow(%d)=%d > value %d", b, lo, v)
		}
		if bucketOf(lo) != b {
			t.Fatalf("bucketOf(bucketLow(%d))=%d, want %d", b, bucketOf(lo), b)
		}
	}
}

// Property: the bucket's representative value underestimates by at most the
// sub-bucket width (relative error < 2^-subBucketBits for large values).
func TestBucketRelativeErrorProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := int64(raw % (1 << 50))
		lo := bucketLow(bucketOf(v))
		if lo > v {
			return false
		}
		if v >= 1<<subBucketBits {
			return float64(v-lo)/float64(v) < 1.0/float64(int64(1)<<subBucketBits)+1e-12
		}
		return lo == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	sample := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mixture: mostly ~100µs reads plus a heavy tail.
		v := int64(56500 + rng.Intn(50000))
		if rng.Intn(20) == 0 {
			v += int64(rng.Intn(5_000_000))
		}
		sample = append(sample, v)
		h.Record(sim.Duration(v))
	}
	exact := Percentiles(sample, 50, 95, 99)
	for i, p := range []float64{50, 95, 99} {
		got := int64(h.Percentile(p))
		want := exact[i]
		rel := float64(got-want) / float64(want)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.03 {
			t.Errorf("p%.0f = %d, exact %d (rel err %.4f)", p, got, want, rel)
		}
	}
	if h.Percentile(100) != h.Max() {
		t.Errorf("p100 = %v, max %v", h.Percentile(100), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(95) != 0 || h.Mean() != 0 || h.CDF(10) != nil {
		t.Fatal("empty histogram not zero-valued")
	}
	if h.Summary() != "n=0" {
		t.Fatalf("Summary = %q", h.Summary())
	}
}

func TestHistogramMinMaxMean(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Duration{10, 20, 30} {
		h.Record(v)
	}
	if h.Min() != 10 || h.Max() != 30 || h.Mean() != 20 {
		t.Fatalf("min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(sim.Duration(1000 + i))
		b.Record(sim.Duration(9000 + i))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 1000 || a.Max() != 9099 {
		t.Fatalf("min=%v max=%v", a.Min(), a.Max())
	}
	if p := a.Percentile(25); p > 1200 {
		t.Fatalf("p25 = %v, expected from low half", p)
	}
	if p := a.Percentile(75); p < 8500 {
		t.Fatalf("p75 = %v, expected from high half", p)
	}
}

func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(sim.Duration(rng.Intn(1_000_000)))
	}
	cdf := h.CDF(50)
	if len(cdf) == 0 || len(cdf) > 50 {
		t.Fatalf("len(cdf) = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Frac < cdf[i-1].Frac || cdf[i].Value < cdf[i-1].Value {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, cdf[i-1], cdf[i])
		}
	}
	if last := cdf[len(cdf)-1]; last.Frac != 1 {
		t.Fatalf("CDF does not end at 1: %+v", last)
	}
}

func TestIntHist(t *testing.T) {
	h := NewIntHist(4)
	for _, v := range []int{0, 1, 1, 2, 9, -3} {
		h.Record(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Frac(1) != 2.0/6 {
		t.Fatalf("Frac(1) = %v", h.Frac(1))
	}
	if h.Frac(4) != 1.0/6 { // the 9 clamps into the 4+ bin
		t.Fatalf("Frac(4) = %v", h.Frac(4))
	}
	if h.Frac(0) != 2.0/6 { // 0 and clamped -3
		t.Fatalf("Frac(0) = %v", h.Frac(0))
	}
	if h.String() == "empty" {
		t.Fatal("String reported empty")
	}
}
