// Package stats provides the measurement machinery the benchmark harness
// uses to regenerate the paper's figures: a log-bucketed latency histogram
// with percentile queries and CDF export (Figs. 2, 10, 15–18), and a small
// dense histogram for per-request flash-access counts (Fig. 11b).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"strings"

	"anykey/internal/sim"
)

// subBucketBits controls histogram resolution: each power-of-two range is
// split into 2^subBucketBits linear sub-buckets, bounding relative error per
// recorded value to under 1/2^subBucketBits (≈1.6 % at 6 bits).
const subBucketBits = 6

const numBuckets = 64 * (1 << subBucketBits)

// Histogram records simulated durations with bounded relative error. The
// zero Histogram is ready to use.
type Histogram struct {
	counts [numBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBucketBits {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // position of top bit, ≥ subBucketBits
	sub := (v >> (uint(exp) - subBucketBits)) & ((1 << subBucketBits) - 1)
	return ((exp - subBucketBits + 1) << subBucketBits) + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i, used to report
// representative values back out.
func bucketLow(i int) int64 {
	if i < 1<<subBucketBits {
		return int64(i)
	}
	exp := i>>subBucketBits + subBucketBits - 1
	sub := int64(i & ((1 << subBucketBits) - 1))
	return 1<<uint(exp) | sub<<(uint(exp)-subBucketBits)
}

// Record adds one observation.
func (h *Histogram) Record(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the average of all observations, 0 when empty.
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / h.total)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() sim.Duration { return sim.Duration(h.min) }
func (h *Histogram) Max() sim.Duration { return sim.Duration(h.max) }

// Percentile returns the value at the p-th percentile (0 < p ≤ 100). The
// result is exact to within one sub-bucket; the true max is returned for the
// tail bucket so that Percentile(100) == Max().
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return sim.Duration(h.max)
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketLow(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(h.max)
}

// Quantiles returns the value at each given percentile, computed in one
// pass over the buckets. Each element is identical to Percentile(ps[i]);
// report code uses this so every percentile column of a row derives from
// the same histogram walk and can never disagree with per-call queries.
func (h *Histogram) Quantiles(ps ...float64) []sim.Duration {
	out := make([]sim.Duration, len(ps))
	if h.total == 0 {
		return out
	}
	type target struct {
		rank int64
		pos  int
	}
	ts := make([]target, 0, len(ps))
	for i, p := range ps {
		rank := int64(math.Ceil(p / 100 * float64(h.total)))
		if rank < 1 {
			rank = 1
		}
		if rank >= h.total {
			out[i] = sim.Duration(h.max)
			continue
		}
		ts = append(ts, target{rank, i})
	}
	slices.SortFunc(ts, func(a, b target) int {
		switch {
		case a.rank < b.rank:
			return -1
		case a.rank > b.rank:
			return 1
		}
		return 0
	})
	var seen int64
	next := 0
	for i := 0; i < len(h.counts) && next < len(ts); i++ {
		seen += h.counts[i]
		for next < len(ts) && seen >= ts[next].rank {
			v := bucketLow(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			out[ts[next].pos] = sim.Duration(v)
			next++
		}
	}
	for ; next < len(ts); next++ {
		out[ts[next].pos] = sim.Duration(h.max)
	}
	return out
}

// Merge adds every observation of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// CDFPoint is one point of a cumulative distribution: Frac of observations
// were ≤ Value.
type CDFPoint struct {
	Value sim.Duration
	Frac  float64
}

// CDF returns the distribution as at most points entries suitable for
// plotting, always ending at (max, 1).
func (h *Histogram) CDF(points int) []CDFPoint {
	if h.total == 0 || points < 2 {
		return nil
	}
	var raw []CDFPoint
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		v := bucketLow(i)
		if v > h.max {
			v = h.max
		}
		raw = append(raw, CDFPoint{sim.Duration(v), float64(seen) / float64(h.total)})
	}
	if len(raw) <= points {
		return raw
	}
	// Thin evenly, keeping the first and last point.
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points-1; i++ {
		out = append(out, raw[i*len(raw)/(points-1)])
	}
	return append(out, raw[len(raw)-1])
}

// Summary renders the canonical latency row used in reports.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// IntHist is a dense histogram over small non-negative integers, used for
// "flash accesses per read" (Fig. 11b). Values beyond the fixed range are
// clamped into the final overflow bin.
type IntHist struct {
	bins  []int64
	total int64
}

// NewIntHist returns a histogram over [0, maxValue]; larger observations
// land in the maxValue bin.
func NewIntHist(maxValue int) *IntHist {
	return &IntHist{bins: make([]int64, maxValue+1)}
}

// Record adds one observation.
func (h *IntHist) Record(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.bins) {
		v = len(h.bins) - 1
	}
	h.bins[v]++
	h.total++
}

// Count returns the number of observations.
func (h *IntHist) Count() int64 { return h.total }

// Merge adds every observation of o into h. Observations beyond h's range
// clamp into its overflow bin, exactly as if they had been Recorded here.
func (h *IntHist) Merge(o *IntHist) {
	if o == nil {
		return
	}
	for v, c := range o.bins {
		if c == 0 {
			continue
		}
		b := v
		if b >= len(h.bins) {
			b = len(h.bins) - 1
		}
		h.bins[b] += c
		h.total += c
	}
}

// Frac returns the fraction of observations equal to v (with the final bin
// meaning ≥ maxValue).
func (h *IntHist) Frac(v int) float64 {
	if h.total == 0 || v < 0 || v >= len(h.bins) {
		return 0
	}
	return float64(h.bins[v]) / float64(h.total)
}

// Mean returns the average observation.
func (h *IntHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s int64
	for v, c := range h.bins {
		s += int64(v) * c
	}
	return float64(s) / float64(h.total)
}

// String renders non-empty bins as "v:frac" pairs.
func (h *IntHist) String() string {
	var sb strings.Builder
	for v, c := range h.bins {
		if c == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		label := fmt.Sprint(v)
		if v == len(h.bins)-1 && len(h.bins) > 1 {
			label += "+"
		}
		fmt.Fprintf(&sb, "%s:%.3f", label, h.Frac(v))
	}
	if sb.Len() == 0 {
		return "empty"
	}
	return sb.String()
}

// Percentiles computes exact percentiles of a small sample slice; used by
// tests to validate the histogram's approximation.
func Percentiles(sample []int64, ps ...float64) []int64 {
	if len(sample) == 0 {
		return make([]int64, len(ps))
	}
	s := append([]int64(nil), sample...)
	slices.Sort(s)
	out := make([]int64, len(ps))
	for i, p := range ps {
		rank := int(math.Ceil(p / 100 * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		out[i] = s[rank-1]
	}
	return out
}
