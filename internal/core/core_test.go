package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/xxhash"
)

// smallConfig returns a tiny device for fast randomized testing: 512 KiB of
// flash, 1 KiB pages, 4-page groups, a 4 KiB memtable.
func smallConfig() Config {
	return Config{
		Geometry:      nand.Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 8, PagesPerBlock: 16, PageSize: 1024},
		DRAMBytes:     16 << 10,
		MemtableBytes: 4 << 10,
		GrowthFactor:  4,
		GroupPages:    4,
		LogFraction:   0.15,
		Seed:          7,
	}
}

func newSmall(t testing.TB, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func val(i, ver int) []byte {
	return []byte(fmt.Sprintf("value-%06d-%06d-%s", i, ver, "xxxxxxxxxxxxxxxx"))
}

// variants runs a subtest for AnyKey, AnyKey+ and AnyKey−.
func variants(t *testing.T, fn func(t *testing.T, cfg Config)) {
	t.Run("AnyKey", func(t *testing.T) { fn(t, smallConfig()) })
	t.Run("AnyKeyPlus", func(t *testing.T) {
		cfg := smallConfig()
		cfg.Plus = true
		fn(t, cfg)
	})
	t.Run("AnyKeyMinus", func(t *testing.T) {
		cfg := smallConfig()
		cfg.NoValueLog = true
		fn(t, cfg)
	})
}

func TestPutGetSimple(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		now, err := d.Put(0, key(1), val(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		v, now2, err := d.Get(now, key(1))
		if err != nil || !bytes.Equal(v, val(1, 0)) {
			t.Fatalf("Get = %q, %v", v, err)
		}
		if !now2.After(now) {
			t.Fatal("Get took no simulated time")
		}
		if _, _, err := d.Get(now2, key(2)); !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("missing key: %v", err)
		}
	})
}

func TestInputValidation(t *testing.T) {
	d := newSmall(t, smallConfig())
	if _, err := d.Put(0, nil, []byte("v")); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, _, err := d.Get(0, nil); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty get: %v", err)
	}
	if _, err := d.Put(0, key(1), make([]byte, 600)); !errors.Is(err, kv.ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
}

func TestRandomOpsAgainstOracle(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		rng := rand.New(rand.NewSource(42))
		oracle := map[string][]byte{}
		var now sim.Time
		const keySpace = 600
		for op := 0; op < 12000; op++ {
			i := rng.Intn(keySpace)
			k := key(i)
			switch r := rng.Float64(); {
			case r < 0.55:
				v := val(i, op)
				n, err := d.Put(now, k, v)
				if err != nil {
					t.Fatalf("op %d: Put: %v", op, err)
				}
				now = n
				oracle[string(k)] = v
			case r < 0.65:
				n, err := d.Delete(now, k)
				if err != nil {
					t.Fatalf("op %d: Delete: %v", op, err)
				}
				now = n
				delete(oracle, string(k))
			default:
				v, n, err := d.Get(now, k)
				now = n
				want, exists := oracle[string(k)]
				if exists {
					if err != nil || !bytes.Equal(v, want) {
						t.Fatalf("op %d: Get(%s) = %q, %v; want %q", op, k, v, err, want)
					}
				} else if !errors.Is(err, kv.ErrNotFound) {
					t.Fatalf("op %d: Get(%s) = %q, %v; want ErrNotFound", op, k, v, err)
				}
			}
		}
		for k, want := range oracle {
			v, n, err := d.Get(now, []byte(k))
			now = n
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("final Get(%s) = %q, %v; want %q", k, v, err, want)
			}
		}
		if d.st.TreeCompactions == 0 {
			t.Fatal("no compactions occurred")
		}
	})
}

func TestLogCompactionTriggers(t *testing.T) {
	cfg := smallConfig()
	cfg.LogFraction = 0.05 // tiny log: 2-3 blocks, fills fast
	d := newSmall(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var now sim.Time
	for op := 0; op < 6000; op++ {
		i := rng.Intn(400)
		n, err := d.Put(now, key(i), val(i, op))
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		now = n
	}
	if d.st.LogCompactions == 0 {
		t.Fatal("tiny value log never triggered a log compaction")
	}
}

func TestPlusReducesChains(t *testing.T) {
	run := func(plus bool) (chains, pageWrites int64) {
		cfg := smallConfig()
		cfg.Plus = plus
		cfg.LogFraction = 0.08
		d, err := New(cfg)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(11))
		var now sim.Time
		for op := 0; op < 15000; op++ {
			i := rng.Intn(500)
			n, err := d.Put(now, key(i), val(i, op))
			if err != nil {
				panic(err)
			}
			now = n
		}
		c := d.arr.Counters()
		return d.st.ChainedCompactions, c.TotalWrites()
	}
	baseChains, _ := run(false)
	plusChains, _ := run(true)
	if plusChains > baseChains {
		t.Fatalf("AnyKey+ chains (%d) exceed base AnyKey (%d)", plusChains, baseChains)
	}
}

func TestGCStaysNearZero(t *testing.T) {
	// The design claim of §4.4: victim blocks are almost always fully
	// invalid, so GC relocates (almost) nothing.
	d := newSmall(t, smallConfig())
	rng := rand.New(rand.NewSource(1))
	var now sim.Time
	for op := 0; op < 12000; op++ {
		i := rng.Intn(300)
		n, err := d.Put(now, key(i), val(i, op))
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		now = n
	}
	c := d.arr.Counters()
	if c.Erases == 0 {
		t.Fatal("churn produced no erases")
	}
	gcShare := float64(c.Writes[nand.CauseGC]) / float64(c.TotalWrites())
	if gcShare > 0.25 {
		t.Fatalf("GC writes are %.1f%% of all writes; AnyKey GC should be small", gcShare*100)
	}
}

func TestDeviceFillsToFull(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		var now sim.Time
		var err error
		inserted := 0
		for i := 0; i < 100000; i++ {
			now, err = d.Put(now, key(i), val(i, 0))
			if err != nil {
				if !errors.Is(err, kv.ErrDeviceFull) {
					t.Fatalf("unexpected error at %d: %v", i, err)
				}
				break
			}
			inserted++
		}
		if inserted == 0 || inserted == 100000 {
			t.Fatalf("inserted %d pairs; expected the 512 KiB device to fill", inserted)
		}
		if _, _, err := d.Get(now, key(0)); err != nil {
			t.Fatalf("Get on full device: %v", err)
		}
	})
}

func TestScanMatchesOracle(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		rng := rand.New(rand.NewSource(5))
		oracle := map[string][]byte{}
		var now sim.Time
		for op := 0; op < 4000; op++ {
			i := rng.Intn(400)
			k := key(i)
			if rng.Float64() < 0.1 {
				n, _ := d.Delete(now, k)
				now = n
				delete(oracle, string(k))
				continue
			}
			v := val(i, op)
			n, err := d.Put(now, k, v)
			if err != nil {
				t.Fatal(err)
			}
			now = n
			oracle[string(k)] = v
		}
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		for _, startIdx := range []int{0, 13, 200, 399} {
			start := key(startIdx)
			wantIdx := sort.SearchStrings(keys, string(start))
			for _, n := range []int{1, 7, 50} {
				pairs, t2, err := d.Scan(now, start, n)
				now = t2
				if err != nil {
					t.Fatal(err)
				}
				wantN := n
				if rem := len(keys) - wantIdx; rem < wantN {
					wantN = rem
				}
				if len(pairs) != wantN {
					t.Fatalf("Scan(%s, %d) returned %d pairs, want %d", start, n, len(pairs), wantN)
				}
				for i, p := range pairs {
					wk := keys[wantIdx+i]
					if string(p.Key) != wk || !bytes.Equal(p.Value, oracle[wk]) {
						t.Fatalf("Scan pair %d = %q, want %q", i, p.Key, wk)
					}
				}
			}
		}
	})
}

func TestMetadataAlwaysDRAMResident(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for i := 0; i < 3000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	ms := d.Metadata()
	if device.TotalFlash(ms) != 0 {
		t.Fatalf("AnyKey put metadata in flash: %+v", ms)
	}
	if device.TotalDRAM(ms) == 0 {
		t.Fatal("no metadata at all")
	}
	if d.mem.Used() > d.mem.Capacity() {
		t.Fatalf("DRAM overcommitted: %v", d.mem)
	}
}

func TestHashListsDropUnderPressure(t *testing.T) {
	cfg := smallConfig()
	cfg.DRAMBytes = 6 << 10 // barely above the 4 KiB memtable pin
	d := newSmall(t, cfg)
	var now sim.Time
	for i := 0; i < 3000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	// With so little DRAM some groups must run without hash lists, yet all
	// reads stay correct.
	withList, without := 0, 0
	for _, lv := range d.levels {
		for _, g := range lv.groups {
			if g.hashes != nil {
				withList++
			} else {
				without++
			}
		}
	}
	if without == 0 {
		t.Fatalf("expected dropped hash lists under 6 KiB DRAM (with=%d)", withList)
	}
	for i := 0; i < 500; i++ {
		if _, n, err := d.Get(now, key(i)); err != nil {
			t.Fatalf("Get(%d) after hash-list drops: %v", i, err)
		} else {
			now = n
		}
	}
}

func TestHashListsSkipFlashReads(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for i := 0; i < 2000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	// Reads of present keys: mostly ≤ 2 flash accesses (entity + maybe log).
	for i := 0; i < 300; i++ {
		_, n, err := d.Get(now, key(i))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	h := d.st.ReadAccesses
	heavy := 0.0
	for v := 4; v <= 8; v++ {
		heavy += h.Frac(v)
	}
	if heavy > 0.05 {
		t.Fatalf("%.1f%% of reads took ≥4 flash accesses: %v", heavy*100, h)
	}
}

func TestLiveAccounting(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for i := 0; i < 100; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	if d.st.LiveKeys != 100 {
		t.Fatalf("LiveKeys = %d", d.st.LiveKeys)
	}
	// Overwrites must not change the count.
	for i := 0; i < 50; i++ {
		n, _ := d.Put(now, key(i), val(i, 1))
		now = n
	}
	if d.st.LiveKeys != 100 {
		t.Fatalf("LiveKeys after overwrites = %d", d.st.LiveKeys)
	}
	for i := 0; i < 30; i++ {
		n, _ := d.Delete(now, key(i))
		now = n
	}
	if d.st.LiveKeys != 70 {
		t.Fatalf("LiveKeys after deletes = %d", d.st.LiveKeys)
	}
	if d.st.LiveBytes <= 0 {
		t.Fatalf("LiveBytes = %d", d.st.LiveBytes)
	}
}

func TestVlogAccountingInvariant(t *testing.T) {
	d := newSmall(t, smallConfig())
	rng := rand.New(rand.NewSource(8))
	var now sim.Time
	for op := 0; op < 8000; op++ {
		i := rng.Intn(300)
		n, err := d.Put(now, key(i), val(i, op))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	// Sum of per-level logValid must equal the vlog's total page-valid
	// bytes minus what pending (memtable) entities do not yet reference...
	// All log bytes are referenced by installed groups or died: totals match.
	var levelLog int64
	for _, lv := range d.levels {
		levelLog += lv.logValid()
	}
	var vlogBytes int64
	for _, b := range d.vlog.pageValid {
		vlogBytes += b
	}
	if levelLog != vlogBytes {
		t.Fatalf("level logValid sum %d != vlog valid bytes %d", levelLog, vlogBytes)
	}
}

// Regression: a flush that dies with ErrDeviceFull must not lose pairs that
// were accepted earlier — every successful Put stays readable.
func TestNoLossAtDeviceFull(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		var now sim.Time
		var err error
		accepted := 0
		for i := 0; i < 100000; i++ {
			now, err = d.Put(now, key(i), val(i, 0))
			if err != nil {
				break
			}
			accepted++
		}
		if !errors.Is(err, kv.ErrDeviceFull) {
			t.Fatalf("expected device full, got %v", err)
		}
		for i := 0; i < accepted; i++ {
			v, n, err := d.Get(now, key(i))
			now = n
			if err != nil || !bytes.Equal(v, val(i, 0)) {
				t.Fatalf("key %d lost after device-full (accepted %d): %v", i, accepted, err)
			}
		}
	})
}

// Force real xxHash32 collisions through the device: generate keys until two
// share a full 32-bit hash, store distinct values under both, and verify
// both resolve correctly through the hash-sorted group search (collision
// bits path, Fig. 7).
func TestHashCollisionKeysResolve(t *testing.T) {
	seen := map[uint32]string{}
	var pairs [][2]string
	for i := 0; len(pairs) < 3 && i < 300000; i++ {
		k := fmt.Sprintf("%d-col", i*7919)
		h := xxhash.Sum32([]byte(k))
		if prev, ok := seen[h]; ok {
			pairs = append(pairs, [2]string{prev, k})
			continue
		}
		seen[h] = k
	}
	if len(pairs) == 0 {
		t.Fatal("no 32-bit collisions found in the search budget")
	}
	d := newSmall(t, smallConfig())
	var now sim.Time
	// Surround with enough filler to push everything through compaction.
	for i := 0; i < 1000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	for pi, p := range pairs {
		for side := 0; side < 2; side++ {
			n, err := d.Put(now, []byte(p[side]), []byte(fmt.Sprintf("cval-%d-%d", pi, side)))
			if err != nil {
				t.Fatal(err)
			}
			now = n
		}
	}
	for i := 1000; i < 2000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	for pi, p := range pairs {
		for side := 0; side < 2; side++ {
			v, n, err := d.Get(now, []byte(p[side]))
			now = n
			want := fmt.Sprintf("cval-%d-%d", pi, side)
			if err != nil || string(v) != want {
				t.Fatalf("colliding key %q: got %q, %v; want %q", p[side], v, err, want)
			}
		}
	}
}

// checkInvariants validates the device's cross-structure bookkeeping:
// levels sorted and disjoint, level byte sums, DRAM ledger consistency,
// block-index agreement, and log liveness accounting.
func checkInvariants(t *testing.T, d *Device) {
	t.Helper()
	var levelEntryBytes, hashListBytes int64
	groupCount := 0
	for li, lv := range d.levels {
		var phys int64
		for gi, g := range lv.groups {
			groupCount++
			phys += g.physBytes
			levelEntryBytes += g.entryBytes()
			hashListBytes += g.hashListBytes()
			if gi > 0 {
				prev := lv.groups[gi-1]
				if kv.Compare(prev.smallest, g.smallest) >= 0 {
					t.Fatalf("L%d groups not sorted at %d", li+1, gi)
				}
			}
			// Every page of the group must be valid in the pool and the
			// block index must know the group.
			found := false
			for _, og := range d.groupsAt[d.arr.BlockOf(g.firstPPA)] {
				if og == g {
					found = true
				}
			}
			if !found {
				t.Fatalf("L%d group %d missing from block index", li+1, gi)
			}
			for p := 0; p < g.numPages; p++ {
				if !d.pool.Valid(g.firstPPA + nand.PPA(p)) {
					t.Fatalf("L%d group %d page %d not valid in pool", li+1, gi, p)
				}
			}
		}
		if phys != lv.bytes {
			t.Fatalf("L%d bytes %d != sum of groups %d", li+1, lv.bytes, phys)
		}
	}
	// Block index must not reference groups outside levels.
	indexed := 0
	for _, gs := range d.groupsAt {
		indexed += len(gs)
	}
	if indexed != groupCount {
		t.Fatalf("block index holds %d groups, levels hold %d", indexed, groupCount)
	}
	// DRAM ledger: pinned memtable + exact level-list and hash-list charges.
	if got := d.mem.ClientUsed(dramLevelLabel); got != levelEntryBytes {
		t.Fatalf("level-list DRAM charge %d != computed %d", got, levelEntryBytes)
	}
	if got := d.mem.ClientUsed(dramHashLabel); got != hashListBytes {
		t.Fatalf("hash-list DRAM charge %d != computed %d", got, hashListBytes)
	}
	// Log accounting: per-level valid log bytes must equal the log's total.
	if d.vlog != nil {
		var fromLevels, fromPages int64
		for _, lv := range d.levels {
			fromLevels += lv.logValid()
		}
		for _, b := range d.vlog.pageValid {
			fromPages += b
		}
		if fromLevels != fromPages {
			t.Fatalf("log liveness: levels say %d, pages say %d", fromLevels, fromPages)
		}
	}
}

// Churn with periodic full invariant validation.
func TestInvariantsUnderChurn(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		d := newSmall(t, cfg)
		rng := rand.New(rand.NewSource(13))
		var now sim.Time
		for op := 0; op < 10000; op++ {
			i := rng.Intn(400)
			var err error
			if rng.Float64() < 0.08 {
				now, err = d.Delete(now, key(i))
			} else {
				now, err = d.Put(now, key(i), val(i, op))
			}
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if op%1000 == 999 {
				checkInvariants(t, d)
			}
		}
		checkInvariants(t, d)
	})
}
