// Package core implements AnyKey, the paper's contribution: a KV-SSD whose
// metadata stays DRAM-resident for every workload type (§4).
//
// AnyKey groups KV pairs into data segment groups — runs of neighbouring
// flash pages within one block — and keeps metadata per *group* rather than
// per pair: each DRAM level-list entry holds only the group's smallest key,
// the PPA of its first page, and the truncated 16-bit hashes of the first
// entity on each page. Entities inside a group are sorted by the 32-bit
// xxHash of their keys, so a lookup binary-searches the per-page hash
// prefixes, reads exactly one page, and resolves rare prefix/hash ties with
// the per-page collision bits (Fig. 7). Per-group hash lists — sorted arrays
// of every hash in the group — fill the remaining DRAM top level first and
// eliminate fruitless flash reads from overlapping level ranges.
//
// Values are detached into a value log at flush time, so tree compaction
// moves only small key/pointer entities; a log-triggered compaction folds
// log values back into groups when the log fills. The Plus variant
// (AnyKey+) bounds that folding at α × the destination level's threshold and
// picks its source level by invalid log bytes, eliminating the compaction
// chains of §4.6. The NoValueLog variant (AnyKey−) is the §6.7 ablation.
package core

import (
	"fmt"

	"anykey/internal/device"
	"anykey/internal/dram"
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
	"anykey/internal/xxhash"
)

// Config parameterises an AnyKey device.
type Config struct {
	Geometry nand.Geometry
	Timing   nand.Timing

	// DRAMBytes is the device-internal DRAM budget shared by level lists
	// (pinned), the write buffer (pinned) and hash lists (best effort).
	DRAMBytes int64

	// MemtableBytes is the L0 flush threshold.
	MemtableBytes int64

	// GrowthFactor is the LSM level size ratio.
	GrowthFactor int

	// GroupPages is the number of neighbouring flash pages combined into one
	// data segment group (paper default: 32 pages).
	GroupPages int

	// LogFraction is the share of the device's blocks reserved as the value
	// log area. The paper reserves half of the remaining SSD capacity
	// (§4.3), so the default is 0.5 — in steady state values live in the
	// log and tree compaction moves only key/pointer entities. Fig. 19
	// sweeps small logs (5–15 %) to show the cost of undersizing.
	LogFraction float64

	// Plus enables the AnyKey+ modified log-triggered compaction (§4.6).
	Plus bool

	// Alpha is AnyKey+'s early-termination point as a fraction of the
	// destination level's threshold.
	Alpha float64

	// NoValueLog disables the value log entirely (the AnyKey− ablation of
	// §6.7): values are always inlined into data segment groups.
	NoValueLog bool

	// NoHashLists disables the per-group hash lists (§4.2 ablation): level
	// walks then read candidate groups even when the key is absent, like
	// other LSM designs without filters.
	NoHashLists bool

	// Memory selects the flash array's payload store: raw full images or the
	// flyweight representation that regenerates workload bytes on demand
	// (nand.MemoryAuto resolves by capacity). Reopen keeps the array's
	// existing store; the mode is fixed at device creation.
	Memory nand.MemoryMode

	// RequestOverhead, FreeBlockReserve and Seed are as in pink.Config.
	RequestOverhead  sim.Duration
	FreeBlockReserve int
	Seed             int64

	// BackgroundLag bounds how far background work (flush + compaction
	// completion) may run behind the host clock before writes stall — the
	// depth of the device's internal write queue in time units. Writes wait
	// only for the excess beyond this lag.
	BackgroundLag sim.Duration

	// Tracer, when non-nil, receives firmware events (CPU occupancy,
	// flush/compaction/GC spans, write stalls). Reopen threads it through a
	// power cycle; the flash array carries its own tracer reference.
	Tracer *trace.Tracer
}

// Defaults fills zero fields with the repository defaults.
func (c *Config) Defaults() {
	if c.Geometry == (nand.Geometry{}) {
		c.Geometry = nand.Geometry{Channels: 8, ChipsPerChannel: 8, BlocksPerChip: 4, PagesPerBlock: 64, PageSize: 8192}
	}
	if c.Timing == (nand.Timing{}) {
		c.Timing = nand.TLCTiming()
	}
	if c.DRAMBytes == 0 {
		c.DRAMBytes = c.Geometry.Capacity() / 1000
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = int64(32 * c.Geometry.PageSize)
	}
	if c.GrowthFactor == 0 {
		c.GrowthFactor = 4
	}
	if c.GroupPages == 0 {
		c.GroupPages = 32
	}
	if c.GroupPages > c.Geometry.PagesPerBlock {
		c.GroupPages = c.Geometry.PagesPerBlock
	}
	if c.GroupPages < 4 {
		c.GroupPages = 4
	}
	if c.LogFraction == 0 {
		c.LogFraction = 0.50
	}
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.RequestOverhead == 0 {
		c.RequestOverhead = 3 * sim.Microsecond
	}
	if c.FreeBlockReserve == 0 {
		c.FreeBlockReserve = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BackgroundLag == 0 {
		c.BackgroundLag = 50 * sim.Millisecond
	}
}

// hashCost and mergeCPUCost are the paper's measured controller-CPU
// overheads (§4.5): 79 ns to hash a key, ≈7.2 ns per entity merged.
const (
	hashCost     = 79 * sim.Nanosecond
	mergeCPUCost = 7 * sim.Nanosecond
)

// Device is a simulated AnyKey / AnyKey+ / AnyKey− KV-SSD.
type Device struct {
	cfg  Config
	arr  *nand.Array
	pool *ftl.Pool
	mem  *dram.Budget
	cpu  sim.Resource

	mt     *memtable.Table
	levels []*level
	// groupStreams allocates group page runs per level, so a level's
	// compaction invalidates whole blocks at once — the property behind
	// AnyKey's (near) zero-relocation GC (§4.4). Stream 0 is used by GC
	// relocation, which mixes levels by nature.
	groupStreams map[int]*ftl.RunStream
	vlog         *vlog

	// groupsAt indexes the groups stored in each block, for group-granular
	// GC relocation (§4.4).
	groupsAt map[nand.BlockID][]*group

	// epoch stamps each writeLevel invocation; persisted in group headers
	// so recovery can tell a level's current groups from superseded ones.
	epoch uint32

	// Crash-consistency state for the open compaction unit (see
	// compactInto): while invalDefer is set, value-log invalidations queue
	// in pendingInval instead of applying, and the input groups a merge has
	// read sit on consumable with their flash pages still valid. Both drain
	// once the merge output is durable — or evaporate with DRAM on a power
	// cut, leaving the previous epochs intact for recovery.
	invalDefer   bool
	pendingInval []pendingInval
	consumable   []*group

	// recLogPages, live only while recover() runs, is the set of logical log
	// page addresses the scan actually found durable on flash; the liveness
	// walk uses it to tell a lost pointer from a resolvable one.
	recLogPages map[nand.PPA]bool

	// flushUnit is the physical byte size of one flushed memtable's
	// entities (running max): the base unit of the level thresholds. With
	// values detached into the log, the tree is sized by its key/pointer
	// entities — a deep but tiny tree, which is exactly why compaction
	// stays cheap (§4.3).
	flushUnit int64

	// mergeBuf is the reusable output scratch for mergeEntities: only one
	// merged run is live at a time, so compaction allocates no entity
	// headers in steady state.
	mergeBuf []kv.Entity
	// levelBufs are the rotating input scratches for readLevelEntities (see
	// its comment for why two suffice).
	levelBufs   [2][]kv.Entity
	levelBufIdx int
	// foldPages is foldLogValues' reusable page-accounting set.
	foldPages map[nand.PPA]bool
	// gsc backs buildGroup's and readLevelEntities' transient layout arrays.
	gsc groupScratch
	// scanPages is Scan's reusable single-read-per-page set.
	scanPages map[nand.PPA]bool

	bgDoneAt sim.Time
	st       *device.Stats
	opReads  int
	tr       *trace.Tracer
}

// pendingInval is one queued value-log invalidation.
type pendingInval struct {
	ptr    uint64
	valLen int
}

// drainInval applies every queued value-log invalidation. Called when a
// compaction unit's output is durable, and by ensureFree under terminal
// space pressure (which trades the crash window for forward progress).
func (d *Device) drainInval() {
	q := d.pendingInval
	d.pendingInval = nil
	if d.vlog == nil {
		return
	}
	was := d.invalDefer
	d.invalDefer = false
	for _, pi := range q {
		d.vlog.invalidate(pi.ptr, pi.valLen)
	}
	d.invalDefer = was
}

var _ device.KVSSD = (*Device)(nil)

// New builds an empty AnyKey device.
func New(cfg Config) (*Device, error) {
	cfg.Defaults()
	arr, err := nand.New(cfg.Geometry, cfg.Timing)
	if err != nil {
		return nil, err
	}
	arr.ConfigureMemory(cfg.Memory)
	pool := ftl.NewPool(arr)
	d := &Device{
		cfg:          cfg,
		arr:          arr,
		pool:         pool,
		mem:          dram.New(cfg.DRAMBytes),
		mt:           memtable.New(cfg.Seed),
		groupStreams: make(map[int]*ftl.RunStream),
		groupsAt:     make(map[nand.BlockID][]*group),
		st:           device.NewStats(),
	}
	if !cfg.NoValueLog {
		maxLogBlocks := int(float64(pool.TotalBlocks()) * cfg.LogFraction)
		if maxLogBlocks < 2 {
			maxLogBlocks = 2
		}
		d.vlog = newVlog(d, maxLogBlocks)
	}
	d.mem.MustReserve("memtable", cfg.MemtableBytes)
	// Recycle group build buffers only against a non-retaining (flyweight)
	// store; against the raw store the arena degrades to plain allocation.
	d.gsc.arena = nand.NewPageArena(cfg.Geometry.PageSize, 2*cfg.GroupPages, !arr.Retains())
	d.st.Flash = func() nand.Counters { return arr.Counters() }
	d.st.DRAMCapacity = func() int64 { return d.mem.Capacity() }
	d.st.DRAMUsed = func() int64 { return d.mem.Used() }
	d.st.Wear = func() ftl.WearStats { return pool.WearStats() }
	d.tr = cfg.Tracer
	return d, nil
}

// SetTracer attaches an event tracer for firmware events (nil detaches).
// The flash array's tracer is attached separately via Array().SetTracer.
func (d *Device) SetTracer(tr *trace.Tracer) { d.tr = tr }

// cpuOccupy charges the controller CPU and traces the occupancy span.
func (d *Device) cpuOccupy(at sim.Time, dur sim.Duration, cause trace.Cause) sim.Time {
	start, done := d.cpu.OccupyAt(at, dur)
	if d.tr != nil {
		d.tr.Span(trace.CPUTrack, trace.EvCPU, cause, at, start, done, 0)
	}
	return done
}

// Stats implements device.KVSSD.
func (d *Device) Stats() *device.Stats { return d.st }

// Array exposes the flash array for tests and the harness.
func (d *Device) Array() *nand.Array { return d.arr }

// ReleaseMemory eagerly drops every retained page payload. The device is
// unusable afterwards; callers release only devices they are discarding
// (closed handles, dead fleet shards).
func (d *Device) ReleaseMemory() { d.arr.Release() }

// Footprint returns the flash payload store's memory accounting.
func (d *Device) Footprint() nand.StoreFootprint { return d.arr.Footprint() }

// Plus reports whether the device runs the AnyKey+ compaction policy.
func (d *Device) Plus() bool { return d.cfg.Plus }

// threshold returns the physical size bound of level i (1-based), in units
// of the physical flush size.
func (d *Device) threshold(i int) int64 {
	t := d.flushUnit
	if t == 0 {
		t = int64(d.cfg.Geometry.PageSize)
	}
	for ; i > 0; i-- {
		t *= int64(d.cfg.GrowthFactor)
	}
	return t
}

func (d *Device) checkKV(key, value []byte) error {
	switch {
	case len(key) == 0:
		return kv.ErrEmptyKey
	case len(key) > kv.MaxKeyLen:
		return kv.ErrKeyTooLarge
	case len(value) > kv.MaxValueLen:
		return kv.ErrValueTooLarge
	case len(value) > d.cfg.Geometry.PageSize/2:
		return fmt.Errorf("%w: value %d exceeds half page size %d",
			kv.ErrValueTooLarge, len(value), d.cfg.Geometry.PageSize/2)
	}
	return nil
}

// Put implements device.KVSSD.
func (d *Device) Put(at sim.Time, key, value []byte) (sim.Time, error) {
	if err := d.checkKV(key, value); err != nil {
		return at, err
	}
	done := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostWrite)
	// One backing allocation for both copies; full slice expressions keep an
	// append to either from reaching the other.
	buf := make([]byte, len(key)+len(value))
	copy(buf, key)
	copy(buf[len(key):], value)
	prev, had := d.mt.Put(buf[:len(key):len(key)], buf[len(key):])
	d.accountPut(prev, had, key, value)
	return d.maybeFlush(at, done)
}

// Delete implements device.KVSSD.
func (d *Device) Delete(at sim.Time, key []byte) (sim.Time, error) {
	if len(key) == 0 {
		return at, kv.ErrEmptyKey
	}
	done := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostWrite)
	prev, had := d.mt.Delete(append([]byte(nil), key...))
	d.accountDelete(prev, had, key)
	return d.maybeFlush(at, done)
}

func (d *Device) maybeFlush(at, done sim.Time) (sim.Time, error) {
	if d.mt.Bytes() < d.cfg.MemtableBytes {
		return done, nil
	}
	// Flushes pipeline with in-flight compaction up to the device's write
	// queue depth: the host stalls only when background work runs more than
	// BackgroundLag behind (the chip timelines already enforce bandwidth).
	start := at
	if gate := d.bgDoneAt.Add(-d.cfg.BackgroundLag); gate.After(start) {
		start = gate
	}
	if d.tr != nil && start.After(at) {
		d.tr.Span(trace.BGTrack(trace.CauseWriteStall), trace.EvWriteStall,
			trace.CauseWriteStall, at, at, start, 0)
	}
	end, err := d.flush(start)
	if err != nil {
		return at, err
	}
	d.bgDoneAt = end
	return sim.Max(done, start), nil
}

// accountPut adjusts the live-data counters after a memtable insert. prev is
// the entry the insert replaced (the memtable reports it so accounting does
// not repeat the skiplist search).
func (d *Device) accountPut(prev memtable.Entry, had bool, key, value []byte) {
	if had {
		if prev.Tombstone {
			d.st.LiveKeys++
			d.st.LiveBytes += int64(len(key) + len(value))
		} else {
			d.st.LiveBytes += int64(len(value)) - int64(len(prev.Value))
		}
		return
	}
	if ent, _, found := d.lookupEntity(key); found {
		d.st.LiveBytes += int64(len(value)) - int64(ent.Len())
		return
	}
	d.st.LiveKeys++
	d.st.LiveBytes += int64(len(key) + len(value))
}

func (d *Device) accountDelete(prev memtable.Entry, had bool, key []byte) {
	if had {
		if !prev.Tombstone {
			d.st.LiveKeys--
			d.st.LiveBytes -= int64(len(key) + len(prev.Value))
		}
		return
	}
	if ent, _, found := d.lookupEntity(key); found {
		d.st.LiveKeys--
		d.st.LiveBytes -= int64(len(key)) + int64(ent.Len())
	}
}

// Sync flushes the write buffer to flash unconditionally (the device-level
// FLUSH command): after Sync returns, every acknowledged write is
// persistent and Reopen recovers it.
func (d *Device) Sync(at sim.Time) (sim.Time, error) {
	end := at
	if d.mt.Len() > 0 {
		start := sim.Max(at, d.bgDoneAt)
		var err error
		end, err = d.flush(start)
		if err != nil {
			return at, err
		}
		d.bgDoneAt = end
	}
	// The value log's open page buffers the tail values in DRAM; a durable
	// sync programs it even partially filled.
	if d.vlog != nil && d.vlog.curPPA != nand.InvalidPPA {
		t, err := d.vlog.programOpen(end, nand.CauseFlush)
		if err != nil {
			return at, err
		}
		end = sim.Max(end, t)
		d.bgDoneAt = sim.Max(d.bgDoneAt, end)
	}
	return end, nil
}

// Get implements device.KVSSD: the read path of §4.4 — level-list walk,
// hash-list check, page pick via per-page hash prefixes, entity read, and a
// possible second flash access into the value log.
func (d *Device) Get(at sim.Time, key []byte) ([]byte, sim.Time, error) {
	if len(key) == 0 {
		return nil, at, kv.ErrEmptyKey
	}
	d.opReads = 0
	now := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostRead)
	defer func() { d.st.ReadAccesses.Record(d.opReads) }()

	if e, ok := d.mt.Get(key); ok {
		if e.Tombstone {
			return nil, now, kv.ErrNotFound
		}
		return e.Value, now, nil
	}
	hash := xxhash.Sum32(key)
	for _, lv := range d.levels {
		g := lv.findGroup(key)
		if g == nil {
			continue
		}
		if g.hashes != nil && !g.hashContains(hash) {
			continue // hash list proves absence: no flash access
		}
		ent, t, found := d.searchGroup(now, g, key, hash, nand.CauseUser)
		now = t
		if !found {
			continue
		}
		if ent.InLog && d.vlog.isLost(ent.LogPtr) {
			// The pointed-to value never became durable before a power cut:
			// this version is gone; an older durable version (deeper level)
			// answers instead.
			continue
		}
		if ent.Tombstone {
			return nil, now, kv.ErrNotFound
		}
		if !ent.InLog {
			return ent.Value, now, nil
		}
		v, t2, charged := d.vlog.read(now, ent.LogPtr, nand.CauseUser)
		if charged {
			d.opReads++
		}
		return v, t2, nil
	}
	return nil, now, kv.ErrNotFound
}

// searchGroup locates key within a data segment group: binary search the
// per-page first-entity hash prefixes, read the candidate page, and resolve
// prefix ambiguity (walk back) and hash-collision continuation (collision
// bits, Fig. 7) with at most a couple of extra reads.
func (d *Device) searchGroup(at sim.Time, g *group, key []byte, hash uint32, cause nand.Cause) (kv.Entity, sim.Time, bool) {
	h16 := xxhash.Prefix16(hash)
	// Candidate page: last page whose first-entity prefix ≤ h16.
	p := candidatePage(g.firstHash16, h16)
	if p < 0 {
		return kv.Entity{}, at, false
	}
	now := at
	for {
		ppa := g.entityPPA(p)
		now = d.arr.Read(now, ppa, cause)
		d.opReads++
		pr := kv.OpenPage(d.arr.PageData(ppa))
		ent, stat := searchPageByHash(pr, key, hash)
		switch stat {
		case pageHit:
			return ent, now, true
		case pageBefore:
			// Every entity on this page hashes above the target: the match,
			// if any, is on an earlier page — possible only when that page
			// shares the 16-bit prefix.
			if p == 0 || g.firstHash16[p] != h16 {
				return kv.Entity{}, now, false
			}
			p--
			continue
		case pageContinues:
			// The target hash runs past the page boundary (collision bits
			// say the run continues on the next page).
			if p+1 >= g.entityPages() {
				return kv.Entity{}, now, false
			}
			p++
			continue
		default:
			return kv.Entity{}, now, false
		}
	}
}

// candidatePage returns the last page whose first-entity hash prefix is
// ≤ h16, or -1. A hand-rolled binary search: this runs on every GET that
// reaches a group, so the sort.Search closure overhead is worth shaving.
func candidatePage(prefixes []uint16, h16 uint16) int {
	lo, hi := 0, len(prefixes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if prefixes[mid] > h16 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

type pageSearchStatus int

const (
	pageMiss pageSearchStatus = iota
	pageHit
	pageBefore
	pageContinues
)

// Collision bits stored in each page's aux field (paper Fig. 7): bit 0 set
// when the last hash run continues onto the next page, bit 1 set when the
// first hash run continues from the previous page.
const (
	auxContinuesNext = 1 << 0
	auxContinuesPrev = 1 << 1
)

// searchPageByHash binary-searches one page's hash-sorted entities. Probes
// decode only the record's hash (PageReader.EntityHash); the full entity is
// decoded just for hash matches, whose keys must be compared.
func searchPageByHash(pr kv.PageReader, key []byte, hash uint32) (kv.Entity, pageSearchStatus) {
	n := pr.Count()
	if n == 0 {
		return kv.Entity{}, pageMiss
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		h, err := pr.EntityHash(mid)
		if err != nil {
			panic(err)
		}
		if h >= hash {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == n {
		// All hashes below target; the hash-prefix pick was right, so the
		// key is simply absent (its hash would sort into this page's tail).
		return kv.Entity{}, pageMiss
	}
	h, err := pr.EntityHash(lo)
	if err != nil {
		panic(err)
	}
	if h != hash {
		if lo == 0 {
			// Target hash sorts before every entity here: could live on the
			// previous page when prefixes tie.
			return kv.Entity{}, pageBefore
		}
		return kv.Entity{}, pageMiss
	}
	for i := lo; i < n; i++ {
		if i > lo {
			h, err := pr.EntityHash(i)
			if err != nil {
				panic(err)
			}
			if h != hash {
				return kv.Entity{}, pageMiss
			}
		}
		e, err := pr.Entity(i)
		if err != nil {
			panic(err)
		}
		if kv.Compare(e.Key, key) == 0 {
			return e, pageHit
		}
	}
	// The colliding run reaches the end of the page; consult the collision
	// bits to decide whether it spills onto the next page.
	if pr.Aux()&auxContinuesNext != 0 {
		return kv.Entity{}, pageContinues
	}
	return kv.Entity{}, pageMiss
}

// lookupEntity finds the newest on-flash entity for key without charging any
// simulated time (statistics bookkeeping only).
func (d *Device) lookupEntity(key []byte) (kv.Entity, *group, bool) {
	hash := xxhash.Sum32(key)
	for _, lv := range d.levels {
		g := lv.findGroup(key)
		if g == nil {
			continue
		}
		if g.hashes != nil && !g.hashContains(hash) {
			continue
		}
		if ent, ok := d.searchGroupFree(g, key, hash); ok {
			if ent.InLog && d.vlog.isLost(ent.LogPtr) {
				continue
			}
			if ent.Tombstone {
				return kv.Entity{}, nil, false
			}
			return ent, g, true
		}
	}
	return kv.Entity{}, nil, false
}

// searchGroupFree is searchGroup without timing charges.
func (d *Device) searchGroupFree(g *group, key []byte, hash uint32) (kv.Entity, bool) {
	h16 := xxhash.Prefix16(hash)
	p := candidatePage(g.firstHash16, h16)
	for p >= 0 && p < g.entityPages() {
		pr := kv.OpenPage(d.arr.PageData(g.entityPPA(p)))
		ent, stat := searchPageByHash(pr, key, hash)
		switch stat {
		case pageHit:
			return ent, true
		case pageBefore:
			if p == 0 || g.firstHash16[p] != h16 {
				return kv.Entity{}, false
			}
			p--
		case pageContinues:
			p++
		default:
			return kv.Entity{}, false
		}
	}
	return kv.Entity{}, false
}

// Metadata implements device.KVSSD: level lists and hash lists, all
// DRAM-resident by construction (Table 1, Fig. 11a).
func (d *Device) Metadata() []device.MetaStructure {
	var levelList, hashLists int64
	for _, lv := range d.levels {
		for _, g := range lv.groups {
			levelList += g.entryBytes()
			if g.hashes != nil {
				hashLists += int64(4 * len(g.hashes))
			}
		}
	}
	return []device.MetaStructure{
		{Name: "level lists", Bytes: levelList, InDRAM: true},
		{Name: "hash lists", Bytes: hashLists, InDRAM: true},
	}
}

// groupStream returns (creating on demand) the run allocator for one
// level's groups; level 0 is the GC relocation stream.
func (d *Device) groupStream(level int) *ftl.RunStream {
	s, ok := d.groupStreams[level]
	if !ok {
		s = ftl.NewRunStream(d.pool, ftl.RegionData)
		d.groupStreams[level] = s
	}
	return s
}
