package core

import (
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
	"anykey/internal/xxhash"
)

// Compaction (paper §4.4, Fig. 8). Two triggers exist:
//
//   - Tree-triggered: a level exceeds its size threshold after a merge; the
//     whole level is merged into the next one. Values living in the value
//     log are carried as pointers with no I/O.
//   - Log-triggered: the value log reaches its size trigger; a source level
//     is chosen and merged into the next level while its (and the
//     destination's) log-resident values are folded into the new groups,
//     freeing log blocks. Base AnyKey folds everything — which can push the
//     destination over its threshold and chain straight into a
//     tree-triggered compaction (the §4.6 problem). AnyKey+ stops folding at
//     α × threshold and writes the remainder back to fresh log space, and
//     picks its source by invalid-log-bytes rather than valid-log-bytes.
//
// Garbage collection of the group area is safe at any moment (it relocates
// whole groups by PPA and consults no records), so unlike PinK there is no
// reentrancy protocol here — allocation helpers GC on demand.

// compactOpts parameterises one compaction run.
type compactOpts struct {
	inlineLog bool  // fold log-resident values into the new groups
	alphaCut  int64 // >0: stop folding once the destination holds this many bytes
	fromLog   bool  // this run was triggered by the value log filling
}

// flush drains the memtable: values are appended to the value log (the
// paper's write path — "all values from new writes are written into the
// value log first") and the resulting key/pointer entities are merged into
// L1, cascading as needed.
func (d *Device) flush(at sim.Time) (sim.Time, error) {
	entries := d.mt.All()
	d.mt.Reset()
	// On any failure (typically ErrDeviceFull) the accepted-but-unflushed
	// pairs must survive: put the drained entries back so the buffer still
	// holds them when the caller surfaces the error.
	restore := func() {
		for i := range entries {
			if entries[i].Tombstone {
				d.mt.Delete(entries[i].Key)
			} else {
				d.mt.Put(entries[i].Key, entries[i].Value)
			}
		}
	}

	now := at
	var valueBytes int64
	for i := range entries {
		if !entries[i].Tombstone {
			valueBytes += int64(len(entries[i].Value))
		}
	}
	useLog := d.vlog != nil
	if useLog {
		t, err := d.ensureLogRoom(now, valueBytes)
		if err != nil {
			restore()
			return t, err
		}
		now = t
		// If compaction could not make room (the log is pinned by live
		// values and stragglers), this flush inlines its values into the
		// groups instead of overshooting the log area — the degraded mode
		// base AnyKey exhibits under value-heavy workloads.
		useLog = d.vlog.roomFor(valueBytes)
	}
	t, err := d.ensureFree(now, 1)
	if err != nil {
		restore()
		return t, err
	}
	now = t

	// Log appends are dispatched as one batch at the flush instant: each
	// page program queues on its own chip (the flash model handles per-die
	// contention), and the flush completes when the slowest lands.
	appendAt := now
	ents := make([]kv.Entity, 0, len(entries))
	for i := range entries {
		ent := &entries[i]
		e := kv.Entity{Key: ent.Key, Hash: xxhash.Sum32(ent.Key)}
		switch {
		case ent.Tombstone:
			e.Tombstone = true
		case useLog:
			ptr, t, err := d.vlog.append(appendAt, ent.Value, nand.CauseFlush)
			if err != nil {
				restore()
				return t, err
			}
			now = sim.Max(now, t)
			e.InLog = true
			e.LogPtr = ptr
			e.ValueLen = len(ent.Value)
		default: // AnyKey−: inline
			e.Value = ent.Value
			e.ValueLen = len(ent.Value)
		}
		ents = append(ents, e)
	}
	var physUnit int64
	for i := range ents {
		physUnit += int64(ents[i].EncodedSize() + 6)
	}
	if physUnit > d.flushUnit {
		d.flushUnit = physUnit
	}
	done, err := d.compactInto(now, 1, ents, compactOpts{})
	if err != nil {
		restore()
	} else if d.tr != nil {
		d.tr.Span(trace.BGTrack(trace.CauseFlush), trace.EvFlush,
			trace.CauseFlush, at, at, done, int64(len(entries)))
	}
	return done, err
}

// compactInto merges pending (key-sorted, newer than level dst) into level
// dst, then cascades tree-triggered compactions while levels overflow.
//
// Crash consistency: one compactInto call is one recovery unit. While it
// runs, (a) value-log invalidations queue in DRAM instead of hitting the
// log's validity accounting (so no log block whose values the *previous*
// level epoch still references can be erased before the new epoch is
// durable), and (b) the flash pages of consumed input groups stay valid
// until the writeLevel that replaces them returns (release-after-durable).
// A power cut anywhere inside the unit therefore leaves the previous epochs
// and their log references intact on flash, and recovery mounts them.
func (d *Device) compactInto(at sim.Time, dst int, pending []kv.Entity, opts compactOpts) (sim.Time, error) {
	if d.invalDefer {
		panic("core: nested compaction unit")
	}
	d.invalDefer = true
	now, err := d.compactIntoUnit(at, dst, pending, opts)
	// Not deferred: after a power-cut panic the half-merged device object is
	// abandoned, and so is the queue — exactly what losing DRAM means.
	d.invalDefer = false
	d.drainInval()
	if err == nil && d.tr != nil {
		d.tr.Span(trace.BGTrack(trace.CauseCompaction), trace.EvCompaction,
			trace.CauseCompaction, at, at, now, int64(dst))
	}
	return now, err
}

func (d *Device) compactIntoUnit(at sim.Time, dst int, pending []kv.Entity, opts compactOpts) (sim.Time, error) {
	now := at
	for {
		for len(d.levels) < dst {
			d.levels = append(d.levels, &level{})
		}
		if !opts.fromLog {
			d.st.TreeCompactions++
		}
		old, t := d.readLevelEntities(now, dst-1, nand.CauseCompaction)
		now = t
		merged := d.mergeEntities(pending, old, dst, d.deepestBelow(dst))
		now = d.cpuOccupy(now, sim.Duration(len(merged))*mergeCPUCost, trace.CauseCompaction)
		if opts.inlineLog {
			merged, now = d.foldLogValues(now, merged, opts.alphaCut, d.foldSpaceBudget())
		}
		var tail []kv.Entity
		var err error
		now, tail, err = d.writeLevel(now, dst, merged)
		// The rebuilt level is durable (or the device is full and the merge
		// is abandoned either way): the groups it consumed can die now.
		d.releaseConsumed()
		if err != nil {
			// The device filled mid-rebuild: the level's inputs are already
			// consumed, so the merged entities that never reached flash go
			// back to the memtable — no accepted pair is lost.
			now = d.requeueEntities(now, tail)
			return now, err
		}
		if d.levels[dst-1].bytes <= d.threshold(dst) {
			return now, nil
		}
		if opts.fromLog {
			// A log-triggered compaction just overflowed its destination:
			// this cascade is the compaction chain AnyKey+ exists to avoid.
			d.st.ChainedCompactions++
		}
		opts = compactOpts{} // cascades are plain tree compactions
		pending, now = d.readLevelEntities(now, dst-1, nand.CauseCompaction)
		dst++
	}
}

// readLevelEntities reads every page of every group in level index i (reads
// issued in parallel at `at`), decodes the entities in key order via the
// location tables, and dismantles the level's DRAM presence. The groups'
// flash pages stay valid: they are parked on d.consumable and die only when
// releaseConsumed runs after the merge output is durable. Entities whose
// log value was lost to a power cut are filtered out here — the deeper,
// durable version of the key (if any) wins the merge instead.
func (d *Device) readLevelEntities(at sim.Time, i int, cause nand.Cause) ([]kv.Entity, sim.Time) {
	lv := d.levels[i]
	total := 0
	for _, g := range lv.groups {
		total += g.count
	}
	// The compaction loop holds at most two read runs live at once — the
	// pending run and the level being consumed — and every merge consumes
	// both before the next read. Alternating between two device-owned
	// scratch buffers therefore never overwrites a live run, and the entity
	// headers (key/value bytes alias flash pages) are reused across merges.
	d.levelBufIdx ^= 1
	ents := d.levelBufs[d.levelBufIdx][:0]
	if cap(ents) < total {
		ents = make([]kv.Entity, 0, total)
	}
	now := at
	for _, g := range lv.groups {
		imgs := make([][]byte, g.numPages)
		for p := 0; p < g.numPages; p++ {
			ppa := g.firstPPA + nand.PPA(p)
			now = sim.Max(now, d.arr.Read(at, ppa, cause))
			imgs[p] = d.arr.PageData(ppa)
		}
		d.gsc.locs = readLocationTableInto(d.gsc.locs[:0], imgs[:g.tablePages], g.count)
		table := d.gsc.locs
		for _, loc := range table {
			pr := kv.OpenPage(imgs[g.tablePages+int(loc.Page)])
			// Decode straight into the scratch slot; drop it again if the
			// entity's log value was lost to an uncorrectable fault.
			ents = append(ents, kv.Entity{})
			e := &ents[len(ents)-1]
			if err := pr.EntityInto(e, int(loc.Rec)); err != nil {
				panic(err)
			}
			if e.InLog && d.vlog.isLost(e.LogPtr) {
				ents = ents[:len(ents)-1]
			}
		}
		d.mem.Release(dramLevelLabel, g.entryBytes())
		if g.hashes != nil {
			d.mem.Release(dramHashLabel, g.hashListBytes())
			g.hashes = nil
		}
		d.consumable = append(d.consumable, g)
	}
	lv.groups = nil
	lv.bytes = 0
	lv.logInvalid = 0
	d.levelBufs[d.levelBufIdx] = ents
	return ents, now
}

// releaseConsumed invalidates the flash pages of every group parked by
// readLevelEntities. Until this runs, the previous level epochs remain
// fully readable on flash — the recovery fallback for a mid-merge power
// cut. ensureFree may call it early under terminal space pressure (the
// documented crash-window trade, see DESIGN.md).
func (d *Device) releaseConsumed() {
	for _, g := range d.consumable {
		d.dropGroupPages(g)
	}
	d.consumable = nil
}

// dropGroupPages invalidates a group's flash pages and removes it from the
// block index. The page payloads stay readable (Go keeps the buffers alive)
// until the block is erased, mirroring real flash.
func (d *Device) dropGroupPages(g *group) {
	for p := 0; p < g.numPages; p++ {
		d.pool.MarkInvalid(g.firstPPA + nand.PPA(p))
	}
	b := d.arr.BlockOf(g.firstPPA)
	gs := d.groupsAt[b]
	for i, og := range gs {
		if og == g {
			d.groupsAt[b] = append(gs[:i], gs[i+1:]...)
			break
		}
	}
	if len(d.groupsAt[b]) == 0 {
		delete(d.groupsAt, b)
	}
}

// releaseGroup drops a group entirely: DRAM charges returned and flash
// pages invalidated immediately (no crash-consistency deferral; used where
// the group's data has already been relocated or is being discarded
// outright).
func (d *Device) releaseGroup(g *group) {
	d.mem.Release(dramLevelLabel, g.entryBytes())
	if g.hashes != nil {
		d.mem.Release(dramHashLabel, g.hashListBytes())
		g.hashes = nil
	}
	d.dropGroupPages(g)
}

// mergeEntities merges two key-sorted runs (newer wins). Superseded
// log-resident values die immediately in the log, and their bytes are
// attributed to the destination level's invalid counter — the AnyKey+
// source-selection signal. Tombstones are dropped at the bottom level.
//
// The output reuses d.mergeBuf: exactly one merged run is live at a time
// (compaction units cannot nest and a cascade step consumes the previous
// run before merging again), and only the entity headers live in the buffer
// — key/value bytes stay in the flash page images they alias — so reuse
// makes the merge allocation-free per entity in steady state.
func (d *Device) mergeEntities(newer, older []kv.Entity, dst int, atBottom bool) []kv.Entity {
	if need := len(newer) + len(older); cap(d.mergeBuf) < need {
		// Headroom: merge inputs grow a flush unit at a time during fill, so
		// an exact-fit buffer would be reallocated on almost every merge.
		d.mergeBuf = make([]kv.Entity, 0, need+need/2)
	}
	out := d.mergeBuf[:0]
	defer func() { d.mergeBuf = out[:0] }()
	emit := func(e *kv.Entity) {
		if e.Tombstone && atBottom {
			if e.InLog {
				panic("core: tombstone with log value")
			}
			return
		}
		out = append(out, *e)
	}
	drop := func(e *kv.Entity) {
		if e.InLog {
			d.vlog.invalidate(e.LogPtr, e.ValueLen)
			d.levels[dst-1].logInvalid += int64(e.ValueLen)
		}
	}
	i, j := 0, 0
	for i < len(newer) && j < len(older) {
		switch kv.Compare(newer[i].Key, older[j].Key) {
		case -1:
			emit(&newer[i])
			i++
		case 1:
			emit(&older[j])
			j++
		default:
			drop(&older[j])
			emit(&newer[i])
			i++
			j++
		}
	}
	for ; i < len(newer); i++ {
		emit(&newer[i])
	}
	for ; j < len(older); j++ {
		emit(&older[j])
	}
	return out
}

// foldLogValues is the log-triggered value movement: walking the merged
// run in key order, log-resident values are read (each log page once) and
// inlined into the entities until the α cutoff, after which AnyKey+
// relocates the remainder to fresh log space instead (Fig. 9b). alphaCut=0
// folds everything (base AnyKey).
// foldSpaceBudget bounds how many value bytes a fold may inline into the
// group area: the free pool minus the GC reserve. Folding beyond free space
// would wedge the device; values over budget simply stay in the log.
func (d *Device) foldSpaceBudget() int64 {
	free := int64(d.pool.FreeBlocks()-d.cfg.FreeBlockReserve-4) *
		int64(d.cfg.Geometry.PagesPerBlock) * int64(pagePayload(d.cfg.Geometry.PageSize))
	if free < 0 {
		free = 0
	}
	return free / 2 // headroom for the entities themselves and churn
}

func (d *Device) foldLogValues(at sim.Time, ents []kv.Entity, alphaCut, spaceBudget int64) ([]kv.Entity, sim.Time) {
	now := at
	// Batch phase: every needed log page (including fragment-chain
	// continuations) is read once, all dispatched at the fold instant
	// (per-die queueing handled by the flash model).
	if d.foldPages == nil {
		d.foldPages = make(map[nand.PPA]bool)
	}
	pagesRead := d.foldPages
	clear(pagesRead)
	for i := range ents {
		if !ents[i].InLog {
			continue
		}
		for _, ppa := range d.vlog.fragPages(ents[i].LogPtr) {
			if ppa != d.vlog.curPPA && !pagesRead[ppa] {
				now = sim.Max(now, d.arr.Read(at, d.vlog.phys(ppa), nand.CauseCompaction))
				pagesRead[ppa] = true
			}
		}
	}
	readVal := func(ptr uint64) []byte { return d.vlog.peek(ptr) }
	appendAt := now
	// builtBytes tracks the destination level's physical growth; the α
	// cutoff is against the level's physical threshold (Fig. 9b).
	var builtBytes, inlinedBytes int64
	for i := range ents {
		e := &ents[i]
		if !e.InLog {
			builtBytes += int64(e.EncodedSize() + 6)
			continue
		}
		candidate := builtBytes + int64(e.InlineSize(e.ValueLen)+6)
		overAlpha := alphaCut > 0 && candidate > alphaCut
		overSpace := inlinedBytes+int64(e.ValueLen) > spaceBudget
		if overAlpha || overSpace {
			// Written back into fresh log space instead of the groups:
			// AnyKey+'s early termination (Fig. 9b), and — for either
			// variant — the consolidation path when the group area lacks
			// room to inline. Write-back defragments the log: the old,
			// mostly dead blocks lose their last live bytes and erase.
			//
			// The peeked value is used without copying: programmed page
			// buffers are never mutated (erase only drops the reference),
			// open-page records are append-only, in-unit invalidations are
			// deferred, and both vlog.append and writeLevel copy the bytes
			// onward before the entity dies.
			val := readVal(e.LogPtr)
			d.vlog.invalidate(e.LogPtr, e.ValueLen)
			ptr, t, err := d.vlog.append(appendAt, val, nand.CauseCompaction)
			if err == nil {
				now = sim.Max(now, t)
				e.LogPtr = ptr
				builtBytes += int64(e.EncodedSize() + 6)
			} else {
				// No log space at all: inline as a last resort.
				e.InLog = false
				e.Value = val
				builtBytes = candidate
			}
			continue
		}
		e.Value = readVal(e.LogPtr)
		d.vlog.invalidate(e.LogPtr, e.ValueLen)
		e.InLog = false
		e.LogPtr = 0
		builtBytes = candidate
		inlinedBytes += int64(e.ValueLen)
	}
	return ents, now
}

// writeLevel partitions the merged key-sorted entities into data segment
// groups, writes them to contiguous page runs, and installs level dst.
// Every group carries its index within this rebuild epoch and the final one
// a last-group flag, so recovery can tell a complete epoch from one torn by
// a power cut. A merge that produced no entities still writes a one-page
// empty-epoch marker when it consumed on-flash groups: without it, a crash
// after the inputs were erased would resurrect the level's previous epoch —
// un-deleting keys whose tombstones this merge just retired.
//
// On error (the device filled mid-rebuild) the second result holds the
// entities that never reached flash, so the caller can requeue them; the
// groups installed before the failure stay mounted — they are valid, merely
// part of an epoch that never got its last-group flag.
func (d *Device) writeLevel(at sim.Time, dst int, ents []kv.Entity) (sim.Time, []kv.Entity, error) {
	lv := d.levels[dst-1]
	if len(lv.groups) != 0 {
		panic("core: writeLevel into non-empty level")
	}
	// Log-before-tree ordering: entities about to become durable may hold
	// pointers into the value log's open page, which is still buffering in
	// DRAM (flush appends, fold write-backs). Program it first — otherwise a
	// power cut after this epoch completes but before the page lands leaves
	// the newest durable epoch referencing values that never reached flash,
	// while the epoch that held the previous versions is already superseded.
	now := at
	if d.vlog != nil && d.vlog.curPPA != nand.InvalidPPA {
		t, err := d.vlog.programOpen(now, nand.CauseCompaction)
		if err != nil {
			return t, ents, err
		}
		now = t
	}
	d.epoch++ // stamp this rebuild's groups
	if len(ents) == 0 {
		if len(d.consumable) == 0 {
			return now, nil, nil // nothing replaced, nothing to supersede
		}
		t, err := d.installGroup(now, dst, buildEmptyMarker(d.cfg.Geometry.PageSize), 0, true, nand.CauseCompaction)
		return t, nil, err
	}
	// All group programs are dispatched at the same instant — the level
	// rebuild runs across every die in parallel and completes when the
	// slowest page lands (the flash model serialises per-die contention).
	dispatch := now
	remaining := ents
	index := 0
	for len(remaining) > 0 {
		cut := takeGroup(remaining, d.cfg.Geometry.PageSize, d.cfg.GroupPages)
		bg := buildGroup(remaining[:cut], d.cfg.Geometry.PageSize, &d.gsc)
		// takeGroup sizes the prefix in key order, but pages fill in hash
		// order, whose bin packing can differ by a page; shrink until the
		// built group honours the block-bounded run size.
		for bg.g.numPages > d.cfg.GroupPages && cut > 1 {
			cut -= (cut + 15) / 16
			if cut < 1 {
				cut = 1
			}
			d.gsc.releasePages(bg.pages) // abandoned before programming
			bg = buildGroup(remaining[:cut], d.cfg.Geometry.PageSize, &d.gsc)
		}
		t, err := d.installGroup(dispatch, dst, bg, index, cut == len(remaining), nand.CauseCompaction)
		if err != nil {
			return t, remaining, err
		}
		d.gsc.releasePages(bg.pages) // the array copied what it keeps
		remaining = remaining[cut:]
		index++
		now = sim.Max(now, t)
	}
	return now, nil, nil
}

// requeueEntities returns merged entities that could not be written to the
// memtable — after a mid-rebuild device-full their level inputs are already
// consumed, so the write buffer is the only remaining home. The memtable
// holds values, not pointers, so log-resident values are inlined and their
// log copies invalidated (deferred like any in-unit invalidation). The
// caller's own restore path (flush re-buffering its drained entries) runs
// afterwards and overwrites these with any newer buffered versions.
func (d *Device) requeueEntities(at sim.Time, ents []kv.Entity) sim.Time {
	now := at
	for i := range ents {
		e := &ents[i]
		switch {
		case e.Tombstone:
			d.mt.Delete(e.Key)
		case e.InLog:
			for _, ppa := range d.vlog.fragPages(e.LogPtr) {
				if ppa != d.vlog.curPPA {
					now = sim.Max(now, d.arr.Read(at, d.vlog.phys(ppa), nand.CauseCompaction))
				}
			}
			v := append([]byte(nil), d.vlog.peek(e.LogPtr)...)
			d.vlog.invalidate(e.LogPtr, e.ValueLen)
			d.mt.Put(e.Key, v)
		default:
			d.mt.Put(e.Key, e.Value)
		}
	}
	return now
}

// buildEmptyMarker lays out the one-page marker group recording "this level
// is now empty" durably (count 0, one table page, no entities).
func buildEmptyMarker(pageSize int) *builtGroup {
	img := make([]byte, pageSize)
	extra := make([]byte, groupHdrSize)
	putGroupHeader(extra, groupMagic, 0, 1, 1, 0, 0, 0, 0)
	kv.NewPageWriter(img, extra)
	return &builtGroup{g: &group{numPages: 1, tablePages: 1, firstHash16: []uint16{}}, pages: [][]byte{img}}
}

// installGroup writes a built group's pages to a fresh contiguous run and
// adds it to level dst. A program failure mid-run retires the block as
// grown-bad: the partially-written copy is abandoned (its pages invalid;
// recovery discards it as torn) and the whole group is re-issued into a
// fresh run until it lands or the device is out of blocks.
func (d *Device) installGroup(at sim.Time, dst int, bg *builtGroup, index int, last bool, cause nand.Cause) (sim.Time, error) {
	g := bg.g
	// Patch the destination level, epoch and epoch position into the
	// persistent headers, then seal every page (the simulated controller's
	// ECC footer).
	var flags uint16
	if last {
		flags |= flagLastGroup
	}
	for p := 0; p < g.tablePages; p++ {
		extra := kv.OpenPage(bg.pages[p]).Extra()
		put16(extra[2:], uint16(dst))
		put32(extra[12:], d.epoch)
		put16(extra[16:], uint16(index))
		put16(extra[18:], flags)
	}
	for _, img := range bg.pages {
		kv.SealPage(img)
	}
	var ppa nand.PPA
	var now sim.Time
	for {
		var err error
		ppa, err = d.nextRun(at, dst, g.numPages)
		if err != nil {
			return at, err
		}
		now = at
		failedAt := -1
		for p, img := range bg.pages {
			t, perr := d.arr.Program(at, ppa+nand.PPA(p), img, cause)
			now = sim.Max(now, t)
			if perr != nil {
				failedAt = p
				break
			}
			d.pool.MarkValid(ppa + nand.PPA(p))
		}
		if failedAt < 0 {
			break
		}
		// Abandon the torn copy and the grown-bad block's remainder.
		for p := 0; p < failedAt; p++ {
			d.pool.MarkInvalid(ppa + nand.PPA(p))
		}
		d.groupStream(dst).Close()
	}
	g.firstPPA = ppa
	g.physBytes = int64(g.numPages) * int64(d.cfg.Geometry.PageSize)
	b := d.arr.BlockOf(ppa)
	d.groupsAt[b] = append(d.groupsAt[b], g)

	lv := d.levels[dst-1]
	lv.groups = append(lv.groups, g)
	lv.bytes += g.physBytes
	d.mem.MustReserve(dramLevelLabel, g.entryBytes())
	d.attachHashList(dst, g, bg.entityHashes)
	return now, nil
}

// nextRun allocates a contiguous page run from the level's stream,
// garbage-collecting on demand.
func (d *Device) nextRun(at sim.Time, level, n int) (nand.PPA, error) {
	s := d.groupStream(level)
	if ppa, ok := s.NextRun(n); ok {
		return ppa, nil
	}
	if _, err := d.ensureFree(at, 1); err != nil {
		return 0, err
	}
	ppa, ok := s.NextRun(n)
	if !ok {
		return 0, kv.ErrDeviceFull
	}
	return ppa, nil
}

// attachHashList gives the freshly built group a hash list if DRAM allows,
// evicting hash lists from deeper levels first (the paper keeps hash lists
// for top levels, §4.2).
func (d *Device) attachHashList(dst int, g *group, hashes []uint32) {
	if d.cfg.NoHashLists {
		return
	}
	need := int64(4 * len(hashes))
	for !d.mem.Reserve(dramHashLabel, need) {
		if !d.dropDeepestHashList(dst) {
			return // nothing lower-priority to drop: go without
		}
	}
	g.hashes = hashes
}

// dropDeepestHashList removes one hash list from the deepest level below
// dst holding one. It reports false when none exists.
func (d *Device) dropDeepestHashList(dst int) bool {
	for i := len(d.levels) - 1; i >= dst; i-- {
		for _, g := range d.levels[i].groups {
			if g.hashes != nil {
				d.mem.Release(dramHashLabel, g.hashListBytes())
				g.hashes = nil
				return true
			}
		}
	}
	return false
}

// DRAM ledger labels.
const (
	dramLevelLabel = "levellist"
	dramHashLabel  = "hashlist"
)

// deepestBelow reports whether every level deeper than dst is empty.
func (d *Device) deepestBelow(dst int) bool {
	for i := dst; i < len(d.levels); i++ {
		if len(d.levels[i].groups) > 0 {
			return false
		}
	}
	return true
}

// ensureLogRoom keeps the value log under its trigger threshold before a
// flush appends valueBytes more, running log-triggered compactions as
// needed (§4.4 "Log-triggered Compaction").
func (d *Device) ensureLogRoom(at sim.Time, valueBytes int64) (sim.Time, error) {
	// Fully dead log blocks (hot keys overwrite their old values quickly)
	// are erased in place first — reclamation, not compaction, is the
	// common case for skewed writes.
	now, _ := d.vlog.reclaim(at)
	for tries := 0; tries < 4 && !d.vlog.roomFor(valueBytes); tries++ {
		t, ok, err := d.logCompact(now)
		now = t
		if err != nil {
			return now, err
		}
		if !ok {
			break // nothing left to fold; proceed and let the cap stretch
		}
	}
	return now, nil
}

// logCompact runs one log-triggered compaction: pick the source level, merge
// it into the next one folding log values into groups, then erase fully
// dead log blocks.
func (d *Device) logCompact(at sim.Time) (sim.Time, bool, error) {
	// When the log is full of *live* bytes, defragmentation cannot create
	// room: values must be disposed into the tree. Fold into the deepest
	// value-owning level (rarely rewritten). Otherwise the log is full of
	// garbage and the policy picks the cheapest reclaim source.
	var liveLog int64
	for _, lv := range d.levels {
		liveLog += lv.logValid()
	}
	disposal := liveLog > d.vlog.capacityBytes()*3/4

	var src int
	if disposal {
		src = -1
		var best int64
		for i, lv := range d.levels {
			if v := lv.logValid(); v > best {
				best, src = v, i+1
			}
		}
	} else {
		src = d.pickLogCompactSource()
	}
	if src < 0 {
		return at, false, nil
	}
	d.st.LogCompactions++
	opts := compactOpts{inlineLog: true, fromLog: true}
	if d.cfg.Plus && !disposal {
		opts.alphaCut = int64(d.cfg.Alpha * float64(d.threshold(src+1)))
	}
	pending, now := d.readLevelEntities(at, src-1, nand.CauseCompaction)
	now, err := d.compactInto(now, src+1, pending, opts)
	if err != nil {
		return now, false, err
	}
	now, _ = d.vlog.reclaim(now)
	return now, true, nil
}

// pickLogCompactSource chooses the level whose compaction frees the most
// log space: base AnyKey takes the level with the most *valid* log bytes;
// AnyKey+ the level with the most *invalid* log bytes (falling back to the
// base rule when no invalidations have been seen). Returns -1 when the tree
// holds no log-resident values.
func (d *Device) pickLogCompactSource() int {
	pick := func(metric func(*level) int64) int {
		best, bestScore := -1, int64(0)
		for i, lv := range d.levels {
			if len(lv.groups) == 0 {
				continue
			}
			if s := metric(lv); s > bestScore {
				best, bestScore = i+1, s
			}
		}
		return best
	}
	if d.cfg.Plus {
		// AnyKey+ scores levels by invalid log bytes normalised by the
		// physical compaction cost, so reclaiming churn-heavy levels never
		// costs more than it frees; ties and cold starts fall back to the
		// base rule.
		if b := pick(func(lv *level) int64 {
			if lv.logInvalid == 0 {
				return 0
			}
			return lv.logInvalid - lv.bytes
		}); b > 0 {
			return b
		}
	}
	return pick(func(lv *level) int64 { return lv.logValid() })
}
