package core

import (
	"fmt"

	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
)

// vlog is AnyKey's value log (§4.3): an append-only flash area holding the
// values detached from data segment groups. Entities in groups carry a
// packed pointer (page PPA << 16 | record index) instead of the bytes, so
// tree compaction moves only key/pointer entities.
//
// Values pack byte-continuously: a record that does not fit the current
// page's remainder spans into following pages as a fragment chain (the
// continuation map is controller bookkeeping, like OOB metadata), so large
// values waste no space — a 4 KiB value consumes 4 KiB of log, not a page.
//
// The log never garbage-collects by relocation: space returns either when a
// block's values all die (it is erased in place) or when a log-triggered
// compaction folds a level's values back into its groups (§4.4). The
// maxBlocks limit is the *trigger* for log-triggered compaction, not a hard
// cap — AnyKey+'s write-back path may transiently overshoot it.
type vlog struct {
	d         *Device
	maxBlocks int

	cur  nand.BlockID
	next int // next page index to reserve in cur
	open bool

	// The open page: values accumulate in the device's DRAM write buffer
	// and the page programs when full, like any real flash write path.
	img    []byte
	w      *kv.PageWriter
	curPPA nand.PPA

	// pageValid tracks the live value bytes per log page, driving erase-in-
	// place reclamation of fully dead blocks.
	pageValid map[nand.PPA]int64

	// contMap chains a fragment's pointer to its continuation fragment.
	contMap map[uint64]uint64

	// seq numbers log pages in append order; persisted in each page's extra
	// so recovery can replay the stream and rebuild fragment chains.
	seq uint64

	// recBuf is the reusable fragment-record scratch for append: AppendRaw
	// copies the record into the page image, so nothing retains it.
	recBuf []byte

	// remap redirects a page's logical (pointer-visible) address to its
	// physical home when a program failure forced the sealed page image into
	// a different block. Pointers and liveness stay keyed by the logical
	// address; the physical one is used only to reach the flash cells. The
	// page header persists the logical address, so recovery rebuilds this
	// map from flash. Logical addresses of remapped pages sit in grown-bad
	// blocks, which are never erased or reallocated, so they can never
	// collide with future pages.
	remap map[nand.PPA]nand.PPA

	// lost marks pointers whose fragment chain a recovery could not resolve
	// (the value was acknowledged but its page never became durable before a
	// power cut). Read paths treat a lost pointer as absent at its level and
	// fall through to the key's older, durable version.
	lost map[uint64]struct{}
}

func newVlog(d *Device, maxBlocks int) *vlog {
	return &vlog{
		d:         d,
		maxBlocks: maxBlocks,
		pageValid: make(map[nand.PPA]int64),
		contMap:   make(map[uint64]uint64),
		remap:     make(map[nand.PPA]nand.PPA),
		lost:      make(map[uint64]struct{}),
		curPPA:    nand.InvalidPPA,
	}
}

// phys translates a logical log page address to its physical home.
func (v *vlog) phys(ppa nand.PPA) nand.PPA {
	if p, ok := v.remap[ppa]; ok {
		return p
	}
	return ppa
}

// isLost reports whether ptr references a value lost to a power cut.
func (v *vlog) isLost(ptr uint64) bool {
	_, bad := v.lost[ptr]
	return bad
}

// blocksUsed returns the log's current block footprint.
func (v *vlog) blocksUsed() int { return v.d.pool.BlocksIn(ftl.RegionLog) }

// capacityBytes returns the log's trigger capacity in payload bytes.
func (v *vlog) capacityBytes() int64 {
	return int64(v.maxBlocks) * int64(v.d.cfg.Geometry.PagesPerBlock) *
		int64(pagePayload(v.d.cfg.Geometry.PageSize))
}

// roomFor reports whether appending n more value bytes stays within the
// log-triggered-compaction threshold.
func (v *vlog) roomFor(n int64) bool {
	payload := int64(pagePayload(v.d.cfg.Geometry.PageSize))
	ppb := int64(v.d.cfg.Geometry.PagesPerBlock)
	var free int64
	if v.open {
		if v.w != nil {
			// A page is buffering: its remainder is usable. (After a Sync
			// programs a partially-filled page, the block stays open but no
			// page is buffering.)
			free += int64(v.w.Free())
		}
		free += (ppb - int64(v.next)) * payload
	}
	free += int64(v.maxBlocks-v.blocksUsed()) * ppb * payload
	return free >= n+n/8 // keep a small slack so the trigger leads the wall
}

// Fragment records are self-describing: a marker byte distinguishes a
// value's first fragment (which also carries the total length) from a
// continuation, letting the recovery replay resynchronise across erased
// pages.
const (
	fragFirst byte = 0xF1
	fragCont  byte = 0xF2
)

// fragMinSpace: rotate rather than leave slivers.
const fragMinSpace = 64

// append stores one value, spanning pages as needed, and returns the packed
// pointer of its first fragment. The caller has checked roomFor; append
// only fails when the whole pool is exhausted.
func (v *vlog) append(at sim.Time, val []byte, cause nand.Cause) (uint64, sim.Time, error) {
	now := at
	remaining := val
	first := uint64(0)
	prev := uint64(0)
	for i := 0; ; i++ {
		if v.curPPA == nand.InvalidPPA || v.w.Free() < fragMinSpace {
			t, err := v.rotatePage(now, cause)
			if err != nil {
				return 0, t, err
			}
			now = t
		}
		// Headroom in this page for the fragment body.
		rec := v.recBuf[:0]
		if i == 0 {
			rec = append(rec, fragFirst)
			rec = appendUvarint(rec, uint64(len(val)))
		} else {
			rec = append(rec, fragCont)
		}
		avail := v.w.Free() - 2 - len(rec) - 3 // offset slot + headers
		if avail <= 0 {
			panic("core: vlog page headroom accounting")
		}
		chunk := remaining
		if len(chunk) > avail {
			chunk = chunk[:avail]
		}
		rec = appendUvarint(rec, uint64(len(chunk)))
		rec = append(rec, chunk...)
		if !v.w.AppendRaw(rec) {
			panic("core: vlog fragment append failed after sizing")
		}
		v.recBuf = rec[:0]
		ptr := uint64(v.curPPA)<<16 | uint64(v.w.Count()-1)
		v.pageValid[v.curPPA] += int64(len(chunk))
		if i == 0 {
			first = ptr
		} else {
			v.contMap[prev] = ptr
		}
		prev = ptr
		remaining = remaining[len(chunk):]
		if len(remaining) == 0 {
			return first, now, nil
		}
	}
}

// rotatePage programs the open page (if any) and reserves the next one.
func (v *vlog) rotatePage(at sim.Time, cause nand.Cause) (sim.Time, error) {
	now := at
	if v.curPPA != nand.InvalidPPA {
		t, err := v.programOpen(now, cause)
		now = t
		if err != nil {
			return now, err
		}
	}
	if !v.open || v.next >= v.d.cfg.Geometry.PagesPerBlock {
		if v.open {
			v.d.pool.SetActive(v.cur, false)
			v.open = false
		}
		b, ok := v.d.pool.Alloc(ftl.RegionLog)
		if !ok {
			// The global pool is dry; let the device GC the group area and
			// retry once.
			t, err := v.d.ensureFree(now, 1)
			now = t
			if err != nil {
				return now, err
			}
			b, ok = v.d.pool.Alloc(ftl.RegionLog)
			if !ok {
				return now, kv.ErrDeviceFull
			}
		}
		v.cur = b
		v.next = 0
		v.open = true
		v.d.pool.SetActive(b, true)
	}
	v.curPPA = v.d.arr.PageOf(v.cur, v.next)
	v.next++
	// The address is being reborn as a fresh log page: any lost-pointer or
	// remap state a previous life left behind is stale now.
	for ptr := range v.lost {
		if nand.PPA(ptr>>16) == v.curPPA {
			delete(v.lost, ptr)
		}
	}
	delete(v.remap, v.curPPA)
	v.img = make([]byte, v.d.cfg.Geometry.PageSize)
	extra := make([]byte, logPageHdrSize)
	putLogPageHeader(extra, v.seq, v.curPPA)
	v.seq++
	v.w = kv.NewPageWriter(v.img, extra)
	return now, nil
}

// On-flash log page header: magic, the page's position in the append stream
// (which recovery uses to re-order pages and rebuild fragment chains), and
// the page's logical address — normally its own PPA, but the original
// target when a program failure remapped the sealed image elsewhere.
const (
	logPageMagic   uint16 = 0x106A
	logPageHdrSize        = 18
)

func putLogPageHeader(extra []byte, seq uint64, logical nand.PPA) {
	put16(extra[0:], logPageMagic)
	for i := 0; i < 8; i++ {
		extra[2+i] = byte(seq >> (8 * i))
	}
	for i := 0; i < 8; i++ {
		extra[10+i] = byte(uint64(logical) >> (8 * i))
	}
}

// readLogPageHeader decodes a log page's header; ok is false for non-log
// pages.
func readLogPageHeader(extra []byte) (seq uint64, logical nand.PPA, ok bool) {
	if len(extra) < logPageHdrSize || get16(extra[0:]) != logPageMagic {
		return 0, 0, false
	}
	for i := 0; i < 8; i++ {
		seq |= uint64(extra[2+i]) << (8 * i)
	}
	var l uint64
	for i := 0; i < 8; i++ {
		l |= uint64(extra[10+i]) << (8 * i)
	}
	return seq, nand.PPA(l), true
}

// programOpen writes the open page to flash; pages whose values all died
// while buffered are still programmed (the transfer was already committed)
// but arrive dead. When the program fails (the block grew bad), the sealed
// image — which already carries its logical address in the header — is
// re-issued into a fresh block and the logical→physical remap recorded;
// the pointers handed out for this page stay valid unchanged.
func (v *vlog) programOpen(at sim.Time, cause nand.Cause) (sim.Time, error) {
	kv.SealPage(v.img)
	logical := v.curPPA
	phys := logical
	now := at
	for {
		t, err := v.d.arr.Program(now, phys, v.img, cause)
		now = t
		if err == nil {
			break
		}
		v.d.pool.SetActive(v.cur, false)
		v.open = false
		b, ok := v.d.pool.Alloc(ftl.RegionLog)
		if !ok {
			t, ferr := v.d.ensureFree(now, 1)
			now = t
			if ferr != nil {
				return now, ferr
			}
			b, ok = v.d.pool.Alloc(ftl.RegionLog)
			if !ok {
				return now, kv.ErrDeviceFull
			}
		}
		v.cur = b
		v.next = 1
		v.open = true
		v.d.pool.SetActive(b, true)
		phys = v.d.arr.PageOf(b, 0)
	}
	if phys != logical {
		v.remap[logical] = phys
	}
	if v.pageValid[logical] > 0 {
		v.d.pool.MarkValid(phys)
	} else {
		delete(v.pageValid, logical)
	}
	v.curPPA = nand.InvalidPPA
	v.img = nil
	v.w = nil
	return now, nil
}

// pageImage returns the page holding ppa (a logical log address) without
// charging time.
func (v *vlog) pageImage(ppa nand.PPA) []byte {
	if ppa == v.curPPA {
		return v.img
	}
	return v.d.arr.PageData(v.phys(ppa))
}

// fragChunk decodes the self-describing fragment at ptr: whether it starts
// a value, the declared total length (first fragments only), and its chunk.
// Pointers on the live read paths always resolve; a failure is a bug.
func (v *vlog) fragChunk(ptr uint64) (first bool, total uint64, chunk []byte) {
	first, total, chunk, ok := v.fragChunkOK(ptr)
	if !ok {
		panic(fmt.Sprintf("core: corrupt log fragment at %d/%d", nand.PPA(ptr>>16), int(ptr&0xffff)))
	}
	return first, total, chunk
}

// fragChunkOK is the non-panicking decode used by recovery, which probes
// pointers that may reference reused or never-durable pages.
func (v *vlog) fragChunkOK(ptr uint64) (first bool, total uint64, chunk []byte, ok bool) {
	ppa := nand.PPA(ptr >> 16)
	slot := int(ptr & 0xffff)
	pr := kv.OpenPage(v.pageImage(ppa))
	if slot >= pr.Count() {
		return false, 0, nil, false
	}
	rec := pr.Record(slot)
	if len(rec) == 0 || (rec[0] != fragFirst && rec[0] != fragCont) {
		return false, 0, nil, false
	}
	first = rec[0] == fragFirst
	used := 1
	if first {
		var n int
		total, n = uvarint(rec[used:])
		if n <= 0 {
			return false, 0, nil, false
		}
		used += n
	}
	fragLen, n := uvarint(rec[used:])
	if n <= 0 || int(fragLen) > len(rec)-used-n {
		return false, 0, nil, false
	}
	used += n
	return first, total, rec[used : used+int(fragLen)], true
}

// read returns the value at ptr, charging one flash read per touched page
// (dispatched in parallel); reads of the still-buffered open page are DRAM
// hits. charged reports whether any flash read happened.
func (v *vlog) read(at sim.Time, ptr uint64, cause nand.Cause) (val []byte, done sim.Time, charged bool) {
	now := at
	chargePage := func(ppa nand.PPA) {
		if ppa == v.curPPA {
			return
		}
		now = sim.Max(now, v.d.arr.Read(at, v.phys(ppa), cause))
		charged = true
	}
	chargePage(nand.PPA(ptr >> 16))
	_, total, chunk := v.fragChunk(ptr)
	if uint64(len(chunk)) == total {
		return chunk, now, charged
	}
	out := make([]byte, 0, total)
	out = append(out, chunk...)
	cur := ptr
	for uint64(len(out)) < total {
		next, ok := v.contMap[cur]
		if !ok {
			panic("core: broken log fragment chain")
		}
		chargePage(nand.PPA(next >> 16))
		_, _, chunk := v.fragChunk(next)
		out = append(out, chunk...)
		cur = next
	}
	return out, now, charged
}

// peek assembles the value at ptr without timing (bookkeeping and
// batch-read paths that charged the pages already).
func (v *vlog) peek(ptr uint64) []byte {
	_, total, chunk := v.fragChunk(ptr)
	if uint64(len(chunk)) == total {
		return chunk
	}
	out := make([]byte, 0, total)
	out = append(out, chunk...)
	cur := ptr
	for uint64(len(out)) < total {
		next := v.contMap[cur]
		_, _, c := v.fragChunk(next)
		out = append(out, c...)
		cur = next
	}
	return out
}

// fragPages lists every page a record at ptr touches (for batch reads).
func (v *vlog) fragPages(ptr uint64) []nand.PPA {
	pages := []nand.PPA{nand.PPA(ptr >> 16)}
	_, total, chunk := v.fragChunk(ptr)
	got := uint64(len(chunk))
	cur := ptr
	for got < total {
		next, ok := v.contMap[cur]
		if !ok {
			panic("core: broken log fragment chain")
		}
		pages = append(pages, nand.PPA(next>>16))
		_, _, c := v.fragChunk(next)
		got += uint64(len(c))
		cur = next
	}
	return pages
}

// invalidate records the death of the value at ptr across all its
// fragments. Pages whose last value bytes die are marked invalid; fully
// dead blocks are erased by reclaim. While a compaction unit is open the
// invalidation only queues: applying it immediately could let reclaim erase
// log blocks the previous (still on-flash) level epoch references, which a
// power cut mid-merge would then need. Lost pointers carry no liveness and
// are ignored.
func (v *vlog) invalidate(ptr uint64, valLen int) {
	if v.isLost(ptr) {
		return
	}
	if v.d.invalDefer {
		v.d.pendingInval = append(v.d.pendingInval, pendingInval{ptr: ptr, valLen: valLen})
		return
	}
	cur := ptr
	remaining := uint64(valLen)
	for {
		ppa := nand.PPA(cur >> 16)
		_, _, chunk := v.fragChunk(cur)
		v.dropBytes(ppa, int64(len(chunk)))
		remaining -= uint64(len(chunk))
		if remaining == 0 {
			break
		}
		next, ok := v.contMap[cur]
		if !ok {
			panic("core: broken log fragment chain in invalidate")
		}
		delete(v.contMap, cur)
		cur = next
	}
}

func (v *vlog) dropBytes(ppa nand.PPA, n int64) {
	rem, ok := v.pageValid[ppa]
	if !ok || rem < n {
		panic(fmt.Sprintf("core: log invalidate underflow at page %d: %d - %d", ppa, rem, n))
	}
	rem -= n
	if rem == 0 {
		delete(v.pageValid, ppa)
		if ppa != v.curPPA {
			v.d.pool.MarkInvalid(v.phys(ppa))
		}
	} else {
		v.pageValid[ppa] = rem
	}
}

// reclaim erases every fully dead log block.
func (v *vlog) reclaim(at sim.Time) (sim.Time, bool) {
	now := at
	freed := false
	for {
		b, ok := v.d.pool.VictimBelow(ftl.RegionLog, 0)
		if !ok {
			break
		}
		now = v.d.pool.Release(now, b, nand.CauseLog)
		freed = true
	}
	return now, freed
}

// --- local varint helpers -------------------------------------------------

func appendUvarint(b []byte, x uint64) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

func uvarint(b []byte) (uint64, int) {
	var x uint64
	for i := 0; i < len(b) && i < 10; i++ {
		x |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return x, i + 1
		}
	}
	return 0, 0
}
