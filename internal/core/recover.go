package core

import (
	"fmt"
	"sort"

	"anykey/internal/device"
	"anykey/internal/dram"
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
)

// Reopen mounts an AnyKey device over an existing flash array — the
// power-cycle recovery path. Everything the design keeps in DRAM is
// *derived* state: level lists and per-page hash prefixes rebuild from the
// persistent group headers and pages, hash lists from the entities, the
// value log's fragment chains and liveness from the log pages' sequence
// headers plus the recovered entities' pointers. Buffered (memtable) writes
// are volatile and lost unless Sync ran before the power cut, exactly as on
// a real device without a write journal; per-block wear counters are also
// reset (real devices persist them out of band).
//
// Recovery assumes a quiesced device (no compaction was mid-flight at the
// cut); the harness and tests Sync before power-cycling.
func Reopen(cfg Config, arr *nand.Array) (*Device, error) {
	cfg.Defaults()
	if arr.Geometry() != cfg.Geometry {
		return nil, fmt.Errorf("core: reopen geometry %+v does not match config %+v",
			arr.Geometry(), cfg.Geometry)
	}
	pool := ftl.NewPool(arr)
	d := &Device{
		cfg:          cfg,
		arr:          arr,
		pool:         pool,
		mem:          dram.New(cfg.DRAMBytes),
		mt:           memtable.New(cfg.Seed),
		groupStreams: make(map[int]*ftl.RunStream),
		groupsAt:     make(map[nand.BlockID][]*group),
		st:           device.NewStats(),
	}
	if !cfg.NoValueLog {
		maxLogBlocks := int(float64(pool.TotalBlocks()) * cfg.LogFraction)
		if maxLogBlocks < 2 {
			maxLogBlocks = 2
		}
		d.vlog = newVlog(d, maxLogBlocks)
	}
	d.mem.MustReserve("memtable", cfg.MemtableBytes)
	d.st.Flash = func() nand.Counters { return arr.Counters() }
	d.st.DRAMCapacity = func() int64 { return d.mem.Capacity() }
	d.st.DRAMUsed = func() int64 { return d.mem.Used() }
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// recover scans the flash array and rebuilds the DRAM state.
func (d *Device) recover() error {
	geo := d.cfg.Geometry
	type foundGroup struct {
		hdr      groupHeader
		firstPPA nand.PPA
	}
	var groups []foundGroup
	var logPages []logPageRef
	blockRegion := make([]ftl.Region, geo.Blocks())

	// Pass 1: identify every written page by its persistent header. The
	// scan charges one read per written page at the mount instant (the
	// device is offline; only the counters matter).
	for b := 0; b < geo.Blocks(); b++ {
		for p := 0; p < geo.PagesPerBlock; p++ {
			ppa := d.arr.PageOf(nand.BlockID(b), p)
			if !d.arr.Written(ppa) {
				break // blocks program in order; the tail is unwritten
			}
			d.arr.Read(0, ppa, nand.CauseMeta)
			if !kv.OpenPage(d.arr.PageData(ppa)).Verify() {
				return fmt.Errorf("core: recover: page %d fails its integrity check", ppa)
			}
			extra := kv.OpenPage(d.arr.PageData(ppa)).Extra()
			if hdr, ok := readGroupHeader(extra); ok {
				groups = append(groups, foundGroup{hdr: hdr, firstPPA: ppa})
				blockRegion[b] = ftl.RegionData
			} else if seq, ok := readLogPageHeader(extra); ok {
				logPages = append(logPages, logPageRef{seq: seq, ppa: ppa})
				if blockRegion[b] == ftl.RegionNone {
					blockRegion[b] = ftl.RegionLog
				}
			} else if blockRegion[b] == ftl.RegionNone {
				// Entity or continuation page: data region.
				blockRegion[b] = ftl.RegionData
			}
		}
	}

	// Keep, per level, only the newest epoch's groups; earlier epochs were
	// superseded by a later rebuild of that level.
	newest := map[int]uint32{}
	for _, fg := range groups {
		if fg.hdr.epoch > newest[fg.hdr.level] {
			newest[fg.hdr.level] = fg.hdr.epoch
		}
		if fg.hdr.epoch >= d.epoch {
			d.epoch = fg.hdr.epoch + 1
		}
	}

	// Adopt block ownership before marking pages valid.
	for b, r := range blockRegion {
		if r != ftl.RegionNone {
			d.pool.Adopt(nand.BlockID(b), r)
		}
	}

	// Rebuild the value-log stream state first (fragment chains), so group
	// adoption can account value liveness.
	if d.vlog != nil {
		d.recoverLog(logPages)
	}

	// Pass 2: reconstruct surviving groups and install them into levels.
	maxLevel := 0
	for _, fg := range groups {
		if fg.hdr.level > maxLevel {
			maxLevel = fg.hdr.level
		}
	}
	for len(d.levels) < maxLevel {
		d.levels = append(d.levels, &level{})
	}
	for _, fg := range groups {
		if fg.hdr.epoch != newest[fg.hdr.level] {
			continue // superseded
		}
		g, err := d.adoptGroup(fg.hdr, fg.firstPPA)
		if err != nil {
			return err
		}
		lv := d.levels[fg.hdr.level-1]
		lv.groups = append(lv.groups, g)
		lv.bytes += g.physBytes
	}
	for _, lv := range d.levels {
		sort.Slice(lv.groups, func(i, j int) bool {
			return kv.Compare(lv.groups[i].smallest, lv.groups[j].smallest) < 0
		})
	}
	return nil
}

// logPageRef locates one recovered log page in the append stream.
type logPageRef struct {
	seq uint64
	ppa nand.PPA
}

// recoverLog replays the log pages in sequence order, rebuilding fragment
// chains. Liveness starts at zero; adoptGroup adds back the bytes that
// surviving entities reference.
func (d *Device) recoverLog(pages []logPageRef) {
	sort.Slice(pages, func(i, j int) bool { return pages[i].seq < pages[j].seq })
	var pendingPtr uint64 // fragment awaiting its continuation
	var remaining uint64  // bytes still owed to the value being assembled
	for _, lp := range pages {
		pr := kv.OpenPage(d.arr.PageData(lp.ppa))
		for slot := 0; slot < pr.Count(); slot++ {
			ptr := uint64(lp.ppa)<<16 | uint64(slot)
			first, total, chunk := d.vlog.fragChunk(ptr)
			switch {
			case first:
				// A dead value's chain may dangle when its later pages were
				// erased; a fresh first fragment simply abandons it.
				remaining = total
			case remaining > 0:
				d.vlog.contMap[pendingPtr] = ptr
			default:
				// Orphan continuation: its head page was erased, so the
				// value is dead; skip.
				continue
			}
			if uint64(len(chunk)) > remaining {
				remaining = 0 // defensive: never underflow on torn chains
			} else {
				remaining -= uint64(len(chunk))
			}
			pendingPtr = ptr
		}
		if lp.seq >= d.vlog.seq {
			d.vlog.seq = lp.seq + 1
		}
	}
}

// adoptGroup rebuilds one group's descriptor from its flash pages.
func (d *Device) adoptGroup(hdr groupHeader, firstPPA nand.PPA) (*group, error) {
	g := &group{
		firstPPA:    firstPPA,
		numPages:    hdr.pages,
		tablePages:  hdr.tablePages,
		count:       hdr.count,
		physBytes:   int64(hdr.pages) * int64(d.cfg.Geometry.PageSize),
		firstHash16: make([]uint16, hdr.pages-hdr.tablePages),
	}
	imgs := make([][]byte, hdr.pages)
	for p := 0; p < hdr.pages; p++ {
		ppa := firstPPA + nand.PPA(p)
		if !d.arr.Written(ppa) {
			return nil, fmt.Errorf("core: recover: group at %d truncated at page %d", firstPPA, p)
		}
		imgs[p] = d.arr.PageData(ppa)
		d.pool.MarkValid(ppa)
	}
	hashes := make([]uint32, 0, hdr.count)
	for p := 0; p < g.entityPages(); p++ {
		pr := kv.OpenPage(imgs[hdr.tablePages+p])
		for i := 0; i < pr.Count(); i++ {
			e, err := pr.Entity(i)
			if err != nil {
				return nil, fmt.Errorf("core: recover: corrupt entity in group %d: %w", firstPPA, err)
			}
			if i == 0 {
				g.firstHash16[p] = uint16(e.Hash >> 16)
			}
			hashes = append(hashes, e.Hash)
			g.bytes += int64(len(e.Key)) + int64(e.Len())
			if e.InLog {
				g.logBytes += int64(e.ValueLen)
				d.recoverLogLiveness(e.LogPtr, e.ValueLen)
			}
		}
	}
	// The smallest key is the location table's first entry.
	table := readLocationTable(imgs[:hdr.tablePages], hdr.count)
	if len(table) > 0 {
		pr := kv.OpenPage(imgs[hdr.tablePages+int(table[0].Page)])
		e, err := pr.Entity(int(table[0].Rec))
		if err != nil {
			return nil, err
		}
		g.smallest = append([]byte(nil), e.Key...)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	b := d.arr.BlockOf(firstPPA)
	d.groupsAt[b] = append(d.groupsAt[b], g)
	d.mem.MustReserve(dramLevelLabel, g.entryBytes())
	if !d.cfg.NoHashLists && d.mem.Reserve(dramHashLabel, int64(4*len(hashes))) {
		g.hashes = hashes
	}
	return g, nil
}

// recoverLogLiveness restores the valid-byte accounting of a value's
// fragment chain.
func (d *Device) recoverLogLiveness(ptr uint64, valLen int) {
	cur := ptr
	remaining := uint64(valLen)
	for {
		ppa := nand.PPA(cur >> 16)
		_, _, chunk := d.vlog.fragChunk(cur)
		if d.vlog.pageValid[ppa] == 0 {
			d.pool.MarkValid(ppa)
		}
		d.vlog.pageValid[ppa] += int64(len(chunk))
		remaining -= uint64(len(chunk))
		if remaining == 0 {
			return
		}
		next, ok := d.vlog.contMap[cur]
		if !ok {
			panic("core: recover: broken fragment chain")
		}
		cur = next
	}
}
