package core

import (
	"fmt"
	"slices"

	"anykey/internal/device"
	"anykey/internal/dram"
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/trace"
)

// CorruptPageError reports a page that failed its integrity check in a
// position recovery cannot attribute to a power cut: it is not the last
// written page of its block, so in-order programming rules out a torn
// in-flight program. This is real corruption (or a software bug), not crash
// damage, and Reopen refuses to mount over it.
type CorruptPageError struct {
	PPA nand.PPA
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("core: recover: page %d fails its integrity check mid-block (not attributable to a power cut)", e.PPA)
}

// Reopen mounts an AnyKey device over an existing flash array — the
// power-cycle recovery path. Everything the design keeps in DRAM is
// *derived* state: level lists and per-page hash prefixes rebuild from the
// persistent group headers and pages, hash lists from the entities, the
// value log's fragment chains, remaps and liveness from the log pages'
// headers plus the recovered entities' pointers. Buffered (memtable) writes
// are volatile and lost unless Sync ran before the power cut, exactly as on
// a real device without a write journal; per-block wear counters are also
// reset (real devices persist them out of band) — Stats().Recovery.WearReset
// records that.
//
// Recovery tolerates a power cut at ANY flash-operation boundary, including
// mid-compaction and mid-flush:
//
//   - A torn page (the cut struck during its program) fails its integrity
//     check; in-order programming makes it the last written page of its
//     block, so recovery skips it as unwritten. Integrity failures anywhere
//     else return a *CorruptPageError.
//   - A level mounts only its newest COMPLETE rebuild epoch: groups carry
//     {epoch, index, last-flag} so a half-written rebuild is detected and the
//     previous epoch mounts instead (its pages are only invalidated after
//     the new epoch is durable — see compactInto).
//   - A level whose consumed input outlived a completed merge into the next
//     level (the cut struck between the merge's durability and the input's
//     release) is recognised by the adjacent-epoch rule and discarded.
//   - Value-log pointers whose pages never became durable are marked lost;
//     reads fall through to the key's older, durable version.
func Reopen(cfg Config, arr *nand.Array) (*Device, error) {
	cfg.Defaults()
	if arr.Geometry() != cfg.Geometry {
		return nil, fmt.Errorf("core: reopen geometry %+v does not match config %+v",
			arr.Geometry(), cfg.Geometry)
	}
	pool := ftl.NewPool(arr)
	d := &Device{
		cfg:          cfg,
		arr:          arr,
		pool:         pool,
		mem:          dram.New(cfg.DRAMBytes),
		mt:           memtable.New(cfg.Seed),
		groupStreams: make(map[int]*ftl.RunStream),
		groupsAt:     make(map[nand.BlockID][]*group),
		st:           device.NewStats(),
	}
	if !cfg.NoValueLog {
		maxLogBlocks := int(float64(pool.TotalBlocks()) * cfg.LogFraction)
		if maxLogBlocks < 2 {
			maxLogBlocks = 2
		}
		d.vlog = newVlog(d, maxLogBlocks)
	}
	d.mem.MustReserve("memtable", cfg.MemtableBytes)
	// The array keeps the payload store it was created with (cfg.Memory is
	// fixed at device creation); only the arena policy is re-derived.
	d.gsc.arena = nand.NewPageArena(cfg.Geometry.PageSize, 2*cfg.GroupPages, !arr.Retains())
	d.st.Flash = func() nand.Counters { return arr.Counters() }
	d.st.DRAMCapacity = func() int64 { return d.mem.Capacity() }
	d.st.DRAMUsed = func() int64 { return d.mem.Used() }
	d.st.Wear = func() ftl.WearStats { return pool.WearStats() }
	d.tr = cfg.Tracer
	// The mount scan flows through the ordinary flash read path; the scope
	// relabels its events from "meta" to "recovery" for the trace consumers.
	d.tr.EnterScope(trace.CauseRecovery)
	err := d.recover()
	d.tr.ExitScope()
	if err != nil {
		return nil, err
	}
	d.tr.Instant(trace.BGTrack(trace.CauseRecovery), trace.EvRecovery,
		trace.CauseRecovery, 0, int64(d.st.Recovery.TornPagesSkipped))
	return d, nil
}

// foundGroup is one group-header sighting from the recovery scan.
type foundGroup struct {
	hdr      groupHeader
	firstPPA nand.PPA
	intact   bool // all hdr.pages pages written and untorn
}

// recover scans the flash array and rebuilds the DRAM state.
func (d *Device) recover() error {
	geo := d.cfg.Geometry
	d.st.Recovery.Recovered = true
	d.st.Recovery.WearReset = true

	var groups []foundGroup
	var logPages []logPageRef
	blockRegion := make([]ftl.Region, geo.Blocks())
	torn := make(map[nand.PPA]bool)

	// Pass 1: identify every written page by its persistent header. The
	// scan charges one read per written page at the mount instant (the
	// device is offline; only the counters matter).
	for b := 0; b < geo.Blocks(); b++ {
		for p := 0; p < geo.PagesPerBlock; p++ {
			ppa := d.arr.PageOf(nand.BlockID(b), p)
			if !d.arr.Written(ppa) {
				break // blocks program in order; the tail is unwritten
			}
			d.arr.Read(0, ppa, nand.CauseMeta)
			if !kv.OpenPage(d.arr.PageData(ppa)).Verify() {
				last := p == geo.PagesPerBlock-1 || !d.arr.Written(ppa+1)
				if !last {
					return &CorruptPageError{PPA: ppa}
				}
				// Torn in-flight program: skip as if unwritten.
				torn[ppa] = true
				d.st.Recovery.TornPagesSkipped++
				if blockRegion[b] == ftl.RegionNone {
					blockRegion[b] = ftl.RegionData
				}
				continue
			}
			extra := kv.OpenPage(d.arr.PageData(ppa)).Extra()
			if hdr, ok := readGroupHeader(extra); ok {
				groups = append(groups, foundGroup{hdr: hdr, firstPPA: ppa})
				blockRegion[b] = ftl.RegionData
			} else if seq, logical, ok := readLogPageHeader(extra); ok {
				logPages = append(logPages, logPageRef{seq: seq, logical: logical, phys: ppa})
				if blockRegion[b] == ftl.RegionNone {
					blockRegion[b] = ftl.RegionLog
				}
			} else if blockRegion[b] == ftl.RegionNone {
				// Entity or continuation page: data region.
				blockRegion[b] = ftl.RegionData
			}
		}
	}

	// A group is usable only when every one of its pages survives: a program
	// failure or a power cut leaves truncated copies behind (retries re-issue
	// the whole group elsewhere), and a torn tail page voids its run.
	for i := range groups {
		fg := &groups[i]
		fg.intact = true
		for p := 0; p < fg.hdr.pages; p++ {
			ppa := fg.firstPPA + nand.PPA(p)
			if int64(ppa) >= int64(geo.Pages()) || !d.arr.Written(ppa) || torn[ppa] {
				fg.intact = false
				break
			}
		}
	}

	// Per level, mount only the newest COMPLETE epoch: all indices 0..n-1
	// present and intact, with the last-group flag on index n-1. GC may leave
	// duplicate intact copies of a group (relocation's source survives until
	// erase); the lowest PPA wins, deterministically.
	chosen, mounted, discarded := selectEpochs(groups)

	// Adjacent-epoch supersede: a merge of level L into L+1 consumes L's
	// groups, but a cut between the new L+1 epoch's durability and the
	// release of L's pages leaves both on flash. The consumed input is
	// recognisable by its epoch: every LIVE level is rebuilt after anything
	// beneath it that consumed it, so chosen[L] < chosen[L+1] can only mean
	// L's content already lives inside L+1's newer epoch. Only adjacent
	// levels compare — a deep log-triggered compaction legitimately leaves
	// shallower levels with older epochs.
	maxLevel := 0
	for l := range chosen {
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := 1; l < maxLevel; l++ {
		if _, ok := chosen[l]; !ok {
			continue
		}
		if next, ok := chosen[l+1]; ok && chosen[l] < next {
			delete(mounted, l)
			discarded++
		}
	}
	d.st.Recovery.StaleEpochsDiscarded += discarded

	// d.epoch continues past everything ever written, discarded or not.
	for _, fg := range groups {
		if fg.hdr.epoch >= d.epoch {
			d.epoch = fg.hdr.epoch + 1
		}
	}

	// Adopt block ownership before marking pages valid. Grown-bad blocks
	// holding live pages are re-owned (Pool.Adopt accepts them); bad blocks
	// with nothing on them stay parked in RegionBad.
	for b, r := range blockRegion {
		if r != ftl.RegionNone {
			d.pool.Adopt(nand.BlockID(b), r)
		}
	}

	// Rebuild the value-log stream state first (remaps, fragment chains),
	// so group adoption can account value liveness.
	if d.vlog != nil {
		d.recoverLog(logPages)
	}

	// Pass 2: reconstruct the chosen groups and install them into levels.
	for len(d.levels) < maxLevel {
		d.levels = append(d.levels, &level{})
	}
	for l, fgs := range mounted {
		lv := d.levels[l-1]
		for _, fg := range fgs {
			g, err := d.adoptGroup(fg.hdr, fg.firstPPA)
			if err != nil {
				return err
			}
			lv.groups = append(lv.groups, g)
			lv.bytes += g.physBytes
		}
	}
	for _, lv := range d.levels {
		slices.SortFunc(lv.groups, func(a, b *group) int {
			return kv.Compare(a.smallest, b.smallest)
		})
	}
	d.recLogPages = nil
	d.recountLive()
	return nil
}

// recountLive re-derives LiveKeys/LiveBytes from the mounted tree. The write
// path maintains them incrementally, so recovery only has to establish the
// starting point. Shadowing matches the read path: the shallowest level's
// version of a key decides, except that a lost log value falls through to
// the next level, and a deciding tombstone means dead. Pages were all read
// during the recovery scan, so this pass decodes from the array image
// without charging further flash traffic.
func (d *Device) recountLive() {
	decided := make(map[string]bool)
	for _, lv := range d.levels {
		for _, g := range lv.groups {
			imgs := make([][]byte, g.numPages)
			for p := 0; p < g.numPages; p++ {
				imgs[p] = d.arr.PageData(g.firstPPA + nand.PPA(p))
			}
			table := readLocationTable(imgs[:g.tablePages], g.count)
			for _, loc := range table {
				e, err := kv.OpenPage(imgs[g.tablePages+int(loc.Page)]).Entity(int(loc.Rec))
				if err != nil {
					panic(err)
				}
				if decided[string(e.Key)] {
					continue
				}
				if e.InLog && d.vlog.isLost(e.LogPtr) {
					continue // unreadable version: a deeper level decides
				}
				decided[string(e.Key)] = true
				if !e.Tombstone {
					d.st.LiveKeys++
					d.st.LiveBytes += int64(len(e.Key)) + int64(e.Len())
				}
			}
		}
	}
}

// selectEpochs picks, per level, the newest complete epoch's groups (one
// copy per index). It returns the chosen epoch per level, the groups to
// mount, and how many distinct (level, epoch) rebuilds were discarded as
// incomplete or superseded.
func selectEpochs(groups []foundGroup) (chosen map[int]uint32, mounted map[int][]foundGroup, discarded int64) {
	// level → epoch → index → best copy.
	byLevel := make(map[int]map[uint32]map[int]foundGroup)
	for _, fg := range groups {
		epochs := byLevel[fg.hdr.level]
		if epochs == nil {
			epochs = make(map[uint32]map[int]foundGroup)
			byLevel[fg.hdr.level] = epochs
		}
		byIdx := epochs[fg.hdr.epoch]
		if byIdx == nil {
			byIdx = make(map[int]foundGroup)
			epochs[fg.hdr.epoch] = byIdx
		}
		prev, ok := byIdx[fg.hdr.index]
		switch {
		case !ok:
			byIdx[fg.hdr.index] = fg
		case fg.intact && !prev.intact:
			byIdx[fg.hdr.index] = fg
		case fg.intact == prev.intact && fg.firstPPA < prev.firstPPA:
			byIdx[fg.hdr.index] = fg
		}
	}

	chosen = make(map[int]uint32)
	mounted = make(map[int][]foundGroup)
	for l, epochs := range byLevel {
		var order []uint32
		for e := range epochs {
			order = append(order, e)
		}
		slices.SortFunc(order, func(a, b uint32) int {
			switch {
			case a > b:
				return -1
			case a < b:
				return 1
			}
			return 0
		})
		for _, e := range order {
			if fgs, ok := completeEpoch(epochs[e]); ok {
				chosen[l] = e
				mounted[l] = fgs
				break
			}
		}
		discarded += int64(len(order))
		if _, ok := chosen[l]; ok {
			discarded--
		}
	}
	return chosen, mounted, discarded
}

// completeEpoch reports whether the epoch's intact copies form the full
// index sequence 0..n-1 ending in the last-group flag, returning them in
// index order.
func completeEpoch(byIdx map[int]foundGroup) ([]foundGroup, bool) {
	n := -1
	for idx, fg := range byIdx {
		if fg.intact && fg.hdr.last && idx+1 > n {
			n = idx + 1
		}
	}
	if n < 0 {
		return nil, false
	}
	out := make([]foundGroup, 0, n)
	for i := 0; i < n; i++ {
		fg, ok := byIdx[i]
		if !ok || !fg.intact {
			return nil, false
		}
		out = append(out, fg)
	}
	return out, true
}

// logPageRef locates one recovered log page: its position in the append
// stream, the logical (pointer-visible) address persisted in its header,
// and the physical page it was scanned from (different only when a program
// failure remapped the sealed image into a fresh block).
type logPageRef struct {
	seq           uint64
	logical, phys nand.PPA
}

// recoverLog replays the log pages in sequence order, rebuilding the
// logical→physical remap table and the fragment chains. Liveness starts at
// zero; adoptGroup adds back the bytes that surviving entities reference.
func (d *Device) recoverLog(pages []logPageRef) {
	d.recLogPages = make(map[nand.PPA]bool, len(pages))
	for _, lp := range pages {
		if lp.logical != lp.phys {
			d.vlog.remap[lp.logical] = lp.phys
		}
		d.recLogPages[lp.logical] = true
	}
	slices.SortFunc(pages, func(a, b logPageRef) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	var pendingPtr uint64 // fragment awaiting its continuation
	var remaining uint64  // bytes still owed to the value being assembled
	for _, lp := range pages {
		pr := kv.OpenPage(d.arr.PageData(lp.phys))
		for slot := 0; slot < pr.Count(); slot++ {
			ptr := uint64(lp.logical)<<16 | uint64(slot)
			first, total, chunk := d.vlog.fragChunk(ptr)
			switch {
			case first:
				// A dead value's chain may dangle when its later pages were
				// erased; a fresh first fragment simply abandons it.
				remaining = total
			case remaining > 0:
				d.vlog.contMap[pendingPtr] = ptr
			default:
				// Orphan continuation: its head page was erased, so the
				// value is dead; skip.
				continue
			}
			if uint64(len(chunk)) > remaining {
				remaining = 0 // defensive: never underflow on torn chains
			} else {
				remaining -= uint64(len(chunk))
			}
			pendingPtr = ptr
		}
		if lp.seq >= d.vlog.seq {
			d.vlog.seq = lp.seq + 1
		}
	}
}

// adoptGroup rebuilds one group's descriptor from its flash pages.
func (d *Device) adoptGroup(hdr groupHeader, firstPPA nand.PPA) (*group, error) {
	g := &group{
		firstPPA:    firstPPA,
		numPages:    hdr.pages,
		tablePages:  hdr.tablePages,
		count:       hdr.count,
		physBytes:   int64(hdr.pages) * int64(d.cfg.Geometry.PageSize),
		firstHash16: make([]uint16, hdr.pages-hdr.tablePages),
	}
	imgs := make([][]byte, hdr.pages)
	for p := 0; p < hdr.pages; p++ {
		ppa := firstPPA + nand.PPA(p)
		if !d.arr.Written(ppa) {
			return nil, fmt.Errorf("core: recover: group at %d truncated at page %d", firstPPA, p)
		}
		imgs[p] = d.arr.PageData(ppa)
		d.pool.MarkValid(ppa)
	}
	hashes := make([]uint32, 0, hdr.count)
	for p := 0; p < g.entityPages(); p++ {
		pr := kv.OpenPage(imgs[hdr.tablePages+p])
		for i := 0; i < pr.Count(); i++ {
			e, err := pr.Entity(i)
			if err != nil {
				return nil, fmt.Errorf("core: recover: corrupt entity in group %d: %w", firstPPA, err)
			}
			if i == 0 {
				g.firstHash16[p] = uint16(e.Hash >> 16)
			}
			hashes = append(hashes, e.Hash)
			g.bytes += int64(len(e.Key)) + int64(e.Len())
			if e.InLog {
				if d.recoverLogLiveness(e.LogPtr, e.ValueLen) {
					g.logBytes += int64(e.ValueLen)
				}
			}
		}
	}
	// The smallest key is the location table's first entry.
	table := readLocationTable(imgs[:hdr.tablePages], hdr.count)
	if len(table) > 0 {
		pr := kv.OpenPage(imgs[hdr.tablePages+int(table[0].Page)])
		e, err := pr.Entity(int(table[0].Rec))
		if err != nil {
			return nil, err
		}
		g.smallest = append([]byte(nil), e.Key...)
	}
	slices.Sort(hashes)
	b := d.arr.BlockOf(firstPPA)
	d.groupsAt[b] = append(d.groupsAt[b], g)
	d.mem.MustReserve(dramLevelLabel, g.entryBytes())
	if !d.cfg.NoHashLists && d.mem.Reserve(dramHashLabel, int64(4*len(hashes))) {
		g.hashes = hashes
	}
	return g, nil
}

// recoverLogLiveness restores the valid-byte accounting of a value's
// fragment chain, walk-then-commit: the whole chain is resolved first, and
// only a fully durable chain contributes liveness. A broken chain — its
// page never became durable before the power cut, was torn by it, or (after
// the documented early-release escape hatch, see spillConsumable) was even
// reclaimed and rewritten — marks the pointer LOST instead: the entity
// stays in its group but reads treat it as absent and fall through to the
// key's older version. It reports whether the value is live.
func (d *Device) recoverLogLiveness(ptr uint64, valLen int) bool {
	if d.vlog.isLost(ptr) {
		return false
	}
	type fragRef struct {
		ppa nand.PPA
		n   int64
	}
	var frags []fragRef
	cur := ptr
	remaining := uint64(valLen)
	for {
		ppa := nand.PPA(cur >> 16)
		if !d.recLogPages[ppa] {
			break // page never became durable (or was reclaimed)
		}
		first, total, chunk, ok := d.vlog.fragChunkOK(cur)
		if !ok {
			break
		}
		if cur == ptr && (!first || total != uint64(valLen)) {
			break // slot reused by an unrelated value: the original is gone
		}
		frags = append(frags, fragRef{ppa: ppa, n: int64(len(chunk))})
		if uint64(len(chunk)) >= remaining {
			// Chain complete: commit liveness.
			for _, f := range frags {
				if d.vlog.pageValid[f.ppa] == 0 {
					d.pool.MarkValid(d.vlog.phys(f.ppa))
				}
				d.vlog.pageValid[f.ppa] += f.n
			}
			return true
		}
		remaining -= uint64(len(chunk))
		next, ok := d.vlog.contMap[cur]
		if !ok {
			break
		}
		cur = next
	}
	d.vlog.lost[ptr] = struct{}{}
	d.st.Recovery.LostLogValues++
	return false
}
