package core

import (
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// AnyKey garbage collection (§4.4): victims are relocated at data-segment-
// group granularity — the whole run of pages moves and only the group's
// first-page PPA in its level-list entry changes. Because a compaction
// invalidates its input groups together, and groups written together share
// blocks, most victims hold no valid data at all and are erased in place;
// the paper's Table 3 shows AnyKey's GC traffic at (or near) zero.
//
// Unlike PinK, this GC never consults records, so it is safe to run at any
// point, including in the middle of a compaction's writes.

// ensureFree brings the free-block count to the reserve plus extra. Each
// round must grow the pool: relocating groups out of nearly full victims
// consumes destination blocks, and on a truly full device that treadmill
// makes no net progress — a few stalled rounds mean the device is full.
func (d *Device) ensureFree(at sim.Time, extra int) (sim.Time, error) {
	need := d.cfg.FreeBlockReserve + extra
	now := at
	stalls := 0
	for d.pool.FreeBlocks() < need {
		before := d.pool.FreeBlocks()
		t, reclaimed := d.reclaimEmpty(now)
		now = t
		if d.pool.FreeBlocks() >= need {
			break
		}
		t, progress, err := d.gcOnce(now)
		now = t
		if err != nil {
			return now, err
		}
		if !progress && !reclaimed {
			if d.spillConsumable() {
				continue
			}
			return now, kv.ErrDeviceFull
		}
		if d.pool.FreeBlocks() <= before {
			stalls++
			if stalls >= 8 {
				if d.spillConsumable() {
					stalls = 0
					continue
				}
				return now, kv.ErrDeviceFull
			}
		} else {
			stalls = 0
		}
	}
	return now, nil
}

// spillConsumable is the escape hatch for terminal space pressure inside a
// compaction unit: the crash-consistency deferrals (input groups parked on
// d.consumable, queued log invalidations) pin flash that GC could otherwise
// reclaim. Releasing them early shrinks the recovery window — a power cut
// between here and the unit's end loses the previous level epochs — but the
// alternative is reporting a full device that is not actually full. The
// trade is documented in DESIGN.md.
func (d *Device) spillConsumable() bool {
	if len(d.consumable) == 0 && len(d.pendingInval) == 0 {
		return false
	}
	d.releaseConsumed()
	d.drainInval()
	return true
}

// reclaimEmpty erases every fully dead block in the group area and the
// value log.
func (d *Device) reclaimEmpty(at sim.Time) (sim.Time, bool) {
	now := at
	reclaimed := false
	for {
		b, ok := d.pool.VictimBelow(ftl.RegionData, 0)
		if !ok {
			break
		}
		now = d.pool.Release(now, b, nand.CauseGC)
		reclaimed = true
	}
	if d.vlog != nil {
		t, freed := d.vlog.reclaim(now)
		now = t
		reclaimed = reclaimed || freed
	}
	return now, reclaimed
}

// gcOnce relocates the group-area victim with the fewest valid pages.
func (d *Device) gcOnce(at sim.Time) (sim.Time, bool, error) {
	b, ok := d.pool.Victim(ftl.RegionData)
	if !ok {
		return at, false, nil
	}
	if d.pool.ValidPages(b) >= d.cfg.Geometry.PagesPerBlock {
		return at, false, nil // nothing to gain
	}
	d.st.GCRuns++
	now := at
	// Relocate every group resident in the victim block, whole-group moves.
	groups := append([]*group(nil), d.groupsAt[b]...)
	for _, g := range groups {
		t, err := d.relocateGroup(now, g)
		if err != nil {
			return t, false, err
		}
		now = t
	}
	if len(d.groupsAt[b]) != 0 {
		panic("core: victim block still hosts groups after relocation")
	}
	if d.pool.ValidPages(b) != 0 {
		panic("core: victim block still has valid pages after relocation")
	}
	end := d.pool.Release(now, b, nand.CauseGC)
	if d.tr != nil {
		d.tr.Span(trace.BGTrack(trace.CauseGC), trace.EvGC,
			trace.CauseGC, at, at, end, int64(b))
	}
	return end, true, nil
}

// relocateGroup copies one group to a fresh contiguous run and updates its
// level-list entry's PPA.
func (d *Device) relocateGroup(at sim.Time, g *group) (sim.Time, error) {
	now := at
	imgs := make([][]byte, g.numPages)
	for p := 0; p < g.numPages; p++ {
		ppa := g.firstPPA + nand.PPA(p)
		now = sim.Max(now, d.arr.Read(at, ppa, nand.CauseGC))
		imgs[p] = d.arr.PageData(ppa)
	}
	// Allocate the new run directly from the GC stream; GC must not recurse
	// into itself, so a failure here (the reserve exists precisely to
	// prevent it) ends the operation. A program failure retires the
	// destination block as grown-bad and re-issues the whole copy elsewhere.
	var dst nand.PPA
	writeDone := now
	for {
		var ok bool
		dst, ok = d.groupStream(0).NextRun(g.numPages)
		if !ok {
			return now, kv.ErrDeviceFull
		}
		writeDone = now
		failedAt := -1
		for p, img := range imgs {
			// Page images are immutable once programmed; the same buffers are
			// programmed at the new location.
			t, err := d.arr.Program(now, dst+nand.PPA(p), img, nand.CauseGC)
			writeDone = sim.Max(writeDone, t)
			if err != nil {
				failedAt = p
				break
			}
			d.pool.MarkValid(dst + nand.PPA(p))
		}
		if failedAt < 0 {
			break
		}
		for p := 0; p < failedAt; p++ {
			d.pool.MarkInvalid(dst + nand.PPA(p))
		}
		d.groupStream(0).Close()
	}
	d.st.GCRelocations += int64(g.numPages)

	// Detach from the old block.
	oldBlock := d.arr.BlockOf(g.firstPPA)
	for p := 0; p < g.numPages; p++ {
		d.pool.MarkInvalid(g.firstPPA + nand.PPA(p))
	}
	gs := d.groupsAt[oldBlock]
	for i, og := range gs {
		if og == g {
			d.groupsAt[oldBlock] = append(gs[:i], gs[i+1:]...)
			break
		}
	}
	if len(d.groupsAt[oldBlock]) == 0 {
		delete(d.groupsAt, oldBlock)
	}

	g.firstPPA = dst
	newBlock := d.arr.BlockOf(dst)
	d.groupsAt[newBlock] = append(d.groupsAt[newBlock], g)
	return writeDone, nil
}
