package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/xxhash"
)

func makeEntities(n int, keyLen, valLen int, seed int64) []kv.Entity {
	rng := rand.New(rand.NewSource(seed))
	ents := make([]kv.Entity, n)
	for i := range ents {
		key := []byte(fmt.Sprintf("%0*d", keyLen, i*7))
		val := make([]byte, valLen)
		rng.Read(val)
		ents[i] = kv.Entity{Key: key, Hash: xxhash.Sum32(key), Value: val, ValueLen: valLen}
	}
	return ents
}

func TestGroupLayoutArithmetic(t *testing.T) {
	ents := makeEntities(100, 12, 40, 1)
	pages, ok := groupLayout(ents, 100, 1024, 32)
	if !ok || pages <= 0 {
		t.Fatalf("layout failed: %d %v", pages, ok)
	}
	// More entities cannot use fewer pages.
	p50, _ := groupLayout(ents, 50, 1024, 32)
	if p50 > pages {
		t.Fatalf("50 entities use %d pages, 100 use %d", p50, pages)
	}
	// An entity larger than a page is rejected.
	big := []kv.Entity{{Key: []byte("k"), Value: make([]byte, 2000)}}
	if _, ok := groupLayout(big, 1, 1024, 32); ok {
		t.Fatal("oversized entity accepted")
	}
}

func TestTakeGroupRespectsMaxPages(t *testing.T) {
	ents := makeEntities(3000, 12, 40, 2)
	cut := takeGroup(ents, 1024, 8)
	if cut <= 0 || cut > len(ents) {
		t.Fatalf("cut = %d", cut)
	}
	pages, ok := groupLayout(ents, cut, 1024, 8)
	if !ok {
		t.Fatal("selected prefix does not fit")
	}
	if pages > 8 {
		t.Fatalf("selected prefix uses %d pages > 8", pages)
	}
	if cut < len(ents) {
		if _, ok := groupLayout(ents, cut+1, 1024, 8); ok {
			t.Fatal("takeGroup left room on the table")
		}
	}
}

func TestBuildGroupRoundTrip(t *testing.T) {
	ents := makeEntities(200, 12, 30, 3)
	bg := buildGroup(ents, 1024, nil)
	g := bg.g
	if g.count != 200 || len(bg.pages) != g.numPages {
		t.Fatalf("group: count=%d pages=%d/%d", g.count, len(bg.pages), g.numPages)
	}
	if string(g.smallest) != string(ents[0].Key) {
		t.Fatalf("smallest = %q", g.smallest)
	}
	// The location table must enumerate all entities in key order.
	table := readLocationTable(bg.pages[:g.tablePages], g.count)
	var prev []byte
	for i, loc := range table {
		pr := kv.OpenPage(bg.pages[g.tablePages+int(loc.Page)])
		e, err := pr.Entity(int(loc.Rec))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && kv.Compare(prev, e.Key) >= 0 {
			t.Fatalf("location table not key-sorted at %d", i)
		}
		prev = append(prev[:0], e.Key...)
	}
	// Entities within each page must be hash-sorted, and page first-hashes
	// must match the descriptor.
	for p := 0; p < g.entityPages(); p++ {
		pr := kv.OpenPage(bg.pages[g.tablePages+p])
		var prevHash uint32
		for i := 0; i < pr.Count(); i++ {
			e, err := pr.Entity(i)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				if xxhash.Prefix16(e.Hash) != g.firstHash16[p] {
					t.Fatalf("page %d firstHash16 mismatch", p)
				}
			} else if e.Hash < prevHash {
				t.Fatalf("page %d not hash-sorted at %d", p, i)
			}
			prevHash = e.Hash
		}
	}
	// Hash list must be sorted and complete.
	if len(bg.entityHashes) != 200 {
		t.Fatalf("entityHashes has %d entries", len(bg.entityHashes))
	}
	if !sort.SliceIsSorted(bg.entityHashes, func(a, b int) bool { return bg.entityHashes[a] < bg.entityHashes[b] }) {
		t.Fatal("entityHashes not sorted")
	}
}

// Force hash collisions spanning page boundaries and verify the collision
// bits are set (Fig. 7).
func TestBuildGroupCollisionBits(t *testing.T) {
	// Many entities with the SAME hash, big enough to span pages.
	var ents []kv.Entity
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("collide-%04d", i))
		ents = append(ents, kv.Entity{Key: key, Hash: 0xABCD1234, Value: make([]byte, 60)})
	}
	sort.Slice(ents, func(a, b int) bool { return kv.Compare(ents[a].Key, ents[b].Key) < 0 })
	bg := buildGroup(ents, 1024, nil)
	g := bg.g
	if g.entityPages() < 2 {
		t.Fatalf("collision run fits one page (%d); test needs spanning", g.entityPages())
	}
	for p := 0; p < g.entityPages(); p++ {
		aux := kv.OpenPage(bg.pages[g.tablePages+p]).Aux()
		if p+1 < g.entityPages() && aux&auxContinuesNext == 0 {
			t.Fatalf("page %d missing continues-next bit", p)
		}
		if p > 0 && aux&auxContinuesPrev == 0 {
			t.Fatalf("page %d missing continues-prev bit", p)
		}
	}
}

// Property: buildGroup handles arbitrary entity size mixes and the table is
// always consistent.
func TestBuildGroupProperty(t *testing.T) {
	f := func(seed int64, n uint8, valSize uint8) bool {
		count := int(n)%150 + 1
		ents := makeEntities(count, 10, int(valSize)%100+1, seed)
		bg := buildGroup(ents, 1024, nil)
		if bg.g.count != count {
			return false
		}
		table := readLocationTable(bg.pages[:bg.g.tablePages], count)
		seen := map[string]bool{}
		for _, loc := range table {
			pr := kv.OpenPage(bg.pages[bg.g.tablePages+int(loc.Page)])
			e, err := pr.Entity(int(loc.Rec))
			if err != nil {
				return false
			}
			seen[string(e.Key)] = true
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEntryBytes(t *testing.T) {
	g := &group{smallest: []byte("0123456789"), firstHash16: make([]uint16, 8)}
	if g.entryBytes() != 10+8+16+16 {
		t.Fatalf("entryBytes = %d", g.entryBytes())
	}
	g.hashes = make([]uint32, 100)
	if g.hashListBytes() != 400 {
		t.Fatalf("hashListBytes = %d", g.hashListBytes())
	}
}

func TestHashContains(t *testing.T) {
	g := &group{hashes: []uint32{1, 5, 5, 9, 100}}
	for _, h := range []uint32{1, 5, 9, 100} {
		if !g.hashContains(h) {
			t.Fatalf("hashContains(%d) = false", h)
		}
	}
	for _, h := range []uint32{0, 2, 99, 101} {
		if g.hashContains(h) {
			t.Fatalf("hashContains(%d) = true", h)
		}
	}
}

func TestLevelFindGroup(t *testing.T) {
	lv := &level{groups: []*group{
		{smallest: []byte("b")},
		{smallest: []byte("m")},
		{smallest: []byte("t")},
	}}
	if lv.findGroup([]byte("a")) != nil {
		t.Fatal("key below all groups found one")
	}
	if g := lv.findGroup([]byte("b")); g != lv.groups[0] {
		t.Fatal("exact smallest not matched")
	}
	if g := lv.findGroup([]byte("p")); g != lv.groups[1] {
		t.Fatal("mid key mapped wrong")
	}
	if g := lv.findGroup([]byte("zzz")); g != lv.groups[2] {
		t.Fatal("tail key mapped wrong")
	}
}

func TestBigTableSpillsPages(t *testing.T) {
	// Tiny values force thousands of entities per group; the location table
	// must spill beyond one page.
	ents := makeEntities(2000, 10, 2, 9)
	bg := buildGroup(ents, 1024, nil)
	wantTable := (2000*locEntrySize + tableChunk(1024) - 1) / tableChunk(1024)
	if bg.g.tablePages != wantTable || bg.g.tablePages < 2 {
		t.Fatalf("tablePages = %d, want %d (≥2)", bg.g.tablePages, wantTable)
	}
	table := readLocationTable(bg.pages[:bg.g.tablePages], 2000)
	if len(table) != 2000 {
		t.Fatalf("table entries = %d", len(table))
	}
}

func TestSearchPageByHashStatuses(t *testing.T) {
	img := make([]byte, 1024)
	w := kv.NewPageWriter(img, nil)
	for _, h := range []uint32{10, 20, 20, 30} {
		e := kv.Entity{Key: []byte(fmt.Sprintf("k%d%p", h, &h)), Hash: h, Value: []byte("v")}
		// unique-ish keys: use the loop index embedded
		e.Key = []byte(fmt.Sprintf("k-%d-%d", h, w.Count()))
		if !w.AppendEntity(&e) {
			t.Fatal("append failed")
		}
	}
	pr := kv.OpenPage(img)

	if _, st := searchPageByHash(pr, []byte("k-20-1"), 20); st != pageHit {
		t.Fatalf("exact key: %v", st)
	}
	if _, st := searchPageByHash(pr, []byte("other"), 20); st != pageMiss {
		t.Fatalf("hash present, key absent: %v", st)
	}
	if _, st := searchPageByHash(pr, []byte("x"), 5); st != pageBefore {
		t.Fatalf("hash below page: %v", st)
	}
	if _, st := searchPageByHash(pr, []byte("x"), 25); st != pageMiss {
		t.Fatalf("hash between: %v", st)
	}
	if _, st := searchPageByHash(pr, []byte("x"), 99); st != pageMiss {
		t.Fatalf("hash above without continuation: %v", st)
	}
	// With the continues-next bit and a run reaching the page end:
	w2img := make([]byte, 1024)
	w2 := kv.NewPageWriter(w2img, nil)
	for i := 0; i < 3; i++ {
		e := kv.Entity{Key: []byte(fmt.Sprintf("c-%d", i)), Hash: 77, Value: []byte("v")}
		w2.AppendEntity(&e)
	}
	w2.SetAux(auxContinuesNext)
	if _, st := searchPageByHash(kv.OpenPage(w2img), []byte("c-9"), 77); st != pageContinues {
		t.Fatalf("continuation: %v", st)
	}
}

// Property: searching a built group through the hash-prefix + collision-bit
// machinery finds exactly the entities it contains, and nothing else. The
// group is installed on a real flash array so the search runs the same code
// as the device read path.
func TestGroupSearchProperty(t *testing.T) {
	cfg := smallConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var now sim.Time
	for round := 0; round < 25; round++ {
		count := 10 + rng.Intn(120)
		ents := make([]kv.Entity, 0, count)
		for i := 0; i < count; i++ {
			key := []byte(fmt.Sprintf("r%02d-%06d", round, i*3))
			ents = append(ents, kv.Entity{
				Key:   key,
				Hash:  xxhash.Sum32(key),
				Value: []byte(fmt.Sprintf("v-%d", i)),
			})
		}
		bg := buildGroup(ents, cfg.Geometry.PageSize, nil)
		ppa, err := d.nextRun(now, 1, bg.g.numPages)
		if err != nil {
			t.Fatal(err)
		}
		for p, img := range bg.pages {
			t2, err := d.arr.Program(now, ppa+nand.PPA(p), img, nand.CauseCompaction)
			if err != nil {
				t.Fatal(err)
			}
			now = sim.Max(now, t2)
			d.pool.MarkValid(ppa + nand.PPA(p))
		}
		bg.g.firstPPA = ppa

		for i := 0; i < count; i++ {
			key := []byte(fmt.Sprintf("r%02d-%06d", round, i*3))
			got, ok := d.searchGroupFree(bg.g, key, xxhash.Sum32(key))
			if !ok || string(got.Value) != fmt.Sprintf("v-%d", i) {
				t.Fatalf("round %d: present key %q not found (ok=%v)", round, key, ok)
			}
			// Absent keys between present ones must miss.
			miss := []byte(fmt.Sprintf("r%02d-%06d", round, i*3+1))
			if _, ok := d.searchGroupFree(bg.g, miss, xxhash.Sum32(miss)); ok {
				t.Fatalf("round %d: absent key %q found", round, miss)
			}
		}
	}
}
