package core

import (
	"bytes"
	"math/rand"
	"testing"

	"anykey/internal/nand"
	"anykey/internal/sim"
)

// vlogDevice builds a device whose value log we drive directly.
func vlogDevice(t *testing.T) *Device {
	t.Helper()
	cfg := smallConfig()
	cfg.LogFraction = 0.5
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestVlogAppendReadSmall(t *testing.T) {
	d := vlogDevice(t)
	v := d.vlog
	var now sim.Time
	vals := [][]byte{[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 100)}
	var ptrs []uint64
	for _, val := range vals {
		ptr, t2, err := v.append(now, val, nand.CauseFlush)
		if err != nil {
			t.Fatal(err)
		}
		now = t2
		ptrs = append(ptrs, ptr)
	}
	for i, ptr := range ptrs {
		got, _, _ := v.read(now, ptr, nand.CauseUser)
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("value %d: got %q", i, got)
		}
		if !bytes.Equal(v.peek(ptr), vals[i]) {
			t.Fatalf("peek %d mismatch", i)
		}
	}
}

// Values larger than a page must span pages via the fragment chain, with no
// page-granularity waste.
func TestVlogSpanningRecords(t *testing.T) {
	d := vlogDevice(t) // 1 KiB pages
	v := d.vlog
	rng := rand.New(rand.NewSource(3))
	var now sim.Time
	type stored struct {
		ptr uint64
		val []byte
	}
	var all []stored
	for i := 0; i < 40; i++ {
		val := make([]byte, 200+rng.Intn(3000)) // up to 3× the page size
		rng.Read(val)
		ptr, t2, err := v.append(now, val, nand.CauseFlush)
		if err != nil {
			t.Fatal(err)
		}
		now = t2
		all = append(all, stored{ptr, val})
	}
	for i, s := range all {
		got, t2, _ := v.read(now, s.ptr, nand.CauseUser)
		now = t2
		if !bytes.Equal(got, s.val) {
			t.Fatalf("spanning value %d corrupted (len %d vs %d)", i, len(got), len(s.val))
		}
	}
	// fragPages of a >page value must list multiple pages.
	big := all[0]
	for _, s := range all {
		if len(s.val) > 1200 {
			big = s
			break
		}
	}
	if pages := v.fragPages(big.ptr); len(pages) < 2 {
		t.Fatalf("a %d-byte value spans %d pages on 1 KiB pages", len(big.val), len(pages))
	}
}

func TestVlogInvalidateFreesBlocks(t *testing.T) {
	d := vlogDevice(t)
	v := d.vlog
	var now sim.Time
	var ptrs []uint64
	var lens []int
	// Fill several blocks.
	for i := 0; i < 100; i++ {
		val := bytes.Repeat([]byte{byte(i)}, 700)
		ptr, t2, err := v.append(now, val, nand.CauseFlush)
		if err != nil {
			t.Fatal(err)
		}
		now = t2
		ptrs = append(ptrs, ptr)
		lens = append(lens, len(val))
	}
	used := v.blocksUsed()
	if used < 2 {
		t.Fatalf("expected multiple log blocks, got %d", used)
	}
	for i, ptr := range ptrs {
		v.invalidate(ptr, lens[i])
	}
	now, freed := v.reclaim(now)
	if !freed {
		t.Fatal("reclaim freed nothing after full invalidation")
	}
	// Only the still-open block may remain.
	if v.blocksUsed() > 1 {
		t.Fatalf("blocks used after reclaim: %d", v.blocksUsed())
	}
	// Accounting must be clean: no page-valid residue beyond the open page.
	for ppa := range v.pageValid {
		if ppa != v.curPPA {
			t.Fatalf("stale pageValid entry for %d", ppa)
		}
	}
	if len(v.contMap) != 0 {
		t.Fatalf("contMap has %d stale entries", len(v.contMap))
	}
}

func TestVlogOpenPageReadsAreFree(t *testing.T) {
	d := vlogDevice(t)
	v := d.vlog
	ptr, now, err := v.append(0, []byte("buffered"), nand.CauseFlush)
	if err != nil {
		t.Fatal(err)
	}
	val, t2, charged := v.read(now, ptr, nand.CauseUser)
	if charged {
		t.Fatal("read of open (DRAM-buffered) page charged a flash read")
	}
	if t2 != now || string(val) != "buffered" {
		t.Fatalf("open-page read: %q at %v", val, t2)
	}
}

func TestVlogRoomForAccounting(t *testing.T) {
	d := vlogDevice(t)
	v := d.vlog
	if !v.roomFor(1000) {
		t.Fatal("fresh log reports no room")
	}
	if v.roomFor(1 << 40) {
		t.Fatal("log reports room for more than the device")
	}
}
