package core

import (
	"testing"

	"anykey/internal/kv"
	"anykey/internal/sim"
	"anykey/internal/xxhash"
)

// fillSteady loads a device with n keys and drains the memtable, so every
// subsequent Get resolves through the on-flash read path (level-list walk,
// hash list, group search, value-log read) rather than the write buffer.
func fillSteady(tb testing.TB, cfg Config, n int) (*Device, sim.Time) {
	tb.Helper()
	d, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	var now sim.Time
	for i := 0; i < n; i++ {
		t, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			tb.Fatal(err)
		}
		now = t
	}
	t, err := d.Sync(now)
	if err != nil {
		tb.Fatal(err)
	}
	return d, t
}

// TestGetZeroAllocSteadyState is the allocation budget for the read path:
// after warm-up, a GET that resolves through groups and the value log must
// allocate nothing — probes decode hashes in place, values alias flash page
// images, and timeline scheduling reuses pruned interval capacity.
func TestGetZeroAllocSteadyState(t *testing.T) {
	const n = 512
	d, now := fillSteady(t, smallConfig(), n)

	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	// Warm-up: size every timeline and touch every group once.
	for _, k := range keys {
		v, t2, err := d.Get(now, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) == 0 {
			t.Fatal("empty value")
		}
		now = t2
	}

	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		v, t2, err := d.Get(now, keys[i%n])
		if err != nil || len(v) == 0 {
			panic("steady-state Get failed")
		}
		now = t2
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get allocates %.2f objects/op, want 0", allocs)
	}
}

// TestMergeZeroAllocPerEntity is the allocation budget for compaction's
// merge: once the reusable output scratch has grown to the run size, merging
// two key-sorted runs must not allocate per entity (or at all).
func TestMergeZeroAllocPerEntity(t *testing.T) {
	d := newSmall(t, smallConfig())

	mk := func(start, step, n int) []kv.Entity {
		ents := make([]kv.Entity, 0, n)
		for i := 0; i < n; i++ {
			k := key(start + i*step)
			ents = append(ents, kv.Entity{Key: k, Hash: xxhash.Sum32(k), Value: val(start+i*step, 0)})
		}
		return ents
	}
	newer := mk(0, 2, 256)                  // even ids
	older := mk(1, 2, 256)                  // odd ids: disjoint keys, so no log invalidations
	d.mergeEntities(newer, older, 1, false) // grow the scratch once

	allocs := testing.AllocsPerRun(100, func() {
		out := d.mergeEntities(newer, older, 1, false)
		if len(out) != len(newer)+len(older) {
			panic("merge dropped entities")
		}
	})
	if allocs != 0 {
		t.Fatalf("merge allocates %.2f objects/run, want 0", allocs)
	}
}

// BenchmarkHotPathGet measures the device-level read path in isolation:
// memtable miss, group search via hash prefixes, and a value-log read.
func BenchmarkHotPathGet(b *testing.B) {
	const n = 512
	d, now := fillSteady(b, smallConfig(), n)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	for _, k := range keys {
		v, t2, err := d.Get(now, k)
		if err != nil || len(v) == 0 {
			b.Fatal("warm-up Get failed")
		}
		now = t2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, t2, err := d.Get(now, keys[i%n])
		if err != nil || len(v) == 0 {
			b.Fatal("Get failed")
		}
		now = t2
	}
}

// BenchmarkHotPathPut measures the device-level write path: memtable
// insert, and amortised over many ops the flush/value-log-append/compaction
// machinery.
func BenchmarkHotPathPut(b *testing.B) {
	const n = 512
	d, now := fillSteady(b, smallConfig(), n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % n
		t2, err := d.Put(now, key(id), val(id, 1+i/n))
		if err != nil {
			b.Fatal(err)
		}
		now = t2
	}
}

// BenchmarkHotPathMerge measures the compaction merge loop alone.
func BenchmarkHotPathMerge(b *testing.B) {
	d := newSmall(b, smallConfig())
	mk := func(start, step, n int) []kv.Entity {
		ents := make([]kv.Entity, 0, n)
		for i := 0; i < n; i++ {
			k := key(start + i*step)
			ents = append(ents, kv.Entity{Key: k, Hash: xxhash.Sum32(k), Value: val(start+i*step, 0)})
		}
		return ents
	}
	newer := mk(0, 2, 4096)
	older := mk(1, 2, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := d.mergeEntities(newer, older, 1, false); len(out) != len(newer)+len(older) {
			b.Fatal("merge dropped entities")
		}
	}
}
