package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"anykey/internal/fault"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
)

// The central recovery property: after churn + Sync + power cycle, the
// reopened device serves exactly the same data, and keeps working through
// further flushes, compactions and GC.
func TestReopenRecoversEverything(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		a := newSmall(t, cfg)
		rng := rand.New(rand.NewSource(21))
		oracle := map[string][]byte{}
		var now sim.Time
		for op := 0; op < 9000; op++ {
			i := rng.Intn(500)
			k := key(i)
			if rng.Float64() < 0.12 {
				n, err := a.Delete(now, k)
				if err != nil {
					t.Fatal(err)
				}
				now = n
				delete(oracle, string(k))
				continue
			}
			v := val(i, op)
			n, err := a.Put(now, k, v)
			if err != nil {
				t.Fatal(err)
			}
			now = n
			oracle[string(k)] = v
		}
		now, err := a.Sync(now)
		if err != nil {
			t.Fatal(err)
		}

		// Power cycle: a brand new device over the same flash array.
		b, err := Reopen(cfg, a.Array())
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range oracle {
			v, n, err := b.Get(now, []byte(k))
			now = n
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("after reopen: Get(%s) = %q, %v; want %q", k, v, err, want)
			}
		}
		// Deleted and never-written keys must stay absent.
		for i := 500; i < 520; i++ {
			if _, _, err := b.Get(now, key(i)); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("phantom key after reopen: %v", err)
			}
		}
		// Live accounting is re-derived from the mounted tree at recovery.
		if got := b.Stats().LiveKeys; got != int64(len(oracle)) {
			t.Fatalf("recovered LiveKeys = %d, oracle holds %d", got, len(oracle))
		}

		// The reopened device must keep functioning under further churn.
		for op := 0; op < 4000; op++ {
			i := rng.Intn(500)
			v := val(i, 100000+op)
			n, err := b.Put(now, key(i), v)
			if err != nil {
				t.Fatalf("post-reopen put %d: %v", op, err)
			}
			now = n
			oracle[string(key(i))] = v
		}
		for k, want := range oracle {
			v, n, err := b.Get(now, []byte(k))
			now = n
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("post-reopen churn: Get(%s) = %q, %v; want %q", k, v, err, want)
			}
		}
	})
}

// Scans must also survive a power cycle (the location tables are persistent).
func TestReopenScan(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 400; i++ {
		now, err = a.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = a.Sync(now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reopen(cfg, a.Array())
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := b.Scan(now, key(100), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 || !bytes.Equal(pairs[0].Key, key(100)) || !bytes.Equal(pairs[19].Key, key(119)) {
		t.Fatalf("scan after reopen wrong: %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if !bytes.Equal(p.Value, val(100+i, 0)) {
			t.Fatalf("scan value %d mismatch", i)
		}
	}
}

// Unsynced buffered writes are volatile: Reopen serves the last *flushed*
// version, like any device without a journal.
func TestReopenLosesUnsyncedBuffer(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 300; i++ {
		now, err = a.Put(now, key(i), val(i, 1))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = a.Sync(now)
	if err != nil {
		t.Fatal(err)
	}
	// One more write, NOT synced.
	now, err = a.Put(now, key(7), val(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reopen(cfg, a.Array())
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := b.Get(now, key(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, val(7, 1)) {
		t.Fatalf("expected the synced version, got %q", v)
	}
}

func TestReopenGeometryMismatch(t *testing.T) {
	a := newSmall(t, smallConfig())
	other := smallConfig()
	other.Geometry.PageSize = 2048
	if _, err := Reopen(other, a.Array()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestSyncEmptyBufferIsFree(t *testing.T) {
	d := newSmall(t, smallConfig())
	before := d.Array().Counters()
	now, err := d.Sync(1000)
	if err != nil || now != 1000 {
		t.Fatalf("Sync on empty buffer: %v %v", now, err)
	}
	c := d.Array().Counters()
	if c.TotalWrites() != before.TotalWrites() {
		t.Fatal("empty Sync wrote pages")
	}
}

// A disturbed flash page must fail recovery's integrity scan rather than
// decode garbage (the Seal/Verify CRC standing in for controller ECC).
func TestReopenDetectsCorruption(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 300; i++ {
		now, err = a.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err = a.Sync(now); err != nil {
		t.Fatal(err)
	}
	// Disturb one bit of the first written page we can find.
	arr := a.Array()
	for ppa := 0; ; ppa++ {
		if arr.Written(nand.PPA(ppa)) {
			arr.PageData(nand.PPA(ppa))[100] ^= 0x04
			break
		}
	}
	if _, err := Reopen(cfg, arr); err == nil {
		t.Fatal("corrupted flash accepted by recovery")
	}
}

// TestReopenAfterPowerCut sweeps a deterministic power cut across flash-op
// boundaries (several of which land mid-program, tearing the page being
// written) and checks the recovery contract at each: Reopen succeeds, every
// key committed by the last completed Sync resolves to its committed or a
// newer acknowledged version, and the device keeps working afterwards.
func TestReopenAfterPowerCut(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		// Pilot run: count the workload's total flash ops (an empty plan
		// injects nothing but still counts), then sweep cuts across them.
		pilot := fault.New(fault.Plan{})
		func() {
			a := newSmall(t, cfg)
			a.Array().SetInjector(pilot)
			churn(t, a, 3000, nil, nil)
		}()
		total := pilot.Ops()
		if total < 22 {
			t.Fatalf("pilot saw only %d flash ops", total)
		}

		tornSeen := false
		for k := int64(1); k <= 10; k++ {
			cut := total * k / 11
			a := newSmall(t, cfg)
			in := fault.New(fault.Plan{Seed: 9, CutAtOp: cut})
			a.Array().SetInjector(in)

			committed := map[string][]byte{}
			allowed := map[string][][]byte{} // acknowledged since the last Sync
			cutFired := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := fault.AsPowerCut(r); !ok {
							panic(r)
						}
						cutFired = true
					}
				}()
				churn(t, a, 3000, committed, allowed)
			}()
			if !cutFired {
				t.Fatalf("cut@%d never fired (pilot total %d)", cut, total)
			}
			var now sim.Time

			b, err := Reopen(cfg, a.Array())
			if err != nil {
				t.Fatalf("cut@%d: reopen: %v", cut, err)
			}
			rec := b.Stats().Recovery
			if !rec.Recovered || !rec.WearReset {
				t.Fatalf("cut@%d: recovery stats not set: %+v", cut, rec)
			}
			if rec.TornPagesSkipped > 0 {
				tornSeen = true
			}
			for k, want := range committed {
				v, n, err := b.Get(now, []byte(k))
				now = n
				if err != nil {
					t.Fatalf("cut@%d: committed key %s: %v (recovery %+v)", cut, k, err, rec)
				}
				ok := bytes.Equal(v, want)
				for _, newer := range allowed[k] {
					ok = ok || bytes.Equal(v, newer)
				}
				if !ok {
					t.Fatalf("cut@%d: committed key %s recovered to foreign value %q", cut, k, v)
				}
			}
			// The recovered device must accept and persist new writes.
			n, err := b.Put(now, []byte("post-cut"), []byte("alive"))
			if err != nil {
				t.Fatalf("cut@%d: post-recovery put: %v", cut, err)
			}
			if _, err := b.Sync(n); err != nil {
				t.Fatalf("cut@%d: post-recovery sync: %v", cut, err)
			}
		}
		if !tornSeen {
			t.Error("no cut in the sweep tore a page — sweep too coarse to exercise torn-tail handling")
		}
	})
}

// churn drives the fixed put/sync workload TestReopenAfterPowerCut uses.
// committed/allowed (either may be nil) receive the oracle state: the last
// version per key at each completed Sync, and everything acknowledged — or
// in flight — since. Versions are recorded BEFORE issuing, because a cut may
// land after a write became partially durable.
func churn(t *testing.T, a *Device, ops int, committed map[string][]byte, allowed map[string][][]byte) {
	t.Helper()
	if allowed == nil {
		allowed = map[string][][]byte{}
	}
	rng := rand.New(rand.NewSource(33))
	var now sim.Time
	for op := 0; op < ops; op++ {
		i := rng.Intn(120)
		k, v := key(i), val(i, op)
		allowed[string(k)] = append(allowed[string(k)], v)
		n, err := a.Put(now, k, v)
		if err != nil {
			t.Fatal(err)
		}
		now = n
		if op%250 == 249 {
			n, err := a.Sync(now)
			if err != nil {
				t.Fatal(err)
			}
			now = n
			if committed != nil {
				for k, vers := range allowed {
					committed[k] = vers[len(vers)-1]
				}
			}
			for k := range allowed {
				delete(allowed, k)
			}
		}
	}
}
