package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
)

// The central recovery property: after churn + Sync + power cycle, the
// reopened device serves exactly the same data, and keeps working through
// further flushes, compactions and GC.
func TestReopenRecoversEverything(t *testing.T) {
	variants(t, func(t *testing.T, cfg Config) {
		a := newSmall(t, cfg)
		rng := rand.New(rand.NewSource(21))
		oracle := map[string][]byte{}
		var now sim.Time
		for op := 0; op < 9000; op++ {
			i := rng.Intn(500)
			k := key(i)
			if rng.Float64() < 0.12 {
				n, err := a.Delete(now, k)
				if err != nil {
					t.Fatal(err)
				}
				now = n
				delete(oracle, string(k))
				continue
			}
			v := val(i, op)
			n, err := a.Put(now, k, v)
			if err != nil {
				t.Fatal(err)
			}
			now = n
			oracle[string(k)] = v
		}
		now, err := a.Sync(now)
		if err != nil {
			t.Fatal(err)
		}

		// Power cycle: a brand new device over the same flash array.
		b, err := Reopen(cfg, a.Array())
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range oracle {
			v, n, err := b.Get(now, []byte(k))
			now = n
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("after reopen: Get(%s) = %q, %v; want %q", k, v, err, want)
			}
		}
		// Deleted and never-written keys must stay absent.
		for i := 500; i < 520; i++ {
			if _, _, err := b.Get(now, key(i)); !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("phantom key after reopen: %v", err)
			}
		}

		// The reopened device must keep functioning under further churn.
		for op := 0; op < 4000; op++ {
			i := rng.Intn(500)
			v := val(i, 100000+op)
			n, err := b.Put(now, key(i), v)
			if err != nil {
				t.Fatalf("post-reopen put %d: %v", op, err)
			}
			now = n
			oracle[string(key(i))] = v
		}
		for k, want := range oracle {
			v, n, err := b.Get(now, []byte(k))
			now = n
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("post-reopen churn: Get(%s) = %q, %v; want %q", k, v, err, want)
			}
		}
	})
}

// Scans must also survive a power cycle (the location tables are persistent).
func TestReopenScan(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 400; i++ {
		now, err = a.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = a.Sync(now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reopen(cfg, a.Array())
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := b.Scan(now, key(100), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 || !bytes.Equal(pairs[0].Key, key(100)) || !bytes.Equal(pairs[19].Key, key(119)) {
		t.Fatalf("scan after reopen wrong: %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if !bytes.Equal(p.Value, val(100+i, 0)) {
			t.Fatalf("scan value %d mismatch", i)
		}
	}
}

// Unsynced buffered writes are volatile: Reopen serves the last *flushed*
// version, like any device without a journal.
func TestReopenLosesUnsyncedBuffer(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 300; i++ {
		now, err = a.Put(now, key(i), val(i, 1))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = a.Sync(now)
	if err != nil {
		t.Fatal(err)
	}
	// One more write, NOT synced.
	now, err = a.Put(now, key(7), val(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reopen(cfg, a.Array())
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := b.Get(now, key(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, val(7, 1)) {
		t.Fatalf("expected the synced version, got %q", v)
	}
}

func TestReopenGeometryMismatch(t *testing.T) {
	a := newSmall(t, smallConfig())
	other := smallConfig()
	other.Geometry.PageSize = 2048
	if _, err := Reopen(other, a.Array()); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestSyncEmptyBufferIsFree(t *testing.T) {
	d := newSmall(t, smallConfig())
	before := d.Array().Counters()
	now, err := d.Sync(1000)
	if err != nil || now != 1000 {
		t.Fatalf("Sync on empty buffer: %v %v", now, err)
	}
	c := d.Array().Counters()
	if c.TotalWrites() != before.TotalWrites() {
		t.Fatal("empty Sync wrote pages")
	}
}

// A disturbed flash page must fail recovery's integrity scan rather than
// decode garbage (the Seal/Verify CRC standing in for controller ECC).
func TestReopenDetectsCorruption(t *testing.T) {
	cfg := smallConfig()
	a := newSmall(t, cfg)
	var now sim.Time
	var err error
	for i := 0; i < 300; i++ {
		now, err = a.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err = a.Sync(now); err != nil {
		t.Fatal(err)
	}
	// Disturb one bit of the first written page we can find.
	arr := a.Array()
	for ppa := 0; ; ppa++ {
		if arr.Written(nand.PPA(ppa)) {
			arr.PageData(nand.PPA(ppa))[100] ^= 0x04
			break
		}
	}
	if _, err := Reopen(cfg, arr); err == nil {
		t.Fatal("corrupted flash accepted by recovery")
	}
}
