package core

import (
	"sort"

	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Scan implements device.KVSSD: a range query returning up to n pairs with
// key ≥ start (§4.4 "Range Query"). Each group's first pages hold a
// key-sorted {page, record} location table, so results come out in key
// order without any on-the-fly sort; and because a group stores a run of
// *consecutive* keys in a handful of neighbouring pages, long scans touch
// far fewer flash pages than PinK's scattered data segments (Fig. 18). Every
// flash page is read at most once per scan.
func (d *Device) Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error) {
	if n <= 0 {
		return nil, at, nil
	}
	now := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostRead)

	// Scan-global single-read guarantee, on a reusable device-owned set.
	if d.scanPages == nil {
		d.scanPages = make(map[nand.PPA]bool)
	}
	pagesRead := d.scanPages
	clear(pagesRead)

	iters := make([]*scanCursor, 0, len(d.levels)+1)
	iters = append(iters, newMemCursor(d.mt, start))
	for _, lv := range d.levels {
		c := &scanCursor{d: d, lv: lv, pagesRead: pagesRead}
		now = c.seek(now, start)
		iters = append(iters, c)
	}

	out := make([]kv.Pair, 0, n)
	for len(out) < n {
		best := -1
		var bestKey []byte
		for i, it := range iters {
			if !it.valid() {
				continue
			}
			k, t := it.key(now)
			now = t
			if best < 0 || kv.Compare(k, bestKey) < 0 {
				best = i
				bestKey = k
			}
		}
		if best < 0 {
			break
		}
		winKey := bestKey
		ent, t2 := iters[best].entity(now)
		now = t2
		if ent.InLog && d.vlog.isLost(ent.LogPtr) {
			// The newest version's log value died in a power cut: step only
			// this cursor so an older, durable version of the key (a deeper
			// level still on flash) wins the next round instead.
			iters[best].next()
			continue
		}
		// Advance every cursor sitting on this key.
		for _, it := range iters {
			for it.valid() {
				k, t := it.key(now)
				now = t
				if kv.Compare(k, winKey) != 0 {
					break
				}
				it.next()
			}
		}
		if ent.Tombstone {
			continue
		}
		var value []byte
		if ent.InLog {
			v, t, charged := d.vlog.read(now, ent.LogPtr, nand.CauseUser)
			if charged {
				now = t
			}
			value = v
		} else {
			value = ent.Value
		}
		out = append(out, kv.Pair{Key: winKey, Value: value})
	}
	return out, now, nil
}

// scanCursor iterates one source (memtable or one level) in key order.
type scanCursor struct {
	// memtable source: a lazy skiplist iterator — the device is
	// single-threaded and a scan never mutates the memtable, so no
	// snapshot copy is needed.
	memIt memtable.Iter

	// level source
	d         *Device
	lv        *level
	gi        int                          // current group index
	ki        int                          // key index within group (location-table order)
	table     []struct{ Page, Rec uint16 } // reused across group crossings
	loaded    bool                         // table holds gi's location table
	pagesRead map[nand.PPA]bool

	// cur caches the decoded entity at (gi, ki): the merge loop asks for
	// the cursor's key several times per emitted pair, and re-reads are
	// free anyway (pagesRead dedups the flash charge), so the cache only
	// skips redundant record decodes — timing is unchanged.
	cur   kv.Entity
	curOK bool
}

func newMemCursor(mt *memtable.Table, start []byte) *scanCursor {
	return &scanCursor{memIt: mt.IterFrom(start)}
}

// seek positions the cursor at the first key ≥ start.
func (c *scanCursor) seek(at sim.Time, start []byte) sim.Time {
	now := at
	c.gi = sort.Search(len(c.lv.groups), func(i int) bool {
		return kv.Compare(c.lv.groups[i].smallest, start) > 0
	})
	if c.gi > 0 {
		c.gi--
	}
	for c.gi < len(c.lv.groups) {
		now = c.loadGroup(now)
		g := c.lv.groups[c.gi]
		// Binary search the location table by key.
		lo, hi := 0, g.count
		for lo < hi {
			mid := (lo + hi) / 2
			e, t := c.entityAt(now, mid)
			now = t
			if kv.Compare(e.Key, start) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < g.count {
			c.ki = lo
			c.curOK = false
			return now
		}
		c.gi++ // every key in this group is below start
	}
	return now
}

// loadGroup reads the current group's location-table pages.
func (c *scanCursor) loadGroup(at sim.Time) sim.Time {
	g := c.lv.groups[c.gi]
	now := at
	imgs := make([][]byte, g.tablePages)
	for p := 0; p < g.tablePages; p++ {
		ppa := g.firstPPA + nand.PPA(p)
		now = c.read(now, ppa)
		imgs[p] = c.d.arr.PageData(ppa)
	}
	c.table = readLocationTableInto(c.table[:0], imgs, g.count)
	c.loaded = true
	c.ki = 0
	c.curOK = false
	return now
}

// read charges a flash read once per page per scan.
func (c *scanCursor) read(at sim.Time, ppa nand.PPA) sim.Time {
	if c.pagesRead[ppa] {
		return at
	}
	c.pagesRead[ppa] = true
	return c.d.arr.Read(at, ppa, nand.CauseUser)
}

// entityAt fetches the group's i-th entity in key order, lazily loading the
// group's location table after a group crossing.
func (c *scanCursor) entityAt(at sim.Time, i int) (kv.Entity, sim.Time) {
	if !c.loaded {
		at = c.loadGroup(at)
	}
	g := c.lv.groups[c.gi]
	loc := c.table[i]
	ppa := g.entityPPA(int(loc.Page))
	now := c.read(at, ppa)
	pr := kv.OpenPage(c.d.arr.PageData(ppa))
	e, err := pr.Entity(int(loc.Rec))
	if err != nil {
		panic(err)
	}
	return e, now
}

func (c *scanCursor) valid() bool {
	if c.d == nil {
		return c.memIt.Valid()
	}
	return c.gi < len(c.lv.groups)
}

func (c *scanCursor) key(at sim.Time) ([]byte, sim.Time) {
	if c.d == nil {
		return c.memIt.Entry().Key, at
	}
	e, t := c.current(at)
	return e.Key, t
}

// current returns the cached entity at the cursor position, decoding once
// per position.
func (c *scanCursor) current(at sim.Time) (*kv.Entity, sim.Time) {
	if !c.curOK {
		e, t := c.entityAt(at, c.ki)
		c.cur, at = e, t
		c.curOK = true
	}
	return &c.cur, at
}

// entity returns the full entity at the cursor (memtable entries are
// converted to the entity shape).
func (c *scanCursor) entity(at sim.Time) (kv.Entity, sim.Time) {
	if c.d == nil {
		m := c.memIt.Entry()
		return kv.Entity{Key: m.Key, Value: m.Value, Tombstone: m.Tombstone}, at
	}
	e, t := c.current(at)
	return *e, t
}

func (c *scanCursor) next() {
	if c.d == nil {
		c.memIt.Next()
		return
	}
	c.curOK = false
	c.ki++
	if c.ki >= len(c.table) {
		c.gi++
		c.loaded = false // next group's table loads lazily on first access
		c.ki = 0
	}
}
