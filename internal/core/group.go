package core

import (
	"fmt"
	"slices"

	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/xxhash"
)

// group is the in-DRAM descriptor of one data segment group: exactly the
// level-list entry of §4.1 — the group's smallest key, the PPA of its first
// page, and the truncated hashes of the first entity on each page — plus the
// optional hash list and accounting fields.
//
// On flash the group occupies numPages consecutive pages of one block: the
// first tablePages hold the key-sorted {page, record} location table used by
// range queries (§4.4); the rest hold the KV entities sorted by key hash.
type group struct {
	smallest    []byte
	firstPPA    nand.PPA
	numPages    int
	tablePages  int
	firstHash16 []uint16 // one per entity page

	count    int
	bytes    int64 // logical key+value bytes of the group's entities
	logBytes int64 // bytes of this group's values currently in the value log
	// physBytes is the flash footprint (numPages × page size). Level
	// thresholds compare physical group bytes: values parked in the value
	// log do not count against the tree, which is what lets log-triggered
	// compaction (folding values INTO groups) push a level over its
	// threshold — the chain mechanism of Fig. 9.
	physBytes int64

	// hashes is the group's hash list: the sorted hashes of every entity,
	// maintained in leftover DRAM for top levels (§4.2). nil when dropped.
	hashes []uint32
}

// entryBytes is the DRAM footprint of the group's level-list entry: smallest
// key + first-page PPA (8 B) + per-page hash prefixes + bookkeeping (16 B).
func (g *group) entryBytes() int64 {
	return int64(len(g.smallest)) + 8 + int64(2*len(g.firstHash16)) + 16
}

// hashListBytes is the DRAM footprint of the hash list when present.
func (g *group) hashListBytes() int64 { return int64(4 * len(g.hashes)) }

// hashContains binary-searches the hash list. Hand-rolled (no sort.Search
// closure) because this probe runs once per level per GET.
func (g *group) hashContains(h uint32) bool {
	hs := g.hashes
	lo, hi := 0, len(hs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if hs[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(hs) && hs[lo] == h
}

// entityPages returns the number of pages holding entities.
func (g *group) entityPages() int { return g.numPages - g.tablePages }

// entityPPA returns the PPA of entity page p (0-based among entity pages).
func (g *group) entityPPA(p int) nand.PPA {
	return g.firstPPA + nand.PPA(g.tablePages+p)
}

// level is one LSM level of the AnyKey tree. bytes is the *physical* flash
// footprint of its groups (see group.physBytes).
type level struct {
	groups []*group
	bytes  int64

	// logInvalid accumulates the bytes of value-log data invalidated while
	// referenced from this level — the AnyKey+ source-selection signal
	// (§4.6). It resets when the level is rebuilt.
	logInvalid int64
}

// findGroup returns the unique group whose key range may contain key.
func (lv *level) findGroup(key []byte) *group {
	gs := lv.groups
	lo, hi := 0, len(gs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if kv.Compare(gs[mid].smallest, key) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return nil
	}
	return gs[lo-1]
}

// logValid sums the level's live value-log bytes (the base AnyKey
// source-selection signal).
func (lv *level) logValid() int64 {
	var t int64
	for _, g := range lv.groups {
		t += g.logBytes
	}
	return t
}

// --- group construction -------------------------------------------------

// builtGroup is the output of the pure layout step: the descriptor (without
// a PPA) and the page images to program.
type builtGroup struct {
	g        *group
	pages    [][]byte
	logBytes int64
	// entityHashes feeds the hash-list budget decision after installation.
	entityHashes []uint32
}

// locEntrySize is the byte cost of one location-table entry: {entity page
// u16, record index u16}.
const locEntrySize = 4

// On-flash group header, stored at the start of every table page's extra
// region. It makes the whole DRAM metadata derivable from flash: a recovery
// scan finds group first pages by magic, reads the persisted level and
// shape, and rebuilds level lists, hash prefixes and hash lists (see
// recover.go).
const (
	groupMagic     uint16 = 0xA11E // first table page of a group
	groupContMagic uint16 = 0xA11F // continuation table page
	groupHdrSize          = 20     // magic u16, level u16, pages u16, tablePages u16, count u32, epoch u32, index u16, flags u16
)

// flagLastGroup marks the final group of its epoch. An epoch is complete —
// and eligible for recovery — only when groups 0..n-1 are all present,
// untorn, and group n-1 carries this flag. A power cut mid-writeLevel
// leaves the new epoch without its tail, so recovery falls back to the
// previous complete epoch instead of mounting half a level.
const flagLastGroup uint16 = 1 << 0

// putGroupHeader writes the header into a table page's extra prefix. The
// epoch stamps which writeLevel produced the group and index orders the
// groups within it: recovery keeps, per level, only the groups of the
// newest *complete* epoch (a level rebuild supersedes all of the level's
// earlier groups, but only once it is fully durable).
func putGroupHeader(extra []byte, magic uint16, level, pages, tablePages, count int, epoch uint32, index int, flags uint16) {
	put16(extra[0:], magic)
	put16(extra[2:], uint16(level))
	put16(extra[4:], uint16(pages))
	put16(extra[6:], uint16(tablePages))
	put32(extra[8:], uint32(count))
	put32(extra[12:], epoch)
	put16(extra[16:], uint16(index))
	put16(extra[18:], flags)
}

// groupHeader decodes a table page's header; ok is false when the page does
// not start a group (wrong or continuation magic).
type groupHeader struct {
	level, pages, tablePages int
	count                    int
	epoch                    uint32
	index                    int
	last                     bool
}

func readGroupHeader(extra []byte) (groupHeader, bool) {
	if len(extra) < groupHdrSize || get16(extra[0:]) != groupMagic {
		return groupHeader{}, false
	}
	return groupHeader{
		level:      int(get16(extra[2:])),
		pages:      int(get16(extra[4:])),
		tablePages: int(get16(extra[6:])),
		count:      int(get32(extra[8:])),
		epoch:      get32(extra[12:]),
		index:      int(get16(extra[16:])),
		last:       get16(extra[18:])&flagLastGroup != 0,
	}, true
}

func put16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) uint16    { return uint16(b[0]) | uint16(b[1])<<8 }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// pagePayload is the usable byte capacity of one page (header + CRC footer
// excluded).
func pagePayload(pageSize int) int { return pageSize - 10 }

// tableChunk is the location-table capacity of one page — the payload minus
// the persistent group header, aligned down to a whole number of entries so
// no entry straddles a page boundary.
func tableChunk(pageSize int) int {
	return (pagePayload(pageSize) - groupHdrSize) / locEntrySize * locEntrySize
}

// groupLayout computes, without building anything, whether the first count
// entities fit in at most maxPages pages, and how many pages they use.
func groupLayout(ents []kv.Entity, count, pageSize, maxPages int) (pages int, ok bool) {
	payload := pagePayload(pageSize)
	chunk := tableChunk(pageSize)
	tablePages := (count*locEntrySize + chunk - 1) / chunk
	entityPages := 0
	free := 0
	for i := 0; i < count; i++ {
		need := ents[i].EncodedSize() + 2
		if need > free {
			entityPages++
			free = payload
			if need > free {
				return 0, false // single entity larger than a page
			}
		}
		free -= need
	}
	total := tablePages + entityPages
	return total, total <= maxPages && entityPages > 0
}

// takeGroup selects the longest prefix of ents that fits one group and
// returns the cut index. ents must be non-empty and key-sorted.
//
// Page consumption is monotone in the prefix length (adding an entity never
// shrinks the entity pages or the location table), so a single forward scan
// tracking the incremental packing finds the cut in O(cut) — the old
// exponential-plus-binary search re-ran the O(n) layout O(log n) times.
func takeGroup(ents []kv.Entity, pageSize, maxPages int) int {
	payload := pagePayload(pageSize)
	chunk := tableChunk(pageSize)
	entityPages := 0
	free := 0
	for i := range ents {
		need := ents[i].EncodedSize() + 2
		if need > free {
			if need > payload {
				if i == 0 {
					panic(fmt.Sprintf("core: entity of %d bytes does not fit a group", ents[0].EncodedSize()))
				}
				return i // single entity larger than a page ends the prefix
			}
			entityPages++
			free = payload
		}
		free -= need
		tablePages := ((i+1)*locEntrySize + chunk - 1) / chunk
		if tablePages+entityPages > maxPages {
			if i == 0 {
				panic(fmt.Sprintf("core: entity of %d bytes does not fit a group", ents[0].EncodedSize()))
			}
			return i
		}
	}
	return len(ents)
}

// groupScratch holds buildGroup's transient per-call arrays so a compaction
// (which builds groups in a tight loop) reuses one set of allocations. The
// zero value is ready to use; a nil scratch allocates fresh arrays.
type groupScratch struct {
	order     []uint64
	tmp       []uint64 // radix-sort double buffer
	positions []pagePos
	pageOf    []int
	table     []byte
	extra     []byte // table-page header staging (copied into the image)
	firstHash []uint32
	lastHash  []uint32
	locs      []locEntry // readLocationTableInto output

	// arena recycles page-image buffers through build → program → release
	// when the flash array copies rather than retains programmed images.
	arena *nand.PageArena
}

// newPage returns a zeroed page image for buildGroup, recycled through the
// arena when one is attached.
func (sc *groupScratch) newPage(pageSize int) []byte {
	if sc.arena != nil {
		return sc.arena.Acquire()
	}
	return make([]byte, pageSize)
}

// releasePages hands images whose contents the flash array has copied (or
// that were abandoned before programming) back to the arena.
func (sc *groupScratch) releasePages(imgs [][]byte) {
	if sc.arena != nil {
		sc.arena.Release(imgs...)
	}
}

// pagePos is an entity's {page, record} slot within a group.
type pagePos struct{ page, rec uint16 }

// buildGroup lays out one data segment group from key-sorted entities:
// entities are re-sorted by hash, packed into pages behind the key-sorted
// location table, and the per-page hash prefixes and collision bits are
// derived (§4.1, Fig. 7). Everything retained past the call (page images,
// the descriptor, the hash list) is freshly allocated; sc only backs the
// transient layout arrays.
func buildGroup(ents []kv.Entity, pageSize int, sc *groupScratch) *builtGroup {
	if sc == nil {
		sc = &groupScratch{}
	}
	count := len(ents)
	payload := pagePayload(pageSize)

	// Hash order, ties broken by key for determinism. The input is key-sorted
	// with distinct keys, so breaking hash ties by input index yields exactly
	// the (hash, key) order. Packing hash<<32|index into one uint64 makes
	// that order total and the unique sorted permutation is by construction
	// the stable one. count is bounded far below 2^32 (it fits one group's
	// pages).
	if cap(sc.order) < count {
		sc.order = make([]uint64, count)
	}
	order := sc.order[:count]
	for i := range order {
		order[i] = uint64(ents[i].Hash)<<32 | uint64(i)
	}
	sortHashOrder(order, sc)

	// Assign entities to pages (same arithmetic as groupLayout).
	if cap(sc.positions) < count {
		sc.positions = make([]pagePos, count)
	}
	if cap(sc.pageOf) < count {
		sc.pageOf = make([]int, count)
	}
	positions := sc.positions[:count] // indexed by key order
	pageOf := sc.pageOf[:count]       // indexed by hash order
	entityPages := 0
	free := 0
	rec := 0
	for hi, o := range order {
		ki := int(o & 0xffffffff)
		need := ents[ki].EncodedSize() + 2
		if need > free {
			entityPages++
			free = payload
			rec = 0
		}
		free -= need
		pageOf[hi] = entityPages - 1
		positions[ki] = pagePos{page: uint16(entityPages - 1), rec: uint16(rec)}
		rec++
	}

	// Location table bytes, key order.
	table := sc.table[:0]
	for ki := 0; ki < count; ki++ {
		p := positions[ki]
		table = append(table, byte(p.page), byte(p.page>>8), byte(p.rec), byte(p.rec>>8))
	}
	sc.table = table
	chunk := tableChunk(pageSize)
	tablePages := (len(table) + chunk - 1) / chunk
	if count == 0 {
		panic("core: buildGroup with no entities")
	}

	g := &group{
		smallest:    append([]byte(nil), ents[0].Key...),
		numPages:    tablePages + entityPages,
		tablePages:  tablePages,
		firstHash16: make([]uint16, entityPages),
	}
	bg := &builtGroup{g: g, entityHashes: make([]uint32, 0, count)}

	// Table pages, each carrying the persistent group header (the level
	// field is patched at install time, when the destination is known).
	pages := make([][]byte, 0, g.numPages)
	for off := 0; off < len(table); off += chunk {
		end := off + chunk
		if end > len(table) {
			end = len(table)
		}
		img := sc.newPage(pageSize)
		if n := groupHdrSize + end - off; cap(sc.extra) < n {
			sc.extra = make([]byte, n)
		}
		extra := sc.extra[:groupHdrSize+end-off]
		magic := groupContMagic
		if off == 0 {
			magic = groupMagic
		}
		putGroupHeader(extra, magic, 0, tablePages+entityPages, tablePages, count, 0, 0, 0)
		copy(extra[groupHdrSize:], table[off:end])
		kv.NewPageWriter(img, extra)
		pages = append(pages, img)
	}

	// Entity pages. First/last hashes are recorded per page so the
	// continues-next pass below needs no entity re-decoding.
	var w *kv.PageWriter
	var img []byte
	var pageFirst, pageLast uint32 // first/last hash on current page
	var prevLast uint32
	if cap(sc.firstHash) < entityPages {
		sc.firstHash = make([]uint32, entityPages)
		sc.lastHash = make([]uint32, entityPages)
	}
	firstHash := sc.firstHash[:entityPages]
	lastHash := sc.lastHash[:entityPages]
	havePrev := false
	curPage := -1
	finishPage := func() {
		if curPage < 0 {
			return
		}
		var aux uint16
		if havePrev && pageFirst == prevLast {
			aux |= auxContinuesPrev
		}
		w.SetAux(aux)
		pages = append(pages, img)
		prevLast = pageLast
		havePrev = true
	}
	for hi, o := range order {
		e := &ents[int(o&0xffffffff)]
		if pageOf[hi] != curPage {
			finishPage()
			curPage = pageOf[hi]
			img = sc.newPage(pageSize)
			w = kv.NewPageWriter(img, nil)
			pageFirst = e.Hash
			firstHash[curPage] = e.Hash
			g.firstHash16[curPage] = xxhash.Prefix16(e.Hash)
		}
		if !w.AppendEntity(e) {
			panic("core: layout mismatch: entity does not fit its assigned page")
		}
		pageLast = e.Hash
		lastHash[curPage] = e.Hash
		g.count++
		g.bytes += int64(len(e.Key)) + int64(e.Len())
		if e.InLog {
			bg.logBytes += int64(e.ValueLen)
		}
		bg.entityHashes = append(bg.entityHashes, e.Hash)
	}
	finishPage()
	g.logBytes = bg.logBytes

	// Second pass for the continues-next bits: page p's last hash equals
	// page p+1's first hash.
	for p := 0; p+1 < entityPages; p++ {
		if lastHash[p] == firstHash[p+1] {
			rewriteAux(pages[tablePages+p], kv.OpenPage(pages[tablePages+p]).Aux()|auxContinuesNext)
		}
	}

	// entityHashes was appended in hash order above, so it is already the
	// sorted hash list the group needs.
	bg.pages = pages
	if len(pages) != g.numPages {
		panic(fmt.Sprintf("core: built %d pages, expected %d", len(pages), g.numPages))
	}
	return bg
}

// sortHashOrder sorts hash<<32|index composites ascending. Large runs use a
// stable LSD radix sort over the four hash bytes: the low 32 bits (input
// indices) are strictly increasing, so a stable sort by hash alone leaves
// hash ties in index order — the same total order slices.Sort produces on
// the full composite, at a fraction of the comparison-sort cost.
func sortHashOrder(order []uint64, sc *groupScratch) {
	if len(order) < 128 {
		slices.Sort(order)
		return
	}
	if cap(sc.tmp) < len(order) {
		sc.tmp = make([]uint64, len(order))
	}
	tmp := sc.tmp[:len(order)]
	src, dst := order, tmp
	for shift := 32; shift < 64; shift += 8 {
		var cnt [256]int
		for _, v := range src {
			cnt[(v>>shift)&0xff]++
		}
		sum := 0
		for i, c := range cnt {
			cnt[i] = sum
			sum += c
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[cnt[b]] = v
			cnt[b]++
		}
		src, dst = dst, src
	}
	// Four passes: the final result landed back in the caller's slice.
}

// rewriteAux patches a finished page image's aux field in place (pages are
// sealed at install time, after all patches, so the CRC covers the final
// bits).
func rewriteAux(img []byte, v uint16) {
	img[2] = byte(v)
	img[3] = byte(v >> 8)
}

// locEntry is one location-table entry: an entity's {page, record} address
// in key order.
type locEntry = struct{ Page, Rec uint16 }

// readLocationTable decodes a group's location table from its table pages
// (already read by the caller), skipping each page's persistent header.
func readLocationTable(imgs [][]byte, count int) []locEntry {
	return readLocationTableInto(make([]locEntry, 0, count), imgs, count)
}

// readLocationTableInto is readLocationTable appending into dst's storage,
// for callers that consume the table before their next read.
func readLocationTableInto(dst []locEntry, imgs [][]byte, count int) []locEntry {
	out := dst
	for _, img := range imgs {
		extra := kv.OpenPage(img).Extra()[groupHdrSize:]
		for off := 0; off+locEntrySize <= len(extra); off += locEntrySize {
			out = append(out, locEntry{
				Page: uint16(extra[off]) | uint16(extra[off+1])<<8,
				Rec:  uint16(extra[off+2]) | uint16(extra[off+3])<<8,
			})
		}
	}
	if len(out)-len(dst) != count {
		panic(fmt.Sprintf("core: location table has %d entries, group has %d", len(out)-len(dst), count))
	}
	return out
}
