// Package nand models the NAND flash hardware of the emulated SSD: its
// geometry (channels × chips × blocks × pages), its TLC operation latencies,
// and the two resources every operation contends on — the chip (cell array
// busy time) and the channel (page transfer time). It is the substitute for
// the FEMU flash emulator used by the paper (DESIGN.md §2): same geometry,
// same published latencies, virtual time instead of QEMU.
//
// The package stores page payloads so the FTL layers above can decode what
// they wrote, enforces NAND programming rules (erase-before-program,
// in-order programming within a block), and counts every operation by cause
// so the harness can regenerate Table 3 and Fig. 13. Background causes
// (everything except user and user-path metadata reads) are throttled to a
// duty cycle; foreground reads gap-fill the idle slack (sim.Timeline).
package nand

import (
	"fmt"

	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Geometry describes the physical shape of the flash array.
type Geometry struct {
	Channels        int // independent data buses
	ChipsPerChannel int // flash dies per bus
	BlocksPerChip   int // erase blocks per die
	PagesPerBlock   int // pages per erase block
	PageSize        int // bytes per page
}

// Chips returns the total number of flash dies.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// Blocks returns the total number of erase blocks.
func (g Geometry) Blocks() int { return g.Chips() * g.BlocksPerChip }

// Pages returns the total number of flash pages.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// Capacity returns the raw capacity in bytes.
func (g Geometry) Capacity() int64 { return int64(g.Pages()) * int64(g.PageSize) }

// Validate reports a descriptive error for impossible geometries.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.ChipsPerChannel <= 0, g.BlocksPerChip <= 0,
		g.PagesPerBlock <= 0, g.PageSize <= 0:
		return fmt.Errorf("nand: geometry fields must be positive: %+v", g)
	case g.Pages() > 1<<30:
		return fmt.Errorf("nand: geometry too large to simulate: %d pages", g.Pages())
	}
	return nil
}

// Timing holds the flash operation latencies. The defaults mirror the
// paper's TLC numbers (§5.1): reads (56.5, 77.5, 106) µs and programs
// (0.8, 2.2, 5.7) ms for the three page types, 3 ms erase.
type Timing struct {
	Read    [3]sim.Duration // LSB, CSB, MSB page reads
	Program [3]sim.Duration // LSB, CSB, MSB page programs
	Erase   sim.Duration
	// TransferNsPerByte is the channel occupancy per transferred byte
	// (≈0.833 ns/B for a 1.2 GB/s ONFI bus).
	TransferNsPerByte float64
	// BackgroundDuty caps the share of die/channel time background
	// operations (flush, compaction, GC, log) may occupy; foreground host
	// reads gap-fill the remainder. 0.5 mirrors a controller that reserves
	// half the die time for host I/O under load.
	BackgroundDuty float64
}

// TLCTiming returns the paper's TLC latencies.
func TLCTiming() Timing {
	return Timing{
		Read:              [3]sim.Duration{56500, 77500, 106000},
		Program:           [3]sim.Duration{800 * sim.Microsecond, 2200 * sim.Microsecond, 5700 * sim.Microsecond},
		Erase:             3 * sim.Millisecond,
		TransferNsPerByte: 0.833,
		BackgroundDuty:    0.5,
	}
}

// bgIdle returns the throttle gap appended after a background operation of
// duration d.
func (t Timing) bgIdle(d sim.Duration) sim.Duration {
	duty := t.BackgroundDuty
	if duty <= 0 || duty >= 1 {
		return 0
	}
	return sim.Duration(float64(d) * (1 - duty) / duty)
}

// foreground reports whether a cause rides the host-latency path: user data
// reads and the user-path metadata reads that precede them.
func foreground(c Cause) bool { return c == CauseUser || c == CauseMeta }

func (t Timing) transfer(bytes int) sim.Duration {
	return sim.Duration(t.TransferNsPerByte * float64(bytes))
}

// PPA is a physical page address: block-major, ppa = block*PagesPerBlock +
// pageInBlock.
type PPA int64

// InvalidPPA marks an unset address.
const InvalidPPA PPA = -1

// BlockID identifies one erase block.
type BlockID int32

// Cause classifies why a flash operation was issued, for the accounting in
// Table 3 and Fig. 13.
type Cause int

// Operation causes. User covers foreground reads/writes on the request
// path; Flush is the L0→L1 write of buffered pairs; Compaction and GC are
// the background operations; Meta covers metadata (meta segment) I/O on any
// path; Log covers value-log I/O.
const (
	CauseUser Cause = iota
	CauseFlush
	CauseCompaction
	CauseGC
	CauseMeta
	CauseLog
	numCauses
)

var causeNames = [...]string{"user", "flush", "compaction", "gc", "meta", "log"}

// String returns the cause's lowercase name.
func (c Cause) String() string {
	if c < 0 || int(c) >= len(causeNames) {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// Counters accumulates operation counts by cause.
type Counters struct {
	Reads  [numCauses]int64
	Writes [numCauses]int64
	Erases int64
}

// TotalReads returns page reads across all causes.
func (c *Counters) TotalReads() int64 { return sum(&c.Reads) }

// TotalWrites returns page writes across all causes; this is the device
// lifetime metric of Fig. 13.
func (c *Counters) TotalWrites() int64 { return sum(&c.Writes) }

func sum(a *[numCauses]int64) int64 {
	var t int64
	for _, v := range a {
		t += v
	}
	return t
}

// Add returns the counter sum c + o (merging per-device counters into a
// fleet-wide rollup).
func (c Counters) Add(o Counters) Counters {
	var d Counters
	for i := range c.Reads {
		d.Reads[i] = c.Reads[i] + o.Reads[i]
		d.Writes[i] = c.Writes[i] + o.Writes[i]
	}
	d.Erases = c.Erases + o.Erases
	return d
}

// Sub returns the counter delta c - o.
func (c Counters) Sub(o Counters) Counters {
	var d Counters
	for i := range c.Reads {
		d.Reads[i] = c.Reads[i] - o.Reads[i]
		d.Writes[i] = c.Writes[i] - o.Writes[i]
	}
	d.Erases = c.Erases - o.Erases
	return d
}

// Injector decides, per flash operation, whether a fault is injected. The
// array consults it before mutating any state, so an injector that unwinds
// the call (a power cut) leaves the flash image exactly as of the previous
// completed operation. internal/fault provides the seeded implementation.
type Injector interface {
	// OnRead returns the number of extra cell reads to charge for a
	// transient read error on this page (0 = clean read).
	OnRead(ppa PPA, cause Cause) int
	// OnProgram reports whether this page program fails its verify step,
	// retiring the block as grown-bad.
	OnProgram(ppa PPA, cause Cause) bool
	// OnErase reports whether this block erase fails, retiring the block as
	// grown-bad.
	OnErase(b BlockID, cause Cause) bool
}

// Array is the simulated flash array. It is not safe for concurrent use;
// the simulation is single-goroutine virtual time by design.
type Array struct {
	geo    Geometry
	timing Timing

	chips    []sim.Timeline
	channels []sim.Timeline
	// watermark is the latest foreground issue time; no future operation is
	// ever scheduled before it (see sim.Timeline), enabling exact pruning.
	watermark sim.Time

	store    payloadStore // programmed page payloads (raw or flyweight)
	nextPage []int32      // per block: next programmable page index
	// bad marks grown-bad blocks: a failed program or erase retires the
	// block for the remainder of the device's life. Bad blocks stay
	// readable (their already-programmed pages are intact) but reject
	// programs and erases, exactly like real NAND past its verify step.
	bad []bool

	inj      Injector
	tr       *trace.Tracer
	counters Counters
}

// New builds an erased flash array.
func New(geo Geometry, timing Timing) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geo:      geo,
		timing:   timing,
		chips:    make([]sim.Timeline, geo.Chips()),
		channels: make([]sim.Timeline, geo.Channels),
		store:    newRawStore(geo),
		nextPage: make([]int32, geo.Blocks()),
		bad:      make([]bool, geo.Blocks()),
	}
	return a, nil
}

// ConfigureMemory selects the payload store representation. MemoryAuto
// resolves by capacity: flyweight at or above flyweightAutoBytes, raw below.
// Must be called before any page is programmed (the FTL configures the array
// it just built); switching a written array panics.
func (a *Array) ConfigureMemory(mode MemoryMode) {
	if mode == MemoryAuto {
		if a.geo.Capacity() >= flyweightAutoBytes {
			mode = MemoryFlyweight
		} else {
			mode = MemoryRaw
		}
	}
	if mode == a.store.footprint().Mode {
		return
	}
	if a.store.footprint().LivePages != 0 {
		panic("nand: ConfigureMemory on an array with programmed pages")
	}
	switch mode {
	case MemoryRaw:
		a.store = newRawStore(a.geo)
	case MemoryFlyweight:
		a.store = newFlyweightStore(a.geo, defaultMatCacheBytes(a.geo))
	}
}

// Retains reports whether the array keeps a reference to programmed buffers
// (raw store) or copies what it needs (flyweight), letting FTLs decide
// whether recycling build buffers through a PageArena is sound.
func (a *Array) Retains() bool { return a.store.retains() }

// Footprint returns the payload store's memory accounting.
func (a *Array) Footprint() StoreFootprint { return a.store.footprint() }

// Release eagerly drops every retained page payload. The array is unusable
// for data access afterwards (reads panic); callers release only devices
// they are discarding — dead fleet shards, closed handles.
func (a *Array) Release() { a.store.release() }

// SetInjector attaches a fault injector (nil detaches). The injector is
// part of the array, so it — and the grown-bad state it caused — survives a
// Reopen after a power cut.
func (a *Array) SetInjector(inj Injector) { a.inj = inj }

// Injector returns the attached fault injector, if any.
func (a *Array) Injector() Injector { return a.inj }

// SetTracer attaches an event tracer (nil detaches). Like the injector, the
// tracer is part of the array, so it survives a Reopen after a power cut.
func (a *Array) SetTracer(tr *trace.Tracer) { a.tr = tr }

// Tracer returns the attached tracer, if any.
func (a *Array) Tracer() *trace.Tracer { return a.tr }

// Bad reports whether block b has been retired as grown-bad.
func (a *Array) Bad(b BlockID) bool { return a.bad[b] }

// Geometry returns the array's shape.
func (a *Array) Geometry() Geometry { return a.geo }

// Counters returns a snapshot of the operation counters.
func (a *Array) Counters() Counters { return a.counters }

// BlockOf returns the erase block containing ppa.
func (a *Array) BlockOf(ppa PPA) BlockID { return BlockID(int(ppa) / a.geo.PagesPerBlock) }

// PageInBlock returns ppa's index within its block.
func (a *Array) PageInBlock(ppa PPA) int { return int(ppa) % a.geo.PagesPerBlock }

// PageOf returns the PPA of page idx within block b.
func (a *Array) PageOf(b BlockID, idx int) PPA {
	return PPA(int(b)*a.geo.PagesPerBlock + idx)
}

// chipOf stripes consecutive pages across dies (superblock layout): page i
// of a block lands on a different chip than page i+1, so the sequential
// writes of a flush or compaction run on all dies in parallel, as real FTLs
// arrange.
func (a *Array) chipOf(ppa PPA) int { return int(ppa) % a.geo.Chips() }

// eraseChipOf spreads erases by block id (an erase hits the whole
// superblock; charging one die keeps the model simple and erases are rare).
func (a *Array) eraseChipOf(b BlockID) int { return int(b) % a.geo.Chips() }

func (a *Array) channelOf(chip int) int { return chip % a.geo.Channels }

func (a *Array) pageType(ppa PPA) int { return a.PageInBlock(ppa) % 3 }

// Read performs a page read issued at time at: the chip is busy for the cell
// read, then the channel transfers the page out. It returns the completion
// time. A transient read error injected by the fault plan charges extra cell
// reads (the retry loop of a real controller) before the single transfer;
// the data is always recovered. Reading a never-programmed page is an FTL
// bug and panics.
func (a *Array) Read(at sim.Time, ppa PPA, cause Cause) sim.Time {
	a.checkPPA(ppa)
	if !a.store.written(ppa) {
		panic(fmt.Sprintf("nand: read of unwritten page %d", ppa))
	}
	chip := a.chipOf(ppa)
	base := a.timing.Read[a.pageType(ppa)]
	cell, retries := base, 0
	if a.inj != nil {
		if retries = a.inj.OnRead(ppa, cause); retries > 0 {
			cell *= sim.Duration(1 + retries)
		}
	}
	xfer := a.timing.transfer(a.geo.PageSize)
	var cellStart, cellDone, xferStart, done sim.Time
	if foreground(cause) {
		a.advanceWatermark(at, chip)
		cellStart, cellDone = a.chips[chip].ScheduleSpan(at, cell)
		xferStart, done = a.channels[a.channelOf(chip)].ScheduleSpan(cellDone, xfer)
	} else {
		cellStart, cellDone = a.chips[chip].ScheduleBGSpan(at, cell, a.timing.bgIdle(cell))
		xferStart, done = a.channels[a.channelOf(chip)].ScheduleBGSpan(cellDone, xfer, a.timing.bgIdle(xfer))
	}
	if a.tr != nil {
		tc := trace.CauseFromFlash(int(cause), false)
		chipTrack := trace.MakeTrack(trace.TrackChip, chip)
		// A retried read splits into the clean cell time and the extra
		// re-read passes, so the blame report can name the fault.
		a.tr.Span(chipTrack, trace.EvCellRead, tc, at, cellStart, cellStart.Add(base), int64(ppa))
		if retries > 0 {
			a.tr.Span(chipTrack, trace.EvReadRetry, tc, cellStart.Add(base), cellStart.Add(base), cellDone, int64(retries))
		}
		a.tr.Span(trace.MakeTrack(trace.TrackChannel, a.channelOf(chip)),
			trace.EvReadXfer, tc, cellDone, xferStart, done, int64(ppa))
	}
	a.counters.Reads[cause]++
	return done
}

// advanceWatermark records a foreground issue time and prunes the touched
// resources' stale intervals.
func (a *Array) advanceWatermark(at sim.Time, chip int) {
	if at > a.watermark {
		a.watermark = at
	}
	a.chips[chip].Prune(a.watermark)
	a.channels[a.channelOf(chip)].Prune(a.watermark)
}

// Program writes data into ppa at time at: the channel transfers the page
// in, then the chip is busy for the cell program. The array takes ownership
// of data (it must be exactly PageSize bytes). Programming out of order
// within a block, into a non-erased block, or into a grown-bad block
// panics: all are FTL bugs (the FTL learns a block is bad from the error
// returned here and must abandon its write stream).
//
// An injected program failure returns a non-nil error: the page is NOT
// written (its cells failed verify), the block is retired as grown-bad, and
// the attempt's bus/cell time is still charged. The caller must re-issue
// the page into a fresh block.
func (a *Array) Program(at sim.Time, ppa PPA, data []byte, cause Cause) (sim.Time, error) {
	a.checkPPA(ppa)
	if len(data) != a.geo.PageSize {
		panic(fmt.Sprintf("nand: program of %d bytes into %d-byte page", len(data), a.geo.PageSize))
	}
	b := a.BlockOf(ppa)
	if a.bad[b] {
		panic(fmt.Sprintf("nand: program into grown-bad block %d", b))
	}
	if idx := int32(a.PageInBlock(ppa)); idx != a.nextPage[b] {
		panic(fmt.Sprintf("nand: out-of-order program: block %d page %d, expected %d", b, idx, a.nextPage[b]))
	}
	failed := false
	if a.inj != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					// A power cut struck mid-program: the cells hold a torn,
					// partial image whose integrity check will fail at mount.
					// It is the last written page of its block by the in-order
					// rule, which is how recovery recognises it.
					torn := make([]byte, len(data))
					copy(torn, data[:len(data)/2])
					a.nextPage[b]++
					a.store.set(ppa, torn)
					panic(r)
				}
			}()
			failed = a.inj.OnProgram(ppa, cause)
		}()
	}
	if !failed {
		a.nextPage[b]++
		a.store.set(ppa, data)
	}

	chip := a.chipOf(ppa)
	xfer := a.timing.transfer(a.geo.PageSize)
	prog := a.timing.Program[a.pageType(ppa)]
	var xferStart, xferDone, progStart, done sim.Time
	if foreground(cause) {
		a.advanceWatermark(at, chip)
		xferStart, xferDone = a.channels[a.channelOf(chip)].ScheduleSpan(at, xfer)
		progStart, done = a.chips[chip].ScheduleSpan(xferDone, prog)
	} else {
		xferStart, xferDone = a.channels[a.channelOf(chip)].ScheduleBGSpan(at, xfer, a.timing.bgIdle(xfer))
		progStart, done = a.chips[chip].ScheduleBGSpan(xferDone, prog, a.timing.bgIdle(prog))
	}
	if a.tr != nil {
		tc := trace.CauseFromFlash(int(cause), true)
		chipTrack := trace.MakeTrack(trace.TrackChip, chip)
		a.tr.Span(trace.MakeTrack(trace.TrackChannel, a.channelOf(chip)),
			trace.EvWriteXfer, tc, at, xferStart, xferDone, int64(ppa))
		a.tr.Span(chipTrack, trace.EvProgram, tc, xferDone, progStart, done, int64(ppa))
		if failed {
			a.tr.Instant(chipTrack, trace.EvProgramFail, tc, done, int64(b))
		}
	}
	a.counters.Writes[cause]++
	if failed {
		a.bad[b] = true
		return done, fmt.Errorf("nand: program failed, block %d retired as grown-bad", b)
	}
	return done, nil
}

// Erase erases block b at time at and returns the completion time. Erasing
// a block already retired as grown-bad returns an error without charging
// any time. An injected erase failure charges the erase attempt, retires
// the block (its contents become undefined and are cleared), and returns an
// error; the FTL must park the block instead of reusing it.
func (a *Array) Erase(at sim.Time, b BlockID, cause Cause) (sim.Time, error) {
	if int(b) < 0 || int(b) >= a.geo.Blocks() {
		panic(fmt.Sprintf("nand: erase of invalid block %d", b))
	}
	if a.bad[b] {
		return at, fmt.Errorf("nand: erase of grown-bad block %d", b)
	}
	failed := a.inj != nil && a.inj.OnErase(b, cause)
	a.store.clear(PPA(int(b)*a.geo.PagesPerBlock), a.geo.PagesPerBlock)
	a.nextPage[b] = 0
	a.counters.Erases++
	chip := a.eraseChipOf(b)
	start, done := a.chips[chip].ScheduleBGSpan(at, a.timing.Erase, a.timing.bgIdle(a.timing.Erase))
	if a.tr != nil {
		tc := trace.CauseFromFlash(int(cause), true)
		a.tr.Span(trace.MakeTrack(trace.TrackChip, chip), trace.EvErase, tc, at, start, done, int64(b))
		if failed {
			a.tr.Instant(trace.MakeTrack(trace.TrackChip, chip), trace.EvEraseFail, tc, done, int64(b))
		}
	}
	if failed {
		a.bad[b] = true
		return done, fmt.Errorf("nand: erase failed, block %d retired as grown-bad", b)
	}
	return done, nil
}

// PageData returns the payload programmed into ppa. Callers must have paid
// for a Read (or hold the data in a DRAM cache); the accessor itself charges
// nothing, keeping data access and timing orthogonal.
func (a *Array) PageData(ppa PPA) []byte {
	a.checkPPA(ppa)
	d := a.store.get(ppa)
	if d == nil {
		panic(fmt.Sprintf("nand: data access to unwritten page %d", ppa))
	}
	return d
}

// Written reports whether ppa has been programmed since its last erase.
func (a *Array) Written(ppa PPA) bool {
	a.checkPPA(ppa)
	return a.store.written(ppa)
}

// FreePagesIn returns how many pages remain programmable in block b.
func (a *Array) FreePagesIn(b BlockID) int {
	return a.geo.PagesPerBlock - int(a.nextPage[b])
}

// ChipUtilization returns the mean busy fraction of all chips over [0, now].
func (a *Array) ChipUtilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var total sim.Duration
	for i := range a.chips {
		total += a.chips[i].BusyTotal()
	}
	return float64(total) / (float64(now) * float64(len(a.chips)))
}

func (a *Array) checkPPA(ppa PPA) {
	if ppa < 0 || int64(ppa) >= int64(a.geo.Pages()) {
		panic(fmt.Sprintf("nand: invalid ppa %d", ppa))
	}
}
