package nand

import (
	"bytes"
	"encoding/binary"
	"testing"

	"anykey/internal/kv"
	"anykey/internal/payload"
)

func flyGeo() Geometry {
	return Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 4, PagesPerBlock: 6, PageSize: 512}
}

func flyArray(t *testing.T) *Array {
	t.Helper()
	a, err := New(flyGeo(), TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	a.ConfigureMemory(MemoryFlyweight)
	return a
}

// buildEntityPage builds a sealed kv data page of entities whose values come
// from the payload generator (and are registered, as the workload layer
// does), returning the image.
func buildEntityPage(t *testing.T, pageSize int, seeds []uint64, valueLen int) []byte {
	t.Helper()
	img := make([]byte, pageSize)
	w := kv.NewPageWriter(img, nil)
	for i, seed := range seeds {
		v := make([]byte, valueLen)
		payload.Fill(v, seed)
		payload.Note(v, seed)
		key := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
		e := kv.Entity{Key: key, Hash: uint32(seed), Value: v}
		if !w.AppendEntity(&e) {
			t.Fatalf("entity %d does not fit", i)
		}
	}
	w.Seal()
	return img
}

func TestFlyweightEntityPageByteIdentity(t *testing.T) {
	a := flyArray(t)
	img := buildEntityPage(t, a.Geometry().PageSize, []uint64{101, 102, 103}, 96)
	orig := append([]byte(nil), img...)

	mustProgram(t, a, 0, 0, img, CauseFlush)
	// The flyweight store must not retain the programmed buffer: clobbering
	// it afterwards (arena recycling) must not change what reads return.
	for i := range img {
		img[i] = 0xEE
	}
	if got := a.PageData(0); !bytes.Equal(got, orig) {
		t.Fatal("flyweight page diverges from programmed bytes")
	}

	fp := a.Footprint()
	if fp.Mode != MemoryFlyweight {
		t.Fatalf("mode = %v, want flyweight", fp.Mode)
	}
	if fp.RawFallbackPages != 0 {
		t.Fatalf("entity page fell back to raw storage (%d raw pages)", fp.RawFallbackPages)
	}
	// Three 96-byte values plus the trailing zero gap are excised; the
	// skeleton must be well under half the page.
	if skel := fp.ResidentBytes - flyPageOverhead; skel > int64(a.Geometry().PageSize)/2 {
		t.Fatalf("skeleton too large: %d bytes of a %d-byte page", skel, a.Geometry().PageSize)
	}
}

func TestFlyweightRawFallbackCopies(t *testing.T) {
	a := flyArray(t)
	// Arbitrary unsealed bytes (no valid CRC): kept raw, still byte-exact,
	// and copied rather than retained.
	img := page(a, 0x5A)
	orig := append([]byte(nil), img...)
	mustProgram(t, a, 0, 0, img, CauseFlush)
	img[0] = 0xFF
	if !bytes.Equal(a.PageData(0), orig) {
		t.Fatal("raw-fallback page diverges from programmed bytes")
	}
	if fp := a.Footprint(); fp.RawFallbackPages != 1 {
		t.Fatalf("RawFallbackPages = %d, want 1", fp.RawFallbackPages)
	}
}

func TestFlyweightEraseAndRewrite(t *testing.T) {
	a := flyArray(t)
	mustProgram(t, a, 0, 0, buildEntityPage(t, a.Geometry().PageSize, []uint64{7}, 64), CauseFlush)
	if _, err := a.Erase(0, 0, CauseGC); err != nil {
		t.Fatal(err)
	}
	if a.Written(0) {
		t.Fatal("page survives erase")
	}
	if fp := a.Footprint(); fp.LivePages != 0 || fp.ResidentBytes != 0 {
		t.Fatalf("footprint not empty after erase: %+v", fp)
	}
	img := buildEntityPage(t, a.Geometry().PageSize, []uint64{8, 9}, 48)
	orig := append([]byte(nil), img...)
	mustProgram(t, a, 0, 0, img, CauseFlush)
	if !bytes.Equal(a.PageData(0), orig) {
		t.Fatal("rewrite after erase diverges")
	}
}

// buildLogPages builds two sealed value-log pages in core/vlog.go's format:
// a value split across them as a first fragment (chunk < total) continued by
// record 0 of the next page in seq order.
func buildLogPages(t *testing.T, pageSize int, seed uint64, total, firstChunk int) (p0, p1 []byte, want []byte) {
	t.Helper()
	v := make([]byte, total)
	payload.Fill(v, seed)
	payload.Note(v, seed)

	hdr := func(seq uint64) []byte {
		h := make([]byte, flyLogHdrLen)
		binary.LittleEndian.PutUint16(h[0:], flyLogMagic)
		binary.LittleEndian.PutUint64(h[2:], seq)
		binary.LittleEndian.PutUint64(h[10:], uint64(seq)) // logical PPA, opaque here
		return h
	}
	frag := func(kind byte, tot int, chunk []byte) []byte {
		rec := []byte{kind}
		if kind == flyFragFirst {
			rec = binary.AppendUvarint(rec, uint64(tot))
		}
		rec = binary.AppendUvarint(rec, uint64(len(chunk)))
		return append(rec, chunk...)
	}

	p0 = make([]byte, pageSize)
	w0 := kv.NewPageWriter(p0, hdr(0))
	if !w0.AppendRaw(frag(flyFragFirst, total, v[:firstChunk])) {
		t.Fatal("first fragment does not fit")
	}
	w0.Seal()

	p1 = make([]byte, pageSize)
	w1 := kv.NewPageWriter(p1, hdr(1))
	if !w1.AppendRaw(frag(flyFragCont, 0, v[firstChunk:])) {
		t.Fatal("continuation fragment does not fit")
	}
	w1.Seal()
	return p0, p1, v
}

func TestFlyweightLogFragmentContinuation(t *testing.T) {
	a := flyArray(t)
	ps := a.Geometry().PageSize
	p0, p1, _ := buildLogPages(t, ps, 0xC0FFEE, 300, 180)
	o0 := append([]byte(nil), p0...)
	o1 := append([]byte(nil), p1...)

	mustProgram(t, a, 0, 0, p0, CauseLog)
	mustProgram(t, a, 0, 1, p1, CauseLog)
	if !bytes.Equal(a.PageData(0), o0) || !bytes.Equal(a.PageData(1), o1) {
		t.Fatal("log pages diverge from programmed bytes")
	}
	fp := a.Footprint()
	if fp.RawFallbackPages != 0 {
		t.Fatalf("log pages fell back to raw storage (%d raw)", fp.RawFallbackPages)
	}
	// Both chunks excised: resident well below the two raw pages.
	if fp.ResidentBytes >= fp.LogicalBytes {
		t.Fatalf("no compression on log pages: resident %d >= logical %d", fp.ResidentBytes, fp.LogicalBytes)
	}
}

func TestFlyweightMaterializationCache(t *testing.T) {
	a := flyArray(t)
	mustProgram(t, a, 0, 0, buildEntityPage(t, a.Geometry().PageSize, []uint64{21, 22}, 80), CauseFlush)
	first := a.PageData(0)
	second := a.PageData(0)
	if &first[0] != &second[0] {
		t.Fatal("repeated PageData did not hit the materialisation cache")
	}
	if fp := a.Footprint(); fp.CacheHits == 0 {
		t.Fatalf("no cache hits recorded: %+v", fp)
	}
}

func TestFlyweightReleaseDropsPayloads(t *testing.T) {
	a := flyArray(t)
	mustProgram(t, a, 0, 0, buildEntityPage(t, a.Geometry().PageSize, []uint64{31}, 64), CauseFlush)
	a.Release()
	if fp := a.Footprint(); fp.LivePages != 0 || fp.ResidentBytes != 0 {
		t.Fatalf("footprint not empty after release: %+v", fp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("data access after Release did not panic")
		}
	}()
	a.PageData(0)
}

func TestConfigureMemoryAuto(t *testing.T) {
	small, err := New(flyGeo(), TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	small.ConfigureMemory(MemoryAuto)
	if small.Footprint().Mode != MemoryRaw {
		t.Fatalf("small geometry resolved to %v, want raw", small.Footprint().Mode)
	}
	if !small.Retains() {
		t.Fatal("raw store must retain programmed buffers")
	}

	big, err := New(Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 512, PagesPerBlock: 64, PageSize: 8192}, TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	if big.Geometry().Capacity() < flyweightAutoBytes {
		t.Fatal("test geometry below the auto threshold")
	}
	big.ConfigureMemory(MemoryAuto)
	if big.Footprint().Mode != MemoryFlyweight {
		t.Fatalf("large geometry resolved to %v, want flyweight", big.Footprint().Mode)
	}
	if big.Retains() {
		t.Fatal("flyweight store must not retain programmed buffers")
	}
}

func TestPageArenaRecycles(t *testing.T) {
	ar := NewPageArena(64, 4, true)
	b := ar.Acquire()
	b[0] = 0xFF
	ar.Release(b)
	c := ar.Acquire()
	if &b[0] != &c[0] {
		t.Fatal("recycling arena did not reuse the released buffer")
	}
	if c[0] != 0 {
		t.Fatal("Acquire returned a non-zeroed buffer")
	}

	noRecycle := NewPageArena(64, 4, false)
	d := noRecycle.Acquire()
	noRecycle.Release(d)
	if e := noRecycle.Acquire(); &d[0] == &e[0] {
		t.Fatal("non-recycling arena reused a buffer")
	}
}
