package nand

import (
	"strings"
	"testing"

	"anykey/internal/sim"
)

func testGeo() Geometry {
	return Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 4, PagesPerBlock: 6, PageSize: 64}
}

func testArray(t *testing.T) *Array {
	t.Helper()
	a, err := New(testGeo(), TLCTiming())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustProgram(t *testing.T, a *Array, at sim.Time, ppa PPA, data []byte, c Cause) sim.Time {
	t.Helper()
	done, err := a.Program(at, ppa, data, c)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func page(a *Array, fill byte) []byte {
	b := make([]byte, a.Geometry().PageSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestGeometryArithmetic(t *testing.T) {
	g := testGeo()
	if g.Chips() != 4 || g.Blocks() != 16 || g.Pages() != 96 || g.Capacity() != 96*64 {
		t.Fatalf("geometry arithmetic wrong: %+v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.PageSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero page size validated")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := testArray(t)
	data := page(a, 0xAB)
	done := mustProgram(t, a, 0, 0, data, CauseFlush)
	if done <= 0 {
		t.Fatal("program took no time")
	}
	rdone := a.Read(done, 0, CauseUser)
	if !rdone.After(done) {
		t.Fatal("read took no time")
	}
	got := a.PageData(0)
	if &got[0] != &data[0] {
		t.Fatal("PageData did not return the programmed buffer")
	}
	c := a.Counters()
	if c.Writes[CauseFlush] != 1 || c.Reads[CauseUser] != 1 || c.TotalWrites() != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestPageTypeLatencies(t *testing.T) {
	a := testArray(t)
	tm := TLCTiming()
	// Pages 0,1,2 of one block are LSB,CSB,MSB. Program them and check each
	// read's cell latency by issuing when chip and channel are long idle.
	var at sim.Time
	for i := 0; i < 3; i++ {
		at = mustProgram(t, a, at, PPA(i), page(a, byte(i)), CauseFlush)
	}
	idle := at.Add(sim.Second)
	for i := 0; i < 3; i++ {
		done := a.Read(idle, PPA(i), CauseUser)
		want := tm.Read[i] + tm.transfer(a.Geometry().PageSize)
		if done.Sub(idle) != want {
			t.Errorf("page %d read latency %v, want %v", i, done.Sub(idle), want)
		}
		idle = done.Add(sim.Second)
	}
}

func TestChipQueueing(t *testing.T) {
	a := testArray(t)
	// Blocks 0 and 4 share chip 0 (16 blocks, 4 chips, block%4==chip... with
	// chipOf = block % chips). Blocks 0 and 1 are on different chips.
	a.Program(0, a.PageOf(0, 0), page(a, 1), CauseFlush)
	a.Program(0, a.PageOf(1, 0), page(a, 2), CauseFlush)
	sameChip := a.PageOf(4, 0)
	a.Program(0, sameChip, page(a, 3), CauseFlush)

	// The two different-chip programs overlap; the same-chip one queues.
	r0 := a.Read(sim.Time(sim.Second), a.PageOf(0, 0), CauseUser)
	r1 := a.Read(sim.Time(sim.Second), a.PageOf(1, 0), CauseUser)
	// Issue two reads on chip 0 at the same instant: the second must queue
	// behind the first's cell time.
	q0 := a.Read(sim.Time(2*sim.Second), a.PageOf(0, 0), CauseUser)
	q1 := a.Read(sim.Time(2*sim.Second), sameChip, CauseUser)
	if q1.Sub(q0) < TLCTiming().Read[0] {
		t.Fatalf("same-chip reads did not queue: %v then %v", q0, q1)
	}
	_ = r0
	_ = r1
}

func TestOutOfOrderProgramPanics(t *testing.T) {
	a := testArray(t)
	a.Program(0, 0, page(a, 1), CauseFlush)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "out-of-order") {
			t.Fatalf("expected out-of-order panic, got %v", r)
		}
	}()
	a.Program(0, 2, page(a, 2), CauseFlush) // skips page 1
}

func TestReuseWithoutErasePanics(t *testing.T) {
	a := testArray(t)
	g := a.Geometry()
	var at sim.Time
	for i := 0; i < g.PagesPerBlock; i++ {
		at = mustProgram(t, a, at, PPA(i), page(a, byte(i)), CauseFlush)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reuse without erase")
		}
	}()
	a.Program(at, 0, page(a, 9), CauseFlush)
}

func TestEraseResetsBlock(t *testing.T) {
	a := testArray(t)
	g := a.Geometry()
	var at sim.Time
	for i := 0; i < g.PagesPerBlock; i++ {
		at = mustProgram(t, a, at, PPA(i), page(a, byte(i)), CauseFlush)
	}
	if a.FreePagesIn(0) != 0 {
		t.Fatalf("free pages = %d, want 0", a.FreePagesIn(0))
	}
	at, err := a.Erase(at, 0, CauseGC)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreePagesIn(0) != g.PagesPerBlock {
		t.Fatal("erase did not reset block")
	}
	if a.Written(0) {
		t.Fatal("page still written after erase")
	}
	// Programming page 0 again must now succeed.
	a.Program(at, 0, page(a, 7), CauseGC)
	if a.Counters().Erases != 1 {
		t.Fatalf("erases = %d", a.Counters().Erases)
	}
}

func TestReadUnwrittenPanics(t *testing.T) {
	a := testArray(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading unwritten page")
		}
	}()
	a.Read(0, 5, CauseUser)
}

func TestCountersSub(t *testing.T) {
	a := testArray(t)
	a.Program(0, 0, page(a, 1), CauseFlush)
	before := a.Counters()
	a.Program(0, 1, page(a, 2), CauseCompaction)
	a.Read(0, 0, CauseUser)
	d := a.Counters().Sub(before)
	if d.Writes[CauseCompaction] != 1 || d.Writes[CauseFlush] != 0 || d.Reads[CauseUser] != 1 {
		t.Fatalf("delta: %+v", d)
	}
}

func TestCauseString(t *testing.T) {
	if CauseGC.String() != "gc" || CauseCompaction.String() != "compaction" {
		t.Fatal("cause names wrong")
	}
	if !strings.Contains(Cause(99).String(), "99") {
		t.Fatal("out-of-range cause name wrong")
	}
}

func TestChipUtilization(t *testing.T) {
	a := testArray(t)
	done := mustProgram(t, a, 0, 0, page(a, 1), CauseFlush)
	u := a.ChipUtilization(done)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	if a.ChipUtilization(0) != 0 {
		t.Fatal("utilization at epoch not 0")
	}
}
