package nand

// MemoryMode selects how the array retains programmed page payloads.
type MemoryMode int

const (
	// MemoryAuto picks raw below flyweightAutoBytes of capacity and
	// flyweight at or above it: small geometries keep the zero-overhead
	// representation the benchmarks are tuned for, paper-scale ones get the
	// compact store that makes them fit in host memory at all.
	MemoryAuto MemoryMode = iota
	// MemoryRaw retains every programmed page as its full []byte image.
	MemoryRaw
	// MemoryFlyweight stores pages as skeletons with regenerable byte
	// ranges excised (see flyweight.go). Reads are byte-identical to raw.
	MemoryFlyweight
)

func (m MemoryMode) String() string {
	switch m {
	case MemoryRaw:
		return "raw"
	case MemoryFlyweight:
		return "flyweight"
	default:
		return "auto"
	}
}

// flyweightAutoBytes is the MemoryAuto capacity threshold.
const flyweightAutoBytes = 1 << 30

// StoreFootprint reports the payload store's memory accounting.
type StoreFootprint struct {
	Mode MemoryMode

	// LivePages counts pages currently programmed (written, not erased).
	LivePages int64
	// LogicalBytes is what a raw store would retain: LivePages × page size.
	LogicalBytes int64
	// ResidentBytes is what this store actually retains for page payloads
	// (raw images, or skeletons + splice records + per-page overhead).
	ResidentBytes int64
	// RawFallbackPages counts flyweight pages kept as full images because
	// nothing in them was regenerable (torn pages, meta-only pages, or
	// values the intern registry could not resolve).
	RawFallbackPages int64

	// Materialisation cache occupancy and traffic (flyweight only).
	CacheBytes  int64
	CacheHits   int64
	CacheMisses int64
}

// Add merges another footprint into this one (cluster and fleet rollups).
// The merged Mode is MemoryFlyweight when any member runs compact — the
// interesting fleet-level fact is whether flyweighting is active anywhere.
func (f StoreFootprint) Add(o StoreFootprint) StoreFootprint {
	if o.Mode == MemoryFlyweight {
		f.Mode = MemoryFlyweight
	} else if f.LivePages == 0 && f.LogicalBytes == 0 {
		f.Mode = o.Mode
	}
	f.LivePages += o.LivePages
	f.LogicalBytes += o.LogicalBytes
	f.ResidentBytes += o.ResidentBytes
	f.RawFallbackPages += o.RawFallbackPages
	f.CacheBytes += o.CacheBytes
	f.CacheHits += o.CacheHits
	f.CacheMisses += o.CacheMisses
	return f
}

// payloadStore abstracts where programmed page payloads live. The Array owns
// exactly one; all methods run on the device's simulation goroutine.
//
// The ownership contract differs by implementation and is exposed through
// retains(): a retaining store (raw) keeps the exact buffer passed to set,
// so callers must never reuse programmed images; a non-retaining store
// (flyweight) copies what it needs, allowing callers to recycle build
// buffers through a page arena.
type payloadStore interface {
	// set records the payload of a freshly programmed page. data is exactly
	// one page long.
	set(ppa PPA, data []byte)
	// get returns the page's payload, byte-identical to what was set. The
	// returned slice must never be mutated by callers and stays valid until
	// the device is released (flyweight buffers are immutable and dropped
	// only by the garbage collector once callers let go).
	get(ppa PPA) []byte
	// written reports whether the page holds data.
	written(ppa PPA) bool
	// clear erases n consecutive pages starting at first.
	clear(first PPA, n int)
	// release drops every retained payload eagerly (device close).
	release()
	// retains reports whether set keeps a reference to its argument.
	retains() bool
	footprint() StoreFootprint
}

// rawStore is the historical representation: one live []byte per programmed
// page, taking ownership of the programmed buffer.
type rawStore struct {
	pages    [][]byte
	pageSize int
	live     int64
	released bool
}

func newRawStore(geo Geometry) *rawStore {
	return &rawStore{pages: make([][]byte, geo.Pages()), pageSize: geo.PageSize}
}

func (s *rawStore) set(ppa PPA, data []byte) {
	if s.released {
		panic("nand: page store used after release")
	}
	if s.pages[ppa] == nil {
		s.live++
	}
	s.pages[ppa] = data
}

func (s *rawStore) get(ppa PPA) []byte {
	if s.released {
		panic("nand: page store used after release")
	}
	return s.pages[ppa]
}

func (s *rawStore) written(ppa PPA) bool {
	return !s.released && s.pages[ppa] != nil
}

func (s *rawStore) clear(first PPA, n int) {
	for i := PPA(0); i < PPA(n); i++ {
		if s.pages[first+i] != nil {
			s.live--
			s.pages[first+i] = nil
		}
	}
}

func (s *rawStore) release() {
	s.pages = nil
	s.live = 0
	s.released = true
}

func (s *rawStore) retains() bool { return true }

func (s *rawStore) footprint() StoreFootprint {
	return StoreFootprint{
		Mode:          MemoryRaw,
		LivePages:     s.live,
		LogicalBytes:  s.live * int64(s.pageSize),
		ResidentBytes: s.live * int64(s.pageSize+24), // images + slice headers
	}
}

// PageArena recycles page-image buffers for callers that build pages to
// program. Recycling is only sound against a non-retaining payload store
// (the flash array copies what it keeps); against a retaining store the
// arena degrades to plain allocation, preserving the historical "programmed
// buffers are never reused" contract.
type PageArena struct {
	free     [][]byte
	pageSize int
	max      int
	recycle  bool
}

// NewPageArena builds an arena of pageSize buffers keeping at most max free
// buffers when recycling is enabled.
func NewPageArena(pageSize, max int, recycle bool) *PageArena {
	return &PageArena{pageSize: pageSize, max: max, recycle: recycle}
}

// Acquire returns a zero-filled page image (PageWriter requires zeroed
// buffers).
func (a *PageArena) Acquire() []byte {
	if n := len(a.free); n > 0 {
		img := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		clear(img)
		return img
	}
	return make([]byte, a.pageSize)
}

// Release returns images whose contents have been handed to the flash array
// (or abandoned). No-op unless recycling.
func (a *PageArena) Release(imgs ...[]byte) {
	if !a.recycle {
		return
	}
	for _, img := range imgs {
		if len(img) == a.pageSize && len(a.free) < a.max {
			a.free = append(a.free, img)
		}
	}
}
