package nand

import (
	"anykey/internal/kv"
	"anykey/internal/payload"
)

// The flyweight payload store keeps programmed pages as skeletons with
// regenerable byte ranges excised, instead of full images. Two kinds of
// range are excised:
//
//   - workload value bytes, which are pure functions of a seed the payload
//     intern registry resolves (inline entity values, and value-log fragment
//     chunks — including chunks that continue a value from the previous log
//     page, resumed through the stream state saved when that page was
//     stored);
//
//   - the zero gap between a page's last record and its offset table
//     (partially filled pages programmed by Sync or small flushes).
//
// Every excision is verified at program time by regenerating the bytes and
// comparing: a hash collision, an evicted registry entry or a misparsed
// record can only leave bytes in the skeleton (costing memory), never
// corrupt them. get() therefore returns images byte-identical to what was
// programmed, and simulations are bit-for-bit the same as with the raw
// store — the golden-equivalence tests in the root package pin exactly
// that.
//
// Materialised images are cached under an LRU byte budget. Buffers are
// immutable and never recycled: eviction drops the cache's reference only,
// so a caller still holding an aliased slice (a GET's value, compaction
// entities, a log peek) keeps the buffer alive through the garbage
// collector — preserving the array-wide "page buffers are never mutated,
// erase only drops the reference" contract.

// Mirrors of the owners' on-flash formats the parser recognises. These are
// optimisation hints, not load-bearing layout knowledge: if an owner format
// drifts, parsing fails verification and pages fall back to raw storage —
// more memory, same bytes.
const (
	flyLogMagic  uint16 = 0x106A // core/vlog.go logPageMagic
	flyLogHdrLen        = 18     // magic u16 | seq u64 LE | logical PPA u64 LE
	flyFragFirst byte   = 0xF1   // core/vlog.go fragFirst
	flyFragCont  byte   = 0xF2   // core/vlog.go fragCont
)

// splice is one excised byte range of a page: [off, off+n) regenerates by
// filling from state. state 0 means zero-fill (the trailing free gap).
type splice struct {
	off   uint32
	n     uint32
	state uint64
}

// flyPage is one stored page: the page bytes with every splice range
// removed, plus the splices (ascending offset). A nil splices slice marks a
// raw fallback page whose skel is the complete image.
type flyPage struct {
	skel    []byte
	splices []splice
}

// flyPageOverhead approximates the fixed per-live-page cost: the flyPage
// struct, its pointer in the page table, and allocator rounding.
const flyPageOverhead = 64

// pendingWindow bounds the continuation-state map: states are kept for the
// most recent pendingWindow log pages, comfortably covering the program of
// the next page in the append stream (and its grown-bad re-issue).
const pendingWindow = 128

type flyweightStore struct {
	geo   Geometry
	pages []*flyPage

	live     int64
	resident int64
	rawPages int64

	mat matCache

	// pending maps a log page seq to the payload stream state at the start
	// of that page's continuation fragment (always record 0), recorded when
	// the previous page in the stream was stored.
	pending  map[uint64]payload.State
	pendSeqs []uint64

	// scratch for verification-free zero checks and entity decoding.
	ent kv.Entity

	released bool
}

func newFlyweightStore(geo Geometry, cacheBudget int64) *flyweightStore {
	payload.Enable()
	return &flyweightStore{
		geo:     geo,
		pages:   make([]*flyPage, geo.Pages()),
		mat:     newMatCache(cacheBudget),
		pending: make(map[uint64]payload.State, pendingWindow),
	}
}

func (s *flyweightStore) retains() bool { return false }

func (s *flyweightStore) written(ppa PPA) bool {
	return !s.released && s.pages[ppa] != nil
}

func (s *flyweightStore) set(ppa PPA, data []byte) {
	if s.released {
		panic("nand: page store used after release")
	}
	if s.pages[ppa] != nil {
		// Unreachable through Array.Program (program-without-erase panics
		// upstream), but keep the accounting safe.
		s.drop(ppa)
	}
	fp := s.parse(data)
	s.pages[ppa] = fp
	s.live++
	s.resident += s.pageBytes(fp)
	if fp.splices == nil {
		s.rawPages++
	}
}

func (s *flyweightStore) get(ppa PPA) []byte {
	if s.released {
		panic("nand: page store used after release")
	}
	fp := s.pages[ppa]
	if fp == nil {
		return nil
	}
	if fp.splices == nil {
		return fp.skel // raw fallback: the skeleton IS the image
	}
	if img := s.mat.get(ppa); img != nil {
		return img
	}
	img := s.materialize(fp)
	s.mat.put(ppa, img)
	return img
}

func (s *flyweightStore) clear(first PPA, n int) {
	if s.released {
		return
	}
	for i := PPA(0); i < PPA(n); i++ {
		if s.pages[first+i] != nil {
			s.drop(first + i)
		}
	}
}

func (s *flyweightStore) drop(ppa PPA) {
	fp := s.pages[ppa]
	s.resident -= s.pageBytes(fp)
	s.live--
	if fp.splices == nil {
		s.rawPages--
	}
	s.pages[ppa] = nil
	s.mat.drop(ppa)
}

func (s *flyweightStore) release() {
	s.pages = nil
	s.pending = nil
	s.pendSeqs = nil
	s.mat = newMatCache(0)
	s.live, s.resident, s.rawPages = 0, 0, 0
	s.released = true
}

func (s *flyweightStore) pageBytes(fp *flyPage) int64 {
	return int64(len(fp.skel)) + int64(16*len(fp.splices)) + flyPageOverhead
}

func (s *flyweightStore) footprint() StoreFootprint {
	return StoreFootprint{
		Mode:             MemoryFlyweight,
		LivePages:        s.live,
		LogicalBytes:     s.live * int64(s.geo.PageSize),
		ResidentBytes:    s.resident,
		RawFallbackPages: s.rawPages,
		CacheBytes:       s.mat.bytes,
		CacheHits:        s.mat.hits,
		CacheMisses:      s.mat.misses,
	}
}

// --- parsing --------------------------------------------------------------

// parse builds the flyweight representation of a freshly programmed page.
// It never retains data (callers may recycle the buffer) and falls back to
// a raw copy whenever the page cannot be safely skeletonised.
func (s *flyweightStore) parse(data []byte) *flyPage {
	splices := s.findSplices(data)
	if len(splices) == 0 {
		return &flyPage{skel: append([]byte(nil), data...)}
	}
	var excised int
	for _, sp := range splices {
		excised += int(sp.n)
	}
	skel := make([]byte, 0, len(data)-excised)
	pos := 0
	for _, sp := range splices {
		skel = append(skel, data[pos:sp.off]...)
		pos = int(sp.off) + int(sp.n)
	}
	skel = append(skel, data[pos:]...)
	return &flyPage{skel: skel, splices: splices}
}

// findSplices walks the page's records looking for verified regenerable
// ranges. Any structural inconsistency aborts to raw storage.
func (s *flyweightStore) findSplices(data []byte) []splice {
	pr := kv.OpenPage(data)
	if !pr.Verify() {
		return nil // torn or unsealed page: keep the exact bytes
	}
	count := pr.Count()
	lo, hi := pr.PayloadBounds()
	if count < 0 || hi < lo || hi > len(data) {
		return nil
	}

	// The log-page header tells us the page's position in the value-log
	// append stream, which keys cross-page fragment continuation states.
	extra := pr.Extra()
	isLog := false
	var seq uint64
	if len(extra) >= flyLogHdrLen && uint16(extra[0])|uint16(extra[1])<<8 == flyLogMagic {
		isLog = true
		for i := 0; i < 8; i++ {
			seq |= uint64(extra[2+i]) << (8 * i)
		}
	}

	var splices []splice
	end := lo // running end of the parsed record region
	for i := 0; i < count; i++ {
		off := pr.RecordOffset(i)
		if off != end || off > hi {
			return nil // non-contiguous records: not a layout we know
		}
		next := hi
		if i+1 < count {
			next = pr.RecordOffset(i + 1)
		}
		if next < off || next > hi {
			return nil
		}
		rec := data[off:next]
		var used int
		if isLog {
			used = s.spliceFragment(rec, off, i, count, seq, &splices)
		} else {
			used = s.spliceEntity(rec, off, &splices)
		}
		if used <= 0 {
			return nil // undecodable record: keep the whole page raw
		}
		if i+1 < count && used != len(rec) {
			return nil // record length disagrees with the offset table
		}
		end = off + used
	}

	// The gap between the last record and the offset table is zero by
	// construction (writers fill zeroed buffers); verify and excise it.
	if gap := hi - end; gap >= payload.PrefixLen {
		allZero := true
		for _, b := range data[end:hi] {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			splices = append(splices, splice{off: uint32(end), n: uint32(gap)})
		}
	}
	return splices
}

// spliceEntity decodes rec as a KV entity and, when its inline value
// verifies against the intern registry, appends the value range as a
// splice. Returns the record's decoded length, or 0 when undecodable.
func (s *flyweightStore) spliceEntity(rec []byte, off int, splices *[]splice) int {
	n, err := kv.DecodeEntityInto(&s.ent, rec)
	if err != nil {
		return 0
	}
	e := &s.ent
	if e.Tombstone || e.InLog || len(e.Value) < payload.MinLookup {
		return n
	}
	seed, ok := payload.Lookup(e.Value)
	if !ok {
		return n
	}
	if _, ok := payload.Start(seed).VerifyFrom(e.Value); !ok {
		return n
	}
	// The inline value is the encoding's final field: its page range is the
	// record's tail.
	vOff := off + n - len(e.Value)
	*splices = append(*splices, splice{
		off:   uint32(vOff),
		n:     uint32(len(e.Value)),
		state: uint64(payload.Start(seed)),
	})
	return n
}

// spliceFragment decodes rec as a value-log fragment record. First
// fragments resolve through the intern registry; continuation fragments
// (always record 0 of their page) resume from the state saved when the
// previous page in the log stream was stored. The state after a fragment
// that spills past this page is saved for the next seq.
func (s *flyweightStore) spliceFragment(rec []byte, off, idx, count int, seq uint64, splices *[]splice) int {
	if len(rec) == 0 || (rec[0] != flyFragFirst && rec[0] != flyFragCont) {
		return 0
	}
	first := rec[0] == flyFragFirst
	used := 1
	var total uint64
	if first {
		t, n := flyUvarint(rec[used:])
		if n <= 0 {
			return 0
		}
		total = t
		used += n
	}
	fragLen, n := flyUvarint(rec[used:])
	if n <= 0 || int(fragLen) > len(rec)-used-n {
		return 0
	}
	used += n
	chunk := rec[used : used+int(fragLen)]
	recLen := used + int(fragLen)

	var st payload.State
	verified := false
	if first {
		if seed, ok := payload.Lookup(chunk); ok {
			if after, ok := payload.Start(seed).VerifyFrom(chunk); ok {
				st, verified = payload.Start(seed), true
				if uint64(len(chunk)) < total && idx == count-1 {
					s.savePending(seq+1, after)
				}
			}
		}
	} else if idx == 0 {
		if start, ok := s.pending[seq]; ok {
			if after, ok := start.VerifyFrom(chunk); ok {
				st, verified = start, true
				if idx == count-1 {
					// The continuation may itself continue (values spanning
					// three or more pages).
					s.savePending(seq+1, after)
				}
			}
		}
	}
	if verified && len(chunk) >= payload.PrefixLen {
		*splices = append(*splices, splice{
			off:   uint32(off + used),
			n:     uint32(len(chunk)),
			state: uint64(st),
		})
	}
	return recLen
}

// savePending records the continuation state for a log seq, retiring
// entries beyond the window.
func (s *flyweightStore) savePending(seq uint64, st payload.State) {
	if _, ok := s.pending[seq]; !ok {
		s.pendSeqs = append(s.pendSeqs, seq)
		if len(s.pendSeqs) > pendingWindow {
			old := s.pendSeqs[0]
			s.pendSeqs = s.pendSeqs[1:]
			delete(s.pending, old)
		}
	}
	s.pending[seq] = st
}

func flyUvarint(b []byte) (uint64, int) {
	var x uint64
	for i := 0; i < len(b) && i < 10; i++ {
		x |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return x, i + 1
		}
	}
	return 0, 0
}

// --- materialisation ------------------------------------------------------

// materialize rebuilds the full page image from skeleton and splices. The
// result is byte-identical to the programmed image (parse verified every
// splice against the actual bytes).
func (s *flyweightStore) materialize(fp *flyPage) []byte {
	img := make([]byte, s.geo.PageSize)
	pos, si := 0, 0
	for _, sp := range fp.splices {
		n := copy(img[pos:sp.off], fp.skel[si:])
		si += n
		pos = int(sp.off)
		if sp.state != 0 {
			st := payload.State(sp.state)
			st.Fill(img[pos : pos+int(sp.n)])
			// Re-register ranges that start a stream, so values copied out
			// of this page and re-programmed elsewhere (compaction, GC
			// relocation, fold write-back, fleet rebuild) resolve again.
			// A state with its low bit set regenerates its own range from
			// Start(state), making it a valid seed for re-registration.
			if payload.Start(uint64(sp.state)) == st {
				payload.Note(img[pos:pos+int(sp.n)], uint64(sp.state))
			}
		}
		// state 0: zero gap, img is already zero-filled.
		pos += int(sp.n)
	}
	copy(img[pos:], fp.skel[si:])
	return img
}

// --- materialisation cache ------------------------------------------------

type matEntry struct {
	ppa        PPA
	img        []byte
	prev, next *matEntry
}

// matCache is a PPA-keyed LRU of materialised page images under a byte
// budget. Eviction only drops the cache's reference; buffers are immutable
// and survive through any aliases callers hold.
type matCache struct {
	byPPA        map[PPA]*matEntry
	head, tail   *matEntry
	bytes        int64
	budget       int64
	hits, misses int64
}

func newMatCache(budget int64) matCache {
	return matCache{byPPA: make(map[PPA]*matEntry), budget: budget}
}

func (c *matCache) get(ppa PPA) []byte {
	e := c.byPPA[ppa]
	if e == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.moveFront(e)
	return e.img
}

func (c *matCache) put(ppa PPA, img []byte) {
	e := &matEntry{ppa: ppa, img: img}
	c.byPPA[ppa] = e
	c.pushFront(e)
	c.bytes += int64(len(img))
	for c.bytes > c.budget && c.tail != nil && c.tail != c.head {
		c.evict(c.tail)
	}
}

func (c *matCache) drop(ppa PPA) {
	if e := c.byPPA[ppa]; e != nil {
		c.evict(e)
	}
}

func (c *matCache) evict(e *matEntry) {
	c.unlink(e)
	delete(c.byPPA, e.ppa)
	c.bytes -= int64(len(e.img))
}

func (c *matCache) pushFront(e *matEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *matCache) unlink(e *matEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *matCache) moveFront(e *matEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// defaultMatCacheBytes sizes the materialisation cache for a geometry.
func defaultMatCacheBytes(geo Geometry) int64 {
	b := geo.Capacity() / 1024
	const minB, maxB = 8 << 20, 128 << 20
	if b < minB {
		return minB
	}
	if b > maxB {
		return maxB
	}
	return b
}
