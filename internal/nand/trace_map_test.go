package nand

import (
	"testing"

	"anykey/internal/trace"
)

// trace.CauseFromFlash decodes nand.Cause by ordinal because trace is a
// leaf package that cannot import nand. This pins the two orderings to each
// other: reordering either enum must fail here before it silently
// mislabels every traced flash event.
func TestTraceCauseMapping(t *testing.T) {
	cases := []struct {
		flash Cause
		write bool
		want  trace.Cause
	}{
		{CauseUser, false, trace.CauseHostRead},
		{CauseUser, true, trace.CauseHostWrite},
		{CauseFlush, true, trace.CauseFlush},
		{CauseCompaction, false, trace.CauseCompaction},
		{CauseCompaction, true, trace.CauseCompaction},
		{CauseGC, true, trace.CauseGC},
		{CauseMeta, false, trace.CauseMeta},
		{CauseLog, true, trace.CauseLog},
		{numCauses, false, trace.CauseUnknown},
	}
	for _, c := range cases {
		if got := trace.CauseFromFlash(int(c.flash), c.write); got != c.want {
			t.Errorf("CauseFromFlash(%v, write=%v) = %v, want %v", c.flash, c.write, got, c.want)
		}
	}
	// The string names must agree too, modulo the user split.
	for c := CauseFlush; c < numCauses; c++ {
		if got := trace.CauseFromFlash(int(c), false).String(); got != c.String() {
			t.Errorf("cause name mismatch at ordinal %d: trace %q, nand %q", int(c), got, c.String())
		}
	}
}
