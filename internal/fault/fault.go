// Package fault injects NAND failure modes into the simulated flash array:
// transient read errors that cost retries, program/erase failures that
// retire blocks as grown-bad, and power cuts at arbitrary flash-op
// boundaries. Injection is driven by a seeded Plan and is fully
// deterministic: every decision is a pure hash of (seed, op index, fault
// kind), so two runs of the same workload with the same plan inject
// bit-for-bit identical faults — which is what makes crash sweeps and
// fault-recovery tests reproducible.
//
// Injected faults are visible to the tracing subsystem without any coupling
// from here: the flash array (internal/nand) emits a read-retry span for the
// extra cell time a transient read error costs and program-fail/erase-fail
// instants for retired blocks, so internal/trace blame reports name
// fault-retry time explicitly rather than folding it into flash service.
package fault

import (
	"fmt"

	"anykey/internal/nand"
	"anykey/internal/stats"
)

// DefaultReadRetries is the number of re-reads charged per transient read
// error when the plan does not specify one (real controllers run a short
// read-retry table before escalating to soft-decode).
const DefaultReadRetries = 3

// Plan is a declarative description of the faults to inject. The zero value
// injects nothing. Rates are per-operation probabilities in [0, 1).
type Plan struct {
	// Seed drives every injection decision. Two runs with equal seeds and
	// equal op sequences inject identical faults.
	Seed int64

	// ReadErrorRate is the probability that a page read hits a transient
	// error burst and must be retried ReadRetries times. Retries charge
	// additional cell-read latency on the owning chip; the data is always
	// recovered (unrecoverable reads are outside this model).
	ReadErrorRate float64

	// ReadRetries is the number of extra cell reads charged per transient
	// read error; 0 means DefaultReadRetries.
	ReadRetries int

	// ProgramFailRate is the probability that a page program fails its
	// verify step. The page is not written and the block is retired as
	// grown-bad (it can still be read, never programmed or erased again).
	ProgramFailRate float64

	// EraseFailRate is the probability that a block erase fails, likewise
	// retiring the block as grown-bad.
	EraseFailRate float64

	// CutAtOp, when positive, cuts power immediately before the CutAtOp-th
	// flash operation (1-based, counting reads, programs and erases in issue
	// order). The cut fires exactly once per injector, so the flash traffic
	// of a subsequent recovery cannot re-trigger it. It surfaces as a panic
	// with a PowerCut value, which the public API and the crashtest harness
	// translate into an error.
	CutAtOp int64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.ReadErrorRate > 0 || p.ProgramFailRate > 0 || p.EraseFailRate > 0 || p.CutAtOp > 0
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ReadErrorRate", p.ReadErrorRate},
		{"ProgramFailRate", p.ProgramFailRate},
		{"EraseFailRate", p.EraseFailRate},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1)", r.name, r.v)
		}
	}
	if p.ReadRetries < 0 {
		return fmt.Errorf("fault: negative ReadRetries %d", p.ReadRetries)
	}
	if p.CutAtOp < 0 {
		return fmt.Errorf("fault: negative CutAtOp %d", p.CutAtOp)
	}
	return nil
}

// PowerCut is the panic value raised when a plan's power cut fires. It
// unwinds the device mid-operation — exactly like losing power between two
// flash commands — leaving the flash array in whatever torn state the
// in-flight multi-page writes had reached. Catch it with AsPowerCut.
type PowerCut struct {
	// Op is the 1-based index of the flash operation the cut pre-empted.
	Op int64
}

func (c PowerCut) Error() string {
	return fmt.Sprintf("fault: power cut before flash op %d", c.Op)
}

// AsPowerCut reports whether a recovered panic value is a power cut.
func AsPowerCut(r any) (PowerCut, bool) {
	pc, ok := r.(PowerCut)
	return pc, ok
}

// Injector implements nand.Injector for a Plan. Attach it to the array with
// nand.Array.SetInjector; it stays attached across Reopen (the array object
// survives a power cycle), so grown-bad state and the op counter persist
// for the lifetime of the simulated device.
type Injector struct {
	plan    Plan
	retries int
	ops     int64
	cutDone bool
	c       stats.FaultCounters
}

// New returns an injector for the plan. The plan should be validated first;
// New normalises only the retry count.
func New(plan Plan) *Injector {
	r := plan.ReadRetries
	if r == 0 {
		r = DefaultReadRetries
	}
	return &Injector{plan: plan, retries: r}
}

// Counters returns a snapshot of the injected-fault counters.
func (in *Injector) Counters() stats.FaultCounters { return in.c }

// Ops returns the number of flash operations observed so far. The crash
// sweep uses a fault-free pilot run's total to bound its cut points.
func (in *Injector) Ops() int64 { return in.ops }

// CutFired reports whether the plan's power cut has already fired.
func (in *Injector) CutFired() bool { return in.cutDone }

// step advances the op counter and fires the power cut when its boundary is
// reached. It runs before the array mutates any state, so the flash image a
// recovery sees is exactly the state as of the previous completed op.
func (in *Injector) step() int64 {
	in.ops++
	if in.plan.CutAtOp > 0 && !in.cutDone && in.ops >= in.plan.CutAtOp {
		in.cutDone = true
		in.c.PowerCuts++
		panic(PowerCut{Op: in.ops})
	}
	return in.ops
}

// Fault-kind salts for the decision hash. Distinct salts decorrelate the
// decisions of different fault kinds at the same op index.
const (
	saltRead = 0x9E3779B97F4A7C15 + iota
	saltProgram
	saltErase
)

// roll returns a deterministic uniform sample in [0, 1) for this op and
// fault kind, via one splitmix64 round over (seed, op, salt).
func (in *Injector) roll(op int64, salt uint64) float64 {
	x := uint64(in.plan.Seed)*0xBF58476D1CE4E5B9 + uint64(op) ^ salt
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// OnRead implements nand.Injector. It returns the number of extra cell
// reads the array must charge for this page read.
func (in *Injector) OnRead(ppa nand.PPA, cause nand.Cause) int {
	op := in.step()
	if in.plan.ReadErrorRate > 0 && in.roll(op, saltRead) < in.plan.ReadErrorRate {
		in.c.ReadErrors[cause]++
		in.c.ReadRetries[cause] += int64(in.retries)
		return in.retries
	}
	return 0
}

// OnProgram implements nand.Injector. It reports whether this page program
// fails, retiring the block as grown-bad.
func (in *Injector) OnProgram(ppa nand.PPA, cause nand.Cause) bool {
	op := in.step()
	if in.plan.ProgramFailRate > 0 && in.roll(op, saltProgram) < in.plan.ProgramFailRate {
		in.c.ProgramFails[cause]++
		return true
	}
	return false
}

// OnErase implements nand.Injector. It reports whether this block erase
// fails, retiring the block as grown-bad.
func (in *Injector) OnErase(b nand.BlockID, cause nand.Cause) bool {
	op := in.step()
	if in.plan.EraseFailRate > 0 && in.roll(op, saltErase) < in.plan.EraseFailRate {
		in.c.EraseFails[cause]++
		return true
	}
	return false
}
