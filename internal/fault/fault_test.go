package fault

import (
	"testing"

	"anykey/internal/nand"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{ReadErrorRate: -0.1},
		{ReadErrorRate: 1.0},
		{ProgramFailRate: 1.5},
		{EraseFailRate: -1},
		{ReadRetries: -2},
		{CutAtOp: -7},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("plan %d (%+v) validated but should not", i, p)
		}
	}
	good := []Plan{
		{},
		{ReadErrorRate: 0.999, ProgramFailRate: 0.5, EraseFailRate: 0.01},
		{CutAtOp: 1, ReadRetries: 10},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d: unexpected %v", i, err)
		}
	}
	if (Plan{Seed: 42}).Enabled() {
		t.Error("seed alone should not enable injection")
	}
	if !(Plan{CutAtOp: 3}).Enabled() || !(Plan{ReadErrorRate: 0.1}).Enabled() {
		t.Error("non-zero rates/cut must enable injection")
	}
}

// drive feeds a fixed op sequence through an injector and records every
// per-op outcome, so two injectors can be compared decision by decision.
func drive(in *Injector, ops int) []int {
	out := make([]int, 0, ops*3)
	for i := 0; i < ops; i++ {
		out = append(out, in.OnRead(nand.PPA(i), nand.CauseUser))
		if in.OnProgram(nand.PPA(i), nand.CauseFlush) {
			out = append(out, -1)
		} else {
			out = append(out, -2)
		}
		if in.OnErase(nand.BlockID(i), nand.CauseGC) {
			out = append(out, -3)
		} else {
			out = append(out, -4)
		}
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Seed: 99, ReadErrorRate: 0.2, ProgramFailRate: 0.1, EraseFailRate: 0.1, ReadRetries: 2}
	a, b := New(plan), New(plan)
	da, db := drive(a, 500), drive(b, 500)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("decision %d diverged: %d vs %d", i, da[i], db[i])
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters diverged:\n%+v\n%+v", a.Counters(), b.Counters())
	}
	if a.Counters().Total() == 0 {
		t.Fatal("20%/10% rates over 1500 ops injected nothing")
	}
	if a.Ops() != 1500 {
		t.Fatalf("ops = %d, want 1500", a.Ops())
	}

	other := New(Plan{Seed: 100, ReadErrorRate: 0.2, ProgramFailRate: 0.1, EraseFailRate: 0.1, ReadRetries: 2})
	if d := drive(other, 500); equalInts(d, da) {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReadRetriesCharged(t *testing.T) {
	in := New(Plan{Seed: 1, ReadErrorRate: 0.5, ReadRetries: 4})
	var extra int64
	for i := 0; i < 200; i++ {
		extra += int64(in.OnRead(nand.PPA(i), nand.CauseCompaction))
	}
	c := in.Counters()
	if c.ReadRetries[nand.CauseCompaction] != extra {
		t.Fatalf("counter says %d retries, reads were charged %d",
			c.ReadRetries[nand.CauseCompaction], extra)
	}
	if c.ReadErrors[nand.CauseCompaction] == 0 {
		t.Fatal("50% error rate hit nothing in 200 reads")
	}
	if extra != c.ReadErrors[nand.CauseCompaction]*4 {
		t.Fatalf("each error must charge exactly 4 retries: %d errors, %d retries",
			c.ReadErrors[nand.CauseCompaction], extra)
	}
}

func TestPowerCutFiresExactlyOnce(t *testing.T) {
	in := New(Plan{Seed: 5, CutAtOp: 10})
	fired := func() (pc PowerCut, ok bool) {
		defer func() {
			if r := recover(); r != nil {
				pc, ok = AsPowerCut(r)
				if !ok {
					panic(r)
				}
			}
		}()
		in.OnRead(0, nand.CauseUser)
		return PowerCut{}, false
	}
	for i := 1; i < 10; i++ {
		if _, ok := fired(); ok {
			t.Fatalf("cut fired early at op %d", i)
		}
	}
	pc, ok := fired()
	if !ok {
		t.Fatal("cut did not fire at op 10")
	}
	if pc.Op != 10 {
		t.Fatalf("cut reported op %d, want 10", pc.Op)
	}
	if !in.CutFired() || in.Counters().PowerCuts != 1 {
		t.Fatalf("cut state not recorded: fired=%v counters=%+v", in.CutFired(), in.Counters())
	}
	// One-shot: the recovery traffic that follows a cut must not re-trigger it.
	for i := 0; i < 50; i++ {
		if _, ok := fired(); ok {
			t.Fatal("cut fired twice")
		}
	}
	if in.Counters().PowerCuts != 1 {
		t.Fatalf("PowerCuts = %d after one-shot cut", in.Counters().PowerCuts)
	}
}
