// Package crashtest is the power-cut crash-consistency harness: it replays
// one deterministic workload against a device while cutting power at evenly
// spaced flash-operation boundaries, remounts after each cut, and checks the
// recovered contents against an oracle of allowed per-key states.
//
// One sweep is: a fault-free pilot run to learn the workload's total flash
// operation count, then one trial per cut point. Each trial opens a fresh
// device with a fault plan whose one-shot power cut fires before the k-th
// flash op, replays the workload until the cut unwinds it, power-cycles, and
// verifies that
//
//   - every key reads back either its last synced version or a version
//     written (or in flight) after the last completed Sync — nothing else;
//   - a full scan returns exactly the recovered key set, in order, with no
//     resurrected or invented pairs;
//   - the device still works: a post-recovery batch of writes followed by a
//     Sync and an exact read-back converges to the new state.
//
// Everything is deterministic: the workload is generated once from the seed
// and replayed byte-for-byte in every trial, and the fault plan's decisions
// are pure hashes of (seed, op index). Running a trial twice yields
// bit-for-bit identical fault counters.
package crashtest

import (
	"errors"
	"fmt"
	"math/rand"

	"anykey"
	"anykey/internal/fault"
)

// Config describes one crash sweep.
type Config struct {
	// Opts configures the device under test. Opts.Faults is ignored — each
	// trial installs its own plan. The design must support PowerCycle
	// (AnyKey variants; PinK has no modelled recovery).
	Opts anykey.Options

	// Ops is the workload length in operations (default 1200).
	Ops int

	// Keys is the keyspace size (default 150). Small enough that keys are
	// overwritten and deleted repeatedly, which is what makes resurrection
	// detectable.
	Keys int

	// Seed drives workload generation and the trials' fault plans.
	Seed int64

	// Trials is the number of cut points, spread evenly across the pilot
	// run's flash operations (default 4).
	Trials int

	// Rates optionally layers background fault injection (transient read
	// errors, program/erase failures) over every trial. Seed and CutAtOp in
	// it are overwritten per trial.
	Rates fault.Plan
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 1200
	}
	if c.Keys == 0 {
		c.Keys = 150
	}
	if c.Trials == 0 {
		c.Trials = 4
	}
	return c
}

// TrialResult describes one cut trial.
type TrialResult struct {
	// CutAtOp is the flash-op boundary the power cut fired before.
	CutAtOp int64
	// CutFired reports whether the cut actually fired during the replay
	// (background fault rates can shift a trial's flash traffic relative to
	// the pilot; a cut point beyond the trial's own total never fires).
	CutFired bool
	// OpsApplied is how many workload operations completed before the cut.
	OpsApplied int
	// Recovery is the remount's recovery report.
	Recovery anykey.RecoveryInfo
	// Faults is the trial's final injected-fault accounting.
	Faults anykey.FaultCounters
}

// Result is the outcome of a sweep whose every trial verified clean.
type Result struct {
	// PilotFlashOps is the fault-free run's total flash operation count,
	// the bound for cut-point placement.
	PilotFlashOps int64
	Trials        []TrialResult
}

// op kinds.
const (
	opPut = iota
	opDelete
	opSync
)

type op struct {
	kind int
	key  int
	val  []byte
}

// genOps builds the deterministic workload: mostly puts (a sprinkling of
// multi-page values to exercise log fragment chains), some deletes, and a
// Sync roughly every 40 operations so trials exercise both freshly-synced
// and long-unsynced cut windows.
func genOps(cfg Config) []op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		r := rng.Intn(100)
		switch {
		case r < 3:
			ops = append(ops, op{kind: opSync})
		case r < 13:
			ops = append(ops, op{kind: opDelete, key: rng.Intn(cfg.Keys)})
		default:
			size := 16 + rng.Intn(240)
			if rng.Intn(30) == 0 {
				// Near the half-page value cap: such values straddle log
				// page boundaries, exercising fragment-chain recovery.
				size = 1500 + rng.Intn(2300)
			}
			ops = append(ops, op{kind: opPut, key: rng.Intn(cfg.Keys), val: value(i, rng.Intn(cfg.Keys), size)})
		}
	}
	return ops
}

// value builds a self-describing value: the (op, key) prefix makes every
// version unique, so a corrupt or resurrected read can never collide with an
// allowed one by accident.
func value(opIdx, key, size int) []byte {
	v := make([]byte, size)
	prefix := fmt.Sprintf("op%06d-k%05d-", opIdx, key)
	copy(v, prefix)
	for i := len(prefix); i < size; i++ {
		v[i] = byte('a' + (opIdx+i)%23)
	}
	return v
}

func keyBytes(k int) []byte { return []byte(fmt.Sprintf("ct-%05d", k)) }

// Run executes the sweep. A non-nil error is a consistency violation (or a
// harness failure such as overfilling the device); the Result is valid only
// on nil error.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	ops := genOps(cfg)

	// Pilot: fault-free, to completion. Its flash-op total bounds the sweep.
	pilot := cfg.Opts
	pilot.Faults = nil
	dev, err := anykey.Open(pilot)
	if err != nil {
		return Result{}, fmt.Errorf("crashtest: pilot open: %w", err)
	}
	for i := range ops {
		if _, err := applyOp(dev, nil, &ops[i]); err != nil {
			return Result{}, fmt.Errorf("crashtest: pilot op %d: %w", i, err)
		}
	}
	fc := dev.Flash()
	total := fc.TotalReads() + fc.TotalWrites() + fc.Erases
	res := Result{PilotFlashOps: total}

	stride := total / int64(cfg.Trials+1)
	if stride == 0 {
		return Result{}, fmt.Errorf("crashtest: pilot ran only %d flash ops, too few for %d trials", total, cfg.Trials)
	}
	for t := 1; t <= cfg.Trials; t++ {
		tr, err := runTrial(cfg, ops, stride*int64(t))
		if err != nil {
			return Result{}, fmt.Errorf("crashtest: trial cut@%d: %w", stride*int64(t), err)
		}
		res.Trials = append(res.Trials, tr)
	}
	return res, nil
}

// RunTrial executes a single cut trial (exported for determinism tests that
// compare two runs of the same trial).
func RunTrial(cfg Config, cutAtOp int64) (TrialResult, error) {
	cfg = cfg.withDefaults()
	return runTrial(cfg, genOps(cfg), cutAtOp)
}

// applyOp applies one workload op, updating the oracle (when non-nil) per
// the durability rules: acknowledged and in-flight writes enter the pending
// set, a completed Sync commits. It reports whether a power cut unwound the
// operation.
func applyOp(dev *anykey.Device, orc *oracle, o *op) (bool, error) {
	var err error
	switch o.kind {
	case opPut:
		_, err = dev.Put(keyBytes(o.key), o.val)
		if orc != nil && (err == nil || errors.Is(err, anykey.ErrPowerCut)) {
			orc.write(o.key, o.val)
		}
	case opDelete:
		_, err = dev.Delete(keyBytes(o.key))
		if orc != nil && (err == nil || errors.Is(err, anykey.ErrPowerCut)) {
			orc.write(o.key, nil)
		}
	case opSync:
		_, err = dev.Sync()
		if orc != nil && err == nil {
			orc.syncOK()
		}
	}
	if errors.Is(err, anykey.ErrPowerCut) {
		return true, nil
	}
	return false, err
}

func runTrial(cfg Config, ops []op, cutAtOp int64) (TrialResult, error) {
	plan := cfg.Rates
	plan.Seed = cfg.Seed
	plan.CutAtOp = cutAtOp
	opts := cfg.Opts
	opts.Faults = &plan
	dev, err := anykey.Open(opts)
	if err != nil {
		return TrialResult{}, fmt.Errorf("open: %w", err)
	}

	tr := TrialResult{CutAtOp: cutAtOp}
	orc := newOracle()
	for i := range ops {
		cut, err := applyOp(dev, orc, &ops[i])
		if err != nil {
			return tr, fmt.Errorf("op %d: %w", i, err)
		}
		if cut {
			tr.CutFired = true
			break
		}
		tr.OpsApplied++
	}
	if !tr.CutFired {
		// The cut point fell beyond the workload's own flash traffic; close
		// the run with a Sync. The one-shot cut may still fire here — or
		// even later, during verification reads — and is handled the same
		// way: power-cycle, then verify against the allowed sets.
		switch _, err := dev.Sync(); {
		case err == nil:
			orc.syncOK()
		case errors.Is(err, anykey.ErrPowerCut):
			tr.CutFired = true
		default:
			return tr, fmt.Errorf("final sync: %w", err)
		}
	}
	if tr.CutFired {
		if err := dev.PowerCycle(); err != nil {
			return tr, fmt.Errorf("power cycle: %w", err)
		}
	}

	err = verifyAndConverge(cfg, dev, orc)
	if errors.Is(err, anykey.ErrPowerCut) && !tr.CutFired {
		// The cut fired mid-verification (its boundary lay beyond the
		// workload but within the verify reads). A plan's cut is one-shot,
		// so after this remount the re-verification runs cut-free.
		tr.CutFired = true
		if err := dev.PowerCycle(); err != nil {
			return tr, fmt.Errorf("power cycle after late cut: %w", err)
		}
		err = verifyAndConverge(cfg, dev, orc)
	}
	if err != nil {
		return tr, err
	}

	tr.Recovery = dev.Stats().Recovery
	if f := dev.Stats().Faults; f != nil {
		tr.Faults = f()
	}
	return tr, nil
}

// verifyAndConverge checks the device against the oracle's allowed sets,
// adopts the observed state, cross-checks it with a full scan, then drives
// the device forward — fresh writes, a Sync, an exact read-back — to prove
// the recovered device still functions. Any returned error either describes
// a consistency violation or wraps the underlying operation failure.
func verifyAndConverge(cfg Config, dev *anykey.Device, orc *oracle) error {
	// Every key must read back an allowed version; the recovered state is
	// adopted as the new durable truth.
	for k := 0; k < cfg.Keys; k++ {
		v, _, err := dev.Get(keyBytes(k))
		switch {
		case err == nil:
		case errors.Is(err, anykey.ErrNotFound):
			v = nil
		default:
			return fmt.Errorf("get key %d after recovery: %w", k, err)
		}
		if !orc.allowed(k, v) {
			return fmt.Errorf("key %d recovered to disallowed state %q", k, clip(v))
		}
		orc.adopt(k, v)
	}

	// Full scan: exactly the adopted keys, in order, no resurrections.
	pairs, _, err := dev.Scan(keyBytes(0), cfg.Keys+1)
	if err != nil {
		return fmt.Errorf("scan after recovery: %w", err)
	}
	want := 0
	for k := 0; k < cfg.Keys; k++ {
		if orc.committed[k] != nil {
			want++
		}
	}
	if len(pairs) != want {
		return fmt.Errorf("scan returned %d pairs, adopted state has %d", len(pairs), want)
	}
	for _, p := range pairs {
		var k int
		if _, err := fmt.Sscanf(string(p.Key), "ct-%d", &k); err != nil {
			return fmt.Errorf("scan returned alien key %q", p.Key)
		}
		if !sameVersion(p.Value, orc.committed[k]) {
			return fmt.Errorf("scan key %d value diverges from Get", k)
		}
	}

	// Post-recovery convergence: fresh writes and deletes, a Sync, then an
	// exact read-back — the recovered device must behave like a new one.
	// Writes are recorded as pending even when a late cut unwinds them, so
	// a re-verification after the remount still has correct allowed sets.
	for k := 0; k < cfg.Keys; k++ {
		switch {
		case k%3 == 0:
			nv := value(1<<20+k, k, 64)
			orc.write(k, nv)
			if _, err := dev.Put(keyBytes(k), nv); err != nil {
				return fmt.Errorf("post-recovery put key %d: %w", k, err)
			}
		case k%7 == 0:
			orc.write(k, nil)
			if _, err := dev.Delete(keyBytes(k)); err != nil {
				return fmt.Errorf("post-recovery delete key %d: %w", k, err)
			}
		}
	}
	if _, err := dev.Sync(); err != nil {
		return fmt.Errorf("post-recovery sync: %w", err)
	}
	orc.syncOK()
	for k := 0; k < cfg.Keys; k++ {
		v, _, err := dev.Get(keyBytes(k))
		switch {
		case err == nil:
		case errors.Is(err, anykey.ErrNotFound):
			v = nil
		default:
			return fmt.Errorf("post-recovery get key %d: %w", k, err)
		}
		if !sameVersion(v, orc.committed[k]) {
			return fmt.Errorf("key %d did not converge after recovery", k)
		}
	}
	return nil
}

func clip(v []byte) []byte {
	if len(v) > 48 {
		return v[:48]
	}
	return v
}
