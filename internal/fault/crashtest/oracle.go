package crashtest

import "bytes"

// oracle tracks, per key, the set of values a crash-recovered device is
// allowed to return. The rules mirror the durability contract of a KV-SSD
// without a write journal:
//
//   - a completed Sync commits every previously acknowledged write — after
//     recovery the key must hold its committed version or a newer one;
//   - writes acknowledged (or even merely *attempted*: the cut may land
//     after the device made the write partially durable) since the last
//     completed Sync may or may not have survived — any of those versions,
//     or the committed one, is acceptable;
//   - any other value is corruption: either an invented byte string or a
//     resurrected version that a durable overwrite/tombstone had retired.
//
// A nil value represents absence (never written, or deleted).
type oracle struct {
	committed map[int][]byte // key index → durable version (nil = absent)
	pending   map[int][][]byte
}

func newOracle() *oracle {
	return &oracle{committed: map[int][]byte{}, pending: map[int][][]byte{}}
}

// write records a Put (val non-nil) or Delete (val nil) that the device
// acknowledged — or that was in flight when the power cut fired.
func (o *oracle) write(key int, val []byte) {
	o.pending[key] = append(o.pending[key], val)
}

// syncOK records a completed Sync: the newest version of every dirty key
// becomes its committed version.
func (o *oracle) syncOK() {
	for k, vers := range o.pending {
		o.committed[k] = vers[len(vers)-1]
	}
	o.pending = map[int][][]byte{}
}

// allowed reports whether observed (nil = not found) is an acceptable
// post-recovery state for the key.
func (o *oracle) allowed(key int, observed []byte) bool {
	if sameVersion(observed, o.committed[key]) {
		return true
	}
	for _, v := range o.pending[key] {
		if sameVersion(observed, v) {
			return true
		}
	}
	return false
}

// adopt collapses the key's allowed set to the recovered state, which is the
// durable truth going forward.
func (o *oracle) adopt(key int, observed []byte) {
	if observed == nil {
		delete(o.committed, key)
	} else {
		o.committed[key] = append([]byte(nil), observed...)
	}
	delete(o.pending, key)
}

func sameVersion(a, b []byte) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return bytes.Equal(a, b)
}
