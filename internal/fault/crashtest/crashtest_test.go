package crashtest_test

import (
	"testing"

	"anykey"
	"anykey/internal/fault"
	"anykey/internal/fault/crashtest"
)

// sweepConfig is a small device (16 MiB, 2×2 chips) with a small memtable,
// so the workload crosses many flushes and compactions — the windows where
// a power cut actually tears multi-page writes.
func sweepConfig(design anykey.Design) crashtest.Config {
	return crashtest.Config{
		Opts: anykey.Options{
			Design:          design,
			CapacityMB:      16,
			Channels:        2,
			ChipsPerChannel: 2,
			MemtableBytes:   16 << 10,
			Seed:            1,
		},
		Ops:    900,
		Keys:   120,
		Seed:   7,
		Trials: 3,
	}
}

// TestCrashSweepAnyKeyVariants sweeps power cuts across every AnyKey variant
// that supports recovery. PinK is excluded by design: it has no modelled
// power-cycle path (its pinned level lists live in DRAM only).
func TestCrashSweepAnyKeyVariants(t *testing.T) {
	for _, d := range []anykey.Design{anykey.DesignAnyKey, anykey.DesignAnyKeyPlus, anykey.DesignAnyKeyMinus} {
		t.Run(d.String(), func(t *testing.T) {
			res, err := crashtest.Run(sweepConfig(d))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Trials) < 3 {
				t.Fatalf("sweep ran %d trials, want ≥ 3", len(res.Trials))
			}
			fired := 0
			for _, tr := range res.Trials {
				if tr.CutFired {
					fired++
					if tr.Faults.PowerCuts != 1 {
						t.Errorf("trial cut@%d: PowerCuts = %d, want 1", tr.CutAtOp, tr.Faults.PowerCuts)
					}
					if !tr.Recovery.Recovered {
						t.Errorf("trial cut@%d: recovery did not run", tr.CutAtOp)
					}
				}
			}
			if fired != len(res.Trials) {
				t.Fatalf("only %d/%d trials fired their cut (pilot %d flash ops)",
					fired, len(res.Trials), res.PilotFlashOps)
			}
		})
	}
}

// TestCrashSweepWithBackgroundFaults layers transient read errors and
// program/erase failures (grown-bad blocks) over the cuts: recovery must
// hold even when the crash interacts with block retirement.
func TestCrashSweepWithBackgroundFaults(t *testing.T) {
	cfg := sweepConfig(anykey.DesignAnyKeyPlus)
	cfg.Rates = fault.Plan{
		ReadErrorRate:   0.01,
		ProgramFailRate: 0.002,
		EraseFailRate:   0.002,
	}
	res, err := crashtest.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var injected int64
	for _, tr := range res.Trials {
		injected += tr.Faults.Total()
	}
	if injected == 0 {
		t.Fatal("background fault rates injected nothing")
	}
}

// TestCrashMatrix is the wide sweep: every recovering design × several
// workload seeds × 8 cut positions, plus a pass with background faults
// layered on. It found the log-before-tree ordering bug in writeLevel;
// CI runs it as the crash-matrix job. Skipped under -short.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is the long sweep")
	}
	for _, d := range []anykey.Design{anykey.DesignAnyKey, anykey.DesignAnyKeyPlus, anykey.DesignAnyKeyMinus} {
		for _, seed := range []int64{3, 7, 11, 19, 23, 31} {
			cfg := sweepConfig(d)
			cfg.Seed = seed
			cfg.Trials = 8
			res, err := crashtest.Run(cfg)
			if err != nil {
				t.Errorf("%v seed %d: %v", d, seed, err)
				continue
			}
			var torn int64
			for _, tr := range res.Trials {
				torn += tr.Recovery.TornPagesSkipped
			}
			t.Logf("%v seed %d: %d trials, %d torn pages skipped", d, seed, len(res.Trials), torn)
		}
	}
	for _, seed := range []int64{3, 7, 11} {
		cfg := sweepConfig(anykey.DesignAnyKeyPlus)
		cfg.Seed = seed
		cfg.Trials = 6
		cfg.Rates = fault.Plan{ReadErrorRate: 0.01, ProgramFailRate: 0.003, EraseFailRate: 0.003}
		if _, err := crashtest.Run(cfg); err != nil {
			t.Errorf("faulty sweep seed %d: %v", seed, err)
		}
	}
}

// TestCrashTrialMemoryModeEquivalence cuts the power at the same flash-op
// boundary with the raw and the flyweight payload store: every observable
// trial outcome — ops applied before the cut, fault counters, recovery
// report — must be bit-identical, proving the compact representation holds
// exactly the bytes recovery reads back after a crash.
func TestCrashTrialMemoryModeEquivalence(t *testing.T) {
	raw := sweepConfig(anykey.DesignAnyKeyPlus)
	raw.Opts.Memory = anykey.MemoryRaw
	fly := sweepConfig(anykey.DesignAnyKeyPlus)
	fly.Opts.Memory = anykey.MemoryFlyweight
	for _, cut := range []int64{300, 700, 1100} {
		a, err := crashtest.RunTrial(raw, cut)
		if err != nil {
			t.Fatalf("raw trial cut@%d: %v", cut, err)
		}
		b, err := crashtest.RunTrial(fly, cut)
		if err != nil {
			t.Fatalf("flyweight trial cut@%d: %v", cut, err)
		}
		if a != b {
			t.Fatalf("cut@%d diverged across memory modes:\nraw:       %+v\nflyweight: %+v", cut, a, b)
		}
	}
}

// TestCrashSweepFlyweightFullScaleGeometry is the fullscale cell of the
// matrix: a geometry past the MemoryAuto threshold (so the flyweight store
// engages by default, as it does at 64 GB scale) swept with power cuts and
// grown-bad retirement layered on.
func TestCrashSweepFlyweightFullScaleGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale geometry cell is the slow cell")
	}
	cfg := sweepConfig(anykey.DesignAnyKeyPlus)
	cfg.Opts.CapacityMB = 2048 // ≥ 1 GiB: MemoryAuto resolves to flyweight
	cfg.Opts.Channels = 4
	cfg.Opts.ChipsPerChannel = 4
	cfg.Rates = fault.Plan{ProgramFailRate: 0.002, EraseFailRate: 0.002}
	res, err := crashtest.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, tr := range res.Trials {
		if tr.CutFired {
			fired++
			if !tr.Recovery.Recovered {
				t.Errorf("trial cut@%d: recovery did not run", tr.CutAtOp)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no trial fired its cut")
	}
}

// TestTrialDeterministic runs the identical trial twice and requires
// bit-for-bit identical outcomes — fault counters, recovery report, cut
// position — which is the property that makes crash bugs replayable.
func TestTrialDeterministic(t *testing.T) {
	cfg := sweepConfig(anykey.DesignAnyKey)
	cfg.Rates = fault.Plan{ReadErrorRate: 0.02}
	a, err := crashtest.RunTrial(cfg, 700)
	if err != nil {
		t.Fatal(err)
	}
	b, err := crashtest.RunTrial(cfg, 700)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two runs of the same trial diverged:\n%+v\n%+v", a, b)
	}
}
