package device

import "testing"

func TestMetaStructureTotals(t *testing.T) {
	ms := []MetaStructure{
		{Name: "level lists", Bytes: 100, InDRAM: true},
		{Name: "hash lists", Bytes: 50, InDRAM: true},
		{Name: "meta segments", Bytes: 1000, InDRAM: false},
	}
	if got := TotalDRAM(ms); got != 150 {
		t.Fatalf("TotalDRAM = %d", got)
	}
	if got := TotalFlash(ms); got != 1000 {
		t.Fatalf("TotalFlash = %d", got)
	}
	if TotalDRAM(nil) != 0 || TotalFlash(nil) != 0 {
		t.Fatal("empty report totals nonzero")
	}
}

func TestNewStats(t *testing.T) {
	st := NewStats()
	if st.ReadAccesses == nil {
		t.Fatal("ReadAccesses not allocated")
	}
	st.ReadAccesses.Record(3)
	if st.ReadAccesses.Count() != 1 {
		t.Fatal("histogram not functional")
	}
}
