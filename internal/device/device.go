// Package device defines the interface every simulated KV-SSD design
// implements (PinK, AnyKey, AnyKey+, AnyKey−) together with the common
// statistics the benchmark harness collects from them. All operations are
// expressed in virtual time: a request enters the device at an instant and
// the device returns the instant it completes, having occupied the simulated
// flash chips, channels and controller CPU in between.
package device

import (
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/stats"
)

// KVSSD is the key-value interface the host drives (the KV counterpart of
// an NVMe command set). Implementations are single-goroutine virtual-time
// simulations: calls must be issued with non-decreasing `at`. Drivers
// should not uphold that contract by hand — the host submission engine
// (internal/host) owns the slot clocks and enforces it in one place, at
// any queue depth.
type KVSSD interface {
	// Put stores or overwrites a key-value pair. It returns kv.ErrDeviceFull
	// when flash is exhausted even after garbage collection.
	Put(at sim.Time, key, value []byte) (sim.Time, error)

	// Delete removes the key by writing a tombstone. Deleting an absent key
	// succeeds (the tombstone is simply dropped during compaction).
	Delete(at sim.Time, key []byte) (sim.Time, error)

	// Get returns the newest value of key, or kv.ErrNotFound. The returned
	// slice must not be modified by the caller.
	Get(at sim.Time, key []byte) ([]byte, sim.Time, error)

	// Scan returns up to n pairs with key ≥ start in ascending key order
	// (a range query in the paper's terms).
	Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error)

	// Sync makes every acknowledged write durable (the FLUSH command):
	// buffered pairs flush through the LSM path and any partially filled
	// write buffers are programmed.
	Sync(at sim.Time) (sim.Time, error)

	// Stats returns the device's live statistics. The pointer stays valid
	// and updates as the simulation advances.
	Stats() *Stats

	// Metadata reports the current size and placement of every metadata
	// structure, for Table 1 and Fig. 11a.
	Metadata() []MetaStructure
}

// Stats aggregates the observable behaviour the evaluation section reports.
type Stats struct {
	// Flash counts page reads/writes by cause and erases (Table 3, Fig. 13).
	Flash func() nand.Counters

	// ReadAccesses histograms flash accesses per Get (Fig. 11b).
	ReadAccesses *stats.IntHist

	// TreeCompactions and LogCompactions count compaction invocations;
	// ChainedCompactions counts tree compactions triggered directly by a
	// log-triggered compaction overflowing its destination level — the
	// "compaction chains" AnyKey+ eliminates (§4.6).
	TreeCompactions    int64
	LogCompactions     int64
	ChainedCompactions int64

	// GCRuns counts garbage-collection victim selections; GCRelocations the
	// pages relocated by them (AnyKey's design goal is ≈0, §4.4).
	GCRuns        int64
	GCRelocations int64

	// LiveKeys and LiveBytes track the unique pairs resident (Fig. 14).
	LiveKeys  int64
	LiveBytes int64

	// DRAMCapacity and DRAMUsed snapshot the metadata budget.
	DRAMCapacity func() int64
	DRAMUsed     func() int64

	// Faults counts injected NAND faults by cause (nil when the device runs
	// without a fault plan).
	Faults func() stats.FaultCounters

	// Wear snapshots the flash pool's per-block erase-count distribution
	// (nil for designs without an FTL pool).
	Wear func() ftl.WearStats

	// Recovery describes what the last Reopen found: whether it ran at all,
	// that wear counters were reset (the flash array is rebuilt from page
	// images, so erase history is not carried across a power cycle), and how
	// much damage the power cut left behind.
	Recovery stats.RecoveryInfo
}

// NewStats returns a Stats with its histograms allocated.
func NewStats() *Stats {
	return &Stats{ReadAccesses: stats.NewIntHist(8)}
}

// Unwrap peels host-side wrappers (the DRAM cache) off a device via their
// Inner method, returning the firmware that owns flash.
func Unwrap(d KVSSD) KVSSD {
	for {
		w, ok := d.(interface{ Inner() KVSSD })
		if !ok {
			return d
		}
		d = w.Inner()
	}
}

// ReleaseMemory eagerly frees a device's page-payload memory when the
// firmware beneath any wrappers supports it (device close, shard death).
// Safe on every KVSSD; devices without release support are untouched.
func ReleaseMemory(d KVSSD) {
	if r, ok := Unwrap(d).(interface{ ReleaseMemory() }); ok {
		r.ReleaseMemory()
	}
}

// FootprintOf reads the flash payload store's memory accounting beneath any
// wrappers; zero for devices without one.
func FootprintOf(d KVSSD) nand.StoreFootprint {
	if f, ok := Unwrap(d).(interface{ Footprint() nand.StoreFootprint }); ok {
		return f.Footprint()
	}
	return nand.StoreFootprint{}
}

// MetaStructure is one row of the metadata-size report: a named structure,
// its byte footprint, and whether it currently resides in DRAM or flash.
type MetaStructure struct {
	Name   string
	Bytes  int64
	InDRAM bool
}

// TotalDRAM sums the DRAM-resident structures of a metadata report.
func TotalDRAM(ms []MetaStructure) int64 {
	var t int64
	for _, m := range ms {
		if m.InDRAM {
			t += m.Bytes
		}
	}
	return t
}

// TotalFlash sums the flash-resident structures of a metadata report.
func TotalFlash(ms []MetaStructure) int64 {
	var t int64
	for _, m := range ms {
		if !m.InDRAM {
			t += m.Bytes
		}
	}
	return t
}
