package pink

import (
	"fmt"

	"anykey/internal/kv"
	"anykey/internal/nand"
)

// levelEntryOverhead is the fixed portion of one level-list entry: the meta
// segment locator (8 B) plus list bookkeeping (8 B), matching the per-entry
// cost model used for Table 1.
const levelEntryOverhead = 16

// dramSegLabel is the DRAM ledger label for meta segments.
const dramSegLabel = "metaseg"

// dataLoc packs a *logical* data page number and a record slot into one
// word: seq<<16 | slot. Logical page numbers are never reused; the device's
// L2P table maps them to physical pages (a conventional FTL indirection),
// so a stale record left dangling by GC can never alias a rewritten page.
// The all-ones value marks a tombstone record.
type dataLoc uint64

const tombstoneLoc = ^dataLoc(0)

func makeLoc(seq uint64, slot int) dataLoc {
	return dataLoc(seq<<16 | uint64(slot)&0xffff)
}

func (l dataLoc) seq() uint64 { return uint64(l >> 16) }
func (l dataLoc) slot() int   { return int(l & 0xffff) }

// record is one meta segment entry: a key and where its pair lives.
type record struct {
	key  []byte
	loc  dataLoc
	vlen int // logical value length, for level-size accounting
}

func (r *record) tombstone() bool { return r.loc == tombstoneLoc }

// bytes returns the logical KV bytes the record represents.
func (r *record) bytes() int64 {
	if r.tombstone() {
		return int64(len(r.key))
	}
	return int64(len(r.key) + r.vlen)
}

// encodedSize mirrors encodeRecord.
func (r *record) encodedSize() int {
	return uvarintLen(uint64(len(r.key))) + len(r.key) + 8 + uvarintLen(uint64(r.vlen))
}

func encodeRecord(buf []byte, r *record) []byte {
	buf = appendUvarint(buf, uint64(len(r.key)))
	buf = append(buf, r.key...)
	buf = appendU64(buf, uint64(r.loc))
	return appendUvarint(buf, uint64(r.vlen))
}

func decodeRecord(buf []byte) record {
	klen, n := uvarint(buf)
	key := buf[n : n+int(klen)]
	off := n + int(klen)
	loc := dataLoc(u64(buf[off:]))
	off += 8
	vlen, _ := uvarint(buf[off:])
	return record{key: key, loc: loc, vlen: int(vlen)}
}

// metaSegment is one flash page worth of sorted records plus its level-list
// entry data (first key and location). Meta segments always live in flash
// (the device's metadata must be persistent); the DRAM budget holds a cache
// of the top levels' segments, which is what makes their lookups and merges
// free of flash reads.
type metaSegment struct {
	firstKey []byte
	count    int
	ppa      nand.PPA
	cached   bool // present in the DRAM meta-segment cache
}

// level is one LSM level: meta segments sorted by disjoint key ranges.
type level struct {
	segs  []*metaSegment
	bytes int64 // logical KV bytes referenced by this level
}

// findSegment returns the unique segment whose range may contain key: the
// last segment with firstKey ≤ key.
func (lv *level) findSegment(key []byte) *metaSegment {
	lo, hi := 0, len(lv.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if kv.Compare(lv.segs[mid].firstKey, key) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return nil
	}
	return lv.segs[lo-1]
}

// findRecord binary-searches a meta segment page image for key. Probes
// decode only the record's key; the full record is decoded once, on a match.
func findRecord(data []byte, key []byte) (record, bool) {
	pr := kv.OpenPage(data)
	lo, hi := 0, pr.Count()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if kv.Compare(recordKey(pr.Record(mid)), key) >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= pr.Count() {
		return record{}, false
	}
	r := decodeRecord(pr.Record(lo))
	if kv.Compare(r.key, key) != 0 {
		return record{}, false
	}
	return r, true
}

// recordKey returns the key of an encoded record without decoding the rest.
func recordKey(buf []byte) []byte {
	klen, n := uvarint(buf)
	return buf[n : n+int(klen)]
}

// decodeAllRecords returns every record of a meta segment page image in key
// order. Returned records alias data.
func decodeAllRecords(data []byte) []record {
	return appendAllRecords(make([]record, 0, kv.OpenPage(data).Count()), data)
}

// appendAllRecords appends every record of a meta segment page image to out
// in key order, letting callers collecting whole levels preallocate once.
func appendAllRecords(out []record, data []byte) []record {
	pr := kv.OpenPage(data)
	n := pr.Count()
	for i := 0; i < n; i++ {
		out = append(out, decodeRecord(pr.Record(i)))
	}
	return out
}

// --- encoding primitives (identical to kv's, local to avoid exporting) ---

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func u64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func uvarint(b []byte) (uint64, int) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), 1 // single-byte fast path: almost every length
	}
	return uvarintSlow(b)
}

// uvarintSlow keeps the multi-byte loop (and its panic) out of uvarint so
// the fast path stays within the inlining budget.
func uvarintSlow(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	panic(fmt.Sprintf("pink: bad varint % x", b[:min(len(b), 10)]))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
