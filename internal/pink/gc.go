package pink

import (
	"fmt"

	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// PinK garbage collection (§2.2, Table 3): compaction merges only metadata,
// so overwritten pairs linger in data segment pages until GC reclaims their
// blocks. For each live slot of a victim block, GC must decide whether the
// slot holds the key's *newest* version — a meta walk that reads every
// flash-resident meta segment it touches — and re-insert the survivors
// through the normal write path (they re-enter the write buffer and flow
// back out with the next flush). This is why the paper's Table 3 shows
// PinK's GC as a huge *read* count with no direct GC writes: the
// re-insertion writes surface as flush/compaction traffic.

// ensureFree brings the free-block count up to the configured reserve plus
// extra, collecting victim blocks as needed. It may only be called when all
// records are installed in levels (see the reentrancy note in compact.go).
// Rounds that fail to grow the pool mean GC is treadmilling on a full
// device; repeated stalls end the run with ErrDeviceFull.
func (d *Device) ensureFree(at sim.Time, extra int) (sim.Time, error) {
	need := d.cfg.FreeBlockReserve + extra
	// Space-pressure watermark: keep at least ~6% of the device free, so
	// slot-level garbage in data pages is continuously collected instead of
	// accumulating until the device jams. (Real FTLs run background GC
	// against exactly such a watermark.)
	if wm := d.pool.TotalBlocks() / 16; wm > need {
		need = wm
	}
	now := at
	stalls := 0
	for d.pool.FreeBlocks() < need {
		before := d.pool.FreeBlocks()
		t, reclaimed := d.reclaimEmpty(now)
		now = t
		if d.pool.FreeBlocks() >= need {
			break
		}
		t, progress, err := d.gcOnce(now)
		now = t
		if err != nil {
			return now, err
		}
		if !progress && !reclaimed {
			return now, kv.ErrDeviceFull
		}
		if d.pool.FreeBlocks() <= before {
			stalls++
			if stalls >= 8 {
				return now, kv.ErrDeviceFull
			}
		} else {
			stalls = 0
		}
	}
	return now, nil
}

// reclaimEmpty erases every fully-invalid block; it is safe at any point
// because it relocates nothing.
func (d *Device) reclaimEmpty(at sim.Time) (sim.Time, bool) {
	now := at
	reclaimed := false
	for _, region := range []ftl.Region{ftl.RegionData, ftl.RegionMeta} {
		for {
			b, ok := d.pool.VictimBelow(region, 0)
			if !ok {
				break
			}
			now = d.pool.Release(at, b, nand.CauseGC)
			reclaimed = true
		}
	}
	return now, reclaimed
}

// gcOnce picks the best victim across the data and meta regions and
// reclaims it. Data victims are chosen by *slot*-level garbage (page
// validity hides half-dead pages); meta victims by page validity. It
// reports whether reclaiming could free anything.
func (d *Device) gcOnce(at sim.Time) (sim.Time, bool, error) {
	dataV, dataFrac, dataOK := d.dataVictim()
	metaV, metaOK := d.pool.Victim(ftl.RegionMeta)
	metaFrac := 1.0
	if metaOK {
		metaFrac = float64(d.pool.ValidPages(metaV)) / float64(d.cfg.Geometry.PagesPerBlock)
	}
	var pick nand.BlockID
	var meta bool
	switch {
	case dataOK && metaOK:
		if dataFrac <= metaFrac {
			pick = dataV
		} else {
			pick, meta = metaV, true
		}
	case dataOK:
		pick = dataV
	case metaOK:
		pick, meta = metaV, true
	default:
		return at, false, nil
	}
	liveFrac := dataFrac
	if meta {
		liveFrac = metaFrac
	}
	if liveFrac >= 0.97 {
		return at, false, nil // reclaiming would free almost nothing
	}
	d.st.GCRuns++
	var t sim.Time
	var err error
	if meta {
		t, err = d.gcMetaBlock(at, pick)
	} else {
		t, err = d.gcDataBlock(at, pick)
	}
	if err == nil && d.tr != nil {
		d.tr.Span(trace.BGTrack(trace.CauseGC), trace.EvGC,
			trace.CauseGC, at, at, t, int64(pick))
	}
	return t, err == nil, err
}

// dataVictim returns the non-active data block whose reclamation frees the
// most space: the cost of keeping the block is its whole page count, the
// cost of reclaiming it is rewriting the live slots — estimated via the
// block's current slot density — so the victim score is
// (live/total) × validPages/pagesPerBlock. Blocks whose pages all died were
// already pruned from the census (they reclaim for free via reclaimEmpty).
func (d *Device) dataVictim() (nand.BlockID, float64, bool) {
	best := nand.BlockID(-1)
	bestFrac := 2.0
	ppb := float64(d.cfg.Geometry.PagesPerBlock)
	for b, ss := range d.slotStats {
		if d.pool.Active(b) || ss.total == 0 {
			continue
		}
		f := float64(ss.live) / float64(ss.total) * float64(d.pool.ValidPages(b)) / ppb
		// Ties break on block ID: map iteration order is randomized, and a
		// run must be reproducible for any victim choice among equals.
		if f < bestFrac || (f == bestFrac && b < best) {
			bestFrac = f
			best = b
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestFrac, true
}

// gcMetaBlock relocates the valid meta segment pages of a victim block
// (verbatim copies; only the segment locator changes).
func (d *Device) gcMetaBlock(at sim.Time, b nand.BlockID) (sim.Time, error) {
	now := at
	for i := 0; i < d.cfg.Geometry.PagesPerBlock; i++ {
		ppa := d.arr.PageOf(b, i)
		if !d.pool.Valid(ppa) {
			continue
		}
		seg := d.segAt[ppa]
		if seg == nil {
			panic(fmt.Sprintf("pink: valid meta page %d has no segment", ppa))
		}
		now = d.arr.Read(now, ppa, nand.CauseGC)
		img := d.arr.PageData(ppa)
		dst, t, err := d.programPage(now, d.metaStream(d.levelOfSegment(seg)), img, nand.CauseGC)
		if err != nil {
			return now, err
		}
		now = t
		d.st.GCRelocations++
		d.pool.MarkInvalid(ppa)
		delete(d.segAt, ppa)
		seg.ppa = dst
		d.pool.MarkValid(dst)
		d.segAt[dst] = seg
	}
	return d.pool.Release(now, b, nand.CauseGC), nil
}

// gcDataBlock reclaims a victim data block: every live slot is classified
// by a meta walk (newest version → re-inserted into the write buffer; a
// shadowed older version → dropped, leaving its record dangling until the
// next merge discards it). Flash-resident meta segments touched by the
// walks are each read once per GC run, which is the read amplification the
// paper's Table 3 reports for PinK's GC.
func (d *Device) gcDataBlock(at sim.Time, b nand.BlockID) (sim.Time, error) {
	now := at
	segsRead := make(map[*metaSegment]bool)

	for i := 0; i < d.cfg.Geometry.PagesPerBlock; i++ {
		ppa := d.arr.PageOf(b, i)
		if !d.pool.Valid(ppa) {
			continue
		}
		seq, mapped := d.p2l[ppa]
		if !mapped {
			panic("pink: valid data page has no logical mapping")
		}
		live := d.liveSlots[seq]
		now = sim.Max(now, d.arr.Read(at, ppa, nand.CauseGC))
		pr := kv.OpenPage(d.arr.PageData(ppa))
		for slot, isLive := range live {
			if !isLive {
				continue
			}
			e, err := pr.Entity(slot)
			if err != nil {
				panic(err)
			}
			newest, t := d.newestLoc(now, e.Key, segsRead)
			now = t
			if newest == makeLoc(seq, slot) {
				// The newest on-flash version survives by re-insertion into
				// the write buffer — unless the buffer already holds an even
				// newer write for the key.
				if _, buffered := d.mt.Get(e.Key); !buffered {
					d.mt.Put(e.Key, e.Value)
					d.st.GCRelocations++
				}
			}
			// Shadowed versions are simply dropped; their records dangle
			// until the next merge discards them (invalidateLoc tolerates
			// the missing mapping).
		}
		d.dropPage(seq)
	}
	delete(d.slotStats, b)
	return d.pool.Release(now, b, nand.CauseGC), nil
}

// newestLoc walks the levels top-down for key and returns the newest
// on-flash version's data location; tombstoneLoc (which never equals a live
// data slot) signals a deleted or absent key. Flash segments are charged
// once per GC run via segsRead.
func (d *Device) newestLoc(at sim.Time, key []byte, segsRead map[*metaSegment]bool) (dataLoc, sim.Time) {
	now := at
	for _, lv := range d.levels {
		seg := lv.findSegment(key)
		if seg == nil {
			continue
		}
		if !seg.cached && !segsRead[seg] {
			now = d.arr.Read(now, seg.ppa, nand.CauseGC)
			segsRead[seg] = true
		}
		if rec, ok := findRecord(d.arr.PageData(seg.ppa), key); ok {
			return rec.loc, now
		}
	}
	return tombstoneLoc, now
}
