// Package pink implements the PinK baseline: the state-of-the-art
// LSM-tree-based KV-SSD design the paper compares against (§2.2, Fig. 4).
//
// PinK keeps pinned level lists in DRAM; each level-list entry points at a
// meta segment — one flash page worth of sorted (key → data location)
// records. Meta segments live in DRAM while the budget lasts (top levels
// first) and spill to flash otherwise, which is exactly the behaviour that
// collapses under low-v/k workloads: large keys inflate the meta segments
// past the DRAM budget, every lookup then pays extra flash reads, and
// compaction must re-read and re-write flash-resident meta segments.
//
// KV pairs themselves are stored in data segment pages written once at
// flush (L0→L1) time; compaction merges metadata only, so overwritten
// values linger in data blocks until garbage collection relocates the
// still-live neighbours — the paper's Table 3 shows this GC dominating
// PinK's flash traffic.
package pink

import (
	"fmt"

	"anykey/internal/device"
	"anykey/internal/dram"
	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Config parameterises a PinK device.
type Config struct {
	Geometry nand.Geometry
	Timing   nand.Timing

	// DRAMBytes is the device-internal DRAM budget shared by the level
	// lists (pinned), the write buffer (pinned) and meta segments.
	DRAMBytes int64

	// MemtableBytes is the L0 flush threshold.
	MemtableBytes int64

	// GrowthFactor is the LSM level size ratio (threshold of Li+1 /
	// threshold of Li).
	GrowthFactor int

	// RequestOverhead models the host-interface and firmware handling cost
	// added to every request.
	RequestOverhead sim.Duration

	// FreeBlockReserve is the number of free blocks below which GC runs.
	FreeBlockReserve int

	// Seed fixes the memtable's skiplist randomness.
	Seed int64

	// BackgroundLag bounds how far flush/compaction completion may run
	// behind the host clock before writes stall (the device's internal
	// write-queue depth in time units).
	BackgroundLag sim.Duration

	// Memory selects the flash array's payload store (see nand.MemoryMode).
	Memory nand.MemoryMode

	// Tracer, when non-nil, receives firmware events (CPU occupancy,
	// flush/compaction/GC spans, write stalls).
	Tracer *trace.Tracer
}

// Defaults fills zero fields with the repository defaults (a scaled version
// of the paper's 64 GB / 64 MB device; see DESIGN.md §2).
func (c *Config) Defaults() {
	if c.Geometry == (nand.Geometry{}) {
		c.Geometry = nand.Geometry{Channels: 8, ChipsPerChannel: 8, BlocksPerChip: 4, PagesPerBlock: 64, PageSize: 8192}
	}
	if c.Timing == (nand.Timing{}) {
		c.Timing = nand.TLCTiming()
	}
	if c.DRAMBytes == 0 {
		c.DRAMBytes = c.Geometry.Capacity() / 1000 // the paper's ≈0.1 % ratio
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = int64(32 * c.Geometry.PageSize)
	}
	if c.GrowthFactor == 0 {
		c.GrowthFactor = 4
	}
	if c.RequestOverhead == 0 {
		c.RequestOverhead = 3 * sim.Microsecond
	}
	if c.FreeBlockReserve == 0 {
		c.FreeBlockReserve = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BackgroundLag == 0 {
		c.BackgroundLag = 50 * sim.Millisecond
	}
}

// hashCost is the measured xxHash cost for a key on the controller CPU
// (paper §4.5: 79 ns for a 40-byte key on a Cortex-A53); PinK does not hash
// but pays comparable per-request firmware CPU time, charged identically so
// the designs differ only where the paper says they do.
const hashCost = 79 * sim.Nanosecond

// Device is a simulated PinK KV-SSD.
type Device struct {
	cfg  Config
	arr  *nand.Array
	pool *ftl.Pool
	mem  *dram.Budget
	cpu  sim.Resource

	mt         *memtable.Table
	levels     []*level
	dataStream *ftl.Stream
	// metaStreams allocates meta segment pages per level, so a level rebuild
	// leaves whole blocks dead and reclaimable without relocation.
	metaStreams map[int]*ftl.Stream

	// The data-page L2P indirection and per-page slot liveness, keyed by
	// the never-reused logical page number. This is conventional FTL
	// bookkeeping (page map + OOB validity), not charged against the KV
	// metadata DRAM budget.
	nextSeq   uint64
	l2p       map[uint64]nand.PPA
	p2l       map[nand.PPA]uint64
	liveSlots map[uint64][]bool
	// slotStats tracks per data block how many record slots exist and how
	// many are still live, steering GC toward slot-level garbage that page
	// validity cannot see.
	slotStats map[nand.BlockID]*blockSlots

	// segAt maps a flash-resident meta segment's page to the segment, for
	// GC relocation of meta blocks.
	segAt map[nand.PPA]*metaSegment

	// mergeBuf is the reusable output scratch for mergeRecords; only one
	// merged run is live at a time.
	mergeBuf []record
	// arena recycles page build buffers when the flash array copies rather
	// than retains programmed images (flyweight payload store).
	arena *nand.PageArena

	bgDoneAt sim.Time // completion time of the last background chain
	st       *device.Stats
	opReads  int // flash reads charged to the Get in flight
	tr       *trace.Tracer
}

var _ device.KVSSD = (*Device)(nil)

// New builds an empty PinK device.
func New(cfg Config) (*Device, error) {
	cfg.Defaults()
	arr, err := nand.New(cfg.Geometry, cfg.Timing)
	if err != nil {
		return nil, err
	}
	arr.ConfigureMemory(cfg.Memory)
	pool := ftl.NewPool(arr)
	d := &Device{
		cfg:         cfg,
		arr:         arr,
		pool:        pool,
		mem:         dram.New(cfg.DRAMBytes),
		mt:          memtable.New(cfg.Seed),
		dataStream:  ftl.NewStream(pool, ftl.RegionData),
		metaStreams: make(map[int]*ftl.Stream),
		l2p:         make(map[uint64]nand.PPA),
		p2l:         make(map[nand.PPA]uint64),
		liveSlots:   make(map[uint64][]bool),
		slotStats:   make(map[nand.BlockID]*blockSlots),
		segAt:       make(map[nand.PPA]*metaSegment),
		st:          device.NewStats(),
	}
	d.mem.MustReserve("memtable", cfg.MemtableBytes)
	d.arena = nand.NewPageArena(cfg.Geometry.PageSize, 8, !arr.Retains())
	d.st.Flash = func() nand.Counters { return arr.Counters() }
	d.st.DRAMCapacity = func() int64 { return d.mem.Capacity() }
	d.st.DRAMUsed = func() int64 { return d.mem.Used() }
	d.tr = cfg.Tracer
	return d, nil
}

// SetTracer attaches an event tracer for firmware events (nil detaches).
// The flash array's tracer is attached separately via Array().SetTracer.
func (d *Device) SetTracer(tr *trace.Tracer) { d.tr = tr }

// cpuOccupy charges the controller CPU and traces the occupancy span.
func (d *Device) cpuOccupy(at sim.Time, dur sim.Duration, cause trace.Cause) sim.Time {
	start, done := d.cpu.OccupyAt(at, dur)
	if d.tr != nil {
		d.tr.Span(trace.CPUTrack, trace.EvCPU, cause, at, start, done, 0)
	}
	return done
}

// Stats implements device.KVSSD.
func (d *Device) Stats() *device.Stats { return d.st }

// Array exposes the underlying flash array for test instrumentation.
func (d *Device) Array() *nand.Array { return d.arr }

// ReleaseMemory eagerly drops every retained page payload. The device is
// unusable afterwards; callers release only devices they are discarding.
func (d *Device) ReleaseMemory() { d.arr.Release() }

// Footprint returns the flash payload store's memory accounting.
func (d *Device) Footprint() nand.StoreFootprint { return d.arr.Footprint() }

// threshold returns the byte-size threshold of level i (1-based).
func (d *Device) threshold(i int) int64 {
	t := d.cfg.MemtableBytes
	for ; i > 0; i-- {
		t *= int64(d.cfg.GrowthFactor)
	}
	return t
}

func (d *Device) checkKV(key, value []byte) error {
	switch {
	case len(key) == 0:
		return kv.ErrEmptyKey
	case len(key) > kv.MaxKeyLen:
		return kv.ErrKeyTooLarge
	case len(value) > kv.MaxValueLen:
		return kv.ErrValueTooLarge
	case len(value) > d.cfg.Geometry.PageSize/2:
		return fmt.Errorf("%w: value %d exceeds half page size %d",
			kv.ErrValueTooLarge, len(value), d.cfg.Geometry.PageSize/2)
	}
	return nil
}

// Put implements device.KVSSD.
func (d *Device) Put(at sim.Time, key, value []byte) (sim.Time, error) {
	if err := d.checkKV(key, value); err != nil {
		return at, err
	}
	done := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostWrite)
	// One backing allocation for both copies; full slice expressions keep an
	// append to either from reaching the other. The insert reports the entry
	// it replaced, so accounting needs no extra skiplist searches.
	buf := make([]byte, len(key)+len(value))
	copy(buf, key)
	copy(buf[len(key):], value)
	old, existed := d.mt.Put(buf[:len(key):len(key)], buf[len(key):])
	if !existed {
		if _, dup := d.lookupLoc(key); !dup {
			d.st.LiveKeys++
			d.st.LiveBytes += int64(len(key) + len(value))
		} else {
			d.st.LiveBytes += int64(len(value)) - d.liveValueLen(key)
		}
	} else {
		d.st.LiveBytes += int64(len(value)) - int64(len(old.Value))
	}
	return d.maybeFlush(at, done)
}

// maybeFlush starts an L0→L1 compaction when the write buffer is full.
// Flushes pipeline with in-flight background work up to BackgroundLag of
// queued time; the host stalls only for the excess.
func (d *Device) maybeFlush(at, done sim.Time) (sim.Time, error) {
	if d.mt.Bytes() < d.cfg.MemtableBytes {
		return done, nil
	}
	start := at
	if gate := d.bgDoneAt.Add(-d.cfg.BackgroundLag); gate.After(start) {
		start = gate
	}
	if d.tr != nil && start.After(at) {
		d.tr.Span(trace.BGTrack(trace.CauseWriteStall), trace.EvWriteStall,
			trace.CauseWriteStall, at, at, start, 0)
	}
	end, err := d.flush(start)
	if err != nil {
		return at, err
	}
	d.bgDoneAt = end
	return sim.Max(done, start), nil
}

// liveValueLen returns the length of the key's current on-flash value, 0 if
// absent; used only for LiveBytes accounting.
func (d *Device) liveValueLen(key []byte) int64 {
	loc, ok := d.lookupLoc(key)
	if !ok {
		return 0
	}
	ppa, ok := d.l2p[loc.seq()]
	if !ok {
		panic("pink: newest record dangles")
	}
	pr := kv.OpenPage(d.arr.PageData(ppa))
	e, err := pr.Entity(loc.slot())
	if err != nil {
		panic(err)
	}
	return int64(e.Len())
}

// Delete implements device.KVSSD.
func (d *Device) Delete(at sim.Time, key []byte) (sim.Time, error) {
	if len(key) == 0 {
		return at, kv.ErrEmptyKey
	}
	done := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostWrite)
	e, ok := d.mt.Delete(append([]byte(nil), key...))
	if ok && !e.Tombstone {
		d.st.LiveKeys--
		d.st.LiveBytes -= int64(len(key) + len(e.Value))
	} else if !ok {
		if _, found := d.lookupLoc(key); found {
			d.st.LiveKeys--
			d.st.LiveBytes -= int64(len(key)) + d.liveValueLen(key)
		}
	}
	return d.maybeFlush(at, done)
}

// Sync implements device.KVSSD: flushes the write buffer so every
// acknowledged write is persistent (PinK's meta segments and data pages are
// already flash-resident; only the buffer is volatile).
func (d *Device) Sync(at sim.Time) (sim.Time, error) {
	if d.mt.Len() == 0 {
		return at, nil
	}
	start := sim.Max(at, d.bgDoneAt)
	end, err := d.flush(start)
	if err != nil {
		return at, err
	}
	d.bgDoneAt = end
	return end, nil
}

// Get implements device.KVSSD.
func (d *Device) Get(at sim.Time, key []byte) ([]byte, sim.Time, error) {
	if len(key) == 0 {
		return nil, at, kv.ErrEmptyKey
	}
	d.opReads = 0
	now := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostRead)
	defer func() { d.st.ReadAccesses.Record(d.opReads) }()

	if e, ok := d.mt.Get(key); ok {
		if e.Tombstone {
			return nil, now, kv.ErrNotFound
		}
		return e.Value, now, nil
	}
	for _, lv := range d.levels {
		seg := lv.findSegment(key)
		if seg == nil {
			continue
		}
		data, t := d.segmentData(now, seg, nand.CauseMeta)
		now = t
		rec, ok := findRecord(data, key)
		if !ok {
			continue // overlapping range miss: search the next level
		}
		if rec.tombstone() {
			return nil, now, kv.ErrNotFound
		}
		ppa, mapped := d.l2p[rec.loc.seq()]
		if !mapped {
			panic("pink: newest record dangles")
		}
		now = d.arr.Read(now, ppa, nand.CauseUser)
		d.opReads++
		pr := kv.OpenPage(d.arr.PageData(ppa))
		e, err := pr.Entity(rec.loc.slot())
		if err != nil {
			panic(fmt.Sprintf("pink: corrupt data page %d: %v", ppa, err))
		}
		if kv.Compare(e.Key, key) != 0 {
			panic("pink: meta record points at wrong key")
		}
		return e.Value, now, nil
	}
	return nil, now, kv.ErrNotFound
}

// segmentData returns the page image of a meta segment, charging a flash
// read when it is not in the DRAM cache, and bumps the per-op access
// counter.
func (d *Device) segmentData(at sim.Time, seg *metaSegment, cause nand.Cause) ([]byte, sim.Time) {
	if seg.cached {
		return d.arr.PageData(seg.ppa), at
	}
	done := d.arr.Read(at, seg.ppa, cause)
	d.opReads++
	return d.arr.PageData(seg.ppa), done
}

// lookupLoc finds the key's current data location across all levels without
// charging any time; it is used only for statistics bookkeeping.
func (d *Device) lookupLoc(key []byte) (dataLoc, bool) {
	for _, lv := range d.levels {
		seg := lv.findSegment(key)
		if seg == nil {
			continue
		}
		if rec, ok := findRecord(d.arr.PageData(seg.ppa), key); ok {
			if rec.tombstone() {
				return 0, false
			}
			return rec.loc, true
		}
	}
	return 0, false
}

// Metadata implements device.KVSSD: level lists (DRAM), the persistent meta
// segments (always flash), and the DRAM cache covering their top levels
// (Fig. 11a, Table 1).
func (d *Device) Metadata() []device.MetaStructure {
	var levelList, segCache, segFlash int64
	for _, lv := range d.levels {
		for _, seg := range lv.segs {
			levelList += int64(len(seg.firstKey)) + levelEntryOverhead
			segFlash += int64(d.cfg.Geometry.PageSize)
			if seg.cached {
				segCache += int64(d.cfg.Geometry.PageSize)
			}
		}
	}
	return []device.MetaStructure{
		{Name: "level lists", Bytes: levelList, InDRAM: true},
		{Name: "meta segment cache (DRAM)", Bytes: segCache, InDRAM: true},
		{Name: "meta segments (flash)", Bytes: segFlash, InDRAM: false},
	}
}

// Pool exposes the block pool for diagnostics and tests.
func (d *Device) Pool() *ftl.Pool { return d.pool }

// blockSlots is the live/total record-slot census of one data block.
type blockSlots struct{ live, total int32 }
