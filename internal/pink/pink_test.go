package pink

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
)

// smallConfig returns a tiny device for fast randomized testing: 512 KiB of
// flash, 1 KiB pages, a 4 KiB memtable.
func smallConfig() Config {
	return Config{
		Geometry:      nand.Geometry{Channels: 2, ChipsPerChannel: 2, BlocksPerChip: 8, PagesPerBlock: 16, PageSize: 1024},
		DRAMBytes:     16 << 10,
		MemtableBytes: 4 << 10,
		GrowthFactor:  4,
		Seed:          7,
	}
}

func newSmall(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func val(i, ver int) []byte {
	return []byte(fmt.Sprintf("value-%06d-%04d-%s", i, ver, "xxxxxxxxxxxxxxxxxxxx"))
}

func TestPutGetSimple(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	var err error
	now, err = d.Put(now, key(1), val(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	v, now2, err := d.Get(now, key(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, val(1, 0)) {
		t.Fatalf("Get = %q", v)
	}
	if !now2.After(now) {
		t.Fatal("Get took no simulated time")
	}
	if _, _, err := d.Get(now2, key(2)); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: err = %v", err)
	}
}

func TestInputValidation(t *testing.T) {
	d := newSmall(t, smallConfig())
	if _, err := d.Put(0, nil, []byte("v")); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, _, err := d.Get(0, nil); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key get: %v", err)
	}
	big := make([]byte, 600) // more than half the 1 KiB page
	if _, err := d.Put(0, key(1), big); !errors.Is(err, kv.ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if _, err := d.Delete(0, nil); !errors.Is(err, kv.ErrEmptyKey) {
		t.Fatalf("empty key delete: %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for ver := 0; ver < 5; ver++ {
		n, err := d.Put(now, key(3), val(3, ver))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	v, now, err := d.Get(now, key(3))
	if err != nil || !bytes.Equal(v, val(3, 4)) {
		t.Fatalf("Get after overwrites = %q, %v", v, err)
	}
	now, err = d.Delete(now, key(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get(now, key(3)); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key: err = %v", err)
	}
}

// The core correctness test: thousands of random operations checked against
// a map oracle, across flushes, cascaded compactions and GC.
func TestRandomOpsAgainstOracle(t *testing.T) {
	d := newSmall(t, smallConfig())
	rng := rand.New(rand.NewSource(42))
	oracle := map[string][]byte{}
	var now sim.Time
	const keySpace = 600
	for op := 0; op < 12000; op++ {
		i := rng.Intn(keySpace)
		k := key(i)
		switch r := rng.Float64(); {
		case r < 0.55: // put
			v := val(i, op)
			n, err := d.Put(now, k, v)
			if err != nil {
				t.Fatalf("op %d: Put: %v", op, err)
			}
			now = n
			oracle[string(k)] = v
		case r < 0.65: // delete
			n, err := d.Delete(now, k)
			if err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			now = n
			delete(oracle, string(k))
		default: // get
			v, n, err := d.Get(now, k)
			now = n
			want, exists := oracle[string(k)]
			if exists {
				if err != nil {
					t.Fatalf("op %d: Get(%s): %v (want %q)", op, k, err, want)
				}
				if !bytes.Equal(v, want) {
					t.Fatalf("op %d: Get(%s) = %q, want %q", op, k, v, want)
				}
			} else if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("op %d: Get(%s) = %q, %v; want ErrNotFound", op, k, v, err)
			}
		}
	}
	// Final sweep: every oracle key must be readable.
	for k, want := range oracle {
		v, n, err := d.Get(now, []byte(k))
		now = n
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("final Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
	st := d.Stats()
	if st.TreeCompactions == 0 {
		t.Fatal("no compactions occurred; test exercised nothing")
	}
	c := st.Flash()
	if c.TotalWrites() == 0 || c.Writes[nand.CauseFlush] == 0 {
		t.Fatalf("counters implausible: %+v", c)
	}
}

func TestGCOccursUnderChurn(t *testing.T) {
	d := newSmall(t, smallConfig())
	rng := rand.New(rand.NewSource(1))
	var now sim.Time
	// Overwrite a small working set far beyond device capacity to force GC.
	for op := 0; op < 9000; op++ {
		i := rng.Intn(300)
		n, err := d.Put(now, key(i), val(i, op))
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		now = n
	}
	if d.Stats().GCRuns == 0 && d.Array().Counters().Erases == 0 {
		t.Fatal("churn produced no GC and no erases")
	}
	// All 300 keys must still be correct (versions checked via last write).
	// Re-write once more to fix known versions, then verify.
	for i := 0; i < 300; i++ {
		n, err := d.Put(now, key(i), val(i, 99999))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	for i := 0; i < 300; i++ {
		v, n, err := d.Get(now, key(i))
		now = n
		if err != nil || !bytes.Equal(v, val(i, 99999)) {
			t.Fatalf("key %d after GC churn: %q, %v", i, v, err)
		}
	}
}

func TestDeviceFillsToFull(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	var err error
	inserted := 0
	for i := 0; i < 100000; i++ {
		now, err = d.Put(now, key(i), val(i, 0))
		if err != nil {
			if !errors.Is(err, kv.ErrDeviceFull) {
				t.Fatalf("unexpected error at %d: %v", i, err)
			}
			break
		}
		inserted++
	}
	if inserted == 0 || inserted == 100000 {
		t.Fatalf("inserted %d pairs; expected the 512 KiB device to fill", inserted)
	}
	// A filled device must still serve reads for early keys.
	if _, _, err := d.Get(now, key(0)); err != nil {
		t.Fatalf("Get on full device: %v", err)
	}
}

func TestScanMatchesOracle(t *testing.T) {
	d := newSmall(t, smallConfig())
	rng := rand.New(rand.NewSource(5))
	oracle := map[string][]byte{}
	var now sim.Time
	for op := 0; op < 4000; op++ {
		i := rng.Intn(400)
		k := key(i)
		if rng.Float64() < 0.1 {
			n, _ := d.Delete(now, k)
			now = n
			delete(oracle, string(k))
			continue
		}
		v := val(i, op)
		n, err := d.Put(now, k, v)
		if err != nil {
			t.Fatal(err)
		}
		now = n
		oracle[string(k)] = v
	}
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, startIdx := range []int{0, 13, 200, 399} {
		start := key(startIdx)
		wantIdx := sort.SearchStrings(keys, string(start))
		for _, n := range []int{1, 7, 50} {
			pairs, t2, err := d.Scan(now, start, n)
			now = t2
			if err != nil {
				t.Fatal(err)
			}
			wantN := n
			if rem := len(keys) - wantIdx; rem < wantN {
				wantN = rem
			}
			if len(pairs) != wantN {
				t.Fatalf("Scan(%s, %d) returned %d pairs, want %d", start, n, len(pairs), wantN)
			}
			for i, p := range pairs {
				wk := keys[wantIdx+i]
				if string(p.Key) != wk || !bytes.Equal(p.Value, oracle[wk]) {
					t.Fatalf("Scan pair %d = %q, want %q", i, p.Key, wk)
				}
			}
		}
	}
	if pairs, _, err := d.Scan(now, key(0), 0); err != nil || pairs != nil {
		t.Fatal("Scan with n=0 should return nothing")
	}
}

func TestMetadataReport(t *testing.T) {
	cfg := smallConfig()
	cfg.DRAMBytes = 8 << 10 // tiny: most meta segments must go to flash
	d := newSmall(t, cfg)
	var now sim.Time
	for i := 0; i < 2500; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	ms := d.Metadata()
	if len(ms) != 3 {
		t.Fatalf("metadata rows: %d", len(ms))
	}
	if device.TotalFlash(ms) == 0 {
		t.Fatalf("tiny DRAM but no flash-resident meta segments: %+v", ms)
	}
	if device.TotalDRAM(ms) == 0 {
		t.Fatalf("no DRAM-resident metadata at all: %+v", ms)
	}
	// Flash-resident meta must force multi-access reads.
	for i := 0; i < 200; i++ {
		_, n, err := d.Get(now, key(i))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	h := d.Stats().ReadAccesses
	multi := 0.0
	for v := 2; v <= 8; v++ {
		multi += h.Frac(v)
	}
	if multi == 0 {
		t.Fatalf("no multi-access reads despite flash meta: %v", h)
	}
}

func TestDRAMBudgetNeverExceededByReservations(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for i := 0; i < 3000; i++ {
		n, err := d.Put(now, key(i), val(i, 0))
		if err != nil {
			t.Fatal(err)
		}
		now = n
	}
	st := d.Stats()
	if st.DRAMUsed() > st.DRAMCapacity() {
		t.Fatalf("DRAM overcommitted: %d > %d", st.DRAMUsed(), st.DRAMCapacity())
	}
}

func TestLatencyMonotone(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	for i := 0; i < 2000; i++ {
		n, err := d.Put(now, key(i%100), val(i, i))
		if err != nil {
			t.Fatal(err)
		}
		if n.Before(now) {
			t.Fatalf("op %d completed before it was issued", i)
		}
		now = n
	}
}

// Regression: a flush that dies with ErrDeviceFull must not lose pairs that
// were accepted earlier — every successful Put stays readable.
func TestNoLossAtDeviceFull(t *testing.T) {
	d := newSmall(t, smallConfig())
	var now sim.Time
	var err error
	accepted := 0
	for i := 0; i < 100000; i++ {
		now, err = d.Put(now, key(i), val(i, 0))
		if err != nil {
			break
		}
		accepted++
	}
	if !errors.Is(err, kv.ErrDeviceFull) {
		t.Fatalf("expected device full, got %v", err)
	}
	for i := 0; i < accepted; i++ {
		v, n, err := d.Get(now, key(i))
		now = n
		if err != nil || !bytes.Equal(v, val(i, 0)) {
			t.Fatalf("key %d lost after device-full (accepted %d): %v", i, accepted, err)
		}
	}
}
