package pink

import (
	"slices"

	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Scan implements device.KVSSD: a range query returning up to n pairs with
// key ≥ start. PinK's meta segments are key-sorted, so iteration order is
// cheap to produce, but the referenced values are scattered across data
// segment pages in write order — each emitted pair may touch a different
// flash page, which is why the paper's Fig. 18 shows PinK falling behind on
// long scans (§6.6).
func (d *Device) Scan(at sim.Time, start []byte, n int) ([]kv.Pair, sim.Time, error) {
	if n <= 0 {
		return nil, at, nil
	}
	now := d.cpuOccupy(at.Add(d.cfg.RequestOverhead), hashCost, trace.CauseHostRead)

	iters := make([]*scanIter, 0, len(d.levels)+1)
	iters = append(iters, newMemScanIter(d.mt, start))
	for _, lv := range d.levels {
		it := newLevelScanIter(d, lv, start)
		now = sim.Max(now, it.opened(now))
		iters = append(iters, it)
	}

	out := make([]kv.Pair, 0, n)
	for len(out) < n {
		// Find the smallest current key; priority to the earliest iterator
		// (memtable, then upper levels) on ties.
		best := -1
		for i, it := range iters {
			if !it.valid() {
				continue
			}
			if best < 0 || kv.Compare(it.key(), iters[best].key()) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		winner := iters[best]
		key := winner.key()
		tomb := winner.tombstone()
		var value []byte
		if !tomb {
			v, t := winner.value(now)
			now = sim.Max(now, t)
			value = v
		}
		// Advance every iterator positioned at this key (shadowed versions).
		for _, it := range iters {
			for it.valid() && kv.Compare(it.key(), key) == 0 {
				t := it.next(now)
				now = sim.Max(now, t)
			}
		}
		if !tomb {
			out = append(out, kv.Pair{Key: key, Value: value})
		}
	}
	return out, now, nil
}

// scanIter is a merged-cursor over one source (memtable or one level).
type scanIter struct {
	// memtable source: a lazy skiplist iterator — the device is
	// single-threaded and a scan never mutates the memtable, so no
	// snapshot copy is needed.
	memIt memtable.Iter

	// level source
	dev     *Device
	lv      *level
	segIdx  int
	recs    []record
	recIdx  int
	lastPPA nand.PPA // one-page read cache: consecutive hits are free

	// startKey holds the pending seek target between construction and the
	// first opened() call.
	startKey []byte
}

func newMemScanIter(mt *memtable.Table, start []byte) *scanIter {
	return &scanIter{memIt: mt.IterFrom(start), lastPPA: nand.InvalidPPA}
}

func newLevelScanIter(d *Device, lv *level, start []byte) *scanIter {
	it := &scanIter{dev: d, lv: lv, lastPPA: nand.InvalidPPA}
	// First segment that may contain keys ≥ start: the one containing start,
	// or the first segment after it.
	idx, _ := slices.BinarySearchFunc(lv.segs, start, func(s *metaSegment, k []byte) int {
		if kv.Compare(s.firstKey, k) > 0 {
			return 1
		}
		return -1
	})
	if idx > 0 {
		idx--
	}
	it.segIdx = idx
	it.pendingOpen(start)
	return it
}

// pendingOpen records that the iterator must open its current segment and
// skip to start; the read is charged on first use via opened().
func (it *scanIter) pendingOpen(start []byte) {
	it.recs = nil
	it.recIdx = 0
	it.startKey = start
}

// opened charges the first segment open.
func (it *scanIter) opened(at sim.Time) sim.Time {
	if it.dev == nil || it.segIdx >= len(it.lv.segs) {
		return at
	}
	return it.openSegment(at)
}

func (it *scanIter) openSegment(at sim.Time) sim.Time {
	seg := it.lv.segs[it.segIdx]
	now := at
	if !seg.cached {
		now = it.dev.arr.Read(at, seg.ppa, nand.CauseMeta)
	}
	it.recs = decodeAllRecords(it.dev.arr.PageData(seg.ppa))
	it.recIdx = 0
	if it.startKey != nil {
		it.recIdx, _ = slices.BinarySearchFunc(it.recs, it.startKey, func(r record, k []byte) int {
			if kv.Compare(r.key, k) >= 0 {
				return 1
			}
			return -1
		})
		it.startKey = nil
	}
	// An exhausted segment (all records < start) falls through to the next.
	for it.recIdx >= len(it.recs) {
		it.segIdx++
		if it.segIdx >= len(it.lv.segs) {
			return now
		}
		seg := it.lv.segs[it.segIdx]
		if !seg.cached {
			now = it.dev.arr.Read(now, seg.ppa, nand.CauseMeta)
		}
		it.recs = decodeAllRecords(it.dev.arr.PageData(seg.ppa))
		it.recIdx = 0
	}
	return now
}

func (it *scanIter) valid() bool {
	if it.dev == nil {
		return it.memIt.Valid()
	}
	return it.segIdx < len(it.lv.segs) && it.recIdx < len(it.recs)
}

func (it *scanIter) key() []byte {
	if it.dev == nil {
		return it.memIt.Entry().Key
	}
	return it.recs[it.recIdx].key
}

func (it *scanIter) tombstone() bool {
	if it.dev == nil {
		return it.memIt.Entry().Tombstone
	}
	return it.recs[it.recIdx].tombstone()
}

// value reads the pair's data page (cached single page per iterator) and
// returns the value bytes.
func (it *scanIter) value(at sim.Time) ([]byte, sim.Time) {
	if it.dev == nil {
		return it.memIt.Entry().Value, at
	}
	rec := it.recs[it.recIdx]
	now := at
	ppa, mapped := it.dev.l2p[rec.loc.seq()]
	if !mapped {
		panic("pink: scan winner record dangles")
	}
	if ppa != it.lastPPA {
		now = it.dev.arr.Read(at, ppa, nand.CauseUser)
		it.lastPPA = ppa
	}
	pr := kv.OpenPage(it.dev.arr.PageData(ppa))
	e, err := pr.Entity(rec.loc.slot())
	if err != nil {
		panic(err)
	}
	return e.Value, now
}

func (it *scanIter) next(at sim.Time) sim.Time {
	if it.dev == nil {
		it.memIt.Next()
		return at
	}
	it.recIdx++
	if it.recIdx >= len(it.recs) {
		it.segIdx++
		if it.segIdx < len(it.lv.segs) {
			return it.openSegment(at)
		}
	}
	return at
}
