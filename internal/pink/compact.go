package pink

import (
	"fmt"
	"slices"

	"anykey/internal/ftl"
	"anykey/internal/kv"
	"anykey/internal/memtable"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// mergeCPUCost is the controller CPU time charged per merged record during
// compaction, derived from the paper's measurement of 118 µs for merging
// 2×8192 entities on a Cortex-A53 (§4.5): ≈7.2 ns per entity.
const mergeCPUCost = 7 * sim.Nanosecond

// Garbage-collection reentrancy: full GC (ensureFree) relocates live pairs
// and patches the meta segments referencing them, so it may only run when
// every record is installed in some level. flush and the cascade loop call
// it at exactly those points; the page-allocation helpers in between fall
// back to reclaimEmpty (erase-only, always safe) if the pool runs dry.

// flush performs the L0→L1 compaction (paper §3.2, "Write Operation in
// PinK"): buffered pairs are written to data segment pages and their records
// merged into L1's meta segments; overflowing levels cascade downward.
func (d *Device) flush(at sim.Time) (sim.Time, error) {
	done, err := d.flushCascade(at)
	if err == nil && d.tr != nil {
		d.tr.Span(trace.BGTrack(trace.CauseFlush), trace.EvFlush,
			trace.CauseFlush, at, at, done, 0)
	}
	return done, err
}

func (d *Device) flushCascade(at sim.Time) (sim.Time, error) {
	// GC must run before the buffer is drained: it re-inserts surviving
	// pairs into the buffer and classifies victims against installed
	// records only, so no record may be in flight while it runs. Because
	// those re-inserts grow the buffer — and with it the data pages the
	// drain will write — the estimate is re-evaluated until it stabilises.
	now := at
	var err error
	for {
		est := d.flushBlockEstimate()
		now, err = d.ensureFree(now, est)
		if err != nil {
			return now, err
		}
		if d.flushBlockEstimate() <= est {
			break
		}
	}
	entries := d.mt.All()
	d.mt.Reset()
	// On failure the accepted-but-unflushed pairs must survive: restore the
	// drained entries so the buffer still holds them when the error
	// surfaces. (Data pages already written are simply re-shadowed by the
	// restored buffer and collected by GC later.)
	restore := func() {
		for i := range entries {
			if entries[i].Tombstone {
				d.mt.Delete(entries[i].Key)
			} else {
				d.mt.Put(entries[i].Key, entries[i].Value)
			}
		}
	}
	recs, now, err := d.writeDataPages(now, entries)
	if err != nil {
		restore()
		return now, err
	}

	pending := recs
	dst := 1
	for {
		for len(d.levels) < dst {
			d.levels = append(d.levels, &level{})
		}
		d.st.TreeCompactions++
		old, t := d.collectLevelRecords(now, dst-1, nand.CauseCompaction)
		now = t
		merged := d.mergeRecords(pending, old, d.deepestBelow(dst))
		now = d.cpuOccupy(now, sim.Duration(len(merged))*mergeCPUCost, trace.CauseCompaction)
		now, err = d.writeLevel(now, dst, merged)
		if err != nil {
			return now, err // records of this merge are lost; device is full
		}
		if d.levels[dst-1].bytes <= d.threshold(dst) {
			return now, nil
		}
		// Cascade: the level just written overflows its threshold, so a
		// tree-triggered compaction merges it into the next level. Cascades
		// write meta pages only, and the collected levels' per-level blocks
		// die wholesale, so the erase-only reclaim inside nextPage keeps the
		// pool supplied; relocating GC is never needed (and would be unsafe)
		// mid-cascade.
		pending, now = d.collectLevelRecords(now, dst-1, nand.CauseCompaction)
		dst++
	}
}

// flushBlockEstimate bounds the blocks one flush may consume up front: the
// buffered pairs' data pages plus a small meta margin. Meta rebuilds replace
// per-level blocks that die wholesale at collect time, so the erase-only
// reclaim inside the merge keeps pace with meta writes.
func (d *Device) flushBlockEstimate() int {
	pages := 2*d.mt.Bytes()/int64(d.cfg.Geometry.PageSize) + 8
	return int(pages/int64(d.cfg.Geometry.PagesPerBlock)) + 2
}

// writeDataPages packs the flushed pairs into data segment pages, returning
// their meta records in key order.
func (d *Device) writeDataPages(at sim.Time, entries []memtable.Entry) ([]record, sim.Time, error) {
	recs := make([]record, 0, len(entries))
	pageBuf := d.arena.Acquire()
	w := kv.NewPageWriter(pageBuf, nil)
	var pending []int // indices in recs whose loc awaits the page's PPA
	now := at

	flushPage := func() error {
		if w.Count() == 0 {
			return nil
		}
		kv.SealPage(pageBuf)
		ppa, t, err := d.programPage(at, d.dataStream, pageBuf, nand.CauseFlush)
		if err != nil {
			return err
		}
		now = sim.Max(now, t)
		live := make([]bool, w.Count())
		for i := range live {
			live[i] = true
		}
		seq := d.nextSeq
		d.nextSeq++
		d.l2p[seq] = ppa
		d.p2l[ppa] = seq
		d.liveSlots[seq] = live
		ss := d.blockSlotsOf(d.arr.BlockOf(ppa))
		ss.live += int32(len(live))
		ss.total += int32(len(live))
		d.pool.MarkValid(ppa)
		for slotIdx, ri := range pending {
			recs[ri].loc = makeLoc(seq, slotIdx)
		}
		pending = pending[:0]
		d.arena.Release(pageBuf) // programmed: the array copied what it keeps
		pageBuf = d.arena.Acquire()
		w = kv.NewPageWriter(pageBuf, nil)
		return nil
	}

	for i := range entries {
		ent := &entries[i]
		if ent.Tombstone {
			recs = append(recs, record{key: ent.Key, loc: tombstoneLoc})
			continue
		}
		e := kv.Entity{Key: ent.Key, Value: ent.Value}
		if !w.AppendEntity(&e) {
			if err := flushPage(); err != nil {
				return nil, now, err
			}
			if !w.AppendEntity(&e) {
				panic(fmt.Sprintf("pink: pair of %d bytes does not fit an empty page", e.EncodedSize()))
			}
		}
		recs = append(recs, record{key: ent.Key, loc: makeLoc(0, w.Count()-1), vlen: len(ent.Value)})
		pending = append(pending, len(recs)-1)
	}
	if err := flushPage(); err != nil {
		return nil, now, err
	}
	return recs, now, nil
}

// nextPage allocates the next page of a stream, erasing fully-invalid
// blocks (safe at any point) when the pool runs dry.
// programPage allocates a page from stream s and programs img into it,
// re-issuing into a fresh block when an injected program failure retires the
// current one as grown-bad. Returns the landed PPA and completion time.
func (d *Device) programPage(at sim.Time, s *ftl.Stream, img []byte, cause nand.Cause) (nand.PPA, sim.Time, error) {
	now := at
	for {
		ppa, err := d.nextPage(now, s)
		if err != nil {
			return 0, now, err
		}
		t, perr := d.arr.Program(now, ppa, img, cause)
		now = t
		if perr == nil {
			return ppa, now, nil
		}
		s.Close() // the block grew bad; force a fresh one
	}
}

func (d *Device) nextPage(at sim.Time, s *ftl.Stream) (nand.PPA, error) {
	if ppa, ok := s.NextPage(); ok {
		return ppa, nil
	}
	if _, reclaimed := d.reclaimEmpty(at); reclaimed {
		if ppa, ok := s.NextPage(); ok {
			return ppa, nil
		}
	}
	return 0, kv.ErrDeviceFull
}

// collectLevelRecords reads every meta segment of level index i (flash
// reads for non-resident ones, all issued in parallel at `at`), decodes the
// records, and releases the segments. The level is left empty.
func (d *Device) collectLevelRecords(at sim.Time, i int, cause nand.Cause) ([]record, sim.Time) {
	lv := d.levels[i]
	total := 0
	for _, seg := range lv.segs {
		total += seg.count
	}
	recs := make([]record, 0, total)
	now := at
	for _, seg := range lv.segs {
		if !seg.cached {
			now = sim.Max(now, d.arr.Read(at, seg.ppa, cause))
		}
		recs = appendAllRecords(recs, d.arr.PageData(seg.ppa))
		d.releaseSegment(seg)
	}
	lv.segs = nil
	lv.bytes = 0
	return recs, now
}

// releaseSegment invalidates a segment's flash page and returns any cache
// charge.
func (d *Device) releaseSegment(seg *metaSegment) {
	if seg.cached {
		d.mem.Release(dramSegLabel, int64(d.cfg.Geometry.PageSize))
		seg.cached = false
	}
	d.pool.MarkInvalid(seg.ppa)
	delete(d.segAt, seg.ppa)
}

// deepestBelow reports whether every level deeper than dst is empty, which
// makes dst the tree's bottom: tombstones merged into it can be dropped.
func (d *Device) deepestBelow(dst int) bool {
	for i := dst; i < len(d.levels); i++ {
		if len(d.levels[i].segs) > 0 {
			return false
		}
	}
	return true
}

// mergeRecords merges two key-sorted runs, newer first. Losing records have
// their data slots invalidated; tombstones are dropped when merging into the
// bottom level.
//
// The output reuses d.mergeBuf: only one merged run is live at a time (each
// cascade step writes its run out, then collects the next level fresh), so
// steady-state merging allocates nothing per record.
func (d *Device) mergeRecords(newer, older []record, atBottom bool) []record {
	if need := len(newer) + len(older); cap(d.mergeBuf) < need {
		d.mergeBuf = make([]record, 0, need)
	}
	out := d.mergeBuf[:0]
	defer func() { d.mergeBuf = out[:0] }()
	i, j := 0, 0
	emit := func(r record) {
		if r.tombstone() && atBottom {
			return
		}
		out = append(out, r)
	}
	for i < len(newer) && j < len(older) {
		switch kv.Compare(newer[i].key, older[j].key) {
		case -1:
			emit(newer[i])
			i++
		case 1:
			emit(older[j])
			j++
		default:
			d.invalidateLoc(older[j].loc)
			emit(newer[i])
			i++
			j++
		}
	}
	for ; i < len(newer); i++ {
		emit(newer[i])
	}
	for ; j < len(older); j++ {
		emit(older[j])
	}
	return out
}

// invalidateLoc drops a record's claim on its data slot, releasing the page
// when its last live slot dies. Records whose page was already reclaimed by
// GC (dangling shadowed versions) miss the never-reused logical page map and
// are ignored.
func (d *Device) invalidateLoc(loc dataLoc) {
	if loc == tombstoneLoc {
		return
	}
	live, ok := d.liveSlots[loc.seq()]
	if !ok || !live[loc.slot()] {
		return // GC already dropped this version
	}
	live[loc.slot()] = false
	d.blockSlotsOf(d.arr.BlockOf(d.l2p[loc.seq()])).live--
	for _, l := range live {
		if l {
			return
		}
	}
	d.dropPage(loc.seq())
}

// writeLevel packs records into meta segment pages and installs them as
// level dst (1-based), choosing DRAM or flash placement for each.
func (d *Device) writeLevel(at sim.Time, dst int, recs []record) (sim.Time, error) {
	lv := d.levels[dst-1]
	if len(lv.segs) != 0 {
		panic("pink: writeLevel into non-empty level")
	}
	now := at
	pageBuf := d.arena.Acquire()
	w := kv.NewPageWriter(pageBuf, nil)
	var first []byte
	var segBytes int64
	var count int

	finish := func() error {
		if count == 0 {
			return nil
		}
		seg := &metaSegment{firstKey: append([]byte(nil), first...), count: count}
		// Meta segments persist to flash unconditionally; all writes of the
		// rebuild dispatch at the phase start (per-die contention is the
		// flash model's job, so the rebuild parallelises).
		t, err := d.segmentToFlash(at, dst, seg, pageBuf, nand.CauseCompaction)
		if err != nil {
			return err
		}
		now = sim.Max(now, t)
		lv.segs = append(lv.segs, seg)
		lv.bytes += segBytes
		d.arena.Release(pageBuf) // programmed: the array copied what it keeps
		pageBuf = d.arena.Acquire()
		w = kv.NewPageWriter(pageBuf, nil)
		first = nil
		segBytes = 0
		count = 0
		return nil
	}

	scratch := make([]byte, 0, 256)
	for ri := range recs {
		r := &recs[ri]
		scratch = encodeRecord(scratch[:0], r)
		if !w.AppendRaw(scratch) {
			if err := finish(); err != nil {
				return now, err
			}
			if !w.AppendRaw(scratch) {
				panic("pink: record does not fit an empty meta segment")
			}
		}
		if count == 0 {
			first = r.key
		}
		count++
		segBytes += r.bytes()
	}
	if err := finish(); err != nil {
		return now, err
	}
	d.rebuildMetaCache()
	return now, nil
}

// rebuildMetaCache repopulates the DRAM meta-segment cache greedily from the
// top level down — PinK pins upper levels (§3.2). Cache admission costs
// nothing extra: freshly rebuilt segments pass through controller RAM, and
// deeper segments are only flagged, paying their read on first miss.
func (d *Device) rebuildMetaCache() {
	pageSize := int64(d.cfg.Geometry.PageSize)
	d.mem.ReleaseAll(dramSegLabel)
	full := false
	for _, lv := range d.levels {
		for _, seg := range lv.segs {
			if !full && d.mem.Reserve(dramSegLabel, pageSize) {
				seg.cached = true
			} else {
				full = true
				seg.cached = false
			}
		}
	}
}

// segmentToFlash programs a segment image into the meta region, using the
// level's own allocation stream so level rebuilds free whole blocks.
func (d *Device) segmentToFlash(at sim.Time, levelIdx int, seg *metaSegment, img []byte, cause nand.Cause) (sim.Time, error) {
	kv.SealPage(img)
	ppa, done, err := d.programPage(at, d.metaStream(levelIdx), img, cause)
	if err != nil {
		return at, err
	}
	seg.ppa = ppa
	d.pool.MarkValid(ppa)
	d.segAt[ppa] = seg
	return done, nil
}

// levelOfSegment finds the 1-based level index owning seg (small scans; used
// by GC diagnostics only).
func (d *Device) levelOfSegment(seg *metaSegment) int {
	for i, lv := range d.levels {
		j, _ := slices.BinarySearchFunc(lv.segs, seg.firstKey, func(s *metaSegment, k []byte) int {
			if kv.Compare(s.firstKey, k) > 0 {
				return 1
			}
			return -1
		})
		if j > 0 && lv.segs[j-1] == seg {
			return i + 1
		}
		for _, s := range lv.segs {
			if s == seg {
				return i + 1
			}
		}
	}
	return 0
}

// metaStream returns (creating on demand) the meta-page allocation stream
// for one level.
func (d *Device) metaStream(levelIdx int) *ftl.Stream {
	s, ok := d.metaStreams[levelIdx]
	if !ok {
		s = ftl.NewStream(d.pool, ftl.RegionMeta)
		d.metaStreams[levelIdx] = s
	}
	return s
}

// dropPage retires a fully dead logical data page: its physical page is
// invalidated and the indirection entries removed.
func (d *Device) dropPage(seq uint64) {
	ppa, ok := d.l2p[seq]
	if !ok {
		panic("pink: dropPage of unmapped page")
	}
	live := d.liveSlots[seq]
	b := d.arr.BlockOf(ppa)
	ss := d.blockSlotsOf(b)
	for _, l := range live {
		if l {
			ss.live--
		}
	}
	ss.total -= int32(len(live))
	if ss.total == 0 {
		delete(d.slotStats, b)
	}
	delete(d.liveSlots, seq)
	delete(d.l2p, seq)
	delete(d.p2l, ppa)
	d.pool.MarkInvalid(ppa)
}

// blockSlotsOf returns (creating on demand) the slot census for block b.
func (d *Device) blockSlotsOf(b nand.BlockID) *blockSlots {
	ss, ok := d.slotStats[b]
	if !ok {
		ss = &blockSlots{}
		d.slotStats[b] = ss
	}
	return ss
}
