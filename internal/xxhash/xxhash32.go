// Package xxhash implements the 32-bit variant of the xxHash fast
// non-cryptographic hash algorithm (https://xxhash.com, XXH32).
//
// AnyKey sorts the KV entities of a data segment group by the 32-bit xxHash
// of their keys and indexes pages by truncated 16-bit prefixes of the same
// hashes (paper §4.1), so a spec-conformant implementation is part of the
// reproduction: collision behaviour — and therefore the frequency with which
// the hash-collision bits fire — depends on the real hash.
package xxhash

import "math/bits"

const (
	prime1 uint32 = 2654435761
	prime2 uint32 = 2246822519
	prime3 uint32 = 3266489917
	prime4 uint32 = 668265263
	prime5 uint32 = 374761393
)

// Sum32 returns the XXH32 digest of b with seed 0.
func Sum32(b []byte) uint32 { return Sum32Seed(b, 0) }

// Sum32Seed returns the XXH32 digest of b with the given seed.
func Sum32Seed(b []byte, seed uint32) uint32 {
	n := uint32(len(b))
	var h uint32

	if len(b) >= 16 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 16 {
			v1 = round(v1, le32(b[0:4]))
			v2 = round(v2, le32(b[4:8]))
			v3 = round(v3, le32(b[8:12]))
			v4 = round(v4, le32(b[12:16]))
			b = b[16:]
		}
		h = bits.RotateLeft32(v1, 1) + bits.RotateLeft32(v2, 7) +
			bits.RotateLeft32(v3, 12) + bits.RotateLeft32(v4, 18)
	} else {
		h = seed + prime5
	}

	h += n
	for len(b) >= 4 {
		h += le32(b[0:4]) * prime3
		h = bits.RotateLeft32(h, 17) * prime4
		b = b[4:]
	}
	for _, c := range b {
		h += uint32(c) * prime5
		h = bits.RotateLeft32(h, 11) * prime1
	}

	h ^= h >> 15
	h *= prime2
	h ^= h >> 13
	h *= prime3
	h ^= h >> 16
	return h
}

// Sum16 returns the truncated 16-bit prefix of the XXH32 digest, the form
// stored in AnyKey level-list entries for the first entity of each page.
func Sum16(b []byte) uint16 { return uint16(Sum32(b) >> 16) }

// Prefix16 truncates a full 32-bit digest to the 16-bit prefix form.
func Prefix16(h uint32) uint16 { return uint16(h >> 16) }

func round(acc, lane uint32) uint32 {
	acc += lane * prime2
	return bits.RotateLeft32(acc, 13) * prime1
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
