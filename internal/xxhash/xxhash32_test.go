package xxhash

import (
	"testing"
	"testing/quick"
)

// Reference vectors from the xxHash specification and upstream test suite.
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0x02cc5d05},
		{"a", 0, 0x550d7456},
		{"as", 0, 0x9d5a0464},
		{"asd", 0, 0x3d83552b},
		{"asdf", 0, 0x5e702c32},
		{"abc", 0, 0x32d153ff},
		// 64-byte input exercising the 16-byte stripe loop; digest
		// cross-checked against an independent implementation of the spec.
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0, 0x6f320359},
	}
	for _, c := range cases {
		if got := Sum32Seed([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum32Seed(%q, %d) = %#08x, want %#08x", c.in, c.seed, got, c.want)
		}
	}
}

func TestSeedChangesDigest(t *testing.T) {
	in := []byte("the quick brown fox")
	if Sum32Seed(in, 0) == Sum32Seed(in, 1) {
		t.Fatal("seeds 0 and 1 produced the same digest")
	}
}

func TestSum16IsPrefix(t *testing.T) {
	f := func(b []byte) bool {
		return Sum16(b) == uint16(Sum32(b)>>16) && Prefix16(Sum32(b)) == Sum16(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The digest must depend on every byte: flipping any single bit of the input
// must change the hash. (Not literally guaranteed by a 32-bit hash, but with
// the quick default 100 random cases a violation would indicate a broken
// lane/tail path, which is the property we care about.)
func TestBitFlipSensitivity(t *testing.T) {
	f := func(b []byte, idx uint) bool {
		if len(b) == 0 {
			return true
		}
		i := int(idx % uint(len(b)))
		orig := Sum32(b)
		b[i] ^= 1
		flipped := Sum32(b)
		b[i] ^= 1
		return orig != flipped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Lane-boundary lengths exercise the 16-byte stripe loop, the 4-byte tail
// loop and the byte tail together.
func TestAllSmallLengthsDiffer(t *testing.T) {
	seen := make(map[uint32]int)
	buf := make([]byte, 0, 64)
	for n := 0; n < 64; n++ {
		h := Sum32(buf)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide: %#08x", prev, n, h)
		}
		seen[h] = n
		buf = append(buf, byte(n*31+7))
	}
}

func BenchmarkSum32_40B(b *testing.B) {
	key := make([]byte, 40)
	for i := range key {
		key[i] = byte(i)
	}
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		Sum32(key)
	}
}
