// Transaction measurement runs: contended read-modify-write traffic driven
// through the cluster's transaction layer, comparing serialized OCC against
// doppel-style split-phase execution, plus the overhead of atomic (2PC)
// batches over best-effort Multi* waves.
//
// The workload is a bank of decimal counters under Zipfian skew. Each wave
// opens Clients transactions, interleaves their reads and increments (so
// same-wave writers to one key genuinely race), then commits them in client
// order; a validation conflict retries the whole transaction — fresh reads,
// same key choices — up to the cluster's TxnOptions retry budget. Every
// committed increment is tallied per key, and the run ends with an exactness
// oracle: after the final flush, each counter must equal exactly the sum of
// its committed deltas — lost updates and phantom merges both fail the run.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"anykey"
	"anykey/internal/stats"
	"anykey/internal/zipfian"
)

// Transaction run modes.
const (
	// TxnModeOCC serializes contended keys through validate-at-commit with
	// bounded retry (hot-key splitting disabled).
	TxnModeOCC = "occ"
	// TxnModeSplit enables the contention detector: keys past the conflict
	// threshold move into a split phase where increments batch per shard and
	// merge at phase close.
	TxnModeSplit = "split"
	// TxnModeAtomic measures AtomicMultiPut batches (2PC per wave).
	TxnModeAtomic = "atomic"
	// TxnModeBestEffort measures plain MultiPut batches of the same shape —
	// the baseline the atomic overhead is measured against.
	TxnModeBestEffort = "besteffort"
)

// TxnRunConfig describes one transaction measurement cell. All fields are
// scalars (plus the comparable ClusterOptions), so the parallel runner can
// memoize on it.
type TxnRunConfig struct {
	Cluster anykey.ClusterOptions

	// Mode selects the concurrency-control flavor (TxnMode*, default OCC).
	Mode string

	// Theta is the Zipfian skew over the counter population (default 0.99);
	// WriteRatio the per-op probability of an increment vs a read (default
	// 0.2).
	Theta      float64
	WriteRatio float64

	Seed int64

	// Clients transactions run concurrently per wave (default 8), each
	// issuing TxOps operations (default 2), for Waves waves (default 400).
	Clients int
	TxOps   int
	Waves   int

	// Population is the number of distinct counter keys (default 4096).
	Population uint64

	// BatchOps sizes the atomic/besteffort batches (default 16).
	BatchOps int
}

func (c *TxnRunConfig) defaults() error {
	switch c.Mode {
	case "":
		c.Mode = TxnModeOCC
	case TxnModeOCC, TxnModeSplit, TxnModeAtomic, TxnModeBestEffort:
	default:
		return fmt.Errorf("harness: unknown txn mode %q", c.Mode)
	}
	// The mode decides the split-phase policy: OCC-only cells disable the
	// contention detector outright; split cells promote after 4 conflicts so
	// quick runs reach the split regime too.
	if c.Mode == TxnModeSplit {
		if c.Cluster.Txn.HotThreshold == 0 {
			c.Cluster.Txn.HotThreshold = 4
		}
	} else if c.Cluster.Txn.HotThreshold == 0 {
		c.Cluster.Txn.HotThreshold = -1
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.WriteRatio == 0 {
		c.WriteRatio = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.TxOps == 0 {
		c.TxOps = 2
	}
	if c.Waves == 0 {
		c.Waves = 400
	}
	if c.Population == 0 {
		c.Population = 4096
	}
	if c.BatchOps == 0 {
		c.BatchOps = 16
	}
	return nil
}

// TxnResult carries one transaction cell's measurements.
type TxnResult struct {
	System string
	Mode   string

	Theta      float64
	WriteRatio float64

	// Txns is the number of logical transactions offered; Committed and
	// Aborted partition their outcomes (Aborted = retry budget exhausted).
	// Conflicts counts individual validation failures, Retries the re-runs
	// they triggered.
	Txns      int64
	Committed int64
	Aborted   int64
	Conflicts int64
	Retries   int64

	// Layer is the coordinator's own counter snapshot (split merges, hot
	// keys, 2PC prepares, …).
	Layer anykey.TxnStats

	// GoodTxnPerSec is committed transactions per simulated second (the
	// slowest shard's execution elapsed, final flush included); OpsPerSec
	// counts their constituent operations.
	GoodTxnPerSec float64
	OpsPerSec     float64
	SimSeconds    float64

	// BatchLat is the merged batch-span histogram (atomic/besteffort modes).
	BatchLat stats.Histogram
	Batches  int64

	// Verified counts oracle checks that passed: per-counter exactness for
	// occ/split, full-batch visibility for atomic/besteffort.
	Verified int64
}

// txnKey renders counter key i. Keys hash across shards like any other.
func txnKey(buf []byte, id uint64) []byte {
	buf = buf[:0]
	buf = append(buf, "txn:"...)
	return strconv.AppendUint(buf, id, 10)
}

// RunTxn executes one transaction measurement cell.
func RunTxn(cfg TxnRunConfig) (*TxnResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cl, err := anykey.OpenCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res := &TxnResult{
		System: fmt.Sprintf("%s x%d", cfg.Cluster.Device.Design, cfg.Cluster.Shards),
		Mode:   cfg.Mode,
		Theta:  cfg.Theta, WriteRatio: cfg.WriteRatio,
	}
	if cfg.Mode == TxnModeAtomic || cfg.Mode == TxnModeBestEffort {
		return runTxnBatches(cfg, cl, res)
	}
	return runTxnWaves(cfg, cl, res)
}

// runTxnWaves drives the OCC / split-phase counter workload.
func runTxnWaves(cfg TxnRunConfig, cl *anykey.Cluster, res *TxnResult) (*TxnResult, error) {
	// Warm-up: every counter starts at 0, loaded in MultiPut waves.
	const warmBatch = 512
	keys := make([][]byte, 0, warmBatch)
	vals := make([][]byte, 0, warmBatch)
	zero := []byte("0")
	for id := uint64(0); id < cfg.Population; {
		keys, vals = keys[:0], vals[:0]
		for len(keys) < warmBatch && id < cfg.Population {
			keys = append(keys, txnKey(nil, id))
			vals = append(vals, zero)
			id++
		}
		br, err := cl.MultiPut(keys, vals)
		if err != nil {
			return nil, fmt.Errorf("harness: txn warm-up: %w", err)
		}
		if err := br.FirstErr(); err != nil {
			return nil, fmt.Errorf("harness: txn warm-up put: %w", err)
		}
	}
	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	warm := cl.Stats()
	cl.ResetBreakdowns()
	startClocks := make([]anykey.Time, len(warm.PerShard))
	for i, ss := range warm.PerShard {
		startClocks[i] = ss.Now
	}

	zipf, err := zipfian.New(cfg.Population, cfg.Theta)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxRetries := cfg.Cluster.Txn.MaxRetries // normalized by Validate

	type txOp struct {
		id    uint64
		write bool
	}
	expected := make(map[uint64]int64, cfg.Population)
	ops := make([][]txOp, cfg.Clients)
	txs := make([]*anykey.Tx, cfg.Clients)
	kbuf := make([]byte, 0, 16)

	runOps := func(tx *anykey.Tx, list []txOp) error {
		for _, op := range list {
			kbuf = txnKey(kbuf, op.id)
			if op.write {
				if _, err := tx.Incr(kbuf, 1); err != nil {
					return err
				}
			} else if _, err := tx.Get(kbuf); err != nil {
				return err
			}
		}
		return nil
	}
	tally := func(list []txOp) {
		for _, op := range list {
			if op.write {
				expected[op.id]++
			}
		}
	}

	for wave := 0; wave < cfg.Waves; wave++ {
		// Draw every client's ops up front, then interleave execution one
		// operation deep across clients — writers to a shared key genuinely
		// overlap, so their commits race at validation.
		for c := 0; c < cfg.Clients; c++ {
			ops[c] = ops[c][:0]
			for j := 0; j < cfg.TxOps; j++ {
				ops[c] = append(ops[c], txOp{
					id:    zipf.NextScrambled(rng),
					write: rng.Float64() < cfg.WriteRatio,
				})
			}
			tx, err := cl.BeginTxn()
			if err != nil {
				return nil, err
			}
			txs[c] = tx
		}
		for j := 0; j < cfg.TxOps; j++ {
			for c := 0; c < cfg.Clients; c++ {
				if err := runOps(txs[c], ops[c][j:j+1]); err != nil {
					return nil, fmt.Errorf("harness: txn wave %d client %d: %w", wave, c, err)
				}
			}
		}
		for c := 0; c < cfg.Clients; c++ {
			res.Txns++
			err := txs[c].Commit()
			attempts := 0
			for err != nil && errorsIsConflict(err) && attempts < maxRetries {
				res.Conflicts++
				res.Retries++
				attempts++
				tx, berr := cl.BeginTxn()
				if berr != nil {
					return nil, berr
				}
				if rerr := runOps(tx, ops[c]); rerr != nil {
					return nil, fmt.Errorf("harness: txn retry: %w", rerr)
				}
				err = tx.Commit()
			}
			if err != nil {
				if !errorsIsConflict(err) {
					return nil, fmt.Errorf("harness: txn commit: %w", err)
				}
				res.Conflicts++
				res.Aborted++
				continue
			}
			res.Committed++
			tally(ops[c])
		}
	}

	// The final Sync merges any open split phase and makes everything
	// durable — split mode pays its merge cost inside the measured window.
	if _, err := cl.Sync(); err != nil {
		return nil, err
	}
	final := cl.Stats()
	var slowest anykey.Duration
	for i, ss := range final.PerShard {
		if d := ss.Now.Sub(startClocks[i]); d > slowest {
			slowest = d
		}
	}
	res.SimSeconds = slowest.Seconds()
	if res.SimSeconds > 0 {
		res.GoodTxnPerSec = float64(res.Committed) / res.SimSeconds
		res.OpsPerSec = float64(res.Committed*int64(cfg.TxOps)) / res.SimSeconds
	}
	res.Layer = cl.TxnStats()

	// Exactness oracle: every counter equals the sum of its committed
	// increments — a lost update or a double merge both show up here.
	for id := uint64(0); id < cfg.Population; id++ {
		kbuf = txnKey(kbuf, id)
		v, _, err := cl.Get(kbuf)
		if err != nil {
			return nil, fmt.Errorf("harness: txn oracle get %d: %w", id, err)
		}
		got, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("harness: txn oracle parse %d: %w", id, err)
		}
		if got != expected[id] {
			return nil, fmt.Errorf("harness: txn oracle: counter %d = %d, expected %d (mode %s)",
				id, got, expected[id], cfg.Mode)
		}
		res.Verified++
	}
	return res, nil
}

// errorsIsConflict reports whether err is an OCC conflict (retryable).
func errorsIsConflict(err error) bool {
	return errors.Is(err, anykey.ErrTxnConflict)
}

// runTxnBatches measures atomic (2PC) vs best-effort Multi* batch waves
// over disjoint keys: the pure protocol overhead, no contention.
func runTxnBatches(cfg TxnRunConfig, cl *anykey.Cluster, res *TxnResult) (*TxnResult, error) {
	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	warm := cl.Stats()
	startClocks := make([]anykey.Time, len(warm.PerShard))
	for i, ss := range warm.PerShard {
		startClocks[i] = ss.Now
	}
	keys := make([][]byte, cfg.BatchOps)
	vals := make([][]byte, cfg.BatchOps)
	id := uint64(0)
	for wave := 0; wave < cfg.Waves; wave++ {
		for i := 0; i < cfg.BatchOps; i++ {
			keys[i] = txnKey(nil, id)
			vals[i] = []byte(fmt.Sprintf("v%012d", id))
			id++
		}
		var br *anykey.BatchResult
		var err error
		if cfg.Mode == TxnModeAtomic {
			br, err = cl.AtomicMultiPut(keys, vals)
		} else {
			br, err = cl.MultiPut(keys, vals)
		}
		if err != nil {
			return nil, fmt.Errorf("harness: %s wave %d: %w", cfg.Mode, wave, err)
		}
		if err := br.FirstErr(); err != nil {
			return nil, fmt.Errorf("harness: %s put: %w", cfg.Mode, err)
		}
		res.BatchLat.Record(br.Latency())
		res.Batches++
		res.Committed += int64(cfg.BatchOps)
	}
	if _, err := cl.Sync(); err != nil {
		return nil, err
	}
	final := cl.Stats()
	var slowest anykey.Duration
	for i, ss := range final.PerShard {
		if d := ss.Now.Sub(startClocks[i]); d > slowest {
			slowest = d
		}
	}
	res.SimSeconds = slowest.Seconds()
	if res.SimSeconds > 0 {
		res.OpsPerSec = float64(res.Committed) / res.SimSeconds
		res.GoodTxnPerSec = float64(res.Batches) / res.SimSeconds
	}
	res.Layer = cl.TxnStats()
	res.Txns = res.Batches

	// Visibility oracle: every batch key holds exactly its written value.
	kbuf := make([]byte, 0, 16)
	for check := uint64(0); check < id; check++ {
		kbuf = txnKey(kbuf, check)
		v, _, err := cl.Get(kbuf)
		if err != nil {
			return nil, fmt.Errorf("harness: batch oracle get %d: %w", check, err)
		}
		if string(v) != fmt.Sprintf("v%012d", check) {
			return nil, fmt.Errorf("harness: batch oracle: key %d holds %q", check, v)
		}
		res.Verified++
	}
	return res, nil
}
