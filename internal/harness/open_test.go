package harness

import (
	"testing"

	"anykey"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/trace"
	"anykey/internal/workload"
)

// TestRetryPolicyDelay pins the capped exponential backoff schedule the
// committed storm report was generated under.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxRetries: 5, Backoff: 500 * sim.Microsecond, MaxBackoff: 4 * sim.Millisecond}
	want := []anykey.Duration{
		500 * sim.Microsecond, // attempt 1
		sim.Millisecond,       // attempt 2
		2 * sim.Millisecond,   // attempt 3
		4 * sim.Millisecond,   // attempt 4
		4 * sim.Millisecond,   // attempt 5: capped
	}
	for k, w := range want {
		if got := p.delay(k + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", k+1, got, w)
		}
	}
	if got := p.delay(0); got != 0 {
		t.Errorf("delay(0) = %v, want 0", got)
	}
}

// slowTarget completes every attempt a fixed service time after it arrives
// and records the submission instants, so a test can pin the exact re-entry
// schedule of the retry protocol.
type slowTarget struct {
	service anykey.Duration
	at      []anykey.Time
}

func (s *slowTarget) submit(rel anykey.Time, op workload.Op) (openDone, error) {
	s.at = append(s.at, rel)
	return openDone{doneRel: rel.Add(s.service)}, nil
}

// TestOpenLoopRetryReentry pins the re-entry times of a timed-out
// operation: with a 10ms client deadline and 500µs..4ms doubling backoff,
// an attempt arriving at t re-enters at t+10.5ms, then +10ms+1ms, then
// +10ms+2ms, and is dropped after the third retry. The schedule is virtual
// time arithmetic, so it must reproduce exactly.
func TestOpenLoopRetryReentry(t *testing.T) {
	cfg := BaseConfig{
		Workload: mustSpec("ZippyDB").WithArrival(
			workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: 1000}),
		MaxOps:   1, // one fresh arrival, then drain the retries
		NoVerify: true,
		Seed:     1,
		Timeout:  10 * sim.Millisecond,
		Retry:    RetryPolicy{MaxRetries: 3, Backoff: 500 * sim.Microsecond, MaxBackoff: 4 * sim.Millisecond},
		SLO:      2 * sim.Millisecond,
		Horizon:  sim.Second,
	}
	gen, err := workload.NewGenerator(cfg.Workload, workload.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	tgt := &slowTarget{service: 15 * sim.Millisecond} // every attempt misses the deadline
	hist := openHists{read: &stats.Histogram{}, write: &stats.Histogram{}, scan: &stats.Histogram{}}
	var verified int64
	st, err := runOpenLoop(&cfg, gen, tgt, hist, &verified)
	if err != nil {
		t.Fatal(err)
	}
	if len(tgt.at) != 4 {
		t.Fatalf("expected 4 attempts (1 fresh + 3 retries), got %d at %v", len(tgt.at), tgt.at)
	}
	t0 := tgt.at[0]
	want := []anykey.Time{
		t0,
		t0.Add(10*sim.Millisecond + 500*sim.Microsecond),
		t0.Add(10*sim.Millisecond + 500*sim.Microsecond).Add(10*sim.Millisecond + sim.Millisecond),
		t0.Add(10*sim.Millisecond + 500*sim.Microsecond).Add(10*sim.Millisecond + sim.Millisecond).Add(10*sim.Millisecond + 2*sim.Millisecond),
	}
	for i, w := range want {
		if tgt.at[i] != w {
			t.Errorf("attempt %d submitted at %v, want %v", i, tgt.at[i], w)
		}
	}
	if st.Offered != 1 || st.Attempts != 4 || st.Timeouts != 4 || st.Retries != 3 ||
		st.Dropped != 1 || st.Completed != 0 || st.GoodOps != 0 {
		t.Errorf("stats %+v: want offered=1 attempts=4 timeouts=4 retries=3 dropped=1 completed=0", st)
	}
}

// TestOpenLoopDeviceRun drives a real device at a sustainable rate and
// checks the scorecard adds up.
func TestOpenLoopDeviceRun(t *testing.T) {
	cfg := RunConfig{
		Device: anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 16,
			Channels: 4, ChipsPerChannel: 4},
		BaseConfig: BaseConfig{
			Workload: mustSpec("ZippyDB").WithArrival(
				workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: 30e3}),
			Horizon: 20 * sim.Millisecond,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Open
	if st == nil {
		t.Fatal("open-loop run returned no OpenStats")
	}
	if st.Offered == 0 || st.Completed == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.Completed+st.Dropped != st.Offered {
		t.Errorf("completed %d + dropped %d != offered %d", st.Completed, st.Dropped, st.Offered)
	}
	if st.Attempts != st.Offered+st.Retries {
		t.Errorf("attempts %d != offered %d + retries %d", st.Attempts, st.Offered, st.Retries)
	}
	if res.Ops != st.Attempts {
		t.Errorf("res.Ops %d != attempts %d", res.Ops, st.Attempts)
	}
	if st.GoodOps > st.Completed {
		t.Errorf("good ops %d > completed %d", st.GoodOps, st.Completed)
	}
	if st.Goodput <= 0 {
		t.Errorf("goodput %v not positive", st.Goodput)
	}
	if res.Verified == 0 {
		t.Error("no reads verified at a sustainable rate")
	}
}

// TestOpenLoopClusterRun drives the per-shard open-loop submission path and
// checks shard routing tallies match the attempt count.
func TestOpenLoopClusterRun(t *testing.T) {
	cfg := ClusterRunConfig{
		Cluster: anykey.ClusterOptions{Shards: 2, Device: anykey.Options{
			Design: anykey.DesignAnyKeyPlus, CapacityMB: 16, Channels: 4, ChipsPerChannel: 4}},
		BaseConfig: BaseConfig{
			Workload: mustSpec("ZippyDB").WithArrival(
				workload.ArrivalSpec{Shape: workload.ArrivalBursty, Rate: 40e3, Burst: 2.0,
					Period: 10 * sim.Millisecond}),
			Horizon: 20 * sim.Millisecond,
		},
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Open
	if st == nil {
		t.Fatal("open-loop cluster run returned no OpenStats")
	}
	if st.Offered == 0 || st.Completed == 0 || st.Goodput <= 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	var routed int64
	for _, n := range res.ShardOps {
		routed += n
	}
	if routed != st.Attempts {
		t.Errorf("shard ops sum %d != attempts %d", routed, st.Attempts)
	}
	if res.Ops != st.Attempts {
		t.Errorf("res.Ops %d != attempts %d", res.Ops, st.Attempts)
	}
}

// TestOpenLoopBlameCauses checks the acceptance gate on attribution: a
// traced overloaded run must blame above-P99 time onto the named timeout
// and retry causes while keeping coverage at 95%+.
func TestOpenLoopBlameCauses(t *testing.T) {
	cfg := RunConfig{
		Device: anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 16,
			Channels: 4, ChipsPerChannel: 4, Trace: &anykey.TraceOptions{}},
		BaseConfig: BaseConfig{
			Workload: mustSpec("ZippyDB").WithArrival(
				workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: 400e3}),
			Horizon: 20 * sim.Millisecond,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Open
	if st == nil || st.Timeouts == 0 || st.Retries == 0 {
		t.Fatalf("overload run produced no timeouts/retries: %+v", st)
	}
	b := res.Blame
	if b == nil {
		t.Fatal("traced run produced no blame report")
	}
	if cov := b.Coverage(); cov < 0.95 {
		t.Errorf("blame coverage %.3f below the 0.95 gate\n%s", cov, b)
	}
	if s := b.Share(trace.CauseRetry); s <= 0 {
		t.Errorf("no blame attributed to retry queueing\n%s", b)
	}
	if s := b.Share(trace.CauseTimeout); s < 0 {
		t.Errorf("negative timeout share %v", s)
	}
}

// TestStormReportGoldenDeterminism pins the storm experiment's determinism
// contract in the cluster-suite style: byte-identical reports whether the
// cells run serially or on a parallel pool, across seeds.
func TestStormReportGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick storm suite four times")
	}
	for _, seed := range []int64{1, 7} {
		serial, err := RunExperiment("storm", ExpOptions{Quick: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunExperiment("storm", ExpOptions{Quick: true, Seed: seed, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		ss, ps := serial.String(), parallel.String()
		if fnv64a(ss) != fnv64a(ps) || ss != ps {
			t.Fatalf("seed %d: sequential and parallel storm reports differ\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, ss, ps)
		}
	}
}
