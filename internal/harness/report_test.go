package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anykey/internal/sim"
	"anykey/internal/stats"
)

func TestReportFormatting(t *testing.T) {
	r := &Report{
		ID:    "figX",
		Title: "A demonstration",
		Notes: []string{"one note"},
		Tables: []Table{{
			Name:   "t1",
			Header: []string{"col", "value"},
			Rows:   [][]string{{"a", "1"}, {"longer-cell", "2"}},
		}},
	}
	out := r.String()
	for _, want := range []string{"figX", "A demonstration", "one note", "t1", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Columns must align: the header's second column starts where the
	// longest cell dictates.
	lines := strings.Split(out, "\n")
	var headerLine, rowLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "col") {
			headerLine = l
			rowLine = lines[i+2]
		}
	}
	if strings.Index(headerLine, "value") != strings.Index(rowLine, "1") {
		t.Fatalf("columns misaligned:\n%q\n%q", headerLine, rowLine)
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := []struct{ got, want string }{
		{fcount(42), "42"},
		{fcount(42_000), "42.0K"},
		{fcount(42_000_000), "42.0M"},
		{fbytes(512), "512B"},
		{fbytes(64 << 10), "64.0KB"},
		{fbytes(64 << 20), "64.0MB"},
		{fiops(512), "512"},
		{fiops(5_200), "5.2K"},
		{fiops(5_200_000), "5.20M"},
		{fratio(1.5), "1.50x"},
		{fpct(0.123), "12.3%"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("format helper: got %q want %q", c.got, c.want)
		}
	}
}

func TestLatRowShape(t *testing.T) {
	var h stats.Histogram
	for i := 0; i < 100; i++ {
		h.Record(sim.Duration(1000 * (i + 1)))
	}
	row := latRow(&h)
	if len(row) != len(latHeader) {
		t.Fatalf("latRow has %d cells for %d headers", len(row), len(latHeader))
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	ids := SortedExperimentIDs()
	if len(ids) != len(exps) {
		t.Fatal("SortedExperimentIDs incomplete")
	}
	if _, err := RunExperiment("no-such-exp", ExpOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// The two analytic experiments are cheap enough to run in tests outright.
func TestAnalyticExperiments(t *testing.T) {
	for _, id := range []string{"table1", "scale"} {
		rep, err := RunExperiment(id, ExpOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			t.Fatalf("%s: empty report", id)
		}
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := &Report{ID: "demo", Title: "T", Tables: []Table{
		{Name: "first table!", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}},
		{Name: "second", Header: []string{"x"}, Rows: [][]string{{"y"}}},
	}}
	if err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"demo.txt", "demo-1-first-table.csv", "demo-2-second.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	csvBytes, _ := os.ReadFile(filepath.Join(dir, "demo-1-first-table.csv"))
	if string(csvBytes) != "a,b\n1,2\n" {
		t.Fatalf("csv content: %q", csvBytes)
	}
}

func TestSlug(t *testing.T) {
	if slug("(a) metadata structures, Crypto1") != "a-metadata-structures-crypto1" {
		t.Fatalf("slug = %q", slug("(a) metadata structures, Crypto1"))
	}
}
