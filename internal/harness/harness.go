// Package harness drives the simulated KV-SSDs through the paper's
// evaluation methodology (§5): a warm-up phase that loads the full key
// population in shuffled order, then an execution phase issuing requests
// at queue depth 64 (the paper's setting) through the host submission
// engine until the issued bytes reach a multiple of the device capacity,
// recording latencies, IOPS and flash-operation deltas. A separate
// fill-to-full mode measures storage utilization (Fig. 14).
//
// Experiments fan out over many independent (design, workload, knob)
// cells, each owning its own device; RunExperiment runs them on a worker
// pool when ExpOptions.Parallel asks for one (see parallel.go).
package harness

import (
	"bytes"
	"errors"
	"fmt"

	"anykey"
	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/workload"
)

// RetryPolicy is the open-loop client's retry schedule: a timed-out
// attempt is re-submitted after a capped exponential backoff — the k-th
// retry waits min(Backoff << k, MaxBackoff) past the expired deadline —
// until MaxRetries retries have been spent, then the operation is dropped.
// All fields are scalars so configs stay comparable.
type RetryPolicy struct {
	MaxRetries int
	Backoff    anykey.Duration
	MaxBackoff anykey.Duration
}

// delay returns the backoff before retry number k (k = 1 is the first
// retry).
func (p RetryPolicy) delay(k int) anykey.Duration {
	if k < 1 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < k; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// BaseConfig holds the methodology knobs shared by single-device and
// cluster runs: the workload, population sizing, request mix, run length,
// and — when the workload carries an open-loop arrival process — the
// client-side timeout/retry/SLO knobs. It is embedded in RunConfig and
// ClusterRunConfig so the knobs are defined once, and holds only comparable
// values so the parallel runner can memoize on the enclosing configs.
type BaseConfig struct {
	Workload workload.Spec

	// FillFrac sizes the key population to this fraction of the raw
	// capacity (default 0.5 — leaves room for the value log,
	// over-provisioning and PinK's flash metadata).
	FillFrac float64

	// Theta and WriteRatio parameterise the request mix (defaults 0.99,
	// 0.2 per §5.1).
	Theta      float64
	WriteRatio float64

	// ExecFactor stops a closed-loop execution phase once issued request
	// bytes reach ExecFactor × capacity (default 2, §5.5). MaxOps, if set,
	// caps the number of executed (closed-loop) or offered (open-loop)
	// operations regardless (for quick runs).
	ExecFactor float64
	MaxOps     int64

	// Verify checks every read's payload against the generator's expected
	// version (always on unless disabled; it costs only host time).
	NoVerify bool

	Seed int64

	// Open-loop client knobs, meaningful only when Workload.Arrival is an
	// open shape. Timeout is the client deadline per attempt (default
	// 10 ms); Retry schedules re-submissions after timeouts (default 3
	// retries, 500 µs base backoff capped at 4 ms); SLO is the end-to-end
	// latency bound a completion must meet to count as goodput (default
	// 2 ms); Horizon is how long fresh arrivals are offered in virtual
	// time (default 100 ms) — the run then drains retries and backlog.
	Timeout anykey.Duration
	Retry   RetryPolicy
	SLO     anykey.Duration
	Horizon anykey.Duration
}

// baseDefaults fills the shared defaults. scanRatio is the enclosing
// config's scan mix (cluster runs have none); it suppresses the write-ratio
// default exactly as before the configs were unified.
func (c *BaseConfig) baseDefaults(pageSize int, scanRatio float64) {
	if c.FillFrac == 0 {
		c.FillFrac = safeFillFrac(c.Workload, pageSize)
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.WriteRatio == 0 && scanRatio == 0 {
		c.WriteRatio = 0.2
	}
	if c.ExecFactor == 0 {
		c.ExecFactor = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workload.Arrival.Open() {
		if c.Timeout == 0 {
			c.Timeout = 10 * anykey.Duration(sim.Millisecond)
		}
		if c.Retry.MaxRetries == 0 {
			c.Retry.MaxRetries = 3
		}
		if c.Retry.Backoff == 0 {
			c.Retry.Backoff = anykey.Duration(500 * sim.Microsecond)
		}
		if c.Retry.MaxBackoff == 0 {
			c.Retry.MaxBackoff = 4 * anykey.Duration(sim.Millisecond)
		}
		if c.SLO == 0 {
			c.SLO = 2 * anykey.Duration(sim.Millisecond)
		}
		if c.Horizon == 0 {
			c.Horizon = 100 * anykey.Duration(sim.Millisecond)
		}
	}
}

// basePopulation sizes the key population against a raw capacity.
func (c *BaseConfig) basePopulation(capacityBytes int64) uint64 {
	n := uint64(float64(capacityBytes) * c.FillFrac / float64(c.Workload.PairSize()))
	if n < 64 {
		n = 64
	}
	return n
}

// RunConfig describes one measurement run: a device, the shared methodology
// knobs (BaseConfig), and the single-device-only mix and queueing knobs.
type RunConfig struct {
	Device anykey.Options
	BaseConfig

	// ScanRatio and ScanLen extend the request mix with scans (Fig. 18
	// only); the batch-oriented cluster methodology has no scan knob.
	ScanRatio float64
	ScanLen   int

	// QueueDepth is the number of closed-loop workers (default 64). Open-
	// loop runs use it as the device's submission-slot count.
	QueueDepth int
}

func (c *RunConfig) defaults() {
	c.baseDefaults(c.pageSize(), c.ScanRatio)
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
}

// capacityBytes returns the configured raw capacity.
func (c *RunConfig) capacityBytes() int64 {
	capMB := c.Device.CapacityMB
	if capMB == 0 {
		capMB = 128
	}
	return int64(capMB) << 20
}

func (c *RunConfig) pageSize() int {
	if c.Device.PageSize != 0 {
		return c.Device.PageSize
	}
	return 8192
}

// safeFillFrac sizes the key population so the *least* space-efficient
// system under test (PinK, whose meta segments live in flash at low v/k)
// can still hold it with compaction/GC headroom. Two taxes are modelled:
// page-atomic packing (a 4 KiB value occupies a whole 8 KiB page slot) and
// PinK's flash-resident per-pair metadata. The same population is then used
// for every system, keeping comparisons fair.
func safeFillFrac(spec workload.Spec, pageSize int) float64 {
	entity := spec.PairSize() + 10
	perPage := (pageSize - 6) / (entity + 2)
	if perPage < 1 {
		perPage = 1
	}
	padRatio := float64(pageSize) / float64(perPage) / float64(spec.PairSize())
	metaRatio := float64(spec.KeySize+12) / float64(spec.PairSize())
	// Data pages carry steady-state dead slots (a PinK page stays occupied
	// while any slot lives), modelled as a 2.2× bloat on the padded data
	// footprint; 12% of the device is kept as GC/compaction headroom.
	frac := 0.88 / (2.2*padRatio + metaRatio)
	if frac > 0.42 {
		frac = 0.42
	}
	return frac
}

// Population returns the number of distinct keys the run loads.
func (c *RunConfig) Population() uint64 {
	c.defaults()
	return c.basePopulation(c.capacityBytes())
}

// Result carries everything an experiment needs to print its table or
// figure series.
type Result struct {
	System   string
	Workload string

	Population uint64
	Ops        int64

	ReadLat  stats.Histogram
	WriteLat stats.Histogram
	ScanLat  stats.Histogram

	// QueueWaitLat and ServiceLat split every execution-phase latency into
	// host queueing vs device service, as recorded by the submission
	// engine. Closed-loop runs have zero queue wait by construction.
	QueueWaitLat stats.Histogram
	ServiceLat   stats.Histogram

	// IOPS is executed operations per simulated second.
	IOPS float64
	// SimSeconds is the simulated duration of the execution phase.
	SimSeconds float64

	// Exec is the flash counter delta over the execution phase; Total is
	// the whole run including warm-up (Fig. 13 uses Total writes).
	Exec  nand.Counters
	Total nand.Counters

	Metadata     []device.MetaStructure
	ReadAccesses *stats.IntHist

	TreeCompactions, LogCompactions, ChainedCompactions int64
	GCRuns, GCRelocations                               int64

	// Faults is the injected-fault tally for the whole run (warm-up
	// included), present only when the device ran under a fault plan.
	Faults *stats.FaultCounters

	// Trace is the device's tracer when the run was traced
	// (RunConfig.Device.Trace != nil); it covers the execution phase only —
	// the tracer is reset at the warm-up barrier. Blame is its attribution
	// report at the default (P99) cut.
	Trace *anykey.Tracer
	Blame *anykey.BlameReport

	// Open carries the open-loop client's tally (timeouts, retries,
	// goodput, recovery), present only when the workload had an arrival
	// process.
	Open *OpenStats

	// Store is the flash payload store's memory accounting at the end of
	// the run, captured before the device closes. Under the flyweight store
	// (the default past the MemoryAuto threshold) ResidentBytes stays far
	// below LogicalBytes; raw mode keeps the two equal.
	Store nand.StoreFootprint
	// Cache holds the host cache's counters, present only when the run's
	// device was opened with Options.Cache.
	Cache *anykey.CacheStats

	Verified int64 // reads whose payload was checked
}

// Run executes warm-up + measurement and returns the result.
func Run(cfg RunConfig) (*Result, error) {
	cfg.defaults()
	dev, err := anykey.Open(cfg.Device)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	eng, err := dev.NewEngine(cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(cfg.Workload, workload.Config{
		Population: cfg.Population(),
		Theta:      cfg.Theta,
		WriteRatio: cfg.WriteRatio,
		ScanRatio:  cfg.ScanRatio,
		ScanLen:    cfg.ScanLen,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		System:     cfg.Device.Design.String(),
		Workload:   cfg.Workload.Name,
		Population: gen.Population(),
	}

	// Warm-up (§5.5): load every key once, shuffled. Every id appears
	// exactly once, so the generator's hot-id caches cannot help; two
	// reusable buffers (devices copy on Put) produce identical bytes
	// without a pair of allocations per id.
	var kbuf, vbuf []byte
	for i := uint64(0); i < gen.Population(); i++ {
		id := gen.LoadID(i)
		kbuf = workload.AppendKey(kbuf, cfg.Workload, id)
		vbuf = workload.AppendValue(vbuf, cfg.Workload, id, 0)
		if _, err := eng.Put(kbuf, vbuf); err != nil {
			return nil, fmt.Errorf("harness: warm-up put %d/%d: %w", i, gen.Population(), err)
		}
	}

	st := dev.Stats()
	warm := st.Flash()
	// Reset the per-read access histogram so Fig. 11b reflects execution
	// reads only, and the engine's breakdown so it excludes warm-up.
	*st.ReadAccesses = *stats.NewIntHist(8)
	eng.ResetBreakdown()

	// Phase barrier between warm-up and execution.
	execStart := eng.Barrier()
	// Discard warm-up trace data so traces and blame cover the measured
	// phase only (Reset is a no-op on an untraced device).
	dev.Trace().Reset()

	if cfg.Workload.Arrival.Open() {
		open, err := runOpenLoop(&cfg.BaseConfig, gen,
			&deviceTarget{eng: eng, tr: dev.Trace(), epoch: execStart},
			openHists{read: &res.ReadLat, write: &res.WriteLat, scan: &res.ScanLat},
			&res.Verified)
		if err != nil {
			return nil, err
		}
		res.Open = open
		// Ops counts device-executed operations: every attempt, retries
		// included, does real device work.
		res.Ops = open.Attempts
	} else {
		targetBytes := int64(cfg.ExecFactor * float64(cfg.capacityBytes()))
		var issuedBytes int64
		for issuedBytes < targetBytes && (cfg.MaxOps == 0 || res.Ops < cfg.MaxOps) {
			op := gen.Next()
			switch op.Kind {
			case workload.OpPut:
				c, err := eng.Put(op.Key, op.Value)
				if err != nil {
					return nil, fmt.Errorf("harness: put: %w", err)
				}
				res.WriteLat.Record(c.Latency())
			case workload.OpGet:
				c, err := eng.Get(op.Key)
				if err != nil {
					return nil, fmt.Errorf("harness: get %x: %w", op.Key[:8], err)
				}
				res.ReadLat.Record(c.Latency())
				if !cfg.NoVerify {
					if !bytes.Equal(c.Value, gen.ExpectedValue(op.ID)) {
						return nil, fmt.Errorf("harness: read of id %d returned wrong payload", op.ID)
					}
					res.Verified++
				}
			case workload.OpScan:
				c, err := eng.Scan(op.Key, op.ScanLen)
				if err != nil {
					return nil, fmt.Errorf("harness: scan: %w", err)
				}
				res.ScanLat.Record(c.Latency())
				if !cfg.NoVerify && len(c.Pairs) == 0 {
					return nil, errors.New("harness: scan returned nothing on a loaded device")
				}
			}
			issuedBytes += op.Bytes()
			res.Ops++
		}
	}

	end := eng.Now()
	res.SimSeconds = end.Sub(execStart).Seconds()
	if res.SimSeconds > 0 {
		res.IOPS = float64(res.Ops) / res.SimSeconds
	}
	if res.Open != nil && res.SimSeconds > 0 {
		res.Open.Goodput = float64(res.Open.GoodOps) / res.SimSeconds
	}
	res.QueueWaitLat, res.ServiceLat = eng.Breakdown()
	total := st.Flash()
	res.Exec = total.Sub(warm)
	res.Total = total
	res.Metadata = dev.Metadata()
	res.ReadAccesses = st.ReadAccesses
	res.TreeCompactions = st.TreeCompactions
	res.LogCompactions = st.LogCompactions
	res.ChainedCompactions = st.ChainedCompactions
	res.GCRuns = st.GCRuns
	res.GCRelocations = st.GCRelocations
	res.Store = dev.Footprint()
	if cs, ok := dev.CacheStats(); ok {
		res.Cache = &cs
	}
	if st.Faults != nil {
		c := st.Faults()
		res.Faults = &c
	}
	if tr := dev.Trace(); tr != nil {
		res.Trace = tr
		res.Blame = tr.Blame(anykey.BlameOptions{})
	}
	return res, nil
}

// FillResult is the outcome of a fill-to-full run (Fig. 14).
type FillResult struct {
	System      string
	Workload    string
	Pairs       int64
	UserBytes   int64
	Capacity    int64
	Utilization float64
}

// FillToFull inserts unique pairs until the device reports ErrDeviceFull and
// returns the achieved storage utilization: unique user bytes over raw
// capacity. The seed parameter is accepted for signature symmetry; the fill
// order is deterministic by construction.
func FillToFull(opts anykey.Options, spec workload.Spec, seed int64) (*FillResult, error) {
	_ = seed
	dev, err := anykey.Open(opts)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	eng, err := dev.NewEngine(1)
	if err != nil {
		return nil, err
	}
	capacity := int64(opts.CapacityMB) << 20
	if capacity == 0 {
		capacity = 128 << 20
	}
	res := &FillResult{System: opts.Design.String(), Workload: spec.Name, Capacity: capacity}
	// The engine executes Put synchronously and the device copies both
	// slices, so one key and one value buffer serve the whole fill.
	var kbuf, vbuf []byte
	for i := uint64(0); ; i++ {
		kbuf = workload.AppendKey(kbuf, spec, i)
		vbuf = workload.AppendValue(vbuf, spec, i, 0)
		if _, err := eng.Put(kbuf, vbuf); err != nil {
			if errors.Is(err, kv.ErrDeviceFull) {
				break
			}
			return nil, err
		}
		res.Pairs++
		res.UserBytes += int64(spec.PairSize())
		if res.UserBytes > 4*capacity {
			return nil, errors.New("harness: device never filled; accounting bug")
		}
	}
	res.Utilization = float64(res.UserBytes) / float64(capacity)
	return res, nil
}
