package harness

import (
	"testing"

	"anykey"
	"anykey/internal/workload"
)

// smallRun is a fast end-to-end configuration: a 32 MiB device, capped ops.
func smallRun(design anykey.Design, wl string) RunConfig {
	spec, ok := workload.ByName(wl)
	if !ok {
		panic("unknown workload " + wl)
	}
	return RunConfig{
		Device:     anykey.Options{Design: design, CapacityMB: 32},
		BaseConfig: BaseConfig{Workload: spec, FillFrac: 0.35, MaxOps: 20000},
	}
}

func TestRunEndToEnd(t *testing.T) {
	for _, design := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKey, anykey.DesignAnyKeyPlus} {
		t.Run(design.String(), func(t *testing.T) {
			res, err := Run(smallRun(design, "ZippyDB"))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 20000 {
				t.Fatalf("Ops = %d", res.Ops)
			}
			if res.IOPS <= 0 || res.SimSeconds <= 0 {
				t.Fatalf("IOPS=%v sim=%vs", res.IOPS, res.SimSeconds)
			}
			if res.ReadLat.Count() == 0 || res.WriteLat.Count() == 0 {
				t.Fatal("latency histograms empty")
			}
			if res.Verified == 0 {
				t.Fatal("no reads verified")
			}
			if res.Total.TotalWrites() <= res.Exec.TotalWrites() {
				t.Fatal("warm-up writes missing from totals")
			}
			if res.ReadLat.Percentile(95) <= 0 {
				t.Fatal("p95 not measurable")
			}
		})
	}
}

func TestRunWithScans(t *testing.T) {
	cfg := smallRun(anykey.DesignAnyKeyPlus, "UDB")
	cfg.WriteRatio = 0.1
	cfg.ScanRatio = 0.2
	cfg.ScanLen = 50
	cfg.MaxOps = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanLat.Count() == 0 {
		t.Fatal("no scans recorded")
	}
}

func TestFillToFull(t *testing.T) {
	spec, _ := workload.ByName("ZippyDB")
	fr, err := FillToFull(anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 32}, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Utilization <= 0.2 || fr.Utilization > 1.0 {
		t.Fatalf("utilization = %.3f", fr.Utilization)
	}
	if fr.Pairs == 0 {
		t.Fatal("no pairs inserted")
	}
}

// The engine's breakdown must cover exactly the execution phase: one
// sample per measured op, all queue waits zero (closed loop), and service
// equal to end-to-end latency.
func TestRunRecordsBreakdown(t *testing.T) {
	cfg := smallRun(anykey.DesignAnyKeyPlus, "KVSSD")
	cfg.MaxOps = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceLat.Count() != res.Ops || res.QueueWaitLat.Count() != res.Ops {
		t.Fatalf("breakdown covers %d/%d samples for %d ops",
			res.ServiceLat.Count(), res.QueueWaitLat.Count(), res.Ops)
	}
	if res.QueueWaitLat.Max() != 0 {
		t.Fatalf("closed-loop queue wait = %v; want 0", res.QueueWaitLat.Max())
	}
	if res.ServiceLat.Max() != res.ReadLat.Max() && res.ServiceLat.Max() != res.WriteLat.Max() {
		t.Fatalf("service max %v matches neither read max %v nor write max %v",
			res.ServiceLat.Max(), res.ReadLat.Max(), res.WriteLat.Max())
	}
}
