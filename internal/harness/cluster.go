// Cluster measurement runs: the §5 methodology lifted onto a sharded
// multi-device fleet. One key population spans the whole cluster; warm-up
// loads it in shuffled order through batched MultiPut waves, then the
// execution phase issues batch waves (puts first, then reads, preserving
// read-your-writes within a wave) until the issued bytes reach a multiple
// of the fleet's capacity. Per-operation latencies land in the same
// histograms single-device runs use; each wave's critical path (its slowest
// shard's busy span) is recorded separately as the batch latency.
package harness

import (
	"bytes"
	"fmt"

	"anykey"
	"anykey/internal/nand"
	"anykey/internal/stats"
	"anykey/internal/workload"
)

// ClusterRunConfig describes one cluster measurement run: the cluster
// geometry plus the shared methodology knobs (BaseConfig — including the
// open-loop client knobs). Like RunConfig it holds only comparable values,
// so the parallel runner can memoize on it.
type ClusterRunConfig struct {
	Cluster anykey.ClusterOptions
	BaseConfig

	// BatchSize is the number of operations per Multi* wave (default
	// shards × queue depth, enough to keep every shard's queue full when
	// the routing is balanced). Open-loop runs submit per-operation and
	// ignore it.
	BatchSize int

	// Trace, when set, opens every shard with event tracing and leaves the
	// cluster on ClusterResult.Cluster so the caller can export the merged
	// fleet trace or blame report. The trace ring covers the whole run
	// (warm-up events age out of the ring first).
	Trace *anykey.TraceOptions
}

func (c *ClusterRunConfig) defaults() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	c.baseDefaults(c.Cluster.Device.PageSize, 0)
	if c.BatchSize == 0 {
		c.BatchSize = c.Cluster.Shards * c.Cluster.QueueDepth
	}
	return nil
}

// capacityBytes returns the fleet's usable capacity: all shards, divided by
// the replication factor when the cluster replicates (every key occupies
// Factor devices).
func (c *ClusterRunConfig) capacityBytes() int64 {
	b := int64(c.Cluster.Shards) * int64(c.Cluster.Device.CapacityMB) << 20
	if f := c.Cluster.Replication.Factor; f > 1 {
		b /= int64(f)
	}
	return b
}

// Population returns the number of distinct keys the run loads across the
// fleet.
func (c *ClusterRunConfig) Population() (uint64, error) {
	if err := c.defaults(); err != nil {
		return 0, err
	}
	return c.basePopulation(c.capacityBytes()), nil
}

// ClusterResult carries a cluster run's measurements: fleet-wide rollups
// plus the shard balance the router produced.
type ClusterResult struct {
	System   string // e.g. "AnyKey+ x4"
	Workload string
	Shards   int
	Router   string

	Population uint64
	Ops        int64 // executed operations (execution phase)

	ReadLat  stats.Histogram
	WriteLat stats.Histogram
	// BatchLat records, for each execution Multi* wave, how long the
	// slowest involved shard spent on its sub-batch (first arrival to last
	// completion within that shard's clock domain) — the wave's critical
	// path. The merged BatchResult span can collapse to zero whenever an
	// uninvolved-in-this-wave shard's clock runs ahead; this cannot.
	BatchLat stats.Histogram

	// QueueWaitLat and ServiceLat merge every shard engine's breakdown over
	// the execution phase.
	QueueWaitLat stats.Histogram
	ServiceLat   stats.Histogram

	// SimSeconds is the fleet's execution wall time in virtual seconds: the
	// slowest shard's elapsed clock over the execution phase (shard clocks
	// are independent, so per-shard elapsed is the meaningful quantity).
	// IOPS is executed operations per that second.
	IOPS       float64
	SimSeconds float64

	// Exec is the fleet flash counter delta over the execution phase;
	// Total the whole run including warm-up.
	Exec  nand.Counters
	Total nand.Counters

	// ShardOps counts execution-phase operations routed to each shard;
	// HottestShare is the largest shard's fraction of them — the router's
	// balance under the workload's skew.
	ShardOps     []int64
	HottestShare float64

	// Open carries the open-loop client's tally, present only when the
	// workload had an arrival process.
	Open *OpenStats

	// ReplStats carries the fleet replication counters when the cluster was
	// opened with a replication factor (zero Factor otherwise).
	ReplStats anykey.ReplicationStats

	Verified int64

	// Cluster is set only when the run was traced (ClusterRunConfig.Trace):
	// the closed cluster, kept for WriteChromeTrace and Blame, whose buffers
	// outlive Close.
	Cluster *anykey.Cluster
}

// waveSpan measures one wave's critical path: the max over involved shards
// of (last completion − first arrival), each within the shard's own clock
// domain.
func waveSpan(br *anykey.BatchResult, nShards int) anykey.Duration {
	first := make([]anykey.Time, nShards)
	last := make([]anykey.Time, nShards)
	seen := make([]bool, nShards)
	for i, comp := range br.Completions {
		s := br.Shards[i]
		if !seen[s] || comp.Arrival < first[s] {
			first[s] = comp.Arrival
		}
		if !seen[s] || comp.Done > last[s] {
			last[s] = comp.Done
		}
		seen[s] = true
	}
	var span anykey.Duration
	for s, ok := range seen {
		if !ok {
			continue
		}
		if d := last[s].Sub(first[s]); d > span {
			span = d
		}
	}
	return span
}

// RunCluster executes warm-up + measurement on a sharded cluster.
func RunCluster(cfg ClusterRunConfig) (*ClusterResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.Trace != nil && cfg.Cluster.Device.Trace == nil {
		cfg.Cluster.Device.Trace = cfg.Trace
	}
	cl, err := anykey.OpenCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	population, err := cfg.Population()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(cfg.Workload, workload.Config{
		Population: population,
		Theta:      cfg.Theta,
		WriteRatio: cfg.WriteRatio,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &ClusterResult{
		System:     fmt.Sprintf("%s x%d", cfg.Cluster.Device.Design, cfg.Cluster.Shards),
		Workload:   cfg.Workload.Name,
		Shards:     cfg.Cluster.Shards,
		Router:     cfg.Cluster.Router.String(),
		Population: gen.Population(),
		ShardOps:   make([]int64, cfg.Cluster.Shards),
	}

	// Warm-up: load every key once in shuffled order, in MultiPut waves.
	// Each wave slot owns a reusable key/value buffer (shard devices copy
	// on Put, and a wave completes before the next reuses the slots).
	kbufs := make([][]byte, cfg.BatchSize)
	vbufs := make([][]byte, cfg.BatchSize)
	for done := uint64(0); done < gen.Population(); {
		n := uint64(cfg.BatchSize)
		if done+n > gen.Population() {
			n = gen.Population() - done
		}
		for j := uint64(0); j < n; j++ {
			id := gen.LoadID(done + j)
			kbufs[j] = workload.AppendKey(kbufs[j][:0], cfg.Workload, id)
			vbufs[j] = workload.AppendValue(vbufs[j][:0], cfg.Workload, id, 0)
		}
		br, err := cl.MultiPut(kbufs[:n], vbufs[:n])
		if err != nil {
			return nil, fmt.Errorf("harness: cluster warm-up: %w", err)
		}
		if err := br.FirstErr(); err != nil {
			return nil, fmt.Errorf("harness: cluster warm-up put: %w", err)
		}
		done += n
	}

	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	warmStats := cl.Stats()
	cl.ResetBreakdowns()
	// Shard clocks are independent and never aligned (cross-shard time is
	// merged, not propagated), so warm-up leaves each shard at its own
	// instant. Execution elapsed time is therefore accounted per shard —
	// each against its own exec-start clock — and the fleet's wall time is
	// the slowest shard's elapsed, not a difference of merged maxima
	// (which would credit or charge one shard's warm-up skew to another).
	startClocks := make([]anykey.Time, len(warmStats.PerShard))
	for i, ss := range warmStats.PerShard {
		startClocks[i] = ss.Now
	}

	if cfg.Workload.Arrival.Open() {
		// Open-loop execution: per-operation *At submission routed per
		// shard, each arrival offset into its shard's own clock domain.
		tgt := &clusterTarget{cl: cl, epochs: startClocks, tracers: cl.Tracers(), shardOps: res.ShardOps}
		open, err := runOpenLoop(&cfg.BaseConfig, gen, tgt,
			openHists{read: &res.ReadLat, write: &res.WriteLat}, &res.Verified)
		if err != nil {
			return nil, err
		}
		res.Open = open
		res.Ops = open.Attempts
		return finishCluster(cfg, cl, res, warmStats, startClocks)
	}

	targetBytes := int64(cfg.ExecFactor * float64(cfg.capacityBytes()))
	var issuedBytes int64

	// Execution: generate a wave of ops, split into the wave's puts and
	// gets, and submit puts first so a read of a key written in the same
	// wave observes the write (matching the generator's version counters).
	putKeys := make([][]byte, 0, cfg.BatchSize)
	putVals := make([][]byte, 0, cfg.BatchSize)
	getKeys := make([][]byte, 0, cfg.BatchSize)
	getIDs := make([]uint64, 0, cfg.BatchSize)
	for issuedBytes < targetBytes && (cfg.MaxOps == 0 || res.Ops < cfg.MaxOps) {
		putKeys, putVals = putKeys[:0], putVals[:0]
		getKeys, getIDs = getKeys[:0], getIDs[:0]
		for i := 0; i < cfg.BatchSize; i++ {
			if issuedBytes >= targetBytes || (cfg.MaxOps > 0 && res.Ops+int64(len(putKeys)+len(getKeys)) >= cfg.MaxOps) {
				break
			}
			op := gen.Next()
			switch op.Kind {
			case workload.OpPut:
				putKeys = append(putKeys, op.Key)
				putVals = append(putVals, op.Value)
			default:
				// The batch API carries no scans; a scan-free mix is the
				// cluster methodology (ScanRatio is not a knob here).
				getKeys = append(getKeys, op.Key)
				getIDs = append(getIDs, op.ID)
			}
			issuedBytes += op.Bytes()
		}
		if len(putKeys) > 0 {
			br, err := cl.MultiPut(putKeys, putVals)
			if err != nil {
				return nil, fmt.Errorf("harness: cluster put wave: %w", err)
			}
			if err := br.FirstErr(); err != nil {
				return nil, fmt.Errorf("harness: cluster put: %w", err)
			}
			for i, comp := range br.Completions {
				res.WriteLat.Record(comp.Latency())
				res.ShardOps[br.Shards[i]]++
			}
			res.BatchLat.Record(waveSpan(br, cfg.Cluster.Shards))
			res.Ops += int64(len(putKeys))
		}
		if len(getKeys) > 0 {
			br, err := cl.MultiGet(getKeys)
			if err != nil {
				return nil, fmt.Errorf("harness: cluster get wave: %w", err)
			}
			for i, comp := range br.Completions {
				if br.Errs[i] != nil {
					return nil, fmt.Errorf("harness: cluster get %x: %w", getKeys[i][:8], br.Errs[i])
				}
				res.ReadLat.Record(comp.Latency())
				res.ShardOps[br.Shards[i]]++
				if !cfg.NoVerify {
					if !bytes.Equal(comp.Value, gen.ExpectedValue(getIDs[i])) {
						return nil, fmt.Errorf("harness: cluster read of id %d returned wrong payload", getIDs[i])
					}
					res.Verified++
				}
			}
			res.BatchLat.Record(waveSpan(br, cfg.Cluster.Shards))
			res.Ops += int64(len(getKeys))
		}
	}

	return finishCluster(cfg, cl, res, warmStats, startClocks)
}

// finishCluster collects the execution phase's fleet-wide rollups — shared
// by the closed-loop (batch-wave) and open-loop paths.
func finishCluster(cfg ClusterRunConfig, cl *anykey.Cluster, res *ClusterResult, warmStats anykey.ClusterStats, startClocks []anykey.Time) (*ClusterResult, error) {
	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	finalStats := cl.Stats()
	var slowest anykey.Duration
	for i, ss := range finalStats.PerShard {
		if d := ss.Now.Sub(startClocks[i]); d > slowest {
			slowest = d
		}
	}
	res.SimSeconds = slowest.Seconds()
	if res.SimSeconds > 0 {
		res.IOPS = float64(res.Ops) / res.SimSeconds
	}
	if res.Open != nil && res.SimSeconds > 0 {
		res.Open.Goodput = float64(res.Open.GoodOps) / res.SimSeconds
	}
	res.QueueWaitLat = finalStats.QueueWait
	res.ServiceLat = finalStats.Service
	res.Total = finalStats.Flash
	res.Exec = finalStats.Flash.Sub(warmStats.Flash)
	var hottest int64
	for _, n := range res.ShardOps {
		if n > hottest {
			hottest = n
		}
	}
	if res.Ops > 0 {
		res.HottestShare = float64(hottest) / float64(res.Ops)
	}
	if fs, err := cl.FleetStats(); err == nil {
		res.ReplStats = fs.Repl
	}
	if cfg.Cluster.Device.Trace != nil {
		res.Cluster = cl
	}
	return res, nil
}
