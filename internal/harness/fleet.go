// Fleet measurement runs: the open-loop methodology against a replicated
// elastic cluster, with mid-run scenario events — kill a member device,
// rebuild it from its surviving replicas, or grow the ring under live load —
// and an acknowledged-write durability oracle. The oracle is the
// experiment's point: it records which writes the fleet acknowledged and,
// after the storm, checks every one of them against what the fleet still
// serves. At R≥2/W=2 killing one device must lose none of them; at R=1 the
// same kill provably loses data, which is the contrast reports/fleet.txt
// prints.
package harness

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"anykey"
	"anykey/internal/stats"
	"anykey/internal/workload"
)

// FleetRunConfig describes one replicated-fleet run: the cluster geometry
// (Replication.Factor ≥ 1), the shared open-loop methodology knobs, and the
// scenario schedule expressed as fractions of the arrival horizon. Like the
// other run configs it holds only comparable values, so the parallel runner
// can memoize on it.
type FleetRunConfig struct {
	Cluster anykey.ClusterOptions
	BaseConfig

	// KillAtFrac, when > 0, kills member KillShard at that fraction of the
	// horizon with KillCause.
	KillAtFrac float64
	KillShard  int
	KillCause  anykey.FleetKillCause

	// RebuildAtFrac, when > 0, starts rebuilding the killed member at that
	// fraction of the horizon; the refill streams between client ops until
	// drained.
	RebuildAtFrac float64

	// AddShardAtFrac, when > 0, grows the ring by one member at that
	// fraction of the horizon, streaming the migration under live load.
	AddShardAtFrac float64

	// StepKeys bounds how many migration/rebuild keys stream between
	// consecutive client submissions (default 32): background refill
	// competes with traffic instead of monopolising the devices.
	StepKeys int

	// BatchSize is the warm-up MultiPut wave size (default shards × QD).
	BatchSize int
}

func (c *FleetRunConfig) defaults() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Cluster.Replication.Factor < 1 {
		return fmt.Errorf("harness: fleet run requires Replication.Factor >= 1")
	}
	c.baseDefaults(c.Cluster.Device.PageSize, 0)
	if !c.Workload.Arrival.Open() {
		return fmt.Errorf("harness: fleet run requires an open-loop arrival process")
	}
	if c.BatchSize == 0 {
		c.BatchSize = c.Cluster.Shards * c.Cluster.QueueDepth
	}
	if c.StepKeys == 0 {
		c.StepKeys = 32
	}
	return nil
}

func (c *FleetRunConfig) capacityBytes() int64 {
	return int64(c.Cluster.Shards) * int64(c.Cluster.Device.CapacityMB) << 20
}

// Population returns the number of distinct keys the run loads. The usable
// capacity divides by Factor: every key occupies Factor member devices.
func (c *FleetRunConfig) Population() (uint64, error) {
	if err := c.defaults(); err != nil {
		return 0, err
	}
	return c.basePopulation(c.capacityBytes() / int64(c.Cluster.Replication.Factor)), nil
}

// FleetResult carries one fleet run's measurements.
type FleetResult struct {
	System   string
	Workload string
	Members  int
	R, W     int

	Population uint64
	Ops        int64 // open-loop attempts

	ReadLat  stats.Histogram
	WriteLat stats.Histogram

	// Read end-to-end latency split into scenario windows: first arrival
	// before the kill, between kill and rebuild completion (the outage), and
	// after — the kill's tail-latency blast radius. With no kill scheduled
	// everything lands in Pre.
	ReadPre    stats.Histogram
	ReadOutage stats.Histogram
	ReadPost   stats.Histogram

	Open *OpenStats
	Repl anykey.ReplicationStats

	// Durability oracle. AckedIDs counts distinct keys with at least one
	// acknowledged write; TaintedIDs those whose version ordering the retry
	// protocol (or an executed-but-unacknowledged attempt) broke. After the
	// run every acked key is read back: a clean key must serve exactly its
	// latest acknowledged payload, a tainted one must at least be readable.
	// LostAcked counts the keys that failed their check — acknowledged data
	// the fleet no longer serves.
	AckedIDs   int64
	TaintedIDs int64
	LostAcked  int64
	CleanOK    int64

	// Mid-run attempts the fleet rejected outright: reads with every owner
	// dead (or the key unreadable on the survivors), writes that missed
	// their quorum. Both re-enter the retry path rather than aborting the
	// run.
	ReadFailures  int64
	WriteFailures int64

	// Scenario accounting, in virtual time.
	KillRel     anykey.Duration // when the kill landed (epoch-relative)
	RebuildDur  anykey.Duration // merged-clock span of the rebuild
	RebuildKeys int64
	MigrateDur  anykey.Duration // merged-clock span of the AddShard migration

	SimSeconds float64
	IOPS       float64
	Verified   int64
}

// fleetEpochs maps member IDs to their exec-start clocks, growing as
// AddShard creates members mid-run.
type fleetEpochs struct {
	cl     *anykey.Cluster
	epochs []anykey.Time
}

func (fe *fleetEpochs) arrival(rel anykey.Time) anykey.ArrivalFunc {
	return func(member int) anykey.Time {
		return fe.epochs[member].Add(anykey.Duration(rel))
	}
}

// adopt registers a member created at epoch-relative instant rel: its fresh
// device's clock starts "now", so its epoch is back-dated to keep epoch+rel
// consistent with the founding members' domains.
func (fe *fleetEpochs) adopt(member int, rel anykey.Time) {
	for len(fe.epochs) <= member {
		fe.epochs = append(fe.epochs, 0)
	}
	e := fe.cl.ShardNow(member).Add(-anykey.Duration(rel))
	if e < 0 {
		e = 0
	}
	fe.epochs[member] = e
}

// RunFleet executes warm-up + the open-loop scenario on a replicated fleet.
func RunFleet(cfg FleetRunConfig) (*FleetResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cl, err := anykey.OpenCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	population, err := cfg.Population()
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(cfg.Workload, workload.Config{
		Population: population,
		Theta:      cfg.Theta,
		WriteRatio: cfg.WriteRatio,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	repl := cl.Replication()
	res := &FleetResult{
		System:     fmt.Sprintf("%s x%d R=%d W=%d", cfg.Cluster.Device.Design, cfg.Cluster.Shards, repl.Factor, repl.WriteQuorum),
		Workload:   cfg.Workload.Name,
		Members:    cfg.Cluster.Shards,
		R:          repl.Factor,
		W:          repl.WriteQuorum,
		Population: gen.Population(),
	}

	// Warm-up: load every key once, replicated, in MultiPut waves (the same
	// wave-slot buffer reuse as RunCluster).
	kbufs := make([][]byte, cfg.BatchSize)
	vbufs := make([][]byte, cfg.BatchSize)
	for done := uint64(0); done < gen.Population(); {
		n := uint64(cfg.BatchSize)
		if done+n > gen.Population() {
			n = gen.Population() - done
		}
		for j := uint64(0); j < n; j++ {
			id := gen.LoadID(done + j)
			kbufs[j] = workload.AppendKey(kbufs[j][:0], cfg.Workload, id)
			vbufs[j] = workload.AppendValue(vbufs[j][:0], cfg.Workload, id, 0)
		}
		br, err := cl.MultiPut(kbufs[:n], vbufs[:n])
		if err != nil {
			return nil, fmt.Errorf("harness: fleet warm-up: %w", err)
		}
		if err := br.FirstErr(); err != nil {
			return nil, fmt.Errorf("harness: fleet warm-up put: %w", err)
		}
		done += n
	}
	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	warm := cl.Stats()
	cl.ResetBreakdowns()
	fe := &fleetEpochs{cl: cl}
	for _, ss := range warm.PerShard {
		fe.epochs = append(fe.epochs, ss.Now)
	}

	if err := runFleetOpenLoop(&cfg, gen, cl, fe, res); err != nil {
		return nil, err
	}
	if _, err := cl.Barrier(); err != nil {
		return nil, err
	}
	final := cl.Stats()
	// Execution wall time: the slowest founding member's elapsed clock, as
	// in RunCluster (a mid-run member's clock has no warm-up anchor).
	var slowest anykey.Duration
	for i, ss := range warm.PerShard {
		if d := final.PerShard[i].Now.Sub(ss.Now); d > slowest {
			slowest = d
		}
	}
	res.SimSeconds = slowest.Seconds()
	if res.SimSeconds > 0 {
		res.IOPS = float64(res.Ops) / res.SimSeconds
		if res.Open != nil {
			res.Open.Goodput = float64(res.Open.GoodOps) / res.SimSeconds
		}
	}
	fs, err := cl.FleetStats()
	if err != nil {
		return nil, err
	}
	res.Repl = fs.Repl
	return res, nil
}

// fleetOracle tracks the durability promise: which keys have at least one
// acknowledged write, and which of those the retry protocol tainted (their
// final device version is legitimately not the generator's latest).
type fleetOracle struct {
	acked   map[uint64]struct{}
	tainted map[uint64]struct{}
}

func (o *fleetOracle) taint(id uint64) { o.tainted[id] = struct{}{} }

func (o *fleetOracle) isTainted(id uint64) bool {
	_, ok := o.tainted[id]
	return ok
}

// runFleetOpenLoop is the open-loop event loop with scenario hooks: the
// same arrival/timeout/retry/SLO protocol as runOpenLoop, plus (a) fleet
// verdicts — a quorum failure or an all-replicas-down read is a failed
// attempt that re-enters the retry path, not a harness error; (b) the
// kill / rebuild / add-shard schedule, fired on the arrival clock; (c)
// migration and rebuild streams stepped between client submissions; and
// (d) the acknowledged-write oracle with its final read-back pass.
func runFleetOpenLoop(cfg *FleetRunConfig, gen *workload.Generator, cl *anykey.Cluster, fe *fleetEpochs, res *FleetResult) error {
	arr, err := workload.NewArrivals(cfg.Workload.Arrival, cfg.Seed+arrivalSeedOffset)
	if err != nil {
		return err
	}
	st := &OpenStats{Arrival: cfg.Workload.Arrival, Timeout: cfg.Timeout, SLO: cfg.SLO}
	res.Open = st
	horizon := anykey.Time(cfg.Horizon)
	oracle := &fleetOracle{acked: map[uint64]struct{}{}, tainted: map[uint64]struct{}{}}

	// Scenario schedule on the arrival clock.
	var killAt, rebuildAt, addAt anykey.Time
	if cfg.KillAtFrac > 0 {
		killAt = anykey.Time(float64(horizon) * cfg.KillAtFrac)
	}
	if cfg.RebuildAtFrac > 0 {
		rebuildAt = anykey.Time(float64(horizon) * cfg.RebuildAtFrac)
	}
	if cfg.AddShardAtFrac > 0 {
		addAt = anykey.Time(float64(horizon) * cfg.AddShardAtFrac)
	}
	var (
		killed       bool
		rebuildDone  anykey.Time = -1
		rb           *anykey.Rebuild
		rbStartClock anykey.Time
		mig          *anykey.Migration
		migStart     anykey.Time
	)

	// fire runs the scenario events scheduled at or before now, then steps
	// any in-flight background stream by StepKeys.
	fire := func(now anykey.Time) error {
		if killAt > 0 && !killed && now >= killAt {
			if err := cl.KillShard(cfg.KillShard, cfg.KillCause); err != nil {
				return fmt.Errorf("harness: fleet kill: %w", err)
			}
			killed = true
			res.KillRel = anykey.Duration(killAt)
		}
		if addAt > 0 && now >= addAt {
			m, err := cl.AddShard()
			if err != nil {
				return fmt.Errorf("harness: fleet addshard: %w", err)
			}
			mig = m
			migStart = cl.Now()
			fe.adopt(cl.Shards()-1, now)
			addAt = 0
		}
		if rebuildAt > 0 && killed && rb == nil && rebuildDone < 0 && now >= rebuildAt {
			r, err := cl.RebuildShard(cfg.KillShard)
			if err != nil {
				return fmt.Errorf("harness: fleet rebuild: %w", err)
			}
			rb = r
			rbStartClock = cl.Now()
		}
		if rb != nil {
			done, err := rb.Step(cfg.StepKeys)
			if err != nil {
				return fmt.Errorf("harness: fleet rebuild step: %w", err)
			}
			if done {
				res.RebuildDur = cl.Now().Sub(rbStartClock)
				_, _, res.RebuildKeys = rb.Progress()
				rebuildDone = now
				rb = nil
			}
		}
		if mig != nil {
			done, err := mig.Step(cfg.StepKeys)
			if err != nil {
				return fmt.Errorf("harness: fleet migration step: %w", err)
			}
			if done {
				res.MigrateDur = cl.Now().Sub(migStart)
				mig = nil
			}
		}
		return nil
	}

	// ackRel converts a write's acknowledgment into epoch-relative time:
	// the W-th earliest successful fully-alive replica completion, each in
	// its own member's clock domain (the fleet's AckDone merges absolute
	// clocks numerically, which cross-domain latency math can't use).
	relBuf := make([]anykey.Time, 0, 8)
	ackRel := func(fres anykey.FleetOpResult) (anykey.Time, bool) {
		relBuf = relBuf[:0]
		for _, ra := range fres.Replicas {
			if ra.Err != nil {
				continue
			}
			if state, _, err := cl.ShardState(ra.Member); err != nil || state != "alive" {
				continue
			}
			relBuf = append(relBuf, anykey.Time(ra.Comp.Done.Sub(fe.epochs[ra.Member])))
		}
		if len(relBuf) == 0 {
			return 0, false
		}
		sort.Slice(relBuf, func(i, j int) bool { return relBuf[i] < relBuf[j] })
		w := res.W
		if w > len(relBuf) {
			w = len(relBuf)
		}
		return relBuf[w-1], true
	}

	var (
		pending      retryHeap
		nextFresh    = arr.Next()
		freshDone    = nextFresh > horizon
		lastFreshRel anykey.Time
		lastDoneRel  anykey.Time
	)
	for {
		if freshDone || (cfg.MaxOps > 0 && st.Offered >= cfg.MaxOps) {
			freshDone = true
			if len(pending) == 0 {
				break
			}
		}
		var cur pendingOp
		if len(pending) > 0 && (freshDone || pending.peek().at <= nextFresh) {
			cur = heap.Pop(&pending).(pendingOp)
		} else {
			cur = pendingOp{at: nextFresh, seq: st.Offered, firstRel: nextFresh, op: gen.Next()}
			st.Offered++
			lastFreshRel = nextFresh
			if nextFresh = arr.Next(); nextFresh > horizon {
				freshDone = true
			}
		}
		if err := fire(cur.at); err != nil {
			return err
		}

		// retryOp re-queues cur, or drops it once the budget is spent.
		retryOp := func() {
			if cur.attempt >= cfg.Retry.MaxRetries {
				st.Dropped++
				return
			}
			retry := cur
			retry.attempt++
			retry.at = cur.at.Add(cfg.Timeout + cfg.Retry.delay(retry.attempt))
			st.Retries++
			heap.Push(&pending, retry)
		}

		arrival := fe.arrival(cur.at)
		switch cur.op.Kind {
		case workload.OpPut:
			fres, err := cl.FleetPutAt(arrival, cur.op.Key, cur.op.Value)
			if err != nil {
				return fmt.Errorf("harness: fleet open-loop put: %w", err)
			}
			st.Attempts++
			if fres.Err != nil {
				// Quorum not met or every replica down: the attempt failed,
				// but any replica that executed keeps the data — either way
				// the key's version-ordering promise is gone.
				res.WriteFailures++
				oracle.taint(cur.op.ID)
				retryOp()
				continue
			}
			doneRel, ok := ackRel(fres)
			if !ok {
				return fmt.Errorf("harness: acked write with no alive replica completion")
			}
			if doneRel > lastDoneRel {
				lastDoneRel = doneRel
			}
			if lat := doneRel.Sub(cur.at); lat > cfg.Timeout {
				// Client deadline missed; the devices still did the work.
				st.Timeouts++
				oracle.taint(cur.op.ID)
				retryOp()
				continue
			}
			// Acknowledged within the deadline: the durability promise the
			// oracle holds the fleet to. A retried attempt acked out of
			// order with later fresh writes, so its taint (set when it
			// first failed) stays.
			oracle.acked[cur.op.ID] = struct{}{}
			st.Completed++
			e2e := doneRel.Sub(cur.firstRel)
			if e2e <= cfg.SLO {
				st.GoodOps++
			}
			res.WriteLat.Record(e2e)

		default: // OpGet
			fres, err := cl.FleetGetAt(arrival, cur.op.Key)
			if err != nil {
				return fmt.Errorf("harness: fleet open-loop get: %w", err)
			}
			st.Attempts++
			if fres.Err != nil {
				if !errors.Is(fres.Err, anykey.ErrShardDown) && !errors.Is(fres.Err, anykey.ErrNotFound) {
					return fmt.Errorf("harness: fleet open-loop get: %w", fres.Err)
				}
				// Every owner dead, or the key unreadable on the survivors
				// (an R=1 outage does both). Failed attempt; retry.
				res.ReadFailures++
				retryOp()
				continue
			}
			doneRel := anykey.Time(fres.AckDone.Sub(fe.epochs[fres.Served]))
			if doneRel > lastDoneRel {
				lastDoneRel = doneRel
			}
			if lat := doneRel.Sub(cur.at); lat > cfg.Timeout {
				st.Timeouts++
				retryOp()
				continue
			}
			st.Completed++
			e2e := doneRel.Sub(cur.firstRel)
			if e2e <= cfg.SLO {
				st.GoodOps++
			}
			res.ReadLat.Record(e2e)
			// Window the read by its first arrival: before the kill, during
			// the outage, or after the rebuild drained.
			switch {
			case killAt == 0 || cur.firstRel < killAt:
				res.ReadPre.Record(e2e)
			case rebuildDone >= 0 && cur.firstRel >= rebuildDone:
				res.ReadPost.Record(e2e)
			default:
				res.ReadOutage.Record(e2e)
			}
			// The stale-key check: a fresh read of an untainted key must
			// serve the generator's latest payload — this is what verifies
			// double-read correctness during migration and replica fallback
			// during the outage.
			if !cfg.NoVerify && cur.attempt == 0 && !oracle.isTainted(cur.op.ID) {
				if !bytesEqual(fres.Value, gen.ExpectedValue(cur.op.ID)) {
					return fmt.Errorf("harness: fleet read of id %d returned wrong payload", cur.op.ID)
				}
				res.Verified++
			}
		}
	}
	if d := lastDoneRel.Sub(lastFreshRel); d > 0 {
		st.RecoverTime = d
	}

	// Drain still-streaming background work so the end state is well-defined
	// before the oracle pass.
	if rb != nil {
		if err := rb.Run(); err != nil {
			return fmt.Errorf("harness: fleet rebuild drain: %w", err)
		}
		res.RebuildDur = cl.Now().Sub(rbStartClock)
		_, _, res.RebuildKeys = rb.Progress()
	}
	if mig != nil {
		if err := mig.Run(); err != nil {
			return fmt.Errorf("harness: fleet migration drain: %w", err)
		}
		res.MigrateDur = cl.Now().Sub(migStart)
	}

	return fleetOraclePass(cfg, gen, cl, oracle, res)
}

// fleetOraclePass reads back every acknowledged key and scores the
// durability promise: clean keys must serve exactly their latest
// acknowledged payload, tainted keys must at least be readable. Failures
// are LostAcked — acknowledged data the fleet no longer serves.
func fleetOraclePass(cfg *FleetRunConfig, gen *workload.Generator, cl *anykey.Cluster, oracle *fleetOracle, res *FleetResult) error {
	ids := make([]uint64, 0, len(oracle.acked))
	for id := range oracle.acked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	res.AckedIDs = int64(len(ids))
	res.TaintedIDs = int64(len(oracle.tainted))
	kbuf := make([]byte, 0, 64)
	for _, id := range ids {
		kbuf = workload.AppendKey(kbuf[:0], cfg.Workload, id)
		v, _, err := cl.Get(kbuf)
		if oracle.isTainted(id) {
			if err != nil {
				res.LostAcked++
			}
			continue
		}
		if err != nil || !bytesEqual(v, gen.ExpectedValue(id)) {
			res.LostAcked++
			continue
		}
		res.CleanOK++
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
