package harness

import (
	"hash/fnv"
	"testing"

	"anykey"
)

// goldenOpts is the exact configuration the golden hashes below were pinned
// under. Quick mode fixes the op count, capacity and seed, so the reports
// are fully deterministic.
var goldenOpts = ExpOptions{Quick: true, MaxOps: 3000, CapacityMB: 32}

// golden report fingerprints, pinned before the tracing subsystem landed.
// They assert the end-to-end promise of the instrumentation: adding trace
// hooks to every layer changed no simulated timestamp, so the reports are
// byte-identical to the pre-tracing tree.
var goldenReports = []struct {
	id   string
	hash uint64
	size int
}{
	{"fig2", 0x4912efed7d306643, 909},
	{"table3", 0x1c54f7014c3578aa, 866},
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// TestGoldenReports regenerates the pinned experiments and compares report
// fingerprints. A failure here means a change altered simulated timing or
// report formatting — either rebaseline deliberately or find the leak.
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden reports take ~10s")
	}
	for _, g := range goldenReports {
		rep, err := RunExperiment(g.id, goldenOpts)
		if err != nil {
			t.Fatalf("%s: %v", g.id, err)
		}
		s := rep.String()
		if len(s) != g.size || fnv64a(s) != g.hash {
			t.Errorf("%s: report fingerprint changed: len=%d hash=%#x, want len=%d hash=%#x\n%s",
				g.id, len(s), fnv64a(s), g.size, g.hash, s)
		}
	}
}

// TestTracingDoesNotPerturbReports runs the same experiment with tracing on
// and compares against the golden fingerprint: the tracer must only observe
// the schedule, never change it.
func TestTracingDoesNotPerturbReports(t *testing.T) {
	if testing.Short() {
		t.Skip("traced golden report takes ~5s")
	}
	opts := goldenOpts
	opts.Trace = &anykey.TraceOptions{}
	rep, err := RunExperiment("fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if len(s) != goldenReports[0].size || fnv64a(s) != goldenReports[0].hash {
		t.Errorf("traced fig2 diverged from untraced golden: len=%d hash=%#x, want len=%d hash=%#x\n%s",
			len(s), fnv64a(s), goldenReports[0].size, goldenReports[0].hash, s)
	}
}
