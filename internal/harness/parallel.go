// Wall-clock-parallel experiment execution. An experiment is a sequence of
// independent cells — one measurement run or fill-to-full per (design,
// workload, knob) point, each owning its own device — so the cells are
// embarrassingly parallel even though the simulation inside each is
// single-threaded virtual time.
//
// Experiment bodies are written as straight-line code that consumes each
// cell's result immediately, so parallelism is recovered in three phases:
//
//  1. Plan: run the body with a runner that records every cell it asks for
//     and hands back placeholder results. Bodies iterate static
//     design/workload lists — control flow never depends on measured
//     values — so the recorded cell list is exactly what a real run
//     executes.
//  2. Execute: run the recorded cells on a bounded worker pool. Each cell
//     is deterministic given its config, so results are identical to a
//     serial run no matter the interleaving.
//  3. Replay: run the body again with the memoized results, producing the
//     same report a serial run prints, byte for byte.
package harness

import (
	"fmt"
	"sync"

	"anykey"
	"anykey/internal/stats"
	"anykey/internal/workload"
)

// cellRunner abstracts how an experiment body obtains a cell's result:
// directly (serial), recording (plan) or memoized (replay).
type cellRunner interface {
	measure(cfg RunConfig) (*Result, error)
	fill(fc fillConfig) (*FillResult, error)
	clusterMeasure(cfg ClusterRunConfig) (*ClusterResult, error)
	fleetMeasure(cfg FleetRunConfig) (*FleetResult, error)
	txnMeasure(cfg TxnRunConfig) (*TxnResult, error)
}

// fillConfig identifies one fill-to-full cell.
type fillConfig struct {
	Opts anykey.Options
	Spec workload.Spec
	Seed int64
}

// cellKey identifies one cell of any kind. RunConfig, fillConfig and
// ClusterRunConfig hold only scalars and strings, so the key is comparable
// and can index the memo map directly.
type cellKey struct {
	run       RunConfig
	fill      fillConfig
	cluster   ClusterRunConfig
	fleet     FleetRunConfig
	txn       TxnRunConfig
	isFill    bool
	isCluster bool
	isFleet   bool
	isTxn     bool
}

// cellOutcome is a completed cell: exactly one of res/fr/cres/fres/tres set,
// or err.
type cellOutcome struct {
	res  *Result
	fr   *FillResult
	cres *ClusterResult
	fres *FleetResult
	tres *TxnResult
	err  error
}

// serialRunner executes cells in place, logging progress as they finish.
type serialRunner struct{ o *ExpOptions }

func (s serialRunner) measure(cfg RunConfig) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	s.o.progress("%s", runProgress(res))
	return res, nil
}

func (s serialRunner) fill(fc fillConfig) (*FillResult, error) {
	fr, err := FillToFull(fc.Opts, fc.Spec, fc.Seed)
	if err != nil {
		return nil, err
	}
	s.o.progress("%s", fillProgress(fr))
	return fr, nil
}

func runProgress(res *Result) string {
	return fmt.Sprintf("  %-8s %-8s ops=%-8d IOPS=%-9s p95(read)=%v",
		res.System, res.Workload, res.Ops, fiops(res.IOPS), res.ReadLat.Percentile(95))
}

func (s serialRunner) clusterMeasure(cfg ClusterRunConfig) (*ClusterResult, error) {
	res, err := RunCluster(cfg)
	if err != nil {
		return nil, err
	}
	s.o.progress("%s", clusterProgress(res))
	return res, nil
}

func fillProgress(fr *FillResult) string {
	return fmt.Sprintf("  %-8s %-8s fill=%.1f%% (%d pairs)",
		fr.System, fr.Workload, fr.Utilization*100, fr.Pairs)
}

func clusterProgress(res *ClusterResult) string {
	return fmt.Sprintf("  %-11s %-8s ops=%-8d IOPS=%-9s p95(batch)=%v",
		res.System, res.Workload, res.Ops, fiops(res.IOPS), res.BatchLat.Percentile(95))
}

func (s serialRunner) fleetMeasure(cfg FleetRunConfig) (*FleetResult, error) {
	res, err := RunFleet(cfg)
	if err != nil {
		return nil, err
	}
	s.o.progress("%s", fleetProgress(res))
	return res, nil
}

func fleetProgress(res *FleetResult) string {
	return fmt.Sprintf("  %-18s %-8s acked=%-7d lost=%-4d p99(read)=%v",
		res.System, res.Workload, res.AckedIDs, res.LostAcked, res.ReadLat.Percentile(99))
}

func (s serialRunner) txnMeasure(cfg TxnRunConfig) (*TxnResult, error) {
	res, err := RunTxn(cfg)
	if err != nil {
		return nil, err
	}
	s.o.progress("%s", txnProgress(res))
	return res, nil
}

func txnProgress(res *TxnResult) string {
	return fmt.Sprintf("  %-11s %-10s θ=%-4g wf=%-4g committed=%-7d aborts=%-5d good=%s/s",
		res.System, res.Mode, res.Theta, res.WriteRatio, res.Committed, res.Aborted, fiops(res.GoodTxnPerSec))
}

// planRunner records each distinct cell in first-use order and returns
// placeholders. The placeholder Result carries allocated histograms so
// bodies can format percentiles and fractions from it without caring that
// the numbers are zeros; the plan-phase report is discarded.
type planRunner struct {
	order []cellKey
	seen  map[cellKey]bool
}

func newPlanRunner() *planRunner { return &planRunner{seen: make(map[cellKey]bool)} }

func (p *planRunner) add(k cellKey) {
	if !p.seen[k] {
		p.seen[k] = true
		p.order = append(p.order, k)
	}
}

func (p *planRunner) measure(cfg RunConfig) (*Result, error) {
	p.add(cellKey{run: cfg})
	res := &Result{
		System:       cfg.Device.Design.String(),
		Workload:     cfg.Workload.Name,
		ReadAccesses: stats.NewIntHist(8),
	}
	// Traced cells carry a non-nil (empty) blame report so experiment
	// bodies that require one don't fail during the planning pass, before
	// any cell has actually run.
	if cfg.Device.Trace != nil {
		res.Blame = &anykey.BlameReport{}
	}
	// Open-loop cells likewise carry an empty scorecard during planning.
	if cfg.Workload.Arrival.Open() {
		res.Open = &OpenStats{}
	}
	return res, nil
}

func (p *planRunner) fill(fc fillConfig) (*FillResult, error) {
	p.add(cellKey{fill: fc, isFill: true})
	return &FillResult{System: fc.Opts.Design.String(), Workload: fc.Spec.Name}, nil
}

func (p *planRunner) clusterMeasure(cfg ClusterRunConfig) (*ClusterResult, error) {
	p.add(cellKey{cluster: cfg, isCluster: true})
	res := &ClusterResult{
		System:   fmt.Sprintf("%s x%d", cfg.Cluster.Device.Design, cfg.Cluster.Shards),
		Workload: cfg.Workload.Name,
		Shards:   cfg.Cluster.Shards,
	}
	if cfg.Workload.Arrival.Open() {
		res.Open = &OpenStats{}
	}
	return res, nil
}

func (p *planRunner) txnMeasure(cfg TxnRunConfig) (*TxnResult, error) {
	p.add(cellKey{txn: cfg, isTxn: true})
	return &TxnResult{
		System: fmt.Sprintf("%s x%d", cfg.Cluster.Device.Design, cfg.Cluster.Shards),
		Mode:   cfg.Mode,
		Theta:  cfg.Theta, WriteRatio: cfg.WriteRatio,
	}, nil
}

func (p *planRunner) fleetMeasure(cfg FleetRunConfig) (*FleetResult, error) {
	p.add(cellKey{fleet: cfg, isFleet: true})
	repl := cfg.Cluster.Replication
	return &FleetResult{
		System: fmt.Sprintf("%s x%d R=%d W=%d",
			cfg.Cluster.Device.Design, cfg.Cluster.Shards, repl.Factor, repl.WriteQuorum),
		Workload: cfg.Workload.Name,
		Members:  cfg.Cluster.Shards,
		R:        repl.Factor,
		W:        repl.WriteQuorum,
		Open:     &OpenStats{},
	}, nil
}

// replayRunner serves memoized outcomes to the final body run.
type replayRunner struct {
	outcomes map[cellKey]*cellOutcome
}

func (r *replayRunner) measure(cfg RunConfig) (*Result, error) {
	out, ok := r.outcomes[cellKey{run: cfg}]
	if !ok {
		return nil, fmt.Errorf("harness: replay asked for an unplanned cell %s/%s", cfg.Device.Design, cfg.Workload.Name)
	}
	return out.res, out.err
}

func (r *replayRunner) fill(fc fillConfig) (*FillResult, error) {
	out, ok := r.outcomes[cellKey{fill: fc, isFill: true}]
	if !ok {
		return nil, fmt.Errorf("harness: replay asked for an unplanned fill cell %v/%s", fc.Opts.Design, fc.Spec.Name)
	}
	return out.fr, out.err
}

func (r *replayRunner) clusterMeasure(cfg ClusterRunConfig) (*ClusterResult, error) {
	out, ok := r.outcomes[cellKey{cluster: cfg, isCluster: true}]
	if !ok {
		return nil, fmt.Errorf("harness: replay asked for an unplanned cluster cell %v x%d/%s",
			cfg.Cluster.Device.Design, cfg.Cluster.Shards, cfg.Workload.Name)
	}
	return out.cres, out.err
}

func (r *replayRunner) fleetMeasure(cfg FleetRunConfig) (*FleetResult, error) {
	out, ok := r.outcomes[cellKey{fleet: cfg, isFleet: true}]
	if !ok {
		return nil, fmt.Errorf("harness: replay asked for an unplanned fleet cell %v x%d R=%d/%s",
			cfg.Cluster.Device.Design, cfg.Cluster.Shards, cfg.Cluster.Replication.Factor, cfg.Workload.Name)
	}
	return out.fres, out.err
}

func (r *replayRunner) txnMeasure(cfg TxnRunConfig) (*TxnResult, error) {
	out, ok := r.outcomes[cellKey{txn: cfg, isTxn: true}]
	if !ok {
		return nil, fmt.Errorf("harness: replay asked for an unplanned txn cell %s θ=%g wf=%g",
			cfg.Mode, cfg.Theta, cfg.WriteRatio)
	}
	return out.tres, out.err
}

// runParallel plans an experiment's cells, executes them on opt.Parallel
// workers, then replays the body with the results.
func runParallel(e Experiment, opt ExpOptions) (*Report, error) {
	plan := newPlanRunner()
	po := opt
	po.runner = plan
	po.Progress = nil
	if _, err := e.Run(po); err != nil {
		// Only non-cell failures can surface here (planned cells always
		// "succeed" with placeholders).
		return nil, err
	}

	outcomes := executeCells(&opt, plan.order)

	ro := opt
	ro.runner = &replayRunner{outcomes: outcomes}
	ro.Progress = nil // per-cell progress was already printed by the pool
	return e.Run(ro)
}

// executeCells runs every cell on a worker pool and returns the memo map.
// Progress lines are printed as cells complete (so in nondeterministic
// order), serialized by the same mutex that guards the map.
func executeCells(o *ExpOptions, cells []cellKey) map[cellKey]*cellOutcome {
	workers := o.Parallel
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make(map[cellKey]*cellOutcome, len(cells))
	var mu sync.Mutex
	jobs := make(chan cellKey)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				out := &cellOutcome{}
				var line string
				switch {
				case k.isFill:
					out.fr, out.err = FillToFull(k.fill.Opts, k.fill.Spec, k.fill.Seed)
					if out.err == nil {
						line = fillProgress(out.fr)
					}
				case k.isCluster:
					out.cres, out.err = RunCluster(k.cluster)
					if out.err == nil {
						line = clusterProgress(out.cres)
					}
				case k.isFleet:
					out.fres, out.err = RunFleet(k.fleet)
					if out.err == nil {
						line = fleetProgress(out.fres)
					}
				case k.isTxn:
					out.tres, out.err = RunTxn(k.txn)
					if out.err == nil {
						line = txnProgress(out.tres)
					}
				default:
					out.res, out.err = Run(k.run)
					if out.err == nil {
						line = runProgress(out.res)
					}
				}
				mu.Lock()
				outcomes[k] = out
				if line != "" {
					o.progress("%s", line)
				}
				mu.Unlock()
			}
		}()
	}
	for _, k := range cells {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	return outcomes
}
