// Open-loop execution: requests arrive on the workload's arrival clock
// (workload.Arrivals) whether or not the device keeps up, the client times
// out attempts that miss its deadline and re-submits them with capped
// exponential backoff, and the run is scored by SLO goodput instead of raw
// throughput. This is the overload methodology: a closed loop throttles
// itself by construction, so only this path can show goodput collapse and
// metastable failure (retry amplification keeping a device saturated after
// the offered load drops).
//
// One event loop drives both the single-device engine (via its *At
// submission path) and the cluster (via per-shard *At submission); the
// openTarget interface hides the difference. All times inside the loop are
// relative to the execution epoch — each target adds its own clock-domain
// offset, which for a cluster is per shard (shard clocks are independent
// and a key always routes to the same shard, so an op's end-to-end latency
// is well defined within its shard's domain).
package harness

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"

	"anykey"
	"anykey/internal/stats"
	"anykey/internal/trace"
	"anykey/internal/workload"
)

// OpenStats is the open-loop client's scorecard for one run.
type OpenStats struct {
	// Arrival echoes the offered process; Timeout and SLO the effective
	// client knobs (after defaults), so reports are self-describing.
	Arrival workload.ArrivalSpec
	Timeout anykey.Duration
	SLO     anykey.Duration

	Offered  int64 // fresh arrivals generated within the horizon
	Attempts int64 // device submissions, retries included
	Timeouts int64 // attempts that missed the client deadline
	Retries  int64 // re-submissions scheduled after timeouts
	Dropped  int64 // operations abandoned after the retry budget

	// Completed counts operations whose final attempt met the deadline;
	// GoodOps those that also met the end-to-end SLO (first arrival to
	// final completion). Goodput is GoodOps per simulated second of the
	// whole execution phase, drain included — under overload the drain
	// stretches and goodput collapses, which is the knee the storm
	// experiment sweeps for.
	Completed int64
	GoodOps   int64
	Goodput   float64

	// RecoverTime is how long the system needed to go idle after the last
	// fresh arrival: final completion time minus the end of the offered
	// stream. Post-burst recovery debt (GC, compaction, retry backlog)
	// shows up here.
	RecoverTime anykey.Duration
}

// openDone is one attempt's outcome in epoch-relative time.
type openDone struct {
	doneRel anykey.Time
	value   []byte
	pairs   int
	// tracer and epoch let the loop annotate the attempt's op record with
	// retry/timeout events in the target's absolute clock domain.
	tracer *anykey.Tracer
	epoch  anykey.Time
}

// openTarget submits one attempt arriving at rel (relative to the
// execution epoch) and returns its completion.
type openTarget interface {
	submit(rel anykey.Time, op workload.Op) (openDone, error)
}

// deviceTarget drives a single-device engine's *At path.
type deviceTarget struct {
	eng   *anykey.Engine
	tr    *anykey.Tracer
	epoch anykey.Time
}

func (t *deviceTarget) submit(rel anykey.Time, op workload.Op) (openDone, error) {
	at := t.epoch.Add(anykey.Duration(rel))
	var (
		comp anykey.Completion
		err  error
	)
	switch op.Kind {
	case workload.OpPut:
		comp, err = t.eng.PutAt(at, op.Key, op.Value)
	case workload.OpScan:
		comp, err = t.eng.ScanAt(at, op.Key, op.ScanLen)
	default:
		comp, err = t.eng.GetAt(at, op.Key)
	}
	if err != nil {
		return openDone{}, err
	}
	return openDone{
		doneRel: anykey.Time(comp.Done.Sub(t.epoch)),
		value:   comp.Value,
		pairs:   len(comp.Pairs),
		tracer:  t.tr,
		epoch:   t.epoch,
	}, nil
}

// clusterTarget drives per-shard open-loop submission; epochs holds each
// shard's exec-start clock and shardOps the routing tally.
type clusterTarget struct {
	cl       *anykey.Cluster
	epochs   []anykey.Time
	tracers  []*anykey.Tracer
	shardOps []int64
}

func (t *clusterTarget) submit(rel anykey.Time, op workload.Op) (openDone, error) {
	if op.Kind == workload.OpScan {
		return openDone{}, errors.New("harness: cluster open loop has no scan path")
	}
	s := t.cl.ShardFor(op.Key)
	at := t.epochs[s].Add(anykey.Duration(rel))
	var (
		comp anykey.Completion
		err  error
	)
	if op.Kind == workload.OpPut {
		comp, _, err = t.cl.PutAt(at, op.Key, op.Value)
	} else {
		comp, _, err = t.cl.GetAt(at, op.Key)
	}
	if err != nil {
		return openDone{}, err
	}
	t.shardOps[s]++
	var tr *anykey.Tracer
	if t.tracers != nil {
		tr = t.tracers[s]
	}
	return openDone{
		doneRel: anykey.Time(comp.Done.Sub(t.epochs[s])),
		value:   comp.Value,
		pairs:   len(comp.Pairs),
		tracer:  tr,
		epoch:   t.epochs[s],
	}, nil
}

// openHists routes completed-operation end-to-end latencies into the
// enclosing result's histograms (scan may be nil for cluster runs).
type openHists struct {
	read, write, scan *stats.Histogram
}

// pendingOp is a timed-out operation waiting to re-enter the arrival
// stream.
type pendingOp struct {
	at       anykey.Time // epoch-relative re-arrival time
	seq      int64       // fresh-arrival index, the deterministic tie-break
	attempt  int         // attempts already spent (≥ 1)
	firstRel anykey.Time // original arrival, for end-to-end latency
	op       workload.Op
}

// retryHeap orders pending retries by (time, seq). Fresh arrivals always
// carry a larger seq than any pending retry, so at equal instants retries
// re-enter the stream first — a fixed, documented rule that keeps the
// event order deterministic.
type retryHeap []pendingOp

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h retryHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)     { *h = append(*h, x.(pendingOp)) }
func (h *retryHeap) Pop() any       { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h retryHeap) peek() pendingOp { return h[0] }

// arrivalSeedOffset decouples the arrival clock's PRNG from the op-mix
// PRNG: both derive from BaseConfig.Seed, but an open-loop run must draw
// the exact key/op sequence a closed-loop run with the same seed draws.
const arrivalSeedOffset = 0x9E3779B9

// runOpenLoop drives the open-loop execution phase against a target. All
// bookkeeping is in epoch-relative virtual time; the caller computes
// Goodput once it knows the phase's total simulated seconds.
func runOpenLoop(cfg *BaseConfig, gen *workload.Generator, tgt openTarget, h openHists, verified *int64) (*OpenStats, error) {
	arr, err := workload.NewArrivals(cfg.Workload.Arrival, cfg.Seed+arrivalSeedOffset)
	if err != nil {
		return nil, err
	}
	st := &OpenStats{Arrival: cfg.Workload.Arrival, Timeout: cfg.Timeout, SLO: cfg.SLO}
	horizon := anykey.Time(cfg.Horizon)

	var (
		pending      retryHeap
		nextFresh    = arr.Next()
		freshDone    = nextFresh > horizon
		lastFreshRel anykey.Time
		lastDoneRel  anykey.Time
		// stale marks keys whose ordering the retry protocol has broken: a
		// timed-out put's attempts re-execute after later fresh puts to the
		// same key, so the device may legitimately hold an older version than
		// the generator expects. Reads of such keys skip payload verification.
		stale map[uint64]struct{}
	)
	for {
		if freshDone || (cfg.MaxOps > 0 && st.Offered >= cfg.MaxOps) {
			freshDone = true
			if len(pending) == 0 {
				break
			}
		}
		// Pick the next event: the earliest of the retry queue and the
		// fresh stream; ties go to the retry (its seq is always smaller).
		var cur pendingOp
		if len(pending) > 0 && (freshDone || pending.peek().at <= nextFresh) {
			cur = heap.Pop(&pending).(pendingOp)
		} else {
			cur = pendingOp{at: nextFresh, seq: st.Offered, firstRel: nextFresh, op: gen.Next()}
			st.Offered++
			lastFreshRel = nextFresh
			if nextFresh = arr.Next(); nextFresh > horizon {
				freshDone = true
			}
		}

		done, err := tgt.submit(cur.at, cur.op)
		if err != nil {
			return nil, fmt.Errorf("harness: open-loop %v: %w", cur.op.Kind, err)
		}
		st.Attempts++
		if done.doneRel > lastDoneRel {
			lastDoneRel = done.doneRel
		}
		seq := done.tracer.LastOpSeq()
		if cur.attempt > 0 {
			done.tracer.MarkAttempt(seq, int32(cur.attempt))
		}

		if lat := done.doneRel.Sub(cur.at); lat > cfg.Timeout {
			// Client deadline missed. The device still did the work — the
			// client cannot cancel an in-flight request, which is exactly
			// how retries amplify load under overload.
			st.Timeouts++
			if cur.op.Kind == workload.OpPut {
				if stale == nil {
					stale = make(map[uint64]struct{})
				}
				stale[cur.op.ID] = struct{}{}
			}
			deadline := done.epoch.Add(anykey.Duration(cur.at) + cfg.Timeout)
			done.tracer.OpSpan(trace.BGTrack(trace.CauseTimeout), trace.EvTimeout,
				trace.CauseTimeout, seq, deadline, deadline,
				done.epoch.Add(anykey.Duration(done.doneRel)), int64(cur.attempt))
			if cur.attempt >= cfg.Retry.MaxRetries {
				st.Dropped++
				continue
			}
			retry := cur
			retry.attempt++
			retry.at = cur.at.Add(cfg.Timeout + cfg.Retry.delay(retry.attempt))
			st.Retries++
			done.tracer.OpSpan(trace.BGTrack(trace.CauseRetry), trace.EvRetry,
				trace.CauseRetry, seq,
				done.epoch.Add(anykey.Duration(retry.at)), done.epoch.Add(anykey.Duration(retry.at)),
				done.epoch.Add(anykey.Duration(retry.at)), int64(retry.attempt))
			heap.Push(&pending, retry)
			continue
		}

		// Completed within the deadline: score end-to-end from the first
		// arrival, so retry delay counts against the SLO.
		st.Completed++
		e2e := done.doneRel.Sub(cur.firstRel)
		if e2e <= cfg.SLO {
			st.GoodOps++
		}
		switch cur.op.Kind {
		case workload.OpPut:
			h.write.Record(e2e)
		case workload.OpScan:
			h.scan.Record(e2e)
			if !cfg.NoVerify && done.pairs == 0 {
				return nil, errors.New("harness: open-loop scan returned nothing on a loaded device")
			}
		default:
			h.read.Record(e2e)
			// Verify fresh reads of cleanly-ordered keys only: by a
			// retry's re-arrival the generator may have advanced the key's
			// version through later fresh writes, and a key with a
			// timed-out put may hold an older version than expected (the
			// put's late attempts re-execute after newer writes).
			if !cfg.NoVerify && cur.attempt == 0 {
				if _, tainted := stale[cur.op.ID]; !tainted {
					if !bytes.Equal(done.value, gen.ExpectedValue(cur.op.ID)) {
						return nil, fmt.Errorf("harness: open-loop read of id %d returned wrong payload", cur.op.ID)
					}
					*verified++
				}
			}
		}
	}

	if d := lastDoneRel.Sub(lastFreshRel); d > 0 {
		st.RecoverTime = d
	}
	return st, nil
}
