package harness

import (
	"strings"
	"testing"
)

// TestRunTxnOracle runs one contended OCC cell and one split cell and checks
// the exactness oracle plus the basic shape of the result.
func TestRunTxnOracle(t *testing.T) {
	for _, mode := range []string{TxnModeOCC, TxnModeSplit} {
		res, err := RunTxn(TxnRunConfig{Mode: mode, Waves: 60, Clients: 4})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Verified == 0 {
			t.Fatalf("%s: exactness oracle never checked a counter", mode)
		}
		if res.Committed == 0 || res.Committed+res.Aborted != res.Txns {
			t.Fatalf("%s: inconsistent tallies %+v", mode, res)
		}
		if res.GoodTxnPerSec <= 0 {
			t.Fatalf("%s: no goodput: %+v", mode, res)
		}
		if mode == TxnModeSplit && res.Layer.SplitMerges == 0 {
			t.Fatalf("split mode never merged a phase: %+v", res.Layer)
		}
	}
}

// TestRunTxnAtomicModes checks the batch-shaped modes: atomic batches pay
// prepares, best-effort batches don't, and both verify visibility.
func TestRunTxnAtomicModes(t *testing.T) {
	atomic, err := RunTxn(TxnRunConfig{Mode: TxnModeAtomic, Waves: 20})
	if err != nil {
		t.Fatal(err)
	}
	best, err := RunTxn(TxnRunConfig{Mode: TxnModeBestEffort, Waves: 20})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.Verified == 0 || best.Verified == 0 {
		t.Fatalf("visibility oracle never checked a batch: atomic=%d best=%d", atomic.Verified, best.Verified)
	}
	if atomic.Layer.Prepares == 0 {
		t.Fatalf("atomic batches recorded no prepares: %+v", atomic.Layer)
	}
	if best.Layer.Prepares != 0 {
		t.Fatalf("best-effort batches should not prepare: %+v", best.Layer)
	}
}

// TestTxnReportGoldenDeterminism pins the txn experiment's determinism
// contract: the report is byte-identical whether its cells run sequentially
// or on a parallel worker pool, and the property holds across seeds. The
// experiment's own router-invariance table covers RouteConsistent vs
// RouteModulo inside each run.
func TestTxnReportGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick txn sweep four times")
	}
	for _, seed := range []int64{1, 7} {
		serial, err := RunExperiment("txn", ExpOptions{Quick: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunExperiment("txn", ExpOptions{Quick: true, Seed: seed, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		ss, ps := serial.String(), parallel.String()
		if fnv64a(ss) != fnv64a(ps) || ss != ps {
			t.Fatalf("seed %d: sequential and parallel reports differ\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, ss, ps)
		}
		if !strings.Contains(ss, "goodput knee") || !strings.Contains(ss, "router invariance") {
			t.Fatalf("seed %d: report missing expected tables:\n%s", seed, ss)
		}
	}
}
