package harness

import (
	"testing"

	"anykey"
)

func smallClusterRun() ClusterRunConfig {
	return ClusterRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:     2,
			QueueDepth: 8,
			Device: anykey.Options{
				Design:          anykey.DesignAnyKeyPlus,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
			},
		},
		BaseConfig: BaseConfig{Workload: mustSpec("ZippyDB"), MaxOps: 1500},
	}
}

func TestRunClusterEndToEnd(t *testing.T) {
	res, err := RunCluster(smallClusterRun())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1500 {
		t.Fatalf("ops = %d, want 1500", res.Ops)
	}
	if res.Verified == 0 {
		t.Fatal("no reads verified")
	}
	var sum int64
	for _, n := range res.ShardOps {
		sum += n
	}
	if sum != res.Ops {
		t.Fatalf("shard ops %v sum to %d, want %d", res.ShardOps, sum, res.Ops)
	}
	if res.HottestShare <= 0 || res.HottestShare > 1 {
		t.Fatalf("hottest share %v out of range", res.HottestShare)
	}
	if res.IOPS <= 0 || res.SimSeconds <= 0 {
		t.Fatalf("no throughput measured: IOPS=%v sim=%vs", res.IOPS, res.SimSeconds)
	}
	if res.Exec.TotalReads() == 0 || res.Total.TotalWrites() == 0 {
		t.Fatalf("flash counters empty: exec=%+v total=%+v", res.Exec, res.Total)
	}
	if res.ReadLat.Count() == 0 || res.WriteLat.Count() == 0 || res.BatchLat.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	if res.QueueWaitLat.Count() == 0 || res.ServiceLat.Count() == 0 {
		t.Fatal("breakdown histograms empty")
	}
}

func TestRunClusterDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallClusterRun()
	a, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cluster.Workers = 4
	b, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.System = a.System // Workers is not part of the identity
	if a.IOPS != b.IOPS || a.SimSeconds != b.SimSeconds || a.Exec != b.Exec {
		t.Fatalf("Workers changed the measurement:\n  1: IOPS=%v sim=%v\n  4: IOPS=%v sim=%v",
			a.IOPS, a.SimSeconds, b.IOPS, b.SimSeconds)
	}
	for i := range a.ShardOps {
		if a.ShardOps[i] != b.ShardOps[i] {
			t.Fatalf("shard ops diverge: %v vs %v", a.ShardOps, b.ShardOps)
		}
	}
}

// TestClusterReportGoldenDeterminism pins the cluster experiment's
// determinism contract: the report is byte-identical whether its cells run
// sequentially or on a parallel worker pool, and the property holds across
// seeds.
func TestClusterReportGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick cluster sweep four times")
	}
	for _, seed := range []int64{1, 7} {
		serial, err := RunExperiment("cluster", ExpOptions{Quick: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := RunExperiment("cluster", ExpOptions{Quick: true, Seed: seed, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		ss, ps := serial.String(), parallel.String()
		if fnv64a(ss) != fnv64a(ps) || ss != ps {
			t.Fatalf("seed %d: sequential and parallel reports differ\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, ss, ps)
		}
	}
}
