package harness

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"anykey"
	"anykey/internal/model"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/trace"
	"anykey/internal/workload"
)

// ExpOptions tunes an experiment run.
type ExpOptions struct {
	// CapacityMB is the simulated device size (default 64 — 1/1024 of the
	// paper's device with all ratios preserved; see DESIGN.md §2).
	CapacityMB int
	// Quick shrinks runs for CI / go test -bench: a smaller device and a
	// hard op cap per run.
	Quick bool
	// MaxOps, when nonzero, caps the measured operations of every run
	// (the full §5.5 execution length can take hours of wall time on one
	// core; 400k ops per run reaches compaction/GC steady state at the
	// default scale).
	MaxOps int64
	// Parallel fans an experiment's independent cells (each owns its own
	// device) across this many workers; 0 or 1 runs them serially. The
	// report is identical either way — only wall-clock time changes.
	Parallel int
	// Progress, when set, receives one line per completed run.
	Progress io.Writer
	Seed     int64

	// Faults, when set, runs every cell's device under this fault plan
	// (transient read errors, grown-bad blocks). Injection is seeded and
	// deterministic, so a faulted experiment is as reproducible as a clean
	// one; the report notes the plan it ran under.
	Faults *anykey.FaultPlan

	// Trace, when set, opens every cell's device with event tracing enabled
	// and attaches the execution-phase trace and P99 blame report to each
	// Result. Tracing only observes the schedule, so the report tables are
	// identical with or without it.
	Trace *anykey.TraceOptions

	// runner intercepts cell execution; nil means run cells in place.
	// The parallel path swaps in planning and replaying runners.
	runner cellRunner
}

func (o *ExpOptions) defaults() {
	if o.CapacityMB == 0 {
		o.CapacityMB = 64
		if o.Quick {
			o.CapacityMB = 32
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *ExpOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// baseRun builds the standard §5 run configuration for a design+workload.
// DRAM is sized at 1/100 of capacity: at this repository's scaled populations
// that reproduces the paper's split — high-v/k workloads' PinK metadata fits
// the DRAM, low-v/k workloads' overflows into flash (see EXPERIMENTS.md on
// why the paper's printed 0.1% ratio corresponds to a different effective
// population-to-DRAM ratio).
func (o *ExpOptions) baseRun(design anykey.Design, spec workload.Spec) RunConfig {
	cfg := RunConfig{
		Device: anykey.Options{
			Design:     design,
			CapacityMB: o.CapacityMB,
			DRAMBytes:  int64(o.CapacityMB) << 20 / 100,
			Seed:       o.Seed,
		},
		BaseConfig: BaseConfig{Workload: spec, Seed: o.Seed},
	}
	// Cells share the plan pointer (Open copies the plan into each device's
	// own injector, and nothing mutates it). Sharing matters for the
	// parallel runner: cellKey embeds this Options value, and the plan and
	// replay passes must produce identical keys.
	cfg.Device.Faults = o.Faults
	cfg.Device.Trace = o.Trace
	if o.Quick {
		cfg.MaxOps = 25000
	} else if o.MaxOps > 0 {
		cfg.MaxOps = o.MaxOps
	}
	return cfg
}

// run executes one measurement cell through the configured runner.
func (o *ExpOptions) run(cfg RunConfig) (*Result, error) {
	res, err := o.cellRunner().measure(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", cfg.Device.Design, cfg.Workload.Name, err)
	}
	return res, nil
}

// fill executes one fill-to-full cell through the configured runner.
func (o *ExpOptions) fill(opts anykey.Options, spec workload.Spec) (*FillResult, error) {
	fr, err := o.cellRunner().fill(fillConfig{Opts: opts, Spec: spec, Seed: o.Seed})
	if err != nil {
		return nil, fmt.Errorf("%v/%s: %w", opts.Design, spec.Name, err)
	}
	return fr, nil
}

func (o *ExpOptions) cellRunner() cellRunner {
	if o.runner != nil {
		return o.runner
	}
	return serialRunner{o}
}

// threeSystems is the comparison set of most figures.
var threeSystems = []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKey, anykey.DesignAnyKeyPlus}

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Paper string // which table/figure it regenerates
	Run   func(ExpOptions) (*Report, error)

	// Serial marks experiments whose cells observe process-global state and
	// so must not fan across workers. The only such state is the payload
	// intern registry: concurrent cells' Notes can evict each other's
	// entries, which never changes any byte a device stores or returns but
	// does change how many value ranges the flyweight store resolves — and
	// fullscale prints those resident bytes. Serial execution keeps its
	// report byte-identical at every -parallel, per the repo contract.
	Serial bool
}

// Experiments returns the registry in the paper's order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2", Paper: "Fig. 2: PinK under varying value-to-key ratios", Run: expFig2},
		{ID: "table1", Paper: "Table 1: analytic metadata sizes (64 GB / 64 MB)", Run: expTable1},
		{ID: "fig10", Paper: "Fig. 10: read-latency CDFs, 7 workloads × 3 systems", Run: expFig10},
		{ID: "fig11", Paper: "Fig. 11: metadata size & flash accesses per read", Run: expFig11},
		{ID: "fig12", Paper: "Fig. 12: IOPS, all 14 workloads × 3 systems", Run: expFig12},
		{ID: "table3", Paper: "Table 3: compaction & GC page I/O", Run: expTable3},
		{ID: "fig13", Paper: "Fig. 13: total page writes (device lifetime)", Run: expFig13},
		{ID: "fig14", Paper: "Fig. 14: storage utilization (fill to full)", Run: expFig14},
		{ID: "fig15", Paper: "Fig. 15: read latency under varying DRAM sizes", Run: expFig15},
		{ID: "fig16", Paper: "Fig. 16: read latency under varying page sizes", Run: expFig16},
		{ID: "fig17", Paper: "Fig. 17: ETC under varying key distributions", Run: expFig17},
		{ID: "fig18", Paper: "Fig. 18: UDB range queries, varying scan length", Run: expFig18},
		{ID: "fig19", Paper: "Fig. 19: value-log size sensitivity", Run: expFig19},
		{ID: "scale", Paper: "§6.8: design scalability (4 TB analytic)", Run: expScale},
		{ID: "multi", Paper: "§6.9: multi-workload partitions", Run: expMulti},
		{ID: "ablation-minus", Paper: "§6.7: AnyKey− (no value log) vs AnyKey+", Run: expAblationMinus},
		{ID: "ablation-group", Paper: "design ablation: data segment group size", Run: expAblationGroup},
		{ID: "ablation-hashlist", Paper: "design ablation: hash lists on/off", Run: expAblationHashlist},
		{ID: "blame", Paper: "tail-latency blame attribution (trace-based)", Run: expBlame},
		{ID: "fullscale", Paper: "full-scale geometry in bounded memory: flyweight store + host cache", Run: expFullscale, Serial: true},
		{ID: "cluster", Paper: "sharded multi-device cluster: shards × QD × skew", Run: expCluster},
		{ID: "storm", Paper: "open-loop overload: goodput collapse & metastability knee", Run: expStorm},
		{ID: "fleet", Paper: "elastic replicated fleet: R × kill-one-device durability, live reshard", Run: expFleet},
		{ID: "txn", Paper: "cross-shard transactions: serialized OCC vs split-phase under contention", Run: expTxn},
	}
}

// RunExperiment executes one experiment by id. With opt.Parallel > 1 its
// independent cells are fanned across a worker pool; the report is
// identical to a serial run.
func RunExperiment(id string, opt ExpOptions) (*Report, error) {
	opt.defaults()
	for _, e := range Experiments() {
		if e.ID == id {
			opt.progress("== %s: %s (device %d MB, quick=%v)", e.ID, e.Paper, opt.CapacityMB, opt.Quick)
			var rep *Report
			var err error
			if opt.Parallel > 1 && !e.Serial {
				rep, err = runParallel(e, opt)
			} else {
				rep, err = e.Run(opt)
			}
			if err == nil && opt.Faults != nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"fault plan: seed=%d read-err=%g program-fail=%g erase-fail=%g",
					opt.Faults.Seed, opt.Faults.ReadErrorRate,
					opt.Faults.ProgramFailRate, opt.Faults.EraseFailRate))
			}
			return rep, err
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", id)
}

// mustSpec fetches a Table 2 workload or panics (registry is static).
func mustSpec(name string) workload.Spec {
	s, ok := workload.ByName(name)
	if !ok {
		panic("harness: unknown workload " + name)
	}
	return s
}

// --- Fig. 2 ----------------------------------------------------------------

func expFig2(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig2", Title: "PinK under varying value-to-key ratios (key 40 B)",
		Notes: []string{"Paper: p95 latency explodes and IOPS collapses as v/k falls below ~4.",
			"At this scaled device size absolute IOPS is dominated by per-op data volume;",
			"the metadata effect shows in the latency percentiles (p90/p95 rising as v/k falls)."}}
	t := Table{Name: "PinK, 20% writes, Zipfian 0.99", Header: append([]string{"v/k", "value(B)"}, append(latHeader, "IOPS")...)}
	values := []int{20, 40, 80, 160, 320, 640, 1280}
	if o.Quick {
		values = []int{20, 80, 320, 1280}
	}
	for _, v := range values {
		spec := workload.Custom(fmt.Sprintf("vk%.1f", float64(v)/40), 40, v)
		res, err := o.run(o.baseRun(anykey.DesignPinK, spec))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.2f", float64(v)/40), fmt.Sprint(v)}
		row = append(row, latRow(&res.ReadLat)...)
		row = append(row, fiops(res.IOPS))
		t.Rows = append(t.Rows, row)
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Table 1 ---------------------------------------------------------------

func expTable1(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "table1", Title: "Analytic metadata sizes, 64 GB SSD full of pairs, 64 MB DRAM",
		Notes: []string{
			"Computed from the same cost model the simulator implements (internal/model).",
			"Shape target: PinK ≫ DRAM and grows as v/k falls; AnyKey pinned within DRAM.",
		}}
	d := model.DeviceSpec{CapacityBytes: 64 << 30, DRAMBytes: 64 << 20, PageSize: 8192, GroupPages: 32}
	t := Table{Header: []string{"v/k (val/key)", "PinK level lists", "PinK meta segs", "PinK sum",
		"AnyKey level lists", "AnyKey hash lists", "AnyKey sum", "fits 64MB DRAM"}}
	for _, w := range []model.WorkloadSpec{
		{KeySize: 40, ValueSize: 160},
		{KeySize: 60, ValueSize: 120},
		{KeySize: 80, ValueSize: 80},
	} {
		p := model.PinK(d, w)
		a := model.AnyKey(d, w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f (%d/%d)", float64(w.ValueSize)/float64(w.KeySize), w.ValueSize, w.KeySize),
			fbytes(p.LevelLists), fbytes(p.MetaSegments), fbytes(p.Sum()),
			fbytes(a.LevelLists), fbytes(a.HashLists), fbytes(a.Sum()),
			fmt.Sprintf("PinK=%v AnyKey=%v", p.Sum() <= d.DRAMBytes, a.Sum() <= d.DRAMBytes),
		})
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Fig. 10 ---------------------------------------------------------------

var fig10Workloads = []string{"RTDATA", "Crypto1", "ZippyDB", "Cache15", "Cache", "W-PinK", "KVSSD"}

func expFig10(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "Read-latency distribution per workload and system",
		Notes: []string{"Paper: AnyKey/AnyKey+ cut low-v/k tails by an order of magnitude; comparable on high-v/k."}}
	wls := fig10Workloads
	if o.Quick {
		wls = []string{"Crypto1", "ZippyDB", "W-PinK"}
	}
	for _, wl := range wls {
		spec := mustSpec(wl)
		t := Table{Name: fmt.Sprintf("%s (key %d B / value %d B, v/k %.1f)", wl, spec.KeySize, spec.ValueSize, spec.VK()),
			Header: append([]string{"system"}, latHeader...)}
		var labels []string
		var hists []*stats.Histogram
		for _, sys := range threeSystems {
			res, err := o.run(o.baseRun(sys, spec))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{res.System}, latRow(&res.ReadLat)...))
			labels = append(labels, res.System)
			hists = append(hists, &res.ReadLat)
		}
		rep.Tables = append(rep.Tables, t, cdfTable(wl+" read-latency CDF", labels, hists))
	}
	return rep, nil
}

// --- Fig. 11 ---------------------------------------------------------------

func expFig11(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "Metadata size/placement and flash accesses per read",
		Notes: []string{"Paper: PinK's meta segments spill to flash on low-v/k, costing 4–7 accesses per read;",
			"AnyKey metadata is DRAM-resident and reads take ≤2 accesses."}}
	wls := []string{"Crypto1", "ZippyDB", "ETC"}
	if o.Quick {
		wls = []string{"Crypto1"}
	}
	for _, wl := range wls {
		spec := mustSpec(wl)
		meta := Table{Name: fmt.Sprintf("(a) metadata structures, %s", wl),
			Header: []string{"system", "structure", "bytes", "placement"}}
		acc := Table{Name: fmt.Sprintf("(b) flash accesses per read, %s", wl),
			Header: []string{"system", "0", "1", "2", "3", "4+", "mean"}}
		for _, sys := range threeSystems {
			res, err := o.run(o.baseRun(sys, spec))
			if err != nil {
				return nil, err
			}
			for _, m := range res.Metadata {
				place := "DRAM"
				if !m.InDRAM {
					place = "flash"
				}
				meta.Rows = append(meta.Rows, []string{res.System, m.Name, fbytes(m.Bytes), place})
			}
			h := res.ReadAccesses
			four := 0.0
			for v := 4; v <= 8; v++ {
				four += h.Frac(v)
			}
			acc.Rows = append(acc.Rows, []string{res.System,
				fpct(h.Frac(0)), fpct(h.Frac(1)), fpct(h.Frac(2)), fpct(h.Frac(3)), fpct(four),
				fmt.Sprintf("%.2f", h.Mean())})
		}
		rep.Tables = append(rep.Tables, meta, acc)
	}
	return rep, nil
}

// --- Fig. 12 ---------------------------------------------------------------

func expFig12(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig12", Title: "IOPS across all Table 2 workloads",
		Notes: []string{"Paper: AnyKey ≈3.15× PinK on low-v/k; AnyKey+ ≥ PinK everywhere (≈15% on high-v/k)."}}
	t := Table{Header: []string{"workload", "v/k", "PinK", "AnyKey", "AnyKey+", "AnyKey/PinK", "AnyKey+/PinK"}}
	wls := workload.Table2
	if o.Quick {
		wls = []workload.Spec{mustSpec("KVSSD"), mustSpec("ETC"), mustSpec("ZippyDB"), mustSpec("RTDATA")}
	}
	var lowVKGain, lowVKn float64
	for _, spec := range wls {
		iops := map[anykey.Design]float64{}
		for _, sys := range threeSystems {
			res, err := o.run(o.baseRun(sys, spec))
			if err != nil {
				return nil, err
			}
			iops[sys] = res.IOPS
		}
		g1 := iops[anykey.DesignAnyKey] / iops[anykey.DesignPinK]
		g2 := iops[anykey.DesignAnyKeyPlus] / iops[anykey.DesignPinK]
		if spec.LowVK() {
			lowVKGain += g1
			lowVKn++
		}
		t.Rows = append(t.Rows, []string{spec.Name, fmt.Sprintf("%.1f", spec.VK()),
			fiops(iops[anykey.DesignPinK]), fiops(iops[anykey.DesignAnyKey]), fiops(iops[anykey.DesignAnyKeyPlus]),
			fratio(g1), fratio(g2)})
	}
	if lowVKn > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("Measured mean AnyKey/PinK gain on low-v/k workloads: %.2fx", lowVKGain/lowVKn))
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Table 3 ---------------------------------------------------------------

func expTable3(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "table3", Title: "Compaction and GC page I/O during execution",
		Notes: []string{"Paper: AnyKey GC ≈ 0 in all cases; AnyKey+ removes the compaction-chain",
			"overhead AnyKey pays on high-v/k workloads."}}
	wls := []string{"Crypto1", "Cache", "W-PinK", "KVSSD"}
	if o.Quick {
		wls = []string{"Crypto1", "KVSSD"}
	}
	t := Table{Header: []string{"workload", "system", "comp.read", "comp.write", "gc.read", "gc.write", "log compactions", "chains"}}
	for _, wl := range wls {
		spec := mustSpec(wl)
		for _, sys := range threeSystems {
			res, err := o.run(o.baseRun(sys, spec))
			if err != nil {
				return nil, err
			}
			c := res.Exec
			compR := c.Reads[nand.CauseCompaction] + c.Reads[nand.CauseFlush]
			compW := c.Writes[nand.CauseCompaction] + c.Writes[nand.CauseFlush]
			t.Rows = append(t.Rows, []string{wl, res.System,
				fcount(compR), fcount(compW),
				fcount(c.Reads[nand.CauseGC]), fcount(c.Writes[nand.CauseGC]),
				fcount(res.LogCompactions), fcount(res.ChainedCompactions)})
		}
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Fig. 13 ---------------------------------------------------------------

func expFig13(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig13", Title: "Total page writes over the whole run (device lifetime)",
		Notes: []string{"Paper: AnyKey+ writes ≈50% fewer pages than PinK on average."}}
	t := Table{Header: []string{"workload", "PinK", "AnyKey", "AnyKey+", "AnyKey+/PinK"}}
	wls := workload.Table2
	if o.Quick {
		wls = []workload.Spec{mustSpec("ETC"), mustSpec("ZippyDB"), mustSpec("W-PinK")}
	}
	var ratioSum, n float64
	for _, spec := range wls {
		writes := map[anykey.Design]int64{}
		for _, sys := range threeSystems {
			res, err := o.run(o.baseRun(sys, spec))
			if err != nil {
				return nil, err
			}
			writes[sys] = res.Total.TotalWrites()
		}
		r := float64(writes[anykey.DesignAnyKeyPlus]) / float64(writes[anykey.DesignPinK])
		ratioSum += r
		n++
		t.Rows = append(t.Rows, []string{spec.Name,
			fcount(writes[anykey.DesignPinK]), fcount(writes[anykey.DesignAnyKey]),
			fcount(writes[anykey.DesignAnyKeyPlus]), fratio(r)})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("Measured mean AnyKey+/PinK page-write ratio: %.2fx", ratioSum/n))
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Fig. 14 ---------------------------------------------------------------

func expFig14(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig14", Title: "Storage utilization: unique user bytes stored at device-full",
		Notes: []string{"Paper: AnyKey/AnyKey+ beat PinK on low-v/k, where PinK burns flash on meta segments."}}
	t := Table{Header: []string{"workload", "PinK", "AnyKey", "AnyKey+"}}
	wls := workload.Table2
	if o.Quick {
		wls = []workload.Spec{mustSpec("KVSSD"), mustSpec("ETC"), mustSpec("Crypto1")}
	}
	for _, spec := range wls {
		row := []string{spec.Name}
		for _, sys := range threeSystems {
			fr, err := o.fill(anykey.Options{Design: sys, CapacityMB: o.CapacityMB, Seed: o.Seed}, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, fpct(fr.Utilization))
		}
		t.Rows = append(t.Rows, row)
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- Fig. 15 ---------------------------------------------------------------

func expFig15(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig15", Title: "Read latency under varying DRAM sizes (AnyKey+)",
		Notes: []string{"DRAM scaled as the paper's 32/64/96 MB sweep: ½×, 1×, 1.5× of the harness default.",
			"Paper: smaller DRAM hurts low-v/k (hash lists shrink); high-v/k is insensitive."}}
	base := int64(o.CapacityMB) << 20 / 100
	for _, wl := range []string{"Crypto1", "ETC", "W-PinK"} {
		spec := mustSpec(wl)
		t := Table{Name: wl, Header: append([]string{"DRAM"}, latHeader...)}
		for _, mult := range []float64{0.5, 1.0, 1.5} {
			cfg := o.baseRun(anykey.DesignAnyKeyPlus, spec)
			cfg.Device.DRAMBytes = int64(float64(base) * mult)
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{fbytes(cfg.Device.DRAMBytes)}, latRow(&res.ReadLat)...))
		}
		rep.Tables = append(rep.Tables, t)
		if o.Quick {
			break
		}
	}
	return rep, nil
}

// --- Fig. 16 ---------------------------------------------------------------

func expFig16(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig16", Title: "Read latency under varying flash page sizes (AnyKey+)",
		Notes: []string{"Paper: larger pages mean fewer groups, smaller metadata, lower tails."}}
	for _, wl := range []string{"Crypto1", "ETC", "W-PinK"} {
		spec := mustSpec(wl)
		t := Table{Name: wl, Header: append([]string{"page size"}, latHeader...)}
		for _, ps := range []int{4096, 8192, 16384} {
			cfg := o.baseRun(anykey.DesignAnyKeyPlus, spec)
			cfg.Device.PageSize = ps
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{fbytes(int64(ps))}, latRow(&res.ReadLat)...))
		}
		rep.Tables = append(rep.Tables, t)
		if o.Quick {
			break
		}
	}
	return rep, nil
}

// --- Fig. 17 ---------------------------------------------------------------

func expFig17(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig17", Title: "ETC read latency under varying Zipfian skew",
		Notes: []string{"Paper: flatter key popularity (lower θ) degrades PinK (cold metadata in flash);",
			"AnyKey stays uniform."}}
	spec := mustSpec("ETC")
	thetas := []float64{0.60, 0.80, 0.99}
	for _, sys := range threeSystems {
		t := Table{Name: sys.String(), Header: append([]string{"theta"}, latHeader...)}
		for _, th := range thetas {
			cfg := o.baseRun(sys, spec)
			cfg.Theta = th
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%.2f", th)}, latRow(&res.ReadLat)...))
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}

// --- Fig. 18 ---------------------------------------------------------------

func expFig18(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig18", Title: "UDB scan-centric workload, varying scan length",
		Notes: []string{"Paper: AnyKey's benefit grows with scan length — consecutive keys share group pages;",
			"PinK's values scatter across data pages.",
			"Scan-centric deployments size the value log small (8% here) so values fold into",
			"the key-ordered groups; a large log would scatter them like PinK's data segments."}}
	spec := mustSpec("UDB")
	lengths := []int{100, 150, 200}
	if o.Quick {
		lengths = []int{100}
	}
	for _, ln := range lengths {
		t := Table{Name: fmt.Sprintf("scan length %d", ln), Header: append([]string{"system"}, append(latHeader, "scan reads/key")...)}
		for _, sys := range threeSystems {
			cfg := o.baseRun(sys, spec)
			cfg.Device.LogFraction = 0.08
			cfg.WriteRatio = 0.1
			cfg.ScanRatio = 0.5
			cfg.ScanLen = ln
			if o.Quick {
				cfg.MaxOps = 4000
			} else {
				cfg.MaxOps = 60000
			}
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			perKey := float64(res.Exec.Reads[nand.CauseUser]) / (float64(res.ScanLat.Count()) * float64(ln))
			row := append([]string{res.System}, latRow(&res.ScanLat)...)
			row = append(row, fmt.Sprintf("%.2f", perKey))
			t.Rows = append(t.Rows, row)
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}

// --- Fig. 19 ---------------------------------------------------------------

func expFig19(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fig19", Title: "Value-log size sensitivity (AnyKey+)",
		Notes: []string{"Paper: small-value workloads (ZippyDB) are insensitive; larger values (UDB, ETC)",
			"gain IOPS and shed page writes as the log grows from 5% to 15%."}}
	wls := []string{"ZippyDB", "UDB", "ETC"}
	if o.Quick {
		wls = []string{"ZippyDB", "ETC"}
	}
	t := Table{Header: []string{"workload", "log size", "IOPS", "total page writes", "log compactions"}}
	for _, wl := range wls {
		spec := mustSpec(wl)
		for _, frac := range []float64{0.05, 0.10, 0.15} {
			cfg := o.baseRun(anykey.DesignAnyKeyPlus, spec)
			cfg.Device.LogFraction = frac
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{wl, fpct(frac), fiops(res.IOPS),
				fcount(res.Total.TotalWrites()), fcount(res.LogCompactions)})
		}
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- §6.8 scale ------------------------------------------------------------

func expScale(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "scale", Title: "Design scalability: analytic metadata at 4 TB / 4 GB DRAM (Crypto1)",
		Notes: []string{"Paper: PinK's metadata swells beyond any DRAM; AnyKey stays within the 0.1% budget."}}
	t := Table{Header: []string{"capacity", "DRAM", "PinK metadata", "AnyKey metadata", "AnyKey fits"}}
	w := model.WorkloadSpec{KeySize: 76, ValueSize: 50}
	for _, capGB := range []int64{64, 512, 4096} {
		d := model.DeviceSpec{CapacityBytes: capGB << 30, DRAMBytes: capGB << 30 / 1000, PageSize: 8192, GroupPages: 32}
		p := model.PinK(d, w)
		a := model.AnyKey(d, w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dGB", capGB), fbytes(d.DRAMBytes),
			fbytes(p.Sum()), fbytes(a.Sum()),
			fmt.Sprint(a.Sum() <= d.DRAMBytes),
		})
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- §6.9 multi ------------------------------------------------------------

func expMulti(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "multi", Title: "Two co-located workloads on equal partitions",
		Notes: []string{"Each partition (half capacity, half chips) runs its workload independently,",
			"managed by PinK or AnyKey+ (paper: p95 improves 14% for W-PinK, 216% for ZippyDB)."}}
	t := Table{Header: []string{"partition workload", "system", "p95 read", "p99 read", "IOPS"}}
	part := o.CapacityMB / 2
	for _, wl := range []string{"W-PinK", "ZippyDB"} {
		spec := mustSpec(wl)
		var p95 [2]float64
		for i, sys := range []anykey.Design{anykey.DesignPinK, anykey.DesignAnyKeyPlus} {
			cfg := o.baseRun(sys, spec)
			cfg.Device.CapacityMB = part
			cfg.Device.Channels = 4
			cfg.QueueDepth = 32
			cfg.FillFrac = 0.28 // partitions leave extra headroom (§6.9 setup)
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			p95[i] = float64(res.ReadLat.Percentile(95))
			t.Rows = append(t.Rows, []string{wl, res.System,
				fdur(res.ReadLat.Percentile(95)), fdur(res.ReadLat.Percentile(99)), fiops(res.IOPS)})
		}
		if p95[1] > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s p95 improvement: %.0f%%", wl, (p95[0]/p95[1]-1)*100))
		}
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- §6.7 ablation ----------------------------------------------------------

func expAblationMinus(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "ablation-minus", Title: "AnyKey− (no value log) vs AnyKey+ under rising write ratio",
		Notes: []string{"Paper: without the log, higher write ratios collapse IOPS (every compaction",
			"rewrites values); AnyKey+ holds steady."}}
	spec := mustSpec("ETC")
	t := Table{Header: []string{"write ratio", "AnyKey- IOPS", "AnyKey+ IOPS", "AnyKey- writes", "AnyKey+ writes"}}
	ratios := []float64{0.2, 0.4, 0.6}
	if o.Quick {
		ratios = []float64{0.2, 0.6}
	}
	for _, wr := range ratios {
		var iops [2]float64
		var writes [2]int64
		for i, sys := range []anykey.Design{anykey.DesignAnyKeyMinus, anykey.DesignAnyKeyPlus} {
			cfg := o.baseRun(sys, spec)
			cfg.WriteRatio = wr
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			iops[i] = res.IOPS
			writes[i] = res.Total.TotalWrites()
		}
		t.Rows = append(t.Rows, []string{fpct(wr), fiops(iops[0]), fiops(iops[1]),
			fcount(writes[0]), fcount(writes[1])})
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- blame -------------------------------------------------------------------

// defaultTraceOpts is the TraceOptions value the blame experiment forces on
// when the caller didn't ask for tracing. It is a shared package-level
// pointer for the same reason fault plans are: cellKey embeds the Options
// value, and the parallel runner's planning and replay passes must produce
// identical keys.
var defaultTraceOpts = &anykey.TraceOptions{}

// expBlame regenerates the paper's interference narrative (§6.2's "reads
// stall behind compaction") as a measured table: every above-P99 operation's
// latency decomposed into named causes from the event trace.
func expBlame(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "blame", Title: "Tail-latency blame attribution, above-P99 ops",
		Notes: []string{"Each above-P99 op's end-to-end time is decomposed against the traced",
			"schedule: its own flash work (self), time queued behind background flash",
			"activity by cause, host submission queueing, and controller-CPU time.",
			"Coverage is the fraction of blamed time carrying a real name."}}
	wls := []string{"ZippyDB", "W-PinK"}
	if o.Quick {
		wls = []string{"ZippyDB"}
	}
	causes := []trace.Cause{trace.CauseSelf, trace.CauseCompaction, trace.CauseGC,
		trace.CauseFlush, trace.CauseWriteStall, trace.CauseHostQueue, trace.CauseCPU}
	for _, wl := range wls {
		spec := mustSpec(wl)
		t := Table{Name: wl, Header: []string{"system", "p99 read", "blamed ops", "coverage",
			"self", "compaction", "gc", "flush", "write-stall", "host-queue", "cpu", "other"}}
		for _, sys := range threeSystems {
			cfg := o.baseRun(sys, spec)
			if cfg.Device.Trace == nil {
				cfg.Device.Trace = defaultTraceOpts
			}
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			b := res.Blame
			if b == nil {
				return nil, fmt.Errorf("blame: %s/%s produced no blame report", res.System, wl)
			}
			row := []string{res.System, fdur(res.ReadLat.Percentile(99)),
				fmt.Sprintf("%d/%d", b.BlamedOps, b.TotalOps), fpct(b.Coverage())}
			var named float64
			for _, c := range causes {
				s := b.Share(c)
				named += s
				row = append(row, fpct(s))
			}
			t.Rows = append(t.Rows, append(row, fpct(1-named)))
		}
		rep.Tables = append(rep.Tables, t)
	}
	return rep, nil
}

// SortedExperimentIDs lists the registry ids.
func SortedExperimentIDs() []string {
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	slices.Sort(ids)
	return ids
}

// --- design ablations --------------------------------------------------------

// expAblationGroup sweeps the data segment group size (§4.1 makes it a
// configuration knob; §7.3 of the paper calls adaptive sizing future work):
// smaller groups mean more level-list entries (more DRAM) but finer
// compaction granularity.
func expAblationGroup(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "ablation-group", Title: "AnyKey+ under varying data segment group sizes (ZippyDB)",
		Notes: []string{"Larger groups shrink the DRAM level lists (one entry per group) at the cost of",
			"coarser writes; the paper's default is 32 pages."}}
	spec := mustSpec("ZippyDB")
	t := Table{Header: []string{"group pages", "IOPS", "p95 read", "level lists", "total page writes"}}
	for _, gp := range []int{8, 16, 32} {
		cfg := o.baseRun(anykey.DesignAnyKeyPlus, spec)
		cfg.Device.GroupPages = gp
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		var levelList int64
		for _, m := range res.Metadata {
			if m.Name == "level lists" {
				levelList = m.Bytes
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(gp), fiops(res.IOPS),
			fdur(res.ReadLat.Percentile(95)), fbytes(levelList), fcount(res.Total.TotalWrites())})
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// expAblationHashlist removes the hash lists (§4.2): overlapping level
// ranges then cost fruitless group reads, raising read tails and flash
// accesses per read.
func expAblationHashlist(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "ablation-hashlist", Title: "AnyKey+ with and without hash lists (ZippyDB)",
		Notes: []string{"Hash lists prove absence without flash reads; without them every overlapping",
			"level range costs a wasted group read (§4.2)."}}
	spec := mustSpec("ZippyDB")
	t := Table{Header: []string{"hash lists", "IOPS", "p95 read", "accesses/read (mean)"}}
	for _, disabled := range []bool{false, true} {
		cfg := o.baseRun(anykey.DesignAnyKeyPlus, spec)
		cfg.Device.NoHashLists = disabled
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		label := "on"
		if disabled {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{label, fiops(res.IOPS),
			fdur(res.ReadLat.Percentile(95)), fmt.Sprintf("%.2f", res.ReadAccesses.Mean())})
	}
	rep.Tables = append(rep.Tables, t)
	return rep, nil
}

// --- fullscale ---------------------------------------------------------------

// fullscaleCacheOpts shares one CacheOptions value per byte budget so the
// parallel planner's plan and replay passes build identical cell keys — the
// same reason fault plans and defaultTraceOpts are shared pointers.
var (
	fullscaleCacheMu   sync.Mutex
	fullscaleCacheOpts = map[int64]*anykey.CacheOptions{}
)

func fullscaleCache(budget int64) *anykey.CacheOptions {
	fullscaleCacheMu.Lock()
	defer fullscaleCacheMu.Unlock()
	c, ok := fullscaleCacheOpts[budget]
	if !ok {
		c = &anykey.CacheOptions{CapacityBytes: budget}
		fullscaleCacheOpts[budget] = c
	}
	return c
}

// fullscaleCfg builds one fullscale cell: AnyKey+ driving the KVSSD workload
// (16 B keys, 4 KiB values — the heaviest payload bytes per pair in Table 2)
// at the given capacity. DRAM follows the harness 1/100 rule below the
// flyweight threshold and the paper's 64 GB : 64 MB ratio (1/1024) at and
// above it, so the 64 GB cell is exactly the paper's device geometry.
func (o *ExpOptions) fullscaleCfg(capMB int, maxOps int64) RunConfig {
	dram := int64(capMB) << 20 / 100
	if int64(capMB)<<20 >= 1<<30 {
		dram = int64(capMB) << 20 / 1024
	}
	cfg := RunConfig{
		Device: anykey.Options{
			Design:     anykey.DesignAnyKeyPlus,
			CapacityMB: capMB,
			DRAMBytes:  dram,
			Seed:       o.Seed,
		},
		BaseConfig: BaseConfig{Workload: mustSpec("KVSSD"), Seed: o.Seed, MaxOps: maxOps},
	}
	cfg.Device.Faults = o.Faults
	cfg.Device.Trace = o.Trace
	return cfg
}

// footprintCols renders the shared footprint tail of a fullscale row.
func footprintCols(fp nand.StoreFootprint) []string {
	ratio := 0.0
	if fp.LogicalBytes > 0 {
		ratio = float64(fp.ResidentBytes) / float64(fp.LogicalBytes)
	}
	return []string{
		fcount(fp.LivePages), fbytes(fp.LogicalBytes), fbytes(fp.ResidentBytes),
		fpct(ratio), fcount(fp.RawFallbackPages),
	}
}

// expFullscale measures the memory model (DESIGN.md §14): (a) the raw and
// flyweight payload stores execute the identical schedule while the
// flyweight retains a small fraction of the logical page bytes, (b) the
// Flashield-style host cache converts DRAM into read hits without changing
// device behavior, and (c) the footprint scales to the paper's full 64 GB
// geometry — the cell the raw store would need the device's capacity in host
// RAM to run.
func expFullscale(o ExpOptions) (*Report, error) {
	rep := &Report{ID: "fullscale", Title: "Full-scale geometry in bounded memory: flyweight store and host cache",
		Notes: []string{"The simulator's flash array normally retains every programmed page",
			"byte-for-byte (raw store). The flyweight store keeps only a skeleton per",
			"page and regenerates seed-deterministic workload payloads on read, so a",
			"64 GB device no longer needs 64 GB of host RAM; golden tests pin both",
			"modes to byte-identical reports. 'resident/logical' is host bytes",
			"actually retained over what the raw store would hold."}}

	// (a) Raw vs flyweight on the harness-scale device: same schedule, same
	// counters, an order of magnitude apart in resident payload bytes.
	small := o.CapacityMB
	eq := Table{Name: fmt.Sprintf("(a) memory-mode equivalence (AnyKey+, KVSSD, %d MB)", small),
		Header: []string{"store", "ops", "IOPS", "p99 read", "page writes",
			"live pages", "logical", "resident", "resident/logical", "raw-fallback"}}
	var eqCells []*Result
	for _, mode := range []anykey.MemoryMode{anykey.MemoryRaw, anykey.MemoryFlyweight} {
		cfg := o.fullscaleCfg(small, 0)
		cfg.Device.Memory = mode
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		eqCells = append(eqCells, res)
		row := []string{res.Store.Mode.String(), fcount(res.Ops), fiops(res.IOPS),
			fdur(res.ReadLat.Percentile(99)), fcount(res.Total.TotalWrites())}
		eq.Rows = append(eq.Rows, append(row, footprintCols(res.Store)...))
	}
	rep.Tables = append(rep.Tables, eq)
	if a, b := eqCells[0], eqCells[1]; a.Ops == b.Ops &&
		a.Total.TotalWrites() == b.Total.TotalWrites() &&
		a.ReadLat.Percentile(99) == b.ReadLat.Percentile(99) {
		rep.Notes = append(rep.Notes,
			"equivalence: raw and flyweight ran identical schedules (ops, page writes, p99 agree)")
	} else {
		rep.Notes = append(rep.Notes,
			"WARNING: raw and flyweight cells diverged — the memory mode leaked into behavior")
	}

	// (b) The host cache on the same geometry: write-through admission after
	// repeated misses, budgeted at the device's DRAM size. Device flash
	// counters shrink by exactly the hits; the golden cache test pins the
	// returned bytes.
	budget := int64(small) << 20 / 100
	ct := Table{Name: fmt.Sprintf("(b) Flashield-style host cache (flyweight store, budget %s)", fbytes(budget)),
		Header: []string{"cache", "ops", "IOPS", "p50 read", "p99 read",
			"hits", "misses", "hit rate", "admitted", "evicted", "cache bytes"}}
	for _, cached := range []bool{false, true} {
		cfg := o.fullscaleCfg(small, 0)
		cfg.Device.Memory = anykey.MemoryFlyweight
		label := "off"
		if cached {
			cfg.Device.Cache = fullscaleCache(budget)
			label = "on"
		}
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		row := []string{label, fcount(res.Ops), fiops(res.IOPS),
			fdur(res.ReadLat.Percentile(50)), fdur(res.ReadLat.Percentile(99))}
		if cs := res.Cache; cs != nil {
			hitRate := 0.0
			if cs.Hits+cs.Misses > 0 {
				hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
			}
			row = append(row, fcount(cs.Hits), fcount(cs.Misses), fpct(hitRate),
				fcount(cs.Admitted), fcount(cs.Evicted), fbytes(cs.Bytes))
		} else {
			row = append(row, "-", "-", "-", "-", "-", "-")
		}
		ct.Rows = append(ct.Rows, row)
	}
	rep.Tables = append(rep.Tables, ct)

	// (c) The footprint sweep up to the paper's geometry. MemoryAuto engages
	// the flyweight store at ≥ 1 GiB, so these cells run exactly what a user
	// opening the full-scale device gets by default. The execution phase is
	// op-capped — warm-up (the full population load) dominates and is what
	// sizes the store.
	caps := []int{1024, 4096, 16384, 65536}
	sweepOps := int64(100000)
	if o.Quick {
		caps = []int{1024}
		sweepOps = 8000
	} else if o.MaxOps > 0 {
		sweepOps = o.MaxOps
	}
	fs := Table{Name: "(c) full-scale sweep (AnyKey+, KVSSD, MemoryAuto, paper DRAM ratio 1/1024)",
		Header: []string{"capacity", "DRAM", "keys", "ops", "IOPS",
			"live pages", "logical", "resident", "resident/logical", "raw-fallback"}}
	for _, capMB := range caps {
		cfg := o.fullscaleCfg(capMB, sweepOps)
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		row := []string{fbytes(int64(capMB) << 20), fbytes(cfg.Device.DRAMBytes),
			fcount(int64(res.Population)), fcount(res.Ops), fiops(res.IOPS)}
		fs.Rows = append(fs.Rows, append(row, footprintCols(res.Store)...))
		if capMB == caps[len(caps)-1] && res.Store.LogicalBytes > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"largest cell: %s of programmed pages held in %s resident (%.1f%%; raw mode would need the full %s)",
				fbytes(res.Store.LogicalBytes), fbytes(res.Store.ResidentBytes),
				100*float64(res.Store.ResidentBytes)/float64(res.Store.LogicalBytes),
				fbytes(res.Store.LogicalBytes)))
		}
	}
	rep.Tables = append(rep.Tables, fs)
	return rep, nil
}

// --- cluster -----------------------------------------------------------------

// clusterBase builds the standard cluster cell: every shard a 16 MB AnyKey+
// device on a 4×4 chip grid (the per-shard capacity stays constant across the
// shard sweep, so scaling is weak scaling), DRAM at the usual 1/100 of
// capacity, batches sized by RunCluster's shards×QD default.
func (o *ExpOptions) clusterBase(shards, qd int, spec workload.Spec) ClusterRunConfig {
	cfg := ClusterRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:     shards,
			QueueDepth: qd,
			Device: anykey.Options{
				Design:          anykey.DesignAnyKeyPlus,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
				DRAMBytes:       16 << 20 / 100,
				Seed:            o.Seed,
			},
		},
		BaseConfig: BaseConfig{Workload: spec, Seed: o.Seed},
	}
	// Op caps scale with the shard count so a capped sweep stays weak
	// scaling: per-shard measured work is constant as the fleet grows.
	// (Without the scaling, per-shard windows shrink as 1/N and a single
	// compaction burst on one shard dominates the slowest-shard elapsed.)
	if o.Quick {
		cfg.MaxOps = int64(shards) * 12000
	} else if o.MaxOps > 0 {
		cfg.MaxOps = int64(shards) * o.MaxOps
	}
	return cfg
}

// clusterRun executes one cluster cell through the configured runner.
func (o *ExpOptions) clusterRun(cfg ClusterRunConfig) (*ClusterResult, error) {
	res, err := o.cellRunner().clusterMeasure(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster %v x%d/%s: %w",
			cfg.Cluster.Device.Design, cfg.Cluster.Shards, cfg.Workload.Name, err)
	}
	return res, nil
}

// expCluster measures the sharded fleet: throughput scaling with shard count
// (per-shard capacity held constant), the effect of per-shard queue depth on
// batch tails, and router balance under varying Zipfian skew.
func expCluster(o ExpOptions) (*Report, error) {
	if o.Faults != nil {
		return nil, fmt.Errorf("cluster: fault injection is not supported on clusters")
	}
	rep := &Report{ID: "cluster", Title: "Sharded multi-device cluster: batched submission over N devices",
		Notes: []string{"Each shard is an independent 16 MB AnyKey+ device in its own clock domain;",
			"batches split by the router and complete at the merged (max) shard time.",
			"The shard sweep holds per-shard capacity constant (weak scaling), so ideal",
			"throughput scaling is linear in the shard count."}}
	if o.Quick {
		rep.Notes = append(rep.Notes,
			"(-quick windows are too short for scaling fidelity — a single compaction",
			"burst dominates a shard's elapsed time; reports/cluster.txt is the",
			"committed full-length run.)")
	}
	spec := mustSpec("ZippyDB")

	shardCounts := []int{1, 2, 4, 8}
	if o.Quick {
		shardCounts = []int{1, 2, 4}
	}
	scale := Table{Name: "shard scaling (QD 64, Zipfian 0.99)",
		Header: []string{"system", "shards", "ops", "IOPS", "speedup", "p95 read", "p95 batch"}}
	var baseIOPS float64
	for _, n := range shardCounts {
		res, err := o.clusterRun(o.clusterBase(n, 64, spec))
		if err != nil {
			return nil, err
		}
		if n == shardCounts[0] {
			baseIOPS = res.IOPS
		}
		speedup := "n/a"
		if baseIOPS > 0 {
			speedup = fmt.Sprintf("%.2fx", res.IOPS/baseIOPS)
		}
		scale.Rows = append(scale.Rows, []string{res.System, fmt.Sprint(n), fmt.Sprint(res.Ops),
			fiops(res.IOPS), speedup, fdur(res.ReadLat.Percentile(95)), fdur(res.BatchLat.Percentile(95))})
	}
	rep.Tables = append(rep.Tables, scale)

	qds := Table{Name: "queue depth (4 shards, Zipfian 0.99)",
		Header: []string{"QD", "IOPS", "p95 read", "p95 batch", "p95 service"}}
	for _, qd := range []int{1, 16, 64} {
		res, err := o.clusterRun(o.clusterBase(4, qd, spec))
		if err != nil {
			return nil, err
		}
		qds.Rows = append(qds.Rows, []string{fmt.Sprint(qd), fiops(res.IOPS),
			fdur(res.ReadLat.Percentile(95)), fdur(res.BatchLat.Percentile(95)),
			fdur(res.ServiceLat.Percentile(95))})
	}
	rep.Tables = append(rep.Tables, qds)

	skew := Table{Name: "router balance under skew (4 shards, QD 64)",
		Header: []string{"theta", "router", "IOPS", "hottest-shard share", "p95 batch"}}
	for _, theta := range []float64{0.6, 0.8, 0.99} {
		for _, router := range []anykey.RouterPolicy{anykey.RouteConsistent, anykey.RouteModulo} {
			cfg := o.clusterBase(4, 64, spec)
			cfg.Cluster.Router = router
			cfg.Theta = theta
			// Low-skew update streams spread garbage uniformly across
			// segments — the GC worst case — and a full 2×-capacity run
			// exhausts free blocks on this small geometry. Cap the window
			// instead, the same for every theta so the rows compare.
			if cap := int64(cfg.Cluster.Shards) * 250000; cfg.MaxOps == 0 || cfg.MaxOps > cap {
				cfg.MaxOps = cap
			}
			res, err := o.clusterRun(cfg)
			if err != nil {
				return nil, err
			}
			skew.Rows = append(skew.Rows, []string{fmt.Sprintf("%.2f", theta), res.Router,
				fiops(res.IOPS), fpct(res.HottestShare), fdur(res.BatchLat.Percentile(95))})
		}
	}
	rep.Tables = append(rep.Tables, skew)
	return rep, nil
}

// --- storm -------------------------------------------------------------------

// stormBase builds one open-loop cell: a 16 MB device on the 4×4 chip grid
// (the cluster's shard geometry — its closed-loop ZippyDB capacity at QD 64
// is ≈370–380 K IOPS, which anchors the sweep) driven by arrival-clocked
// traffic instead of a fixed op budget. The open-loop client knobs stay at
// their BaseConfig defaults (10 ms timeout, 3 retries, 2 ms SLO); only the
// horizon shrinks under -quick.
func (o *ExpOptions) stormBase(design anykey.Design, arr workload.ArrivalSpec) RunConfig {
	cfg := RunConfig{
		Device: anykey.Options{
			Design:          design,
			CapacityMB:      16,
			Channels:        4,
			ChipsPerChannel: 4,
			DRAMBytes:       16 << 20 / 100,
			Seed:            o.Seed,
			Trace:           o.Trace,
		},
		BaseConfig: BaseConfig{Workload: mustSpec("ZippyDB").WithArrival(arr), Seed: o.Seed},
	}
	cfg.Horizon = 100 * sim.Millisecond
	if o.Quick {
		cfg.Horizon = 20 * sim.Millisecond
	}
	return cfg
}

// goodFrac is the fraction of offered operations that completed within the
// end-to-end SLO (zero during the parallel planner's placeholder pass).
func goodFrac(st *OpenStats) float64 {
	if st.Offered == 0 {
		return 0
	}
	return float64(st.GoodOps) / float64(st.Offered)
}

// expStorm finds the metastable knee. The load sweep offers a flat Poisson
// stream at rates bracketing the device's closed-loop capacity: below it
// goodput tracks offered load; above it the backlog grows without bound,
// every attempt times out, the retries re-offer the same work to an
// already-saturated device, and goodput collapses. The burst probe then
// holds the mean rate fixed below capacity and concentrates it into on/off
// bursts at the same mean: a design is metastable when the burst-built
// backlog plus its retry amplification keeps goodput collapsed even though
// the mean load was sustainable (DESIGN.md §11).
func expStorm(o ExpOptions) (*Report, error) {
	if o.Faults != nil {
		return nil, fmt.Errorf("storm: fault injection is not supported on open-loop runs")
	}
	rep := &Report{ID: "storm", Title: "Open-loop overload: goodput collapse and metastability",
		Notes: []string{"Arrival-clocked ZippyDB traffic against one 16 MB device (the cluster's",
			"shard geometry). Clients time out at 10ms, retry up to 3x with capped",
			"exponential backoff, and an op is 'good' when its end-to-end latency",
			"(first arrival to final completion) meets the 2ms SLO. Goodput divides",
			"good ops by the whole phase including drain. The knee sits far below the",
			"closed-loop QD-64 capacity (~370-380 K IOPS): sustained arrivals trip",
			"flush/compaction stalls whose backlogs cross the client timeout, and",
			"from there retries re-offer the same work to a stalled device."}}

	rates := []float64{25e3, 50e3, 75e3, 100e3, 200e3, 400e3}
	if o.Quick {
		rates = []float64{50e3, 400e3}
	}
	sweep := Table{Name: "goodput vs offered load (constant arrivals)",
		Header: []string{"system", "offered/s", "offered", "done", "goodput/s",
			"good frac", "p99 read e2e", "timeouts", "retries", "dropped"}}
	var kneeNotes []string
	for _, sys := range threeSystems {
		knee := 0.0
		for _, r := range rates {
			res, err := o.run(o.stormBase(sys, workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: r}))
			if err != nil {
				return nil, err
			}
			st := res.Open
			if st == nil {
				return nil, fmt.Errorf("storm: %s @ %s produced no open-loop stats", res.System, fiops(r))
			}
			sweep.Rows = append(sweep.Rows, []string{res.System, fiops(r), fmt.Sprint(st.Offered),
				fmt.Sprint(st.Completed), fiops(st.Goodput), fpct(goodFrac(st)),
				fdur(res.ReadLat.Percentile(99)), fmt.Sprint(st.Timeouts),
				fmt.Sprint(st.Retries), fmt.Sprint(st.Dropped)})
			if knee == 0 && goodFrac(st) < 0.9 {
				knee = r
			}
		}
		if knee > 0 {
			kneeNotes = append(kneeNotes, fmt.Sprintf(
				"knee: %s collapses at %s/s offered (first rate with <90%% of offered ops good)",
				sys, fiops(knee)))
		}
	}
	rep.Tables = append(rep.Tables, sweep)
	rep.Notes = append(rep.Notes, kneeNotes...)

	// The probe holds the mean at the knee and reshapes it: the bursty and
	// diurnal shapes concentrate the same mean into a 2x peak whose on-phase
	// builds a backlog past the client timeout, and the resulting retry
	// storm (multiplied timeouts, drops, recovery long after the burst ends)
	// is the metastable signature a mean-preserving shape change exposes.
	mean, period := 100e3, 50*sim.Millisecond
	if o.Quick {
		mean, period = 100e3, 10*sim.Millisecond
	}
	probe := Table{Name: fmt.Sprintf("burst probe (mean %s/s, burst=2.0, period %v)", fiops(mean), period),
		Header: []string{"system", "arrival", "goodput/s", "good frac", "timeouts",
			"retries", "dropped", "recover", "verdict"}}
	shapes := []workload.ArrivalSpec{
		{Shape: workload.ArrivalConstant, Rate: mean},
		{Shape: workload.ArrivalBursty, Rate: mean, Burst: 2.0, Period: period},
		{Shape: workload.ArrivalDiurnal, Rate: mean, Burst: 2.0, Period: period},
	}
	for _, sys := range threeSystems {
		var constGoodput float64
		for i, a := range shapes {
			res, err := o.run(o.stormBase(sys, a))
			if err != nil {
				return nil, err
			}
			st := res.Open
			if st == nil {
				return nil, fmt.Errorf("storm: %s probe %s produced no open-loop stats", res.System, a)
			}
			verdict := "-"
			if i == 0 {
				constGoodput = st.Goodput
			} else if constGoodput > 0 && st.Goodput < 0.9*constGoodput {
				verdict = "metastable"
			} else if constGoodput > 0 {
				verdict = "stable"
			}
			probe.Rows = append(probe.Rows, []string{res.System, a.Shape.String(),
				fiops(st.Goodput), fpct(goodFrac(st)), fmt.Sprint(st.Timeouts),
				fmt.Sprint(st.Retries), fmt.Sprint(st.Dropped), fdur(st.RecoverTime), verdict})
		}
	}
	rep.Tables = append(rep.Tables, probe)
	return rep, nil
}

// --- fleet -------------------------------------------------------------------

// fleetBase builds one replicated-fleet cell: the cluster experiment's shard
// geometry (16 MB devices on a 4×4 chip grid, DRAM at 1/100) with a
// replication factor, driven by arrival-clocked traffic over the storm
// horizon. The scenario schedule (kill / rebuild / add-shard fractions) is
// left zero for the caller to fill.
func (o *ExpOptions) fleetBase(design anykey.Design, shards int, repl anykey.ReplicationOptions, arr workload.ArrivalSpec) FleetRunConfig {
	cfg := FleetRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:      shards,
			QueueDepth:  64,
			Replication: repl,
			Device: anykey.Options{
				Design:          design,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
				DRAMBytes:       16 << 20 / 100,
				Seed:            o.Seed,
			},
		},
		BaseConfig: BaseConfig{Workload: mustSpec("ZippyDB").WithArrival(arr), Seed: o.Seed},
	}
	cfg.Horizon = 100 * sim.Millisecond
	if o.Quick {
		cfg.Horizon = 20 * sim.Millisecond
	}
	return cfg
}

// fleetRun executes one fleet cell through the configured runner.
func (o *ExpOptions) fleetRun(cfg FleetRunConfig) (*FleetResult, error) {
	res, err := o.cellRunner().fleetMeasure(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet %v x%d R=%d/%s: %w",
			cfg.Cluster.Device.Design, cfg.Cluster.Shards,
			cfg.Cluster.Replication.Factor, cfg.Workload.Name, err)
	}
	return res, nil
}

// expFleet measures the elastic replicated fleet. The durability table kills
// one of four member devices mid-storm at R ∈ {1,2,3} and rebuilds it from
// the survivors while traffic keeps arriving: the oracle then reads back
// every acknowledged write. At R=1 the kill provably loses acknowledged data;
// at R≥2/W=2 it must lose none, and the read-latency windows around the kill
// show the blast radius the outage and the rebuild stream leave on the tail.
// The reshard table grows the ring 4→5 under live load and scores the
// migration by moved fraction, double-read fallbacks and verified reads.
func expFleet(o ExpOptions) (*Report, error) {
	if o.Faults != nil {
		return nil, fmt.Errorf("fleet: fault injection is not supported on fleet runs")
	}
	rep := &Report{ID: "fleet", Title: "Elastic replicated fleet: kill-one-device durability and live resharding",
		Notes: []string{"Four 16 MB member devices (the cluster shard geometry), ZippyDB traffic on",
			"an open arrival clock. Keys replicate to R distinct ring members; a write",
			"acks when W fully-alive replicas complete, a read serves from the first",
			"alive owner and falls back down the walk. Mid-run one member dies (power",
			"cut), then a replacement is refilled from the survivors' scans between",
			"client ops. 'lost acked' counts acknowledged writes the fleet could not",
			"serve afterwards — the durability contract per R/W. The reshard table",
			"adds a fifth member under the same live load; reads double-read through",
			"the old ring until the migration commits, so none should fail or return",
			"stale payloads ('verified' counts fresh reads checked byte-for-byte)."}}

	systems := threeSystems
	factors := []int{1, 2, 3}
	if o.Quick {
		systems = []anykey.Design{anykey.DesignAnyKeyPlus}
		factors = []int{1, 2}
	}
	arr := workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: 50e3}

	dur := Table{Name: "kill-one-device durability (4 members, kill@40%, rebuild@55% of horizon)",
		Header: []string{"system", "R", "W", "acked", "lost", "quorum-fail", "read-fallback",
			"rebuilt keys", "rebuild time", "p99 pre", "p99 outage", "p99 post", "goodput/s"}}
	for _, sys := range systems {
		for _, r := range factors {
			w := r
			if w > 2 {
				w = 2
			}
			cfg := o.fleetBase(sys, 4, anykey.ReplicationOptions{Factor: r, WriteQuorum: w}, arr)
			cfg.KillAtFrac, cfg.KillShard, cfg.KillCause = 0.4, 1, anykey.KillPowerCut
			cfg.RebuildAtFrac = 0.55
			res, err := o.fleetRun(cfg)
			if err != nil {
				return nil, err
			}
			dur.Rows = append(dur.Rows, []string{res.System, fmt.Sprint(res.R), fmt.Sprint(res.W),
				fmt.Sprint(res.AckedIDs), fmt.Sprint(res.LostAcked),
				fmt.Sprint(res.Repl.QuorumFailures), fmt.Sprint(res.Repl.ReadFallbacks),
				fmt.Sprint(res.RebuildKeys), fdur(res.RebuildDur),
				fdur(res.ReadPre.Percentile(99)), fdur(res.ReadOutage.Percentile(99)),
				fdur(res.ReadPost.Percentile(99)), fiops(openGoodput(res.Open))})
			if res.R >= 2 && res.W >= 2 && res.LostAcked > 0 {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"WARNING: %s lost %d acknowledged writes at R=%d/W=%d — durability contract violated",
					res.System, res.LostAcked, res.R, res.W))
			}
		}
	}
	rep.Tables = append(rep.Tables, dur)

	shard := Table{Name: "live reshard: AddShard 4→5 under load (R=2/W=2, add@30% of horizon)",
		Header: []string{"system", "population", "migrated", "moved frac", "migration time",
			"read-fallback", "verified", "lost", "p99 read"}}
	for _, sys := range systems {
		cfg := o.fleetBase(sys, 4, anykey.ReplicationOptions{Factor: 2, WriteQuorum: 2}, arr)
		cfg.AddShardAtFrac = 0.3
		res, err := o.fleetRun(cfg)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if res.Population > 0 {
			frac = float64(res.Repl.MigratedKeys) / float64(res.Population)
		}
		shard.Rows = append(shard.Rows, []string{res.System, fmt.Sprint(res.Population),
			fmt.Sprint(res.Repl.MigratedKeys), fpct(frac), fdur(res.MigrateDur),
			fmt.Sprint(res.Repl.ReadFallbacks), fmt.Sprint(res.Verified),
			fmt.Sprint(res.LostAcked), fdur(res.ReadLat.Percentile(99))})
	}
	rep.Tables = append(rep.Tables, shard)
	return rep, nil
}

// openGoodput is nil-safe goodput for report rows (the parallel planner's
// placeholder pass carries an empty scorecard).
func openGoodput(st *OpenStats) float64 {
	if st == nil {
		return 0
	}
	return st.Goodput
}

// --- txn: cross-shard transactions -----------------------------------------

// txnBase builds the standard transaction cell: the cluster experiment's
// 4 × 16 MB AnyKey+ fleet, a 4096-counter bank, 8 clients × 2 ops per wave.
func (o *ExpOptions) txnBase(mode string, theta, wf float64) TxnRunConfig {
	cfg := TxnRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:     4,
			QueueDepth: 64,
			Device: anykey.Options{
				Design:          anykey.DesignAnyKeyPlus,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
				DRAMBytes:       16 << 20 / 100,
				Seed:            o.Seed,
			},
		},
		Mode:  mode,
		Theta: theta, WriteRatio: wf,
		Seed: o.Seed,
	}
	if o.Quick {
		cfg.Waves = 120
	} else {
		// Full-length cells run 400 waves with a durable sync per commit;
		// the write-heavy cells outgrow the quick geometry's flash before
		// GC can help, so full mode quadruples the per-shard device.
		cfg.Cluster.Device.CapacityMB = 64
		cfg.Cluster.Device.DRAMBytes = 64 << 20 / 100
	}
	return cfg
}

// txnRun executes one transaction cell through the configured runner.
func (o *ExpOptions) txnRun(cfg TxnRunConfig) (*TxnResult, error) {
	res, err := o.cellRunner().txnMeasure(cfg)
	if err != nil {
		return nil, fmt.Errorf("txn %s θ=%g wf=%g: %w", cfg.Mode, cfg.Theta, cfg.WriteRatio, err)
	}
	return res, nil
}

// expTxn sweeps Zipfian skew and write fraction for serialized OCC vs
// split-phase concurrency control, and measures the 2PC overhead of atomic
// batches against best-effort MultiPut.
func expTxn(o ExpOptions) (*Report, error) {
	if o.Faults != nil {
		return nil, fmt.Errorf("txn: fault injection is not supported on clusters")
	}
	rep := &Report{ID: "txn", Title: "Cross-shard transactions: OCC vs hot-key split phase",
		Notes: []string{"Counter-increment transactions over a 4096-key Zipfian bank, 4 shards.",
			"occ validates every commit (hot-key splitting off); split moves keys past",
			"4 validation conflicts into a batched commutative phase (doppel-style):",
			"increments buffer per key and merge as one write at phase close, so the",
			"hottest keys stop paying per-op reads, validation, and conflict retries.",
			"Every cell ends with an exactness oracle: each counter must equal the sum",
			"of its committed increments (lost updates and phantom merges both fail)."}}

	knee := Table{Name: "goodput knee (theta x write-fraction)",
		Header: []string{"theta", "writes", "mode", "txns", "committed", "conflicts", "retries",
			"aborts", "abort-rate", "merges", "hot-keys", "goodput(txn/s)", "vs-occ"}}
	for _, theta := range []float64{0.6, 0.99} {
		for _, wf := range []float64{0.2, 0.5, 0.95} {
			var occGood float64
			for _, mode := range []string{TxnModeOCC, TxnModeSplit} {
				res, err := o.txnRun(o.txnBase(mode, theta, wf))
				if err != nil {
					return nil, err
				}
				if mode == TxnModeOCC {
					occGood = res.GoodTxnPerSec
				}
				vs := "1.00x"
				if mode == TxnModeSplit && occGood > 0 {
					vs = fmt.Sprintf("%.2fx", res.GoodTxnPerSec/occGood)
				}
				abortRate := 0.0
				if res.Txns > 0 {
					abortRate = float64(res.Aborted) / float64(res.Txns)
				}
				knee.Rows = append(knee.Rows, []string{
					fmt.Sprint(theta), fmt.Sprint(wf), mode,
					fmt.Sprint(res.Txns), fmt.Sprint(res.Committed),
					fmt.Sprint(res.Conflicts), fmt.Sprint(res.Retries),
					fmt.Sprint(res.Aborted), fpct(abortRate),
					fmt.Sprint(res.Layer.SplitMerges), fmt.Sprint(res.Layer.HotKeys),
					fiops(res.GoodTxnPerSec), vs})
			}
		}
	}
	rep.Tables = append(rep.Tables, knee)

	over := Table{Name: "atomic batch overhead (16-op disjoint batches)",
		Header: []string{"mode", "batches", "ops", "prepares", "p50 batch", "p95 batch", "ops/s", "vs-besteffort"}}
	var baseOps float64
	for _, mode := range []string{TxnModeBestEffort, TxnModeAtomic} {
		res, err := o.txnRun(o.txnBase(mode, 0.99, 0.95))
		if err != nil {
			return nil, err
		}
		if mode == TxnModeBestEffort {
			baseOps = res.OpsPerSec
		}
		vs := "1.00x"
		if mode == TxnModeAtomic && baseOps > 0 {
			vs = fmt.Sprintf("%.2fx", res.OpsPerSec/baseOps)
		}
		over.Rows = append(over.Rows, []string{mode, fmt.Sprint(res.Batches),
			fmt.Sprint(res.Committed), fmt.Sprint(res.Layer.Prepares),
			fdur(res.BatchLat.Percentile(50)), fdur(res.BatchLat.Percentile(95)),
			fiops(res.OpsPerSec), vs})
	}
	rep.Tables = append(rep.Tables, over)

	routers := Table{Name: "router invariance (theta 0.99, writes 0.95)",
		Header: []string{"router", "mode", "committed", "conflicts", "merges", "goodput(txn/s)"}}
	for _, router := range []anykey.RouterPolicy{anykey.RouteConsistent, anykey.RouteModulo} {
		for _, mode := range []string{TxnModeOCC, TxnModeSplit} {
			cfg := o.txnBase(mode, 0.99, 0.95)
			cfg.Cluster.Router = router
			res, err := o.txnRun(cfg)
			if err != nil {
				return nil, err
			}
			routers.Rows = append(routers.Rows, []string{router.String(), mode,
				fmt.Sprint(res.Committed), fmt.Sprint(res.Conflicts),
				fmt.Sprint(res.Layer.SplitMerges), fiops(res.GoodTxnPerSec)})
		}
	}
	rep.Tables = append(rep.Tables, routers)
	return rep, nil
}
