package harness

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anykey/internal/sim"
	"anykey/internal/stats"
)

// Table is one formatted result table of a report.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Report is the output of one experiment: the rows/series the paper's
// corresponding table or figure shows.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "   %s\n", n)
	}
	for ti := range r.Tables {
		t := &r.Tables[ti]
		sb.WriteByte('\n')
		if t.Name != "" {
			fmt.Fprintf(&sb, "-- %s --\n", t.Name)
		}
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			}
			sb.WriteByte('\n')
		}
		writeRow(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	return sb.String()
}

// --- formatting helpers ---------------------------------------------------

func fdur(d sim.Duration) string { return d.String() }

func fcount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

func fbytes(n int64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fiops(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

func fpct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// latRow renders the canonical percentile row for a latency histogram. The
// percentiles come from one Quantiles walk, so every column of the row —
// and any blame report cut from the same histogram — agrees by
// construction.
func latRow(h *stats.Histogram) []string {
	qs := h.Quantiles(50, 90, 95, 99, 99.9)
	row := make([]string, 0, len(qs)+1)
	for _, q := range qs {
		row = append(row, fdur(q))
	}
	return append(row, fdur(h.Max()))
}

// latHeader matches latRow.
var latHeader = []string{"p50", "p90", "p95", "p99", "p99.9", "max"}

// cdfTable renders the inverse CDF (latency at each cumulative fraction) of
// several systems side by side — the series the paper's CDF figures plot.
func cdfTable(name string, labels []string, hs []*stats.Histogram) Table {
	fracs := []float64{10, 25, 50, 75, 90, 95, 99, 99.9, 99.99, 100}
	t := Table{Name: name, Header: append([]string{"cumulative"}, labels...)}
	cols := make([][]sim.Duration, len(hs))
	for i, h := range hs {
		cols[i] = h.Quantiles(fracs...)
	}
	for pi, p := range fracs {
		row := []string{fmt.Sprintf("%.2f%%", p)}
		for _, col := range cols {
			row = append(row, fdur(col[pi]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// WriteFiles saves the report under dir: a formatted text file plus one CSV
// per table, named <id>.txt and <id>[-<n>-<slug>].csv, for plotting
// pipelines.
func (r *Report) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, r.ID+".txt"), []byte(r.String()), 0o644); err != nil {
		return err
	}
	for i, t := range r.Tables {
		name := r.ID
		if len(r.Tables) > 1 {
			name = fmt.Sprintf("%s-%d-%s", r.ID, i+1, slug(t.Name))
		}
		var sb strings.Builder
		w := csv.NewWriter(&sb)
		if err := w.Write(t.Header); err != nil {
			return err
		}
		if err := w.WriteAll(t.Rows); err != nil {
			return err
		}
		w.Flush()
		if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// slug reduces a table name to a filesystem-safe fragment.
func slug(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case sb.Len() > 0 && sb.String()[sb.Len()-1] != '-':
			sb.WriteByte('-')
		}
	}
	return strings.Trim(sb.String(), "-")
}
