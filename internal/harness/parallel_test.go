package harness

import (
	"fmt"
	"testing"

	"anykey"
)

// parTestExperiment builds a small multi-cell experiment exercising both
// cell kinds (measurement runs and fill-to-full) plus result-derived rows.
func parTestExperiment() Experiment {
	return Experiment{ID: "par-test", Paper: "test", Run: func(o ExpOptions) (*Report, error) {
		rep := &Report{ID: "par-test", Title: "parallel-runner equivalence fixture"}
		t := Table{Header: append([]string{"workload", "system", "IOPS"}, latHeader...)}
		for _, wl := range []string{"KVSSD", "YCSB"} {
			spec := mustSpec(wl)
			for _, sys := range threeSystems {
				cfg := RunConfig{
					Device:     anykey.Options{Design: sys, CapacityMB: 32, Seed: o.Seed},
					BaseConfig: BaseConfig{Workload: spec, FillFrac: 0.2, MaxOps: 3000, Seed: o.Seed},
				}
				res, err := o.run(cfg)
				if err != nil {
					return nil, err
				}
				row := []string{wl, res.System, fiops(res.IOPS)}
				t.Rows = append(t.Rows, append(row, latRow(&res.ReadLat)...))
			}
		}
		fr, err := o.fill(anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 32, Seed: o.Seed}, mustSpec("KVSSD"))
		if err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("fill utilization %.3f over %d pairs", fr.Utilization, fr.Pairs))
		rep.Tables = append(rep.Tables, t)
		return rep, nil
	}}
}

// The parallel runner must produce a byte-identical report to the serial
// path: same cells, same numbers, same formatting.
func TestParallelMatchesSerial(t *testing.T) {
	exp := parTestExperiment()
	opt := ExpOptions{Seed: 1}
	opt.defaults()

	serial, err := exp.Run(opt)
	if err != nil {
		t.Fatal(err)
	}

	popt := opt
	popt.Parallel = 4
	par, err := runParallel(exp, popt)
	if err != nil {
		t.Fatal(err)
	}

	if serial.String() != par.String() {
		t.Fatalf("parallel report differs from serial:\n-- serial --\n%s\n-- parallel --\n%s",
			serial.String(), par.String())
	}
}

// RunExperiment with Parallel set must agree with the serial registry path
// on a real (quick) experiment end to end.
func TestRunExperimentParallelRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment cells are slow")
	}
	base := ExpOptions{Quick: true, Seed: 1}
	serial, err := RunExperiment("fig19", base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	got, err := RunExperiment("fig19", par)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != got.String() {
		t.Fatalf("fig19 parallel report differs from serial:\n-- serial --\n%s\n-- parallel --\n%s",
			serial.String(), got.String())
	}
}

// Cell errors must surface through replay with the experiment's own
// wrapping, not crash the pool.
func TestParallelSurfacesCellErrors(t *testing.T) {
	exp := Experiment{ID: "par-err", Paper: "test", Run: func(o ExpOptions) (*Report, error) {
		cfg := RunConfig{
			// Impossible geometry: rejected by anykey.Open inside Run.
			Device:     anykey.Options{Design: anykey.DesignAnyKeyPlus, CapacityMB: 8, Channels: 8, ChipsPerChannel: 8},
			BaseConfig: BaseConfig{Workload: mustSpec("KVSSD")},
		}
		if _, err := o.run(cfg); err != nil {
			return nil, err
		}
		return &Report{ID: "par-err"}, nil
	}}
	opt := ExpOptions{Seed: 1}
	opt.defaults()
	opt.Parallel = 2
	if _, err := runParallel(exp, opt); err == nil {
		t.Fatal("cell error did not surface through the parallel runner")
	}
}

// A fault plan rides along as a pointer inside every cell's Options; the
// plan and replay passes must still agree on cell identity (the pointer is
// shared, never copied per pass) and the injected faults must be identical.
func TestParallelMatchesSerialWithFaults(t *testing.T) {
	exp := parTestExperiment()
	opt := ExpOptions{Seed: 1, Faults: &anykey.FaultPlan{Seed: 3, ReadErrorRate: 0.02}}
	opt.defaults()

	serial, err := exp.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	popt := opt
	popt.Parallel = 4
	par, err := runParallel(exp, popt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("faulted parallel report differs from serial:\n-- serial --\n%s\n-- parallel --\n%s",
			serial.String(), par.String())
	}
}
