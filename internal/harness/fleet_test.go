package harness

import (
	"fmt"
	"testing"

	"anykey"
	"anykey/internal/sim"
	"anykey/internal/workload"
)

// smallFleetCfg is a fast fleet scenario: four small members, a thin key
// population (FillFrac 0.02 keeps warm-up to a few thousand keys), a 4 ms
// storm at 50 K/s with a heavy write mix, kill member 1 at 40% and rebuild
// from 55%.
func smallFleetCfg(factor, quorum int) FleetRunConfig {
	cfg := FleetRunConfig{
		Cluster: anykey.ClusterOptions{
			Shards:      4,
			QueueDepth:  16,
			Replication: anykey.ReplicationOptions{Factor: factor, WriteQuorum: quorum},
			Device: anykey.Options{
				Design:          anykey.DesignAnyKeyPlus,
				CapacityMB:      16,
				Channels:        4,
				ChipsPerChannel: 4,
				DRAMBytes:       16 << 20 / 100,
				Seed:            7,
			},
		},
		BaseConfig: BaseConfig{
			Workload: mustSpec("ZippyDB").WithArrival(
				workload.ArrivalSpec{Shape: workload.ArrivalConstant, Rate: 50e3}),
			Seed:       7,
			FillFrac:   0.02,
			WriteRatio: 0.5,
		},
	}
	cfg.Horizon = 4 * sim.Millisecond
	cfg.KillAtFrac, cfg.KillShard, cfg.KillCause = 0.4, 1, anykey.KillPowerCut
	cfg.RebuildAtFrac = 0.55
	return cfg
}

// The durability contract: at R=2/W=2 killing one of four devices mid-storm
// loses zero acknowledged writes (the oracle reads back every acked key),
// while the identical scenario at R=1 provably loses data.
func TestFleetKillDurability(t *testing.T) {
	res, err := RunFleet(smallFleetCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedIDs == 0 {
		t.Fatal("no acknowledged writes — scenario too short to mean anything")
	}
	if res.LostAcked != 0 {
		t.Fatalf("R=2/W=2 lost %d acknowledged writes (of %d acked, %d tainted)",
			res.LostAcked, res.AckedIDs, res.TaintedIDs)
	}
	if res.CleanOK == 0 {
		t.Fatal("oracle verified no clean keys")
	}
	if res.Repl.Rebuilds != 1 || res.RebuildKeys == 0 {
		t.Fatalf("rebuild did not run: rebuilds=%d keys=%d", res.Repl.Rebuilds, res.RebuildKeys)
	}
	if res.Repl.DeadMembers != 0 {
		t.Fatalf("member still dead after rebuild: %+v", res.Repl)
	}
	if res.Repl.ReadFallbacks == 0 {
		t.Error("no read served by a fallback replica during the outage")
	}

	lone, err := RunFleet(smallFleetCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if lone.LostAcked == 0 {
		t.Fatalf("R=1 lost no acknowledged writes across a device kill (acked=%d) — oracle is blind",
			lone.AckedIDs)
	}
}

// Live reshard under load: adding a fifth member mid-storm migrates a
// bounded fraction, every fresh read still verifies, and no acked write is
// lost.
func TestFleetAddShardUnderLoad(t *testing.T) {
	cfg := smallFleetCfg(2, 2)
	cfg.KillAtFrac, cfg.RebuildAtFrac = 0, 0 // reshard only
	cfg.AddShardAtFrac = 0.3
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repl.MigratedKeys == 0 {
		t.Fatal("AddShard migrated no keys")
	}
	if frac := float64(res.Repl.MigratedKeys) / float64(res.Population); frac > 0.8 {
		t.Errorf("migration moved %.0f%% of the population — not a bounded reshard", frac*100)
	}
	if res.Repl.Epoch != 1 {
		t.Errorf("migration epoch = %d, want 1 (committed)", res.Repl.Epoch)
	}
	if res.Verified == 0 {
		t.Error("no fresh reads verified during the reshard")
	}
	if res.LostAcked != 0 {
		t.Errorf("reshard lost %d acknowledged writes", res.LostAcked)
	}
	if res.MigrateDur <= 0 {
		t.Errorf("migration duration %v", res.MigrateDur)
	}
}

// The golden-checksum gate for the fleet path: a mini-experiment covering
// kill+rebuild at R∈{1,2} and a live reshard must render the byte-identical
// report serially and through the plan/execute/replay parallel runner —
// including the migration end state the oracle reads back.
func TestFleetSerialParallelIdentical(t *testing.T) {
	body := func(o ExpOptions) (*Report, error) {
		rep := &Report{ID: "fleet-mini", Title: "fleet determinism gate"}
		tb := Table{Name: "cells", Header: []string{"system", "acked", "lost", "clean",
			"migrated", "rebuilt", "fallbacks", "p99 read", "ops"}}
		cfgs := []FleetRunConfig{smallFleetCfg(1, 1), smallFleetCfg(2, 2)}
		reshard := smallFleetCfg(2, 2)
		reshard.KillAtFrac, reshard.RebuildAtFrac = 0, 0
		reshard.AddShardAtFrac = 0.3
		cfgs = append(cfgs, reshard)
		for _, cfg := range cfgs {
			res, err := o.fleetRun(cfg)
			if err != nil {
				return nil, err
			}
			tb.Rows = append(tb.Rows, []string{res.System, fmt.Sprint(res.AckedIDs),
				fmt.Sprint(res.LostAcked), fmt.Sprint(res.CleanOK),
				fmt.Sprint(res.Repl.MigratedKeys), fmt.Sprint(res.RebuildKeys),
				fmt.Sprint(res.Repl.ReadFallbacks), fdur(res.ReadLat.Percentile(99)),
				fmt.Sprint(res.Ops)})
		}
		rep.Tables = append(rep.Tables, tb)
		return rep, nil
	}
	e := Experiment{ID: "fleet-mini", Paper: "determinism", Run: body}

	serial, err := e.Run(ExpOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runParallel(e, ExpOptions{Seed: 7, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("serial and parallel fleet reports diverge:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), par.String())
	}
}
