package harness

import (
	"strings"
	"testing"
)

// TestFullscaleReportGoldenDeterminism pins the fullscale report to the
// repo-wide contract: byte-identical across runs and at every -parallel.
// fullscale is registry-Serial (its cells share the process-global payload
// intern registry, whose eviction pattern concurrent cells would perturb),
// so the -parallel run must take the serial path and print the same bytes.
func TestFullscaleReportGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick fullscale experiment three times")
	}
	first, err := RunExperiment("fullscale", ExpOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunExperiment("fullscale", ExpOptions{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunExperiment("fullscale", ExpOptions{Quick: true, Seed: 1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := first.String(), again.String(), parallel.String()
	if a != b {
		t.Fatalf("two serial runs diverged\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a != c {
		t.Fatalf("serial and -parallel reports differ\n--- serial ---\n%s\n--- parallel ---\n%s", a, c)
	}
	if !strings.Contains(a, "equivalence: raw and flyweight ran identical schedules") {
		t.Fatalf("equivalence note missing — raw and flyweight cells diverged:\n%s", a)
	}
}
