package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"anykey/internal/core"
	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// freshShards builds n small independent AnyKey+ devices.
func freshShards(t *testing.T, n int) []device.KVSSD {
	t.Helper()
	devs := make([]device.KVSSD, 0, n)
	for i := 0; i < n; i++ {
		geo := nand.Geometry{Channels: 4, ChipsPerChannel: 4, BlocksPerChip: 4, PagesPerBlock: 64, PageSize: 8192}
		d, err := core.New(core.Config{Geometry: geo, Plus: true, Seed: int64(1 + i)})
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}
	return devs
}

func freshCluster(t *testing.T, shards int, cfg Config) *Cluster {
	t.Helper()
	c, err := New(freshShards(t, shards), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i))
	}
	return keys
}

func testValues(n int) [][]byte {
	vals := make([][]byte, n)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('a' + i%26)}, 64)
	}
	return vals
}

func TestRoutingDeterministicAndTotal(t *testing.T) {
	for _, policy := range []Policy{RouteConsistent, RouteModulo} {
		c := freshCluster(t, 4, Config{Policy: policy})
		keys := testKeys(2000)
		counts := make([]int, c.Shards())
		for _, k := range keys {
			s := c.ShardFor(k)
			if s < 0 || s >= c.Shards() {
				t.Fatalf("%v: shard %d out of range", policy, s)
			}
			if again := c.ShardFor(k); again != s {
				t.Fatalf("%v: key routed to %d then %d", policy, s, again)
			}
			counts[s]++
		}
		// Both policies should spread a uniform keyspace reasonably: no
		// shard empty, no shard over half the keys.
		for s, n := range counts {
			if n == 0 {
				t.Errorf("%v: shard %d received no keys (counts %v)", policy, s, counts)
			}
			if n > len(keys)/2 {
				t.Errorf("%v: shard %d received %d/%d keys", policy, s, n, len(keys))
			}
		}
	}
}

func TestRingStableAcrossInstances(t *testing.T) {
	a := freshCluster(t, 4, Config{})
	b := freshCluster(t, 4, Config{})
	for _, k := range testKeys(500) {
		if a.ShardFor(k) != b.ShardFor(k) {
			t.Fatalf("two identically configured clusters route %q differently", k)
		}
	}
}

func TestMultiPutGetRoundTrip(t *testing.T) {
	c := freshCluster(t, 4, Config{QueueDepth: 8})
	keys, vals := testKeys(256), testValues(256)

	pr, err := c.MultiPut(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if pr.Done < pr.Start || pr.Latency() < 0 {
		t.Fatalf("batch span inverted: start %v done %v", pr.Start, pr.Done)
	}

	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gr.Errs[i] != nil {
			t.Fatalf("get %q: %v", keys[i], gr.Errs[i])
		}
		if !bytes.Equal(gr.Completions[i].Value, vals[i]) {
			t.Fatalf("get %q returned wrong value", keys[i])
		}
		if gr.Shards[i] != c.ShardFor(keys[i]) {
			t.Fatalf("completion shard %d != routed shard", gr.Shards[i])
		}
	}
	// Batch Done must be the max of per-op completion times.
	var max sim.Time
	for _, comp := range gr.Completions {
		if comp.Done > max {
			max = comp.Done
		}
	}
	if gr.Done != max {
		t.Fatalf("batch Done %v != max completion %v", gr.Done, max)
	}
}

func TestMultiGetValuesSurviveLaterOps(t *testing.T) {
	c := freshCluster(t, 2, Config{})
	keys, vals := testKeys(64), testValues(64)
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the devices so any device-owned buffers get reused…
	if _, err := c.MultiPut(keys, testValues(64)); err != nil {
		t.Fatal(err)
	}
	// …then check the batch's values are still the originals.
	for i := range keys {
		if !bytes.Equal(gr.Completions[i].Value, vals[i]) {
			t.Fatalf("value %d mutated after later batch", i)
		}
	}
}

func TestMultiGetMissReportsNotFound(t *testing.T) {
	c := freshCluster(t, 4, Config{})
	keys, vals := testKeys(8), testValues(8)
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	probe := append([][]byte{}, keys[:4]...)
	probe = append(probe, []byte("absent-1"), []byte("absent-2"))
	gr, err := c.MultiGet(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if gr.Errs[i] != nil {
			t.Fatalf("present key %d: %v", i, gr.Errs[i])
		}
	}
	for i := 4; i < 6; i++ {
		if !errors.Is(gr.Errs[i], kv.ErrNotFound) {
			t.Fatalf("absent key %d: got %v, want ErrNotFound", i, gr.Errs[i])
		}
		if !errors.Is(gr.Errs[i], ErrNotFound) {
			t.Fatalf("absent key %d: cluster.ErrNotFound mismatch", i)
		}
	}
}

func TestBatchDuplicateKeysLastWriteWins(t *testing.T) {
	c := freshCluster(t, 4, Config{})
	k := []byte("dup-key")
	_, err := c.MultiPut([][]byte{k, k}, [][]byte{[]byte("first"), []byte("second")})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := c.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(comp.Value) != "second" {
		t.Fatalf("duplicate key resolved to %q, want later write", comp.Value)
	}
}

func TestMultiDelete(t *testing.T) {
	c := freshCluster(t, 4, Config{})
	keys, vals := testKeys(32), testValues(32)
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	dr, err := c.MultiDelete(keys[:16])
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.FirstErr(); err != nil {
		t.Fatal(err)
	}
	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if i < 16 && !errors.Is(gr.Errs[i], ErrNotFound) {
			t.Fatalf("deleted key %d still readable (%v)", i, gr.Errs[i])
		}
		if i >= 16 && gr.Errs[i] != nil {
			t.Fatalf("surviving key %d: %v", i, gr.Errs[i])
		}
	}
}

func TestMultiPutLengthMismatch(t *testing.T) {
	c := freshCluster(t, 2, Config{})
	if _, err := c.MultiPut(testKeys(3), testValues(2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// runWorkload drives a deterministic mixed batch workload and returns a
// transcript of every completion instant and the final merged stats.
func runWorkload(t *testing.T, workers int) (string, Stats) {
	t.Helper()
	c := freshCluster(t, 4, Config{QueueDepth: 16, Workers: workers})
	keys, vals := testKeys(512), testValues(512)
	var sb bytes.Buffer
	for round := 0; round < 4; round++ {
		pr, err := c.MultiPut(keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := c.MultiGet(keys)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "round %d: put [%d,%d] get [%d,%d]\n",
			round, pr.Start, pr.Done, gr.Start, gr.Done)
		for i, comp := range gr.Completions {
			fmt.Fprintf(&sb, "%d:%d:%d ", i, comp.Done, gr.Shards[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String(), c.CollectStats()
}

func TestWorkersBitIdentical(t *testing.T) {
	serial, st1 := runWorkload(t, 1)
	parallel, st4 := runWorkload(t, 4)
	if serial != parallel {
		t.Fatal("Workers=4 produced a different completion transcript than Workers=1")
	}
	if st1.Ops != st4.Ops || st1.Now != st4.Now || st1.LiveKeys != st4.LiveKeys {
		t.Fatalf("stats diverge: %+v vs %+v", st1, st4)
	}
	if st1.Flash != st4.Flash {
		t.Fatal("flash counters diverge between Workers settings")
	}
}

func TestStatsRollup(t *testing.T) {
	c := freshCluster(t, 4, Config{QueueDepth: 4})
	keys, vals := testKeys(256), testValues(256)
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MultiGet(keys); err != nil {
		t.Fatal(err)
	}
	st := c.CollectStats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("shard count wrong: %+v", st)
	}
	if st.Ops != c.Ops() || st.Ops != 512 {
		t.Fatalf("ops rollup %d, want 512", st.Ops)
	}
	if st.LiveKeys != 256 {
		t.Fatalf("live keys rollup %d, want 256", st.LiveKeys)
	}
	var ops, keysSum int64
	var maxNow sim.Time
	for _, ss := range st.PerShard {
		ops += ss.Ops
		keysSum += ss.LiveKeys
		if ss.Now > maxNow {
			maxNow = ss.Now
		}
		if ss.Ops == 0 {
			t.Errorf("shard %d carried no ops", ss.Shard)
		}
	}
	if ops != st.Ops || keysSum != st.LiveKeys || maxNow != st.Now {
		t.Fatalf("per-shard rows do not sum to rollup")
	}
	if got := st.QueueWait.Count() + st.Service.Count(); got == 0 {
		t.Fatal("merged breakdown histograms empty")
	}
	if st.ReadAccesses.Count() == 0 {
		t.Fatal("merged read-access histogram empty")
	}
}

func TestClockDomainsIndependent(t *testing.T) {
	c := freshCluster(t, 2, Config{})
	// Route every op to one shard: the other shard's clock must not move.
	k := []byte("pinned")
	target := c.ShardFor(k)
	other := 1 - target
	for i := 0; i < 32; i++ {
		if _, err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Engine(other).Now(); got != 0 {
		t.Fatalf("idle shard's clock advanced to %v", got)
	}
	if c.Now() != c.Engine(target).Now() {
		t.Fatal("cluster clock is not the max over shard clocks")
	}
	if c.Now() == 0 {
		t.Fatal("busy shard's clock did not advance")
	}
}

func TestSyncBarrier(t *testing.T) {
	c := freshCluster(t, 4, Config{QueueDepth: 8})
	keys, vals := testKeys(128), testValues(128)
	if _, err := c.MultiPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	done, err := c.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if done < c.Barrier() {
		t.Fatal("sync completed before the cluster barrier")
	}
	gr, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := gr.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty device list accepted")
	}
	devs := freshShards(t, 2)
	if _, err := New(devs, Config{Policy: Policy(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(devs, Config{Tracers: []*trace.Tracer{nil}}); err == nil {
		t.Fatal("tracer/shard count mismatch accepted")
	}
	if Policy(99).String() == RouteModulo.String() {
		t.Fatal("policy names collide")
	}
}
