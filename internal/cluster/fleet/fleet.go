// Package fleet is the elastic, replicated layer over the simulated KV-SSD
// shards: the same consistent-hash ring internal/cluster routes with, but
// with the ring's successor walk yielding R distinct owners per key, live
// topology change (add/remove a member with streamed key migration and
// double-reads during handoff), and device death with rebuild from the
// surviving replicas.
//
// # Replication
//
// A key's replica set is the first R distinct members met walking the ring
// clockwise from its hash (cluster.Ring.Owners). Writes execute on every
// alive owner, in ring order; the write is ACKNOWLEDGED only when at least
// WriteQuorum fully-alive owners succeeded, else it reports ErrQuorumNotMet
// — the executed replicas keep the data (the device cannot be un-asked),
// exactly as a timed-out request does. Reads are read-one with fallback:
// the first alive owner serves, later owners are consulted only when the
// earlier ones are down or miss (which is also how double-reads during
// migration and reads during a rebuild resolve). ReadRepair mode reads all
// alive owners and re-writes the serving value onto any replica that
// diverged.
//
// # Clock domains
//
// Every member keeps its own engine and virtual clock domain, exactly as
// cluster.Cluster's shards do. A replicated operation touches R domains;
// its instants are merged (a write acks at the WriteQuorum-th earliest
// replica completion, merged numerically) and never propagated, so a fleet
// driven single-threaded is bit-for-bit deterministic.
//
// # Concurrency
//
// Member mutexes serialize engine/device access (one replica at a time, in
// ring-walk order); the fleet mutex guards topology (the ring, the member
// list, migration state) and the replication counters. Concurrent callers
// are safe — the network server drives one goroutine per member — but, as
// everywhere in this codebase, the locks serialize without reordering:
// single-threaded callers see identical results with or without observers.
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"anykey/internal/cluster"
	"anykey/internal/device"
	"anykey/internal/host"
	"anykey/internal/kv"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Sentinel errors of the replicated fleet.
var (
	// ErrQuorumNotMet reports a write acknowledged by fewer than WriteQuorum
	// alive replicas. The replicas that did execute keep the write.
	ErrQuorumNotMet = errors.New("fleet: write quorum not met")
	// ErrShardDown reports an operation whose every replica is dead.
	ErrShardDown = errors.New("fleet: every replica for the key is down")
	// ErrMigrationInProgress rejects a topology change (AddShard,
	// RemoveShard, RemoveShard's commit, a rebuild of a migrating fleet)
	// while another migration is still streaming keys.
	ErrMigrationInProgress = errors.New("fleet: topology migration in progress")
)

// ReadMode selects the replicated read protocol.
type ReadMode int

const (
	// ReadOne serves from the first alive owner, falling back along the
	// ring walk on a down replica or a miss.
	ReadOne ReadMode = iota
	// ReadRepair reads every alive owner, serves the first alive owner's
	// value, and re-writes it onto replicas that diverged or missed.
	ReadRepair
)

// String returns the read mode's name.
func (m ReadMode) String() string {
	if m == ReadRepair {
		return "read-repair"
	}
	return "read-one"
}

// Replication parameterises the replica protocol.
type Replication struct {
	// Factor is R, the distinct owners per key (≥ 1).
	Factor int
	// WriteQuorum is the alive-replica successes required to acknowledge a
	// write (default Factor = write-all).
	WriteQuorum int
	// ReadMode selects read-one-with-fallback or read-repair.
	ReadMode ReadMode
}

// KillCause records what killed a member, mirroring the two terminal
// failure modes internal/fault injects on a single device: a power cut
// mid-traffic, or grown-bad block exhaustion retiring the flash array.
// Either way the device's contents are unavailable to the fleet from the
// kill instant on; a rebuild replaces the hardware outright and re-fills it
// from the surviving replicas.
type KillCause int

const (
	KillPowerCut KillCause = iota
	KillGrownBad
)

// String returns the cause's name.
func (c KillCause) String() string {
	if c == KillGrownBad {
		return "grown-bad"
	}
	return "power-cut"
}

// memberState is a member's lifecycle position.
type memberState int32

const (
	// stateAlive members serve reads, take writes, and count toward quorum.
	stateAlive memberState = iota
	// stateDead members are skipped entirely (device contents unavailable).
	stateDead
	// stateRebuilding members take new writes (so the refill cannot race
	// fresh traffic) but serve no reads and count toward no quorum until
	// the rebuild commits.
	stateRebuilding
	// stateRetired members were removed by RemoveShard; they stay in the
	// member table (IDs are never reused) but own nothing.
	stateRetired
)

func (s memberState) String() string {
	switch s {
	case stateDead:
		return "dead"
	case stateRebuilding:
		return "rebuilding"
	case stateRetired:
		return "retired"
	}
	return "alive"
}

// member is one fleet device with its private engine and clock domain, plus
// its lifecycle state. mu guards the engine and device exactly as
// cluster.shard's does.
type member struct {
	mu    sync.Mutex
	id    int32
	dev   device.KVSSD
	eng   *host.Engine
	tr    *trace.Tracer
	ops   int64
	state memberState
	cause KillCause // meaningful only after a kill
}

// DeviceFactory builds the device (and optional tracer) for a new member —
// AddShard's fresh shard, or a rebuild's replacement hardware. The fleet
// owns seeding policy through this hook, so replacements are deterministic.
type DeviceFactory func(memberID int) (device.KVSSD, *trace.Tracer, error)

// Config parameterises a fleet over already-constructed member devices.
type Config struct {
	// QueueDepth is each member engine's submission queue depth (default 1).
	QueueDepth int
	// VirtualNodes is the ring points per member (default 64).
	VirtualNodes int
	// Repl is the replication protocol (Factor default 1, WriteQuorum
	// default Factor).
	Repl Replication
	// NewDevice builds devices for AddShard and RebuildShard. Required.
	NewDevice DeviceFactory
	// Tracers, when non-nil, holds one tracer per initial member.
	Tracers []*trace.Tracer
	// ScanChunk is the keys-per-scan granularity migration and rebuild
	// streams use (default 64).
	ScanChunk int
}

// Fleet is the elastic replicated cluster.
type Fleet struct {
	mu      sync.Mutex
	members []*member // by member ID; IDs are never reused
	ring    cluster.Ring
	ringIDs []int32 // committed ring membership, ascending
	qd      int
	vnodes  int
	repl    Replication
	newDev  DeviceFactory
	chunk   int

	mig   *Migration // non-nil while a topology change streams keys
	epoch int64      // migration epochs committed

	// Replication/migration/rebuild counters (guarded by mu).
	quorumFailures int64
	readFallbacks  int64
	readRepairs    int64
	migratedKeys   int64
	migratedBytes  int64
	migrationOps   int64
	cleanupDels    int64
	rebuilds       int64
	rebuiltKeys    int64
	rebuiltBytes   int64

	// scratch owner buffers, reused when the caller is single-threaded
	// (replicated routing must not allocate per op on the hot path).
	ownScratch sync.Pool
}

// New builds a fleet over the initial member devices (IDs 0..len-1).
func New(devs []device.KVSSD, cfg Config) (*Fleet, error) {
	if len(devs) == 0 {
		return nil, errors.New("fleet: no member devices")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.ScanChunk == 0 {
		cfg.ScanChunk = 64
	}
	if cfg.Repl.Factor == 0 {
		cfg.Repl.Factor = 1
	}
	if cfg.Repl.WriteQuorum == 0 {
		cfg.Repl.WriteQuorum = cfg.Repl.Factor
	}
	switch {
	case cfg.Repl.Factor < 1 || cfg.Repl.Factor > len(devs):
		return nil, fmt.Errorf("fleet: replication factor %d with %d members", cfg.Repl.Factor, len(devs))
	case cfg.Repl.WriteQuorum < 1 || cfg.Repl.WriteQuorum > cfg.Repl.Factor:
		return nil, fmt.Errorf("fleet: write quorum %d with factor %d", cfg.Repl.WriteQuorum, cfg.Repl.Factor)
	case cfg.NewDevice == nil:
		return nil, errors.New("fleet: Config.NewDevice is required")
	case cfg.Tracers != nil && len(cfg.Tracers) != len(devs):
		return nil, fmt.Errorf("fleet: %d tracers for %d members", len(cfg.Tracers), len(devs))
	}
	f := &Fleet{
		qd:     cfg.QueueDepth,
		vnodes: cfg.VirtualNodes,
		repl:   cfg.Repl,
		newDev: cfg.NewDevice,
		chunk:  cfg.ScanChunk,
	}
	f.ownScratch.New = func() any { s := make([]int32, 0, 8); return &s }
	for i, dev := range devs {
		eng, err := host.New(dev, cfg.QueueDepth)
		if err != nil {
			return nil, fmt.Errorf("fleet: member %d: %w", i, err)
		}
		m := &member{id: int32(i), dev: dev, eng: eng}
		if cfg.Tracers != nil {
			m.tr = cfg.Tracers[i]
			eng.SetTracer(m.tr)
		}
		f.members = append(f.members, m)
		f.ringIDs = append(f.ringIDs, int32(i))
	}
	f.ring = cluster.BuildRing(f.ringIDs, f.vnodes)
	return f, nil
}

// Replication returns the protocol in force.
func (f *Fleet) Replication() Replication { return f.repl }

// Members returns the member IDs ever created (including dead and retired
// members — IDs are stable forever).
func (f *Fleet) Members() []int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int32, len(f.members))
	for i, m := range f.members {
		ids[i] = m.id
	}
	return ids
}

// RingMembers returns the committed ring membership.
func (f *Fleet) RingMembers() []int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int32(nil), f.ringIDs...)
}

// Epoch returns the number of committed migration epochs.
func (f *Fleet) Epoch() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// State returns a member's lifecycle state name and kill cause ("" while
// never killed).
func (f *Fleet) State(id int) (state string, cause string, err error) {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return "", "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateDead {
		return m.state.String(), m.cause.String(), nil
	}
	return m.state.String(), "", nil
}

func (f *Fleet) memberByID(id int32) (*member, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) < 0 || int(id) >= len(f.members) {
		return nil, fmt.Errorf("fleet: no member %d", id)
	}
	return f.members[id], nil
}

// owners computes the key's owner walk under the committed ring and, when a
// migration is streaming, appends the old ring's owners not already present
// — the union a write must cover and the fallback order a double-read
// consults (new owners first, then the old). Callers return the slice via
// putOwners.
func (f *Fleet) owners(key []byte) []int32 {
	h := cluster.HashKey(key)
	sp := f.ownScratch.Get().(*[]int32)
	dst := (*sp)[:0]
	f.mu.Lock()
	dst = f.ring.OwnersHash(dst, h, f.repl.Factor)
	if f.mig != nil {
		n := len(dst)
		tmp := f.mig.oldRing.OwnersHash(dst, h, f.repl.Factor)
		// Dedup the old-ring walk against the committed one.
		dst = dst[:n]
		for _, m := range tmp[n:] {
			if !containsID(dst, m) {
				dst = append(dst, m)
			}
		}
	}
	f.mu.Unlock()
	*sp = dst
	return dst
}

func (f *Fleet) putOwners(dst []int32) {
	sp := &dst
	f.ownScratch.Put(sp)
}

func containsID(ids []int32, m int32) bool {
	for _, v := range ids {
		if v == m {
			return true
		}
	}
	return false
}

// PrimaryFor returns the key's first committed-ring owner — what a
// non-replicated cluster would call its shard.
func (f *Fleet) PrimaryFor(key []byte) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.ring.OwnerHash(cluster.HashKey(key)))
}

// ReplicaAttempt is one replica's slice of a replicated operation.
type ReplicaAttempt struct {
	Member int
	Comp   host.Completion
	Err    error
}

// OpResult is the outcome of one replicated operation.
type OpResult struct {
	// Owners is the owner walk used (committed ring first; during a
	// migration the old ring's extra owners follow).
	Owners []int
	// Replicas holds the device attempts actually executed, in walk order.
	Replicas []ReplicaAttempt
	// Acked reports a write that met its quorum, or a read that found a
	// value.
	Acked bool
	// AckDone is a write's acknowledgment instant — the WriteQuorum-th
	// earliest successful replica completion, merged numerically across the
	// replicas' clock domains — or a read's serving completion time.
	AckDone sim.Time
	// Served is the member that served a read (-1 otherwise).
	Served int
	// Value is a read's payload, copied out of the serving device; Pairs a
	// scan's results.
	Value []byte
	Pairs []kv.Pair
	// Err is the operation verdict: nil, ErrQuorumNotMet, ErrShardDown, or
	// kv.ErrNotFound.
	Err error
}

// ArrivalFunc maps a member ID to the arrival instant in that member's
// clock domain. Closed-loop paths pass nil (each replica issues when its
// earliest slot frees).
type ArrivalFunc func(member int) sim.Time

// write executes one replicated Put or Delete: every alive (or rebuilding)
// owner executes it in walk order, and the op acks iff at least WriteQuorum
// fully-alive owners succeeded.
func (f *Fleet) write(arrival ArrivalFunc, key, value []byte, del bool) OpResult {
	owners := f.owners(key)
	defer f.putOwners(owners)
	res := OpResult{Served: -1, Owners: append([]int(nil), toInts(owners)...)}
	var ackTimes []sim.Time
	for _, id := range owners {
		m := f.members[id]
		m.mu.Lock()
		st := m.state
		if st == stateDead || st == stateRetired {
			m.mu.Unlock()
			continue
		}
		var comp host.Completion
		var err error
		switch {
		case del && arrival == nil:
			comp, err = m.eng.Delete(key)
		case del:
			comp, err = m.eng.DeleteAt(arrival(int(id)), key)
		case arrival == nil:
			comp, err = m.eng.Put(key, value)
		default:
			comp, err = m.eng.PutAt(arrival(int(id)), key, value)
		}
		m.ops++
		m.mu.Unlock()
		res.Replicas = append(res.Replicas, ReplicaAttempt{Member: int(id), Comp: comp, Err: err})
		if err == nil && st == stateAlive {
			ackTimes = append(ackTimes, comp.Done)
		}
	}
	if len(res.Replicas) == 0 {
		res.Err = ErrShardDown
		return res
	}
	if len(ackTimes) < f.repl.WriteQuorum {
		res.Err = ErrQuorumNotMet
		f.mu.Lock()
		f.quorumFailures++
		f.mu.Unlock()
		return res
	}
	// The ack instant is the quorum-th earliest replica completion: the
	// client is satisfied the moment W replicas confirmed, whatever the
	// stragglers do. Replica counts are tiny; insertion sort.
	for i := 1; i < len(ackTimes); i++ {
		for j := i; j > 0 && ackTimes[j] < ackTimes[j-1]; j-- {
			ackTimes[j], ackTimes[j-1] = ackTimes[j-1], ackTimes[j]
		}
	}
	res.Acked = true
	res.AckDone = ackTimes[f.repl.WriteQuorum-1]
	return res
}

// read executes one replicated Get: the first alive owner serves; a down
// replica or a miss falls back along the walk (double-reads during
// migration resolve through exactly this fallback). In ReadRepair mode
// every alive owner is read and divergent replicas are re-written with the
// serving value.
func (f *Fleet) read(arrival ArrivalFunc, key []byte) OpResult {
	owners := f.owners(key)
	defer f.putOwners(owners)
	res := OpResult{Served: -1, Owners: append([]int(nil), toInts(owners)...)}
	repair := f.repl.ReadMode == ReadRepair
	var repairTargets []int32
	tried := 0
	for walk, id := range owners {
		m := f.members[id]
		m.mu.Lock()
		st := m.state
		if st != stateAlive {
			m.mu.Unlock()
			continue
		}
		if res.Served >= 0 && !repair {
			m.mu.Unlock()
			break
		}
		var comp host.Completion
		var err error
		if arrival == nil {
			comp, err = m.eng.Get(key)
		} else {
			comp, err = m.eng.GetAt(arrival(int(id)), key)
		}
		if comp.Value != nil {
			// Values are device-owned until the member's next operation; a
			// replicated read touches several members, so copy out.
			comp.Value = append([]byte(nil), comp.Value...)
		}
		m.ops++
		m.mu.Unlock()
		tried++
		res.Replicas = append(res.Replicas, ReplicaAttempt{Member: int(id), Comp: comp, Err: err})
		switch {
		case res.Served < 0 && err == nil:
			res.Served = int(id)
			res.Value = comp.Value
			res.AckDone = comp.Done
			res.Acked = true
			// A serve past the walk's head is a fallback, whether the
			// earlier owners were down (skipped) or missed (tried).
			if walk > 0 {
				f.mu.Lock()
				f.readFallbacks++
				f.mu.Unlock()
			}
		case res.Served >= 0 && (err != nil || !bytesEqual(comp.Value, res.Value)):
			// Divergent or missing replica behind the serving one.
			repairTargets = append(repairTargets, id)
		}
	}
	if tried == 0 {
		res.Err = ErrShardDown
		return res
	}
	if res.Served < 0 {
		res.Err = kv.ErrNotFound
		return res
	}
	repaired := 0
	for _, id := range repairTargets {
		m := f.members[id]
		m.mu.Lock()
		if m.state == stateAlive {
			if _, err := m.eng.Put(key, res.Value); err == nil {
				m.ops++
				repaired++
			}
		}
		m.mu.Unlock()
	}
	if repaired > 0 {
		f.mu.Lock()
		f.readRepairs += int64(repaired)
		f.mu.Unlock()
	}
	return res
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func toInts(ids []int32) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v)
	}
	return out
}

// Put stores one pair on every alive owner (closed loop).
func (f *Fleet) Put(key, value []byte) OpResult { return f.write(nil, key, value, false) }

// Apply runs a mixed put/delete batch through the replicated write path —
// every op fans out to its full replica set and must meet WriteQuorum. The
// first failed op aborts the batch (later ops are not attempted), so the
// transaction layer's sync-before-advance ordering holds per phase.
func (f *Fleet) Apply(ops []cluster.BatchOp) error {
	for i, op := range ops {
		var res OpResult
		if op.Delete {
			res = f.write(nil, op.Key, nil, true)
		} else {
			res = f.write(nil, op.Key, op.Value, false)
		}
		if res.Err != nil {
			return fmt.Errorf("fleet: apply op %d: %w", i, res.Err)
		}
	}
	return nil
}

// Delete removes one key on every alive owner (closed loop).
func (f *Fleet) Delete(key []byte) OpResult { return f.write(nil, key, nil, true) }

// Get reads one key, read-one with fallback (closed loop).
func (f *Fleet) Get(key []byte) OpResult { return f.read(nil, key) }

// PutAt is the open-loop replicated Put: arrival maps each replica's
// arrival instant into that member's clock domain.
func (f *Fleet) PutAt(arrival ArrivalFunc, key, value []byte) OpResult {
	return f.write(arrival, key, value, false)
}

// DeleteAt is the open-loop replicated Delete.
func (f *Fleet) DeleteAt(arrival ArrivalFunc, key []byte) OpResult {
	return f.write(arrival, key, nil, true)
}

// GetAt is the open-loop replicated Get.
func (f *Fleet) GetAt(arrival ArrivalFunc, key []byte) OpResult {
	return f.read(arrival, key)
}

// ScanAt runs an open-loop range query against ONE member (the per-shard
// scan the network server fans out; replication does not merge scans).
func (f *Fleet) ScanAt(id int, arrival sim.Time, start []byte, n int) (host.Completion, error) {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return host.Completion{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateDead {
		return host.Completion{}, ErrShardDown
	}
	comp, err := m.eng.ScanAt(arrival, start, n)
	m.ops++
	return comp, err
}

// Now returns the merged fleet clock: the maximum over member clocks.
func (f *Fleet) Now() sim.Time {
	var mx sim.Time
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		t := m.eng.Now()
		m.mu.Unlock()
		if t > mx {
			mx = t
		}
	}
	return mx
}

// MemberNow returns member id's clock.
func (f *Fleet) MemberNow(id int) sim.Time {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.Now()
}

// Barrier drains every live member's in-flight requests (clock domains stay
// independent) and returns the merged fleet time.
func (f *Fleet) Barrier() sim.Time {
	var mx sim.Time
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		if m.state != stateDead {
			if t := m.eng.Barrier(); t > mx {
				mx = t
			}
		}
		m.mu.Unlock()
	}
	return mx
}

// SyncShards flushes the fleet for the transaction layer's durability
// barriers. Replica sets overlap arbitrarily under the ring walk, so a
// targeted per-shard flush would have to chase owner sets through live
// migrations; the fleet keeps the simpler invariant — sync everything —
// which is strictly stronger than what the barrier needs.
func (f *Fleet) SyncShards(shards []int) (sim.Time, error) { return f.Sync() }

// Sync flushes every live member and returns the merged completion time.
func (f *Fleet) Sync() (sim.Time, error) {
	var done sim.Time
	var firstErr error
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		if m.state == stateDead || m.state == stateRetired {
			m.mu.Unlock()
			continue
		}
		comp, err := m.eng.Sync()
		m.ops++
		m.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: member %d sync: %w", m.id, err)
		}
		if comp.Done > done {
			done = comp.Done
		}
	}
	return done, firstErr
}

// ResetBreakdowns clears every member engine's latency histograms.
func (f *Fleet) ResetBreakdowns() {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		m.eng.ResetBreakdown()
		m.mu.Unlock()
	}
}

// ReleaseMemory eagerly frees every member's page-payload memory (fleet
// close), each member under its mutex. Dead members were already released at
// kill time; release is idempotent.
func (f *Fleet) ReleaseMemory() {
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		device.ReleaseMemory(m.dev)
		m.mu.Unlock()
	}
}

// Engine returns member id's host engine (tests and advanced drivers).
func (f *Fleet) Engine(id int) *host.Engine { return f.members[id].eng }

// Device returns member id's underlying device.
func (f *Fleet) Device(id int) device.KVSSD { return f.members[id].dev }

// Tracer returns member id's tracer (nil when untraced or unknown).
func (f *Fleet) Tracer(id int) *trace.Tracer {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return nil
	}
	return m.tr
}

// Tracers returns the per-member tracers (nil when any member is untraced).
func (f *Fleet) Tracers() []*trace.Tracer {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []*trace.Tracer
	for _, m := range f.members {
		if m.tr == nil {
			return nil
		}
		out = append(out, m.tr)
	}
	return out
}

// Blame merges every member tracer's blame report (nil when untraced).
func (f *Fleet) Blame(opts trace.BlameOptions) *trace.BlameReport {
	trs := f.Tracers()
	if trs == nil {
		return nil
	}
	reports := make([]*trace.BlameReport, 0, len(trs))
	for _, tr := range trs {
		reports = append(reports, tr.Blame(opts))
	}
	return trace.MergeBlameReports(reports...)
}
