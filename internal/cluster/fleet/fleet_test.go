package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"anykey/internal/core"
	"anykey/internal/device"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/trace"
)

func smallDevice(t testing.TB, seed int64) device.KVSSD {
	t.Helper()
	geo := nand.Geometry{Channels: 4, ChipsPerChannel: 4, BlocksPerChip: 4, PagesPerBlock: 64, PageSize: 8192}
	d, err := core.New(core.Config{Geometry: geo, Plus: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// freshFleet builds n small AnyKey+ members; the factory seeds replacement
// devices deterministically off the member ID.
func freshFleet(t testing.TB, n int, repl Replication) *Fleet {
	t.Helper()
	devs := make([]device.KVSSD, 0, n)
	for i := 0; i < n; i++ {
		devs = append(devs, smallDevice(t, int64(1+i)))
	}
	f, err := New(devs, Config{
		Repl: repl,
		NewDevice: func(memberID int) (device.KVSSD, *trace.Tracer, error) {
			return smallDevice(t, int64(1000+memberID)), nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func fkey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func fval(i int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, 48) }

func TestReplicationOwnersDistinct(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 3, WriteQuorum: 2})
	for i := 0; i < 500; i++ {
		res := f.Put(fkey(i), fval(i))
		if res.Err != nil {
			t.Fatalf("put %d: %v", i, res.Err)
		}
		if len(res.Owners) != 3 {
			t.Fatalf("key %d: %d owners, want 3", i, len(res.Owners))
		}
		seen := map[int]bool{}
		for _, o := range res.Owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %d in %v", i, o, res.Owners)
			}
			seen[o] = true
		}
		if len(res.Replicas) != 3 {
			t.Fatalf("key %d: wrote %d replicas, want 3", i, len(res.Replicas))
		}
	}
}

func TestReadOneWithFallbackAfterKill(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
	const n = 300
	for i := 0; i < n; i++ {
		if res := f.Put(fkey(i), fval(i)); !res.Acked {
			t.Fatalf("put %d not acked: %v", i, res.Err)
		}
	}
	if err := f.KillShard(1, KillPowerCut); err != nil {
		t.Fatal(err)
	}
	st := f.CollectStats()
	if st.Repl.DeadMembers != 1 {
		t.Fatalf("DeadMembers = %d, want 1", st.Repl.DeadMembers)
	}
	// Every key must still read back: either its primary is alive, or the
	// fallback replica serves.
	for i := 0; i < n; i++ {
		res := f.Get(fkey(i))
		if res.Err != nil {
			t.Fatalf("get %d after kill: %v", i, res.Err)
		}
		if !bytes.Equal(res.Value, fval(i)) {
			t.Fatalf("get %d after kill: wrong payload", i)
		}
		if res.Served == 1 {
			t.Fatalf("get %d served by dead member", i)
		}
	}
	if got := f.CollectStats().Repl.ReadFallbacks; got == 0 {
		t.Fatal("expected nonzero read fallbacks with a dead primary")
	}
}

func TestQuorumNotMetAndShardDown(t *testing.T) {
	f := freshFleet(t, 3, Replication{Factor: 2, WriteQuorum: 2})
	if err := f.KillShard(0, KillGrownBad); err != nil {
		t.Fatal(err)
	}
	sawQuorumFail := false
	for i := 0; i < 200 && !sawQuorumFail; i++ {
		res := f.Put(fkey(i), fval(i))
		if res.Err != nil {
			if !errors.Is(res.Err, ErrQuorumNotMet) {
				t.Fatalf("put %d: %v, want ErrQuorumNotMet", i, res.Err)
			}
			if res.Acked {
				t.Fatalf("put %d acked despite quorum failure", i)
			}
			sawQuorumFail = true
		}
	}
	if !sawQuorumFail {
		t.Fatal("no key hit the dead member's replica set in 200 tries")
	}
	if f.CollectStats().Repl.QuorumFailures == 0 {
		t.Fatal("QuorumFailures counter not bumped")
	}

	// Kill the rest: every replica set is now down.
	if err := f.KillShard(1, KillPowerCut); err != nil {
		t.Fatal(err)
	}
	if err := f.KillShard(2, KillPowerCut); err != nil {
		t.Fatal(err)
	}
	if res := f.Get(fkey(0)); !errors.Is(res.Err, ErrShardDown) {
		t.Fatalf("get with all members dead: %v, want ErrShardDown", res.Err)
	}
	if res := f.Put(fkey(0), fval(0)); !errors.Is(res.Err, ErrShardDown) {
		t.Fatalf("put with all members dead: %v, want ErrShardDown", res.Err)
	}
}

func TestSentinelErrorsRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want error
	}{
		{fmt.Errorf("wrapped: %w", ErrQuorumNotMet), ErrQuorumNotMet},
		{fmt.Errorf("wrapped: %w", ErrShardDown), ErrShardDown},
		{fmt.Errorf("wrapped: %w", ErrMigrationInProgress), ErrMigrationInProgress},
	} {
		if !errors.Is(tc.err, tc.want) {
			t.Errorf("errors.Is(%v, %v) = false", tc.err, tc.want)
		}
	}
}

func TestReadRepairHealsDivergence(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 1, ReadMode: ReadRepair})
	key, good := fkey(7), fval(7)
	res := f.Put(key, good)
	if !res.Acked {
		t.Fatalf("put: %v", res.Err)
	}
	// Corrupt the second replica directly (divergence a partial write
	// failure would leave behind).
	second := res.Owners[1]
	if _, err := f.Engine(second).Put(key, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	got := f.Get(key)
	if got.Err != nil || !bytes.Equal(got.Value, good) {
		t.Fatalf("read-repair get: %v %q", got.Err, got.Value)
	}
	if f.CollectStats().Repl.ReadRepairs == 0 {
		t.Fatal("ReadRepairs counter not bumped")
	}
	// The divergent replica now holds the serving value.
	comp, err := f.Engine(second).Get(key)
	if err != nil || !bytes.Equal(comp.Value, good) {
		t.Fatalf("replica after repair: %v %q", err, comp.Value)
	}
}

func TestAddShardMigratesBoundedFraction(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
	const n = 600
	for i := 0; i < n; i++ {
		if res := f.Put(fkey(i), fval(i)); !res.Acked {
			t.Fatalf("put %d: %v", i, res.Err)
		}
	}
	mig, err := f.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddShard(); !errors.Is(err, ErrMigrationInProgress) {
		t.Fatalf("second AddShard: %v, want ErrMigrationInProgress", err)
	}
	// Mid-migration double-read: every key must still be readable while the
	// stream is only partially drained.
	if done, err := mig.Step(50); err != nil || done {
		t.Fatalf("step: done=%v err=%v", done, err)
	}
	for i := 0; i < n; i += 7 {
		res := f.Get(fkey(i))
		if res.Err != nil || !bytes.Equal(res.Value, fval(i)) {
			t.Fatalf("mid-migration get %d: %v", i, res.Err)
		}
	}
	if err := mig.Run(); err != nil {
		t.Fatal(err)
	}
	if !mig.Done() {
		t.Fatal("migration not done after Run")
	}
	st := f.CollectStats()
	if st.Repl.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Repl.Epoch)
	}
	// Adding one member to a 4-member R=2 ring should move roughly
	// R/(N+1) = 2/5 of key-replicas at most; assert a generous bound that
	// still catches "moved everything" bugs.
	if st.Repl.MigratedKeys == 0 {
		t.Fatal("no keys migrated onto the new member")
	}
	if frac := float64(st.Repl.MigratedKeys) / n; frac > 0.6 {
		t.Fatalf("migrated %.0f%% of keys; expected a bounded fraction", frac*100)
	}
	// Post-commit: every key reads back through the new ring only.
	for i := 0; i < n; i++ {
		res := f.Get(fkey(i))
		if res.Err != nil || !bytes.Equal(res.Value, fval(i)) {
			t.Fatalf("post-migration get %d: %v", i, res.Err)
		}
	}
}

func TestRemoveShardRetiresMember(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
	const n = 400
	for i := 0; i < n; i++ {
		if res := f.Put(fkey(i), fval(i)); !res.Acked {
			t.Fatalf("put %d: %v", i, res.Err)
		}
	}
	mig, err := f.RemoveShard(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Run(); err != nil {
		t.Fatal(err)
	}
	state, _, err := f.State(2)
	if err != nil || state != "retired" {
		t.Fatalf("member 2 state = %q (%v), want retired", state, err)
	}
	if got := f.RingMembers(); len(got) != 3 || containsID(got, 2) {
		t.Fatalf("ring members after remove: %v", got)
	}
	for i := 0; i < n; i++ {
		res := f.Get(fkey(i))
		if res.Err != nil || !bytes.Equal(res.Value, fval(i)) {
			t.Fatalf("post-remove get %d: %v", i, res.Err)
		}
		if res.Served == 2 {
			t.Fatalf("get %d served by retired member", i)
		}
	}

	// Shrinking to exactly the replication factor is legal; below it must
	// refuse.
	mig2, err := f.RemoveShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig2.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RemoveShard(1); err == nil {
		t.Fatal("RemoveShard below replication floor succeeded")
	}
}

func TestKillRebuildRestoresReplica(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
	const n = 400
	for i := 0; i < n; i++ {
		if res := f.Put(fkey(i), fval(i)); !res.Acked {
			t.Fatalf("put %d: %v", i, res.Err)
		}
	}
	if err := f.KillShard(0, KillGrownBad); err != nil {
		t.Fatal(err)
	}
	rb, err := f.RebuildShard(0)
	if err != nil {
		t.Fatal(err)
	}
	state, _, _ := f.State(0)
	if state != "rebuilding" {
		t.Fatalf("state during rebuild = %q", state)
	}
	// Writes during the rebuild land on the replacement too, and must win
	// over the refill's older copies. A write touching the rebuilding
	// member may fail quorum (rebuilding replicas don't count) yet still
	// execute — the device cannot be un-asked — so track acked and
	// merely-attempted keys separately.
	overwritten := map[int]bool{}
	attempted := map[int]bool{}
	stepped := false
	for i := 0; i < n; i += 25 {
		res := f.PutAt(nil, fkey(i), []byte("fresh-version"))
		attempted[i] = true
		if res.Acked {
			overwritten[i] = true
		}
		if !stepped {
			if _, err := rb.Step(40); err != nil {
				t.Fatal(err)
			}
			stepped = true
		}
	}
	if err := rb.Run(); err != nil {
		t.Fatal(err)
	}
	state, _, _ = f.State(0)
	if state != "alive" {
		t.Fatalf("state after rebuild = %q", state)
	}
	st := f.CollectStats()
	if st.Repl.Rebuilds != 1 || st.Repl.RebuiltKeys == 0 {
		t.Fatalf("rebuild counters: %+v", st.Repl)
	}
	// Every key readable; overwritten keys must carry the fresh version —
	// including when member 0 serves them.
	for i := 0; i < n; i++ {
		res := f.Get(fkey(i))
		if res.Err != nil {
			t.Fatalf("get %d after rebuild: %v", i, res.Err)
		}
		switch {
		case overwritten[i]:
			if !bytes.Equal(res.Value, []byte("fresh-version")) {
				t.Fatalf("get %d after rebuild: got %q, want fresh-version (served by %d)", i, res.Value, res.Served)
			}
		case attempted[i]:
			// Unacked write: either version is a correct read.
			if !bytes.Equal(res.Value, []byte("fresh-version")) && !bytes.Equal(res.Value, fval(i)) {
				t.Fatalf("get %d after rebuild: got %q, want one of the written versions", i, res.Value)
			}
		default:
			if !bytes.Equal(res.Value, fval(i)) {
				t.Fatalf("get %d after rebuild: got %q, want original (served by %d)", i, res.Value, res.Served)
			}
		}
	}
	// The replacement must actually hold its share again: read its device
	// directly for a key it owns.
	owned := 0
	for i := 0; i < n; i++ {
		res := f.Get(fkey(i))
		if res.Served == 0 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("rebuilt member serves no reads")
	}
}

func TestRebuildRequiresDeadMember(t *testing.T) {
	f := freshFleet(t, 3, Replication{Factor: 2, WriteQuorum: 2})
	if _, err := f.RebuildShard(1); err == nil {
		t.Fatal("rebuilding an alive member succeeded")
	}
	if err := f.KillShard(1, KillPowerCut); err != nil {
		t.Fatal(err)
	}
	if err := f.KillShard(1, KillPowerCut); err == nil {
		t.Fatal("double kill succeeded")
	}
}

func TestFleetDeterminism(t *testing.T) {
	run := func() (Stats, []byte) {
		f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
		for i := 0; i < 300; i++ {
			f.Put(fkey(i), fval(i))
		}
		f.KillShard(1, KillPowerCut)
		rb, err := f.RebuildShard(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i += 3 {
			f.Get(fkey(i))
			rb.Step(10)
		}
		if err := rb.Run(); err != nil {
			t.Fatal(err)
		}
		res := f.Get(fkey(42))
		return f.CollectStats(), res.Value
	}
	a, av := run()
	b, bv := run()
	if a.Repl != b.Repl {
		t.Fatalf("replication counters diverge:\n%+v\n%+v", a.Repl, b.Repl)
	}
	if a.Now != b.Now || a.Ops != b.Ops {
		t.Fatalf("clock/ops diverge: %v/%d vs %v/%d", a.Now, a.Ops, b.Now, b.Ops)
	}
	if !bytes.Equal(av, bv) {
		t.Fatal("read values diverge between identical runs")
	}
}

func TestScanAtSingleMember(t *testing.T) {
	f := freshFleet(t, 3, Replication{Factor: 2, WriteQuorum: 2})
	for i := 0; i < 100; i++ {
		f.Put(fkey(i), fval(i))
	}
	at := f.MemberNow(0)
	comp, err := f.ScanAt(0, at, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Pairs) == 0 {
		t.Fatal("scan returned no pairs")
	}
	var prev []byte
	for _, p := range comp.Pairs {
		if prev != nil && kv.Compare(prev, p.Key) >= 0 {
			t.Fatal("scan pairs out of order")
		}
		prev = append(prev[:0], p.Key...)
	}
	f.KillShard(0, KillPowerCut)
	if _, err := f.ScanAt(0, at, nil, 10); !errors.Is(err, ErrShardDown) {
		t.Fatalf("scan on dead member: %v, want ErrShardDown", err)
	}
}

func TestKillReleasesDeadMemberMemory(t *testing.T) {
	f := freshFleet(t, 4, Replication{Factor: 2, WriteQuorum: 2})
	for i := 0; i < 300; i++ {
		if res := f.Put(fkey(i), fval(i)); !res.Acked {
			t.Fatalf("put %d: %v", i, res.Err)
		}
	}
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if before := device.FootprintOf(f.Device(1)); before.ResidentBytes == 0 {
		t.Fatal("member 1 holds no pages before the kill")
	}
	if err := f.KillShard(1, KillGrownBad); err != nil {
		t.Fatal(err)
	}
	// The kill frees the dead hardware's payload store eagerly: a long-lived
	// fleet must not retain dead shards' pages.
	if after := device.FootprintOf(f.Device(1)); after.ResidentBytes != 0 || after.LivePages != 0 {
		t.Fatalf("dead member still resident: %+v", after)
	}
	if fp := device.FootprintOf(f.Device(0)); fp.ResidentBytes == 0 {
		t.Fatal("kill released a surviving member's store")
	}
	// Survivors keep serving; a rebuild gets fresh hardware with a live store.
	rb, err := f.RebuildShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if fp := device.FootprintOf(f.Device(1)); fp.ResidentBytes == 0 {
		t.Fatal("rebuilt member's replacement store is empty")
	}
	st := f.CollectStats()
	if st.Store.LivePages == 0 {
		t.Fatalf("fleet stats carry no store footprint: %+v", st.Store)
	}
}
