package fleet

import (
	"errors"
	"fmt"

	"anykey/internal/cluster"
	"anykey/internal/device"
	"anykey/internal/host"
	"anykey/internal/kv"
)

// KillShard kills a member's device mid-traffic: a power cut or grown-bad
// exhaustion (the two terminal causes internal/fault injects) after which
// the hardware's contents are unavailable. The member's in-flight work is
// simply gone — acknowledged writes survive only where replicas hold them.
// Reads fall through to surviving owners; writes keep acking as long as
// WriteQuorum alive owners remain.
func (f *Fleet) KillShard(id int, cause KillCause) error {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case stateDead:
		return fmt.Errorf("fleet: member %d already dead", id)
	case stateRetired:
		return fmt.Errorf("fleet: member %d is retired", id)
	}
	m.state = stateDead
	m.cause = cause
	// The hardware's contents are unreachable from this instant, so free the
	// payload store eagerly — a long-lived fleet must not retain dead shards'
	// pages. Every fleet path checks the member state under this same mutex
	// before touching the device, so nothing reads it after the kill; a
	// rebuild replaces the device outright.
	device.ReleaseMemory(m.dev)
	return nil
}

// Rebuild is an in-flight device rebuild: replacement hardware under the
// dead member's identity, re-filled from the surviving replicas' scans.
// The ring is untouched — the member ID keeps its vnodes — so a rebuild
// moves no ownership; it only restores the replica the kill destroyed.
//
// While rebuilding, the member takes new writes — so the refill cannot
// lose fresh traffic — but serves no reads and counts toward no write
// quorum until Step drains and the member returns to alive. The refill is
// put-if-absent: under the member mutex it checks the replacement for the
// key and copies only on a miss, so a replica version written by a client
// during the rebuild is never clobbered by an older scanned copy.
type Rebuild struct {
	f       *Fleet
	subject int32

	sources []int32
	srcIdx  int
	next    []byte

	keys  int64
	bytes int64
	done  bool
}

// Subject returns the member being rebuilt.
func (r *Rebuild) Subject() int32 { return r.subject }

// Done reports whether the rebuild has completed.
func (r *Rebuild) Done() bool {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return r.done
}

// Progress reports sources drained vs total, plus keys copied so far.
func (r *Rebuild) Progress() (drained, total int, keys int64) {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return r.srcIdx, len(r.sources), r.keys
}

// RebuildShard replaces a dead member's hardware (Config.NewDevice, same
// member ID, clock starting at the merged fleet time) and returns the
// steppable refill. Surviving replicas keep serving reads throughout; the
// member rejoins the read path and the quorum only when the refill drains.
func (f *Fleet) RebuildShard(id int) (*Rebuild, error) {
	m, err := f.memberByID(int32(id))
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.mig != nil {
		f.mu.Unlock()
		return nil, ErrMigrationInProgress
	}
	f.mu.Unlock()

	m.mu.Lock()
	if m.state != stateDead {
		st := m.state
		m.mu.Unlock()
		return nil, fmt.Errorf("fleet: member %d is %s, not dead", id, st)
	}
	m.mu.Unlock()

	dev, tr, err := f.newDev(id)
	if err != nil {
		return nil, fmt.Errorf("fleet: rebuild device: %w", err)
	}
	eng, err := host.NewAt(dev, f.qd, f.Now())
	if err != nil {
		return nil, fmt.Errorf("fleet: rebuild engine: %w", err)
	}

	m.mu.Lock()
	if m.state != stateDead {
		m.mu.Unlock()
		return nil, fmt.Errorf("fleet: member %d revived concurrently", id)
	}
	m.dev = dev
	m.eng = eng
	if tr != nil {
		m.tr = tr
		eng.SetTracer(tr)
	}
	m.state = stateRebuilding
	m.mu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	return &Rebuild{
		f:       f,
		subject: int32(id),
		sources: f.aliveOfLocked(f.ringIDs),
	}, nil
}

// Step streams up to maxKeys keys (≤ 0 means one scan chunk) onto the
// replacement device. Every alive ring member is scanned; a key is copied
// only when the rebuilding member is in its owner walk AND the scanning
// member is the key's first alive owner — one coordinator per key, so the
// surviving replicas dedupe deterministically. Returns true once the
// member is alive again. Safe to interleave with client traffic.
func (r *Rebuild) Step(maxKeys int) (bool, error) {
	f := r.f
	if maxKeys <= 0 {
		maxKeys = f.chunk
	}
	f.mu.Lock()
	if r.done {
		f.mu.Unlock()
		return true, nil
	}
	f.mu.Unlock()

	processed := 0
	for processed < maxKeys {
		f.mu.Lock()
		if r.srcIdx >= len(r.sources) {
			r.commitLocked()
			f.mu.Unlock()
			return true, nil
		}
		src := r.sources[r.srcIdx]
		start := r.next
		f.mu.Unlock()

		m := f.members[src]
		m.mu.Lock()
		skip := m.state != stateAlive
		var pairs []pairCopy
		var err error
		if !skip {
			var comp host.Completion
			comp, err = m.eng.Scan(start, f.chunk)
			if err == nil {
				pairs = copyPairs(comp.Pairs)
			}
		}
		m.mu.Unlock()
		if skip {
			f.mu.Lock()
			r.srcIdx++
			r.next = nil
			f.mu.Unlock()
			continue
		}
		if err != nil {
			return false, fmt.Errorf("fleet: rebuild scan on member %d: %w", src, err)
		}
		f.mu.Lock()
		f.migrationOps++
		if len(pairs) == 0 {
			r.srcIdx++
			r.next = nil
			f.mu.Unlock()
			continue
		}
		last := pairs[len(pairs)-1].key
		r.next = append(append([]byte(nil), last...), 0)
		f.mu.Unlock()

		for _, p := range pairs {
			copied, err := r.rebuildKey(src, p)
			if err != nil {
				return false, err
			}
			if copied {
				processed++
			}
		}
	}
	return false, nil
}

// Run steps the rebuild to completion.
func (r *Rebuild) Run() error {
	for {
		done, err := r.Step(0)
		if err != nil || done {
			return err
		}
	}
}

// rebuildKey copies one scanned pair onto the rebuilding member when (a)
// that member owns the key under the committed ring and (b) src is the
// key's first alive owner.
func (r *Rebuild) rebuildKey(src int32, p pairCopy) (bool, error) {
	f := r.f
	h := cluster.HashKey(p.key)

	f.mu.Lock()
	owners := f.ring.OwnersHash(nil, h, f.repl.Factor)
	f.mu.Unlock()
	if !containsID(owners, r.subject) {
		return false, nil
	}
	coord := int32(-1)
	for _, id := range owners {
		mm := f.members[id]
		mm.mu.Lock()
		alive := mm.state == stateAlive
		mm.mu.Unlock()
		if alive {
			coord = id
			break
		}
	}
	if coord != src {
		return false, nil
	}

	m := f.members[r.subject]
	m.mu.Lock()
	if m.state != stateRebuilding {
		m.mu.Unlock()
		return false, nil
	}
	// Put-if-absent: a client write that already reached the replacement is
	// newer than anything a survivor scan can carry.
	if _, gerr := m.eng.Get(p.key); gerr == nil {
		m.mu.Unlock()
		return false, nil
	} else if !errors.Is(gerr, kv.ErrNotFound) {
		m.mu.Unlock()
		return false, fmt.Errorf("fleet: rebuild probe %q on member %d: %w", p.key, r.subject, gerr)
	}
	_, err := m.eng.Put(p.key, p.value)
	m.mu.Unlock()
	if err != nil {
		return false, fmt.Errorf("fleet: rebuilding %q onto member %d: %w", p.key, r.subject, err)
	}
	f.mu.Lock()
	f.migrationOps++
	r.keys++
	r.bytes += int64(len(p.key) + len(p.value))
	f.mu.Unlock()
	return true, nil
}

// commitLocked returns the member to alive and books the rebuild counters.
// Caller holds f.mu.
func (r *Rebuild) commitLocked() {
	f := r.f
	m := f.members[r.subject]
	m.mu.Lock()
	if m.state == stateRebuilding {
		m.state = stateAlive
	}
	m.mu.Unlock()
	f.rebuilds++
	f.rebuiltKeys += r.keys
	f.rebuiltBytes += r.bytes
	r.done = true
}
