package fleet

import (
	"fmt"

	"anykey/internal/cluster"
	"anykey/internal/host"
	"anykey/internal/kv"
)

// Migration is an in-flight topology change. The ring swaps to the new
// topology the moment the change starts — so fresh writes land on the new
// owners immediately — while the old ring is kept for double-reads (a read
// missing on the new owners falls through to the old) and to route the
// writes that must cover both owner sets until commit. Step streams the
// affected keys from the old owners' scans; Commit fires automatically when
// the stream drains: it drops the old ring, bumps the migration epoch, and
// deletes the moved keys off their ex-owners.
//
// Keys first written during the migration are not in the cleanup stream; a
// copy may linger on an ex-owner. That copy is unreachable — reads walk the
// committed ring only after commit — and is reclaimed by the device's own
// GC like any dead version.
type Migration struct {
	f       *Fleet
	oldRing cluster.Ring
	oldIDs  []int32
	kind    string // "add" or "remove"
	subject int32  // the member added or removed

	// Streaming cursor: source members (old-ring members alive at start),
	// the index being scanned, and the next start key on it.
	sources []int32
	srcIdx  int
	next    []byte

	// cleanup collects (ex-owner, key) pairs for the commit-time deletes.
	cleanup []cleanupDel

	done bool
}

type cleanupDel struct {
	member int32
	key    []byte
}

// Kind reports "add" or "remove"; Subject the member being added/removed.
func (g *Migration) Kind() string   { return g.kind }
func (g *Migration) Subject() int32 { return g.subject }

// Done reports whether the migration has committed.
func (g *Migration) Done() bool {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.done
}

// Progress reports the source-scan position: sources drained vs total.
func (g *Migration) Progress() (drained, total int) {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.srcIdx, len(g.sources)
}

// AddShard brings a fresh member (built by Config.NewDevice) into the ring
// and starts streaming the ~1/N key fraction the new topology assigns it.
// The returned Migration must be stepped to completion (Step, or Run).
func (f *Fleet) AddShard() (*Migration, error) {
	f.mu.Lock()
	if f.mig != nil {
		f.mu.Unlock()
		return nil, ErrMigrationInProgress
	}
	id := int32(len(f.members))
	f.mu.Unlock()

	dev, tr, err := f.newDev(int(id))
	if err != nil {
		return nil, fmt.Errorf("fleet: addshard device: %w", err)
	}
	// The new member's clock starts at the merged fleet time: hardware
	// plugged in "now", not at virtual zero.
	eng, err := host.NewAt(dev, f.qd, f.Now())
	if err != nil {
		return nil, fmt.Errorf("fleet: addshard engine: %w", err)
	}
	m := &member{id: id, dev: dev, eng: eng, tr: tr}
	if tr != nil {
		eng.SetTracer(tr)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mig != nil {
		return nil, ErrMigrationInProgress
	}
	f.members = append(f.members, m)
	oldRing, oldIDs := f.ring, f.ringIDs
	f.ringIDs = append(append([]int32(nil), oldIDs...), id)
	f.ring = cluster.BuildRing(f.ringIDs, f.vnodes)
	f.mig = &Migration{
		f:       f,
		oldRing: oldRing,
		oldIDs:  oldIDs,
		kind:    "add",
		subject: id,
		sources: f.aliveOfLocked(oldIDs),
	}
	return f.mig, nil
}

// RemoveShard takes a member out of the ring, streaming its keys to their
// new owners before the member retires at commit. The member keeps serving
// double-reads (and takes union writes) until then.
func (f *Fleet) RemoveShard(id int) (*Migration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mig != nil {
		return nil, ErrMigrationInProgress
	}
	if !containsID(f.ringIDs, int32(id)) {
		return nil, fmt.Errorf("fleet: member %d not in ring", id)
	}
	if len(f.ringIDs)-1 < f.repl.Factor {
		return nil, fmt.Errorf("fleet: removing member %d leaves %d members for replication factor %d",
			id, len(f.ringIDs)-1, f.repl.Factor)
	}
	oldRing, oldIDs := f.ring, f.ringIDs
	keep := make([]int32, 0, len(oldIDs)-1)
	for _, v := range oldIDs {
		if v != int32(id) {
			keep = append(keep, v)
		}
	}
	f.ringIDs = keep
	f.ring = cluster.BuildRing(keep, f.vnodes)
	f.mig = &Migration{
		f:       f,
		oldRing: oldRing,
		oldIDs:  oldIDs,
		kind:    "remove",
		subject: int32(id),
		sources: f.aliveOfLocked(oldIDs),
	}
	return f.mig, nil
}

// aliveOfLocked filters ids down to alive members. Callers hold f.mu.
func (f *Fleet) aliveOfLocked(ids []int32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		m := f.members[id]
		m.mu.Lock()
		if m.state == stateAlive {
			out = append(out, id)
		}
		m.mu.Unlock()
	}
	return out
}

// Step streams up to maxKeys source keys (≤ 0 means one scan chunk),
// copying each to its new owners. A key is processed only by its first
// ALIVE old-ring owner — every key has exactly one coordinator, so the R
// replica copies dedupe deterministically. Returns true once the migration
// committed. Safe to interleave with client traffic: the ring already
// routes writes to the union of owner sets, and reads double-read through
// the fallback walk.
func (g *Migration) Step(maxKeys int) (bool, error) {
	f := g.f
	if maxKeys <= 0 {
		maxKeys = f.chunk
	}
	f.mu.Lock()
	if g.done {
		f.mu.Unlock()
		return true, nil
	}
	f.mu.Unlock()

	processed := 0
	for processed < maxKeys {
		f.mu.Lock()
		if g.srcIdx >= len(g.sources) {
			err := g.commitLocked()
			f.mu.Unlock()
			return true, err
		}
		src := g.sources[g.srcIdx]
		start := g.next
		f.mu.Unlock()

		m := f.members[src]
		m.mu.Lock()
		skip := m.state != stateAlive
		var pairs []pairCopy
		var err error
		if !skip {
			var comp host.Completion
			comp, err = m.eng.Scan(start, f.chunk)
			if err == nil {
				pairs = copyPairs(comp.Pairs)
			}
		}
		m.mu.Unlock()
		if skip {
			// Source died mid-stream; its replicas carry the same keys and
			// coordinate them when their own scans reach them.
			f.mu.Lock()
			g.srcIdx++
			g.next = nil
			f.mu.Unlock()
			continue
		}
		if err != nil {
			return false, fmt.Errorf("fleet: migration scan on member %d: %w", src, err)
		}
		f.mu.Lock()
		f.migrationOps++
		if len(pairs) == 0 {
			g.srcIdx++
			g.next = nil
			f.mu.Unlock()
			continue
		}
		last := pairs[len(pairs)-1].key
		g.next = append(append([]byte(nil), last...), 0)
		f.mu.Unlock()

		for _, p := range pairs {
			moved, err := g.migrateKey(src, p)
			if err != nil {
				return false, err
			}
			if moved {
				processed++
			}
		}
	}
	return false, nil
}

// Run steps the migration to completion.
func (g *Migration) Run() error {
	for {
		done, err := g.Step(0)
		if err != nil || done {
			return err
		}
	}
}

type pairCopy struct{ key, value []byte }

// copyPairs snapshots scan results out of device-owned buffers: migration
// touches other members between scans, which would invalidate them.
func copyPairs(pairs []kv.Pair) []pairCopy {
	out := make([]pairCopy, len(pairs))
	for i, p := range pairs {
		out[i] = pairCopy{
			key:   append([]byte(nil), p.Key...),
			value: append([]byte(nil), p.Value...),
		}
	}
	return out
}

// migrateKey applies the coordinator rule to one scanned pair and, when src
// is the key's coordinator, copies it to the owners the new topology added
// and records the ex-owners for commit-time cleanup. Reports whether this
// call moved the key.
func (g *Migration) migrateKey(src int32, p pairCopy) (bool, error) {
	f := g.f
	h := cluster.HashKey(p.key)

	f.mu.Lock()
	oldOwners := g.oldRing.OwnersHash(nil, h, f.repl.Factor)
	// The coordinator is the key's first alive old-ring owner.
	coord := int32(-1)
	for _, id := range oldOwners {
		mm := f.members[id]
		mm.mu.Lock()
		alive := mm.state == stateAlive
		mm.mu.Unlock()
		if alive {
			coord = id
			break
		}
	}
	newOwners := f.ring.OwnersHash(nil, h, f.repl.Factor)
	f.mu.Unlock()

	if coord != src {
		return false, nil
	}
	moved := false
	for _, id := range newOwners {
		if containsID(oldOwners, id) {
			continue
		}
		m := f.members[id]
		m.mu.Lock()
		st := m.state
		var err error
		if st == stateAlive || st == stateRebuilding {
			_, err = m.eng.Put(p.key, p.value)
		}
		m.mu.Unlock()
		if err != nil {
			return false, fmt.Errorf("fleet: migrating %q to member %d: %w", p.key, id, err)
		}
		moved = true
		f.mu.Lock()
		f.migrationOps++
		f.migratedBytes += int64(len(p.key) + len(p.value))
		f.mu.Unlock()
	}
	if moved {
		f.mu.Lock()
		f.migratedKeys++
		for _, id := range oldOwners {
			if !containsID(newOwners, id) {
				g.cleanup = append(g.cleanup, cleanupDel{member: id, key: p.key})
			}
		}
		f.mu.Unlock()
	}
	return moved, nil
}

// commitLocked finishes the migration: epoch++, cleanup deletes off
// ex-owners, old ring dropped, removed member retired. Caller holds f.mu.
func (f *Fleet) commitLockedOn(g *Migration) error {
	for _, cd := range g.cleanup {
		m := f.members[cd.member]
		m.mu.Lock()
		if m.state == stateAlive {
			if _, err := m.eng.Delete(cd.key); err == nil {
				f.cleanupDels++
				f.migrationOps++
			}
		}
		m.mu.Unlock()
	}
	g.cleanup = nil
	if g.kind == "remove" {
		m := f.members[g.subject]
		m.mu.Lock()
		if m.state == stateAlive || m.state == stateRebuilding {
			m.state = stateRetired
		}
		m.mu.Unlock()
	}
	f.epoch++
	f.mig = nil
	g.done = true
	return nil
}

func (g *Migration) commitLocked() error { return g.f.commitLockedOn(g) }

// MigrationStatus describes the in-flight topology change, if any.
type MigrationStatus struct {
	Active       bool
	Kind         string
	Subject      int32
	SourcesDone  int
	SourcesTotal int
	Epoch        int64
}

// Migrating returns the current migration status.
func (f *Fleet) Migrating() MigrationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := MigrationStatus{Epoch: f.epoch}
	if f.mig != nil {
		st.Active = true
		st.Kind = f.mig.kind
		st.Subject = f.mig.subject
		st.SourcesDone = f.mig.srcIdx
		st.SourcesTotal = len(f.mig.sources)
	}
	return st
}
