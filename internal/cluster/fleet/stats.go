package fleet

import (
	"anykey/internal/cache"
	"anykey/internal/cluster"
	"anykey/internal/device"
	"anykey/internal/nand"
	"anykey/internal/stats"
)

// ReplStats are the fleet-level replication, migration, and rebuild
// counters, all monotone since construction.
type ReplStats struct {
	// Factor and WriteQuorum echo the protocol in force.
	Factor      int
	WriteQuorum int
	ReadMode    string

	// Epoch counts committed migration epochs; MigrationActive reports a
	// topology change still streaming keys.
	Epoch           int64
	MigrationActive bool

	// QuorumFailures counts writes acknowledged by fewer than WriteQuorum
	// alive replicas (the caller saw ErrQuorumNotMet).
	QuorumFailures int64
	// ReadFallbacks counts reads served by an owner past the first alive
	// one tried (a down replica or double-read miss fell through).
	ReadFallbacks int64
	// ReadRepairs counts divergent replicas re-written by ReadRepair reads.
	ReadRepairs int64

	// MigratedKeys/MigratedBytes/MigrationOps account topology-change
	// streaming traffic (scans + copies), kept apart from client ops.
	MigratedKeys  int64
	MigratedBytes int64
	MigrationOps  int64
	// CleanupDeletes counts keys deleted off ex-owners at epoch commit.
	CleanupDeletes int64

	// Rebuilds counts completed device rebuilds; RebuiltKeys/RebuiltBytes
	// the data re-filled onto replacement hardware.
	Rebuilds     int64
	RebuiltKeys  int64
	RebuiltBytes int64

	// DeadMembers and RebuildingMembers are current lifecycle gauges;
	// RingMembers the committed ring size.
	DeadMembers       int
	RebuildingMembers int
	RingMembers       int
}

// MemberStats extends the per-shard row with lifecycle state.
type MemberStats struct {
	cluster.ShardStats
	State string
	Cause string // kill cause, dead members only
}

// Stats is the fleet's merged statistics view: the cluster-compatible
// rollup (dead members contribute their op counts but no device state — the
// hardware is gone), the replication counters, and per-member rows.
type Stats struct {
	cluster.Stats
	Repl    ReplStats
	Members []MemberStats
}

// CollectStats snapshots every member under its mutex, exactly as
// cluster.CollectStats does, so it is safe concurrently with in-flight
// operations.
func (f *Fleet) CollectStats() Stats {
	f.mu.Lock()
	members := f.members
	out := Stats{
		Stats: cluster.Stats{
			Shards:       len(members),
			ReadAccesses: stats.NewIntHist(8),
		},
		Repl: ReplStats{
			Factor:          f.repl.Factor,
			WriteQuorum:     f.repl.WriteQuorum,
			ReadMode:        f.repl.ReadMode.String(),
			Epoch:           f.epoch,
			MigrationActive: f.mig != nil,
			QuorumFailures:  f.quorumFailures,
			ReadFallbacks:   f.readFallbacks,
			ReadRepairs:     f.readRepairs,
			MigratedKeys:    f.migratedKeys,
			MigratedBytes:   f.migratedBytes,
			MigrationOps:    f.migrationOps,
			CleanupDeletes:  f.cleanupDels,
			Rebuilds:        f.rebuilds,
			RebuiltKeys:     f.rebuiltKeys,
			RebuiltBytes:    f.rebuiltBytes,
			RingMembers:     len(f.ringIDs),
		},
	}
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		ms := MemberStats{State: m.state.String()}
		ms.Shard = int(m.id)
		ms.Ops = m.ops
		ms.Now = m.eng.Now()
		if m.state == stateDead {
			ms.Cause = m.cause.String()
			out.Repl.DeadMembers++
		} else {
			if m.state == stateRebuilding {
				out.Repl.RebuildingMembers++
			}
			st := m.dev.Stats()
			var fc nand.Counters
			if st.Flash != nil {
				fc = st.Flash()
			}
			ms.LiveKeys = st.LiveKeys
			ms.LiveBytes = st.LiveBytes
			ms.Flash = fc
			ms.TreeCompactions = st.TreeCompactions
			ms.LogCompactions = st.LogCompactions
			ms.ChainedCompactions = st.ChainedCompactions
			ms.GCRuns = st.GCRuns
			ms.GCRelocations = st.GCRelocations
			ms.Store = device.FootprintOf(m.dev)
			ms.Cache = cluster.CacheStatsOf(m.dev)
			if st.ReadAccesses != nil {
				out.ReadAccesses.Merge(st.ReadAccesses)
			}
		}
		qw, sv := m.eng.Breakdown()
		m.mu.Unlock()
		out.Members = append(out.Members, ms)
		out.PerShard = append(out.PerShard, ms.ShardStats)
		out.Ops += ms.Ops
		if ms.Now > out.Now {
			out.Now = ms.Now
		}
		out.LiveKeys += ms.LiveKeys
		out.LiveBytes += ms.LiveBytes
		out.Flash = out.Flash.Add(ms.Flash)
		out.TreeCompactions += ms.TreeCompactions
		out.LogCompactions += ms.LogCompactions
		out.ChainedCompactions += ms.ChainedCompactions
		out.GCRuns += ms.GCRuns
		out.GCRelocations += ms.GCRelocations
		out.Store = out.Store.Add(ms.Store)
		if ms.Cache != nil {
			if out.Cache == nil {
				out.Cache = new(cache.Stats)
			}
			*out.Cache = out.Cache.Add(*ms.Cache)
		}
		out.QueueWait.Merge(&qw)
		out.Service.Merge(&sv)
	}
	return out
}

// Metadata merges live members' metadata reports, same-name same-placement
// structures summing their bytes.
func (f *Fleet) Metadata() []device.MetaStructure {
	type slot struct{ idx int }
	var out []device.MetaStructure
	index := map[string]slot{}
	f.mu.Lock()
	members := f.members
	f.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		if m.state == stateDead {
			m.mu.Unlock()
			continue
		}
		meta := m.dev.Metadata()
		m.mu.Unlock()
		for _, ms := range meta {
			key := ms.Name
			if !ms.InDRAM {
				key += "\x00flash"
			}
			if s, ok := index[key]; ok {
				out[s.idx].Bytes += ms.Bytes
			} else {
				index[key] = slot{len(out)}
				out = append(out, ms)
			}
		}
	}
	return out
}
