package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// seedKeys builds a deterministic keyset from a seed, shaped like real
// workload keys rather than a dense counter.
func seedKeys(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user-%016x", rng.Uint64()))
	}
	return keys
}

// movedFraction counts keys whose owner changes between two topologies
// under the given routing function.
func movedFraction(keys [][]byte, before, after func(key []byte) int32) float64 {
	moved := 0
	for _, k := range keys {
		if before(k) != after(k) {
			moved++
		}
	}
	return float64(moved) / float64(len(keys))
}

// The consistent ring's whole point: adding or removing one member moves
// only about 1/N of the keys, while modulo routing reshuffles nearly
// everything. Asserted over two key seeds so a lucky keyset can't pass a
// broken ring.
func TestRingBoundedMovement(t *testing.T) {
	const n = 8
	ringN := BuildRing(seqMembers(n), 64)
	ringN1 := BuildRing(seqMembers(n+1), 64)
	for _, seed := range []int64{1, 0x5eed} {
		keys := seedKeys(seed, 4000)

		// Consistent: adding member n moves ~1/(n+1) of the keys — and
		// every moved key moves TO the new member, never between old ones.
		consMoved := 0
		for _, k := range keys {
			before, after := ringN.Owner(k), ringN1.Owner(k)
			if before != after {
				consMoved++
				if after != int32(n) {
					t.Fatalf("seed %#x: key %q moved %d→%d, not to the new member", seed, k, before, after)
				}
			}
		}
		consFrac := float64(consMoved) / float64(len(keys))
		ideal := 1.0 / float64(n+1)
		if consFrac > 2.5*ideal {
			t.Errorf("seed %#x: consistent add moved %.1f%% of keys, ideal %.1f%%", seed, consFrac*100, ideal*100)
		}
		if consFrac == 0 {
			t.Errorf("seed %#x: consistent add moved no keys", seed)
		}

		// Removing one member mirrors the bound: only its keys move.
		ringDrop := BuildRing(seqMembers(n)[:n-1], 64)
		dropFrac := movedFraction(keys, ringN.Owner, ringDrop.Owner)
		if dropFrac > 2.5/float64(n) {
			t.Errorf("seed %#x: consistent remove moved %.1f%% of keys, ideal %.1f%%", seed, dropFrac*100, 100.0/float64(n))
		}

		// Modulo: the same topology change reshuffles most of the keyspace
		// (the contrast that justifies the ring's existence).
		modN := func(k []byte) int32 { return int32(hashBytes(k) % n) }
		modN1 := func(k []byte) int32 { return int32(hashBytes(k) % (n + 1)) }
		modFrac := movedFraction(keys, modN, modN1)
		if modFrac < 3*consFrac {
			t.Errorf("seed %#x: modulo moved only %.1f%% vs consistent %.1f%% — contrast collapsed", seed, modFrac*100, consFrac*100)
		}
	}
}

// Replica walks must yield distinct members whose prefix is the
// single-owner route, and stay stable when an unrelated member joins.
func TestRingOwnersWalkStability(t *testing.T) {
	ring := BuildRing(seqMembers(6), 64)
	bigger := BuildRing(seqMembers(7), 64)
	keys := seedKeys(3, 2000)
	changed := 0
	for _, k := range keys {
		owners := ring.Owners(nil, k, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners", k, len(owners))
		}
		if owners[0] != ring.Owner(k) {
			t.Fatalf("key %q: walk head %d != Owner %d", k, owners[0], ring.Owner(k))
		}
		seen := map[int32]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner in walk %v", k, owners)
			}
			seen[o] = true
		}
		after := bigger.Owners(nil, k, 3)
		for i := range owners {
			if owners[i] != after[i] {
				changed++
				break
			}
		}
	}
	// Adding one member to six perturbs roughly R/(N+1) of walks; far more
	// means the walk isn't anchored to the ring geometry.
	if frac := float64(changed) / float64(len(keys)); frac > 0.75 {
		t.Errorf("walks changed for %.1f%% of keys after an unrelated join", frac*100)
	}
}
