// Package cluster is the host-side scale-out layer over the simulated
// KV-SSDs: a hash router spreading one keyspace across N independent shard
// devices, each driven by its own queue-depth-N host engine in its own
// virtual clock domain, with batched submission as the primary interface.
//
// The layer reproduces the standard deployment shape for KV-SSD fleets
// (host-side sharding, as surveyed by Doekemeijer & Trivedi and exercised by
// partitioned stores like F2): no shard ever sees another shard's keys, so
// each shard remains a single-goroutine virtual-time simulation, and the
// cluster coordinates them only at observation points.
//
// # Clock domains and the virtual-time merger
//
// Every shard's engine starts at the simulation epoch and advances only when
// that shard carries requests, so the shards' clocks drift apart exactly as
// much as the workload is imbalanced. Cross-shard instants are merged, never
// propagated: a batch completes at the maximum of its per-shard completion
// times, the cluster clock Now() is the maximum over shard clocks, and
// throughput over a phase is measured against the slowest shard's elapsed
// virtual time. Because no merged value ever feeds back into any shard's
// schedule, executing shard sub-batches serially or on parallel goroutines
// produces bit-identical completions, stats and traces.
//
// # Batches
//
// MultiPut/MultiGet/MultiDelete split the caller's batch by routing each key,
// preserve the caller's order within every shard (two writes to one key in a
// batch resolve to the later one), submit every sub-batch closed-loop through
// the shard's engine, and report per-operation completions plus the merged
// batch span.
//
// # Concurrency
//
// Every engine- or device-touching path takes its shard's mutex, so two
// rules fall out. First, concurrent callers that drive DISJOINT shards (the
// network server runs one goroutine per shard) never contend and never
// perturb each other's virtual clocks. Second, CollectStats snapshots each
// shard under that same mutex, so a metrics scraper may run concurrently
// with in-flight operations and always sees a consistent per-shard snapshot
// (it cannot observe a device mid-operation). The locks serialize access
// without reordering it — single-threaded callers see bit-identical results
// with or without a concurrent observer. Multi* batches share routing
// scratch and remain single-caller-at-a-time.
package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"anykey/internal/cache"
	"anykey/internal/device"
	"anykey/internal/host"
	"anykey/internal/kv"
	"anykey/internal/nand"
	"anykey/internal/sim"
	"anykey/internal/stats"
	"anykey/internal/trace"
	"anykey/internal/xxhash"
)

// Policy selects how keys map to shards.
type Policy int

const (
	// RouteConsistent places shards on a hash ring with VirtualNodes points
	// each and routes a key to the next point clockwise from its hash — the
	// classic consistent-hashing layout, where growing or shrinking a fleet
	// would move only the keys between neighbouring points.
	RouteConsistent Policy = iota
	// RouteModulo routes a key to hash(key) mod shards: perfectly balanced
	// for a fixed fleet, maximally disruptive to change.
	RouteModulo
)

var policyNames = map[Policy]string{
	RouteConsistent: "consistent",
	RouteModulo:     "modulo",
}

// String returns the policy's name.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config parameterises a cluster over already-constructed shard devices.
type Config struct {
	// QueueDepth is each shard engine's submission queue depth (default 1).
	QueueDepth int

	// Policy is the routing policy (default RouteConsistent).
	Policy Policy

	// VirtualNodes is the ring points per shard under RouteConsistent
	// (default 64). More points smooth the key balance at the cost of a
	// larger ring.
	VirtualNodes int

	// Workers bounds how many shard sub-batches run concurrently inside one
	// MultiPut/MultiGet/MultiDelete (default 1 = serial). Results are
	// bit-identical at any setting; Workers only trades goroutines for
	// wall-clock time.
	Workers int

	// Tracers, when non-nil, holds one tracer per shard; each is attached to
	// that shard's engine (the caller attaches the same tracer to the shard
	// device underneath). len(Tracers) must equal the shard count.
	Tracers []*trace.Tracer
}

// shard is one member device with its private engine and clock domain. mu
// guards the engine, the device beneath it and the ops tally: operations
// hold it while they run, and stats collection holds it while it snapshots,
// so an observer never reads a device mid-operation.
type shard struct {
	mu  sync.Mutex
	dev device.KVSSD
	eng *host.Engine
	tr  *trace.Tracer
	ops int64
}

// Cluster routes one keyspace across N shard devices.
type Cluster struct {
	shards  []*shard
	ring    Ring // only under RouteConsistent
	policy  Policy
	workers int

	// scratch buffers reused across batches: per-shard op-index lists and
	// the involved-shard list, so steady-state routing allocates nothing.
	byShard  [][]int
	involved []int
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint32
	member int32
}

// New builds a cluster over devs. Each device gets its own engine of
// cfg.QueueDepth starting at the simulation epoch.
func New(devs []device.KVSSD, cfg Config) (*Cluster, error) {
	if len(devs) == 0 {
		return nil, errors.New("cluster: no shard devices")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.VirtualNodes < 1 {
		return nil, fmt.Errorf("cluster: %d virtual nodes; need at least 1", cfg.VirtualNodes)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if _, ok := policyNames[cfg.Policy]; !ok {
		return nil, fmt.Errorf("cluster: unknown routing policy %v", cfg.Policy)
	}
	if cfg.Tracers != nil && len(cfg.Tracers) != len(devs) {
		return nil, fmt.Errorf("cluster: %d tracers for %d shards", len(cfg.Tracers), len(devs))
	}
	c := &Cluster{
		policy:  cfg.Policy,
		workers: cfg.Workers,
		byShard: make([][]int, len(devs)),
	}
	for i, dev := range devs {
		eng, err := host.New(dev, cfg.QueueDepth)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sh := &shard{dev: dev, eng: eng}
		if cfg.Tracers != nil {
			sh.tr = cfg.Tracers[i]
			eng.SetTracer(sh.tr)
		}
		c.shards = append(c.shards, sh)
	}
	if cfg.Policy == RouteConsistent {
		c.ring = BuildRing(seqMembers(len(devs)), cfg.VirtualNodes)
	}
	return c, nil
}

// Ring is the consistent-hash ring over a set of member IDs: VirtualNodes
// points per member, sorted by hash. It is a pure function of (member IDs,
// vnodes), so two processes — or the same fleet before and after a topology
// change — agree on every key's owners without coordination. The zero Ring
// is empty.
type Ring struct {
	points []ringPoint
}

// seqMembers returns the member IDs 0..n-1 — the fixed-fleet layout, where
// members are just shard indices.
func seqMembers(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// BuildRing hashes vnodes points per member onto the ring and sorts them.
// Point hashes come from the member ID and replica indices alone, so the
// ring is a pure function of (members, vnodes) and routing is reproducible
// across processes. For members 0..N-1 this is exactly the fixed-fleet ring
// the cluster has always built.
func BuildRing(members []int32, vnodes int) Ring {
	ring := make([]ringPoint, 0, len(members)*vnodes)
	var buf [8]byte
	for _, m := range members {
		s := uint32(m)
		for v := 0; v < vnodes; v++ {
			buf[0] = byte(s)
			buf[1] = byte(s >> 8)
			buf[2] = byte(s >> 16)
			buf[3] = byte(s >> 24)
			buf[4] = byte(v)
			buf[5] = byte(v >> 8)
			buf[6] = byte(v >> 16)
			buf[7] = byte(v >> 24)
			ring = append(ring, ringPoint{hash: hashBytes(buf[:]), member: m})
		}
	}
	// Sort by (hash, member) so equal hashes break ties deterministically.
	slices.SortFunc(ring, func(a, b ringPoint) int {
		switch {
		case a.hash != b.hash:
			if a.hash < b.hash {
				return -1
			}
			return 1
		case a.member != b.member:
			if a.member < b.member {
				return -1
			}
			return 1
		}
		return 0
	})
	return Ring{points: ring}
}

// Len returns the number of ring points.
func (r Ring) Len() int { return len(r.points) }

// successor returns the index of the first ring point at or clockwise-after
// hash h, wrapping at the top.
func (r Ring) successor(h uint32) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return lo
}

// Owner returns the member owning key: the next point clockwise from the
// key's hash.
func (r Ring) Owner(key []byte) int32 { return r.OwnerHash(hashBytes(key)) }

// OwnerHash is Owner for a pre-computed routing hash.
func (r Ring) OwnerHash(h uint32) int32 { return r.points[r.successor(h)].member }

// Owners appends to dst the first n DISTINCT members met walking clockwise
// from the key's hash — the replica set for replication factor n. Fewer than
// n members on the ring yields all of them. The walk starts at the key's
// owner, so Owners(key, 1)[0] == Owner(key) and growing n only ever appends.
func (r Ring) Owners(dst []int32, key []byte, n int) []int32 {
	return r.OwnersHash(dst, hashBytes(key), n)
}

// OwnersHash is Owners for a pre-computed routing hash.
func (r Ring) OwnersHash(dst []int32, h uint32, n int) []int32 {
	start := r.successor(h)
	base := len(dst)
	for i := 0; i < len(r.points) && len(dst)-base < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !containsMember(dst[base:], m) {
			dst = append(dst, m)
		}
	}
	return dst
}

// containsMember reports whether ids holds m (replica sets are tiny, so a
// linear scan beats any set structure).
func containsMember(ids []int32, m int32) bool {
	for _, v := range ids {
		if v == m {
			return true
		}
	}
	return false
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.shards) }

// Depth returns the per-shard engine queue depth.
func (c *Cluster) Depth() int { return c.shards[0].eng.Depth() }

// Policy returns the routing policy in force.
func (c *Cluster) Policy() Policy { return c.policy }

// ShardFor returns the shard a key routes to.
func (c *Cluster) ShardFor(key []byte) int {
	h := hashBytes(key)
	if c.policy == RouteModulo {
		return int(h % uint32(len(c.shards)))
	}
	return int(c.ring.OwnerHash(h))
}

// Now returns the merged cluster clock: the maximum over shard clocks.
func (c *Cluster) Now() sim.Time {
	var m sim.Time
	for _, sh := range c.shards {
		sh.mu.Lock()
		t := sh.eng.Now()
		sh.mu.Unlock()
		if t > m {
			m = t
		}
	}
	return m
}

// ShardNow returns shard s's clock — the epoch a wall-clock bridge maps
// real arrival times onto.
func (c *Cluster) ShardNow(s int) sim.Time {
	sh := c.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Now()
}

// Ops returns the total requests completed across all shards.
func (c *Cluster) Ops() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ops
		sh.mu.Unlock()
	}
	return n
}

// Barrier drains every shard's in-flight requests, aligning each shard's
// slot clocks internally (clock domains stay independent — no shard's clock
// is pushed to another's), and returns the merged cluster time.
func (c *Cluster) Barrier() sim.Time {
	var m sim.Time
	for _, sh := range c.shards {
		sh.mu.Lock()
		t := sh.eng.Barrier()
		sh.mu.Unlock()
		if t > m {
			m = t
		}
	}
	return m
}

// ResetBreakdowns clears every shard engine's queue-wait/service histograms
// (the harness calls this at its warm-up/measurement barrier).
func (c *Cluster) ResetBreakdowns() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.eng.ResetBreakdown()
		sh.mu.Unlock()
	}
}

// BatchResult reports one batch: a completion, routed shard and error per
// input operation (input order preserved), plus the merged batch span.
type BatchResult struct {
	// Completions holds each operation's host completion; Values of Gets are
	// copied out of the device, so unlike single-device Gets they stay valid
	// after subsequent operations.
	Completions []host.Completion
	// Shards holds the shard index each operation routed to.
	Shards []int
	// Errs holds each operation's error (nil on success; kv.ErrNotFound for
	// a Get of an absent key).
	Errs []error
	// Start is the merged cluster time over the involved shards when the
	// batch was submitted; Done the merged completion time. The batch as a
	// whole "completes" at Done — the semantics of a scatter-gather
	// submission that acknowledges when its last shard does.
	Start, Done sim.Time

	// Atomic marks a batch that committed (or aborted) as one unit through
	// the transaction layer's 2PC path rather than best-effort per shard;
	// TxnID is then the commit's transaction identifier. Both are zero on
	// plain Multi* batches.
	Atomic bool
	TxnID  uint64
}

// Latency returns the merged batch span Done − Start.
func (b *BatchResult) Latency() sim.Duration { return b.Done.Sub(b.Start) }

// FirstErr returns the first per-operation error in input order, nil if all
// operations succeeded.
func (b *BatchResult) FirstErr() error {
	for _, err := range b.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// route partitions n operations by shard, filling the reusable per-shard
// index lists, and returns the involved shards in ascending order.
func (c *Cluster) route(n int, keyAt func(int) []byte) []int {
	for _, s := range c.involved {
		c.byShard[s] = c.byShard[s][:0]
	}
	c.involved = c.involved[:0]
	for i := 0; i < n; i++ {
		s := c.ShardFor(keyAt(i))
		if len(c.byShard[s]) == 0 {
			c.involved = append(c.involved, s)
		}
		c.byShard[s] = append(c.byShard[s], i)
	}
	// involved accumulated in first-use order; sort ascending so worker
	// scheduling and progress output are stable. Shard counts are small.
	for i := 1; i < len(c.involved); i++ {
		for j := i; j > 0 && c.involved[j] < c.involved[j-1]; j-- {
			c.involved[j], c.involved[j-1] = c.involved[j-1], c.involved[j]
		}
	}
	return c.involved
}

// runBatch executes one partitioned batch: exec runs input operation i on
// its shard, in input order within the shard. Sub-batches run serially or on
// up to c.workers goroutines; per-shard state is only ever touched by the
// one goroutine carrying that shard, so results are identical either way.
func (c *Cluster) runBatch(n int, keyAt func(int) []byte, exec func(sh *shard, i int) (host.Completion, error)) *BatchResult {
	res := &BatchResult{
		Completions: make([]host.Completion, n),
		Shards:      make([]int, n),
		Errs:        make([]error, n),
	}
	involved := c.route(n, keyAt)
	for _, s := range involved {
		for _, i := range c.byShard[s] {
			res.Shards[i] = s
		}
		sh := c.shards[s]
		sh.mu.Lock()
		now := sh.eng.Now()
		sh.mu.Unlock()
		if now > res.Start {
			res.Start = now
		}
	}
	runShard := func(s int) {
		sh := c.shards[s]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, i := range c.byShard[s] {
			res.Completions[i], res.Errs[i] = exec(sh, i)
			sh.ops++
		}
	}
	if c.workers <= 1 || len(involved) <= 1 {
		for _, s := range involved {
			runShard(s)
		}
	} else {
		sem := make(chan struct{}, c.workers)
		var wg sync.WaitGroup
		for _, s := range involved {
			wg.Add(1)
			sem <- struct{}{}
			go func(s int) {
				defer wg.Done()
				runShard(s)
				<-sem
			}(s)
		}
		wg.Wait()
	}
	res.Done = res.Start
	for _, comp := range res.Completions {
		if comp.Done > res.Done {
			res.Done = comp.Done
		}
	}
	return res
}

// MultiPut stores keys[i] → values[i] for every i, routed by key. Batch
// order is preserved within each shard, so duplicate keys resolve to the
// later write.
func (c *Cluster) MultiPut(keys, values [][]byte) (*BatchResult, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("cluster: MultiPut with %d keys and %d values", len(keys), len(values))
	}
	return c.runBatch(len(keys), func(i int) []byte { return keys[i] },
		func(sh *shard, i int) (host.Completion, error) {
			return sh.eng.Put(keys[i], values[i])
		}), nil
}

// MultiGet reads every key. Absent keys report kv.ErrNotFound in Errs;
// returned values are copies owned by the caller.
func (c *Cluster) MultiGet(keys [][]byte) (*BatchResult, error) {
	return c.runBatch(len(keys), func(i int) []byte { return keys[i] },
		func(sh *shard, i int) (host.Completion, error) {
			comp, err := sh.eng.Get(keys[i])
			if comp.Value != nil {
				// The device owns its value buffer only until the shard's
				// next operation; a batch returns many values at once, so
				// each must be copied out.
				comp.Value = append([]byte(nil), comp.Value...)
			}
			return comp, err
		}), nil
}

// MultiDelete removes every key (deleting an absent key succeeds).
func (c *Cluster) MultiDelete(keys [][]byte) (*BatchResult, error) {
	return c.runBatch(len(keys), func(i int) []byte { return keys[i] },
		func(sh *shard, i int) (host.Completion, error) {
			return sh.eng.Delete(keys[i])
		}), nil
}

// BatchOp is one operation of a mixed put/delete batch: a Put of Key →
// Value, or — when Delete is set — a Delete of Key (Value ignored). The
// transaction layer expresses intent stamping, commits and cleanups as
// BatchOp batches so a single code path carries them.
type BatchOp struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Apply runs a mixed put/delete batch, routed by key with batch order
// preserved within each shard — MultiPut semantics for a batch whose
// operations aren't all the same verb.
func (c *Cluster) Apply(ops []BatchOp) (*BatchResult, error) {
	return c.runBatch(len(ops), func(i int) []byte { return ops[i].Key },
		func(sh *shard, i int) (host.Completion, error) {
			if ops[i].Delete {
				return sh.eng.Delete(ops[i].Key)
			}
			return sh.eng.Put(ops[i].Key, ops[i].Value)
		}), nil
}

// SyncShards flushes only the listed shards and returns the merged
// completion time — the transaction layer's targeted durability barrier
// (a commit needs its involved shards synced, not the whole fleet).
func (c *Cluster) SyncShards(shards []int) (sim.Time, error) {
	var done sim.Time
	var firstErr error
	for _, s := range shards {
		if s < 0 || s >= len(c.shards) {
			return done, fmt.Errorf("cluster: SyncShards: shard %d of %d", s, len(c.shards))
		}
		sh := c.shards[s]
		sh.mu.Lock()
		comp, err := sh.eng.Sync()
		sh.ops++
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: shard %d sync: %w", s, err)
		}
		if comp.Done > done {
			done = comp.Done
		}
	}
	return done, firstErr
}

// Put routes one pair to its shard.
func (c *Cluster) Put(key, value []byte) (host.Completion, error) {
	sh := c.shards[c.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.Put(key, value)
	sh.ops++
	return comp, err
}

// Get routes one read to its shard. The value is device-owned, valid until
// the shard's next operation — single-key reads skip the batch copy.
func (c *Cluster) Get(key []byte) (host.Completion, error) {
	sh := c.shards[c.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.Get(key)
	sh.ops++
	return comp, err
}

// Delete routes one delete to its shard.
func (c *Cluster) Delete(key []byte) (host.Completion, error) {
	sh := c.shards[c.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.Delete(key)
	sh.ops++
	return comp, err
}

// PutAt is the open-loop Put: the request arrives at the routed shard at
// the given instant of that shard's clock domain (shard clocks are
// independent; callers track a per-shard epoch). The shard index is
// returned so callers can account routing before submitting.
func (c *Cluster) PutAt(arrival sim.Time, key, value []byte) (host.Completion, int, error) {
	s := c.ShardFor(key)
	sh := c.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.PutAt(arrival, key, value)
	sh.ops++
	return comp, s, err
}

// GetAt is the open-loop Get. Like Get, the value is device-owned and valid
// until the shard's next operation.
func (c *Cluster) GetAt(arrival sim.Time, key []byte) (host.Completion, int, error) {
	s := c.ShardFor(key)
	sh := c.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.GetAt(arrival, key)
	sh.ops++
	return comp, s, err
}

// DeleteAt is the open-loop Delete.
func (c *Cluster) DeleteAt(arrival sim.Time, key []byte) (host.Completion, int, error) {
	s := c.ShardFor(key)
	sh := c.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.DeleteAt(arrival, key)
	sh.ops++
	return comp, s, err
}

// ScanAt is the open-loop range query against ONE shard: scans see only the
// keys routed to that shard, so a cluster-wide scan fans one ScanAt out to
// every shard and merges the sorted sub-results (the network server's SCAN
// does exactly this from its per-shard loops).
func (c *Cluster) ScanAt(s int, arrival sim.Time, start []byte, n int) (host.Completion, error) {
	sh := c.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comp, err := sh.eng.ScanAt(arrival, start, n)
	sh.ops++
	return comp, err
}

// Sync flushes every shard (an NVMe FLUSH fanned out cluster-wide) and
// returns the merged completion time.
func (c *Cluster) Sync() (sim.Time, error) {
	var done sim.Time
	var firstErr error
	for i, sh := range c.shards {
		sh.mu.Lock()
		comp, err := sh.eng.Sync()
		sh.ops++
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: shard %d sync: %w", i, err)
		}
		if comp.Done > done {
			done = comp.Done
		}
	}
	return done, firstErr
}

// ShardStats is the per-shard slice of a cluster stats rollup.
type ShardStats struct {
	Shard     int
	Ops       int64    // requests carried by this shard
	Now       sim.Time // the shard's clock
	LiveKeys  int64
	LiveBytes int64
	Flash     nand.Counters

	// Background-machinery activity, per shard — the metrics endpoint
	// exposes these as per-shard series so a scrape can watch one shard's
	// GC debt grow while its neighbours idle.
	TreeCompactions    int64
	LogCompactions     int64
	ChainedCompactions int64
	GCRuns             int64
	GCRelocations      int64

	// Store is the shard's flash payload-store memory accounting.
	Store nand.StoreFootprint
	// Cache holds the shard's host-cache counters; nil when the shard runs
	// uncached.
	Cache *cache.Stats
}

// Stats is the merged statistics view of a cluster: fleet-wide rollups plus
// the per-shard breakdown they were merged from.
type Stats struct {
	Shards int
	Ops    int64
	Now    sim.Time // merged cluster clock (max over shards)

	LiveKeys, LiveBytes int64
	Flash               nand.Counters

	TreeCompactions, LogCompactions, ChainedCompactions int64
	GCRuns, GCRelocations                               int64

	// Store sums the shards' payload-store footprints.
	Store nand.StoreFootprint
	// Cache sums the shards' host-cache counters; nil when no shard runs a
	// host cache.
	Cache *cache.Stats

	// ReadAccesses merges every shard's flash-accesses-per-read histogram.
	ReadAccesses *stats.IntHist

	// QueueWait and Service merge every shard engine's latency breakdown.
	QueueWait, Service stats.Histogram

	PerShard []ShardStats
}

// CollectStats merges every shard's live statistics into one rollup. Each
// shard is snapshotted under its mutex, so CollectStats is safe to call
// concurrently with in-flight operations: the scraper observes every shard
// between operations, never mid-flight.
func (c *Cluster) CollectStats() Stats {
	out := Stats{
		Shards:       len(c.shards),
		ReadAccesses: stats.NewIntHist(8),
		PerShard:     make([]ShardStats, 0, len(c.shards)),
	}
	for i, sh := range c.shards {
		sh.mu.Lock()
		st := sh.dev.Stats()
		var fc nand.Counters
		if st.Flash != nil {
			fc = st.Flash()
		}
		ss := ShardStats{
			Shard:              i,
			Ops:                sh.ops,
			Now:                sh.eng.Now(),
			LiveKeys:           st.LiveKeys,
			LiveBytes:          st.LiveBytes,
			Flash:              fc,
			TreeCompactions:    st.TreeCompactions,
			LogCompactions:     st.LogCompactions,
			ChainedCompactions: st.ChainedCompactions,
			GCRuns:             st.GCRuns,
			GCRelocations:      st.GCRelocations,
			Store:              device.FootprintOf(sh.dev),
			Cache:              CacheStatsOf(sh.dev),
		}
		if st.ReadAccesses != nil {
			out.ReadAccesses.Merge(st.ReadAccesses)
		}
		qw, sv := sh.eng.Breakdown()
		sh.mu.Unlock()
		out.PerShard = append(out.PerShard, ss)
		out.Ops += ss.Ops
		if ss.Now > out.Now {
			out.Now = ss.Now
		}
		out.LiveKeys += ss.LiveKeys
		out.LiveBytes += ss.LiveBytes
		out.Flash = out.Flash.Add(fc)
		out.TreeCompactions += ss.TreeCompactions
		out.LogCompactions += ss.LogCompactions
		out.ChainedCompactions += ss.ChainedCompactions
		out.GCRuns += ss.GCRuns
		out.GCRelocations += ss.GCRelocations
		out.Store = out.Store.Add(ss.Store)
		if ss.Cache != nil {
			if out.Cache == nil {
				out.Cache = &cache.Stats{}
			}
			*out.Cache = out.Cache.Add(*ss.Cache)
		}
		out.QueueWait.Merge(&qw)
		out.Service.Merge(&sv)
	}
	return out
}

// CacheStatsOf snapshots the host-cache counters of a (possibly wrapped)
// shard device; nil when the shard runs uncached.
func CacheStatsOf(dev device.KVSSD) *cache.Stats {
	if c, ok := dev.(*cache.Cache); ok {
		st := c.CacheStats()
		return &st
	}
	return nil
}

// ReleaseMemory eagerly frees every shard's page-payload memory (cluster
// close), each shard under its mutex so any in-flight operation on it
// finishes first. Sequential multi-fleet harness runs rely on this to keep
// only the live fleet's pages in the heap.
func (c *Cluster) ReleaseMemory() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		device.ReleaseMemory(sh.dev)
		sh.mu.Unlock()
	}
}

// Metadata merges the shards' metadata reports: structures with the same
// name and placement sum their bytes, keeping shard 0's row order.
func (c *Cluster) Metadata() []device.MetaStructure {
	type slot struct{ idx int }
	var out []device.MetaStructure
	index := map[string]slot{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		meta := sh.dev.Metadata()
		sh.mu.Unlock()
		for _, m := range meta {
			key := m.Name
			if !m.InDRAM {
				key += "\x00flash"
			}
			if s, ok := index[key]; ok {
				out[s.idx].Bytes += m.Bytes
			} else {
				index[key] = slot{len(out)}
				out = append(out, m)
			}
		}
	}
	return out
}

// Engine returns shard i's host engine (tests and advanced drivers).
func (c *Cluster) Engine(i int) *host.Engine { return c.shards[i].eng }

// Device returns shard i's underlying KVSSD.
func (c *Cluster) Device(i int) device.KVSSD { return c.shards[i].dev }

// Tracer returns shard i's tracer (nil when the cluster is untraced).
func (c *Cluster) Tracer(i int) *trace.Tracer { return c.shards[i].tr }

// Tracers returns the per-shard tracers (nil when the cluster is untraced).
func (c *Cluster) Tracers() []*trace.Tracer {
	var out []*trace.Tracer
	for _, sh := range c.shards {
		if sh.tr == nil {
			return nil
		}
		out = append(out, sh.tr)
	}
	return out
}

// Blame merges every shard tracer's blame report into one cluster-wide
// attribution (nil when untraced).
func (c *Cluster) Blame(opts trace.BlameOptions) *trace.BlameReport {
	trs := c.Tracers()
	if trs == nil {
		return nil
	}
	reports := make([]*trace.BlameReport, 0, len(trs))
	for _, tr := range trs {
		reports = append(reports, tr.Blame(opts))
	}
	return trace.MergeBlameReports(reports...)
}

// hashBytes is the routing hash. xxhash32 with a fixed seed: fast, stable
// across processes, and unrelated to the devices' internal hash-list seeds
// so routing cannot correlate with in-device placement.
func hashBytes(b []byte) uint32 { return xxhash.Sum32Seed(b, routingSeed) }

// HashKey exposes the routing hash to the fleet layer, which routes against
// the same rings this package builds.
func HashKey(b []byte) uint32 { return hashBytes(b) }

// routingSeed separates the routing hash stream from every other xxhash use
// in the simulator (device hash lists seed differently per device).
const routingSeed = 0x616e796b // "anyk"

// ErrNotFound re-exports the per-operation miss error for callers that only
// import this package.
var ErrNotFound = kv.ErrNotFound
