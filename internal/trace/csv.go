package trace

import (
	"bufio"
	"fmt"
	"io"
)

// CSV export: one row per op record and per event, in collection order, for
// ad-hoc scripting (awk/pandas) without a Chrome-trace parser. Columns:
//
//	record    "op" or "event"
//	name      op kind or event name
//	cause     attribution cause ("" for op rows)
//	track     "slot:N", "chip:N", "channel:N", "cpu:0", "bg:N"
//	op        linking sequence number (0 = none)
//	issue_ns  op arrival / event dispatch time
//	start_ns  op issue / event start time
//	end_ns    completion time
//	arg       event argument (PPA, block, count) or op failure flag
func (t *Tracer) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "record,name,cause,track,op,issue_ns,start_ns,end_ns,arg"); err != nil {
		return err
	}
	if t != nil {
		for _, op := range t.Ops() {
			failed := 0
			if op.Failed {
				failed = 1
			}
			if _, err := fmt.Fprintf(bw, "op,%s,,slot:%d,%d,%d,%d,%d,%d\n",
				op.Kind, op.Slot, op.Seq,
				int64(op.Arrival), int64(op.Issued), int64(op.Done), failed); err != nil {
				return err
			}
		}
		for _, ev := range t.Events() {
			if _, err := fmt.Fprintf(bw, "event,%s,%s,%s,%d,%d,%d,%d,%d\n",
				ev.Name, ev.Cause, ev.Track, ev.Op,
				int64(ev.Issue), int64(ev.Start), int64(ev.End), ev.Arg); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
