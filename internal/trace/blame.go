package trace

import (
	"fmt"
	"slices"
	"strings"

	"anykey/internal/sim"
	"anykey/internal/stats"
)

// Blame report: for every host operation whose latency lands above a chosen
// percentile, decompose its end-to-end time into named causes — the paper's
// interference analysis ("this P99 read was slow because it queued behind a
// compaction on die 3") as a first-class tool instead of a by-hand reading
// of traces.
//
// The decomposition leans on a scheduling invariant: every flash and CPU
// event records both when it was dispatched to its track (Issue) and when
// the track actually ran it (Start), and events on one track never overlap
// (sim.Timeline fills gaps but never double-books). So an op's time splits
// into
//
//   - submission-queue wait (Arrival → Issued): the host-side slot was busy
//     with earlier ops — blamed on the host queue;
//   - its own events' run time (their durations, clipped to the op's
//     lifetime): blamed on the op itself, or on the background duty the op
//     performed inline (a write-triggered flush, a fault retry);
//   - each own event's track wait (Issue → Start): walked against the
//     track's full schedule; time overlapping another event is blamed on
//     that event's cause, time in a gap on the next event to run (the
//     scheduler only leaves a gap when the slot is too small for the waiting
//     work, so the next occupant is what forced the wait);
//   - the remainder (fixed request overhead, inter-event firmware time):
//     blamed on the controller CPU.
//
// Anything not covered — an event the ring already overwrote, a track the
// tracer never saw — lands in CauseUnknown, so the report is honest about
// its own coverage: Coverage() is the fraction of blamed time carrying a
// real name.

// BlameOptions selects which ops a blame report covers.
type BlameOptions struct {
	// Percentile is the latency cut: ops at or above this percentile of
	// the traced latency distribution are decomposed. Default 99.
	Percentile float64
	// MaxOps caps the per-op detail rows retained (slowest first).
	// Default 64; the Summary always aggregates every qualifying op.
	MaxOps int
}

// OpBlame is the decomposition of one slow operation.
type OpBlame struct {
	Op     OpRecord
	Total  sim.Duration // end-to-end latency (Done − Arrival)
	Shares [NumCauses]sim.Duration
}

// Named returns the portion of Total attributed to named causes (everything
// but CauseUnknown), as a fraction in [0,1].
func (b OpBlame) Named() float64 {
	if b.Total <= 0 {
		return 1
	}
	return 1 - float64(b.Shares[CauseUnknown])/float64(b.Total)
}

// dominantCause returns the largest non-self, non-queue share, for the
// one-line rendering; falls back to the largest share overall.
func (b OpBlame) dominantCause() Cause {
	best, bestAny := CauseSelf, CauseSelf
	for c := Cause(0); c < NumCauses; c++ {
		if b.Shares[c] > b.Shares[bestAny] {
			bestAny = c
		}
		if c != CauseSelf && c != CauseHostQueue && c != CauseCPU &&
			b.Shares[c] > b.Shares[best] {
			best = c
		}
	}
	if b.Shares[best] > 0 {
		return best
	}
	return bestAny
}

// BlameReport attributes above-percentile op time to causes.
type BlameReport struct {
	Percentile float64
	Threshold  sim.Duration // latency at the percentile cut
	TotalOps   int          // ops traced
	BlamedOps  int          // ops at or above the threshold
	Ops        []OpBlame    // detailed rows, slowest first (≤ MaxOps)
	Summary    [NumCauses]sim.Duration
	Dropped    int64 // events the ring overwrote (coverage caveat)
}

// TotalBlamed returns the summed latency of all decomposed ops.
func (r *BlameReport) TotalBlamed() sim.Duration {
	var t sim.Duration
	for _, s := range r.Summary {
		t += s
	}
	return t
}

// Coverage returns the fraction of blamed time attributed to named causes.
func (r *BlameReport) Coverage() float64 {
	t := r.TotalBlamed()
	if t <= 0 {
		return 1
	}
	return 1 - float64(r.Summary[CauseUnknown])/float64(t)
}

// Share returns cause c's fraction of all blamed time.
func (r *BlameReport) Share(c Cause) float64 {
	t := r.TotalBlamed()
	if t <= 0 {
		return 0
	}
	return float64(r.Summary[c]) / float64(t)
}

// String renders the report: the cut, the aggregate cause breakdown, and
// the slowest individual ops with their dominant interferer.
func (r *BlameReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "blame: %d/%d ops at or above p%g (%v), coverage %.1f%%\n",
		r.BlamedOps, r.TotalOps, r.Percentile, r.Threshold, 100*r.Coverage())
	if r.Dropped > 0 {
		fmt.Fprintf(&sb, "  (ring overwrote %d events; early causes may be undercounted)\n", r.Dropped)
	}
	total := r.TotalBlamed()
	type row struct {
		c Cause
		d sim.Duration
	}
	rows := make([]row, 0, NumCauses)
	for c := Cause(0); c < NumCauses; c++ {
		if r.Summary[c] > 0 {
			rows = append(rows, row{c, r.Summary[c]})
		}
	}
	slices.SortFunc(rows, func(a, b row) int {
		switch {
		case a.d > b.d:
			return -1
		case a.d < b.d:
			return 1
		}
		return 0
	})
	for _, rw := range rows {
		fmt.Fprintf(&sb, "  %-15s %6.1f%%  %v\n", rw.c, 100*float64(rw.d)/float64(total), rw.d)
	}
	n := len(r.Ops)
	if n > 5 {
		n = 5
	}
	for i := 0; i < n; i++ {
		b := r.Ops[i]
		fmt.Fprintf(&sb, "  slowest[%d]: %s seq=%d lat=%v mostly %s (%.0f%% named)\n",
			i, b.Op.Kind, b.Op.Seq, b.Total, b.dominantCause(), 100*b.Named())
	}
	return sb.String()
}

// MergeBlameReports combines per-shard blame reports into one fleet-wide
// attribution: op and cause totals sum, the threshold reported is the
// highest per-shard cut (each shard's percentile was computed against its
// own latency distribution), and the detail rows are re-ranked slowest
// first across all shards. Nil inputs are skipped; merging nothing returns
// nil.
func MergeBlameReports(reports ...*BlameReport) *BlameReport {
	var out *BlameReport
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out == nil {
			out = &BlameReport{Percentile: r.Percentile}
		}
		if r.Threshold > out.Threshold {
			out.Threshold = r.Threshold
		}
		out.TotalOps += r.TotalOps
		out.BlamedOps += r.BlamedOps
		out.Dropped += r.Dropped
		for c := Cause(0); c < NumCauses; c++ {
			out.Summary[c] += r.Summary[c]
		}
		out.Ops = append(out.Ops, r.Ops...)
	}
	if out == nil {
		return nil
	}
	slices.SortStableFunc(out.Ops, func(a, b OpBlame) int {
		switch {
		case a.Total > b.Total:
			return -1
		case a.Total < b.Total:
			return 1
		}
		return 0
	})
	return out
}

// Blame builds the blame report from the tracer's retained ops and events.
// A nil tracer returns nil.
func (t *Tracer) Blame(opt BlameOptions) *BlameReport {
	if t == nil {
		return nil
	}
	if opt.Percentile <= 0 || opt.Percentile > 100 {
		opt.Percentile = 99
	}
	if opt.MaxOps <= 0 {
		opt.MaxOps = 64
	}
	ops := t.Ops()
	rep := &BlameReport{
		Percentile: opt.Percentile,
		TotalOps:   len(ops),
		Dropped:    t.DroppedEvents(),
	}
	if len(ops) == 0 {
		return rep
	}

	// The cut uses the same log-bucketed histogram as the harness reports,
	// so "above P99" here and in a report row mean the same value.
	var h stats.Histogram
	for _, op := range ops {
		h.Record(op.Latency())
	}
	rep.Threshold = h.Percentile(opt.Percentile)

	// Index events by op and by track (track lists sorted by start) once.
	events := t.Events()
	byOp := make(map[int64][]int, len(ops))
	byTrack := map[Track][]int{}
	for i, ev := range events {
		if ev.Op != 0 {
			byOp[ev.Op] = append(byOp[ev.Op], i)
		}
		byTrack[ev.Track] = append(byTrack[ev.Track], i)
	}
	for _, idxs := range byTrack {
		slices.SortFunc(idxs, func(a, b int) int {
			switch {
			case events[a].Start < events[b].Start:
				return -1
			case events[a].Start > events[b].Start:
				return 1
			}
			return 0
		})
	}

	for _, op := range ops {
		if op.Latency() < rep.Threshold {
			continue
		}
		b := blameOp(op, events, byOp[op.Seq], byTrack)
		rep.BlamedOps++
		for c := Cause(0); c < NumCauses; c++ {
			rep.Summary[c] += b.Shares[c]
		}
		rep.Ops = append(rep.Ops, b)
	}
	slices.SortFunc(rep.Ops, func(a, b OpBlame) int {
		switch {
		case a.Total > b.Total:
			return -1
		case a.Total < b.Total:
			return 1
		}
		return 0
	})
	if len(rep.Ops) > opt.MaxOps {
		rep.Ops = rep.Ops[:opt.MaxOps]
	}
	return rep
}

// blameOp decomposes one op. own lists indexes of events carrying the op's
// sequence number; byTrack gives each track's full schedule sorted by start.
func blameOp(op OpRecord, events []Event, own []int, byTrack map[Track][]int) OpBlame {
	b := OpBlame{Op: op, Total: op.Latency()}
	if b.Total <= 0 {
		return b
	}
	// A retried attempt's queue wait is retry amplification, not ordinary
	// host-queue pressure: the op is in the queue again only because its
	// previous attempt blew the client deadline.
	queueCause := CauseHostQueue
	if op.Attempt > 0 {
		queueCause = CauseRetry
	}
	b.Shares[queueCause] += op.QueueWait()

	for _, i := range own {
		ev := events[i]
		// Run time, clipped to the op's lifetime (an inline flush can
		// finish after the op's own completion is signalled).
		s, e := clip(ev.Start, ev.End, op.Arrival, op.Done)
		if e > s {
			b.Shares[selfCause(ev)] += e.Sub(s)
		}
		// Track wait: Issue → Start, walked against the track schedule.
		w0, w1 := clip(ev.Issue, ev.Start, op.Arrival, op.Done)
		if w1 > w0 {
			blameWindow(&b, events, byTrack[ev.Track], ev.Track, op.Seq, w0, w1)
		}
	}

	var sum sim.Duration
	for c := Cause(0); c < NumCauses; c++ {
		sum += b.Shares[c]
	}
	switch {
	case sum < b.Total:
		// Residual time outside any event: the fixed request overhead and
		// firmware bookkeeping between events — controller CPU.
		b.Shares[CauseCPU] += b.Total - sum
	case sum > b.Total:
		// Nested spans (a flush span over its own flash ops) can double
		// count; rescale so shares read as fractions of the latency.
		var acc sim.Duration
		for c := Cause(0); c < NumCauses; c++ {
			b.Shares[c] = sim.Duration(int64(b.Shares[c]) * int64(b.Total) / int64(sum))
			acc += b.Shares[c]
		}
		b.Shares[CauseCPU] += b.Total - acc // rounding remainder
	}
	return b
}

// blameWindow attributes the wait window [w0, w1) on one track: overlap
// with a scheduled event is that event's fault; a gap is the fault of the
// next event to run (the gap exists because the waiting work didn't fit).
func blameWindow(b *OpBlame, events []Event, track []int, tr Track, seq int64, w0, w1 sim.Time) {
	cur := w0
	for _, i := range track {
		ev := events[i]
		if ev.End <= cur || ev.Start == ev.End {
			continue
		}
		if ev.Start >= w1 {
			break
		}
		c := waitCause(ev, seq)
		if ev.Start > cur { // gap before this occupant
			b.Shares[c] += ev.Start.Sub(cur)
			cur = ev.Start
		}
		if e := minTime(ev.End, w1); e > cur {
			b.Shares[c] += e.Sub(cur)
			cur = e
		}
		if cur >= w1 {
			return
		}
	}
	if cur < w1 {
		// Schedule not covered by events: on the CPU track that is plain
		// firmware time; elsewhere the tracer genuinely doesn't know.
		c := CauseUnknown
		if tr.Kind() == TrackCPU {
			c = CauseCPU
		}
		b.Shares[c] += w1.Sub(cur)
	}
}

// selfCause classifies an op's own event: foreground flash work is the op
// itself (CauseSelf); background duty performed inline keeps its cause so
// an inline flush or compaction shows up by name.
func selfCause(ev Event) Cause {
	switch ev.Name {
	case EvWriteStall:
		return CauseWriteStall
	case EvReadRetry:
		return CauseFaultRetry
	case EvTimeout:
		return CauseTimeout
	case EvRetry:
		return CauseRetry
	case EvCPU:
		switch ev.Cause {
		case CauseHostRead, CauseHostWrite, CauseMeta:
			return CauseCPU
		}
		return ev.Cause
	}
	switch ev.Cause {
	case CauseHostRead, CauseHostWrite, CauseMeta:
		return CauseSelf
	}
	return ev.Cause
}

// waitCause classifies the event an op waited behind.
func waitCause(ev Event, seq int64) Cause {
	if ev.Op == seq {
		return CauseSelf // waiting behind our own earlier page
	}
	if ev.Name == EvReadRetry {
		return CauseFaultRetry
	}
	return ev.Cause
}

func clip(s, e, lo, hi sim.Time) (sim.Time, sim.Time) {
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	return s, e
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
