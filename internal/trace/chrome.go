package trace

import (
	"bufio"
	"fmt"
	"io"
	"slices"
)

// Chrome trace_event export: the collected events and op records rendered in
// the JSON "trace event format" that chrome://tracing and Perfetto load
// directly. The mapping is one process per resource class and one thread per
// instance, so the UI shows aligned rows:
//
//	pid 1 "host"        one thread per submission slot (op lifecycles)
//	pid 2 "flash dies"  one thread per chip (cell reads, programs)
//	pid 3 "channels"    one thread per channel (transfers)
//	pid 4 "controller"  the firmware CPU (hashing, merges)
//	pid 5 "background"  one thread per cause (flush/compaction/GC/stall spans)
//
// A cluster export (WriteChromeTraceCluster) repeats the block once per
// shard at a fixed pid stride, with every process name prefixed "shardN" —
// the shard id rides on the track labels, so Perfetto groups each shard's
// rows together and the single-device layout is the degenerate one-shard
// case.
//
// Spans become "X" complete events with microsecond ts/dur (the format's
// unit); instants become "i" events with process scope. Everything is
// emitted in one pass with no intermediate tree, so exporting a full ring
// stays cheap.

const (
	pidHost = 1 + iota
	pidChips
	pidChannels
	pidCPU
	pidBackground
)

// pidStride separates shards in a cluster export: shard i's processes are
// pids i*pidStride+1 … i*pidStride+5.
const pidStride = 8

// WriteChromeTrace writes the trace as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, []*Tracer{t}, false)
}

// WriteChromeTraceCluster merges per-shard tracers into one Chrome
// trace_event JSON document. Shard i's rows appear as separate processes
// named "shardN <class>" at a disjoint pid range, so one Perfetto view
// shows the whole fleet on a common virtual-time axis.
func WriteChromeTraceCluster(w io.Writer, tracers []*Tracer) error {
	return writeChromeTrace(w, tracers, true)
}

func writeChromeTrace(w io.Writer, tracers []*Tracer, shardLabels bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	e := &chromeEmitter{w: bw}
	for i, t := range tracers {
		base, prefix := 0, ""
		if shardLabels {
			base = i * pidStride
			prefix = fmt.Sprintf("shard%d ", i)
		}
		emitTracer(e, t, base, prefix)
	}
	if e.err != nil {
		return e.err
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// emitTracer streams one tracer's metadata, events and op records with all
// pids offset by pidBase and process names prefixed (both zero for the
// single-device export, which this function reproduces byte for byte).
func emitTracer(e *chromeEmitter, t *Tracer, pidBase int, prefix string) {
	e.metadata("process_name", pidBase+pidHost, 0, prefix+"host")
	e.metadata("process_name", pidBase+pidChips, 0, prefix+"flash dies")
	e.metadata("process_name", pidBase+pidChannels, 0, prefix+"channels")
	e.metadata("process_name", pidBase+pidCPU, 0, prefix+"controller")
	e.metadata("process_name", pidBase+pidBackground, 0, prefix+"background")
	e.metadata("thread_name", pidBase+pidCPU, 0, "cpu")

	if t == nil {
		return
	}
	threads := map[[2]int]string{}
	for _, ev := range t.Events() {
		pid, tid := chromeTrack(ev.Track)
		pid += pidBase
		threads[[2]int{pid, tid}] = threadName(ev.Track)
		if ev.Start == ev.End {
			e.instant(ev, pid, tid)
		} else {
			e.span(ev, pid, tid)
		}
	}
	for _, op := range t.Ops() {
		key := [2]int{pidBase + pidHost, int(op.Slot)}
		threads[key] = fmt.Sprintf("slot %d", op.Slot)
		e.op(op, pidBase+pidHost)
	}
	// Name threads deterministically regardless of event order.
	keys := make([][2]int, 0, len(threads))
	for k := range threads {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for _, k := range keys {
		e.metadata("thread_name", k[0], k[1], threads[k])
	}
}

// chromeTrack maps a trace track to a (pid, tid) pair.
func chromeTrack(tr Track) (pid, tid int) {
	switch tr.Kind() {
	case TrackChip:
		return pidChips, tr.Index()
	case TrackChannel:
		return pidChannels, tr.Index()
	case TrackCPU:
		return pidCPU, tr.Index()
	case TrackSlot:
		return pidHost, tr.Index()
	default:
		return pidBackground, tr.Index()
	}
}

// threadName labels a track's row in the UI.
func threadName(tr Track) string {
	switch tr.Kind() {
	case TrackChip:
		return fmt.Sprintf("die %d", tr.Index())
	case TrackChannel:
		return fmt.Sprintf("channel %d", tr.Index())
	case TrackCPU:
		return "cpu"
	case TrackSlot:
		return fmt.Sprintf("slot %d", tr.Index())
	default:
		c := Cause(tr.Index())
		return c.String()
	}
}

// chromeEmitter streams trace_event objects, remembering whether a comma is
// due and the first write error.
type chromeEmitter struct {
	w     *bufio.Writer
	wrote bool
	err   error
}

func (e *chromeEmitter) emit(format string, args ...any) {
	if e.err != nil {
		return
	}
	if e.wrote {
		if err := e.w.WriteByte(','); err != nil {
			e.err = err
			return
		}
	}
	e.wrote = true
	if _, err := fmt.Fprintf(e.w, format, args...); err != nil {
		e.err = err
	}
}

func (e *chromeEmitter) metadata(name string, pid, tid int, value string) {
	e.emit(`{"ph":"M","pid":%d,"tid":%d,"name":%q,"args":{"name":%q}}`,
		pid, tid, name, value)
}

// usec converts virtual nanoseconds to the format's microsecond floats.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

func (e *chromeEmitter) span(ev Event, pid, tid int) {
	e.emit(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"cat":%q,"ts":%g,"dur":%g,"args":{"cause":%q,"op":%d,"arg":%d,"queued_ns":%d}}`,
		pid, tid, ev.Name.String(), ev.Cause.String(),
		usec(int64(ev.Start)), usec(int64(ev.End.Sub(ev.Start))),
		ev.Cause.String(), ev.Op, ev.Arg, int64(ev.Start.Sub(ev.Issue)))
}

func (e *chromeEmitter) instant(ev Event, pid, tid int) {
	e.emit(`{"ph":"i","s":"p","pid":%d,"tid":%d,"name":%q,"cat":%q,"ts":%g,"args":{"cause":%q,"op":%d,"arg":%d}}`,
		pid, tid, ev.Name.String(), ev.Cause.String(),
		usec(int64(ev.Start)), ev.Cause.String(), ev.Op, ev.Arg)
}

func (e *chromeEmitter) op(op OpRecord, pid int) {
	e.emit(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"cat":"op","ts":%g,"dur":%g,"args":{"seq":%d,"queue_ns":%d,"service_ns":%d,"failed":%v}}`,
		pid, int(op.Slot), op.Kind.String(),
		usec(int64(op.Arrival)), usec(int64(op.Done.Sub(op.Arrival))),
		op.Seq, int64(op.QueueWait()), int64(op.Done.Sub(op.Issued)), op.Failed)
}
