package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"anykey/internal/sim"
)

var (
	chip0 = MakeTrack(TrackChip, 0)
	chan0 = MakeTrack(TrackChannel, 0)
)

// TestNilTracerSafe: a nil *Tracer is the disabled path — every method must
// be callable and observably inert.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	seq := tr.BeginOp(OpPut, 3, 0, 10)
	if seq != 0 {
		t.Fatalf("nil BeginOp = %d, want 0", seq)
	}
	tr.EndOp(seq, 20, false)
	tr.Span(chip0, EvCellRead, CauseHostRead, 0, 1, 2, 0)
	tr.Instant(chip0, EvPowerCut, CauseRecovery, 5, 0)
	tr.EnterScope(CauseRecovery)
	tr.ExitScope()
	tr.Reset()
	if tr.EventCount() != 0 || tr.DroppedEvents() != 0 {
		t.Fatal("nil tracer reports retained or dropped events")
	}
	if tr.Events() != nil || tr.Ops() != nil {
		t.Fatal("nil tracer returned non-nil slices")
	}
	if tr.Blame(BlameOptions{}) != nil {
		t.Fatal("nil tracer returned a blame report")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer Chrome export is not valid JSON: %s", buf.String())
	}
	buf.Reset()
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("nil WriteCSV: %v", err)
	}
}

// TestZeroAlloc pins the overhead contract from the package doc: the
// disabled (nil) path allocates nothing, and so does the enabled hot path —
// events land in the preallocated ring.
func TestZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		seq := nilTr.BeginOp(OpGet, 0, 0, 0)
		nilTr.Span(chip0, EvCellRead, CauseHostRead, 0, 1, 2, 42)
		nilTr.EndOp(seq, 3, false)
	}); n != 0 {
		t.Fatalf("nil tracer path allocates %.1f/op, want 0", n)
	}
	tr := New(Config{Events: 1 << 10, Ops: 1 << 8})
	if n := testing.AllocsPerRun(100, func() {
		seq := tr.BeginOp(OpGet, 0, 0, 0)
		tr.Span(chip0, EvCellRead, CauseHostRead, 0, 1, 2, 42)
		tr.Instant(chan0, EvProgramFail, CauseGC, 2, 7)
		tr.EndOp(seq, 3, false)
	}); n != 0 {
		t.Fatalf("enabled tracer hot path allocates %.1f/op, want 0", n)
	}
}

// TestRingWrap: overfilling the event ring keeps the newest events in
// insertion order and counts the overwritten ones.
func TestRingWrap(t *testing.T) {
	tr := New(Config{Events: 4, Ops: 4})
	for i := 0; i < 7; i++ {
		tr.Span(chip0, EvProgram, CauseFlush, sim.Time(i), sim.Time(i), sim.Time(i+1), int64(i))
	}
	if got := tr.EventCount(); got != 4 {
		t.Fatalf("EventCount = %d, want 4", got)
	}
	if got := tr.DroppedEvents(); got != 3 {
		t.Fatalf("DroppedEvents = %d, want 3", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 3); ev.Arg != want {
			t.Fatalf("Events()[%d].Arg = %d, want %d (oldest-first order)", i, ev.Arg, want)
		}
	}
	tr.Reset()
	if tr.EventCount() != 0 || tr.DroppedEvents() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

// TestScopeOverride: EnterScope relabels everything emitted until ExitScope
// — the recovery path uses this to tag ordinary reads as recovery I/O.
func TestScopeOverride(t *testing.T) {
	tr := New(Config{Events: 16, Ops: 4})
	tr.EnterScope(CauseRecovery)
	tr.Span(chip0, EvCellRead, CauseHostRead, 0, 0, 1, 0)
	tr.ExitScope()
	tr.Span(chip0, EvCellRead, CauseHostRead, 1, 1, 2, 0)
	evs := tr.Events()
	if evs[0].Cause != CauseRecovery {
		t.Fatalf("scoped event cause = %v, want recovery", evs[0].Cause)
	}
	if evs[1].Cause != CauseHostRead {
		t.Fatalf("post-scope event cause = %v, want host-read", evs[1].Cause)
	}
}

// chromeFile mirrors the trace_event JSON schema subset the export uses.
type chromeFile struct {
	DisplayTimeUnit string     `json:"displayTimeUnit"`
	TraceEvents     []chromeEv `json:"traceEvents"`
}

type chromeEv struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceRoundTrip: the export must be valid JSON that decodes into
// the trace_event schema with every required field populated.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := New(Config{Events: 64, Ops: 16})
	seq := tr.BeginOp(OpGet, 2, 100, 150)
	tr.Span(chip0, EvCellRead, CauseHostRead, 150, 200, 3200, 7)
	tr.Span(chan0, EvReadXfer, CauseHostRead, 3200, 3200, 3500, 7)
	tr.EndOp(seq, 4000, false)
	tr.Span(CPUTrack, EvCPU, CauseCompaction, 0, 0, 80, 0)
	tr.Instant(BGTrack(CauseRecovery), EvPowerCut, CauseRecovery, 9000, 3)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", f.DisplayTimeUnit)
	}
	var spans, instants, metas, opRows int
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Fatalf("event %d: negative dur %g", i, ev.Dur)
			}
			if ev.Cat == "op" {
				opRows++
				if _, ok := ev.Args["seq"]; !ok {
					t.Fatalf("op event %d missing args.seq", i)
				}
			}
		case "i":
			instants++
			if ev.S != "p" {
				t.Fatalf("instant %d: scope = %q, want p", i, ev.S)
			}
		case "M":
			metas++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("metadata %d: unexpected name %q", i, ev.Name)
			}
			continue
		default:
			t.Fatalf("event %d: unexpected ph %q", i, ev.Ph)
		}
		if ev.Pid < pidHost || ev.Pid > pidBackground {
			t.Fatalf("event %d: pid %d out of range", i, ev.Pid)
		}
		if ev.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
	}
	// 3 spans (cell read, xfer, cpu) + 1 op row, 1 instant, ≥6 metadata rows.
	if spans != 4 || opRows != 1 || instants != 1 || metas < 6 {
		t.Fatalf("spans=%d opRows=%d instants=%d metas=%d, want 4/1/1/≥6",
			spans, opRows, instants, metas)
	}
}

// TestCSVParse: the CSV export must parse with encoding/csv and carry one
// row per record plus the header.
func TestCSVParse(t *testing.T) {
	tr := New(Config{Events: 16, Ops: 4})
	seq := tr.BeginOp(OpPut, 1, 0, 10)
	tr.Span(chip0, EvProgram, CauseHostWrite, 10, 10, 600, 42)
	tr.EndOp(seq, 700, true)

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) != 3 { // header + 1 op + 1 event
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if got := strings.Join(rows[0], ","); got != "record,name,cause,track,op,issue_ns,start_ns,end_ns,arg" {
		t.Fatalf("header = %q", got)
	}
	if rows[1][0] != "op" || rows[1][1] != "put" || rows[1][8] != "1" {
		t.Fatalf("op row = %v", rows[1])
	}
	if rows[2][0] != "event" || rows[2][1] != "program" || rows[2][2] != "host-write" || rows[2][3] != "chip:0" {
		t.Fatalf("event row = %v", rows[2])
	}
}

// --- blame math -------------------------------------------------------------

// oneOpBlame builds a tracer with exactly the given background events and
// one op, and returns that op's decomposition (percentile 1 so it always
// qualifies).
func oneOpBlame(t *testing.T, build func(tr *Tracer)) OpBlame {
	t.Helper()
	tr := New(Config{Events: 64, Ops: 8})
	build(tr)
	rep := tr.Blame(BlameOptions{Percentile: 1})
	if rep.BlamedOps != 1 || len(rep.Ops) != 1 {
		t.Fatalf("BlamedOps=%d len(Ops)=%d, want 1/1", rep.BlamedOps, len(rep.Ops))
	}
	return rep.Ops[0]
}

// TestBlameQueueAndResidual: an op with no events at all decomposes into its
// submission-queue wait plus controller-CPU residual — nothing unknown.
func TestBlameQueueAndResidual(t *testing.T) {
	b := oneOpBlame(t, func(tr *Tracer) {
		seq := tr.BeginOp(OpGet, 0, 0, 100)
		tr.EndOp(seq, 250, false)
	})
	if b.Total != 250 {
		t.Fatalf("Total = %v, want 250", b.Total)
	}
	if b.Shares[CauseHostQueue] != 100 {
		t.Fatalf("host-queue share = %v, want 100", b.Shares[CauseHostQueue])
	}
	if b.Shares[CauseCPU] != 150 {
		t.Fatalf("cpu residual = %v, want 150", b.Shares[CauseCPU])
	}
	if b.Named() != 1 {
		t.Fatalf("Named = %v, want 1", b.Named())
	}
}

// TestBlameWaitBehindCompaction: the op's flash read was dispatched at t=0
// but ran at t=150 because a compaction held the die — including the
// scheduling gap before the compaction started. All 150ns must be blamed on
// the compaction.
func TestBlameWaitBehindCompaction(t *testing.T) {
	b := oneOpBlame(t, func(tr *Tracer) {
		tr.Span(chip0, EvProgram, CauseCompaction, 0, 50, 150, 0) // gap [0,50) then busy
		seq := tr.BeginOp(OpGet, 0, 0, 0)
		tr.Span(chip0, EvCellRead, CauseHostRead, 0, 150, 250, 0)
		tr.EndOp(seq, 250, false)
	})
	if b.Total != 250 {
		t.Fatalf("Total = %v, want 250", b.Total)
	}
	if b.Shares[CauseCompaction] != 150 {
		t.Fatalf("compaction share = %v, want 150 (100 busy + 50 gap)", b.Shares[CauseCompaction])
	}
	if b.Shares[CauseSelf] != 100 {
		t.Fatalf("self share = %v, want 100", b.Shares[CauseSelf])
	}
	if b.Shares[CauseUnknown] != 0 {
		t.Fatalf("unknown share = %v, want 0", b.Shares[CauseUnknown])
	}
}

// TestBlameOverCountRescale: nested own spans (a flush span over its own
// program) double-count; shares must be rescaled to sum to the latency.
func TestBlameOverCountRescale(t *testing.T) {
	b := oneOpBlame(t, func(tr *Tracer) {
		seq := tr.BeginOp(OpPut, 0, 0, 0)
		tr.Span(BGTrack(CauseFlush), EvFlush, CauseFlush, 0, 0, 100, 0)
		tr.Span(chip0, EvProgram, CauseFlush, 0, 0, 100, 0)
		tr.EndOp(seq, 100, false)
	})
	var sum sim.Duration
	for c := Cause(0); c < NumCauses; c++ {
		sum += b.Shares[c]
	}
	if sum != b.Total {
		t.Fatalf("rescaled shares sum to %v, want Total %v", sum, b.Total)
	}
	if b.Shares[CauseFlush] <= 0 {
		t.Fatalf("flush share = %v, want > 0", b.Shares[CauseFlush])
	}
}

// TestBlameUnknownCoverage: a wait on a non-CPU track with no recorded
// occupant is honest ignorance — CauseUnknown — and lowers Coverage.
func TestBlameUnknownCoverage(t *testing.T) {
	tr := New(Config{Events: 64, Ops: 8})
	seq := tr.BeginOp(OpGet, 0, 0, 0)
	tr.Span(chip0, EvCellRead, CauseHostRead, 0, 150, 250, 0) // waited 150 on an empty track
	tr.EndOp(seq, 250, false)
	rep := tr.Blame(BlameOptions{Percentile: 1})
	b := rep.Ops[0]
	if b.Shares[CauseUnknown] != 150 {
		t.Fatalf("unknown share = %v, want 150", b.Shares[CauseUnknown])
	}
	if cov := rep.Coverage(); cov >= 1 {
		t.Fatalf("Coverage = %v, want < 1", cov)
	}
	if !strings.Contains(rep.String(), "unknown") {
		t.Fatalf("report rendering omits the unknown bucket:\n%s", rep.String())
	}
}

// TestBlameThresholdMatchesHistogram: the percentile cut must select the
// same ops a harness histogram would call above-P90.
func TestBlameThresholdMatchesHistogram(t *testing.T) {
	tr := New(Config{Events: 4, Ops: 256})
	for i := 0; i < 100; i++ {
		lat := sim.Duration(1000)
		if i >= 85 {
			lat = sim.Duration(1_000_000) // 15 slow ops, far above the cut
		}
		seq := tr.BeginOp(OpGet, 0, sim.Time(i*1_000_000), sim.Time(i*1_000_000))
		tr.EndOp(seq, sim.Time(i*1_000_000).Add(lat), false)
	}
	// p90 rank lands inside the slow group: only the slow ops are at or
	// above the threshold.
	rep := tr.Blame(BlameOptions{Percentile: 90, MaxOps: 3})
	if rep.TotalOps != 100 {
		t.Fatalf("TotalOps = %d, want 100", rep.TotalOps)
	}
	if rep.Threshold <= 1000 || rep.Threshold > 1_000_000 {
		t.Fatalf("Threshold = %v, want inside the slow group", rep.Threshold)
	}
	if rep.BlamedOps != 15 {
		t.Fatalf("BlamedOps = %d, want the 15 slow ops (threshold %v)", rep.BlamedOps, rep.Threshold)
	}
	if len(rep.Ops) != 3 {
		t.Fatalf("len(Ops) = %d, want MaxOps cap of 3", len(rep.Ops))
	}
	for i := 1; i < len(rep.Ops); i++ {
		if rep.Ops[i].Total > rep.Ops[i-1].Total {
			t.Fatal("detail rows not sorted slowest-first")
		}
	}
}
