// Package trace is the virtual-time event-tracing subsystem of the
// simulated KV-SSD. Every layer of the stack — the host submission engine,
// the FTL firmware and the NAND flash array — emits structured events into
// one ring-buffer collector: host operation lifecycle records
// (submit → queue → service), flash page reads/programs/erases tagged with
// the cause that issued them, controller-CPU occupancy, and background
// activity spans (flush, compaction, GC, recovery, write stalls). Three
// consumers sit on top: a Chrome trace_event JSON export (chrome.go) for
// chrome://tracing / Perfetto, a CSV dump (csv.go) for scripting, and a
// tail-latency blame report (blame.go) that attributes each slow operation's
// time to the activity it was scheduled behind.
//
// The disabled path costs nothing: a nil *Tracer is a valid receiver for
// every method, each of which begins with a nil check and allocates nothing.
// The enabled path is allocation-free too — events land in a preallocated
// ring that overwrites its oldest entries when full — so tracing never
// perturbs the virtual-time simulation it observes (it only reads the
// schedule, never changes it).
//
// The package is a leaf: it depends only on internal/sim and internal/stats
// so that every other layer may import it.
package trace

import (
	"fmt"

	"anykey/internal/sim"
)

// Cause classifies why time was spent: the issuing context of a flash or
// CPU event, and the attribution buckets of the blame report. The first six
// values mirror internal/nand's flash-operation causes (with the user cause
// split by direction); the rest name host-side and derived buckets.
type Cause uint8

// Cause values. HostRead/HostWrite are the foreground request path; Flush,
// Compaction, GC, Meta and Log are the firmware's background machinery
// (matching the flash counters of Table 3); Recovery labels post-power-cut
// remount I/O; FaultRetry the extra cell reads of injected transient read
// errors. HostQueue, WriteStall, CPU, Self and Unknown exist for blame
// attribution: time queued for a submission slot, time gated behind lagging
// background work, controller-CPU time (hashing, merging, fixed request
// overhead), the operation's own flash work, and anything left over.
// Timeout and Retry are the open-loop client's buckets: time an attempt ran
// past its client deadline, and queue wait incurred by a re-submitted
// (retried) attempt — the signature of retry amplification under overload.
// TxnPrepare, TxnValidateAbort and SplitMerge are the transaction layer's
// buckets: 2PC intent stamping, work thrown away by an OCC validation
// failure, and split-phase merges of batched commutative ops on hot keys.
//
// Ordering is load-bearing twice over: the first six values are pinned to
// internal/nand's flash-cause ordinals (see CauseFromFlash), and
// CauseUnknown must stay the last bucket before NumCauses (report consumers
// treat Shares[len-1] as the unnamed remainder). New causes go between
// CauseSelf and CauseTimeout.
const (
	CauseHostRead Cause = iota
	CauseHostWrite
	CauseFlush
	CauseCompaction
	CauseGC
	CauseMeta
	CauseLog
	CauseRecovery
	CauseFaultRetry
	CauseHostQueue
	CauseWriteStall
	CauseCPU
	CauseSelf
	CauseTxnPrepare
	CauseTxnValidateAbort
	CauseSplitMerge
	CauseTimeout
	CauseRetry
	CauseUnknown
	NumCauses
)

var causeNames = [NumCauses]string{
	"host-read", "host-write", "flush", "compaction", "gc", "meta", "log",
	"recovery", "fault-retry", "host-queue", "write-stall", "controller-cpu",
	"self", "txn-prepare", "txn-validate-abort", "split-merge",
	"timeout", "retry", "unknown",
}

// String returns the cause's lowercase name.
func (c Cause) String() string {
	if c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// CauseFromFlash maps internal/nand's Cause ordinal (user, flush,
// compaction, gc, meta, log) to a trace Cause, splitting the user cause by
// transfer direction. nand cannot be imported from here (it imports this
// package); a test in internal/nand pins the orderings to each other.
func CauseFromFlash(flashCause int, write bool) Cause {
	switch flashCause {
	case 0:
		if write {
			return CauseHostWrite
		}
		return CauseHostRead
	case 1:
		return CauseFlush
	case 2:
		return CauseCompaction
	case 3:
		return CauseGC
	case 4:
		return CauseMeta
	case 5:
		return CauseLog
	}
	return CauseUnknown
}

// Name identifies what an event is, independent of why it happened.
type Name uint8

// Event names. The flash four (cell read, transfer in either direction,
// program, erase) occupy die and channel tracks; EvReadRetry is the
// fault-injected extra cell time of a transient read error; EvCPU is
// controller-CPU occupancy (key hashing, compaction merges). The span names
// mark firmware activity windows, and the last three are instant markers.
const (
	EvCellRead Name = iota
	EvReadXfer
	EvWriteXfer
	EvProgram
	EvErase
	EvReadRetry
	EvCPU
	EvFlush
	EvCompaction
	EvGC
	EvRecovery
	EvWriteStall
	EvPowerCut
	EvProgramFail
	EvEraseFail
	EvTimeout
	EvRetry
	EvTxnPrepare
	EvTxnAbort
	EvSplitMerge
	numNames
)

var eventNames = [numNames]string{
	"cell-read", "read-xfer", "write-xfer", "program", "erase", "read-retry",
	"cpu", "flush", "compaction", "gc", "recovery", "write-stall",
	"power-cut", "program-fail", "erase-fail", "timeout", "retry",
	"txn-prepare", "txn-abort", "split-merge",
}

// String returns the event name.
func (n Name) String() string {
	if n >= numNames {
		return fmt.Sprintf("event(%d)", int(n))
	}
	return eventNames[n]
}

// TrackKind is the class of resource or lane an event lives on.
type TrackKind uint8

// Track kinds: flash dies, flash channels, the controller CPU, host
// submission slots, and per-cause background lanes (spans that describe
// activity windows rather than hardware occupancy).
const (
	TrackChip TrackKind = iota + 1
	TrackChannel
	TrackCPU
	TrackSlot
	TrackBG
)

var trackKindNames = [...]string{"?", "chip", "channel", "cpu", "slot", "bg"}

// Track encodes (kind, index) in one comparable word: kind in the top byte,
// index in the low 24 bits.
type Track int32

// MakeTrack builds a track id from a kind and index.
func MakeTrack(k TrackKind, idx int) Track {
	return Track(uint32(k)<<24 | uint32(idx)&0x00FFFFFF)
}

// CPUTrack is the controller-CPU occupancy track.
var CPUTrack = MakeTrack(TrackCPU, 0)

// BGTrack returns the background lane for a cause, so flush, compaction, GC
// and stall spans render on separate rows.
func BGTrack(c Cause) Track { return MakeTrack(TrackBG, int(c)) }

// Kind returns the track's kind.
func (t Track) Kind() TrackKind { return TrackKind(uint32(t) >> 24) }

// Index returns the track's index within its kind.
func (t Track) Index() int { return int(uint32(t) & 0x00FFFFFF) }

// String renders "kind:index".
func (t Track) String() string {
	k := t.Kind()
	if int(k) < len(trackKindNames) {
		return fmt.Sprintf("%s:%d", trackKindNames[k], t.Index())
	}
	return fmt.Sprintf("track(%d):%d", int(k), t.Index())
}

// Event is one traced occurrence: a span of occupancy on a track
// (Start < End) or an instant marker (Start == End). Issue records when the
// work was dispatched to the resource, so Start − Issue is the time it
// queued there — the quantity the blame report attributes to whatever held
// the track during that window. Op links the event to the host operation in
// whose service it was emitted (0 = none); Arg carries per-name context (a
// PPA, a block id, a retry or merge count).
type Event struct {
	Issue sim.Time
	Start sim.Time
	End   sim.Time
	Op    int64
	Arg   int64
	Track Track
	Name  Name
	Cause Cause
}

// Duration is the event's span length.
func (e Event) Duration() sim.Duration { return e.End.Sub(e.Start) }

// OpKind is the host operation type of an OpRecord.
type OpKind uint8

// Host operation kinds.
const (
	OpPut OpKind = iota
	OpGet
	OpDelete
	OpScan
	OpSync
	numOpKinds
)

var opKindNames = [numOpKinds]string{"put", "get", "delete", "scan", "sync"}

// String returns the operation kind's name.
func (k OpKind) String() string {
	if k >= numOpKinds {
		return fmt.Sprintf("op(%d)", int(k))
	}
	return opKindNames[k]
}

// OpRecord is the lifecycle of one host operation: generated at Arrival,
// issued to the device at Issued (the difference is submission-queue wait),
// completed at Done. Seq is the tracer-wide sequence number linking the
// events emitted during its service. Attempt is the open-loop client's
// submission attempt number: 0 for a fresh arrival, k for the k-th retry
// after client timeouts (closed-loop ops are always 0).
type OpRecord struct {
	Seq     int64
	Arrival sim.Time
	Issued  sim.Time
	Done    sim.Time
	Slot    int32
	Attempt int32
	Kind    OpKind
	Failed  bool
}

// Latency is the operation's end-to-end time.
func (o OpRecord) Latency() sim.Duration { return o.Done.Sub(o.Arrival) }

// QueueWait is the time spent waiting for a submission slot.
func (o OpRecord) QueueWait() sim.Duration { return o.Issued.Sub(o.Arrival) }

// Config sizes a tracer's rings. Zero fields take the defaults.
type Config struct {
	// Events is the event-ring capacity (default 1<<18 ≈ 262k events,
	// ~14 MB). When full, the oldest events are overwritten and
	// DroppedEvents counts them.
	Events int
	// Ops is the op-record ring capacity (default 1<<16).
	Ops int
}

const (
	defaultEventCap = 1 << 18
	defaultOpCap    = 1 << 16
)

// scopeNone marks the cause-override scope as inactive.
const scopeNone Cause = 0xFF

// Tracer collects events and op records into fixed-capacity rings. It is
// not safe for concurrent use — the simulation is single-goroutine virtual
// time by design, and each traced device owns its own tracer.
//
// A nil *Tracer is valid for every method and records nothing; call sites
// therefore need no guards beyond holding the pointer.
type Tracer struct {
	ev  []Event
	nEv int64 // total events ever pushed; ring index is nEv % cap

	ops  []OpRecord
	nOps int64

	seq     int64 // last allocated op sequence number
	curOp   int64 // op whose service is in flight (0 = none)
	pending OpRecord

	scope Cause // when ≠ scopeNone, overrides the cause of emitted events
}

// New returns an empty tracer with the configured ring capacities.
func New(cfg Config) *Tracer {
	if cfg.Events <= 0 {
		cfg.Events = defaultEventCap
	}
	if cfg.Ops <= 0 {
		cfg.Ops = defaultOpCap
	}
	return &Tracer{
		ev:    make([]Event, cfg.Events),
		ops:   make([]OpRecord, cfg.Ops),
		scope: scopeNone,
	}
}

// Enabled reports whether events are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// BeginOp opens a host operation record and tags subsequently emitted
// events with its sequence number. It returns the sequence number for the
// matching EndOp. On a nil tracer it returns 0.
func (t *Tracer) BeginOp(kind OpKind, slot int, arrival, issued sim.Time) int64 {
	if t == nil {
		return 0
	}
	t.seq++
	t.curOp = t.seq
	t.pending = OpRecord{
		Seq:     t.seq,
		Arrival: arrival,
		Issued:  issued,
		Slot:    int32(slot),
		Kind:    kind,
	}
	return t.seq
}

// EndOp closes the operation opened by BeginOp and appends its record.
func (t *Tracer) EndOp(seq int64, done sim.Time, failed bool) {
	if t == nil || seq == 0 {
		return
	}
	if t.pending.Seq == seq {
		t.pending.Done = done
		t.pending.Failed = failed
		t.ops[t.nOps%int64(len(t.ops))] = t.pending
		t.nOps++
	}
	if t.curOp == seq {
		t.curOp = 0
	}
}

// LastOpSeq returns the sequence number of the most recently completed op
// record, or 0 when none. The open-loop harness reads it right after a
// submission completes to tag client-side timeout/retry events with the
// device-assigned op.
func (t *Tracer) LastOpSeq() int64 {
	if t == nil || t.nOps == 0 {
		return 0
	}
	return t.ops[(t.nOps-1)%int64(len(t.ops))].Seq
}

// MarkAttempt tags op record seq as submission attempt n (0 = fresh
// arrival). Called by the open-loop client after a retried submission
// completes, so the blame report can charge the attempt's queue wait to
// retry amplification instead of the host queue. The record is found by
// scanning back from the newest entry; a seq the ring already overwrote is
// silently ignored.
func (t *Tracer) MarkAttempt(seq int64, attempt int32) {
	if t == nil || seq == 0 {
		return
	}
	n := min64(t.nOps, int64(len(t.ops)))
	for i := int64(1); i <= n; i++ {
		at := (t.nOps - i) % int64(len(t.ops))
		if t.ops[at].Seq == seq {
			t.ops[at].Attempt = attempt
			return
		}
	}
}

// OpSpan records a span tagged with an explicit op sequence number instead
// of the in-flight one — the open-loop client uses it to mark an attempt's
// deadline overrun [deadline, done] after EndOp has already closed the op.
// The cause scope is not applied: the caller names the cause it is charging.
func (t *Tracer) OpSpan(track Track, name Name, cause Cause, op int64, issue, start, end sim.Time, arg int64) {
	if t == nil {
		return
	}
	t.ev[t.nEv%int64(len(t.ev))] = Event{
		Issue: issue, Start: start, End: end,
		Op: op, Arg: arg,
		Track: track, Name: name, Cause: cause,
	}
	t.nEv++
}

// Span records one span event on a track. The in-flight op (if any) and the
// active cause scope are applied here, so emitters pass only what they know
// locally.
func (t *Tracer) Span(track Track, name Name, cause Cause, issue, start, end sim.Time, arg int64) {
	if t == nil {
		return
	}
	if t.scope != scopeNone {
		cause = t.scope
	}
	t.ev[t.nEv%int64(len(t.ev))] = Event{
		Issue: issue, Start: start, End: end,
		Op: t.curOp, Arg: arg,
		Track: track, Name: name, Cause: cause,
	}
	t.nEv++
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(track Track, name Name, cause Cause, at sim.Time, arg int64) {
	t.Span(track, name, cause, at, at, at, arg)
}

// EnterScope overrides the cause of every event emitted until ExitScope —
// used to label recovery I/O, which flows through the ordinary read path.
func (t *Tracer) EnterScope(c Cause) {
	if t != nil {
		t.scope = c
	}
}

// ExitScope ends the cause override.
func (t *Tracer) ExitScope() {
	if t != nil {
		t.scope = scopeNone
	}
}

// Reset discards collected events and op records (sequence numbers keep
// counting). The harness resets at its warm-up/measurement barrier so
// traces and blame cover the measured phase only.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.nEv = 0
	t.nOps = 0
	t.curOp = 0
	t.pending = OpRecord{}
}

// EventCount returns how many events are currently retained.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	return int(min64(t.nEv, int64(len(t.ev))))
}

// DroppedEvents returns how many events the ring has overwritten.
func (t *Tracer) DroppedEvents() int64 {
	if t == nil {
		return 0
	}
	return t.nEv - min64(t.nEv, int64(len(t.ev)))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return ringSlice(t.ev, t.nEv)
}

// Ops returns the retained op records, oldest first.
func (t *Tracer) Ops() []OpRecord {
	if t == nil {
		return nil
	}
	return ringSlice(t.ops, t.nOps)
}

// ringSlice copies the live window of a ring into a fresh slice in
// insertion order.
func ringSlice[T any](ring []T, n int64) []T {
	c := int64(len(ring))
	if n <= c {
		return append([]T(nil), ring[:n]...)
	}
	out := make([]T, c)
	at := n % c
	copy(out, ring[at:])
	copy(out[c-at:], ring[:at])
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
