package sim

import "sort"

// Timeline models a resource (flash die, channel) that distinguishes
// foreground work (host reads) from background work (flush, compaction and
// GC I/O). Background operations are throttled to a duty cycle, leaving
// idle gaps on the resource, and foreground operations gap-fill: they take
// the earliest hole long enough to run. This mirrors how SSD controllers
// prioritise host I/O over background traffic; without it, a compaction
// burst issued at one instant would serialise every later read behind the
// whole batch and p50 latencies would be compaction-sized.
//
// Correctness of pruning relies on the caller's guarantee that once a
// foreground operation has been scheduled at time W, no future operation
// (foreground or background) is scheduled before W. The virtual-time
// drivers in this repository issue foreground work in non-decreasing order
// and trigger background work from foreground instants, satisfying this.
type Timeline struct {
	ivls   []interval // sorted, non-overlapping busy intervals ≥ watermark
	bgGate Time       // earliest start for the next background op
	busy   Duration
}

type interval struct{ start, end Time }

// Schedule books a foreground operation of duration d issued at `at` into
// the earliest available gap and returns its completion time.
func (t *Timeline) Schedule(at Time, d Duration) Time {
	_, done := t.ScheduleSpan(at, d)
	return done
}

// ScheduleSpan is Schedule returning the placed interval, which tracing
// needs to record where the gap-filled operation actually ran.
func (t *Timeline) ScheduleSpan(at Time, d Duration) (start, done Time) {
	start = t.place(at, d)
	t.insert(start, d)
	return start, start.Add(d)
}

// ScheduleBG books a background operation issued at `at`. Consecutive
// background operations are separated by idle time `idle` (the throttle
// gap), which foreground operations may gap-fill.
func (t *Timeline) ScheduleBG(at Time, d Duration, idle Duration) Time {
	_, done := t.ScheduleBGSpan(at, d, idle)
	return done
}

// ScheduleBGSpan is ScheduleBG returning the placed interval.
func (t *Timeline) ScheduleBGSpan(at Time, d Duration, idle Duration) (start, done Time) {
	if at < t.bgGate {
		at = t.bgGate
	}
	start = t.place(at, d)
	t.insert(start, d)
	done = start.Add(d)
	t.bgGate = done.Add(idle)
	return start, done
}

// place finds the earliest start ≥ at where d fits.
func (t *Timeline) place(at Time, d Duration) Time {
	start := at
	// Skip intervals that end before the candidate start.
	i := sort.Search(len(t.ivls), func(i int) bool { return t.ivls[i].end > start })
	for ; i < len(t.ivls); i++ {
		iv := t.ivls[i]
		if start.Add(d) <= iv.start {
			return start
		}
		start = iv.end
	}
	return start
}

// insert adds [start, start+d) to the busy set, merging with touching
// neighbours to keep the list compact.
func (t *Timeline) insert(start Time, d Duration) {
	t.busy += d
	end := start.Add(d)
	// Find insertion index: first interval with start ≥ our start.
	i := sort.Search(len(t.ivls), func(i int) bool { return t.ivls[i].start >= start })
	t.ivls = append(t.ivls, interval{})
	copy(t.ivls[i+1:], t.ivls[i:])
	t.ivls[i] = interval{start, end}
	// Merge with the previous interval if touching.
	if i > 0 && t.ivls[i-1].end >= t.ivls[i].start {
		t.ivls[i-1].end = Max(t.ivls[i-1].end, t.ivls[i].end)
		t.ivls = append(t.ivls[:i], t.ivls[i+1:]...)
		i--
	}
	// Merge with the next interval if touching.
	if i+1 < len(t.ivls) && t.ivls[i].end >= t.ivls[i+1].start {
		t.ivls[i].end = Max(t.ivls[i].end, t.ivls[i+1].end)
		t.ivls = append(t.ivls[:i+1], t.ivls[i+2:]...)
	}
}

// Prune discards busy intervals that end before `before`. Callers pass
// their monotone watermark (see the type comment).
func (t *Timeline) Prune(before Time) {
	n := 0
	for _, iv := range t.ivls {
		if iv.end >= before {
			t.ivls[n] = iv
			n++
		}
	}
	t.ivls = t.ivls[:n]
}

// BusyTotal returns cumulative scheduled time.
func (t *Timeline) BusyTotal() Duration { return t.busy }

// Pending returns the number of tracked busy intervals (diagnostics).
func (t *Timeline) Pending() int { return len(t.ivls) }
