package sim

// Timeline models a resource (flash die, channel) that distinguishes
// foreground work (host reads) from background work (flush, compaction and
// GC I/O). Background operations are throttled to a duty cycle, leaving
// idle gaps on the resource, and foreground operations gap-fill: they take
// the earliest hole long enough to run. This mirrors how SSD controllers
// prioritise host I/O over background traffic; without it, a compaction
// burst issued at one instant would serialise every later read behind the
// whole batch and p50 latencies would be compaction-sized.
//
// Correctness of pruning relies on the caller's guarantee that once a
// foreground operation has been scheduled at time W, no future operation
// (foreground or background) is scheduled before W. The virtual-time
// drivers in this repository issue foreground work in non-decreasing order
// and trigger background work from foreground instants, satisfying this.
//
// Storage is a head-indexed deque over one backing slice: the live busy
// set is ivls[head:], sorted and non-overlapping (which makes interval end
// times sorted too). Prune advances head instead of copying, the common
// append-at-the-tail insert is O(1), and mid-list inserts shift whichever
// side is shorter — so steady-state scheduling is O(log n) amortized per
// flash op with no allocation once the backing slice has grown to the
// working-set size.
type Timeline struct {
	ivls   []interval // ivls[head:] is the live busy set
	head   int
	bgGate Time // earliest start for the next background op
	busy   Duration
}

type interval struct{ start, end Time }

// Schedule books a foreground operation of duration d issued at `at` into
// the earliest available gap and returns its completion time.
func (t *Timeline) Schedule(at Time, d Duration) Time {
	_, done := t.ScheduleSpan(at, d)
	return done
}

// ScheduleSpan is Schedule returning the placed interval, which tracing
// needs to record where the gap-filled operation actually ran.
func (t *Timeline) ScheduleSpan(at Time, d Duration) (start, done Time) {
	start = t.place(at, d)
	t.insert(start, d)
	return start, start.Add(d)
}

// ScheduleBG books a background operation issued at `at`. Consecutive
// background operations are separated by idle time `idle` (the throttle
// gap), which foreground operations may gap-fill.
func (t *Timeline) ScheduleBG(at Time, d Duration, idle Duration) Time {
	_, done := t.ScheduleBGSpan(at, d, idle)
	return done
}

// ScheduleBGSpan is ScheduleBG returning the placed interval.
func (t *Timeline) ScheduleBGSpan(at Time, d Duration, idle Duration) (start, done Time) {
	if at < t.bgGate {
		at = t.bgGate
	}
	start = t.place(at, d)
	t.insert(start, d)
	done = start.Add(d)
	t.bgGate = done.Add(idle)
	return start, done
}

// place finds the earliest start ≥ at where d fits.
func (t *Timeline) place(at Time, d Duration) Time {
	ivls := t.ivls
	start := at
	// First live interval whose end is past the candidate start. Ends are
	// sorted (the set is sorted and non-overlapping), so binary search.
	lo, hi := t.head, len(ivls)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivls[mid].end > start {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for i := lo; i < len(ivls); i++ {
		iv := ivls[i]
		if start.Add(d) <= iv.start {
			return start
		}
		start = iv.end
	}
	return start
}

// insert adds [start, start+d) to the busy set, merging with touching
// neighbours to keep the list compact.
func (t *Timeline) insert(start Time, d Duration) {
	t.busy += d
	end := start.Add(d)
	n := len(t.ivls)
	// Fast path: the new interval starts at or after every booked one —
	// the overwhelmingly common case, since issue times are non-decreasing.
	if n == t.head || t.ivls[n-1].start < start {
		if n > t.head && t.ivls[n-1].end >= start {
			if end > t.ivls[n-1].end {
				t.ivls[n-1].end = end
			}
			return
		}
		t.ivls = append(t.ivls, interval{start, end})
		return
	}
	// Mid-list insert (a foreground op gap-filled before booked work): find
	// the first live interval with start ≥ ours.
	lo, hi := t.head, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.ivls[mid].start >= start {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	if t.head > 0 && i-t.head <= n-i {
		// Shift the (shorter) prefix one slot left into the pruned gap.
		t.head--
		copy(t.ivls[t.head:i-1], t.ivls[t.head+1:i])
		i--
		t.ivls[i] = interval{start, end}
	} else {
		t.ivls = append(t.ivls, interval{})
		copy(t.ivls[i+1:], t.ivls[i:])
		t.ivls[i] = interval{start, end}
	}
	// Merge with the previous interval if touching.
	if i > t.head && t.ivls[i-1].end >= t.ivls[i].start {
		t.ivls[i-1].end = Max(t.ivls[i-1].end, t.ivls[i].end)
		t.ivls = append(t.ivls[:i], t.ivls[i+1:]...)
		i--
	}
	// Merge with the next interval if touching.
	if i+1 < len(t.ivls) && t.ivls[i].end >= t.ivls[i+1].start {
		t.ivls[i].end = Max(t.ivls[i].end, t.ivls[i+1].end)
		t.ivls = append(t.ivls[:i+1], t.ivls[i+2:]...)
	}
}

// Prune discards busy intervals that end before `before`. Callers pass
// their monotone watermark (see the type comment). Pruning advances the
// deque head; the vacated prefix is reclaimed lazily, so a prune is O(#
// discarded) with no copying in the common case.
func (t *Timeline) Prune(before Time) {
	h := t.head
	n := len(t.ivls)
	for h < n && t.ivls[h].end < before {
		h++
	}
	t.head = h
	if h == n {
		t.ivls = t.ivls[:0]
		t.head = 0
	} else if h > 32 && 2*h >= n {
		// The dead prefix dominates the backing array: compact in place so
		// appends keep reusing the same storage instead of growing it.
		m := copy(t.ivls, t.ivls[h:])
		t.ivls = t.ivls[:m]
		t.head = 0
	}
}

// BusyTotal returns cumulative scheduled time.
func (t *Timeline) BusyTotal() Duration { return t.busy }

// Pending returns the number of tracked busy intervals (diagnostics).
func (t *Timeline) Pending() int { return len(t.ivls) - t.head }
