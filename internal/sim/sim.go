// Package sim provides the virtual-time primitives used by the flash
// simulator: a nanosecond-resolution clock type and resources that model
// exclusive occupancy (a flash chip busy programming a page, a channel busy
// transferring one).
//
// Nothing in this package advances by itself. Callers schedule work by
// asking a Resource to occupy itself starting no earlier than some time and
// receive the completion time back. Because all experiment drivers issue
// work in non-decreasing time order, a simple busy-until watermark per
// resource is sufficient and exact.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the simulated clock, in nanoseconds since
// the start of the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is deliberately a
// distinct type from time.Duration so that wall-clock and simulated time
// cannot be mixed by accident, but the constructors below accept
// time.Duration literals for readability.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// D converts a wall-clock duration literal such as 56500*time.Nanosecond
// into a simulated Duration.
func D(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Max returns the later of t and u.
func Max(t, u Time) Time {
	if t > u {
		return t
	}
	return u
}

// Seconds returns the time as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Resource models a unit of hardware that can do one thing at a time, such
// as a flash chip or a channel. The zero Resource is idle at the epoch.
type Resource struct {
	busyUntil Time
	busyTotal Duration
}

// Occupy reserves the resource for d starting no earlier than at, queueing
// behind any previously scheduled work. It returns the time at which the
// reserved work completes.
func (r *Resource) Occupy(at Time, d Duration) Time {
	start := Max(at, r.busyUntil)
	r.busyUntil = start.Add(d)
	r.busyTotal += d
	return r.busyUntil
}

// OccupyAt reserves the resource exactly like Occupy but also returns the
// start time, which callers need when a dependent resource must be occupied
// back-to-back (e.g. channel transfer after the cell read finishes).
func (r *Resource) OccupyAt(at Time, d Duration) (start, done Time) {
	start = Max(at, r.busyUntil)
	done = start.Add(d)
	r.busyUntil = done
	r.busyTotal += d
	return start, done
}

// FreeAt returns the earliest time the resource is idle again.
func (r *Resource) FreeAt() Time { return r.busyUntil }

// BusyTotal returns the cumulative time the resource has been occupied.
func (r *Resource) BusyTotal() Duration { return r.busyTotal }

// Utilization returns the fraction of [0, now] the resource spent occupied.
// It reports 0 for now at the epoch.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busyTotal) / float64(now)
}
