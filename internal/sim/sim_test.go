package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOccupyQueues(t *testing.T) {
	var r Resource
	d1 := r.Occupy(0, 100)
	if d1 != 100 {
		t.Fatalf("first op done at %d, want 100", d1)
	}
	// Issued at t=10 while busy until 100: queues behind.
	d2 := r.Occupy(10, 50)
	if d2 != 150 {
		t.Fatalf("queued op done at %d, want 150", d2)
	}
	// Issued after idle: starts immediately.
	d3 := r.Occupy(1000, 5)
	if d3 != 1005 {
		t.Fatalf("idle op done at %d, want 1005", d3)
	}
	if r.BusyTotal() != 155 {
		t.Fatalf("busy total %d, want 155", r.BusyTotal())
	}
}

func TestOccupyAtReturnsStart(t *testing.T) {
	var r Resource
	r.Occupy(0, 100)
	start, done := r.OccupyAt(20, 30)
	if start != 100 || done != 130 {
		t.Fatalf("start=%d done=%d, want 100,130", start, done)
	}
}

// Property: completion times are monotone in issue order and never precede
// issue time + duration.
func TestOccupyMonotoneProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		var r Resource
		var at Time
		var prev Time
		for _, du := range durs {
			d := Duration(du)
			done := r.Occupy(at, d)
			if done < at.Add(d) || done < prev {
				return false
			}
			prev = done
			at = at.Add(Duration(du % 97)) // advance issue clock irregularly
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	var r Resource
	r.Occupy(0, 250)
	if got := r.Utilization(1000); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization at epoch = %v, want 0", got)
	}
}

func TestDurationConversions(t *testing.T) {
	if D(56500*time.Nanosecond) != 56500 {
		t.Fatal("D(ns) wrong")
	}
	if (3 * Millisecond).Seconds() != 0.003 {
		t.Fatal("Seconds wrong")
	}
	if Max(Time(3), Time(9)) != 9 || Max(Time(9), Time(3)) != 9 {
		t.Fatal("Max wrong")
	}
	if got := (77500 * Nanosecond).String(); got != "77.500µs" {
		t.Fatalf("String = %q", got)
	}
	if got := (3 * Millisecond).String(); got != "3.000ms" {
		t.Fatalf("String = %q", got)
	}
}

func TestTimelineForegroundGapFill(t *testing.T) {
	var tl Timeline
	// Background op of 100 at t=0 with idle 100: busy [0,100), gate 200.
	if done := tl.ScheduleBG(0, 100, 100); done != 100 {
		t.Fatalf("bg1 done = %v", done)
	}
	if done := tl.ScheduleBG(0, 100, 100); done != 300 {
		t.Fatalf("bg2 done = %v (throttle gate should defer to 200)", done)
	}
	// Foreground of 50 at t=10 fits the [100,200) hole... actually the
	// earliest gap ≥ its issue: [0,100) is busy, so it starts at 100.
	if done := tl.Schedule(10, 50); done != 150 {
		t.Fatalf("fg done = %v, want 150 (gap-filled the throttle hole)", done)
	}
	// Another foreground of 50 fills the rest of the hole.
	if done := tl.Schedule(10, 50); done != 200 {
		t.Fatalf("fg2 done = %v, want 200", done)
	}
	// A third must wait past the second background op.
	if done := tl.Schedule(10, 50); done != 350 {
		t.Fatalf("fg3 done = %v, want 350", done)
	}
}

func TestTimelineMergeAndPrune(t *testing.T) {
	var tl Timeline
	tl.Schedule(0, 10)
	tl.Schedule(10, 10) // touching: should merge
	tl.Schedule(100, 10)
	if tl.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 after merge", tl.Pending())
	}
	tl.Prune(50)
	if tl.Pending() != 1 {
		t.Fatalf("pending = %d after prune", tl.Pending())
	}
	if tl.BusyTotal() != 30 {
		t.Fatalf("busy = %v", tl.BusyTotal())
	}
}

func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(ops []struct {
		At uint16
		D  uint8
		BG bool
	}) bool {
		var tl Timeline
		type booked struct{ s, e Time }
		var all []booked
		var lastFG Time
		for _, op := range ops {
			d := Duration(op.D%50 + 1)
			at := Time(op.At)
			if at < lastFG {
				at = lastFG // preserve the monotonicity contract
			}
			var done Time
			if op.BG {
				done = tl.ScheduleBG(at, d, d)
			} else {
				done = tl.Schedule(at, d)
				lastFG = at
			}
			all = append(all, booked{done.Add(-d), done})
			if done.Add(-d) < at {
				return false
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].s < all[j].e && all[j].s < all[i].e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
