package sim

// ClockSet is a fixed set of independent virtual clocks, one per host
// submission slot. It is the timing substrate of the host engine's
// queue-depth-N model: each slot's clock holds the completion time of the
// last request it carried, the earliest slot is the one that accepts the
// next request, and the set as a whole only ever hands out non-decreasing
// issue times (the contract every device.KVSSD implementation relies on).
type ClockSet struct {
	clocks []Time
}

// NewClockSet returns n clocks, all at start.
func NewClockSet(n int, start Time) *ClockSet {
	cs := &ClockSet{clocks: make([]Time, n)}
	for i := range cs.clocks {
		cs.clocks[i] = start
	}
	return cs
}

// Len returns the number of clocks.
func (c *ClockSet) Len() int { return len(c.clocks) }

// Earliest returns the slot with the smallest clock and its time. Ties go
// to the lowest index, which keeps replays deterministic.
func (c *ClockSet) Earliest() (slot int, at Time) {
	slot = 0
	for i := 1; i < len(c.clocks); i++ {
		if c.clocks[i] < c.clocks[slot] {
			slot = i
		}
	}
	return slot, c.clocks[slot]
}

// Set advances one clock; it refuses to move a clock backwards.
func (c *ClockSet) Set(slot int, at Time) {
	if at > c.clocks[slot] {
		c.clocks[slot] = at
	}
}

// Max returns the latest clock.
func (c *ClockSet) Max() Time {
	var m Time
	for _, t := range c.clocks {
		if t > m {
			m = t
		}
	}
	return m
}

// AlignToMax moves every clock to the latest one and returns it — the
// phase barrier between an experiment's warm-up and execution.
func (c *ClockSet) AlignToMax() Time {
	m := c.Max()
	for i := range c.clocks {
		c.clocks[i] = m
	}
	return m
}
