package sim

// ClockSet is a fixed set of independent virtual clocks, one per host
// submission slot. It is the timing substrate of the host engine's
// queue-depth-N model: each slot's clock holds the completion time of the
// last request it carried, the earliest slot is the one that accepts the
// next request, and the set as a whole only ever hands out non-decreasing
// issue times (the contract every device.KVSSD implementation relies on).
//
// Slots are kept in a binary min-heap ordered by (time, slot), so Earliest
// — called once per simulated request — is O(1) and each clock advance is
// O(log n) instead of the former O(n) scan per request.
type ClockSet struct {
	clocks []Time
	heap   []int // slot indices, heap-ordered by (clocks[slot], slot)
	pos    []int // heap position of each slot
}

// NewClockSet returns n clocks, all at start.
func NewClockSet(n int, start Time) *ClockSet {
	cs := &ClockSet{
		clocks: make([]Time, n),
		heap:   make([]int, n),
		pos:    make([]int, n),
	}
	for i := range cs.clocks {
		cs.clocks[i] = start
		cs.heap[i] = i
		cs.pos[i] = i
	}
	return cs
}

// Len returns the number of clocks.
func (c *ClockSet) Len() int { return len(c.clocks) }

// less orders heap entries by (time, slot); the slot tie-break keeps the
// selection identical to the old lowest-index linear scan, so replays stay
// deterministic.
func (c *ClockSet) less(a, b int) bool {
	if c.clocks[a] != c.clocks[b] {
		return c.clocks[a] < c.clocks[b]
	}
	return a < b
}

func (c *ClockSet) swap(i, j int) {
	h := c.heap
	h[i], h[j] = h[j], h[i]
	c.pos[h[i]] = i
	c.pos[h[j]] = j
}

func (c *ClockSet) siftDown(i int) {
	h := c.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && c.less(h[r], h[l]) {
			m = r
		}
		if !c.less(h[m], h[i]) {
			return
		}
		c.swap(i, m)
		i = m
	}
}

// Earliest returns the slot with the smallest clock and its time. Ties go
// to the lowest index, which keeps replays deterministic.
func (c *ClockSet) Earliest() (slot int, at Time) {
	slot = c.heap[0]
	return slot, c.clocks[slot]
}

// Set advances one clock; it refuses to move a clock backwards.
func (c *ClockSet) Set(slot int, at Time) {
	if at > c.clocks[slot] {
		c.clocks[slot] = at
		c.siftDown(c.pos[slot])
	}
}

// Max returns the latest clock.
func (c *ClockSet) Max() Time {
	var m Time
	for _, t := range c.clocks {
		if t > m {
			m = t
		}
	}
	return m
}

// AlignToMax moves every clock to the latest one and returns it — the
// phase barrier between an experiment's warm-up and execution.
func (c *ClockSet) AlignToMax() Time {
	m := c.Max()
	for i := range c.clocks {
		c.clocks[i] = m
		c.heap[i] = i
		c.pos[i] = i
	}
	return m
}
