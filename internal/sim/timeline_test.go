package sim

import "testing"

// Edge cases of the deque-based Timeline: scheduling at instants before the
// pruned watermark, zero-duration spans, and prunes landing exactly on
// interval boundaries.

func TestTimelineScheduleBeforeWatermark(t *testing.T) {
	var tl Timeline
	tl.Schedule(0, 10)   // [0,10)
	tl.Schedule(20, 10)  // [20,30)
	tl.Schedule(100, 10) // [100,110)
	tl.Prune(25)         // drops [0,10); [20,30) survives (ends at 30 ≥ 25)
	if tl.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 after prune", tl.Pending())
	}
	// An issue time far before the watermark must still gap-fill correctly
	// against the surviving intervals: [5,15) overlaps nothing pruned but
	// collides with [20,30)? No — it fits entirely before it.
	if done := tl.Schedule(5, 10); done != 15 {
		t.Fatalf("pre-watermark schedule done = %v, want 15", done)
	}
	// A longer op at the same instant cannot fit before [20,30) and must
	// slide past it (and then past [100,110) it does not touch).
	if done := tl.Schedule(15, 20); done != 50 {
		t.Fatalf("done = %v, want 50 (placed after [20,30))", done)
	}
}

func TestTimelineZeroDurationSpans(t *testing.T) {
	var tl Timeline
	if start, done := tl.ScheduleSpan(40, 0); start != 40 || done != 40 {
		t.Fatalf("zero span on empty timeline = [%v,%v), want [40,40)", start, done)
	}
	tl.Schedule(10, 10) // [10,20)
	// A zero-duration op issued inside a busy interval lands at its end.
	if start, done := tl.ScheduleSpan(15, 0); start != 20 || done != 20 {
		t.Fatalf("zero span = [%v,%v), want [20,20)", start, done)
	}
	// Zero-duration spans book no busy time.
	if tl.BusyTotal() != 10 {
		t.Fatalf("busy = %v, want 10", tl.BusyTotal())
	}
	// And a real op can still claim the instant they sat on.
	if done := tl.Schedule(20, 5); done != 25 {
		t.Fatalf("done = %v, want 25", done)
	}
}

func TestTimelinePruneExactBoundary(t *testing.T) {
	var tl Timeline
	tl.Schedule(0, 10)  // [0,10)
	tl.Schedule(20, 10) // [20,30)
	tl.Schedule(40, 10) // [40,50)

	// Prune(10): [0,10) ends exactly at the cut and must survive (end ≥
	// before keeps it, matching the original filter's condition).
	tl.Prune(10)
	if tl.Pending() != 3 {
		t.Fatalf("pending = %d, want 3: interval ending exactly at the cut survives", tl.Pending())
	}
	// Prune(11) drops it.
	tl.Prune(11)
	if tl.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", tl.Pending())
	}
	// Prune exactly at the last interval's end keeps only it.
	tl.Prune(50)
	if tl.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", tl.Pending())
	}
	// Past everything: the deque resets to empty.
	tl.Prune(51)
	if tl.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", tl.Pending())
	}
	if tl.BusyTotal() != 30 {
		t.Fatalf("busy = %v, want 30 (pruning never un-books time)", tl.BusyTotal())
	}
}

func TestTimelineMidInsertAfterPrune(t *testing.T) {
	// Exercise the shift-left insert path: a pruned head gap exists and a
	// foreground op lands before booked background work.
	var tl Timeline
	for i := 0; i < 8; i++ {
		tl.Schedule(Time(i*20), 10) // [0,10) [20,30) ... [140,150)
	}
	tl.Prune(35) // head gap of two
	if tl.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", tl.Pending())
	}
	// Fits the [50,60) hole, before four booked intervals.
	if start, done := tl.ScheduleSpan(45, 10); start != 50 || done != 60 {
		t.Fatalf("gap fill = [%v,%v), want [50,60)", start, done)
	}
	// The fill touched [40,50) and [60,70): all three merge into one,
	// leaving [40,70) plus the four untouched intervals.
	if tl.Pending() != 5 {
		t.Fatalf("pending = %d, want 5 after double merge", tl.Pending())
	}
}

// BenchmarkHotPathTimeline measures the simulator's central scheduling
// primitive in its steady state: foreground spans booked at a monotone
// watermark with periodic pruning, plus background gap-fills behind it.
func BenchmarkHotPathTimeline(b *testing.B) {
	var tl Timeline
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := Time(i * 9)
		tl.Schedule(at, 7)
		if i%4 == 0 {
			tl.ScheduleBGSpan(at-50, 3, 1) // gap-fill behind the watermark
		}
		if i%16 == 0 {
			tl.Prune(at - 200)
		}
	}
}

func TestTimelineSteadyStateNoAlloc(t *testing.T) {
	// In steady state (schedule + prune at a monotone watermark) the deque
	// must reuse its backing storage rather than grow it.
	var tl Timeline
	allocs := testing.AllocsPerRun(5000, func() {
		at := Time(tl.BusyTotal()) // strictly increasing issue times
		tl.Schedule(at, 7)
		tl.Prune(at - 100)
	})
	if allocs > 0.01 {
		t.Fatalf("steady-state schedule+prune allocates %.2f/op, want 0", allocs)
	}
}
