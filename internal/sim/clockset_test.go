package sim

import "testing"

func TestClockSetOrdering(t *testing.T) {
	cs := NewClockSet(4, 0)
	cs.Set(0, 10)
	cs.Set(1, 3)
	cs.Set(2, 7)
	cs.Set(3, 3)
	if slot, at := cs.Earliest(); slot != 1 || at != 3 {
		t.Fatalf("Earliest = slot %d at %v; want the first slot at 3", slot, at)
	}
	if cs.Max() != 10 {
		t.Fatalf("Max = %v", cs.Max())
	}
	if m := cs.AlignToMax(); m != 10 {
		t.Fatalf("AlignToMax = %v", m)
	}
	for i := 0; i < cs.Len(); i++ {
		if slot, at := cs.Earliest(); at != 10 {
			t.Fatalf("slot %d at %v after barrier", slot, at)
		}
		cs.Set(i, 10+Time(i))
	}
}

func TestClockSetMonotone(t *testing.T) {
	cs := NewClockSet(2, 5)
	cs.Set(0, 3) // refuse to go backwards
	if _, at := cs.Earliest(); at != 5 {
		t.Fatalf("clock moved backwards to %v", at)
	}
	cs.Set(0, 9)
	if cs.Max() != 9 {
		t.Fatalf("Max = %v", cs.Max())
	}
}
