// Package dram implements the device-internal DRAM budget ledger. Every
// metadata structure a KV-SSD design keeps resident (level lists, meta
// segments, hash lists, write buffer) charges its byte footprint against one
// shared budget; whatever does not fit must live in flash and pay flash
// latency on access. The whole argument of the paper is about who wins this
// accounting fight, so the ledger is explicit and queryable by client label.
package dram

import (
	"fmt"
	"slices"
	"strings"
)

// Budget tracks allocations of a fixed DRAM capacity by labelled client.
// The zero Budget has zero capacity; use New.
type Budget struct {
	capacity int64
	used     int64
	byClient map[string]int64
}

// New returns a ledger for capacity bytes of device DRAM.
func New(capacity int64) *Budget {
	return &Budget{capacity: capacity, byClient: make(map[string]int64)}
}

// Capacity returns the total DRAM size in bytes.
func (b *Budget) Capacity() int64 { return b.capacity }

// Used returns the bytes currently charged.
func (b *Budget) Used() int64 { return b.used }

// Free returns the uncharged remainder. It can be queried before deciding
// whether to pin a structure in DRAM or leave it in flash.
func (b *Budget) Free() int64 { return b.capacity - b.used }

// ClientUsed returns the bytes charged under a label.
func (b *Budget) ClientUsed(label string) int64 { return b.byClient[label] }

// Reserve charges n bytes under label, reporting false without charging when
// the budget cannot hold them. n must be non-negative.
func (b *Budget) Reserve(label string, n int64) bool {
	if n < 0 {
		panic("dram: negative reservation")
	}
	if b.used+n > b.capacity {
		return false
	}
	b.used += n
	b.byClient[label] += n
	return true
}

// MustReserve charges n bytes under label even if it overflows capacity.
// Designs use it for structures that are architecturally pinned (e.g. PinK's
// level lists); Overcommitted reports whether that has happened.
func (b *Budget) MustReserve(label string, n int64) {
	if n < 0 {
		panic("dram: negative reservation")
	}
	b.used += n
	b.byClient[label] += n
}

// Release returns n bytes charged under label to the pool.
func (b *Budget) Release(label string, n int64) {
	if n < 0 {
		panic("dram: negative release")
	}
	if b.byClient[label] < n {
		panic(fmt.Sprintf("dram: release of %d exceeds %q charge %d", n, label, b.byClient[label]))
	}
	b.byClient[label] -= n
	b.used -= n
}

// ReleaseAll returns every byte charged under label.
func (b *Budget) ReleaseAll(label string) {
	b.used -= b.byClient[label]
	delete(b.byClient, label)
}

// Overcommitted reports whether MustReserve pushed usage past capacity.
func (b *Budget) Overcommitted() bool { return b.used > b.capacity }

// String renders the ledger for diagnostics, clients sorted by label.
func (b *Budget) String() string {
	labels := make([]string, 0, len(b.byClient))
	for l := range b.byClient {
		labels = append(labels, l)
	}
	slices.Sort(labels)
	var sb strings.Builder
	fmt.Fprintf(&sb, "dram %d/%d bytes", b.used, b.capacity)
	for _, l := range labels {
		fmt.Fprintf(&sb, " %s=%d", l, b.byClient[l])
	}
	return sb.String()
}
