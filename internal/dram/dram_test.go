package dram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReserveRelease(t *testing.T) {
	b := New(100)
	if !b.Reserve("a", 60) {
		t.Fatal("reserve 60/100 failed")
	}
	if b.Reserve("b", 50) {
		t.Fatal("reserve beyond capacity succeeded")
	}
	if !b.Reserve("b", 40) {
		t.Fatal("reserve exactly to capacity failed")
	}
	if b.Free() != 0 || b.Used() != 100 {
		t.Fatalf("used=%d free=%d", b.Used(), b.Free())
	}
	b.Release("a", 10)
	if b.Free() != 10 || b.ClientUsed("a") != 50 {
		t.Fatalf("after release: free=%d a=%d", b.Free(), b.ClientUsed("a"))
	}
	b.ReleaseAll("b")
	if b.ClientUsed("b") != 0 || b.Used() != 50 {
		t.Fatalf("after release all: used=%d", b.Used())
	}
}

func TestMustReserveOvercommit(t *testing.T) {
	b := New(10)
	b.MustReserve("pinned", 25)
	if !b.Overcommitted() {
		t.Fatal("not overcommitted")
	}
	if b.Free() >= 0 {
		t.Fatalf("free = %d, want negative", b.Free())
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := New(10)
	b.Reserve("x", 5)
	b.Release("x", 6)
}

// Property: used always equals the sum of per-client charges and never
// exceeds capacity when only Reserve is used.
func TestLedgerInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		Label byte
		N     uint16
		Rel   bool
	}) bool {
		b := New(1 << 15)
		charge := map[string]int64{}
		for _, op := range ops {
			l := string('a' + op.Label%4)
			if op.Rel {
				n := int64(op.N)
				if n > charge[l] {
					n = charge[l]
				}
				b.Release(l, n)
				charge[l] -= n
			} else if b.Reserve(l, int64(op.N)) {
				charge[l] += int64(op.N)
			}
			var sum int64
			for k, v := range charge {
				if b.ClientUsed(k) != v {
					return false
				}
				sum += v
			}
			if b.Used() != sum || b.Used() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	b := New(64)
	b.Reserve("levels", 8)
	b.Reserve("hash", 16)
	s := b.String()
	if !strings.Contains(s, "24/64") || !strings.Contains(s, "hash=16") || !strings.Contains(s, "levels=8") {
		t.Fatalf("String = %q", s)
	}
}
