// Package txn is the transaction layer over the sharded KV cluster: atomic
// cross-shard batches, optimistic read-modify-write, and doppel-style
// split-phase execution for contended keys.
//
// The package is deliberately engine-agnostic: it drives any Backend — the
// non-replicated cluster, the replicated fleet, or a test fake — through a
// small routed-KV interface, and it never owns a clock of its own. All
// timing comes from the backend's per-shard virtual clocks, and cross-shard
// instants are merged by max exactly as the cluster layer merges them, so a
// serial and a Workers-parallel run of the same transaction stream produce
// bit-identical results.
//
// # Atomic batches (two-phase commit)
//
// Atomic applies a mixed put/delete batch all-or-nothing across shards. The
// protocol writes durable intent records as ordinary KV pairs in a reserved
// keyspace (see intent.go), so it needs nothing from the device beyond what
// any journaled application would use:
//
//  1. prepare: one intent per involved shard, carrying that shard's
//     sub-batch, then FLUSH the involved shards;
//  2. commit point: a commit record on the coordinator shard (the lowest
//     involved shard), then FLUSH it — the batch is committed the instant
//     this record is durable;
//  3. apply: the real writes, in caller order, then FLUSH the involved
//     shards — only now may any cleanup begin, so a crash can never make a
//     cleanup delete durable while an apply write is lost;
//  4. cleanup: unsynced deletes of the intent and commit records. If a crash
//     loses them, Recover rolls the (already applied) batch forward again —
//     re-applying is idempotent.
//
// Recover resolves whatever a crash left behind: batches with a durable
// commit record roll forward, batches without one roll back by discarding
// their intents. Rollback never touches user data, because user keys are
// only written after the commit record is durable. When the commit record's
// own sync fails the batch is genuinely undecided — standard in-doubt 2PC
// semantics — and Atomic reports that with an error wrapping ErrInDoubt,
// never ErrAborted: recovery may roll such a batch forward.
//
// # OCC read-modify-write
//
// Begin/Get/Put/Commit implement classic optimistic concurrency control
// with a coordinator-local version table: Get records the key's version,
// Put buffers the write, and Commit validates that no read key's version
// moved before applying the write set and bumping versions. A validation
// failure returns ErrConflict; Run retries the whole body with
// capped-doubling virtual backoff (the RetryPolicy schedule) and gives up
// with an error wrapping both ErrAborted and ErrConflict.
//
// Versions live in the coordinator, not on the device, so they reset with
// the process; keys mutated behind the coordinator's back (raw cluster
// writes) are not conflict-checked. All transactional keys should be
// managed through one coordinator, the same single-caller rule the
// cluster's Multi* batches already impose. A front end that must mix raw
// writes and transactions on one keyspace routes the raw writes through
// RawWrite, which keeps the version table honest.
//
// # Split phase for hot keys
//
// Under Zipfian contention a handful of keys absorb most writes, and OCC
// serializes on them: every concurrent Incr aborts every other. The
// coordinator counts validation conflicts per key, and once a key crosses
// Options.HotThreshold it moves into the split phase: commutative ops
// (Incr, Append) on hot keys buffer their deltas in the coordinator instead
// of reading and validating, so they cannot conflict with each other. A
// buffered op still bumps its key's version the moment its commit absorbs
// it into the phase — buffering defers the write, not the conflict: any
// transaction that read the key earlier validates against the moved
// version and aborts, exactly as if the op had applied directly. The
// phase closes — buffered deltas merge into one write per hot key — after
// Options.SplitOps buffered ops, at an explicit Flush, or as soon as any
// transaction reads or non-commutatively writes a buffered key (reads must
// observe the merged value). During a phase, the value a buffered Incr
// returns is the phase-local running total, which concurrent buffering may
// make approximate; the merged on-device value is exact.
package txn

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"anykey/internal/kv"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// Errors returned by the transaction layer; test with errors.Is.
var (
	// ErrConflict reports an OCC validation failure (a read key's version
	// moved between Get and Commit) or a CompareAndSwap value mismatch.
	ErrConflict = errors.New("txn: conflict")

	// ErrAborted reports a transaction that gave up after exhausting its
	// retry budget. Errors carrying it also carry ErrConflict.
	ErrAborted = errors.New("txn: aborted")

	// ErrInDoubt reports an atomic batch whose fate is undecided: the
	// commit record was written but its sync failed, so the record may or
	// may not be durable. The caller must not assume either outcome —
	// Recover resolves the batch (forward if the record survived, back
	// otherwise). Deliberately does NOT wrap ErrAborted.
	ErrInDoubt = errors.New("txn: commit in doubt")
)

// Options tunes the coordinator. The zero value means "use the defaults";
// call Validate to normalize.
type Options struct {
	// MaxRetries bounds how many times Run re-executes a conflicted
	// transaction before giving up (default 8; the open-loop RetryPolicy's
	// shape).
	MaxRetries int

	// Backoff is the virtual-time delay before the first retry; each
	// further retry doubles it (default 200µs).
	Backoff sim.Duration

	// MaxBackoff caps the doubling (default 16×Backoff).
	MaxBackoff sim.Duration

	// HotThreshold is the per-key validation-conflict count that moves a
	// key into the split phase. 0 means the default (8); a negative value
	// disables phase splitting entirely (pure serialized OCC).
	HotThreshold int

	// SplitOps closes the split phase — merging buffered commutative ops
	// into one write per hot key — after this many buffered ops
	// (default 64).
	SplitOps int
}

// Validate rejects out-of-range values and normalizes zeros to defaults in
// place.
func (o *Options) Validate() error {
	if o.MaxRetries < 0 {
		return fmt.Errorf("txn: MaxRetries %d is negative", o.MaxRetries)
	}
	if o.Backoff < 0 || o.MaxBackoff < 0 {
		return fmt.Errorf("txn: negative backoff %v/%v", o.Backoff, o.MaxBackoff)
	}
	if o.SplitOps < 0 {
		return fmt.Errorf("txn: SplitOps %d is negative", o.SplitOps)
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 8
	}
	if o.Backoff == 0 {
		o.Backoff = 200 * sim.Microsecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 16 * o.Backoff
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = 8
	}
	if o.SplitOps == 0 {
		o.SplitOps = 64
	}
	return nil
}

// delay is the capped-doubling retry schedule: min(Backoff<<k, MaxBackoff).
func (o Options) delay(k int) sim.Duration {
	d := o.Backoff
	for i := 0; i < k && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	return d
}

// Op is one operation of a mixed batch: a put of Key→Value, or, when Delete
// is set, a delete of Key.
type Op struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Backend is the routed KV engine the coordinator drives. Implementations
// route each key to a shard, expose each shard's virtual clock, and apply
// mixed batches in input order. Get returns a caller-owned copy; ScanShard's
// pairs are valid only until the next backend call. Tracer may return nil
// (a nil *trace.Tracer is valid for every method).
type Backend interface {
	Shards() int
	ShardFor(key []byte) int
	Now(s int) sim.Time
	Tracer(s int) *trace.Tracer
	Get(key []byte) (val []byte, found bool, err error)
	Apply(ops []Op) error
	SyncShards(shards []int) error
	ScanShard(s int, start []byte, n int) ([]kv.Pair, error)
}

// Stats counts the coordinator's activity. Snapshot with Coordinator.Stats.
type Stats struct {
	Commits       int64 // committed transactions (atomic batches count one each)
	Aborts        int64 // transactions abandoned after exhausting retries
	Conflicts     int64 // individual validation failures (may be retried)
	Retries       int64 // re-executions after a conflict
	AtomicBatches int64 // committed 2PC batches
	Prepares      int64 // 2PC prepare rounds (intents stamped and synced)
	SplitMerges   int64 // split-phase merge flushes
	SplitOps      int64 // commutative ops absorbed by the split phase
	HotKeys       int64 // keys promoted to the hot set (cumulative)
	HotNow        int64 // current hot-set size
	RolledForward int64 // recovered batches replayed to completion
	RolledBack    int64 // recovered batches discarded (no commit record)
}

// pending is one hot key's split-phase buffer: the base value read once at
// the key's first buffering in the phase, plus the commutative accumulation
// since.
type pending struct {
	kind byte // 'i' (Incr) or 'a' (Append)
	base int64
	pre  []byte // Append base bytes
	sum  int64
	suf  []byte
	ops  int
}

// materialize renders the key's merged value at phase close.
func (p *pending) materialize() []byte {
	if p.kind == 'i' {
		return strconv.AppendInt(nil, p.base+p.sum, 10)
	}
	out := make([]byte, 0, len(p.pre)+len(p.suf))
	return append(append(out, p.pre...), p.suf...)
}

// Coordinator is the transaction manager over one backend. All state —
// the OCC version table, the contention counters, the split-phase buffers —
// is coordinator-local; its mutex serializes transactional access to the
// backend, so concurrent front-end connections may share one coordinator.
type Coordinator struct {
	mu   sync.Mutex
	be   Backend
	opts Options

	versions map[string]uint64
	nextID   uint64 // atomic-batch id allocator

	conflicts map[string]int // per-phase validation conflicts by key
	hot       map[string]bool
	pend      map[string]*pending
	pendKeys  []string // buffer-creation order, for deterministic merges
	phaseOps  int
	phaseGen  uint64 // bumped by every flush; detects mid-commit merges

	stats Stats
}

// New builds a coordinator over be. opts must already be validated.
func New(be Backend, opts Options) *Coordinator {
	return &Coordinator{
		be:        be,
		opts:      opts,
		versions:  make(map[string]uint64),
		conflicts: make(map[string]int),
		hot:       make(map[string]bool),
		pend:      make(map[string]*pending),
	}
}

// Options returns the coordinator's normalized options.
func (co *Coordinator) Options() Options { return co.opts }

// Stats snapshots the activity counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	s := co.stats
	s.HotNow = int64(len(co.hot))
	return s
}

// wop is one buffered transaction write.
type wop struct {
	key   string
	kind  byte // 'p' put, 'd' delete, 'i' incr, 'a' append
	val   []byte
	base  int64  // incr: value read at Incr time
	pre   []byte // append: value read at Append time
	delta int64
	hot   bool // commutative op on a hot key: buffer at commit, skip validation
}

// absolute renders the write's final value (cold path; validation holds the
// base steady).
func (w *wop) absolute() []byte {
	switch w.kind {
	case 'i':
		return strconv.AppendInt(nil, w.base+w.delta, 10)
	case 'a':
		out := make([]byte, 0, len(w.pre)+len(w.val))
		return append(append(out, w.pre...), w.val...)
	}
	return w.val
}

// Tx is one optimistic transaction: a read-version snapshot plus a buffered
// write set, validated and applied at Commit. A Tx is not safe for
// concurrent use; distinct Txs on one coordinator are.
type Tx struct {
	co       *Coordinator
	reads    map[string]uint64
	readKeys []string // first-read order, for deterministic validation
	writes   []wop
	widx     map[string]int
	done     bool
}

// Begin opens a transaction.
func (co *Coordinator) Begin() *Tx {
	return &Tx{co: co, reads: make(map[string]uint64), widx: make(map[string]int)}
}

// errFinished guards against reuse of a committed or aborted Tx.
var errFinished = errors.New("txn: transaction already finished")

// Get returns the key's value as this transaction sees it: its own buffered
// write if present, otherwise the current value, recording the key's version
// for commit-time validation. Absent keys return kv.ErrNotFound. The value
// is caller-owned.
func (tx *Tx) Get(key []byte) ([]byte, error) {
	if tx.done {
		return nil, errFinished
	}
	k := string(key)
	if i, ok := tx.widx[k]; ok {
		w := &tx.writes[i]
		if w.kind == 'd' {
			return nil, kv.ErrNotFound
		}
		return w.absolute(), nil
	}
	co := tx.co
	co.mu.Lock()
	defer co.mu.Unlock()
	val, found, err := co.readLocked(tx, k, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, kv.ErrNotFound
	}
	return val, nil
}

// readLocked reads through the backend with the coordinator lock held,
// landing any split-phase buffer first (buffered deltas must be visible)
// and recording the key's version in the transaction's read set.
func (co *Coordinator) readLocked(tx *Tx, k string, key []byte) ([]byte, bool, error) {
	if _, buffered := co.pend[k]; buffered {
		if err := co.flushLocked(); err != nil {
			return nil, false, err
		}
	}
	val, found, err := co.be.Get(key)
	if err != nil {
		return nil, false, err
	}
	if _, seen := tx.reads[k]; !seen {
		tx.reads[k] = co.versions[k]
		tx.readKeys = append(tx.readKeys, k)
	}
	return val, found, nil
}

// setW buffers a write, replacing any earlier write to the same key.
func (tx *Tx) setW(k string, w wop) {
	w.key = k
	if i, ok := tx.widx[k]; ok {
		tx.writes[i] = w
		return
	}
	tx.widx[k] = len(tx.writes)
	tx.writes = append(tx.writes, w)
}

// Put buffers key→value (the value is copied).
func (tx *Tx) Put(key, value []byte) {
	tx.setW(string(key), wop{kind: 'p', val: append([]byte(nil), value...)})
}

// Delete buffers a delete of key.
func (tx *Tx) Delete(key []byte) {
	tx.setW(string(key), wop{kind: 'd'})
}

// Incr adds delta to the base-10 integer at key (absent counts as 0) and
// returns the resulting value as this transaction sees it. On a hot key the
// op is commutative: it buffers into the split phase at commit, skips
// validation, and the returned value is the phase-local running total.
func (tx *Tx) Incr(key []byte, delta int64) (int64, error) {
	if tx.done {
		return 0, errFinished
	}
	k := string(key)
	if i, ok := tx.widx[k]; ok {
		w := &tx.writes[i]
		if w.kind == 'i' {
			w.delta += delta
			return w.base + w.delta, nil
		}
		// A prior non-Incr write to the key: fold into a plain put.
		cur, err := parseCounter(w.absolute(), w.kind != 'd')
		if err != nil {
			return 0, err
		}
		tx.setW(k, wop{kind: 'p', val: strconv.AppendInt(nil, cur+delta, 10)})
		return cur + delta, nil
	}
	co := tx.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.hotLocked(k) {
		p, err := co.pendingFor(k, key, 'i')
		if err != nil {
			return 0, err
		}
		tx.setW(k, wop{kind: 'i', base: p.base + p.sum, delta: delta, hot: true})
		return p.base + p.sum + delta, nil
	}
	val, found, err := co.readLocked(tx, k, key)
	if err != nil {
		return 0, err
	}
	base, err := parseCounter(val, found)
	if err != nil {
		return 0, err
	}
	tx.setW(k, wop{kind: 'i', base: base, delta: delta})
	return base + delta, nil
}

// Append appends suffix to the value at key (absent counts as empty). Like
// Incr, appends to hot keys buffer commutatively at commit.
func (tx *Tx) Append(key, suffix []byte) error {
	if tx.done {
		return errFinished
	}
	k := string(key)
	if i, ok := tx.widx[k]; ok {
		w := &tx.writes[i]
		if w.kind == 'a' {
			w.val = append(w.val, suffix...)
			return nil
		}
		var base []byte
		if w.kind != 'd' {
			base = w.absolute()
		}
		tx.setW(k, wop{kind: 'p', val: append(base, suffix...)})
		return nil
	}
	co := tx.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.hotLocked(k) {
		if _, err := co.pendingFor(k, key, 'a'); err != nil {
			return err
		}
		tx.setW(k, wop{kind: 'a', val: append([]byte(nil), suffix...), hot: true})
		return nil
	}
	val, found, err := co.readLocked(tx, k, key)
	if err != nil {
		return err
	}
	var pre []byte
	if found {
		pre = append([]byte(nil), val...)
	}
	tx.setW(k, wop{kind: 'a', pre: pre, val: append([]byte(nil), suffix...)})
	return nil
}

// hotLocked reports whether k is in the split phase's hot set.
func (co *Coordinator) hotLocked(k string) bool {
	return co.opts.HotThreshold > 0 && co.hot[k]
}

// pendingFor returns k's split-phase buffer, creating it — which reads the
// key's base value through the backend, once per phase — on first use. A
// kind mismatch (Incr after Append in one phase) closes the phase first.
func (co *Coordinator) pendingFor(k string, key []byte, kind byte) (*pending, error) {
	if p := co.pend[k]; p != nil {
		if p.kind == kind {
			return p, nil
		}
		if err := co.flushLocked(); err != nil {
			return nil, err
		}
	}
	val, found, err := co.be.Get(key)
	if err != nil {
		return nil, err
	}
	p := &pending{kind: kind}
	if kind == 'i' {
		if p.base, err = parseCounter(val, found); err != nil {
			return nil, err
		}
	} else if found {
		p.pre = append([]byte(nil), val...)
	}
	co.pend[k] = p
	co.pendKeys = append(co.pendKeys, k)
	return p, nil
}

// Abort abandons the transaction without touching the backend.
func (tx *Tx) Abort() {
	tx.done = true
}

// Commit validates the read set and applies the write set. A moved read
// version returns an error wrapping ErrConflict and applies nothing (the
// caller may retry with a fresh Tx; Run does so with backoff). Write sets
// spanning more than one key commit through the atomic 2PC path, so a
// multi-key transaction is never partially visible, crash included;
// single-key write sets apply directly with plain-Put durability.
func (tx *Tx) Commit() error {
	if tx.done {
		return errFinished
	}
	tx.done = true
	co := tx.co
	co.mu.Lock()
	defer co.mu.Unlock()

	// Validate in first-read order so conflict accounting (and therefore
	// hot-key promotion) is deterministic.
	var conflicted []string
	for _, k := range tx.readKeys {
		if co.versions[k] != tx.reads[k] {
			conflicted = append(conflicted, k)
		}
	}
	if len(conflicted) > 0 {
		co.stats.Conflicts++
		for _, k := range conflicted {
			co.noteConflictLocked(k)
		}
		s := co.be.ShardFor([]byte(conflicted[0]))
		co.be.Tracer(s).Instant(trace.BGTrack(trace.CauseTxnValidateAbort),
			trace.EvTxnAbort, trace.CauseTxnValidateAbort, co.be.Now(s), int64(len(conflicted)))
		return fmt.Errorf("txn: validation failed on %q: %w", conflicted[0], ErrConflict)
	}

	// Partition the write set: commutative ops on hot keys buffer into the
	// split phase; everything else applies now. A flush inside this
	// partition (cold write to a buffered key, a kind mismatch, or the
	// atomic path landing the phase) merges the ops buffered so far —
	// sync() notices via the phase generation and stops counting them
	// toward the still-open phase's close trigger.
	var apply []Op
	buffered, absorbed := 0, 0
	gen := co.phaseGen
	sync := func() {
		if co.phaseGen != gen {
			gen, buffered = co.phaseGen, 0
		}
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		if w.hot && co.hotLocked(w.key) {
			p, err := co.pendingFor(w.key, []byte(w.key), w.kind)
			if err != nil {
				return err
			}
			sync() // a kind mismatch inside pendingFor closed the phase
			if w.kind == 'i' {
				p.sum += w.delta
			} else {
				p.suf = append(p.suf, w.val...)
			}
			p.ops++
			// The key's logical value moved the instant the delta joined
			// the phase — not at the eventual merge. Bumping here keeps
			// buffered commits visible to OCC validation: a transaction
			// that read the key before this commit must abort, or its
			// write would overwrite the merge and lose this op.
			co.versions[w.key]++
			buffered++
			absorbed++
			continue
		}
		// A cold (or demoted-path) write to a key with a live buffer must
		// land the phase first, or the merge would clobber this write.
		if _, live := co.pend[w.key]; live {
			if err := co.flushLocked(); err != nil {
				return err
			}
			sync()
		}
		apply = append(apply, Op{Key: []byte(w.key), Value: w.absolute(), Delete: w.kind == 'd'})
	}
	if len(apply) > 1 {
		if _, err := co.atomicLocked(apply); err != nil {
			return err
		}
		sync() // atomicLocked lands any open phase before preparing
	} else if len(apply) == 1 {
		if err := co.be.Apply(apply); err != nil {
			return err
		}
		co.versions[string(apply[0].Key)]++
	}
	co.stats.Commits++
	if absorbed > 0 {
		co.stats.SplitOps += int64(absorbed)
		co.phaseOps += buffered
		if co.phaseOps >= co.opts.SplitOps {
			return co.flushLocked()
		}
	}
	return nil
}

// noteConflictLocked bumps k's contention counter and promotes it to the
// hot set at the threshold.
func (co *Coordinator) noteConflictLocked(k string) {
	co.conflicts[k]++
	if co.opts.HotThreshold > 0 && !co.hot[k] && co.conflicts[k] >= co.opts.HotThreshold {
		co.hot[k] = true
		co.stats.HotKeys++
	}
}

// Flush closes the current split phase, merging every buffered commutative
// op into one write per hot key. Callers flush before durability points
// (Sync) and before reading counters out-of-band.
func (co *Coordinator) Flush() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.flushLocked()
}

// RawWrite coordinates a non-transactional write with the OCC state, for
// front ends that serve raw puts/deletes and transactional commands over
// one coordinator. It lands any split-phase buffer holding one of the keys
// (a later merge would otherwise clobber the raw write), runs write while
// holding the coordinator mutex — so no transaction can validate or apply
// against a half-landed state — and bumps every key's version so
// transactions that read the pre-write values conflict instead of
// committing stale derivations. Versions are bumped even when write fails:
// a failed batch may still have applied some of its ops, and a spurious
// conflict is safe where a missed one is not.
func (co *Coordinator) RawWrite(keys [][]byte, write func() error) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, k := range keys {
		if _, live := co.pend[string(k)]; live {
			if err := co.flushLocked(); err != nil {
				return err
			}
			break
		}
	}
	err := write()
	for _, k := range keys {
		co.versions[string(k)]++
	}
	return err
}

// flushLocked is Flush with the lock held: one merged write per buffered
// key, in buffer-creation order, then a phase close (conflict counters
// decay by half; the hot set is sticky).
func (co *Coordinator) flushLocked() error {
	if len(co.pendKeys) == 0 {
		return nil
	}
	ops := make([]Op, 0, len(co.pendKeys))
	for _, k := range co.pendKeys {
		ops = append(ops, Op{Key: []byte(k), Value: co.pend[k].materialize()})
	}
	shards := co.shardsOf(ops)
	starts := co.nows(shards)
	// Reset phase state before touching the backend: Apply on these keys
	// must not re-enter the flush. Versions are NOT bumped here — each
	// buffered op already bumped its key when it joined the phase, so the
	// merge materializes values whose version moves readers have already
	// been charged for.
	co.pend = make(map[string]*pending)
	co.pendKeys = nil
	co.phaseOps = 0
	co.phaseGen++
	for k, n := range co.conflicts {
		if n /= 2; n == 0 {
			delete(co.conflicts, k)
		} else {
			co.conflicts[k] = n
		}
	}
	if err := co.be.Apply(ops); err != nil {
		return fmt.Errorf("txn: split-phase merge: %w", err)
	}
	co.stats.SplitMerges++
	for i, s := range shards {
		co.be.Tracer(s).Span(trace.BGTrack(trace.CauseSplitMerge), trace.EvSplitMerge,
			trace.CauseSplitMerge, starts[i], starts[i], co.be.Now(s), int64(len(ops)))
	}
	return nil
}

// Run executes fn inside a transaction, committing at return and retrying
// the whole body on validation conflicts with capped-doubling virtual
// backoff. It returns the total backoff delay the retries accrued (zero on
// a first-try commit) so callers can fold it into reported latency.
func (co *Coordinator) Run(fn func(*Tx) error) (sim.Duration, error) {
	var backoff sim.Duration
	for attempt := 0; ; attempt++ {
		tx := co.Begin()
		if err := fn(tx); err != nil {
			tx.Abort()
			return backoff, err
		}
		err := tx.Commit()
		if err == nil {
			return backoff, nil
		}
		if !errors.Is(err, ErrConflict) {
			return backoff, err
		}
		if attempt >= co.opts.MaxRetries {
			co.mu.Lock()
			co.stats.Aborts++
			co.mu.Unlock()
			return backoff, fmt.Errorf("txn: %w after %d attempts: %w", ErrAborted, attempt+1, ErrConflict)
		}
		co.mu.Lock()
		co.stats.Retries++
		co.mu.Unlock()
		backoff += co.opts.delay(attempt)
	}
}

// Incr atomically adds delta to the base-10 integer at key and returns the
// new value, retrying conflicts per the options.
func (co *Coordinator) Incr(key []byte, delta int64) (int64, sim.Duration, error) {
	var out int64
	backoff, err := co.Run(func(tx *Tx) error {
		v, err := tx.Incr(key, delta)
		out = v
		return err
	})
	return out, backoff, err
}

// Append atomically appends suffix to the value at key.
func (co *Coordinator) Append(key, suffix []byte) (sim.Duration, error) {
	return co.Run(func(tx *Tx) error {
		return tx.Append(key, suffix)
	})
}

// CompareAndSwap writes new at key iff the current value equals old; an
// empty or nil old means "expect absent". A value mismatch returns
// ErrConflict without retrying (the compare genuinely failed); version
// conflicts from concurrent writers retry like any transaction.
func (co *Coordinator) CompareAndSwap(key, old, new []byte) (sim.Duration, error) {
	return co.Run(func(tx *Tx) error {
		cur, err := tx.Get(key)
		switch {
		case errors.Is(err, kv.ErrNotFound):
			if len(old) != 0 {
				return fmt.Errorf("txn: compare-and-swap of absent %q: %w", key, ErrConflict)
			}
		case err != nil:
			return err
		case len(old) == 0 || !bytesEqual(cur, old):
			return fmt.Errorf("txn: compare-and-swap mismatch at %q: %w", key, ErrConflict)
		}
		tx.Put(key, new)
		return nil
	})
}

// shardsOf returns the distinct shards of ops' keys, ascending.
func (co *Coordinator) shardsOf(ops []Op) []int {
	var shards []int
	for i := range ops {
		s := co.be.ShardFor(ops[i].Key)
		if !containsInt(shards, s) {
			shards = append(shards, s)
		}
	}
	for i := 1; i < len(shards); i++ {
		for j := i; j > 0 && shards[j] < shards[j-1]; j-- {
			shards[j], shards[j-1] = shards[j-1], shards[j]
		}
	}
	return shards
}

// nows snapshots the listed shards' clocks.
func (co *Coordinator) nows(shards []int) []sim.Time {
	out := make([]sim.Time, len(shards))
	for i, s := range shards {
		out[i] = co.be.Now(s)
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// parseCounter reads a base-10 counter value; absent or empty counts as 0.
func parseCounter(val []byte, found bool) (int64, error) {
	if !found || len(val) == 0 {
		return 0, nil
	}
	n, err := strconv.ParseInt(string(val), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("txn: value %q is not a base-10 counter", val)
	}
	return n, nil
}
