package txn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"anykey/internal/kv"
	"anykey/internal/sim"
	"anykey/internal/trace"
)

// fakeBE is an in-memory routed KV backend with a per-key durability model
// mirroring the simulator's: Apply lands writes in current state and marks
// them unsynced; SyncShards makes a shard's state durable; crash reverts
// each unsynced key independently per a policy — exactly the "acknowledged
// but unsynced writes may or may not survive, per key" contract the real
// device implements.
type fakeBE struct {
	n     int
	cur   []map[string]string
	dur   []map[string]string
	uns   []map[string]bool
	clock []sim.Time

	applyOps   int // ops applied so far, across batches
	panicAfter int // panic BEFORE applying op #panicAfter (1-based); 0 = never
	syncCalls  int // SyncShards invocations so far
	failSyncAt int // fail SyncShards call #failSyncAt (1-based) without syncing; 0 = never
}

type fakeCut struct{ op int }

func newFake(n int) *fakeBE {
	f := &fakeBE{n: n}
	for i := 0; i < n; i++ {
		f.cur = append(f.cur, map[string]string{})
		f.dur = append(f.dur, map[string]string{})
		f.uns = append(f.uns, map[string]bool{})
		f.clock = append(f.clock, 0)
	}
	return f
}

func (f *fakeBE) Shards() int { return f.n }

func (f *fakeBE) ShardFor(key []byte) int {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(f.n))
}

func (f *fakeBE) Now(s int) sim.Time         { return f.clock[s] }
func (f *fakeBE) Tracer(s int) *trace.Tracer { return nil }

func (f *fakeBE) Get(key []byte) ([]byte, bool, error) {
	s := f.ShardFor(key)
	f.clock[s] += 1000
	v, ok := f.cur[s][string(key)]
	if !ok {
		return nil, false, nil
	}
	return []byte(v), true, nil
}

func (f *fakeBE) Apply(ops []Op) error {
	for i := range ops {
		f.applyOps++
		if f.panicAfter > 0 && f.applyOps >= f.panicAfter {
			panic(fakeCut{op: f.applyOps})
		}
		s := f.ShardFor(ops[i].Key)
		k := string(ops[i].Key)
		f.clock[s] += 2000
		if ops[i].Delete {
			delete(f.cur[s], k)
		} else {
			f.cur[s][k] = string(ops[i].Value)
		}
		f.uns[s][k] = true
	}
	return nil
}

func (f *fakeBE) SyncShards(shards []int) error {
	f.syncCalls++
	if f.failSyncAt > 0 && f.syncCalls == f.failSyncAt {
		return fmt.Errorf("injected sync failure (call %d)", f.syncCalls)
	}
	for _, s := range shards {
		f.clock[s] += 5000
		for k := range f.uns[s] {
			if v, ok := f.cur[s][k]; ok {
				f.dur[s][k] = v
			} else {
				delete(f.dur[s], k)
			}
		}
		f.uns[s] = map[string]bool{}
	}
	return nil
}

func (f *fakeBE) ScanShard(s int, start []byte, n int) ([]kv.Pair, error) {
	var keys []string
	for k := range f.cur[s] {
		if k >= string(start) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > n {
		keys = keys[:n]
	}
	out := make([]kv.Pair, len(keys))
	for i, k := range keys {
		out[i] = kv.Pair{Key: []byte(k), Value: []byte(f.cur[s][k])}
	}
	return out, nil
}

// crash reverts every unsynced key per keep: kept keys survive as written,
// dropped keys revert to their last durable state — independently per key.
func (f *fakeBE) crash(keep func(shard int, key string) bool) {
	for s := 0; s < f.n; s++ {
		for k := range f.uns[s] {
			if keep(s, k) {
				if v, ok := f.cur[s][k]; ok {
					f.dur[s][k] = v
				} else {
					delete(f.dur[s], k)
				}
			}
		}
		cur := map[string]string{}
		for k, v := range f.dur[s] {
			cur[k] = v
		}
		f.cur[s] = cur
		f.uns[s] = map[string]bool{}
	}
	f.panicAfter = 0
}

func (f *fakeBE) reservedCount() int {
	n := 0
	for s := 0; s < f.n; s++ {
		for k := range f.cur[s] {
			if strings.HasPrefix(k, reservedPrefix) {
				n++
			}
		}
	}
	return n
}

func (f *fakeBE) lookup(key string) (string, bool) {
	s := f.ShardFor([]byte(key))
	v, ok := f.cur[s][key]
	return v, ok
}

func opts(t *testing.T, o Options) Options {
	t.Helper()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestIncrAppendCAS(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: -1}))

	v, _, err := co.Incr([]byte("ctr"), 5)
	if err != nil || v != 5 {
		t.Fatalf("Incr absent = %d, %v; want 5, nil", v, err)
	}
	v, _, err = co.Incr([]byte("ctr"), -2)
	if err != nil || v != 3 {
		t.Fatalf("Incr = %d, %v; want 3, nil", v, err)
	}
	if got, _ := be.lookup("ctr"); got != "3" {
		t.Fatalf("stored counter = %q; want 3", got)
	}

	if _, err := co.Append([]byte("log"), []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Append([]byte("log"), []byte("cd")); err != nil {
		t.Fatal(err)
	}
	if got, _ := be.lookup("log"); got != "abcd" {
		t.Fatalf("appended value = %q; want abcd", got)
	}

	if _, err := co.CompareAndSwap([]byte("cas"), nil, []byte("v1")); err != nil {
		t.Fatalf("CAS expect-absent: %v", err)
	}
	if _, err := co.CompareAndSwap([]byte("cas"), []byte("v1"), []byte("v2")); err != nil {
		t.Fatalf("CAS match: %v", err)
	}
	_, err = co.CompareAndSwap([]byte("cas"), []byte("v1"), []byte("v3"))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("CAS mismatch = %v; want ErrConflict", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatalf("CAS mismatch should not wrap ErrAborted: %v", err)
	}
	if got, _ := be.lookup("cas"); got != "v2" {
		t.Fatalf("cas value = %q; want v2", got)
	}
}

func TestOCCConflictAndRetrySentinels(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{MaxRetries: 3, HotThreshold: -1}))
	if _, _, err := co.Incr([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}

	tx := co.Begin()
	if _, err := tx.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Incr([]byte("k"), 1); err != nil { // intervening writer
		t.Fatal(err)
	}
	tx.Put([]byte("k"), []byte("9"))
	err := tx.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale commit = %v; want ErrConflict", err)
	}

	// A body that manufactures a conflict on every attempt exhausts the
	// retry budget and reports both sentinels.
	attempts := 0
	_, err = co.Run(func(tx *Tx) error {
		attempts++
		if _, err := tx.Get([]byte("k")); err != nil {
			return err
		}
		if _, _, err := co.Incr([]byte("k"), 1); err != nil {
			return err
		}
		tx.Put([]byte("k"), []byte("0"))
		return nil
	})
	if !errors.Is(err, ErrAborted) || !errors.Is(err, ErrConflict) {
		t.Fatalf("exhausted retries = %v; want ErrAborted and ErrConflict", err)
	}
	if attempts != 4 { // 1 + MaxRetries
		t.Fatalf("attempts = %d; want 4", attempts)
	}
	st := co.Stats()
	if st.Aborts != 1 || st.Retries != 3 {
		t.Fatalf("stats = %+v; want 1 abort, 3 retries", st)
	}
}

func TestMissingKeyAndCounterErrors(t *testing.T) {
	be := newFake(2)
	co := New(be, opts(t, Options{}))
	tx := co.Begin()
	if _, err := tx.Get([]byte("absent")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get absent = %v; want kv.ErrNotFound", err)
	}
	tx.Abort()
	if _, _, err := co.Incr([]byte("text"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Append([]byte("text"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Incr([]byte("text"), 1); err == nil {
		t.Fatal("Incr of non-counter value should error")
	}
}

func TestHotPromotionAndSplitMerge(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: 2, SplitOps: 4, MaxRetries: 1}))
	key := []byte("hot")
	if _, _, err := co.Incr(key, 0); err != nil {
		t.Fatal(err)
	}

	// Manufacture HotThreshold validation conflicts on the key.
	for i := 0; i < 2; i++ {
		tx := co.Begin()
		if _, err := tx.Incr(key, 1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := co.Incr(key, 1); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrConflict) {
			t.Fatalf("commit %d = %v; want conflict", i, err)
		}
	}
	if st := co.Stats(); st.HotKeys != 1 || st.HotNow != 1 {
		t.Fatalf("after conflicts: %+v; want hot key", st)
	}
	base, _, err := co.Incr(key, 0) // buffered read of the running total
	if err != nil {
		t.Fatal(err)
	}

	// Buffered commutative ops must not conflict with each other even when
	// fully interleaved: begin both before committing either.
	tx1, tx2 := co.Begin(), co.Begin()
	if _, err := tx1.Incr(key, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Incr(key, 100); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("buffered commit 1: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("buffered commit 2: %v", err)
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(base + 110)
	if got, _ := be.lookup("hot"); got != want {
		t.Fatalf("merged value = %q; want %s", got, want)
	}
	st := co.Stats()
	if st.SplitMerges == 0 || st.SplitOps < 2 {
		t.Fatalf("split stats = %+v; want merges and buffered ops", st)
	}

	// SplitOps ops auto-close the phase without an explicit Flush.
	for i := 0; i < 4; i++ {
		if _, _, err := co.Incr(key, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := co.Stats().SplitMerges; got < st.SplitMerges+1 {
		t.Fatalf("auto merge count = %d; want > %d", got, st.SplitMerges)
	}
}

func TestSplitPhaseReadFlushes(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: 1, SplitOps: 1000, MaxRetries: 1}))
	key := []byte("hot")
	// One conflict promotes the key at threshold 1.
	tx := co.Begin()
	if _, err := tx.Incr(key, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Incr(key, 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	if _, _, err := co.Incr(key, 3); err != nil { // buffered
		t.Fatal(err)
	}
	// A transactional read must observe the merged value, not the stale base.
	rtx := co.Begin()
	got, err := rtx.Get(key)
	rtx.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "10" {
		t.Fatalf("read during phase = %q; want 10", got)
	}
	if co.Stats().SplitMerges != 1 {
		t.Fatalf("read should have closed the phase: %+v", co.Stats())
	}
}

// TestBufferedCommitConflictsStaleReader is the lost-update regression: a
// buffered split-phase commit must bump its key's version the moment the op
// joins the phase, so a transaction that read the key earlier aborts instead
// of overwriting the merge with a stale derivation.
func TestBufferedCommitConflictsStaleReader(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: 1, SplitOps: 1000, MaxRetries: 1}))
	key := []byte("hot")
	if _, _, err := co.Incr(key, 0); err != nil {
		t.Fatal(err)
	}
	// One manufactured conflict promotes the key at threshold 1.
	tx := co.Begin()
	if _, err := tx.Incr(key, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := co.Incr(key, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("promotion commit = %v; want conflict", err)
	}

	// tx1 reads the hot key; tx2 then commits a buffered Incr. The merge has
	// not landed yet, but tx1's blind overwrite must already be doomed.
	tx1 := co.Begin()
	if _, err := tx1.Get(key); err != nil {
		t.Fatal(err)
	}
	tx2 := co.Begin()
	if _, err := tx2.Incr(key, 10); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("buffered commit: %v", err)
	}
	tx1.Put(key, []byte("overwrite"))
	if err := tx1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale Put over buffered Incr = %v; want ErrConflict", err)
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := be.lookup("hot"); got != "11" {
		t.Fatalf("merged value = %q; want 11 (buffered increment lost)", got)
	}
}

// TestCommitSyncInDoubt fails the commit record's sync and checks the verdict:
// ErrInDoubt, not ErrAborted — the outcome belongs to Recover, which rolls
// the batch back here because the record never became durable.
func TestCommitSyncInDoubt(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: -1}))
	ops := []Op{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	}
	be.failSyncAt = 2 // call 1 is the prepare sync, call 2 the commit-record sync
	_, err := co.Atomic(ops)
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("commit-sync failure = %v; want ErrInDoubt", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatalf("in-doubt commit must not claim aborted: %v", err)
	}

	// Crash dropping everything unsynced: the best-effort record erasures are
	// lost, the durable intents reappear, the commit record does not — so
	// Recover must roll the batch back and leave no user data.
	be.crash(func(int, string) bool { return false })
	forward, back, err := co.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if forward != 0 || back != 1 {
		t.Fatalf("recover = %d forward, %d back; want 0, 1", forward, back)
	}
	for _, k := range []string{"a", "b"} {
		if v, ok := be.lookup(k); ok {
			t.Fatalf("rolled-back key %q survived with %q", k, v)
		}
	}
	if n := be.reservedCount(); n != 0 {
		t.Fatalf("%d reserved records left after recover", n)
	}
}

// TestPhaseOpsResetAfterMidCommitFlush: when one commit both buffers a hot op
// and triggers a mid-commit flush (here via a cold Put to a buffered key),
// the merged ops must not be recounted toward the next phase's close trigger.
func TestPhaseOpsResetAfterMidCommitFlush(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{HotThreshold: 100, SplitOps: 2, MaxRetries: 1}))
	co.hot["a"], co.hot["b"] = true, true

	// Open a phase holding one buffered delta on b.
	if _, _, err := co.Incr([]byte("b"), 1); err != nil {
		t.Fatal(err)
	}
	if co.phaseOps != 1 {
		t.Fatalf("phaseOps = %d; want 1", co.phaseOps)
	}

	tx := co.Begin()
	if _, err := tx.Incr([]byte("a"), 5); err != nil {
		t.Fatal(err)
	}
	tx.Put([]byte("b"), []byte("x")) // cold write to the buffered key: flushes mid-commit
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if co.phaseOps != 0 {
		t.Fatalf("phaseOps after mid-commit flush = %d; want 0 (merged ops recounted)", co.phaseOps)
	}
	if len(co.pendKeys) != 0 {
		t.Fatalf("phase still holds %d buffers", len(co.pendKeys))
	}
	if got, _ := be.lookup("a"); got != "5" {
		t.Fatalf("a = %q; want 5", got)
	}
	if got, _ := be.lookup("b"); got != "x" {
		t.Fatalf("b = %q; want x", got)
	}
}

func TestAtomicAppliesAndCleansUp(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{}))
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, Op{Key: []byte(fmt.Sprintf("a:%d", i)), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	ops = append(ops, Op{Key: []byte("a:0:gone"), Delete: true})
	id, err := co.Atomic(ops)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("atomic batch id should be non-zero")
	}
	for i := 0; i < 8; i++ {
		if got, ok := be.lookup(fmt.Sprintf("a:%d", i)); !ok || got != fmt.Sprintf("v%d", i) {
			t.Fatalf("a:%d = %q, %v", i, got, ok)
		}
	}
	if n := be.reservedCount(); n != 0 {
		t.Fatalf("%d transaction records left after clean commit", n)
	}
	st := co.Stats()
	if st.AtomicBatches != 1 || st.Prepares != 1 || st.Commits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiKeyCommitIsAtomic(t *testing.T) {
	be := newFake(4)
	co := New(be, opts(t, Options{}))
	_, err := co.Run(func(tx *Tx) error {
		tx.Put([]byte("x1"), []byte("a"))
		tx.Put([]byte("x2"), []byte("b"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if co.Stats().AtomicBatches != 1 {
		t.Fatalf("multi-key commit should use the 2PC path: %+v", co.Stats())
	}
	if be.reservedCount() != 0 {
		t.Fatal("records left behind")
	}
}

// TestAtomicCrashMatrix cuts the fake backend's power before every apply
// position of an atomic batch, under three per-key survival policies for
// unsynced writes, and requires recovery to leave the batch all-or-nothing.
func TestAtomicCrashMatrix(t *testing.T) {
	keeps := map[string]func(int, string) bool{
		"drop-all": func(int, string) bool { return false },
		"keep-all": func(int, string) bool { return true },
		"by-hash": func(s int, k string) bool {
			h := 0
			for _, c := range k {
				h += int(c)
			}
			return h%2 == 0
		},
	}
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops, Op{Key: []byte(fmt.Sprintf("m:%d", i)), Value: []byte(fmt.Sprintf("w%d", i))})
	}

	// Discover the op count of a clean run, then cut before each position.
	clean := newFake(4)
	if _, err := New(clean, opts(t, Options{})).Atomic(ops); err != nil {
		t.Fatal(err)
	}
	total := clean.applyOps

	for name, keep := range keeps {
		for cut := 1; cut <= total; cut++ {
			be := newFake(4)
			co := New(be, opts(t, Options{}))
			committed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(fakeCut); !ok {
							panic(r)
						}
					}
				}()
				be.panicAfter = cut
				if _, err := co.Atomic(ops); err == nil {
					committed = true
				}
			}()
			be.crash(keep)

			// A fresh coordinator on the remounted state, as after reboot.
			co2 := New(be, opts(t, Options{}))
			if _, _, err := co2.Recover(); err != nil {
				t.Fatalf("%s cut=%d: recover: %v", name, cut, err)
			}
			present := 0
			for i := range ops {
				if got, ok := be.lookup(string(ops[i].Key)); ok {
					if got != string(ops[i].Value) {
						t.Fatalf("%s cut=%d: %s = %q", name, cut, ops[i].Key, got)
					}
					present++
				}
			}
			if present != 0 && present != len(ops) {
				t.Fatalf("%s cut=%d: %d/%d keys visible — partial batch", name, cut, present, len(ops))
			}
			if committed && present != len(ops) {
				t.Fatalf("%s cut=%d: acknowledged batch lost", name, cut)
			}
			if n := be.reservedCount(); n != 0 {
				t.Fatalf("%s cut=%d: %d records left after recovery", name, cut, n)
			}
		}
	}
}

func TestRecordKeyRoutingAndCodec(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7, 16} {
		be := newFake(shards)
		co := New(be, opts(t, Options{}))
		for s := 0; s < shards; s++ {
			k := co.recordKey(markerIntent, 42, s)
			if got := be.ShardFor(k); got != s {
				t.Fatalf("shards=%d: intent key routed to %d, want %d", shards, got, s)
			}
			marker, id, shard, ok := parseRecordKey(k)
			if !ok || marker != markerIntent || id != 42 || shard != s {
				t.Fatalf("parse = %v %v %v %v", marker, id, shard, ok)
			}
		}
	}
	ops := []Op{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte("k2"), Delete: true},
		{Key: []byte(""), Value: []byte("")},
	}
	dec, err := decodeOps(encodeOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(ops) {
		t.Fatalf("decoded %d ops", len(dec))
	}
	for i := range ops {
		if string(dec[i].Key) != string(ops[i].Key) || string(dec[i].Value) != string(ops[i].Value) || dec[i].Delete != ops[i].Delete {
			t.Fatalf("op %d round-trip: %+v vs %+v", i, dec[i], ops[i])
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	var o Options
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.MaxRetries != 8 || o.HotThreshold != 8 || o.SplitOps != 64 || o.Backoff == 0 || o.MaxBackoff != 16*o.Backoff {
		t.Fatalf("defaults = %+v", o)
	}
	neg := Options{MaxRetries: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative MaxRetries should be rejected")
	}
	off := Options{HotThreshold: -1}
	if err := off.Validate(); err != nil || off.HotThreshold != -1 {
		t.Fatalf("HotThreshold -1 should validate: %v %+v", err, off)
	}
	if d := off.delay(0); d != off.Backoff {
		t.Fatalf("delay(0) = %v", d)
	}
	if d := off.delay(30); d != off.MaxBackoff {
		t.Fatalf("delay(30) = %v; want cap %v", d, off.MaxBackoff)
	}
}
