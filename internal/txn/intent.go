// Intent and commit records: the durable bookkeeping of the atomic 2PC
// path, stored as ordinary KV pairs in a reserved keyspace.
//
// Record keys live under reservedPrefix, which begins 0xFFFF so the records
// sort after every application key (workload keys are printable); a marker
// byte separates intents from commit records, and a trailing nonce is
// searched so each record ROUTES to the shard it describes — an intent is
// durable on the shard whose sub-batch it carries, and the commit record on
// the coordinator shard (the lowest involved shard). On a replicated fleet
// the records replicate like any write, so they survive member deaths with
// the same quorum the data enjoys.
package txn

import (
	"fmt"
	"sort"

	"anykey/internal/trace"
)

// reservedPrefix opens the transaction-record keyspace. Applications must
// not write keys beginning with it.
const reservedPrefix = "\xff\xffaktxn"

const (
	markerIntent byte = 0x01
	markerCommit byte = 0x02
)

// recordKey builds a transaction-record key and searches the trailing nonce
// until the key routes to the target shard. Layout:
// prefix | marker | id (8 BE) | shard (2 BE) | nonce (4 BE).
func (co *Coordinator) recordKey(marker byte, id uint64, shard int) []byte {
	n := len(reservedPrefix)
	key := make([]byte, n+1+8+2+4)
	copy(key, reservedPrefix)
	key[n] = marker
	putBE64(key[n+1:], id)
	putBE16(key[n+9:], uint16(shard))
	for nonce := uint32(0); ; nonce++ {
		putBE32(key[n+11:], nonce)
		if co.be.ShardFor(key) == shard {
			return key
		}
	}
}

// parseRecordKey decodes a reserved-keyspace key; ok is false for malformed
// keys (which recovery leaves untouched).
func parseRecordKey(key []byte) (marker byte, id uint64, shard int, ok bool) {
	n := len(reservedPrefix)
	if len(key) != n+1+8+2+4 || string(key[:n]) != reservedPrefix {
		return 0, 0, 0, false
	}
	marker = key[n]
	if marker != markerIntent && marker != markerCommit {
		return 0, 0, 0, false
	}
	return marker, getBE64(key[n+1:]), int(getBE16(key[n+9:])), true
}

// encodeOps serializes a sub-batch into an intent value: op count, then per
// op a flag byte (bit 0 = delete), key and value with 4-byte lengths.
func encodeOps(ops []Op) []byte {
	size := 4
	for i := range ops {
		size += 1 + 4 + len(ops[i].Key) + 4 + len(ops[i].Value)
	}
	out := make([]byte, 0, size)
	var b4 [4]byte
	putBE32(b4[:], uint32(len(ops)))
	out = append(out, b4[:]...)
	for i := range ops {
		var flag byte
		if ops[i].Delete {
			flag = 1
		}
		out = append(out, flag)
		putBE32(b4[:], uint32(len(ops[i].Key)))
		out = append(out, b4[:]...)
		out = append(out, ops[i].Key...)
		putBE32(b4[:], uint32(len(ops[i].Value)))
		out = append(out, b4[:]...)
		out = append(out, ops[i].Value...)
	}
	return out
}

// decodeOps parses an intent value, copying keys and values out of the
// (backend-owned) buffer.
func decodeOps(val []byte) ([]Op, error) {
	if len(val) < 4 {
		return nil, fmt.Errorf("txn: intent value truncated (%d bytes)", len(val))
	}
	n := int(getBE32(val))
	val = val[4:]
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if len(val) < 5 {
			return nil, fmt.Errorf("txn: intent op %d truncated", i)
		}
		flag := val[0]
		kl := int(getBE32(val[1:]))
		val = val[5:]
		if len(val) < kl+4 {
			return nil, fmt.Errorf("txn: intent op %d key truncated", i)
		}
		key := append([]byte(nil), val[:kl]...)
		vl := int(getBE32(val[kl:]))
		val = val[kl+4:]
		if len(val) < vl {
			return nil, fmt.Errorf("txn: intent op %d value truncated", i)
		}
		var value []byte
		if flag&1 == 0 {
			value = append([]byte(nil), val[:vl]...)
		}
		val = val[vl:]
		ops = append(ops, Op{Key: key, Value: value, Delete: flag&1 == 1})
	}
	return ops, nil
}

// encodeShards records the involved-shard list in a commit record (for
// inspection; recovery derives everything it needs from the intents).
func encodeShards(shards []int) []byte {
	out := make([]byte, 2+2*len(shards))
	putBE16(out, uint16(len(shards)))
	for i, s := range shards {
		putBE16(out[2+2*i:], uint16(s))
	}
	return out
}

// Atomic applies ops as one all-or-nothing cross-shard batch and returns
// its transaction id. On success every op is applied and durable; on an
// error wrapping ErrAborted none will survive recovery. An error wrapping
// ErrInDoubt means the commit point itself is undecided — the commit
// record's sync failed, so after a crash Recover rolls the batch forward
// if the record proved durable and back otherwise; callers must not assume
// either. Any other error reports a batch committed but not yet fully
// applied (a backend failure after the commit point); Recover rolls it
// forward.
func (co *Coordinator) Atomic(ops []Op) (uint64, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	id, err := co.atomicLocked(ops)
	if err == nil && len(ops) > 0 {
		co.stats.Commits++
	}
	return id, err
}

// atomicLocked runs the 2PC protocol with the coordinator lock held. The
// sync ordering is the whole correctness story: intents are durable before
// the commit record, the commit record before any user write, and every
// user write before any cleanup delete is even issued — so no crash point
// can surface a partial batch that recovery cannot resolve.
func (co *Coordinator) atomicLocked(ops []Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	// Land any split-phase buffers first: the batch must observe — and
	// produce — a merged state.
	if len(co.pendKeys) > 0 {
		if err := co.flushLocked(); err != nil {
			return 0, err
		}
	}
	co.nextID++
	id := co.nextID
	shards := co.shardsOf(ops)
	starts := co.nows(shards)

	// Phase 1 — prepare: stamp one durable intent per involved shard,
	// carrying that shard's sub-batch in caller order.
	intents := make([]Op, len(shards))
	for i, s := range shards {
		var sub []Op
		for j := range ops {
			if co.be.ShardFor(ops[j].Key) == s {
				sub = append(sub, ops[j])
			}
		}
		intents[i] = Op{Key: co.recordKey(markerIntent, id, s), Value: encodeOps(sub)}
	}
	abort := func(stage string, cause error) (uint64, error) {
		// Best-effort rollback: discard the intent records. If the deletes
		// are lost too, Recover finds intents without a commit record and
		// rolls the batch back — user data was never written.
		dels := make([]Op, len(intents))
		for i := range intents {
			dels[i] = Op{Key: intents[i].Key, Delete: true}
		}
		_ = co.be.Apply(dels)
		return id, fmt.Errorf("txn: atomic batch %d %s: %w (%w)", id, stage, ErrAborted, cause)
	}
	if err := co.be.Apply(intents); err != nil {
		return abort("prepare", err)
	}
	if err := co.be.SyncShards(shards); err != nil {
		return abort("prepare sync", err)
	}
	co.stats.Prepares++
	for i, s := range shards {
		co.be.Tracer(s).Span(trace.BGTrack(trace.CauseTxnPrepare), trace.EvTxnPrepare,
			trace.CauseTxnPrepare, starts[i], starts[i], co.be.Now(s), int64(id))
	}

	// Phase 2 — commit point: a durable commit record on the coordinator
	// shard.
	coord := shards[0]
	crec := Op{Key: co.recordKey(markerCommit, id, coord), Value: encodeShards(shards)}
	abortCommit := func(stage string, verdict, cause error) (uint64, error) {
		dels := make([]Op, 0, len(intents)+1)
		dels = append(dels, Op{Key: crec.Key, Delete: true})
		for i := range intents {
			dels = append(dels, Op{Key: intents[i].Key, Delete: true})
		}
		_ = co.be.Apply(dels)
		return id, fmt.Errorf("txn: atomic batch %d %s: %w (%w)", id, stage, verdict, cause)
	}
	if err := co.be.Apply([]Op{crec}); err != nil {
		// The record never reached the device: nothing can surface the
		// batch, so this is a clean abort.
		return abortCommit("commit record", ErrAborted, err)
	}
	if err := co.be.SyncShards([]int{coord}); err != nil {
		// In doubt: the record may or may not be durable. Attempt to erase
		// it; if the erase is lost too, recovery resolves whichever state
		// flash kept — all (roll forward) or nothing (roll back). The
		// caller must not be told "aborted": ErrInDoubt says the outcome
		// belongs to Recover.
		return abortCommit("commit sync", ErrInDoubt, err)
	}

	// Committed. Readers must re-read whatever happens next.
	for i := range ops {
		co.versions[string(ops[i].Key)]++
	}

	// Phase 3 — apply the real writes and make them durable.
	if err := co.be.Apply(ops); err != nil {
		return id, fmt.Errorf("txn: atomic batch %d committed but not fully applied (run Recover to roll forward): %w", id, err)
	}
	if err := co.be.SyncShards(shards); err != nil {
		return id, fmt.Errorf("txn: atomic batch %d committed but apply sync failed (run Recover to roll forward): %w", id, err)
	}

	// Phase 4 — lazy cleanup. Deliberately unsynced: losing these deletes
	// to a crash only costs an idempotent roll-forward at recovery.
	cleanup := make([]Op, 0, len(intents)+1)
	for i := range intents {
		cleanup = append(cleanup, Op{Key: intents[i].Key, Delete: true})
	}
	cleanup = append(cleanup, Op{Key: crec.Key, Delete: true})
	_ = co.be.Apply(cleanup)
	co.stats.AtomicBatches++
	return id, nil
}

// Recover scans every shard's reserved keyspace and resolves the
// transaction records a crash left behind: batches with a durable commit
// record roll forward (idempotent re-apply, synced, then records
// discarded); batches without one roll back (intents discarded; user data
// untouched, since apply only ever starts after the commit record is
// durable). It returns the batches rolled in each direction. Call it after
// remounting the shards and before serving traffic.
func (co *Coordinator) Recover() (forward, back int, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()

	type entry struct {
		shard int
		ops   []Op
	}
	type batch struct {
		id        uint64
		committed bool
		entries   []entry
		recKeys   [][]byte
		seenRec   map[string]bool
		seenShard map[int]bool
	}
	found := map[uint64]*batch{}
	var order []uint64

	for s := 0; s < co.be.Shards(); s++ {
		start := []byte(reservedPrefix)
		for {
			pairs, serr := co.be.ScanShard(s, start, 64)
			if serr != nil {
				// A dead or retired member: its replicas on surviving
				// members carry the records.
				break
			}
			done := len(pairs) < 64
			for _, p := range pairs {
				marker, id, shard, ok := parseRecordKey(p.Key)
				if !ok {
					done = true
					break
				}
				b := found[id]
				if b == nil {
					b = &batch{id: id, seenRec: map[string]bool{}, seenShard: map[int]bool{}}
					found[id] = b
					order = append(order, id)
				}
				if b.seenRec[string(p.Key)] {
					continue // a replica of a record already collected
				}
				b.seenRec[string(p.Key)] = true
				b.recKeys = append(b.recKeys, append([]byte(nil), p.Key...))
				if marker == markerCommit {
					b.committed = true
					continue
				}
				if b.seenShard[shard] {
					continue
				}
				b.seenShard[shard] = true
				ops, derr := decodeOps(p.Value)
				if derr != nil {
					return forward, back, fmt.Errorf("txn: recover batch %d shard %d: %w", id, shard, derr)
				}
				b.entries = append(b.entries, entry{shard: shard, ops: ops})
			}
			if done {
				break
			}
			last := pairs[len(pairs)-1].Key
			start = append(append([]byte(nil), last...), 0x00)
		}
	}

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		b := found[id]
		if b.committed && len(b.entries) > 0 {
			sort.Slice(b.entries, func(i, j int) bool { return b.entries[i].shard < b.entries[j].shard })
			var ops []Op
			shards := make([]int, 0, len(b.entries))
			for _, e := range b.entries {
				ops = append(ops, e.ops...)
				shards = append(shards, e.shard)
			}
			if err := co.be.Apply(ops); err != nil {
				return forward, back, fmt.Errorf("txn: recover batch %d roll-forward: %w", id, err)
			}
			if err := co.be.SyncShards(shards); err != nil {
				return forward, back, fmt.Errorf("txn: recover batch %d roll-forward sync: %w", id, err)
			}
			for i := range ops {
				co.versions[string(ops[i].Key)]++
			}
			forward++
			co.stats.RolledForward++
		} else {
			back++
			co.stats.RolledBack++
		}
		cleanup := make([]Op, len(b.recKeys))
		for i, k := range b.recKeys {
			cleanup[i] = Op{Key: k, Delete: true}
		}
		if err := co.be.Apply(cleanup); err != nil {
			return forward, back, fmt.Errorf("txn: recover batch %d cleanup: %w", id, err)
		}
		if id > co.nextID {
			co.nextID = id
		}
	}
	return forward, back, nil
}

func putBE16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func getBE16(b []byte) uint16    { return uint16(b[0])<<8 | uint16(b[1]) }

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getBE32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE64(b []byte, v uint64) {
	putBE32(b, uint32(v>>32))
	putBE32(b[4:], uint32(v))
}

func getBE64(b []byte) uint64 {
	return uint64(getBE32(b))<<32 | uint64(getBE32(b[4:]))
}
