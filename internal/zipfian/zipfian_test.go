package zipfian

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.99); err == nil {
		t.Fatal("empty population accepted")
	}
	for _, th := range []float64{0, 1, -0.5, 2} {
		if _, err := New(10, th); err == nil {
			t.Fatalf("theta %v accepted", th)
		}
	}
}

func TestRanksInRange(t *testing.T) {
	g, err := New(1000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		if r := g.Next(rng); r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r := g.NextScrambled(rng); r >= 1000 {
			t.Fatalf("scrambled rank %d out of range", r)
		}
	}
}

// The defining Zipfian property: P(rank 0)/P(rank k) ≈ (k+1)^θ.
func TestFrequencyRatios(t *testing.T) {
	const n = 10000
	g, err := New(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	const draws = 2_000_000
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	for i := 1; i < n; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d drawn more often (%d) than rank 0 (%d)", i, counts[i], counts[0])
		}
	}
	// Compare observed P(0)/P(9) against theory (10^0.99 ≈ 9.77).
	ratio := float64(counts[0]) / float64(counts[9])
	want := math.Pow(10, 0.99)
	if ratio < want*0.8 || ratio > want*1.2 {
		t.Fatalf("P(0)/P(9) = %.2f, theory %.2f", ratio, want)
	}
}

func TestLowerThetaIsFlatter(t *testing.T) {
	const n = 1000
	rng := rand.New(rand.NewSource(3))
	top := func(theta float64) float64 {
		g, err := New(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		const draws = 200000
		for i := 0; i < draws; i++ {
			if g.Next(rng) < 10 {
				hits++
			}
		}
		return float64(hits) / draws
	}
	hot99, hot60 := top(0.99), top(0.60)
	if hot99 <= hot60 {
		t.Fatalf("θ=0.99 top-10 mass %.3f not above θ=0.60 %.3f", hot99, hot60)
	}
}

func TestScrambleSpreadsHotKeys(t *testing.T) {
	const n = 100000
	g, err := New(n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Draw scrambled ids; the hottest ids must not all be in the low range.
	low := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if g.NextScrambled(rng) < n/2 {
			low++
		}
	}
	frac := float64(low) / draws
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("scrambled mass in lower half = %.3f, want ≈0.5", frac)
	}
}

func TestScrambleDeterministic(t *testing.T) {
	if Scramble(42) != Scramble(42) {
		t.Fatal("Scramble not deterministic")
	}
	if Scramble(1) == Scramble(2) {
		t.Fatal("Scramble(1) == Scramble(2)")
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var lo int
	for i := 0; i < 100000; i++ {
		v := Uniform(rng, 100)
		if v >= 100 {
			t.Fatalf("uniform value %d out of range", v)
		}
		if v < 50 {
			lo++
		}
	}
	if lo < 45000 || lo > 55000 {
		t.Fatalf("uniform lower-half mass %d/100000", lo)
	}
}

func BenchmarkNext(b *testing.B) {
	g, _ := New(1_000_000, 0.99)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}
