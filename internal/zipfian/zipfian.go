// Package zipfian implements the YCSB-style Zipfian item generator used to
// draw keys for every experiment (paper §5.1: "Zipfian distribution" over
// the key population; Fig. 17 varies its θ). The scrambled variant spreads
// the popular ranks uniformly across the key space, as YCSB does, so that
// hot keys are not clustered at one end of the sorted order.
package zipfian

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws ranks in [0, N) with P(rank=i) ∝ 1/(i+1)^θ.
type Generator struct {
	n          uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	zeta2theta float64
}

// New builds a generator over n items with skew theta in (0, 1). The
// construction computes ζ(n, θ) in O(n); generators are built once per
// experiment and reused.
func New(n uint64, theta float64) (*Generator, error) {
	if n == 0 {
		return nil, fmt.Errorf("zipfian: empty population")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("zipfian: theta %v out of (0,1)", theta)
	}
	g := &Generator{n: n, theta: theta}
	g.zetan = zeta(n, theta)
	g.zeta2theta = zeta(2, theta)
	g.alpha = 1 / (1 - theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - g.zeta2theta/g.zetan)
	return g, nil
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// N returns the population size.
func (g *Generator) N() uint64 { return g.n }

// Next draws the next rank using rng; rank 0 is the most popular item.
func (g *Generator) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	r := uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	if r >= g.n {
		r = g.n - 1
	}
	return r
}

// NextScrambled draws a rank and scrambles it over [0, N) with a fixed
// 64-bit mix, so popularity is Zipfian but the popular items are scattered
// across the whole id space.
func (g *Generator) NextScrambled(rng *rand.Rand) uint64 {
	return Scramble(g.Next(rng)) % g.n
}

// Scramble applies the 64-bit finalizer mix (SplitMix64) used to scatter
// ranks; exported so tests and the workload generator agree on the mapping.
func Scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uniform draws uniformly from [0, n); it is the θ→0 limit used by tests.
func Uniform(rng *rand.Rand, n uint64) uint64 {
	return uint64(rng.Int63n(int64(n)))
}
