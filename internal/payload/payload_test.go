package payload

import (
	"bytes"
	"testing"
)

// fillReference is the historical workload.fillDeterministic, kept verbatim
// as the compatibility oracle: Fill must reproduce it bit for bit or every
// committed golden checksum breaks.
func fillReference(dst []byte, seed uint64) {
	x := seed | 1
	for i := range dst {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		dst[i] = byte((x * 0x2545F4914F6CDD1D) >> 56)
	}
}

func TestFillMatchesReference(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 0x9E3779B97F4A7C15, 1<<64 - 1, 424242} {
		for _, n := range []int{0, 1, 7, 16, 43, 4096} {
			want := make([]byte, n)
			got := make([]byte, n)
			fillReference(want, seed)
			Fill(got, seed)
			if !bytes.Equal(got, want) {
				t.Fatalf("Fill(seed=%#x, n=%d) diverges from reference", seed, n)
			}
		}
	}
}

func TestStateResume(t *testing.T) {
	const seed = 77
	full := make([]byte, 300)
	Fill(full, seed)

	// Fill in three chunks through the returned states.
	got := make([]byte, 300)
	st := Start(seed)
	st = st.Fill(got[:100])
	st = st.Fill(got[100:250])
	st.Fill(got[250:])
	if !bytes.Equal(got, full) {
		t.Fatal("chunked Fill diverges from one-shot Fill")
	}

	// Skip is equivalent to filling and discarding.
	tail := make([]byte, 50)
	Start(seed).Skip(250).Fill(tail)
	if !bytes.Equal(tail, full[250:]) {
		t.Fatal("Skip+Fill diverges from the stream tail")
	}
}

func TestStartIdempotentOnState(t *testing.T) {
	st := Start(12345)
	if Start(uint64(st)) != st {
		t.Fatal("a stream-start state must be reusable as its own seed")
	}
}

func TestVerifyFrom(t *testing.T) {
	const seed = 991
	v := make([]byte, 128)
	Fill(v, seed)

	st, ok := Start(seed).VerifyFrom(v[:64])
	if !ok {
		t.Fatal("prefix failed verification against its own stream")
	}
	if _, ok := st.VerifyFrom(v[64:]); !ok {
		t.Fatal("continuation failed verification from the resumed state")
	}
	bad := append([]byte(nil), v...)
	bad[100] ^= 1
	if _, ok := Start(seed).VerifyFrom(bad); ok {
		t.Fatal("corrupted bytes passed verification")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	Enable()
	v := make([]byte, 256)
	const seed = 0xDEADBEEF
	Fill(v, seed)
	Note(v, seed)

	got, ok := Lookup(v)
	if !ok || got != seed {
		t.Fatalf("Lookup = (%#x, %v), want (%#x, true)", got, ok, uint64(seed))
	}
	// A strict prefix of the value (a log first-fragment chunk) resolves to
	// the same entry.
	if got, ok := Lookup(v[:40]); !ok || got != seed {
		t.Fatalf("prefix Lookup = (%#x, %v), want (%#x, true)", got, ok, uint64(seed))
	}
	// Below MinLookup nothing is registered or returned.
	if _, ok := Lookup(v[:MinLookup-1]); ok {
		t.Fatal("Lookup succeeded below MinLookup")
	}
	// The candidate must verify; a different byte string colliding into the
	// slot must fail VerifyFrom (the caller-side safety net).
	other := append([]byte(nil), v...)
	other[200] ^= 0xFF
	cand, ok := Lookup(other) // same prefix, same slot
	if !ok {
		t.Fatal("prefix-matched lookup should return the candidate")
	}
	if _, ok := Start(cand).VerifyFrom(other); ok {
		t.Fatal("VerifyFrom accepted bytes the stream did not generate")
	}
}
