// Package payload is the seed-deterministic value-byte generator shared by
// the workload layer and the flash array's flyweight page store.
//
// Every value the benchmark workloads write is a pure function of a 64-bit
// seed (an xorshift64* stream), so retaining the bytes of a programmed page
// is redundant: a page image can be stored as a skeleton with the recognised
// value ranges excised, and the excised bytes regenerated on demand. This
// package provides the two halves of that contract:
//
//   - Fill/State: the PRNG itself. State supports resuming mid-stream, which
//     lets a value that spans flash pages (value-log fragment chains) be
//     excised from each page independently.
//
//   - the intern registry: a bounded, content-keyed table mapping a value's
//     first bytes to the seed that generates it. The workload generator
//     Notes every value it emits; the flyweight store Looks candidate ranges
//     up at program time. Every lookup is verified by full regeneration
//     (VerifyFrom), so hash collisions, evicted entries or misparsed pages
//     can only cost memory (the range stays in the skeleton), never bytes.
//
// The registry is process-global and safe for concurrent use. It stays
// completely inert (one atomic load per Note) until a flyweight store calls
// Enable, so raw-mode simulations pay nothing.
package payload

import (
	"sync/atomic"

	"anykey/internal/xxhash"
)

// State is a point in an xorshift64* byte stream. The zero State is invalid;
// streams start at Start(seed).
type State uint64

// Start returns the stream state for seed. Note that Start(uint64(Start(s)))
// == Start(s): a state at the beginning of a stream is itself a valid seed
// for the same stream, which lets materialised values re-register under
// their resumed state.
func Start(seed uint64) State { return State(seed | 1) }

// Fill writes the next len(dst) bytes of the stream into dst and returns the
// advanced state. The byte recurrence is exactly the workload generator's
// historical fillDeterministic, so pre-existing golden checksums are
// unchanged.
func (s State) Fill(dst []byte) State {
	x := uint64(s)
	for i := range dst {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		dst[i] = byte((x * 0x2545F4914F6CDD1D) >> 56)
	}
	return State(x)
}

// Skip advances the stream by n bytes without emitting them.
func (s State) Skip(n int) State {
	x := uint64(s)
	for ; n > 0; n-- {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
	}
	return State(x)
}

// VerifyFrom reports whether b is exactly the next len(b) bytes of the
// stream at s, and returns the state after them. It allocates nothing and
// exits on the first mismatch.
func (s State) VerifyFrom(b []byte) (State, bool) {
	x := uint64(s)
	for _, c := range b {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		if byte((x*0x2545F4914F6CDD1D)>>56) != c {
			return 0, false
		}
	}
	return State(x), true
}

// Fill writes the deterministic byte string of seed into dst (the historical
// workload.fillDeterministic).
func Fill(dst []byte, seed uint64) { Start(seed).Fill(dst) }

// --- intern registry ------------------------------------------------------

// PrefixLen is the number of leading value bytes that key the registry.
// Keying on a short prefix (rather than the whole value) lets a value-log
// first fragment — a strict prefix of the full value — resolve to the same
// entry the full value registered. Collisions are harmless: lookups hand out
// candidate seeds that callers must verify by regeneration.
const PrefixLen = 16

// MinLookup is the shortest byte range worth interning: ranges shorter than
// PrefixLen cannot be keyed, and excising a range much smaller than a splice
// record would grow the flyweight representation.
const MinLookup = 24

// regBits sizes the direct-mapped registry: 1<<regBits entries of 16 bytes.
// The registry only has to cover the window between a value's generation
// (Note) and its landing on flash (Lookup at program time) — bounded by the
// write buffer — plus values re-registered when a page is materialised for
// compaction. 2^20 entries make collisions within that window negligible at
// any geometry while costing 16 MiB once enabled.
const regBits = 20

var (
	enabled atomic.Bool

	// Direct-mapped table, two parallel word arrays accessed with atomics.
	// A torn (hash from one writer, seed from another) entry is indistin-
	// guishable from a collision and fails verification downstream, so no
	// locking is needed.
	regHash [1 << regBits]atomic.Uint64
	regSeed [1 << regBits]atomic.Uint64
)

// Enable turns the registry on. Called by the first flyweight store; never
// turned off (a raw-mode device opened later is unaffected by a live
// registry).
func Enable() { enabled.Store(true) }

// Enabled reports whether any flyweight store has enabled interning.
func Enabled() bool { return enabled.Load() }

// prefixKey hashes the first PrefixLen bytes of v. Callers guarantee
// len(v) >= PrefixLen. The hash must be process-independent (no per-process
// seed): which prefixes collide decides which registry entries evict each
// other, and an evicted entry means the flyweight store keeps those value
// bytes verbatim — harmless for correctness, but it would make reported
// resident bytes vary across otherwise identical runs.
func prefixKey(v []byte) uint64 {
	p := v[:PrefixLen]
	h := uint64(xxhash.Sum32Seed(p, 0x9E3779B9))<<32 | uint64(xxhash.Sum32Seed(p, 0x85EBCA77))
	// Never store the reserved empty-slot hash.
	if h == 0 {
		h = 1
	}
	return h
}

// Note registers v as the byte string generated by seed. It is a cheap no-op
// while no flyweight store exists. Callers pass the full value; short values
// are not worth interning and are skipped.
func Note(v []byte, seed uint64) {
	if len(v) < MinLookup || !enabled.Load() {
		return
	}
	h := prefixKey(v)
	i := h & (1<<regBits - 1)
	regSeed[i].Store(seed)
	regHash[i].Store(h)
}

// Lookup returns the candidate seed registered for a byte range starting
// with v's prefix. The candidate is exactly that — callers MUST verify it
// with State.VerifyFrom before trusting it. ok is false when no candidate is
// registered (or the range is too short to have been Noted).
func Lookup(v []byte) (seed uint64, ok bool) {
	if len(v) < MinLookup || !enabled.Load() {
		return 0, false
	}
	h := prefixKey(v)
	i := h & (1<<regBits - 1)
	if regHash[i].Load() != h {
		return 0, false
	}
	return regSeed[i].Load(), true
}
