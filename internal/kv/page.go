package kv

import (
	"fmt"
	"hash/crc32"
)

// Page layout used by data segments, data segment groups and meta segments:
//
//	[u16 count][u16 aux][u16 extraLen][extra bytes][records →   ...   ← offset table]
//
// Records grow from the front; a table of u16 record offsets grows from the
// back of the page (one entry per record, in append order), giving O(1)
// random access and binary search without decoding the whole page. The aux
// field carries the owner's per-page bits — AnyKey stores its two
// hash-collision bits there (paper §4.1, Fig. 7). The extra region holds the
// group's key-sorted location table on first pages (paper §4.4, range query
// support).
//
// Seal/Verify add an end-to-end CRC over the page, standing in for the ECC
// a real flash controller applies: a sealed page whose bytes were disturbed
// fails Verify instead of decoding garbage.
const pageHeaderSize = 6

// PageWriter incrementally fills one fixed-size flash page buffer.
type PageWriter struct {
	buf   []byte // full page, len == page size
	head  int    // next record write position
	tail  int    // start of the offset table region
	count int
}

// NewPageWriter wraps a page buffer of exactly the flash page size. The
// buffer must be zero-filled — callers pass freshly allocated page images
// (the flash array takes ownership of programmed pages, so images are never
// reused), and skipping a redundant clear here halves the per-page memset
// cost on the write path. extra is copied into the page's extra region (may
// be nil). It panics if extra cannot fit, since callers size extras up
// front.
func NewPageWriter(buf []byte, extra []byte) *PageWriter {
	if pageHeaderSize+len(extra) > len(buf) {
		panic(fmt.Sprintf("kv: page extra region %d too large for page %d", len(extra), len(buf)))
	}
	w := &PageWriter{buf: buf, head: pageHeaderSize + len(extra), tail: len(buf) - crcSize}
	put16(buf[4:], uint16(len(extra)))
	copy(buf[pageHeaderSize:], extra)
	return w
}

// Free returns the number of payload bytes still available; appending a
// record consumes its encoded size plus two offset-table bytes.
func (w *PageWriter) Free() int { return w.tail - w.head }

// Count returns the number of records appended so far.
func (w *PageWriter) Count() int { return w.count }

// Fits reports whether a record of n encoded bytes can still be appended.
func (w *PageWriter) Fits(n int) bool { return n+2 <= w.Free() }

// AppendEntity appends e as the next record. It reports false, leaving the
// page unchanged, when the record does not fit.
func (w *PageWriter) AppendEntity(e *Entity) bool {
	n := e.EncodedSize()
	if !w.Fits(n) {
		return false
	}
	w.recordOffset()
	end := len(AppendEntity(w.buf[:w.head], e))
	w.head = end
	return true
}

// AppendRaw appends pre-encoded record bytes (used by meta segments, whose
// records are not entities). It reports false when the record does not fit.
func (w *PageWriter) AppendRaw(rec []byte) bool {
	if !w.Fits(len(rec)) {
		return false
	}
	w.recordOffset()
	copy(w.buf[w.head:], rec)
	w.head += len(rec)
	return true
}

func (w *PageWriter) recordOffset() {
	w.tail -= 2
	put16(w.buf[w.tail:], uint16(w.head))
	w.count++
	put16(w.buf[0:], uint16(w.count))
}

// SetAux stores the owner-defined 16-bit aux field (collision bits).
func (w *PageWriter) SetAux(v uint16) { put16(w.buf[2:], v) }

// PageReader provides random access to the records of a filled page.
type PageReader struct {
	buf []byte
}

// OpenPage wraps a page buffer previously produced by PageWriter.
func OpenPage(buf []byte) PageReader { return PageReader{buf: buf} }

// Count returns the number of records in the page.
func (r PageReader) Count() int { return int(get16(r.buf[0:])) }

// Aux returns the owner-defined 16-bit aux field.
func (r PageReader) Aux() uint16 { return get16(r.buf[2:]) }

// Extra returns the extra region written at page-build time.
func (r PageReader) Extra() []byte {
	n := int(get16(r.buf[4:]))
	return r.buf[pageHeaderSize : pageHeaderSize+n]
}

// Record returns the raw bytes of record i extending to the end of the
// record region; decoders read their own length.
func (r PageReader) Record(i int) []byte {
	off := int(get16(r.buf[len(r.buf)-crcSize-2*(i+1):]))
	return r.buf[off:]
}

// Entity decodes record i as a KV entity. The entity aliases the page.
func (r PageReader) Entity(i int) (Entity, error) {
	e, _, err := DecodeEntity(r.Record(i))
	return e, err
}

// EntityInto decodes record i directly into *e, skipping the by-value
// copies of Entity. The decoded entity aliases the page.
func (r PageReader) EntityInto(e *Entity, i int) error {
	_, err := DecodeEntityInto(e, r.Record(i))
	return err
}

// RecordOffset returns the page-relative byte offset of record i. Record
// lengths are self-describing; record i ends where record i+1 starts (or
// earlier, for the final record).
func (r PageReader) RecordOffset(i int) int {
	return int(get16(r.buf[len(r.buf)-crcSize-2*(i+1):]))
}

// PayloadBounds returns the record region's page-relative bounds: lo is the
// first byte after the extra region, hi the start of the offset table.
// Callers inspecting raw page images (the flyweight payload store) use the
// bounds to validate record offsets without re-deriving the layout.
func (r PageReader) PayloadBounds() (lo, hi int) {
	n := int(get16(r.buf[4:]))
	return pageHeaderSize + n, len(r.buf) - crcSize - 2*r.Count()
}

// EntityHash returns record i's key hash without decoding the full entity:
// the hash sits right after the key, so only the key-length varint is
// parsed. This is the probe of AnyKey's in-page binary search — the full
// decode is paid only on a hash match.
func (r PageReader) EntityHash(i int) (uint32, error) {
	rec := r.Record(i)
	klen, n := uvarint(rec)
	if n <= 0 || klen > MaxKeyLen || int(klen) > len(rec)-n-4 {
		return 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	return u32(rec[n+int(klen):]), nil
}

func put16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) uint16    { return uint16(b[0]) | uint16(b[1])<<8 }

// crcSize is the footer reserved at the very end of every page for the
// Seal checksum; the offset table grows downward from just above it.
const crcSize = 4

// Seal writes a CRC32 (Castagnoli) over the page contents into the reserved
// trailing four bytes. Call it once, after the final append or patch.
func (w *PageWriter) Seal() { SealPage(w.buf) }

// SealPage seals a finished page image in place (see PageWriter.Seal).
func SealPage(img []byte) {
	n := len(img)
	sum := crc32.Checksum(img[:n-crcSize], crcTable)
	img[n-4] = byte(sum)
	img[n-3] = byte(sum >> 8)
	img[n-2] = byte(sum >> 16)
	img[n-1] = byte(sum >> 24)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Verify checks a sealed page's CRC. Unsealed pages (all-zero footer over
// non-matching contents) fail; callers seal every page they program.
func (r PageReader) Verify() bool {
	n := len(r.buf)
	if n < pageHeaderSize+crcSize {
		return false
	}
	want := uint32(r.buf[n-4]) | uint32(r.buf[n-3])<<8 | uint32(r.buf[n-2])<<16 | uint32(r.buf[n-1])<<24
	return crc32.Checksum(r.buf[:n-crcSize], crcTable) == want
}
