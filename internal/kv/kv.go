// Package kv defines the key-value types shared by every KV-SSD design in
// this repository: entities (a key plus either an inline value or a pointer
// into the value log), their byte encoding inside flash pages, and the
// page-buffer reader/writer that lays records out behind a per-page offset
// table, the way the on-device formats in the paper do.
//
// Keys and values are arbitrary byte strings. Keys compare lexicographically
// (bytes.Compare); the empty key is valid. A nil value with the Tombstone
// flag set encodes a deletion marker.
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors shared by all device implementations.
var (
	// ErrNotFound is returned by Get when no live version of the key exists.
	ErrNotFound = errors.New("kv: key not found")
	// ErrDeviceFull is returned by Put when the device cannot allocate flash
	// space even after compaction and garbage collection.
	ErrDeviceFull = errors.New("kv: device full")
	// ErrKeyTooLarge is returned when a key exceeds the device limit.
	ErrKeyTooLarge = errors.New("kv: key too large")
	// ErrValueTooLarge is returned when a value exceeds the device limit.
	ErrValueTooLarge = errors.New("kv: value too large")
	// ErrEmptyKey is returned for zero-length keys, which the on-device
	// formats reserve.
	ErrEmptyKey = errors.New("kv: empty key")
	// ErrCorrupt reports a malformed on-flash record, which indicates a bug
	// in this simulator rather than a recoverable device condition.
	ErrCorrupt = errors.New("kv: corrupt record")
)

// MaxKeyLen and MaxValueLen bound the sizes the encodings below support.
const (
	MaxKeyLen   = 4096
	MaxValueLen = 1 << 20
)

// Compare orders keys lexicographically, matching the sort order of level
// lists and meta segments. An 8-byte big-endian prefix probe decides most
// compares without the bytes.Compare call: when both keys carry 8+ bytes,
// unequal prefixes order exactly as the full lexicographic compare does.
func Compare(a, b []byte) int {
	if len(a) >= 8 && len(b) >= 8 {
		pa := binary.BigEndian.Uint64(a)
		pb := binary.BigEndian.Uint64(b)
		if pa != pb {
			if pa < pb {
				return -1
			}
			return 1
		}
	}
	return bytes.Compare(a, b)
}

// Pair is a user-visible key-value pair.
type Pair struct {
	Key   []byte
	Value []byte
}

// Entity is one KV entity as stored in a data segment (group) page: the key,
// the 32-bit hash of the key, and either the inline value or a pointer to
// the value's location in the value log (paper §4.1, "KV entity").
type Entity struct {
	Key  []byte
	Hash uint32

	// Value holds the inline value bytes when InLog is false.
	Value []byte

	// InLog marks the value as residing in the value log; LogPtr is then the
	// opaque location (page PPA and intra-page offset packed by the owner)
	// and ValueLen the value's size in bytes.
	InLog    bool
	LogPtr   uint64
	ValueLen int

	// Tombstone marks a deletion. Tombstones carry no value.
	Tombstone bool
}

// Len returns the logical length in bytes of the entity's value regardless
// of where it is stored. Tombstones have length 0.
func (e *Entity) Len() int {
	if e.Tombstone {
		return 0
	}
	if e.InLog {
		return e.ValueLen
	}
	return len(e.Value)
}

// entity flags
const (
	flagInLog     = 1 << 0
	flagTombstone = 1 << 1
)

// EncodedSize returns the exact number of bytes AppendEntity will write.
func (e *Entity) EncodedSize() int {
	n := uvarintLen(uint64(len(e.Key))) + len(e.Key) + 4 + 1 // keylen, key, hash, flags
	switch {
	case e.Tombstone:
	case e.InLog:
		n += 8 + uvarintLen(uint64(e.ValueLen))
	default:
		n += uvarintLen(uint64(len(e.Value))) + len(e.Value)
	}
	return n
}

// InlineSize returns the encoded size e would have with a vlen-byte value
// stored inline. Compaction uses it to cost folding a log-resident value
// into a group without materialising the value bytes.
func (e *Entity) InlineSize(vlen int) int {
	return uvarintLen(uint64(len(e.Key))) + len(e.Key) + 4 + 1 +
		uvarintLen(uint64(vlen)) + vlen
}

// AppendEntity appends the encoding of e to buf and returns the extended
// slice.
func AppendEntity(buf []byte, e *Entity) []byte {
	buf = appendUvarint(buf, uint64(len(e.Key)))
	buf = append(buf, e.Key...)
	buf = appendU32(buf, e.Hash)
	var flags byte
	if e.InLog {
		flags |= flagInLog
	}
	if e.Tombstone {
		flags |= flagTombstone
	}
	buf = append(buf, flags)
	switch {
	case e.Tombstone:
	case e.InLog:
		buf = appendU64(buf, e.LogPtr)
		buf = appendUvarint(buf, uint64(e.ValueLen))
	default:
		buf = appendUvarint(buf, uint64(len(e.Value)))
		buf = append(buf, e.Value...)
	}
	return buf
}

// DecodeEntity decodes one entity from the front of buf, returning the
// entity and the number of bytes consumed. The returned entity aliases buf;
// callers that retain it across page reuse must copy.
func DecodeEntity(buf []byte) (Entity, int, error) {
	var e Entity
	n, err := DecodeEntityInto(&e, buf)
	return e, n, err
}

// DecodeEntityInto decodes one entity from the front of buf directly into
// *e, avoiding the by-value Entity copies of DecodeEntity on hot decode
// paths. It overwrites every field of *e and returns the bytes consumed.
// The decoded entity aliases buf.
func DecodeEntityInto(e *Entity, buf []byte) (int, error) {
	*e = Entity{}
	klen, n := uvarint(buf)
	if n <= 0 || klen > MaxKeyLen || int(klen) > len(buf)-n {
		return 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	off := n
	e.Key = buf[off : off+int(klen)]
	off += int(klen)
	if len(buf)-off < 5 {
		return 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	e.Hash = u32(buf[off:])
	off += 4
	flags := buf[off]
	off++
	e.InLog = flags&flagInLog != 0
	e.Tombstone = flags&flagTombstone != 0
	switch {
	case e.Tombstone:
	case e.InLog:
		if len(buf)-off < 8 {
			return 0, fmt.Errorf("%w: truncated log pointer", ErrCorrupt)
		}
		e.LogPtr = u64(buf[off:])
		off += 8
		vlen, n := uvarint(buf[off:])
		if n <= 0 || vlen > MaxValueLen {
			return 0, fmt.Errorf("%w: bad log value length", ErrCorrupt)
		}
		off += n
		e.ValueLen = int(vlen)
	default:
		vlen, n := uvarint(buf[off:])
		if n <= 0 || vlen > MaxValueLen || int(vlen) > len(buf)-off-n {
			return 0, fmt.Errorf("%w: bad value length", ErrCorrupt)
		}
		off += n
		e.Value = buf[off : off+int(vlen)]
		off += int(vlen)
		e.ValueLen = int(vlen)
	}
	return off, nil
}

// Clone returns a deep copy of e that does not alias any page buffer.
func (e *Entity) Clone() Entity {
	c := *e
	c.Key = append([]byte(nil), e.Key...)
	if e.Value != nil {
		c.Value = append([]byte(nil), e.Value...)
	}
	return c
}

// --- little-endian and varint primitives -------------------------------

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func u16(b []byte) uint16 { _ = b[1]; return uint16(b[0]) | uint16(b[1])<<8 }

func u32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func u64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func uvarint(b []byte) (uint64, int) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), 1 // single-byte fast path: almost every length
	}
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
