package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEntityRoundTripInline(t *testing.T) {
	e := Entity{Key: []byte("user:42"), Hash: 0xdeadbeef, Value: []byte("v1")}
	buf := AppendEntity(nil, &e)
	if len(buf) != e.EncodedSize() {
		t.Fatalf("EncodedSize = %d, wrote %d", e.EncodedSize(), len(buf))
	}
	got, n, err := DecodeEntity(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !bytes.Equal(got.Key, e.Key) || got.Hash != e.Hash || !bytes.Equal(got.Value, e.Value) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.InLog || got.Tombstone {
		t.Fatalf("unexpected flags: %+v", got)
	}
}

func TestEntityRoundTripLogPointer(t *testing.T) {
	e := Entity{Key: []byte("k"), Hash: 7, InLog: true, LogPtr: 0x0123456789abcdef, ValueLen: 358}
	buf := AppendEntity(nil, &e)
	got, _, err := DecodeEntity(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.InLog || got.LogPtr != e.LogPtr || got.ValueLen != 358 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Len() != 358 {
		t.Fatalf("Len() = %d, want 358", got.Len())
	}
}

func TestEntityRoundTripTombstone(t *testing.T) {
	e := Entity{Key: []byte("gone"), Hash: 1, Tombstone: true}
	buf := AppendEntity(nil, &e)
	got, _, err := DecodeEntity(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tombstone || got.Len() != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// Property: every generated entity round-trips bit-exactly and EncodedSize
// is exact.
func TestEntityRoundTripProperty(t *testing.T) {
	f := func(key, val []byte, hash uint32, inLog, tomb bool, ptr uint64, vlen uint16) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		e := Entity{Key: key, Hash: hash, Tombstone: tomb}
		if !tomb {
			if inLog {
				e.InLog = true
				e.LogPtr = ptr
				e.ValueLen = int(vlen)
			} else {
				e.Value = val
				e.ValueLen = len(val)
			}
		}
		buf := AppendEntity(nil, &e)
		if len(buf) != e.EncodedSize() {
			return false
		}
		got, n, err := DecodeEntity(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if !bytes.Equal(got.Key, e.Key) || got.Hash != e.Hash ||
			got.InLog != e.InLog || got.Tombstone != e.Tombstone {
			return false
		}
		if e.InLog && (got.LogPtr != e.LogPtr || got.ValueLen != e.ValueLen) {
			return false
		}
		if !e.InLog && !e.Tombstone && !bytes.Equal(got.Value, e.Value) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntityCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                                    // empty
		{0xff},                                // truncated varint
		{0x05, 'a'},                           // key shorter than declared
		{0x01, 'a', 1, 2},                     // truncated hash+flags
		{0x01, 'a', 1, 2, 3, 4, flagInLog, 9}, // truncated log pointer
	}
	for i, c := range cases {
		if _, _, err := DecodeEntity(c); err == nil {
			t.Errorf("case %d: expected corruption error", i)
		}
	}
}

func TestCloneDoesNotAlias(t *testing.T) {
	buf := AppendEntity(nil, &Entity{Key: []byte("abc"), Value: []byte("xyz")})
	e, _, err := DecodeEntity(buf)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	buf[1] ^= 0xff // clobber the shared buffer
	if string(c.Key) != "abc" || string(c.Value) != "xyz" {
		t.Fatalf("clone aliases page buffer: %q %q", c.Key, c.Value)
	}
}

func TestPageWriterRoundTrip(t *testing.T) {
	page := make([]byte, 512)
	extra := []byte("location-table")
	w := NewPageWriter(page, extra)
	var want []Entity
	for i := 0; ; i++ {
		e := Entity{Key: []byte{byte('a' + i%26), byte(i)}, Hash: uint32(i), Value: bytes.Repeat([]byte{byte(i)}, i%30)}
		if !w.AppendEntity(&e) {
			break
		}
		want = append(want, e.Clone())
	}
	if len(want) == 0 {
		t.Fatal("no entities fit in page")
	}
	w.SetAux(0b10)

	r := OpenPage(page)
	if r.Count() != len(want) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(want))
	}
	if r.Aux() != 0b10 {
		t.Fatalf("Aux = %b", r.Aux())
	}
	if string(r.Extra()) != string(extra) {
		t.Fatalf("Extra = %q", r.Extra())
	}
	for i, e := range want {
		got, err := r.Entity(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Key, e.Key) || !bytes.Equal(got.Value, e.Value) || got.Hash != e.Hash {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestPageWriterRejectsOversized(t *testing.T) {
	page := make([]byte, 64)
	w := NewPageWriter(page, nil)
	big := Entity{Key: []byte("k"), Value: bytes.Repeat([]byte{1}, 100)}
	if w.AppendEntity(&big) {
		t.Fatal("oversized record accepted")
	}
	if w.Count() != 0 {
		t.Fatal("failed append mutated count")
	}
	small := Entity{Key: []byte("k"), Value: []byte("v")}
	if !w.AppendEntity(&small) {
		t.Fatal("small record rejected after failed append")
	}
}

func TestPageWriterFreeAccounting(t *testing.T) {
	page := make([]byte, 256)
	w := NewPageWriter(page, nil)
	free0 := w.Free()
	e := Entity{Key: []byte("abc"), Value: []byte("def")}
	if !w.AppendEntity(&e) {
		t.Fatal("append failed")
	}
	if got, want := free0-w.Free(), e.EncodedSize()+2; got != want {
		t.Fatalf("append consumed %d bytes, want %d", got, want)
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		b := appendUvarint(nil, v)
		if len(b) != uvarintLen(v) {
			return false
		}
		got, n := uvarint(b)
		return got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	if Compare([]byte("a"), []byte("b")) >= 0 {
		t.Fatal("a !< b")
	}
	if Compare([]byte("ab"), []byte("a")) <= 0 {
		t.Fatal("ab !> a")
	}
	if Compare([]byte("same"), []byte("same")) != 0 {
		t.Fatal("same != same")
	}
}

func TestPageSealVerify(t *testing.T) {
	page := make([]byte, 512)
	w := NewPageWriter(page, []byte("extra"))
	e := Entity{Key: []byte("k"), Value: []byte("v")}
	if !w.AppendEntity(&e) {
		t.Fatal("append failed")
	}
	if OpenPage(page).Verify() {
		t.Fatal("unsealed page verified")
	}
	w.Seal()
	if !OpenPage(page).Verify() {
		t.Fatal("sealed page failed verification")
	}
	// Any single-bit disturbance must be detected.
	for _, pos := range []int{0, 7, 100, 300, 508} {
		page[pos] ^= 0x40
		if OpenPage(page).Verify() {
			t.Fatalf("bit flip at %d not detected", pos)
		}
		page[pos] ^= 0x40
	}
	if !OpenPage(page).Verify() {
		t.Fatal("restored page no longer verifies")
	}
	// SealPage (the package-level form used after patches) agrees.
	page[2] = 0xAA // patch aux
	SealPage(page)
	if !OpenPage(page).Verify() {
		t.Fatal("re-sealed page failed verification")
	}
}
